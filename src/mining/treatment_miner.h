// Treatment-pattern mining (Algorithm 2, Section 5.2 of the paper).
//
// For a grouping pattern P_g, traverse the lattice of conjunctive
// treatment patterns top-down: level 1 holds all atomic predicates;
// a level-(d+1) node is materialized only when all of its level-d parents
// carry a CATE of the requested sign (the paper's greedy heuristic for
// the non-monotone CATE). Tracks the best pattern per sign and stops at
// the first level that fails to improve it.
//
// Implemented optimizations (Section 5.2):
//  (a) attribute pruning — only attributes that are causal ancestors of
//      the outcome in the DAG generate predicates;
//  (b) treatment pruning — near-zero CATEs are dropped and only the top
//      `level_keep_fraction` of each level expands;
//  (c) parallelism — handled by the caller (one task per grouping
//      pattern; see core/causumx.cpp);
//  (d) sampling — handled inside EffectEstimator (sample_cap).

#ifndef CAUSUMX_MINING_TREATMENT_MINER_H_
#define CAUSUMX_MINING_TREATMENT_MINER_H_

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "causal/estimator.h"
#include "dataset/pattern.h"
#include "dataset/table.h"
#include "util/bitset.h"

namespace causumx {

/// Direction of the effect being mined.
enum class TreatmentSign { kPositive, kNegative };

/// A treatment pattern with its estimated effect.
struct ScoredTreatment {
  Pattern pattern;
  EffectEstimate effect;
};

struct TreatmentMinerOptions {
  /// Max predicates per treatment pattern (lattice depth).
  size_t max_depth = 3;
  /// CATEs with |value| below this fraction of the outcome's std deviation
  /// are "near-zero" and pruned (optimization (b)).
  double near_zero_fraction = 0.05;
  /// Fraction of each level (by |CATE|) allowed to expand (optimization
  /// (b): the paper keeps the top 50%).
  double level_keep_fraction = 0.5;
  /// Hard cap on patterns evaluated per level (safety valve on wide
  /// schemas; generous enough to be inactive in the paper's settings).
  size_t max_level_width = 4096;
  /// Max distinct values per categorical attribute turned into equality
  /// predicates; larger domains are skipped (they seldom yield
  /// high-coverage treatments and explode the lattice).
  size_t max_values_per_attribute = 40;
  /// Numeric attributes are discretized into this many quantile thresholds
  /// generating  A < q  and  A >= q  predicates.
  size_t numeric_bins = 4;
  /// Two-sided significance level a treatment must meet to be reported.
  double alpha = 0.05;
  /// Treatments must cover at least this fraction of the subpopulation to
  /// be meaningful (overlap guard beyond the estimator's absolute floor).
  double min_treated_fraction = 0.01;
};

/// As GenerateAtomicTreatments below, but served from the engine's
/// cached distinct-value and numeric views: the lattice walk calls this
/// once per (grouping pattern, sign), and the uncached variant re-scans
/// every treatment column each time — a measurable fraction of a fully
/// warm query. Identical atoms either way.
std::vector<SimplePredicate> GenerateAtomicTreatments(
    EvalEngine& engine, const std::vector<std::string>& attributes,
    const TreatmentMinerOptions& options);

/// Generates all atomic treatment predicates for the given attributes
/// (equality items for categorical/small-int, quantile thresholds for
/// numeric). Exposed for tests and the Brute-Force baseline.
std::vector<SimplePredicate> GenerateAtomicTreatments(
    const Table& table, const std::vector<std::string>& attributes,
    const TreatmentMinerOptions& options);

/// Mines the best treatment pattern of the requested sign for the
/// subpopulation (Algorithm 2). Returns nullopt when nothing valid and
/// significant exists.
std::optional<ScoredTreatment> MineTopTreatment(
    const EffectEstimator& estimator, const Bitset& subpopulation,
    const std::string& outcome,
    const std::vector<std::string>& treatment_attributes, TreatmentSign sign,
    const TreatmentMinerOptions& options = {});

/// Statistics from a mining run (for the accuracy experiments, Fig. 10).
struct TreatmentMiningStats {
  size_t patterns_evaluated = 0;
  size_t levels_explored = 0;
};

/// As MineTopTreatment but also reports search statistics.
std::optional<ScoredTreatment> MineTopTreatmentWithStats(
    const EffectEstimator& estimator, const Bitset& subpopulation,
    const std::string& outcome,
    const std::vector<std::string>& treatment_attributes, TreatmentSign sign,
    const TreatmentMinerOptions& options, TreatmentMiningStats* stats);

/// Top-k treatment patterns of the requested sign, ranked by |CATE|
/// (the paper's UI lets analysts request several positive/negative
/// treatments per grouping pattern). Patterns whose treated-row sets
/// coincide with a stronger pattern are dropped. Returns at most k
/// entries, possibly fewer, in descending effect magnitude.
std::vector<ScoredTreatment> MineTopKTreatments(
    const EffectEstimator& estimator, const Bitset& subpopulation,
    const std::string& outcome,
    const std::vector<std::string>& treatment_attributes, TreatmentSign sign,
    size_t k, const TreatmentMinerOptions& options = {});

/// Treated-set dedup: the generic collision-safe BitsetDedup
/// (util/bitset.h), shared with the greedy solver's incomparability
/// constraint. Kept under the domain alias for the top-k dedup and its
/// tests.
using TreatedSetDedup = BitsetDedup;

/// Records `bits` under `hash` unless an equal bitset is already present
/// in that bucket; returns true when it was new. Comparing actual bit
/// content on a bucket hit keeps a 64-bit hash collision from conflating
/// two distinct treated sets. Exposed for the top-k dedup and its tests.
bool InsertUniqueTreatedSet(TreatedSetDedup* seen, uint64_t hash,
                            Bitset bits);

}  // namespace causumx

#endif  // CAUSUMX_MINING_TREATMENT_MINER_H_
