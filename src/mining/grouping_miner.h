// Grouping-pattern mining (Section 5.1 of the paper).
//
// Runs Apriori over the FD-closure attributes, computes each pattern's
// coverage over the groups of Q(D) (Definition 4.4), then removes
// redundant patterns: among patterns covering the identical group set,
// only the shortest survives (post-processing step, Section 5.1), which
// also guarantees the incomparability constraint downstream.

#ifndef CAUSUMX_MINING_GROUPING_MINER_H_
#define CAUSUMX_MINING_GROUPING_MINER_H_

#include <string>
#include <vector>

#include "dataset/group_query.h"
#include "dataset/table.h"
#include "mining/apriori.h"
#include "util/bitset.h"

namespace causumx {

/// A grouping pattern with its group coverage.
struct GroupingPattern {
  Pattern pattern;
  Bitset group_coverage;  ///< bit per group of Q(D); Cov(P_g).
  Bitset rows;            ///< tuple-level support (rows matching).
  size_t support = 0;     ///< matching tuples.

  size_t NumGroupsCovered() const { return group_coverage.Count(); }
};

struct GroupingMinerOptions {
  AprioriOptions apriori;
  /// Also emit the trivial per-group pattern A_gb = value for every group
  /// (ensures full coverage is reachable when FD attributes are scarce,
  /// e.g. the German dataset where each purpose needs its own insight).
  bool include_per_group_patterns = true;
};

/// Mines candidate grouping patterns for the view.
///
/// `grouping_attributes` must all satisfy A_gb -> W (use
/// PartitionAttributes). Coverage follows Definition 4.4: a pattern covers
/// group s iff every tuple of s satisfies it. When `engine` is non-null,
/// item bitsets are served from its shared predicate cache.
std::vector<GroupingPattern> MineGroupingPatterns(
    const Table& table, const AggregateView& view,
    const std::vector<std::string>& grouping_attributes,
    const GroupingMinerOptions& options = {}, EvalEngine* engine = nullptr);

}  // namespace causumx

#endif  // CAUSUMX_MINING_GROUPING_MINER_H_
