// The Apriori frequent-itemset algorithm (Agrawal & Srikant 1994),
// specialized to attribute=value items over table rows. Used to mine
// frequent grouping patterns (Section 5.1 of the paper): pattern support
// is monotone, so the levelwise candidate-generation + prune scheme is
// exact for the support constraint.

#ifndef CAUSUMX_MINING_APRIORI_H_
#define CAUSUMX_MINING_APRIORI_H_

#include <string>
#include <vector>

#include "dataset/pattern.h"
#include "dataset/table.h"
#include "engine/eval_engine.h"
#include "util/bitset.h"

namespace causumx {

/// A mined pattern with its support bitmap over table rows.
struct FrequentPattern {
  Pattern pattern;
  Bitset rows;      ///< rows matching the pattern.
  size_t support = 0;
};

struct AprioriOptions {
  /// Minimum support as a fraction of table rows (the paper's tau; default
  /// 0.1 per Section 6.1).
  double min_support = 0.1;
  /// Maximum predicates per pattern (lattice depth cap).
  size_t max_length = 3;
  /// Cap on distinct values per attribute converted to items; attributes
  /// with larger (non-categorical) domains are quantile-binned into
  /// equality items over bin labels upstream — here they are skipped.
  size_t max_values_per_attribute = 64;
};

/// Mines all frequent equality patterns over the given attributes.
/// Only `=` items are generated (grouping patterns are equality patterns
/// over FD-determined attributes; treatment mining handles ordered
/// predicates separately).
///
/// When `engine` is non-null, level-1 item bitsets are served from (and
/// interned into) its shared predicate cache, so grouping mining, the
/// rule-mining baselines, and treatment estimation all reuse one copy.
std::vector<FrequentPattern> MineFrequentPatterns(
    const Table& table, const std::vector<std::string>& attributes,
    const AprioriOptions& options = {}, EvalEngine* engine = nullptr);

}  // namespace causumx

#endif  // CAUSUMX_MINING_APRIORI_H_
