#include "mining/apriori.h"

#include <algorithm>
#include <map>
#include <unordered_set>

namespace causumx {

namespace {

// An item: attribute index + value. Items are ordered (attr, value-string)
// so candidate generation can use the classic prefix-join.
struct Item {
  size_t attr;
  Value value;
  std::string value_key;

  bool operator<(const Item& other) const {
    if (attr != other.attr) return attr < other.attr;
    return value_key < other.value_key;
  }
  bool operator==(const Item& other) const {
    return attr == other.attr && value_key == other.value_key;
  }
};

struct Itemset {
  std::vector<Item> items;  // sorted
  Bitset rows;
};

}  // namespace

std::vector<FrequentPattern> MineFrequentPatterns(
    const Table& table, const std::vector<std::string>& attributes,
    const AprioriOptions& opt, EvalEngine* engine) {
  const size_t n = table.NumRows();
  const size_t min_count = static_cast<size_t>(opt.min_support * n);

  // Level 1: single items with support counting. With an engine, item
  // bitsets come from the shared predicate cache (materialized once per
  // table and reused by every other engine client).
  std::vector<Itemset> level;
  for (const auto& attr_name : attributes) {
    auto idx = table.ColumnIndex(attr_name);
    if (!idx) continue;
    const Column& col = table.column(*idx);
    if (col.NumDistinct() > opt.max_values_per_attribute) continue;
    for (const Value& v : col.DistinctValues()) {
      Item item{*idx, v, v.ToString()};
      Bitset rows(n);
      if (engine != nullptr) {
        rows = engine->Evaluate(
            Pattern({SimplePredicate(attr_name, CompareOp::kEq, v)}));
      } else if (col.type() == ColumnType::kCategorical) {
        const int32_t code = col.CodeOf(v.AsString());
        for (size_t r = 0; r < n; ++r) {
          if (col.GetCode(r) == code) rows.Set(r);
        }
      } else {
        for (size_t r = 0; r < n; ++r) {
          if (!col.IsNull(r) && col.GetValue(r).Equals(v)) rows.Set(r);
        }
      }
      if (rows.Count() >= min_count) {
        level.push_back(Itemset{{item}, std::move(rows)});
      }
    }
  }
  std::sort(level.begin(), level.end(),
            [](const Itemset& a, const Itemset& b) {
              return a.items[0] < b.items[0];
            });

  std::vector<FrequentPattern> result;
  auto emit = [&](const Itemset& is) {
    std::vector<SimplePredicate> preds;
    preds.reserve(is.items.size());
    for (const auto& item : is.items) {
      preds.emplace_back(table.column(item.attr).name(), CompareOp::kEq,
                         item.value);
    }
    FrequentPattern fp;
    fp.pattern = Pattern(std::move(preds));
    fp.rows = is.rows;
    fp.support = is.rows.Count();
    result.push_back(std::move(fp));
  };
  for (const auto& is : level) emit(is);

  // Levelwise expansion: join itemsets sharing a (k-1)-prefix whose last
  // items differ in attribute (conjunctions of two equalities on the same
  // attribute are empty), then verify support.
  for (size_t depth = 2; depth <= opt.max_length && level.size() > 1;
       ++depth) {
    std::vector<Itemset> next;
    for (size_t i = 0; i < level.size(); ++i) {
      for (size_t j = i + 1; j < level.size(); ++j) {
        const auto& a = level[i].items;
        const auto& b = level[j].items;
        // Prefix check.
        bool same_prefix = true;
        for (size_t t = 0; t + 1 < a.size(); ++t) {
          if (!(a[t] == b[t])) {
            same_prefix = false;
            break;
          }
        }
        if (!same_prefix) break;  // sorted level => later j's differ too
        if (a.back().attr == b.back().attr) continue;

        Bitset rows = level[i].rows & level[j].rows;
        if (rows.Count() < min_count) continue;

        Itemset merged;
        merged.items = a;
        merged.items.push_back(b.back());
        std::sort(merged.items.begin(), merged.items.end());
        merged.rows = std::move(rows);
        next.push_back(std::move(merged));
      }
    }
    // The subset-prune step of Apriori: all (k-1)-subsets must be frequent.
    // Support intersection already enforces the monotone bound, and our
    // join only sees frequent parents, so explicit pruning is redundant
    // for correctness; we simply dedup.
    std::unordered_set<uint64_t> seen;
    std::vector<Itemset> deduped;
    for (auto& is : next) {
      uint64_t h = 1469598103934665603ULL;
      for (const auto& it : is.items) {
        h ^= std::hash<size_t>{}(it.attr) * 0x9E3779B97F4A7C15ULL;
        for (char c : it.value_key) {
          h ^= static_cast<unsigned char>(c);
          h *= 1099511628211ULL;
        }
      }
      if (seen.insert(h).second) deduped.push_back(std::move(is));
    }
    for (const auto& is : deduped) emit(is);
    level = std::move(deduped);
  }
  return result;
}

}  // namespace causumx
