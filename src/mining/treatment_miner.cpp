#include "mining/treatment_miner.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <unordered_set>
#include <utility>

#include "util/stats.h"

namespace causumx {

namespace {

void EqualityAtoms(const std::string& name, const std::vector<Value>& values,
                   std::vector<SimplePredicate>* atoms) {
  for (const Value& v : values) {
    atoms->emplace_back(name, CompareOp::kEq, v);
  }
}

// Quantile thresholds A < q and A >= q over the sorted non-null values.
void QuantileAtoms(const std::string& name, std::vector<double> vals,
                   const TreatmentMinerOptions& opt,
                   std::vector<SimplePredicate>* atoms) {
  if (vals.size() < 4) return;
  std::sort(vals.begin(), vals.end());
  std::set<double> cuts;
  for (size_t b = 1; b <= opt.numeric_bins; ++b) {
    const double q =
        static_cast<double>(b) / static_cast<double>(opt.numeric_bins + 1);
    cuts.insert(vals[static_cast<size_t>(q * (vals.size() - 1))]);
  }
  for (double c : cuts) {
    atoms->emplace_back(name, CompareOp::kLt, Value(c));
    atoms->emplace_back(name, CompareOp::kGe, Value(c));
  }
}

// True when the column's atoms are equality items (else quantiles).
// `distinct` is the column's cached distinct count.
bool UseEqualityAtoms(const Column& col, size_t distinct,
                      const TreatmentMinerOptions& opt) {
  const bool small_domain = distinct <= opt.max_values_per_attribute;
  if (col.type() == ColumnType::kCategorical) return small_domain;
  return small_domain &&
         distinct <= std::max<size_t>(opt.numeric_bins * 2, 8);
}

}  // namespace

std::vector<SimplePredicate> GenerateAtomicTreatments(
    const Table& table, const std::vector<std::string>& attributes,
    const TreatmentMinerOptions& opt) {
  std::vector<SimplePredicate> atoms;
  for (const auto& name : attributes) {
    auto idx = table.ColumnIndex(name);
    if (!idx) continue;
    const Column& col = table.column(*idx);
    const size_t distinct = col.NumDistinct();
    if (distinct < 2) continue;

    if (UseEqualityAtoms(col, distinct, opt)) {
      EqualityAtoms(name, col.DistinctValues(), &atoms);
    } else if (col.type() != ColumnType::kCategorical) {
      std::vector<double> vals;
      vals.reserve(table.NumRows());
      for (size_t r = 0; r < table.NumRows(); ++r) {
        if (!col.IsNull(r)) vals.push_back(col.GetNumeric(r));
      }
      QuantileAtoms(name, std::move(vals), opt, &atoms);
    }
  }
  return atoms;
}

std::vector<SimplePredicate> GenerateAtomicTreatments(
    EvalEngine& engine, const std::vector<std::string>& attributes,
    const TreatmentMinerOptions& opt) {
  const Table& table = engine.table();
  std::vector<SimplePredicate> atoms;
  for (const auto& name : attributes) {
    auto idx = table.ColumnIndex(name);
    if (!idx) continue;
    const Column& col = table.column(*idx);
    const size_t distinct = col.NumDistinct();
    if (distinct < 2) continue;

    if (UseEqualityAtoms(col, distinct, opt)) {
      EqualityAtoms(name, *engine.DistinctValues(*idx), &atoms);
    } else if (col.type() != ColumnType::kCategorical) {
      // The cached numeric view lists values in row order, exactly as the
      // table scan does — identical quantile cuts.
      const NumericColumnView& view = engine.Numeric(*idx);
      std::vector<double> vals;
      vals.reserve(view.values.size());
      for (size_t r = 0; r < view.values.size(); ++r) {
        if (view.valid.Test(r)) vals.push_back(view.values[r]);
      }
      QuantileAtoms(name, std::move(vals), opt, &atoms);
    }
  }
  return atoms;
}

namespace {

struct Node {
  Pattern pattern;
  double cate = 0.0;
  double p_value = 1.0;
  bool significant = false;
  EffectEstimate estimate;
};

double SignedValue(TreatmentSign sign, double cate) {
  return sign == TreatmentSign::kPositive ? cate : -cate;
}

}  // namespace

namespace {

// The lattice walk shared by the top-1 and top-k entry points. When
// `survivors` is non-null, every sign-consistent significant node that
// was materialized is appended to it.
std::optional<ScoredTreatment> RunLatticeWalk(
    const EffectEstimator& estimator, const Bitset& subpopulation,
    const std::string& outcome,
    const std::vector<std::string>& treatment_attributes, TreatmentSign sign,
    const TreatmentMinerOptions& opt, TreatmentMiningStats* stats,
    std::vector<ScoredTreatment>* survivors);

}  // namespace

std::optional<ScoredTreatment> MineTopTreatmentWithStats(
    const EffectEstimator& estimator, const Bitset& subpopulation,
    const std::string& outcome,
    const std::vector<std::string>& treatment_attributes, TreatmentSign sign,
    const TreatmentMinerOptions& opt, TreatmentMiningStats* stats) {
  return RunLatticeWalk(estimator, subpopulation, outcome,
                        treatment_attributes, sign, opt, stats, nullptr);
}

bool InsertUniqueTreatedSet(TreatedSetDedup* seen, uint64_t hash,
                            Bitset bits) {
  return seen->Insert(hash, std::move(bits));
}

std::vector<ScoredTreatment> MineTopKTreatments(
    const EffectEstimator& estimator, const Bitset& subpopulation,
    const std::string& outcome,
    const std::vector<std::string>& treatment_attributes, TreatmentSign sign,
    size_t k, const TreatmentMinerOptions& opt) {
  std::vector<ScoredTreatment> survivors;
  RunLatticeWalk(estimator, subpopulation, outcome, treatment_attributes,
                 sign, opt, nullptr, &survivors);
  std::sort(survivors.begin(), survivors.end(),
            [](const ScoredTreatment& a, const ScoredTreatment& b) {
              return std::fabs(a.effect.cate) > std::fabs(b.effect.cate);
            });
  // Drop patterns whose treated set duplicates a stronger pattern's
  // (treated sets come from the engine's cached bitsets).
  std::vector<ScoredTreatment> out;
  TreatedSetDedup seen_rows;
  EvalEngine& engine = *estimator.engine();
  for (auto& st : survivors) {
    if (out.size() >= k) break;
    Bitset rows = engine.EvaluateOn(st.pattern, subpopulation);
    const uint64_t h = rows.Hash();
    if (!InsertUniqueTreatedSet(&seen_rows, h, std::move(rows))) continue;
    out.push_back(std::move(st));
  }
  return out;
}

namespace {

std::optional<ScoredTreatment> RunLatticeWalk(
    const EffectEstimator& estimator, const Bitset& subpopulation,
    const std::string& outcome,
    const std::vector<std::string>& treatment_attributes, TreatmentSign sign,
    const TreatmentMinerOptions& opt, TreatmentMiningStats* stats,
    std::vector<ScoredTreatment>* survivors) {
  const Table& table = estimator.table();

  // Optimization (a): restrict to attributes with a causal path to the
  // outcome in the DAG (they are the only ones with nonzero true effects).
  std::vector<std::string> causal_attrs;
  const std::set<std::string> ancestors =
      estimator.dag().CausalAncestorsOf(outcome);
  for (const auto& a : treatment_attributes) {
    if (!estimator.dag().HasNode(a) || ancestors.count(a)) {
      // Attributes missing from the DAG are kept (unknown structure), the
      // ones present but causally unrelated are pruned.
      causal_attrs.push_back(a);
    }
  }

  // Near-zero threshold scaled by the outcome spread in the subpopulation
  // (outcome reads go through the engine's cached numeric view).
  EvalEngine& engine = *estimator.engine();
  table.column(outcome);  // throws on an unknown outcome attribute
  const NumericColumnView& y_view =
      engine.Numeric(*table.ColumnIndex(outcome));
  RunningStats y_stats;
  for (size_t r : subpopulation.ToIndices()) {
    if (y_view.valid.Test(r)) y_stats.Add(y_view.values[r]);
  }
  const double near_zero = opt.near_zero_fraction * y_stats.StdDev();
  const size_t subpop_size = y_stats.Count();
  const size_t min_treated = std::max<size_t>(
      estimator.options().min_group_size,
      static_cast<size_t>(opt.min_treated_fraction *
                          static_cast<double>(subpop_size)));

  auto evaluate = [&](const Pattern& p) -> Node {
    Node node;
    node.pattern = p;
    if (stats) ++stats->patterns_evaluated;
    // Cheap overlap reject before the full estimate: a lattice child's
    // treated set is its parent's set AND one cached atom bitset, so the
    // raw treated count costs a few word-wise ANDs. The raw count upper
    // bounds est.n_treated (which is further shrunk by the null-outcome
    // filter and sampling), so every pattern skipped here would have
    // been rejected by the est.n_treated check below anyway. In bypass
    // mode the pre-check would be a full table scan, not a cache hit, so
    // it is skipped there (same results, pre-engine work profile).
    if (engine.cache_enabled() &&
        engine.EvaluateOn(p, subpopulation).Count() < min_treated) {
      return node;
    }
    const EffectEstimate est =
        estimator.EstimateCate(p, outcome, subpopulation);
    if (!est.valid || est.n_treated < min_treated) return node;
    node.cate = est.cate;
    node.p_value = est.p_value;
    node.significant = est.p_value <= opt.alpha;
    node.estimate = est;
    return node;
  };
  auto collect = [&](const Node& node) {
    if (survivors != nullptr) {
      survivors->push_back(ScoredTreatment{node.pattern, node.estimate});
    }
  };

  // Level 1: atomic predicates (GenChildren in the paper's pseudocode),
  // served from the engine's cached distinct/numeric views.
  const std::vector<SimplePredicate> atoms =
      GenerateAtomicTreatments(engine, causal_attrs, opt);
  std::vector<Node> level;
  level.reserve(atoms.size());
  std::optional<Node> best;
  for (const auto& atom : atoms) {
    Node node = evaluate(Pattern({atom}));
    if (!node.significant) continue;
    // ComputeCATEnFilter: keep only the requested sign above near-zero.
    if (SignedValue(sign, node.cate) <= near_zero) continue;
    if (!best || SignedValue(sign, node.cate) >
                     SignedValue(sign, best->cate)) {
      best = node;
    }
    collect(node);
    level.push_back(std::move(node));
  }
  if (stats) stats->levels_explored = 1;
  if (!best) return std::nullopt;

  // Level-1 survivors double as the atom pool for expansion: a child is a
  // node plus one surviving atom, so every materialized parent we know of
  // carries the right sign (the paper's GenChildrenNextLevel).
  const std::vector<Node> atom_pool = level;

  // Deeper levels: expand only while the incumbent improves (Algorithm 2
  // terminates at the first level that fails to contain the max).
  for (size_t depth = 2; depth <= opt.max_depth && !level.empty(); ++depth) {
    // Optimization (b): only the strongest half of the level expands.
    std::sort(level.begin(), level.end(), [&](const Node& a, const Node& b) {
      return SignedValue(sign, a.cate) > SignedValue(sign, b.cate);
    });
    const size_t keep = std::max<size_t>(
        1, static_cast<size_t>(opt.level_keep_fraction *
                               static_cast<double>(level.size())));
    if (level.size() > keep) level.resize(keep);

    // GenChildrenNextLevel: extend each kept node by one surviving atom
    // whose attribute is compatible (equality predicates may not repeat an
    // attribute; ordered predicates may pair into ranges when ops differ).
    std::vector<Node> next;
    std::unordered_set<uint64_t> seen;
    bool width_exceeded = false;
    for (size_t i = 0; i < level.size() && !width_exceeded; ++i) {
      for (const auto& atom_node : atom_pool) {
        const SimplePredicate& atom = atom_node.pattern.predicates()[0];
        bool conflict = false;
        for (const auto& pa : level[i].pattern.predicates()) {
          if (pa.attribute == atom.attribute &&
              (pa.op == CompareOp::kEq || atom.op == CompareOp::kEq ||
               pa.op == atom.op)) {
            conflict = true;
            break;
          }
        }
        if (conflict) continue;
        Pattern child = level[i].pattern.With(atom);
        if (child.Size() != depth) continue;
        if (!seen.insert(child.Hash()).second) continue;
        if (next.size() >= opt.max_level_width) {
          width_exceeded = true;
          break;
        }
        Node node = evaluate(child);
        if (!node.significant) continue;
        if (SignedValue(sign, node.cate) <= near_zero) continue;
        collect(node);
        next.push_back(std::move(node));
      }
    }
    if (next.empty()) break;

    // Termination check (lines 10-13): stop when the level's best does not
    // beat the incumbent.
    const Node* level_best = &next[0];
    for (const auto& n : next) {
      if (SignedValue(sign, n.cate) > SignedValue(sign, level_best->cate)) {
        level_best = &n;
      }
    }
    if (stats) stats->levels_explored = depth;
    if (SignedValue(sign, level_best->cate) >
        SignedValue(sign, best->cate)) {
      best = *level_best;
      level = std::move(next);
    } else {
      break;
    }
  }

  ScoredTreatment result;
  result.pattern = best->pattern;
  result.effect = estimator.EstimateCate(result.pattern, outcome,
                                         subpopulation);
  return result;
}

}  // namespace

std::optional<ScoredTreatment> MineTopTreatment(
    const EffectEstimator& estimator, const Bitset& subpopulation,
    const std::string& outcome,
    const std::vector<std::string>& treatment_attributes, TreatmentSign sign,
    const TreatmentMinerOptions& options) {
  return MineTopTreatmentWithStats(estimator, subpopulation, outcome,
                                   treatment_attributes, sign, options,
                                   nullptr);
}

}  // namespace causumx
