#include "mining/grouping_miner.h"

#include <map>
#include <unordered_map>

namespace causumx {

namespace {

// Computes Cov(P_g): group s is covered iff all its tuples match. Because
// grouping attributes are FD-determined by A_gb, either all tuples of a
// group match or none do; checking one representative suffices, but we
// verify all to stay exact on dirty data.
Bitset ComputeGroupCoverage(const AggregateView& view, const Bitset& rows) {
  Bitset covered(view.NumGroups());
  for (size_t g = 0; g < view.NumGroups(); ++g) {
    const auto& group = view.group(g);
    bool all = !group.rows.empty();
    for (size_t r : group.rows) {
      if (!rows.Test(r)) {
        all = false;
        break;
      }
    }
    if (all) covered.Set(g);
  }
  return covered;
}

}  // namespace

std::vector<GroupingPattern> MineGroupingPatterns(
    const Table& table, const AggregateView& view,
    const std::vector<std::string>& grouping_attributes,
    const GroupingMinerOptions& opt, EvalEngine* engine) {
  std::vector<GroupingPattern> candidates;

  // Frequent patterns over the FD attributes.
  const std::vector<FrequentPattern> frequent =
      MineFrequentPatterns(table, grouping_attributes, opt.apriori, engine);
  candidates.reserve(frequent.size());
  for (const auto& fp : frequent) {
    GroupingPattern gp;
    gp.pattern = fp.pattern;
    gp.rows = fp.rows;
    gp.support = fp.support;
    gp.group_coverage = ComputeGroupCoverage(view, fp.rows);
    if (gp.group_coverage.Any()) candidates.push_back(std::move(gp));
  }

  // Per-group fallback patterns: A_gb = key (single group-by attribute
  // case) — matches the paper's German case study where each group gets
  // its own insight in the absence of FDs.
  if (opt.include_per_group_patterns &&
      view.query().group_by.size() == 1) {
    const std::string& gb = view.query().group_by[0];
    for (size_t g = 0; g < view.NumGroups(); ++g) {
      GroupingPattern gp;
      gp.pattern = Pattern({SimplePredicate(gb, CompareOp::kEq,
                                            view.group(g).key[0])});
      gp.rows = Bitset(table.NumRows());
      for (size_t r : view.group(g).rows) gp.rows.Set(r);
      gp.support = view.group(g).rows.size();
      gp.group_coverage = Bitset(view.NumGroups());
      gp.group_coverage.Set(g);
      candidates.push_back(std::move(gp));
    }
  }

  // Redundancy removal: per distinct coverage set keep the shortest
  // pattern (ties: fewer predicates, then lexicographic for determinism).
  std::unordered_map<uint64_t, size_t> best_by_coverage;
  std::vector<GroupingPattern> result;
  for (auto& gp : candidates) {
    const uint64_t h = gp.group_coverage.Hash();
    auto it = best_by_coverage.find(h);
    if (it == best_by_coverage.end()) {
      best_by_coverage.emplace(h, result.size());
      result.push_back(std::move(gp));
      continue;
    }
    GroupingPattern& incumbent = result[it->second];
    // Hash collision guard: identical coverage only.
    if (!(incumbent.group_coverage == gp.group_coverage)) continue;
    const bool shorter =
        gp.pattern.Size() < incumbent.pattern.Size() ||
        (gp.pattern.Size() == incumbent.pattern.Size() &&
         gp.pattern.ToString() < incumbent.pattern.ToString());
    if (shorter) incumbent = std::move(gp);
  }
  return result;
}

}  // namespace causumx
