// AVX2 tier of the kernel layer. This translation unit is compiled with
// -mavx2 -mpopcnt (see CMakeLists.txt) and only on x86-64 builds; it is
// reached exclusively through the dispatch table after a runtime
// __builtin_cpu_supports("avx2") check, so the library binary stays
// runnable on pre-AVX2 CPUs.
//
// Bit-identity notes, kernel by kernel:
//  - Predicate compares use cmpeq_epi32 / cmp_pd with ordered-quiet
//    predicates — exact integer equality and IEEE comparisons, the same
//    booleans the scalar tier computes (NaN cells compare false).
//  - Popcounts are integer arithmetic (Mula's SSSE3-style byte-LUT
//    popcount widened to 256 bits); counts are exact.
//  - BlockedKahanSum runs four 64-row blocks in the four vector lanes.
//    Each lane executes the identical sequence of IEEE add/sub ops the
//    scalar per-block loop executes (no FMA contraction — Kahan has no
//    multiplies), and lane partials fold into the total in ascending
//    block order, so the result is bit-identical to the scalar tier.

#include <immintrin.h>

#include "util/kernels_internal.h"

namespace causumx {
namespace kernels {
namespace internal {

namespace {

void CompareI32EqAvx2(const int32_t* values, size_t n, int32_t target,
                      uint64_t* out) {
  const __m256i t = _mm256_set1_epi32(target);
  const size_t full = n >> 6;
  for (size_t w = 0; w < full; ++w) {
    const int32_t* base = values + (w << 6);
    uint64_t m = 0;
    for (size_t k = 0; k < 8; ++k) {
      const __m256i x = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(base + 8 * k));
      const int bits =
          _mm256_movemask_ps(_mm256_castsi256_ps(_mm256_cmpeq_epi32(x, t)));
      m |= static_cast<uint64_t>(static_cast<uint32_t>(bits)) << (8 * k);
    }
    out[w] = m;
  }
  const size_t rem = n & 63;
  if (rem != 0) {
    CompareI32EqScalar(values + (full << 6), rem, target, out + full);
  }
}

template <int kImm>
void CompareF64Imm(const double* values, size_t n, double rhs,
                   uint64_t* out) {
  const __m256d r = _mm256_set1_pd(rhs);
  const size_t full = n >> 6;
  for (size_t w = 0; w < full; ++w) {
    const double* base = values + (w << 6);
    uint64_t m = 0;
    for (size_t k = 0; k < 16; ++k) {
      const __m256d x = _mm256_loadu_pd(base + 4 * k);
      const int bits = _mm256_movemask_pd(_mm256_cmp_pd(x, r, kImm));
      m |= static_cast<uint64_t>(static_cast<uint32_t>(bits)) << (4 * k);
    }
    out[w] = m;
  }
  return;
}

void CompareF64Avx2(const double* values, size_t n, CmpOp op, double rhs,
                    uint64_t* out) {
  switch (op) {
    case CmpOp::kEq:
      CompareF64Imm<_CMP_EQ_OQ>(values, n, rhs, out);
      break;
    case CmpOp::kLt:
      CompareF64Imm<_CMP_LT_OQ>(values, n, rhs, out);
      break;
    case CmpOp::kGt:
      CompareF64Imm<_CMP_GT_OQ>(values, n, rhs, out);
      break;
    case CmpOp::kLe:
      CompareF64Imm<_CMP_LE_OQ>(values, n, rhs, out);
      break;
    case CmpOp::kGe:
      CompareF64Imm<_CMP_GE_OQ>(values, n, rhs, out);
      break;
  }
  const size_t rem = n & 63;
  if (rem != 0) {
    const size_t full = n >> 6;
    CompareF64Scalar(values + (full << 6), rem, op, rhs, out + full);
  }
}

// 256-bit byte-LUT popcount (Mula): per-byte nibble lookups summed with
// SAD against zero into four 64-bit lane counts.
inline __m256i Popcount256(__m256i v) {
  const __m256i lut = _mm256_setr_epi8(
      0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,
      0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
  const __m256i low = _mm256_set1_epi8(0x0f);
  const __m256i lo = _mm256_and_si256(v, low);
  const __m256i hi = _mm256_and_si256(_mm256_srli_epi16(v, 4), low);
  const __m256i cnt = _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo),
                                      _mm256_shuffle_epi8(lut, hi));
  return _mm256_sad_epu8(cnt, _mm256_setzero_si256());
}

inline size_t HorizontalSum64(__m256i v) {
  alignas(32) uint64_t lanes[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), v);
  return lanes[0] + lanes[1] + lanes[2] + lanes[3];
}

size_t PopcountWordsAvx2(const uint64_t* words, size_t n) {
  __m256i acc = _mm256_setzero_si256();
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i v = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(words + i));
    acc = _mm256_add_epi64(acc, Popcount256(v));
  }
  size_t c = HorizontalSum64(acc);
  for (; i < n; ++i) c += static_cast<size_t>(__builtin_popcountll(words[i]));
  return c;
}

size_t AndNotPopcountAvx2(const uint64_t* a, const uint64_t* b, size_t n) {
  __m256i acc = _mm256_setzero_si256();
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    // andnot(vb, va) = ~vb & va — the a & ~b we want.
    acc = _mm256_add_epi64(acc, Popcount256(_mm256_andnot_si256(vb, va)));
  }
  size_t c = HorizontalSum64(acc);
  for (; i < n; ++i) {
    c += static_cast<size_t>(__builtin_popcountll(a[i] & ~b[i]));
  }
  return c;
}

void AndWordsAvx2(uint64_t* dst, const uint64_t* src, size_t n) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i d =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    const __m256i s =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_and_si256(d, s));
  }
  for (; i < n; ++i) dst[i] &= src[i];
}

void OrWordsAvx2(uint64_t* dst, const uint64_t* src, size_t n) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i d =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    const __m256i s =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_or_si256(d, s));
  }
  for (; i < n; ++i) dst[i] |= src[i];
}

double BlockedKahanSumAvx2(const double* x, size_t n) {
  double total = 0.0, total_c = 0.0;
  auto fold = [&](double v) {
    const double y = v - total_c;
    const double t = total + y;
    total_c = (t - total) - y;
    total = t;
  };
  size_t begin = 0;
  // Four whole 64-row blocks at a time: lane l holds the running Kahan
  // state of block (begin/64 + l); iteration i adds element i of each of
  // the four blocks (a strided gather). Lane arithmetic is element-wise
  // IEEE add/sub — the exact per-block operation sequence of the scalar
  // tier — and lanes fold into the total in ascending block order below.
  const __m256i stride =
      _mm256_set_epi64x(int64_t{192}, int64_t{128}, int64_t{64}, int64_t{0});
  for (; begin + 256 <= n; begin += 256) {
    __m256d sum = _mm256_setzero_pd();
    __m256d comp = _mm256_setzero_pd();
    const double* base = x + begin;
    for (size_t i = 0; i < 64; ++i) {
      const __m256d v = _mm256_i64gather_pd(base + i, stride, 8);
      const __m256d y = _mm256_sub_pd(v, comp);
      const __m256d t = _mm256_add_pd(sum, y);
      comp = _mm256_sub_pd(_mm256_sub_pd(t, sum), y);
      sum = t;
    }
    alignas(32) double lane_sum[4], lane_c[4];
    _mm256_store_pd(lane_sum, sum);
    _mm256_store_pd(lane_c, comp);
    for (int l = 0; l < 4; ++l) {
      fold(lane_sum[l]);
      fold(lane_c[l]);
    }
  }
  // Remaining (< 4) blocks: the scalar per-block loop.
  for (; begin < n; begin += 64) {
    const size_t end = begin + 64 < n ? begin + 64 : n;
    double s = 0.0, c = 0.0;
    for (size_t i = begin; i < end; ++i) {
      const double y = x[i] - c;
      const double t = s + y;
      c = (t - s) - y;
      s = t;
    }
    fold(s);
    fold(c);
  }
  return total;
}

}  // namespace

const KernelOps* GetAvx2Ops() {
  static const KernelOps ops = {
      &CompareI32EqAvx2, &CompareF64Avx2,    &PopcountWordsAvx2,
      &AndNotPopcountAvx2, &AndWordsAvx2,    &OrWordsAvx2,
      &BlockedKahanSumAvx2,
  };
  return &ops;
}

}  // namespace internal
}  // namespace kernels
}  // namespace causumx
