// Internal plumbing of the kernel layer: the per-tier dispatch table and
// the scalar reference implementations (also used as loop tails by the
// vector tiers). Not part of the public API — include util/kernels.h.

#ifndef CAUSUMX_UTIL_KERNELS_INTERNAL_H_
#define CAUSUMX_UTIL_KERNELS_INTERNAL_H_

#include "util/kernels.h"

namespace causumx {
namespace kernels {
namespace internal {

/// One function pointer per dispatched kernel. Kernels with no vector
/// variant (LUT gather, int64 compare) are plain functions in
/// kernels.cpp and do not appear here.
struct KernelOps {
  void (*compare_i32_eq)(const int32_t*, size_t, int32_t, uint64_t*);
  void (*compare_f64)(const double*, size_t, CmpOp, double, uint64_t*);
  size_t (*popcount_words)(const uint64_t*, size_t);
  size_t (*andnot_popcount)(const uint64_t*, const uint64_t*, size_t);
  void (*and_words)(uint64_t*, const uint64_t*, size_t);
  void (*or_words)(uint64_t*, const uint64_t*, size_t);
  double (*blocked_kahan_sum)(const double*, size_t);
};

/// The portable tier (always available).
const KernelOps* GetScalarOps();

#if defined(CAUSUMX_HAVE_AVX2_KERNELS)
/// The AVX2 tier (kernels_avx2.cpp; x86-64 builds only).
const KernelOps* GetAvx2Ops();
#endif

// Scalar implementations, shared as tail handlers by the vector tiers.
// Each matches its public counterpart's contract exactly.

/// Scalar CompareI32Eq.
void CompareI32EqScalar(const int32_t* values, size_t n, int32_t target,
                        uint64_t* out);
/// Scalar CompareF64 (rhs must not be NaN; see the public contract).
void CompareF64Scalar(const double* values, size_t n, CmpOp op, double rhs,
                      uint64_t* out);
/// Scalar PopcountWords.
size_t PopcountWordsScalar(const uint64_t* words, size_t n);
/// Scalar AndNotPopcount.
size_t AndNotPopcountScalar(const uint64_t* a, const uint64_t* b, size_t n);
/// Scalar AndWords.
void AndWordsScalar(uint64_t* dst, const uint64_t* src, size_t n);
/// Scalar OrWords.
void OrWordsScalar(uint64_t* dst, const uint64_t* src, size_t n);
/// Scalar BlockedKahanSum.
double BlockedKahanSumScalar(const double* x, size_t n);

}  // namespace internal
}  // namespace kernels
}  // namespace causumx

#endif  // CAUSUMX_UTIL_KERNELS_INTERNAL_H_
