#include "util/shard_plan.h"

#include <algorithm>

#include "util/stats.h"

namespace causumx {

static_assert(kSummationBlockRows == 64,
              "shard alignment assumes 64-row summation blocks (= one "
              "bitset word)");

namespace {

size_t AlignUpToBlock(size_t rows) {
  const size_t block = kSummationBlockRows;
  if (rows == 0) return block;
  return ((rows + block - 1) / block) * block;
}

}  // namespace

ShardPlan::ShardPlan(size_t num_rows)
    : num_rows_(num_rows), shard_rows_(AlignUpToBlock(num_rows)) {}

ShardPlan::ShardPlan(size_t num_rows, size_t shard_rows)
    : num_rows_(num_rows), shard_rows_(AlignUpToBlock(shard_rows)) {}

ShardPlan ShardPlan::ForShardCount(size_t num_rows, size_t requested_shards,
                                   size_t auto_shards) {
  size_t shards = requested_shards;
  if (shards == 0) shards = std::max<size_t>(1, auto_shards);
  // One shard per summation block is the finest legal split; a larger
  // request clamps there (shard_rows_ floors at one block).
  const size_t per_shard = (num_rows + shards - 1) / std::max<size_t>(1, shards);
  return ShardPlan(num_rows, per_shard);
}

size_t ShardPlan::NumShards() const {
  if (num_rows_ == 0) return 1;
  return (num_rows_ + shard_rows_ - 1) / shard_rows_;
}

size_t ShardPlan::ShardBegin(size_t shard) const {
  return std::min(shard * shard_rows_, num_rows_);
}

size_t ShardPlan::ShardEnd(size_t shard) const {
  return std::min((shard + 1) * shard_rows_, num_rows_);
}

ShardPlan ShardPlan::Extended(size_t new_num_rows) const {
  ShardPlan plan = *this;
  plan.num_rows_ = new_num_rows;
  return plan;
}

}  // namespace causumx
