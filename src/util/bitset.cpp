#include "util/bitset.h"

#include <algorithm>
#include <bit>
#include <cassert>

#include "util/kernels.h"

namespace causumx {

Bitset::Bitset(size_t size) : size_(size), words_((size + 63) / 64, 0) {}

void Bitset::Set(size_t i) {
  assert(i < size_);
  words_[i >> 6] |= (uint64_t{1} << (i & 63));
}

void Bitset::Clear(size_t i) {
  assert(i < size_);
  words_[i >> 6] &= ~(uint64_t{1} << (i & 63));
}

bool Bitset::Test(size_t i) const {
  if (i >= size_) return false;
  return (words_[i >> 6] >> (i & 63)) & 1;
}

size_t Bitset::Count() const {
  return kernels::PopcountWords(words_.data(), words_.size());
}

size_t Bitset::CountRange(size_t begin, size_t end) const {
  end = std::min(end, size_);
  if (begin >= end) return 0;
  const size_t first_word = begin >> 6;
  const size_t last_word = (end - 1) >> 6;
  // Mask off bits below `begin` in the first word and at/after `end` in
  // the last; whole words in between popcount directly.
  uint64_t first_mask = ~uint64_t{0} << (begin & 63);
  const size_t end_rem = end & 63;
  uint64_t last_mask =
      end_rem == 0 ? ~uint64_t{0} : (uint64_t{1} << end_rem) - 1;
  if (first_word == last_word) {
    return std::popcount(words_[first_word] & first_mask & last_mask);
  }
  size_t c = std::popcount(words_[first_word] & first_mask);
  for (size_t w = first_word + 1; w < last_word; ++w) {
    c += std::popcount(words_[w]);
  }
  c += std::popcount(words_[last_word] & last_mask);
  return c;
}

size_t Bitset::CountAndNot(const Bitset& other) const {
  assert(size_ == other.size_);
  // Normalize a size drift instead of reading past the shorter word
  // array: `other`'s absent words are zero, so every bit of ours in the
  // non-overlapping tail counts.
  const size_t common = std::min(words_.size(), other.words_.size());
  size_t c = kernels::AndNotPopcount(words_.data(), other.words_.data(),
                                     common);
  for (size_t i = common; i < words_.size(); ++i) {
    c += std::popcount(words_[i]);
  }
  return c;
}

size_t Bitset::CountAndNotRange(const Bitset& other, size_t begin,
                                size_t end) const {
  end = std::min(end, size_);
  if (begin >= end) return 0;
  auto other_word = [&](size_t w) -> uint64_t {
    return w < other.words_.size() ? other.words_[w] : 0;
  };
  const size_t first_word = begin >> 6;
  const size_t last_word = (end - 1) >> 6;
  const uint64_t first_mask = ~uint64_t{0} << (begin & 63);
  const size_t end_rem = end & 63;
  const uint64_t last_mask =
      end_rem == 0 ? ~uint64_t{0} : (uint64_t{1} << end_rem) - 1;
  if (first_word == last_word) {
    return std::popcount(words_[first_word] & ~other_word(first_word) &
                         first_mask & last_mask);
  }
  size_t c = std::popcount(words_[first_word] & ~other_word(first_word) &
                           first_mask);
  // Whole words in between go through the fused kernel; `other` only
  // needs the zero-extension fallback when it is genuinely shorter.
  const size_t mid_begin = first_word + 1;
  const size_t mid_end = last_word;
  if (mid_end > mid_begin) {
    const size_t overlap =
        std::min(mid_end, std::max(mid_begin, other.words_.size()));
    c += kernels::AndNotPopcount(words_.data() + mid_begin,
                                 other.words_.data() + mid_begin,
                                 overlap - mid_begin);
    for (size_t w = overlap; w < mid_end; ++w) {
      c += std::popcount(words_[w]);
    }
  }
  c += std::popcount(words_[last_word] & ~other_word(last_word) & last_mask);
  return c;
}

Bitset& Bitset::operator|=(const Bitset& other) {
  assert(size_ == other.size_);
  kernels::OrWords(words_.data(), other.words_.data(),
                   std::min(words_.size(), other.words_.size()));
  return *this;
}

Bitset& Bitset::operator&=(const Bitset& other) {
  assert(size_ == other.size_);
  kernels::AndWords(words_.data(), other.words_.data(),
                    std::min(words_.size(), other.words_.size()));
  return *this;
}

Bitset Bitset::operator|(const Bitset& other) const {
  Bitset r = *this;
  r |= other;
  return r;
}

Bitset Bitset::operator&(const Bitset& other) const {
  Bitset r = *this;
  r &= other;
  return r;
}

bool Bitset::operator==(const Bitset& other) const {
  return size_ == other.size_ && words_ == other.words_;
}

bool Bitset::IsSubsetOf(const Bitset& other) const {
  assert(size_ == other.size_);
  for (size_t i = 0; i < words_.size(); ++i) {
    if (words_[i] & ~other.words_[i]) return false;
  }
  return true;
}

std::vector<size_t> Bitset::ToIndices() const {
  std::vector<size_t> out;
  out.reserve(Count());
  for (size_t w = 0; w < words_.size(); ++w) {
    uint64_t bits = words_[w];
    while (bits) {
      const int b = std::countr_zero(bits);
      out.push_back(w * 64 + static_cast<size_t>(b));
      bits &= bits - 1;
    }
  }
  return out;
}

void Bitset::AppendIndicesInRange(size_t begin, size_t end,
                                  std::vector<size_t>* out) const {
  end = std::min(end, size_);
  for (size_t i = begin; i < end;) {
    if ((i & 63) == 0 && i + 64 <= end) {
      uint64_t bits = words_[i >> 6];
      while (bits) {
        const int b = std::countr_zero(bits);
        out->push_back(i + static_cast<size_t>(b));
        bits &= bits - 1;
      }
      i += 64;
    } else {
      if (Test(i)) out->push_back(i);
      ++i;
    }
  }
}

Bitset Bitset::ExtractRange(size_t begin, size_t end) const {
  assert((begin & 63) == 0 && end >= begin && end <= size_);
  Bitset out(end - begin);
  const size_t first_word = begin >> 6;
  for (size_t w = 0; w < out.words_.size(); ++w) {
    out.words_[w] = words_[first_word + w];
  }
  // Clear padding past the new size (the source word may carry bits of
  // rows beyond `end`).
  const size_t rem = out.size_ & 63;
  if (rem != 0 && !out.words_.empty()) {
    out.words_.back() &= (uint64_t{1} << rem) - 1;
  }
  return out;
}

void Bitset::AssignRange(size_t offset, const Bitset& segment) {
  assert((offset & 63) == 0 && offset + segment.size_ <= size_);
  const size_t first_word = offset >> 6;
  const size_t full_words = segment.size_ >> 6;
  for (size_t w = 0; w < full_words; ++w) {
    words_[first_word + w] = segment.words_[w];
  }
  const size_t rem = segment.size_ & 63;
  if (rem != 0) {
    // The segment's last word is partial; splice it under a mask so bits
    // of this bitset beyond the segment keep their value.
    const uint64_t mask = (uint64_t{1} << rem) - 1;
    uint64_t& dst = words_[first_word + full_words];
    dst = (dst & ~mask) | (segment.words_[full_words] & mask);
  }
}

void Bitset::AndRange(size_t offset, const Bitset& segment) {
  assert((offset & 63) == 0 && offset + segment.size_ <= size_);
  const size_t first_word = offset >> 6;
  const size_t full_words = segment.size_ >> 6;
  for (size_t w = 0; w < full_words; ++w) {
    words_[first_word + w] &= segment.words_[w];
  }
  const size_t rem = segment.size_ & 63;
  if (rem != 0) {
    const uint64_t mask = (uint64_t{1} << rem) - 1;
    uint64_t& dst = words_[first_word + full_words];
    dst &= segment.words_[full_words] | ~mask;
  }
}

uint64_t Bitset::Hash() const {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (uint64_t w : words_) {
    h ^= w;
    h *= 0x100000001b3ULL;
  }
  return h ^ size_;
}

void Bitset::SetAll() {
  for (auto& w : words_) w = ~uint64_t{0};
  // Clear padding bits past size_.
  const size_t rem = size_ & 63;
  if (rem != 0 && !words_.empty()) {
    words_.back() &= (uint64_t{1} << rem) - 1;
  }
}

void Bitset::Resize(size_t new_size) {
  words_.resize((new_size + 63) / 64, 0);
  size_ = new_size;
  // Clear padding bits past the (possibly smaller) new size so word-wise
  // equality and Hash() stay canonical.
  const size_t rem = size_ & 63;
  if (rem != 0 && !words_.empty()) {
    words_.back() &= (uint64_t{1} << rem) - 1;
  }
}

void Bitset::DropPrefix(size_t n) {
  assert(n <= size_);
  if (n == 0) return;
  const size_t new_size = size_ - n;
  const size_t word_shift = n >> 6;
  const size_t bit_shift = n & 63;
  const size_t new_words = (new_size + 63) / 64;
  if (bit_shift == 0) {
    words_.erase(words_.begin(),
                 words_.begin() + static_cast<ptrdiff_t>(word_shift));
  } else {
    for (size_t w = 0; w < new_words; ++w) {
      uint64_t lo = words_[word_shift + w] >> bit_shift;
      uint64_t hi = word_shift + w + 1 < words_.size()
                        ? words_[word_shift + w + 1] << (64 - bit_shift)
                        : 0;
      words_[w] = lo | hi;
    }
  }
  words_.resize(new_words);
  size_ = new_size;
  // Keep the canonical-padding invariant: bits at indexes >= size() clear.
  const size_t rem = size_ & 63;
  if (rem != 0 && !words_.empty()) {
    words_.back() &= (uint64_t{1} << rem) - 1;
  }
}

bool BitsetDedup::Contains(const Bitset& bits) const {
  auto it = buckets_.find(bits.Hash());
  if (it == buckets_.end()) return false;
  for (const Bitset& b : it->second) {
    if (b == bits) return true;
  }
  return false;
}

bool BitsetDedup::Insert(Bitset bits) {
  const uint64_t h = bits.Hash();
  return Insert(h, std::move(bits));
}

bool BitsetDedup::Insert(uint64_t hash, Bitset bits) {
  std::vector<Bitset>& bucket = buckets_[hash];
  for (const Bitset& b : bucket) {
    if (b == bits) return false;
  }
  bucket.push_back(std::move(bits));
  return true;
}

}  // namespace causumx
