#include "util/bitset.h"

#include <bit>
#include <cassert>

namespace causumx {

Bitset::Bitset(size_t size) : size_(size), words_((size + 63) / 64, 0) {}

void Bitset::Set(size_t i) {
  assert(i < size_);
  words_[i >> 6] |= (uint64_t{1} << (i & 63));
}

void Bitset::Clear(size_t i) {
  assert(i < size_);
  words_[i >> 6] &= ~(uint64_t{1} << (i & 63));
}

bool Bitset::Test(size_t i) const {
  if (i >= size_) return false;
  return (words_[i >> 6] >> (i & 63)) & 1;
}

size_t Bitset::Count() const {
  size_t c = 0;
  for (uint64_t w : words_) c += std::popcount(w);
  return c;
}

Bitset& Bitset::operator|=(const Bitset& other) {
  assert(size_ == other.size_);
  for (size_t i = 0; i < words_.size(); ++i) words_[i] |= other.words_[i];
  return *this;
}

Bitset& Bitset::operator&=(const Bitset& other) {
  assert(size_ == other.size_);
  for (size_t i = 0; i < words_.size(); ++i) words_[i] &= other.words_[i];
  return *this;
}

Bitset Bitset::operator|(const Bitset& other) const {
  Bitset r = *this;
  r |= other;
  return r;
}

Bitset Bitset::operator&(const Bitset& other) const {
  Bitset r = *this;
  r &= other;
  return r;
}

bool Bitset::operator==(const Bitset& other) const {
  return size_ == other.size_ && words_ == other.words_;
}

bool Bitset::IsSubsetOf(const Bitset& other) const {
  assert(size_ == other.size_);
  for (size_t i = 0; i < words_.size(); ++i) {
    if (words_[i] & ~other.words_[i]) return false;
  }
  return true;
}

std::vector<size_t> Bitset::ToIndices() const {
  std::vector<size_t> out;
  out.reserve(Count());
  for (size_t w = 0; w < words_.size(); ++w) {
    uint64_t bits = words_[w];
    while (bits) {
      const int b = std::countr_zero(bits);
      out.push_back(w * 64 + static_cast<size_t>(b));
      bits &= bits - 1;
    }
  }
  return out;
}

uint64_t Bitset::Hash() const {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (uint64_t w : words_) {
    h ^= w;
    h *= 0x100000001b3ULL;
  }
  return h ^ size_;
}

void Bitset::SetAll() {
  for (auto& w : words_) w = ~uint64_t{0};
  // Clear padding bits past size_.
  const size_t rem = size_ & 63;
  if (rem != 0 && !words_.empty()) {
    words_.back() &= (uint64_t{1} << rem) - 1;
  }
}

void Bitset::Resize(size_t new_size) {
  words_.resize((new_size + 63) / 64, 0);
  size_ = new_size;
  // Clear padding bits past the (possibly smaller) new size so word-wise
  // equality and Hash() stay canonical.
  const size_t rem = size_ & 63;
  if (rem != 0 && !words_.empty()) {
    words_.back() &= (uint64_t{1} << rem) - 1;
  }
}

bool BitsetDedup::Contains(const Bitset& bits) const {
  auto it = buckets_.find(bits.Hash());
  if (it == buckets_.end()) return false;
  for (const Bitset& b : it->second) {
    if (b == bits) return true;
  }
  return false;
}

bool BitsetDedup::Insert(Bitset bits) {
  const uint64_t h = bits.Hash();
  return Insert(h, std::move(bits));
}

bool BitsetDedup::Insert(uint64_t hash, Bitset bits) {
  std::vector<Bitset>& bucket = buckets_[hash];
  for (const Bitset& b : bucket) {
    if (b == bits) return false;
  }
  bucket.push_back(std::move(bits));
  return true;
}

}  // namespace causumx
