// Fixed-size worker pool used to parallelize treatment-pattern mining
// across grouping patterns (optimization (c) in Section 5.2 of the paper).

#ifndef CAUSUMX_UTIL_THREAD_POOL_H_
#define CAUSUMX_UTIL_THREAD_POOL_H_

#include <atomic>
#include <functional>
#include <future>
#include <queue>
#include <thread>
#include <vector>

#include "util/thread_annotations.h"

namespace causumx {

/// A minimal fixed-size thread pool.
///
/// Tasks are std::function<void()>; Submit returns a future for the task's
/// completion. The pool joins all workers on destruction after draining the
/// queue. Thread-safe.
class ThreadPool {
 public:
  /// Creates `num_threads` workers (>= 1; 0 is clamped to 1).
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task; returns a future that becomes ready when it finishes.
  std::future<void> Submit(std::function<void()> task);

  /// Runs fn(i) for i in [0, n) across the pool and blocks until all
  /// complete. The calling thread participates, so nested calls from a
  /// pool worker (service queries parallelizing on the shared pool)
  /// cannot deadlock even when every worker is busy. Exceptions in tasks
  /// propagate from this call (first one).
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

  size_t NumThreads() const { return workers_.size(); }

  /// Workers currently parked waiting for a task (approximate; lock-free
  /// read). The nested-parallelism gate in RunOn uses this.
  size_t NumIdle() const { return idle_.load(std::memory_order_relaxed); }

  /// Hardware concurrency with a sane floor of 1.
  static size_t DefaultThreads();

  /// ParallelFor when a pool is at hand AND has idle capacity, a plain
  /// serial loop otherwise. The sharded execution paths call this for
  /// their nested data-parallel stages: when every worker is already
  /// busy (e.g. phase-2 mining saturates the pool across grouping
  /// patterns), dispatching inner shards/chunks buys no parallelism and
  /// only pays queue traffic, so the caller inlines the identical loop —
  /// and when workers free up (the straggler tail, or pipeline stages
  /// outside the mining fan-out), inner work spreads across them. The
  /// gate only chooses a schedule; the computation, and therefore the
  /// result, is the same either way.
  static void RunOn(ThreadPool* pool, size_t n,
                    const std::function<void(size_t)>& fn) {
    if (pool != nullptr && n > 1 && pool->NumIdle() > 0) {
      pool->ParallelFor(n, fn);
    } else {
      for (size_t i = 0; i < n; ++i) fn(i);
    }
  }

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  util::Mutex mu_;
  std::queue<std::packaged_task<void()>> tasks_ CAUSUMX_GUARDED_BY(mu_);
  util::CondVar cv_;
  std::atomic<size_t> idle_{0};
  bool stop_ CAUSUMX_GUARDED_BY(mu_) = false;
};

}  // namespace causumx

#endif  // CAUSUMX_UTIL_THREAD_POOL_H_
