// Dynamic bitset used for pattern coverage over groups and tuple
// selections. Grouping-pattern dedup hashes these; the LP builder reads
// them as group-coverage sets.

#ifndef CAUSUMX_UTIL_BITSET_H_
#define CAUSUMX_UTIL_BITSET_H_

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

namespace causumx {

/// Fixed-universe dynamic bitset with the set operations the miners need.
class Bitset {
 public:
  Bitset() = default;
  /// Creates a bitset over universe [0, size), all bits clear.
  explicit Bitset(size_t size);

  size_t size() const { return size_; }

  void Set(size_t i);
  void Clear(size_t i);
  bool Test(size_t i) const;

  /// Number of set bits.
  size_t Count() const;

  /// Number of set bits with index in [begin, end) — the per-shard
  /// popcount primitive. `end` is clamped to size().
  size_t CountRange(size_t begin, size_t end) const;

  /// popcount(this & ~other): the marginal-gain count of the greedy
  /// solver (|coverage \ covered|) without materializing the union.
  /// Sizes should match (debug-asserted); a shorter `other` is treated
  /// as zero-extended — this bitset's tail bits all count — so a size
  /// drift after appends over-counts predictably instead of reading out
  /// of bounds.
  size_t CountAndNot(const Bitset& other) const;

  /// popcount(this & ~other) restricted to bit indexes in [begin, end)
  /// (clamped to size()); `other` is zero-extended as above. Lets
  /// callers whose universe grew (appends) scan exactly the original
  /// range instead of counting tail bits.
  size_t CountAndNotRange(const Bitset& other, size_t begin,
                          size_t end) const;

  bool Any() const { return Count() > 0; }
  bool None() const { return Count() == 0; }

  /// In-place union / intersection. Sizes must match.
  Bitset& operator|=(const Bitset& other);
  Bitset& operator&=(const Bitset& other);

  Bitset operator|(const Bitset& other) const;
  Bitset operator&(const Bitset& other) const;

  bool operator==(const Bitset& other) const;

  /// True iff this is a subset of `other`.
  bool IsSubsetOf(const Bitset& other) const;

  /// Indices of all set bits, ascending.
  std::vector<size_t> ToIndices() const;

  /// Appends the indices of set bits in [begin, end) to `out`, ascending.
  /// Shard-wise row collection: per-shard calls over [ShardBegin,
  /// ShardEnd) ranges concatenate to exactly ToIndices().
  void AppendIndicesInRange(size_t begin, size_t end,
                            std::vector<size_t>* out) const;

  /// The bits [begin, end) as a new (end - begin)-bit bitset; bit i of
  /// the result is bit (begin + i) of this. `begin` must be a multiple
  /// of 64 (shard boundaries are word-aligned by construction).
  Bitset ExtractRange(size_t begin, size_t end) const;

  /// Writes `segment` over this bitset's range [offset, offset +
  /// segment.size()), replacing those bits. `offset` must be a multiple
  /// of 64 and the range must fit. Distinct word-aligned ranges may be
  /// written concurrently (the parallel shard assembly relies on this).
  void AssignRange(size_t offset, const Bitset& segment);

  /// ANDs `segment` into this bitset's range [offset, offset +
  /// segment.size()). Same alignment/concurrency contract as AssignRange.
  void AndRange(size_t offset, const Bitset& segment);

  /// FNV-1a style hash of the bit content (suitable for dedup maps).
  uint64_t Hash() const;

  /// Raw 64-bit word storage (little-endian bit order: bit i of the set
  /// lives in word i/64 at position i%64). The kernel layer
  /// (util/kernels.h) operates on these words directly.
  const uint64_t* data() const { return words_.data(); }

  /// Mutable word storage for kernel writers. Invariant: padding bits at
  /// indexes >= size() must stay clear (word-wise equality, Hash(), and
  /// Count() rely on canonical padding) — predicate kernels emit
  /// tail-masked words, so writes of whole kernel outputs preserve it.
  uint64_t* mutable_data() { return words_.data(); }

  /// Number of 64-bit words backing the set (= ceil(size() / 64)).
  size_t num_words() const { return words_.size(); }

  /// Sets every bit in the universe.
  void SetAll();

  /// Changes the universe to [0, new_size). Growing appends clear bits
  /// (existing bits keep their positions — the append-only streaming path
  /// relies on this); shrinking drops bits past the new size.
  void Resize(size_t new_size);

  /// Removes the first `n` bits: bit i of the result is bit (n + i) of
  /// the original, and the universe shrinks to size() - n. `n` may have
  /// any alignment. The windowed-retention retract path shifts cached
  /// bitsets down by the expired-prefix length with this.
  void DropPrefix(size_t n);

 private:
  size_t size_ = 0;
  std::vector<uint64_t> words_;
};

/// Dedup set of bitsets bucketed by Hash() with exact content comparison
/// on bucket hits, so a 64-bit hash collision can never conflate two
/// distinct bitsets. Shared by the top-k treated-set dedup and the greedy
/// solver's incomparability constraint.
class BitsetDedup {
 public:
  /// True iff an equal bitset was already inserted.
  bool Contains(const Bitset& bits) const;

  /// Inserts `bits` unless an equal bitset is present; returns true when
  /// it was new. The overload taking `hash` lets callers reuse (or, in
  /// tests, forge) a precomputed Hash() value.
  bool Insert(Bitset bits);
  bool Insert(uint64_t hash, Bitset bits);

 private:
  std::unordered_map<uint64_t, std::vector<Bitset>> buckets_;
};

}  // namespace causumx

#endif  // CAUSUMX_UTIL_BITSET_H_
