// Dynamic bitset used for pattern coverage over groups and tuple
// selections. Grouping-pattern dedup hashes these; the LP builder reads
// them as group-coverage sets.

#ifndef CAUSUMX_UTIL_BITSET_H_
#define CAUSUMX_UTIL_BITSET_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace causumx {

/// Fixed-universe dynamic bitset with the set operations the miners need.
class Bitset {
 public:
  Bitset() = default;
  /// Creates a bitset over universe [0, size), all bits clear.
  explicit Bitset(size_t size);

  size_t size() const { return size_; }

  void Set(size_t i);
  void Clear(size_t i);
  bool Test(size_t i) const;

  /// Number of set bits.
  size_t Count() const;

  bool Any() const { return Count() > 0; }
  bool None() const { return Count() == 0; }

  /// In-place union / intersection. Sizes must match.
  Bitset& operator|=(const Bitset& other);
  Bitset& operator&=(const Bitset& other);

  Bitset operator|(const Bitset& other) const;
  Bitset operator&(const Bitset& other) const;

  bool operator==(const Bitset& other) const;

  /// True iff this is a subset of `other`.
  bool IsSubsetOf(const Bitset& other) const;

  /// Indices of all set bits, ascending.
  std::vector<size_t> ToIndices() const;

  /// FNV-1a style hash of the bit content (suitable for dedup maps).
  uint64_t Hash() const;

  /// Sets every bit in the universe.
  void SetAll();

 private:
  size_t size_ = 0;
  std::vector<uint64_t> words_;
};

}  // namespace causumx

#endif  // CAUSUMX_UTIL_BITSET_H_
