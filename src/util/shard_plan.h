// Row-shard partitioning for the parallel execution engine.
//
// A ShardPlan splits a table's row space [0, num_rows) into fixed-size
// contiguous shards. Every data-parallel stage of the pipeline —
// predicate bitset materialization, numeric view builds, aggregate-view
// evaluation, estimator row collection — iterates shards instead of the
// whole table, so a thread pool can execute shards concurrently.
//
// Two invariants make sharding invisible in the results:
//
//  1. Shard boundaries are multiples of kSummationBlockRows (= 64, one
//     bitset word). Bit-exact operations (predicate evaluation, set
//     algebra, popcounts) decompose into disjoint word ranges, and
//     order-sensitive floating-point reductions decompose into whole
//     summation blocks whose partials merge in ascending block order
//     (see BlockedKahan in util/stats.h). Either way the result is a
//     function of the data alone — any shard count, thread count, or
//     scheduling produces bit-identical output.
//
//  2. The shard size is fixed at plan creation and survives appends: a
//     delta extends the tail shard up to the shard size and then opens
//     new shards, so shards fully below the old row count keep their
//     exact boundaries (and their cached artifacts; see the EvalEngine
//     delta-extension constructor).
//
// The `--shards N` knob resolves to a shard size of ceil(rows / N)
// rounded up to a block multiple; N = 0 means one shard per available
// worker thread. Out-of-range requests clamp (a shard is never smaller
// than one block and never empty), so any N is valid.
//
// Layering note: this lives in src/util (it depends on nothing but
// <cstddef>) precisely so lower layers — the dataset layer's sharded
// AggregateView overload — can consume plans without reaching up into
// the engine module. The architectural analyzer enforces that DAG.

#ifndef CAUSUMX_UTIL_SHARD_PLAN_H_
#define CAUSUMX_UTIL_SHARD_PLAN_H_

#include <cstddef>

namespace causumx {

class ShardPlan {
 public:
  /// A single shard covering [0, num_rows) — the serial reference plan.
  ShardPlan() = default;
  explicit ShardPlan(size_t num_rows);

  /// Plan over `num_rows` rows with an explicit shard size. `shard_rows`
  /// is rounded up to a multiple of kSummationBlockRows (minimum one
  /// block).
  ShardPlan(size_t num_rows, size_t shard_rows);

  /// Resolves the user-facing shard-count knob: `requested_shards` = 0
  /// picks one shard per worker thread (`auto_shards`, itself floored at
  /// 1); any positive request is honored up to one shard per summation
  /// block. The returned plan has NumShards() in [1, requested] — fewer
  /// when the table is too small to split further.
  static ShardPlan ForShardCount(size_t num_rows, size_t requested_shards,
                                 size_t auto_shards);

  size_t num_rows() const { return num_rows_; }
  size_t shard_rows() const { return shard_rows_; }

  /// Number of shards; >= 1 (an empty table has one empty shard).
  size_t NumShards() const;

  /// Row range [ShardBegin(s), ShardEnd(s)) of shard s.
  size_t ShardBegin(size_t shard) const;
  size_t ShardEnd(size_t shard) const;

  /// Shard containing row `row` (row < num_rows).
  size_t ShardOfRow(size_t row) const { return row / shard_rows_; }

  /// A plan with the same shard size over a grown row count — the
  /// append path's plan: shards below the old row count are unchanged.
  ShardPlan Extended(size_t new_num_rows) const;

  bool operator==(const ShardPlan& other) const {
    return num_rows_ == other.num_rows_ && shard_rows_ == other.shard_rows_;
  }

 private:
  size_t num_rows_ = 0;
  size_t shard_rows_ = kMinShardRows;

  static constexpr size_t kMinShardRows = 64;  // = kSummationBlockRows
};

}  // namespace causumx

#endif  // CAUSUMX_UTIL_SHARD_PLAN_H_
