#include "util/compressed_bitset.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <stdexcept>

#include "util/kernels.h"

namespace causumx {

namespace {

// -- minimal byte codec for Serialize/Deserialize ---------------------------
// util cannot depend on the storage layer, so the few primitives the
// bitset encodings need live here: LEB128 varints and fixed-width
// little-endian scalars, with checked reads that throw on truncation.

void PutVar(std::string* out, uint64_t v) {
  while (v >= 0x80u) {
    out->push_back(static_cast<char>((v & 0x7Fu) | 0x80u));
    v >>= 7;
  }
  out->push_back(static_cast<char>(v));
}

[[noreturn]] void Malformed(const char* what) {
  throw std::runtime_error(std::string("compressed bitset: ") + what);
}

uint64_t GetVar(const std::string& b, size_t* pos) {
  uint64_t v = 0;
  for (int shift = 0; shift < 64; shift += 7) {
    if (*pos >= b.size()) Malformed("truncated varint");
    const unsigned char byte = static_cast<unsigned char>(b[(*pos)++]);
    v |= static_cast<uint64_t>(byte & 0x7Fu) << shift;
    if ((byte & 0x80u) == 0) return v;
  }
  Malformed("overlong varint");
}

void PutU16Le(std::string* out, uint16_t v) {
  out->push_back(static_cast<char>(v & 0xFFu));
  out->push_back(static_cast<char>(v >> 8));
}

void PutU64Le(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFFu));
  }
}

uint16_t GetU16Le(const std::string& b, size_t* pos) {
  if (b.size() - *pos < 2) Malformed("truncated u16");
  const auto* p = reinterpret_cast<const unsigned char*>(b.data() + *pos);
  *pos += 2;
  return static_cast<uint16_t>(p[0] | (p[1] << 8));
}

uint64_t GetU64Le(const std::string& b, size_t* pos) {
  if (b.size() - *pos < 8) Malformed("truncated u64");
  const auto* p = reinterpret_cast<const unsigned char*>(b.data() + *pos);
  *pos += 8;
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(p[i]) << (8 * i);
  return v;
}

// Number of maximal runs of consecutive set bits across the words of one
// chunk: rising edges of the bit stream, i.e. popcount(x & ~(x << 1))
// with the previous word's top bit carried into the shift.
size_t CountRuns(const uint64_t* words, size_t n_words) {
  size_t runs = 0;
  uint64_t prev_msb = 0;
  for (size_t w = 0; w < n_words; ++w) {
    const uint64_t x = words[w];
    runs += std::popcount(x & ~((x << 1) | prev_msb));
    prev_msb = x >> 63;
  }
  return runs;
}

}  // namespace

CompressedBitset CompressedBitset::FromBitset(const Bitset& bits) {
  CompressedBitset out;
  out.size_ = bits.size();
  const uint64_t* words = bits.data();
  const size_t n_chunks = (bits.size() + kChunkBits - 1) / kChunkBits;
  out.chunks_.reserve(n_chunks);
  constexpr size_t kChunkWords = kChunkBits / 64;
  for (size_t c = 0; c < n_chunks; ++c) {
    const size_t word_begin = c * kChunkWords;
    const size_t word_end = std::min(word_begin + kChunkWords,
                                     bits.num_words());
    const uint64_t* cw = words + word_begin;
    const size_t nw = word_end - word_begin;
    Container ct;
    ct.count = static_cast<uint32_t>(kernels::PopcountWords(cw, nw));
    out.count_ += ct.count;
    const size_t runs = CountRuns(cw, nw);
    const size_t array_bytes = 2 * static_cast<size_t>(ct.count);
    const size_t bitmap_bytes = 8 * nw;
    const size_t run_bytes = 4 * runs;
    // Smallest encoding wins; ties resolve run < array < bitmap so the
    // layout is deterministic (equality relies on this).
    if (run_bytes <= array_bytes && run_bytes <= bitmap_bytes) {
      ct.type = ContainerType::kRun;
      ct.u16.reserve(2 * runs);
      uint64_t prev_msb = 0;
      size_t open_start = 0;
      bool open = false;
      for (size_t w = 0; w < nw; ++w) {
        uint64_t rising = cw[w] & ~((cw[w] << 1) | prev_msb);
        uint64_t falling = ~cw[w] & ((cw[w] << 1) | prev_msb);
        prev_msb = cw[w] >> 63;
        while (rising | falling) {
          const int rb = rising ? std::countr_zero(rising) : 64;
          const int fb = falling ? std::countr_zero(falling) : 64;
          if (fb < rb) {
            // A run that started earlier ends at bit fb.
            ct.u16.push_back(static_cast<uint16_t>(open_start));
            ct.u16.push_back(
                static_cast<uint16_t>(w * 64 + fb - open_start - 1));
            open = false;
            falling &= falling - 1;
          } else {
            open_start = w * 64 + static_cast<size_t>(rb);
            open = true;
            rising &= rising - 1;
          }
        }
      }
      if (open) {
        // Run extends to the end of the chunk.
        ct.u16.push_back(static_cast<uint16_t>(open_start));
        ct.u16.push_back(
            static_cast<uint16_t>(nw * 64 - open_start - 1));
      }
      assert(ct.u16.size() == 2 * runs);
    } else if (array_bytes <= bitmap_bytes) {
      ct.type = ContainerType::kArray;
      ct.u16.reserve(ct.count);
      for (size_t w = 0; w < nw; ++w) {
        uint64_t x = cw[w];
        while (x) {
          const int b = std::countr_zero(x);
          ct.u16.push_back(static_cast<uint16_t>(w * 64 + b));
          x &= x - 1;
        }
      }
    } else {
      ct.type = ContainerType::kBitmap;
      ct.words.assign(cw, cw + nw);
    }
    out.chunks_.push_back(std::move(ct));
  }
  return out;
}

void CompressedBitset::DecompressTo(uint64_t* words) const {
  const size_t n_words = (size_ + 63) / 64;
  std::fill(words, words + n_words, uint64_t{0});
  constexpr size_t kChunkWords = kChunkBits / 64;
  for (size_t c = 0; c < chunks_.size(); ++c) {
    uint64_t* cw = words + c * kChunkWords;
    const Container& ct = chunks_[c];
    switch (ct.type) {
      case ContainerType::kBitmap:
        std::copy(ct.words.begin(), ct.words.end(), cw);
        break;
      case ContainerType::kArray:
        for (uint16_t v : ct.u16) {
          cw[v >> 6] |= uint64_t{1} << (v & 63);
        }
        break;
      case ContainerType::kRun:
        for (size_t i = 0; i + 1 < ct.u16.size(); i += 2) {
          const size_t start = ct.u16[i];
          const size_t end = start + ct.u16[i + 1] + 1;  // exclusive
          size_t b = start;
          while (b < end) {
            const size_t w = b >> 6;
            const size_t upto = std::min(end, (w + 1) * 64);
            const uint64_t lo = ~uint64_t{0} << (b & 63);
            const uint64_t hi = (upto & 63) == 0
                                    ? ~uint64_t{0}
                                    : (uint64_t{1} << (upto & 63)) - 1;
            cw[w] |= lo & hi;
            b = upto;
          }
        }
        break;
    }
  }
}

Bitset CompressedBitset::ToBitset() const {
  Bitset out(size_);
  if (size_ != 0) DecompressTo(out.mutable_data());
  return out;
}

bool CompressedBitset::Test(size_t i) const {
  if (i >= size_) return false;
  const Container& ct = chunks_[i / kChunkBits];
  const uint16_t v = static_cast<uint16_t>(i % kChunkBits);
  switch (ct.type) {
    case ContainerType::kBitmap:
      return (ct.words[v >> 6] >> (v & 63)) & 1;
    case ContainerType::kArray:
      return std::binary_search(ct.u16.begin(), ct.u16.end(), v);
    case ContainerType::kRun: {
      // Binary search the (start, len-1) pairs for the last start <= v.
      size_t lo = 0, hi = ct.u16.size() / 2;
      while (lo < hi) {
        const size_t mid = (lo + hi) / 2;
        if (ct.u16[2 * mid] <= v) {
          lo = mid + 1;
        } else {
          hi = mid;
        }
      }
      if (lo == 0) return false;
      const size_t start = ct.u16[2 * (lo - 1)];
      const size_t len = static_cast<size_t>(ct.u16[2 * (lo - 1) + 1]) + 1;
      return v < start + len;
    }
  }
  return false;
}

size_t CompressedBitset::SizeBytes() const {
  size_t bytes = sizeof(CompressedBitset) +
                 chunks_.capacity() * sizeof(Container);
  for (const Container& ct : chunks_) {
    bytes += ct.u16.capacity() * sizeof(uint16_t) +
             ct.words.capacity() * sizeof(uint64_t);
  }
  return bytes;
}

bool CompressedBitset::operator==(const CompressedBitset& other) const {
  if (size_ != other.size_ || count_ != other.count_ ||
      chunks_.size() != other.chunks_.size()) {
    return false;
  }
  for (size_t c = 0; c < chunks_.size(); ++c) {
    const Container& a = chunks_[c];
    const Container& b = other.chunks_[c];
    if (a.type != b.type || a.count != b.count || a.u16 != b.u16 ||
        a.words != b.words) {
      return false;
    }
  }
  return true;
}

SegmentBits SegmentBits::Choose(Bitset bits, SegmentCompression mode) {
  SegmentBits seg;
  if (mode == SegmentCompression::kNever) {
    seg.plain_ = std::move(bits);
    return seg;
  }
  CompressedBitset comp = CompressedBitset::FromBitset(bits);
  const size_t plain_bytes =
      sizeof(Bitset) + bits.num_words() * sizeof(uint64_t);
  if (mode == SegmentCompression::kAlways ||
      comp.SizeBytes() * 2 <= plain_bytes) {
    seg.comp_ = std::move(comp);
  } else {
    seg.plain_ = std::move(bits);
  }
  return seg;
}

size_t SegmentBits::size() const {
  return plain_ ? plain_->size() : comp_->size();
}

size_t SegmentBits::Count() const {
  return plain_ ? plain_->Count() : comp_->Count();
}

size_t SegmentBits::bytes() const {
  // Object bytes once (the optionals live inline) plus the heap storage
  // of whichever representation is held.
  if (plain_) {
    return sizeof(SegmentBits) + plain_->num_words() * sizeof(uint64_t);
  }
  return sizeof(SegmentBits) + comp_->SizeBytes() - sizeof(CompressedBitset);
}

Bitset SegmentBits::Materialize() const {
  return plain_ ? *plain_ : comp_->ToBitset();
}

void SegmentBits::AndIntoRange(Bitset* dst, size_t offset,
                               std::vector<uint64_t>* scratch) const {
  assert((offset & 63) == 0 && offset + size() <= dst->size());
  if (plain_) {
    dst->AndRange(offset, *plain_);
    return;
  }
  const size_t n = comp_->size();
  const size_t n_words = (n + 63) / 64;
  if (scratch->size() < n_words) scratch->resize(n_words);
  comp_->DecompressTo(scratch->data());
  uint64_t* d = dst->mutable_data() + (offset >> 6);
  const size_t full_words = n >> 6;
  kernels::AndWords(d, scratch->data(), full_words);
  const size_t rem = n & 63;
  if (rem != 0) {
    // Partial final word: rows of dst beyond the segment keep their value.
    const uint64_t mask = (uint64_t{1} << rem) - 1;
    d[full_words] &= (*scratch)[full_words] | ~mask;
  }
}

void SegmentBits::AssignIntoRange(Bitset* dst, size_t offset) const {
  assert((offset & 63) == 0 && offset + size() <= dst->size());
  if (plain_) {
    dst->AssignRange(offset, *plain_);
    return;
  }
  dst->AssignRange(offset, comp_->ToBitset());
}

void CompressedBitset::Serialize(std::string* out) const {
  PutVar(out, size_);
  PutVar(out, count_);
  PutVar(out, chunks_.size());
  for (const Container& ct : chunks_) {
    out->push_back(static_cast<char>(ct.type));
    PutVar(out, ct.count);
    PutVar(out, ct.u16.size());
    for (uint16_t v : ct.u16) PutU16Le(out, v);
    PutVar(out, ct.words.size());
    for (uint64_t w : ct.words) PutU64Le(out, w);
  }
}

CompressedBitset CompressedBitset::Deserialize(const std::string& bytes,
                                               size_t* pos) {
  CompressedBitset out;
  out.size_ = GetVar(bytes, pos);
  const uint64_t stored_count = GetVar(bytes, pos);
  const uint64_t n_chunks = GetVar(bytes, pos);
  const uint64_t expect_chunks =
      (static_cast<uint64_t>(out.size_) + kChunkBits - 1) / kChunkBits;
  if (n_chunks != expect_chunks) {
    Malformed("chunk count does not match universe size");
  }
  // Each container costs at least 4 encoded bytes, so the chunk count is
  // bounded by the remaining input — this caps allocation before any
  // container is trusted.
  if (n_chunks > (bytes.size() - *pos) / 4 + 1) {
    Malformed("implausible chunk count");
  }
  uint64_t total = 0;
  out.chunks_.reserve(n_chunks);
  for (uint64_t c = 0; c < n_chunks; ++c) {
    const size_t chunk_bits = static_cast<size_t>(
        std::min<uint64_t>(kChunkBits, out.size_ - c * kChunkBits));
    const size_t chunk_words = (chunk_bits + 63) / 64;
    if (*pos >= bytes.size()) Malformed("truncated container");
    const unsigned char type = static_cast<unsigned char>(bytes[(*pos)++]);
    if (type > static_cast<unsigned char>(ContainerType::kRun)) {
      Malformed("unknown container type");
    }
    Container ct;
    ct.type = static_cast<ContainerType>(type);
    const uint64_t count = GetVar(bytes, pos);
    if (count > chunk_bits) Malformed("container count exceeds chunk");
    ct.count = static_cast<uint32_t>(count);
    const uint64_t n_u16 = GetVar(bytes, pos);
    if (n_u16 > (bytes.size() - *pos) / 2) Malformed("truncated u16 array");
    ct.u16.reserve(n_u16);
    for (uint64_t i = 0; i < n_u16; ++i) ct.u16.push_back(GetU16Le(bytes, pos));
    const uint64_t n_words = GetVar(bytes, pos);
    if (n_words > (bytes.size() - *pos) / 8) Malformed("truncated word array");
    ct.words.reserve(n_words);
    for (uint64_t i = 0; i < n_words; ++i) {
      ct.words.push_back(GetU64Le(bytes, pos));
    }

    // Shape validation per type: everything Test/DecompressTo will index
    // with must be proven in range here, and the canonical-layout
    // invariants (sortedness, maximal runs, exact counts) that equality
    // and byte accounting rely on must hold.
    switch (ct.type) {
      case ContainerType::kArray: {
        if (!ct.words.empty()) Malformed("array container carries words");
        if (ct.u16.size() != count) Malformed("array length != count");
        for (size_t i = 0; i < ct.u16.size(); ++i) {
          if (ct.u16[i] >= chunk_bits) Malformed("array offset out of range");
          if (i > 0 && ct.u16[i] <= ct.u16[i - 1]) {
            Malformed("array offsets not strictly increasing");
          }
        }
        break;
      }
      case ContainerType::kBitmap: {
        if (!ct.u16.empty()) Malformed("bitmap container carries u16s");
        if (ct.words.size() != chunk_words) Malformed("bitmap word count");
        if (kernels::PopcountWords(ct.words.data(), ct.words.size()) !=
            count) {
          Malformed("bitmap popcount != count");
        }
        if ((chunk_bits & 63) != 0 &&
            (ct.words.back() & ~((uint64_t{1} << (chunk_bits & 63)) - 1)) !=
                0) {
          Malformed("bitmap padding bits set");
        }
        break;
      }
      case ContainerType::kRun: {
        if (!ct.words.empty()) Malformed("run container carries words");
        if (ct.u16.size() % 2 != 0) Malformed("odd run list length");
        uint64_t run_total = 0;
        size_t prev_end = 0;  // exclusive end of the previous run
        for (size_t i = 0; i + 1 < ct.u16.size(); i += 2) {
          const size_t start = ct.u16[i];
          const size_t end = start + ct.u16[i + 1] + 1;  // exclusive
          if (i > 0 && start <= prev_end) {
            // Canonical runs are maximal: a gap of at least one bit.
            Malformed("runs overlap or touch");
          }
          if (end > chunk_bits) Malformed("run exceeds chunk");
          run_total += ct.u16[i + 1] + 1;
          prev_end = end;
        }
        if (run_total != count) Malformed("run lengths != count");
        break;
      }
    }
    total += count;
    out.chunks_.push_back(std::move(ct));
  }
  if (total != stored_count) Malformed("chunk counts != total count");
  out.count_ = static_cast<size_t>(total);
  return out;
}

void SegmentBits::Serialize(std::string* out) const {
  if (plain_) {
    out->push_back(0);
    PutVar(out, plain_->size());
    for (size_t i = 0; i < plain_->num_words(); ++i) {
      PutU64Le(out, plain_->data()[i]);
    }
  } else {
    out->push_back(1);
    comp_->Serialize(out);
  }
}

SegmentBits SegmentBits::Deserialize(const std::string& bytes, size_t* pos) {
  if (*pos >= bytes.size()) Malformed("truncated segment tag");
  const unsigned char tag = static_cast<unsigned char>(bytes[(*pos)++]);
  SegmentBits seg;
  if (tag == 0) {
    const uint64_t n = GetVar(bytes, pos);
    const uint64_t n_words = (n + 63) / 64;
    // Length check before allocation so hostile sizes cannot OOM.
    if (n_words > (bytes.size() - *pos) / 8) {
      Malformed("truncated plain segment");
    }
    Bitset bits(static_cast<size_t>(n));
    for (uint64_t i = 0; i < n_words; ++i) {
      bits.mutable_data()[i] = GetU64Le(bytes, pos);
    }
    if ((n & 63) != 0 && n_words > 0) {
      const uint64_t mask = (uint64_t{1} << (n & 63)) - 1;
      if ((bits.data()[n_words - 1] & ~mask) != 0) {
        Malformed("plain segment padding bits set");
      }
    }
    seg.plain_ = std::move(bits);
  } else if (tag == 1) {
    seg.comp_ = CompressedBitset::Deserialize(bytes, pos);
  } else {
    Malformed("unknown segment tag");
  }
  return seg;
}

}  // namespace causumx
