// Minimal JSON value + recursive-descent parser, for machine-readable
// inputs (the service's JSONL batch requests and the HTTP server's
// request bodies), plus a streaming JsonWriter for composing response
// documents. Domain-object serialization (summaries, predicates) lives
// in core/json_export; this is the generic read/write layer. Supports
// the full JSON grammar (objects, arrays, strings with \uXXXX escapes,
// numbers, bools, null); numbers are held as doubles.

#ifndef CAUSUMX_UTIL_JSON_H_
#define CAUSUMX_UTIL_JSON_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace causumx {

/// A parsed JSON value (tagged union).
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  /// Parses a complete JSON document; throws std::runtime_error (with a
  /// byte offset) on malformed input or trailing garbage.
  static JsonValue Parse(const std::string& text);

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }

  /// Typed accessors; each throws std::runtime_error on a kind mismatch.
  bool AsBool() const;
  double AsNumber() const;
  const std::string& AsString() const;
  const std::vector<JsonValue>& AsArray() const;
  const std::map<std::string, JsonValue>& AsObject() const;

  /// Object member lookup; null when absent or not an object.
  const JsonValue* Find(const std::string& key) const;

  /// Convenience lookups with defaults (throw on present-but-wrong-kind).
  std::string GetString(const std::string& key,
                        const std::string& fallback = "") const;
  double GetNumber(const std::string& key, double fallback) const;
  bool GetBool(const std::string& key, bool fallback) const;

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::map<std::string, JsonValue> object_;

  friend class JsonParser;
};

/// Escapes a string for embedding inside a JSON string literal (quotes,
/// backslashes, control characters; no surrounding quotes added).
/// core/json_export re-exports this as JsonEscape for its callers.
std::string JsonEscapeString(const std::string& s);

/// A JSON number token: FormatDouble(value, digits) for finite values,
/// "null" for NaN/Inf — JSON has no non-finite numbers, and emitting
/// them verbatim produces documents no parser accepts. Domain
/// serializers route every double through here so invalid JSON cannot
/// leak out of one forgotten call site.
std::string JsonNumberToken(double value, int digits);

/// A streaming JSON document builder: commas and nesting are managed
/// automatically, strings are escaped, and the result is a compact
/// single-line document (matching the batch/JSONL output style).
///
/// Usage:
///   JsonWriter w;
///   w.BeginObject().Key("status").String("ok")
///    .Key("tables").BeginArray().String("a").String("b").EndArray()
///    .EndObject();
///   w.str();  // {"status":"ok","tables":["a","b"]}
///
/// Misuse (a Key outside an object, unbalanced End calls) is a
/// programming error and throws std::logic_error.
class JsonWriter {
 public:
  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray();
  JsonWriter& EndArray();

  /// Emits an object member key; must be inside an object and followed
  /// by exactly one value.
  JsonWriter& Key(const std::string& key);

  // Value emitters (as array elements or after Key inside an object).
  JsonWriter& String(const std::string& value);
  JsonWriter& Bool(bool value);
  JsonWriter& Null();
  JsonWriter& Uint(uint64_t value);
  JsonWriter& Int(int64_t value);
  /// Shortest round-trip formatting; non-finite values emit null (JSON
  /// has no NaN/Inf).
  JsonWriter& Double(double value);

  /// Splices `json` — already-serialized JSON — in as one value.
  JsonWriter& Raw(const std::string& json);

  /// The finished document; throws std::logic_error while containers
  /// remain open.
  const std::string& str() const;

 private:
  void BeginValue();

  enum class Frame : uint8_t { kObject, kArray };
  std::string out_;
  std::vector<Frame> stack_;
  /// Whether the current container already holds a value (comma needed).
  std::vector<bool> has_value_;
  bool key_pending_ = false;
  bool done_ = false;
};

}  // namespace causumx

#endif  // CAUSUMX_UTIL_JSON_H_
