// Minimal JSON value + recursive-descent parser, for machine-readable
// inputs (the service's JSONL batch requests). Writer-side serialization
// lives in core/json_export; this is the read side. Supports the full
// JSON grammar (objects, arrays, strings with \uXXXX escapes, numbers,
// bools, null); numbers are held as doubles.

#ifndef CAUSUMX_UTIL_JSON_H_
#define CAUSUMX_UTIL_JSON_H_

#include <map>
#include <string>
#include <vector>

namespace causumx {

/// A parsed JSON value (tagged union).
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  /// Parses a complete JSON document; throws std::runtime_error (with a
  /// byte offset) on malformed input or trailing garbage.
  static JsonValue Parse(const std::string& text);

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }

  /// Typed accessors; each throws std::runtime_error on a kind mismatch.
  bool AsBool() const;
  double AsNumber() const;
  const std::string& AsString() const;
  const std::vector<JsonValue>& AsArray() const;
  const std::map<std::string, JsonValue>& AsObject() const;

  /// Object member lookup; null when absent or not an object.
  const JsonValue* Find(const std::string& key) const;

  /// Convenience lookups with defaults (throw on present-but-wrong-kind).
  std::string GetString(const std::string& key,
                        const std::string& fallback = "") const;
  double GetNumber(const std::string& key, double fallback) const;
  bool GetBool(const std::string& key, bool fallback) const;

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::map<std::string, JsonValue> object_;

  friend class JsonParser;
};

}  // namespace causumx

#endif  // CAUSUMX_UTIL_JSON_H_
