#include "util/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <stdexcept>

#include "util/string_utils.h"

namespace causumx {

namespace {

[[noreturn]] void Fail(size_t pos, const std::string& what) {
  throw std::runtime_error(
      StrFormat("json: %s at offset %zu", what.c_str(), pos));
}

}  // namespace

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  JsonValue ParseDocument() {
    JsonValue v = ParseValue();
    SkipWhitespace();
    if (pos_ != text_.size()) Fail(pos_, "trailing characters");
    return v;
  }

 private:
  char Peek() {
    if (pos_ >= text_.size()) Fail(pos_, "unexpected end of input");
    return text_[pos_];
  }

  void Expect(char c) {
    if (Peek() != c) {
      Fail(pos_, StrFormat("expected '%c', got '%c'", c, text_[pos_]));
    }
    ++pos_;
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool ConsumeLiteral(const char* lit) {
    size_t n = 0;
    while (lit[n] != '\0') ++n;
    if (text_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }

  // The parser recurses once per nesting level, so untrusted input could
  // otherwise overflow the stack with a run of '[' — the HTTP server
  // parses request bodies with this (fuzzing found the segfault). 256
  // levels is far beyond any document we produce or accept.
  static constexpr size_t kMaxDepth = 256;

  JsonValue ParseValue() {
    SkipWhitespace();
    JsonValue v;
    switch (Peek()) {
      case '{':
        if (++depth_ > kMaxDepth) Fail(pos_, "nesting too deep");
        v = ParseObject();
        --depth_;
        return v;
      case '[':
        if (++depth_ > kMaxDepth) Fail(pos_, "nesting too deep");
        v = ParseArray();
        --depth_;
        return v;
      case '"':
        v.kind_ = JsonValue::Kind::kString;
        v.string_ = ParseString();
        return v;
      case 't':
        if (!ConsumeLiteral("true")) Fail(pos_, "bad literal");
        v.kind_ = JsonValue::Kind::kBool;
        v.bool_ = true;
        return v;
      case 'f':
        if (!ConsumeLiteral("false")) Fail(pos_, "bad literal");
        v.kind_ = JsonValue::Kind::kBool;
        v.bool_ = false;
        return v;
      case 'n':
        if (!ConsumeLiteral("null")) Fail(pos_, "bad literal");
        return v;
      default:
        return ParseNumber();
    }
  }

  JsonValue ParseObject() {
    JsonValue v;
    v.kind_ = JsonValue::Kind::kObject;
    Expect('{');
    SkipWhitespace();
    if (Peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      SkipWhitespace();
      std::string key = ParseString();
      SkipWhitespace();
      Expect(':');
      v.object_.emplace(std::move(key), ParseValue());
      SkipWhitespace();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      Expect('}');
      return v;
    }
  }

  JsonValue ParseArray() {
    JsonValue v;
    v.kind_ = JsonValue::Kind::kArray;
    Expect('[');
    SkipWhitespace();
    if (Peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.array_.push_back(ParseValue());
      SkipWhitespace();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      Expect(']');
      return v;
    }
  }

  std::string ParseString() {
    Expect('"');
    std::string out;
    while (true) {
      const char c = Peek();
      ++pos_;
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      const char esc = Peek();
      ++pos_;
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': AppendUtf8(ParseHex4(), &out); break;
        default: Fail(pos_ - 1, "bad escape");
      }
    }
  }

  unsigned ParseHex4() {
    unsigned code = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = Peek();
      ++pos_;
      code <<= 4;
      if (c >= '0' && c <= '9') code |= static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f') code |= static_cast<unsigned>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') code |= static_cast<unsigned>(c - 'A' + 10);
      else Fail(pos_ - 1, "bad \\u escape");
    }
    return code;
  }

  static void AppendUtf8(unsigned code, std::string* out) {
    // Surrogate pairs are not recombined (BMP-only inputs expected for
    // attribute names/values); lone surrogates encode as-is.
    if (code < 0x80) {
      out->push_back(static_cast<char>(code));
    } else if (code < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (code >> 6)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xE0 | (code >> 12)));
      out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    }
  }

  JsonValue ParseNumber() {
    const size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) Fail(pos_, "unexpected character");
    const std::string token = text_.substr(start, pos_ - start);
    char* end = nullptr;
    const double d = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') Fail(start, "bad number");
    JsonValue v;
    v.kind_ = JsonValue::Kind::kNumber;
    v.number_ = d;
    return v;
  }

  const std::string& text_;
  size_t pos_ = 0;
  size_t depth_ = 0;
};

JsonValue JsonValue::Parse(const std::string& text) {
  return JsonParser(text).ParseDocument();
}

namespace {

[[noreturn]] void KindMismatch(const char* want) {
  throw std::runtime_error(StrFormat("json: value is not a %s", want));
}

}  // namespace

bool JsonValue::AsBool() const {
  if (kind_ != Kind::kBool) KindMismatch("bool");
  return bool_;
}

double JsonValue::AsNumber() const {
  if (kind_ != Kind::kNumber) KindMismatch("number");
  return number_;
}

const std::string& JsonValue::AsString() const {
  if (kind_ != Kind::kString) KindMismatch("string");
  return string_;
}

const std::vector<JsonValue>& JsonValue::AsArray() const {
  if (kind_ != Kind::kArray) KindMismatch("array");
  return array_;
}

const std::map<std::string, JsonValue>& JsonValue::AsObject() const {
  if (kind_ != Kind::kObject) KindMismatch("object");
  return object_;
}

const JsonValue* JsonValue::Find(const std::string& key) const {
  if (kind_ != Kind::kObject) return nullptr;
  auto it = object_.find(key);
  return it == object_.end() ? nullptr : &it->second;
}

std::string JsonValue::GetString(const std::string& key,
                                 const std::string& fallback) const {
  const JsonValue* v = Find(key);
  return v == nullptr ? fallback : v->AsString();
}

double JsonValue::GetNumber(const std::string& key, double fallback) const {
  const JsonValue* v = Find(key);
  return v == nullptr ? fallback : v->AsNumber();
}

bool JsonValue::GetBool(const std::string& key, bool fallback) const {
  const JsonValue* v = Find(key);
  return v == nullptr ? fallback : v->AsBool();
}

// ---- writer ----------------------------------------------------------------

std::string JsonEscapeString(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StrFormat("\\u%04x", c);
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

std::string JsonNumberToken(double value, int digits) {
  if (!std::isfinite(value)) return "null";
  return FormatDouble(value, digits);
}

namespace {

[[noreturn]] void Misuse(const char* what) {
  throw std::logic_error(std::string("JsonWriter: ") + what);
}

}  // namespace

void JsonWriter::BeginValue() {
  if (done_) Misuse("document already complete");
  if (!stack_.empty() && stack_.back() == Frame::kObject && !key_pending_) {
    Misuse("object member needs Key() before its value");
  }
  if (!stack_.empty() && !key_pending_ && has_value_.back()) out_ += ',';
  if (!stack_.empty()) has_value_.back() = true;
  key_pending_ = false;
}

JsonWriter& JsonWriter::BeginObject() {
  BeginValue();
  out_ += '{';
  stack_.push_back(Frame::kObject);
  has_value_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::EndObject() {
  if (stack_.empty() || stack_.back() != Frame::kObject || key_pending_) {
    Misuse("EndObject without a matching open object");
  }
  out_ += '}';
  stack_.pop_back();
  has_value_.pop_back();
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::BeginArray() {
  BeginValue();
  out_ += '[';
  stack_.push_back(Frame::kArray);
  has_value_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  if (stack_.empty() || stack_.back() != Frame::kArray) {
    Misuse("EndArray without a matching open array");
  }
  out_ += ']';
  stack_.pop_back();
  has_value_.pop_back();
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::Key(const std::string& key) {
  if (stack_.empty() || stack_.back() != Frame::kObject || key_pending_) {
    Misuse("Key() is only valid directly inside an object");
  }
  if (has_value_.back()) out_ += ',';
  has_value_.back() = true;
  out_ += '"';
  out_ += JsonEscapeString(key);
  out_ += "\":";
  key_pending_ = true;
  return *this;
}

JsonWriter& JsonWriter::String(const std::string& value) {
  BeginValue();
  out_ += '"';
  out_ += JsonEscapeString(value);
  out_ += '"';
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::Bool(bool value) {
  BeginValue();
  out_ += value ? "true" : "false";
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::Null() {
  BeginValue();
  out_ += "null";
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::Uint(uint64_t value) {
  BeginValue();
  out_ += StrFormat("%llu", static_cast<unsigned long long>(value));
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::Int(int64_t value) {
  BeginValue();
  out_ += StrFormat("%lld", static_cast<long long>(value));
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::Double(double value) {
  BeginValue();
  if (!std::isfinite(value)) {
    out_ += "null";
  } else {
    // %.17g round-trips every double; shrink to the shortest formatting
    // that still parses back exactly.
    char buf[32];
    for (int prec = 1; prec <= 17; ++prec) {
      std::snprintf(buf, sizeof(buf), "%.*g", prec, value);
      if (std::strtod(buf, nullptr) == value) break;
    }
    out_ += buf;
  }
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::Raw(const std::string& json) {
  BeginValue();
  out_ += json;
  if (stack_.empty()) done_ = true;
  return *this;
}

const std::string& JsonWriter::str() const {
  if (!done_) Misuse("str() called with open containers");
  return out_;
}

}  // namespace causumx
