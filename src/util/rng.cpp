#include "util/rng.h"

#include <cmath>
#include <numeric>

namespace causumx {

namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 high bits -> double in [0,1).
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  // Debiased modulo (Lemire-style rejection would be faster; this is
  // simpler and bias is negligible for bound << 2^64).
  return NextU64() % bound;
}

int64_t Rng::NextInt(int64_t lo, int64_t hi) {
  return lo + static_cast<int64_t>(
                  NextBounded(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::NextGaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1 = 0.0;
  while (u1 <= 1e-300) u1 = NextDouble();
  const double u2 = NextDouble();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_gaussian_ = r * std::sin(theta);
  has_cached_gaussian_ = true;
  return r * std::cos(theta);
}

size_t Rng::NextWeighted(const std::vector<double>& weights) {
  // causumx-lint: allow(fp-accumulation) serial fixed weight order)
  double total = std::accumulate(weights.begin(), weights.end(), 0.0);
  if (total <= 0.0) return weights.empty() ? 0 : weights.size() - 1;
  double x = NextDouble() * total;
  for (size_t i = 0; i < weights.size(); ++i) {
    x -= weights[i];  // causumx-lint: allow(fp-accumulation) serial fixed weight order)
    if (x <= 0.0) return i;
  }
  return weights.size() - 1;
}

std::vector<size_t> Rng::SampleIndices(size_t n, size_t count) {
  std::vector<size_t> out;
  if (count >= n) {
    out.resize(n);
    std::iota(out.begin(), out.end(), 0);
    return out;
  }
  // Reservoir sampling keeps memory at O(count) even for huge n.
  out.resize(count);
  std::iota(out.begin(), out.end(), 0);
  for (size_t i = count; i < n; ++i) {
    size_t j = NextBounded(i + 1);
    if (j < count) out[j] = i;
  }
  return out;
}

}  // namespace causumx
