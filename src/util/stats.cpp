#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/kernels.h"

namespace causumx {

double BlockedKahanSum(const double* x, size_t n) {
  return kernels::BlockedKahanSum(x, n);
}

double Mean(const std::vector<double>& x) {
  if (x.empty()) return 0.0;
  return BlockedKahanSum(x.data(), x.size()) /
         static_cast<double>(x.size());
}

double Variance(const std::vector<double>& x) {
  if (x.size() < 2) return 0.0;
  const double m = Mean(x);
  double s = 0.0;
  for (double v : x) s += (v - m) * (v - m);
  return s / static_cast<double>(x.size() - 1);
}

double StdDev(const std::vector<double>& x) { return std::sqrt(Variance(x)); }

double PearsonCorrelation(const std::vector<double>& x,
                          const std::vector<double>& y) {
  const size_t n = std::min(x.size(), y.size());
  if (n < 2) return 0.0;
  double mx = 0.0, my = 0.0;
  for (size_t i = 0; i < n; ++i) {
    mx += x[i];
    my += y[i];
  }
  mx /= n;
  my /= n;
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double dx = x[i] - mx, dy = y[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx <= 0.0 || syy <= 0.0) return 0.0;
  double r = sxy / std::sqrt(sxx * syy);
  return std::clamp(r, -1.0, 1.0);
}

double NormalCdf(double z) { return 0.5 * std::erfc(-z / std::sqrt(2.0)); }

double NormalQuantile(double p) {
  if (p <= 0.0 || p >= 1.0) {
    throw std::invalid_argument("NormalQuantile requires 0 < p < 1");
  }
  // Acklam's rational approximation.
  static const double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                             -2.759285104469687e+02, 1.383577518672690e+02,
                             -3.066479806614716e+01, 2.506628277459239e+00};
  static const double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                             -1.556989798598866e+02, 6.680131188771972e+01,
                             -1.328068155288572e+01};
  static const double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                             -2.400758277161838e+00, -2.549732539343734e+00,
                             4.374664141464968e+00,  2.938163982698783e+00};
  static const double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                             2.445134137142996e+00, 3.754408661907416e+00};
  const double plow = 0.02425, phigh = 1 - plow;
  double q, r;
  if (p < plow) {
    q = std::sqrt(-2 * std::log(p));
    return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
            c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1);
  }
  if (p > phigh) {
    q = std::sqrt(-2 * std::log(1 - p));
    return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
             c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1);
  }
  q = p - 0.5;
  r = q * q;
  return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) *
         q /
         (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1);
}

double LogGamma(double x) {
#if defined(__GLIBC__) || defined(__APPLE__)
  // std::lgamma writes the global `signgam` (a data race under
  // concurrent estimation); the re-entrant variant does not.
  int sign = 0;
  return lgamma_r(x, &sign);
#else
  return std::lgamma(x);
#endif
}

namespace {

// Continued-fraction evaluation for the incomplete beta (Numerical
// Recipes-style modified Lentz algorithm).
double BetaContinuedFraction(double a, double b, double x) {
  constexpr int kMaxIter = 300;
  constexpr double kEps = 3e-14;
  constexpr double kFpMin = 1e-300;
  const double qab = a + b;
  const double qap = a + 1.0;
  const double qam = a - 1.0;
  double c = 1.0;
  double d = 1.0 - qab * x / qap;
  if (std::fabs(d) < kFpMin) d = kFpMin;
  d = 1.0 / d;
  double h = d;
  for (int m = 1; m <= kMaxIter; ++m) {
    const int m2 = 2 * m;
    double aa = m * (b - m) * x / ((qam + m2) * (a + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kFpMin) d = kFpMin;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    h *= d * c;
    aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kFpMin) d = kFpMin;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < kEps) break;
  }
  return h;
}

}  // namespace

double IncompleteBeta(double a, double b, double x) {
  if (x <= 0.0) return 0.0;
  if (x >= 1.0) return 1.0;
  const double ln_front = LogGamma(a + b) - LogGamma(a) - LogGamma(b) +
                          a * std::log(x) + b * std::log(1.0 - x);
  const double front = std::exp(ln_front);
  if (x < (a + 1.0) / (a + b + 2.0)) {
    return front * BetaContinuedFraction(a, b, x) / a;
  }
  return 1.0 - front * BetaContinuedFraction(b, a, 1.0 - x) / b;
}

double StudentTCdf(double t, double df) {
  if (df <= 0.0) return 0.5;
  const double x = df / (df + t * t);
  const double p = 0.5 * IncompleteBeta(df / 2.0, 0.5, x);
  return t >= 0.0 ? 1.0 - p : p;
}

double TwoSidedPValueT(double t, double df) {
  const double tail = 1.0 - StudentTCdf(std::fabs(t), df);
  return std::min(1.0, 2.0 * tail);
}

double TwoSidedPValueZ(double z) {
  const double tail = 1.0 - NormalCdf(std::fabs(z));
  return std::min(1.0, 2.0 * tail);
}

double KendallTau(const std::vector<double>& x, const std::vector<double>& y) {
  const size_t n = std::min(x.size(), y.size());
  if (n < 2) return 0.0;
  long long concordant = 0, discordant = 0, ties_x = 0, ties_y = 0;
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      const double dx = x[i] - x[j];
      const double dy = y[i] - y[j];
      if (dx == 0.0 && dy == 0.0) continue;
      if (dx == 0.0) {
        ++ties_x;
      } else if (dy == 0.0) {
        ++ties_y;
      } else if ((dx > 0) == (dy > 0)) {
        ++concordant;
      } else {
        ++discordant;
      }
    }
  }
  const double n0 = concordant + discordant;
  const double denom = std::sqrt((n0 + ties_x) * (n0 + ties_y));
  if (denom == 0.0) return 0.0;
  return (concordant - discordant) / denom;
}

void RunningStats::Add(double x) {
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::StdDev() const { return std::sqrt(Variance()); }

}  // namespace causumx
