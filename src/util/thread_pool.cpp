#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>

namespace causumx {

ThreadPool::ThreadPool(size_t num_threads) {
  num_threads = std::max<size_t>(1, num_threads);
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
}

std::future<void> ThreadPool::Submit(std::function<void()> task) {
  std::packaged_task<void()> pt(std::move(task));
  std::future<void> fut = pt.get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    tasks_.push(std::move(pt));
  }
  cv_.notify_one();
  return fut;
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  if (n == 1 || workers_.size() == 1) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  std::atomic<size_t> next{0};
  std::vector<std::future<void>> futs;
  const size_t shards = std::min(n, workers_.size());
  futs.reserve(shards);
  for (size_t s = 0; s < shards; ++s) {
    futs.push_back(Submit([&] {
      for (size_t i = next.fetch_add(1); i < n; i = next.fetch_add(1)) {
        fn(i);
      }
    }));
  }
  for (auto& f : futs) f.get();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

size_t ThreadPool::DefaultThreads() {
  const unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 1 : hc;
}

}  // namespace causumx
