#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <memory>

namespace causumx {

ThreadPool::ThreadPool(size_t num_threads) {
  num_threads = std::max<size_t>(1, num_threads);
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  // Wait for every worker to park before returning, so NumIdle() is
  // meaningful from the first use — otherwise a RunOn immediately after
  // construction (a cold query's view scan) races worker startup, reads
  // idle == 0, and silently degrades to the serial path. No task can be
  // queued yet (the pool isn't published), so each worker necessarily
  // reaches the idle wait.
  while (idle_.load(std::memory_order_relaxed) < num_threads) {
    std::this_thread::yield();
  }
}

ThreadPool::~ThreadPool() {
  {
    util::MutexLock lock(mu_);
    stop_ = true;
  }
  cv_.NotifyAll();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
}

std::future<void> ThreadPool::Submit(std::function<void()> task) {
  std::packaged_task<void()> pt(std::move(task));
  std::future<void> fut = pt.get_future();
  {
    util::MutexLock lock(mu_);
    tasks_.push(std::move(pt));
  }
  cv_.NotifyOne();
  return fut;
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  if (n == 1 || workers_.size() == 1) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  // Caller-participating dynamic scheduling. The calling thread drains
  // indices alongside the helper shards, and completion is tracked by a
  // per-index counter rather than by waiting on the helpers' futures.
  // That makes nested use safe: when ParallelFor runs on a pool worker
  // (a service query parallelizing its mining on the same pool), queued
  // helpers may never get a thread — the caller still finishes every
  // index itself, and helpers that start late find no work and exit.
  // State lives on the heap so a late-starting helper can safely probe
  // `next` after the call returned.
  struct ForState {
    explicit ForState(size_t total) : n(total) {}
    const size_t n;
    std::atomic<size_t> next{0};
    std::atomic<size_t> done{0};
    util::Mutex mu;
    util::CondVar cv;
    std::exception_ptr first_error CAUSUMX_GUARDED_BY(mu);
  };
  auto state = std::make_shared<ForState>(n);
  auto drain = [&fn, state] {
    // Claiming i < n proves the caller is still inside ParallelFor (it
    // waits for done == n), so touching `fn` is safe here.
    for (size_t i = state->next.fetch_add(1); i < state->n;
         i = state->next.fetch_add(1)) {
      try {
        fn(i);
      } catch (...) {
        util::MutexLock lock(state->mu);
        if (!state->first_error) state->first_error = std::current_exception();
      }
      if (state->done.fetch_add(1) + 1 == state->n) {
        util::MutexLock lock(state->mu);
        state->cv.NotifyAll();
      }
    }
  };
  const size_t helpers = std::min(n - 1, workers_.size());
  for (size_t s = 0; s < helpers; ++s) {
    Submit(drain);
  }
  drain();
  util::MutexLock lock(state->mu);
  while (state->done.load() != state->n) state->cv.Wait(state->mu);
  if (state->first_error) std::rethrow_exception(state->first_error);
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      util::MutexLock lock(mu_);
      idle_.fetch_add(1, std::memory_order_relaxed);
      while (!stop_ && tasks_.empty()) cv_.Wait(mu_);
      idle_.fetch_sub(1, std::memory_order_relaxed);
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

size_t ThreadPool::DefaultThreads() {
  const unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 1 : hc;
}

}  // namespace causumx
