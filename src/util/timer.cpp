#include "util/timer.h"

// Header-only implementation; this translation unit exists so the library
// has a stable archive member for the component.
