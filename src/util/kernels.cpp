#include "util/kernels.h"

#include <bit>

#include "util/cpu_features.h"
#include "util/kernels_internal.h"

namespace causumx {
namespace kernels {

namespace internal {

namespace {

// Emits one output word from up to 64 rows via `bit(i)` (i is the
// row index relative to the word). The helper is the single place the
// word-assembly convention lives; every scalar predicate kernel routes
// through it.
template <typename BitFn>
inline void EmitWords(size_t n, uint64_t* out, BitFn bit) {
  const size_t full = n >> 6;
  for (size_t w = 0; w < full; ++w) {
    uint64_t m = 0;
    const size_t base = w << 6;
    for (size_t b = 0; b < 64; ++b) {
      m |= static_cast<uint64_t>(bit(base + b)) << b;
    }
    out[w] = m;
  }
  const size_t rem = n & 63;
  if (rem != 0) {
    uint64_t m = 0;
    const size_t base = full << 6;
    for (size_t b = 0; b < rem; ++b) {
      m |= static_cast<uint64_t>(bit(base + b)) << b;
    }
    out[full] = m;
  }
}

}  // namespace

void CompareI32EqScalar(const int32_t* values, size_t n, int32_t target,
                        uint64_t* out) {
  EmitWords(n, out, [&](size_t i) { return values[i] == target; });
}

void CompareF64Scalar(const double* values, size_t n, CmpOp op, double rhs,
                      uint64_t* out) {
  // One comparator per op, resolved once — the row loop is branch-free.
  // IEEE semantics give `false` for NaN cells under every op.
  switch (op) {
    case CmpOp::kEq:
      EmitWords(n, out, [&](size_t i) { return values[i] == rhs; });
      break;
    case CmpOp::kLt:
      EmitWords(n, out, [&](size_t i) { return values[i] < rhs; });
      break;
    case CmpOp::kGt:
      EmitWords(n, out, [&](size_t i) { return values[i] > rhs; });
      break;
    case CmpOp::kLe:
      EmitWords(n, out, [&](size_t i) { return values[i] <= rhs; });
      break;
    case CmpOp::kGe:
      EmitWords(n, out, [&](size_t i) { return values[i] >= rhs; });
      break;
  }
}

size_t PopcountWordsScalar(const uint64_t* words, size_t n) {
  size_t c = 0;
  for (size_t i = 0; i < n; ++i) c += std::popcount(words[i]);
  return c;
}

size_t AndNotPopcountScalar(const uint64_t* a, const uint64_t* b, size_t n) {
  size_t c = 0;
  for (size_t i = 0; i < n; ++i) c += std::popcount(a[i] & ~b[i]);
  return c;
}

void AndWordsScalar(uint64_t* dst, const uint64_t* src, size_t n) {
  for (size_t i = 0; i < n; ++i) dst[i] &= src[i];
}

void OrWordsScalar(uint64_t* dst, const uint64_t* src, size_t n) {
  for (size_t i = 0; i < n; ++i) dst[i] |= src[i];
}

double BlockedKahanSumScalar(const double* x, size_t n) {
  // Mirrors streaming BlockedKahan exactly: Kahan within each 64-row
  // block, each block folded into the total as Add(sum) then Add(c), in
  // ascending block order.
  double total = 0.0, total_c = 0.0;
  auto fold = [&](double v) {
    const double y = v - total_c;
    const double t = total + y;
    total_c = (t - total) - y;
    total = t;
  };
  for (size_t begin = 0; begin < n; begin += 64) {
    const size_t end = begin + 64 < n ? begin + 64 : n;
    double s = 0.0, c = 0.0;
    for (size_t i = begin; i < end; ++i) {
      const double y = x[i] - c;
      const double t = s + y;
      c = (t - s) - y;
      s = t;
    }
    fold(s);
    fold(c);
  }
  return total;
}

const KernelOps* GetScalarOps() {
  static const KernelOps ops = {
      &CompareI32EqScalar, &CompareF64Scalar,    &PopcountWordsScalar,
      &AndNotPopcountScalar, &AndWordsScalar,    &OrWordsScalar,
      &BlockedKahanSumScalar,
  };
  return &ops;
}

}  // namespace internal

namespace {

const internal::KernelOps& Ops() {
#if defined(CAUSUMX_HAVE_AVX2_KERNELS)
  if (ActiveKernelTier() == KernelTier::kAvx2) {
    return *internal::GetAvx2Ops();
  }
#endif
  return *internal::GetScalarOps();
}

}  // namespace

void CompareI32Eq(const int32_t* values, size_t n, int32_t target,
                  uint64_t* out) {
  Ops().compare_i32_eq(values, n, target, out);
}

void CompareI32Lut(const int32_t* values, size_t n, const uint8_t* lut,
                   uint64_t* out) {
  internal::EmitWords(n, out, [&](size_t i) {
    const int32_t code = values[i];
    return code >= 0 && lut[code] != 0;
  });
}

void CompareF64(const double* values, size_t n, CmpOp op, double rhs,
                uint64_t* out) {
  Ops().compare_f64(values, n, op, rhs, out);
}

void CompareI64AsF64(const int64_t* values, size_t n, CmpOp op, double rhs,
                     int64_t null_value, uint64_t* out) {
  // The reference path compares int cells in the double domain after a
  // null check; resolve the comparator once, keep the loop branch-light.
  auto emit = [&](auto cmp) {
    internal::EmitWords(n, out, [&](size_t i) {
      const int64_t v = values[i];
      return v != null_value && cmp(static_cast<double>(v), rhs);
    });
  };
  switch (op) {
    case CmpOp::kEq:
      emit([](double a, double b) { return a == b; });
      break;
    case CmpOp::kLt:
      emit([](double a, double b) { return a < b; });
      break;
    case CmpOp::kGt:
      emit([](double a, double b) { return a > b; });
      break;
    case CmpOp::kLe:
      emit([](double a, double b) { return a <= b; });
      break;
    case CmpOp::kGe:
      emit([](double a, double b) { return a >= b; });
      break;
  }
}

size_t PopcountWords(const uint64_t* words, size_t n) {
  return Ops().popcount_words(words, n);
}

size_t AndNotPopcount(const uint64_t* a, const uint64_t* b, size_t n) {
  return Ops().andnot_popcount(a, b, n);
}

void AndWords(uint64_t* dst, const uint64_t* src, size_t n) {
  Ops().and_words(dst, src, n);
}

void OrWords(uint64_t* dst, const uint64_t* src, size_t n) {
  Ops().or_words(dst, src, n);
}

double BlockedKahanSum(const double* x, size_t n) {
  return Ops().blocked_kahan_sum(x, n);
}

}  // namespace kernels
}  // namespace causumx
