#include "util/string_utils.h"

#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <sstream>

namespace causumx {

std::vector<std::string> Split(const std::string& s, char delim) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : s) {
    if (c == delim) {
      out.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  out.push_back(cur);
  return out;
}

std::string Join(const std::vector<std::string>& parts,
                 const std::string& sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i) out += sep;
    out += parts[i];
  }
  return out;
}

std::string Trim(const std::string& s) {
  size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string ToLower(const std::string& s) {
  std::string out = s;
  for (char& c : out) c = static_cast<char>(std::tolower(c));
  return out;
}

std::string FormatDouble(double v, int precision) {
  std::ostringstream oss;
  oss.precision(precision);
  oss << std::defaultfloat << v;
  return oss.str();
}

std::string HumanMagnitude(double v) {
  const double a = std::fabs(v);
  char buf[64];
  if (a >= 1e6) {
    std::snprintf(buf, sizeof(buf), "%.3gM", v / 1e6);
  } else if (a >= 1e3) {
    std::snprintf(buf, sizeof(buf), "%.3gK", v / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.3g", v);
  }
  return buf;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args2;
  va_copy(args2, args);
  const int n = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<size_t>(n));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args2);
  }
  va_end(args2);
  return out;
}

}  // namespace causumx
