// Small string helpers shared by CSV I/O and the explanation renderer.

#ifndef CAUSUMX_UTIL_STRING_UTILS_H_
#define CAUSUMX_UTIL_STRING_UTILS_H_

#include <string>
#include <vector>

namespace causumx {

/// Splits on a single-character delimiter; keeps empty fields.
std::vector<std::string> Split(const std::string& s, char delim);

/// Joins with a separator.
std::string Join(const std::vector<std::string>& parts,
                 const std::string& sep);

/// Trims ASCII whitespace from both ends.
std::string Trim(const std::string& s);

/// Lower-cases ASCII.
std::string ToLower(const std::string& s);

/// Formats a double compactly (trailing zeros stripped, up to `precision`
/// significant decimals).
std::string FormatDouble(double v, int precision = 4);

/// Renders a value like 36000 as "36K" / 1200000 as "1.2M" for the
/// natural-language summaries.
std::string HumanMagnitude(double v);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

}  // namespace causumx

#endif  // CAUSUMX_UTIL_STRING_UTILS_H_
