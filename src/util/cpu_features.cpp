#include "util/cpu_features.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

namespace causumx {

namespace {

// Best tier this build + CPU can execute. The AVX2 translation unit is
// only compiled on x86-64 builds (CAUSUMX_HAVE_AVX2_KERNELS), and even
// then the executing CPU must report the extension — a binary built on
// an AVX2 machine keeps working on an older one.
KernelTier DetectBestTier() {
#if defined(CAUSUMX_HAVE_AVX2_KERNELS)
  if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("popcnt")) {
    return KernelTier::kAvx2;
  }
#endif
  return KernelTier::kScalar;
}

// -1 = not yet resolved; otherwise the KernelTier value.
std::atomic<int> g_active_tier{-1};

KernelTier ResolveTier() {
  KernelTier tier = DetectBestTier();
  if (const char* env = std::getenv("CAUSUMX_KERNEL")) {
    if (std::strcmp(env, "scalar") == 0) {
      tier = KernelTier::kScalar;
    } else if (std::strcmp(env, "avx2") == 0 &&
               KernelTierSupported(KernelTier::kAvx2)) {
      tier = KernelTier::kAvx2;
    }
    // Unknown or unsupported values keep the detected tier: an
    // over-requesting CAUSUMX_KERNEL must degrade, never crash.
  }
  return tier;
}

}  // namespace

const char* KernelTierName(KernelTier tier) {
  switch (tier) {
    case KernelTier::kScalar:
      return "scalar";
    case KernelTier::kAvx2:
      return "avx2";
  }
  return "?";
}

bool KernelTierSupported(KernelTier tier) {
  switch (tier) {
    case KernelTier::kScalar:
      return true;
    case KernelTier::kAvx2:
      return DetectBestTier() == KernelTier::kAvx2;
  }
  return false;
}

KernelTier ActiveKernelTier() {
  int t = g_active_tier.load(std::memory_order_acquire);
  if (t < 0) {
    // Concurrent first calls resolve the same value; last store wins.
    const KernelTier tier = ResolveTier();
    g_active_tier.store(static_cast<int>(tier), std::memory_order_release);
    return tier;
  }
  return static_cast<KernelTier>(t);
}

bool SetKernelTier(KernelTier tier) {
  if (!KernelTierSupported(tier)) return false;
  g_active_tier.store(static_cast<int>(tier), std::memory_order_release);
  return true;
}

}  // namespace causumx
