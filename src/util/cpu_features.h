// Runtime CPU-capability detection and kernel-tier selection for the
// vectorized kernel layer (util/kernels.h).
//
// The library ships one binary with several implementations of each hot
// kernel — a portable scalar tier that runs everywhere, and an AVX2 tier
// compiled into its own translation unit with the matching -m flags.
// The tier is selected once, at first kernel use, from (a) the
// `CAUSUMX_KERNEL` environment variable when set (`scalar` or `avx2`,
// for testing and for pinning CI legs), falling back to (b) what the CPU
// executing the process actually supports. A requested tier the build or
// CPU cannot honor silently degrades to the best supported one, so
// `CAUSUMX_KERNEL=avx2` on a non-AVX2 machine still runs correctly.
//
// Every tier of every kernel is bit-identical by contract — dispatch is
// purely a throughput decision — and the differential tests in
// tests/test_kernels.cpp hold all tiers to that contract.

#ifndef CAUSUMX_UTIL_CPU_FEATURES_H_
#define CAUSUMX_UTIL_CPU_FEATURES_H_

namespace causumx {

/// Implementation tiers of the kernel layer, ordered by preference.
/// Numeric values are stable (used in dispatch tables).
enum class KernelTier {
  kScalar = 0,  ///< portable word-at-a-time C++; runs on any CPU
  kAvx2 = 1,    ///< AVX2 + POPCNT vector kernels (x86-64 only)
};

/// Human-readable tier name ("scalar", "avx2").
const char* KernelTierName(KernelTier tier);

/// True when `tier` can run here: its code is compiled into this binary
/// and the executing CPU reports the required ISA extensions.
bool KernelTierSupported(KernelTier tier);

/// The tier every kernel currently dispatches to. Resolved once on first
/// call: `CAUSUMX_KERNEL` if set (degraded to a supported tier if not),
/// otherwise the best supported tier. Thread-safe.
KernelTier ActiveKernelTier();

/// Overrides the active tier (tests and benchmarks compare tiers
/// in-process with this). Returns false — and changes nothing — when the
/// tier is unsupported here. Thread-safe, but callers must not change
/// tiers while kernels are executing concurrently if they expect a
/// single run to use one tier throughout; results are bit-identical
/// across tiers either way.
bool SetKernelTier(KernelTier tier);

}  // namespace causumx

#endif  // CAUSUMX_UTIL_CPU_FEATURES_H_
