// Deterministic pseudo-random number generation.
//
// All stochastic components of the library (data generators, CATE sampling,
// LP randomized rounding) draw from this engine so that experiments are
// reproducible bit-for-bit given a seed.

#ifndef CAUSUMX_UTIL_RNG_H_
#define CAUSUMX_UTIL_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace causumx {

/// Deterministic 64-bit PRNG (xoshiro256**).
///
/// Not cryptographically secure; chosen for speed, quality, and a tiny,
/// dependency-free implementation whose output is identical across
/// platforms (unlike std::mt19937 distributions, whose mapping to
/// doubles/integers is implementation-defined).
class Rng {
 public:
  /// Seeds the generator. Two Rng instances with the same seed produce the
  /// same sequence.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Uniform 64-bit value.
  uint64_t NextU64();

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform integer in [0, bound). Requires bound > 0.
  uint64_t NextBounded(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t NextInt(int64_t lo, int64_t hi);

  /// Standard normal via Box-Muller.
  double NextGaussian();

  /// Normal with the given mean/stddev.
  double NextGaussian(double mean, double stddev) {
    return mean + stddev * NextGaussian();
  }

  /// Bernoulli(p).
  bool NextBool(double p) { return NextDouble() < p; }

  /// Samples an index from an (unnormalized, non-negative) weight vector.
  /// Returns weights.size() - 1 if all weights are zero.
  size_t NextWeighted(const std::vector<double>& weights);

  /// Fisher-Yates shuffle of v.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    if (v->empty()) return;
    for (size_t i = v->size() - 1; i > 0; --i) {
      size_t j = NextBounded(i + 1);
      std::swap((*v)[i], (*v)[j]);
    }
  }

  /// Samples `count` distinct indices from [0, n) without replacement
  /// (order unspecified). If count >= n, returns all of [0, n).
  std::vector<size_t> SampleIndices(size_t n, size_t count);

 private:
  uint64_t s_[4];
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace causumx

#endif  // CAUSUMX_UTIL_RNG_H_
