// Wall-clock timing helpers for the benchmark harness and the per-phase
// runtime breakdown experiment (Fig. 14/20).

#ifndef CAUSUMX_UTIL_TIMER_H_
#define CAUSUMX_UTIL_TIMER_H_

#include <chrono>
#include <map>
#include <string>

namespace causumx {

/// Simple monotonic stopwatch.
class Timer {
 public:
  Timer() { Reset(); }

  void Reset() { start_ = Clock::now(); }

  /// Elapsed seconds since construction or the last Reset().
  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double Millis() const { return Seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Accumulates named phase durations; used by CauSumX to report the
/// per-phase runtime breakdown of Algorithm 1.
class PhaseTimer {
 public:
  /// Adds `seconds` to the named phase.
  void Add(const std::string& phase, double seconds) {
    phases_[phase] += seconds;
  }

  /// Seconds recorded for `phase` (0 if absent).
  double Get(const std::string& phase) const {
    auto it = phases_.find(phase);
    return it == phases_.end() ? 0.0 : it->second;
  }

  const std::map<std::string, double>& phases() const { return phases_; }

  double Total() const {
    double t = 0;
    // causumx-lint: allow(fp-accumulation) phases_ is an ordered std::map)
    for (const auto& [_, v] : phases_) t += v;
    return t;
  }

  void Clear() { phases_.clear(); }

 private:
  std::map<std::string, double> phases_;
};

}  // namespace causumx

#endif  // CAUSUMX_UTIL_TIMER_H_
