// Statistical primitives used across the library.
//
// Implemented from scratch (no external stats dependency): descriptive
// statistics, Pearson/partial correlation helpers, normal and Student-t
// distribution functions (for CI tests and CATE p-values), and Kendall's
// tau (for the DAG-sensitivity and sampling experiments, Figs. 15/16).

#ifndef CAUSUMX_UTIL_STATS_H_
#define CAUSUMX_UTIL_STATS_H_

#include <cstddef>
#include <vector>

namespace causumx {

/// Sum of x[0..n) under the fixed blocked-Kahan reduction order: Kahan
/// within each kSummationBlockRows-row block, block partials folded into
/// the total in ascending block order (sum, then compensation — exactly
/// KahanSum::Merge). Bit-identical to streaming every element through a
/// BlockedKahan accumulator, on every kernel dispatch tier; the
/// vectorized implementation lives in the kernel layer (util/kernels.h).
double BlockedKahanSum(const double* x, size_t n);

/// Arithmetic mean (blocked-Kahan sum / n); returns 0 for an empty
/// vector.
double Mean(const std::vector<double>& x);

/// Unbiased sample variance (divides by n-1); returns 0 for n < 2.
double Variance(const std::vector<double>& x);

/// Sample standard deviation.
double StdDev(const std::vector<double>& x);

/// Pearson correlation in [-1, 1]; returns 0 when either side is constant.
double PearsonCorrelation(const std::vector<double>& x,
                          const std::vector<double>& y);

/// Standard normal cumulative distribution function.
double NormalCdf(double z);

/// Inverse standard normal CDF (Acklam's rational approximation,
/// |error| < 1.15e-9). Requires 0 < p < 1.
double NormalQuantile(double p);

/// Regularized incomplete beta function I_x(a, b) via the continued
/// fraction of Lentz; used by StudentTCdf.
double IncompleteBeta(double a, double b, double x);

/// Student-t cumulative distribution function with `df` degrees of freedom.
double StudentTCdf(double t, double df);

/// Two-sided p-value for a t-statistic with `df` degrees of freedom.
double TwoSidedPValueT(double t, double df);

/// Two-sided p-value for a z-statistic under the standard normal.
double TwoSidedPValueZ(double z);

/// Kendall's tau-b rank correlation between two equally sized vectors.
/// Handles ties; O(n^2) — fine for the <=20-element rankings in the paper's
/// experiments. Returns 0 for n < 2.
double KendallTau(const std::vector<double>& x, const std::vector<double>& y);

/// Natural logarithm of the gamma function (Lanczos approximation).
double LogGamma(double x);

/// Kahan (compensated) summation accumulator: the running compensation
/// term recovers the low-order bits a naive += discards, keeping group
/// averages exact to ~1 ulp even when many large-offset values are summed
/// (naive summation loses up to n*ulp(sum) — catastrophic for 1e8-offset
/// outcomes averaged over millions of rows).
class KahanSum {
 public:
  void Add(double x) {
    const double y = x - c_;
    const double t = sum_ + y;
    c_ = (t - sum_) - y;
    sum_ = t;
  }
  double Sum() const { return sum_; }

  /// The running compensation term (the low-order bits Sum() is missing).
  double Compensation() const { return c_; }

  /// Folds another accumulator's state into this one: Add(sum) then
  /// Add(compensation). Used by the blocked/sharded reductions to combine
  /// per-block partial sums in a fixed order — the sequence of Add calls
  /// (and hence the result, bit for bit) depends only on the block
  /// decomposition, never on which thread computed which block.
  void Merge(const KahanSum& other) {
    Add(other.sum_);
    Add(other.c_);
  }

 private:
  double sum_ = 0.0;
  double c_ = 0.0;
};

/// Fixed reduction-block size (rows) for order-sensitive floating-point
/// accumulations on the sharded execution path. Each block is summed
/// sequentially (Kahan) and block partials merge in ascending block
/// order, so the result is a function of the data and this constant
/// alone — any shard decomposition aligned to block boundaries (see
/// ShardPlan) reproduces the serial result bit for bit. 64 rows = one
/// bitset word, so block boundaries are also word boundaries.
inline constexpr size_t kSummationBlockRows = 64;

/// Streaming blocked-Kahan accumulator: values arrive tagged with their
/// (ascending) row index; rows in the same kSummationBlockRows-block sum
/// into an open block partial, and each completed block merges into the
/// running total in block order. `Sum()` flushes the open block. The
/// final value is bit-identical whether one caller streams every row or
/// per-shard partials of whole blocks are merged in shard order.
class BlockedKahan {
 public:
  void Add(size_t row, double x) {
    const size_t block = row / kSummationBlockRows;
    if (block != block_ && has_block_) {
      total_.Merge(open_);
      open_ = KahanSum();
    }
    block_ = block;
    has_block_ = true;
    open_.Add(x);
  }

  double Sum() const {
    KahanSum total = total_;
    if (has_block_) total.Merge(open_);
    return total.Sum();
  }

 private:
  KahanSum total_;
  KahanSum open_;
  size_t block_ = 0;
  bool has_block_ = false;
};

/// Welford-style streaming accumulator for mean/variance.
class RunningStats {
 public:
  void Add(double x);
  size_t Count() const { return n_; }
  double Mean() const { return n_ ? mean_ : 0.0; }
  double Variance() const { return n_ > 1 ? m2_ / (n_ - 1) : 0.0; }
  double StdDev() const;

 private:
  size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

}  // namespace causumx

#endif  // CAUSUMX_UTIL_STATS_H_
