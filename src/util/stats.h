// Statistical primitives used across the library.
//
// Implemented from scratch (no external stats dependency): descriptive
// statistics, Pearson/partial correlation helpers, normal and Student-t
// distribution functions (for CI tests and CATE p-values), and Kendall's
// tau (for the DAG-sensitivity and sampling experiments, Figs. 15/16).

#ifndef CAUSUMX_UTIL_STATS_H_
#define CAUSUMX_UTIL_STATS_H_

#include <cstddef>
#include <vector>

namespace causumx {

/// Arithmetic mean; returns 0 for an empty vector.
double Mean(const std::vector<double>& x);

/// Unbiased sample variance (divides by n-1); returns 0 for n < 2.
double Variance(const std::vector<double>& x);

/// Sample standard deviation.
double StdDev(const std::vector<double>& x);

/// Pearson correlation in [-1, 1]; returns 0 when either side is constant.
double PearsonCorrelation(const std::vector<double>& x,
                          const std::vector<double>& y);

/// Standard normal cumulative distribution function.
double NormalCdf(double z);

/// Inverse standard normal CDF (Acklam's rational approximation,
/// |error| < 1.15e-9). Requires 0 < p < 1.
double NormalQuantile(double p);

/// Regularized incomplete beta function I_x(a, b) via the continued
/// fraction of Lentz; used by StudentTCdf.
double IncompleteBeta(double a, double b, double x);

/// Student-t cumulative distribution function with `df` degrees of freedom.
double StudentTCdf(double t, double df);

/// Two-sided p-value for a t-statistic with `df` degrees of freedom.
double TwoSidedPValueT(double t, double df);

/// Two-sided p-value for a z-statistic under the standard normal.
double TwoSidedPValueZ(double z);

/// Kendall's tau-b rank correlation between two equally sized vectors.
/// Handles ties; O(n^2) — fine for the <=20-element rankings in the paper's
/// experiments. Returns 0 for n < 2.
double KendallTau(const std::vector<double>& x, const std::vector<double>& y);

/// Natural logarithm of the gamma function (Lanczos approximation).
double LogGamma(double x);

/// Kahan (compensated) summation accumulator: the running compensation
/// term recovers the low-order bits a naive += discards, keeping group
/// averages exact to ~1 ulp even when many large-offset values are summed
/// (naive summation loses up to n*ulp(sum) — catastrophic for 1e8-offset
/// outcomes averaged over millions of rows).
class KahanSum {
 public:
  void Add(double x) {
    const double y = x - c_;
    const double t = sum_ + y;
    c_ = (t - sum_) - y;
    sum_ = t;
  }
  double Sum() const { return sum_; }

 private:
  double sum_ = 0.0;
  double c_ = 0.0;
};

/// Welford-style streaming accumulator for mean/variance.
class RunningStats {
 public:
  void Add(double x);
  size_t Count() const { return n_; }
  double Mean() const { return n_ ? mean_ : 0.0; }
  double Variance() const { return n_ > 1 ? m2_ / (n_ - 1) : 0.0; }
  double StdDev() const;

 private:
  size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

}  // namespace causumx

#endif  // CAUSUMX_UTIL_STATS_H_
