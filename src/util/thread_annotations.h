// Clang thread-safety annotation macros and capability-annotated
// synchronization primitives.
//
// The concurrency discipline of the service/engine/server layers —
// which member is guarded by which mutex, which private methods demand
// a lock already held — was previously prose in comments ("guards
// tables_") and enforced only dynamically by the TSan CI leg, i.e. for
// the schedules the tests happen to exercise. These macros make the
// discipline machine-checked: under Clang's `-Wthread-safety` analysis
// (a dedicated CI leg compiles with it promoted to an error) every
// access to a `CAUSUMX_GUARDED_BY(mu)` member outside a critical
// section of `mu`, and every call to a `CAUSUMX_REQUIRES(mu)` method
// without the lock, is a compile error — for *all* schedules, not just
// the sampled ones.
//
// Under GCC (the default local toolchain) every macro expands to
// nothing and `Mutex`/`SharedMutex`/`CondVar` are zero-overhead
// wrappers over their std counterparts.
//
// Conventions used across the codebase:
//   * Every mutex-protected member carries CAUSUMX_GUARDED_BY(mu).
//   * Private "the caller already holds the lock" helpers are suffixed
//     `Locked` and carry CAUSUMX_REQUIRES(mu); public entry points
//     take the lock and delegate.
//   * Public methods that must NOT be called with a lock held (they
//     take it themselves) carry CAUSUMX_EXCLUDES(mu) where deadlock
//     through re-entry is plausible.
//   * std::mutex / std::lock_guard are not used directly in annotated
//     code: the analysis cannot see through libstdc++'s unannotated
//     types, so annotated code uses util::Mutex + util::MutexLock
//     (and util::CondVar for waiting).

#ifndef CAUSUMX_UTIL_THREAD_ANNOTATIONS_H_
#define CAUSUMX_UTIL_THREAD_ANNOTATIONS_H_

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <shared_mutex>

#if defined(__clang__) && (!defined(SWIG))
#define CAUSUMX_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define CAUSUMX_THREAD_ANNOTATION(x)  // no-op outside Clang
#endif

/// Declares a class to be a lockable capability ("mutex").
#define CAUSUMX_CAPABILITY(x) CAUSUMX_THREAD_ANNOTATION(capability(x))

/// Declares an RAII class that acquires a capability in its constructor
/// and releases it in its destructor.
#define CAUSUMX_SCOPED_CAPABILITY CAUSUMX_THREAD_ANNOTATION(scoped_lockable)

/// The annotated member may only be read or written while holding `x`.
#define CAUSUMX_GUARDED_BY(x) CAUSUMX_THREAD_ANNOTATION(guarded_by(x))

/// The pointed-to data (not the pointer itself) is guarded by `x`.
#define CAUSUMX_PT_GUARDED_BY(x) CAUSUMX_THREAD_ANNOTATION(pt_guarded_by(x))

/// The function may only be called while holding `x` exclusively.
#define CAUSUMX_REQUIRES(...) \
  CAUSUMX_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// The function may only be called while holding `x` (shared or
/// exclusive).
#define CAUSUMX_REQUIRES_SHARED(...) \
  CAUSUMX_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

/// The function acquires `x` exclusively and does not release it.
#define CAUSUMX_ACQUIRE(...) \
  CAUSUMX_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// The function acquires `x` shared and does not release it.
#define CAUSUMX_ACQUIRE_SHARED(...) \
  CAUSUMX_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))

/// The function releases `x` (exclusive).
#define CAUSUMX_RELEASE(...) \
  CAUSUMX_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// The function releases `x` (shared).
#define CAUSUMX_RELEASE_SHARED(...) \
  CAUSUMX_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))

/// The function must NOT be called while holding `x` (it acquires `x`
/// itself, or acquiring would deadlock/violate ordering).
#define CAUSUMX_EXCLUDES(...) \
  CAUSUMX_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// The function acquires `x` exclusively iff it returns `b`.
#define CAUSUMX_TRY_ACQUIRE(...) \
  CAUSUMX_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/// The annotated function returns a reference to the capability
/// guarding its result.
#define CAUSUMX_RETURN_CAPABILITY(x) \
  CAUSUMX_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch: disables the analysis for one function body. Used for
/// primitives whose correctness argument lives outside the lock
/// discipline (e.g. CondVar::Wait, which releases and reacquires).
#define CAUSUMX_NO_THREAD_SAFETY_ANALYSIS \
  CAUSUMX_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace causumx {
namespace util {

/// A capability-annotated std::mutex. Lowercase lock/unlock keep it a
/// C++ Lockable, so std::condition_variable_any (inside CondVar) and
/// std::unique_lock still compose with it.
class CAUSUMX_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() CAUSUMX_ACQUIRE() { mu_.lock(); }
  void unlock() CAUSUMX_RELEASE() { mu_.unlock(); }
  bool try_lock() CAUSUMX_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  std::mutex mu_;
};

/// A capability-annotated std::shared_mutex (reader/writer).
class CAUSUMX_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void lock() CAUSUMX_ACQUIRE() { mu_.lock(); }
  void unlock() CAUSUMX_RELEASE() { mu_.unlock(); }
  void lock_shared() CAUSUMX_ACQUIRE_SHARED() { mu_.lock_shared(); }
  void unlock_shared() CAUSUMX_RELEASE_SHARED() { mu_.unlock_shared(); }

 private:
  std::shared_mutex mu_;
};

/// RAII exclusive lock on a Mutex (the annotated std::lock_guard).
class CAUSUMX_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) CAUSUMX_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() CAUSUMX_RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// RAII exclusive lock on a SharedMutex (writer side).
class CAUSUMX_SCOPED_CAPABILITY WriterMutexLock {
 public:
  explicit WriterMutexLock(SharedMutex& mu) CAUSUMX_ACQUIRE(mu) : mu_(mu) {
    mu_.lock();
  }
  ~WriterMutexLock() CAUSUMX_RELEASE() { mu_.unlock(); }

  WriterMutexLock(const WriterMutexLock&) = delete;
  WriterMutexLock& operator=(const WriterMutexLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// RAII shared lock on a SharedMutex (reader side).
class CAUSUMX_SCOPED_CAPABILITY ReaderMutexLock {
 public:
  explicit ReaderMutexLock(SharedMutex& mu) CAUSUMX_ACQUIRE_SHARED(mu)
      : mu_(mu) {
    mu_.lock_shared();
  }
  ~ReaderMutexLock() CAUSUMX_RELEASE() { mu_.unlock_shared(); }

  ReaderMutexLock(const ReaderMutexLock&) = delete;
  ReaderMutexLock& operator=(const ReaderMutexLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// Condition variable waiting on a util::Mutex. Wait releases and
/// reacquires the mutex internally — from the caller's (and the
/// analysis') perspective the lock is held across the call, hence
/// REQUIRES. Callers keep their `while (!cond) cv.Wait(mu);` loops in
/// the locked scope, so guarded condition reads stay checked.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Blocks until notified; `mu` must be held and is held on return.
  void Wait(Mutex& mu) CAUSUMX_REQUIRES(mu) CAUSUMX_NO_THREAD_SAFETY_ANALYSIS {
    cv_.wait(mu);
  }

  /// Blocks until notified or `timeout` elapses; `mu` must be held and
  /// is held on return. Returns false on timeout. Long-poll waiters
  /// (the monitor event subscription surface) bound their waits with
  /// this; spurious wakeups are possible, so callers re-check their
  /// condition in a deadline loop.
  template <class Rep, class Period>
  bool WaitFor(Mutex& mu, const std::chrono::duration<Rep, Period>& timeout)
      CAUSUMX_REQUIRES(mu) CAUSUMX_NO_THREAD_SAFETY_ANALYSIS {
    return cv_.wait_for(mu, timeout) == std::cv_status::no_timeout;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  // condition_variable_any works with any Lockable — here the annotated
  // Mutex itself, so no unannotated std lock type enters the picture.
  std::condition_variable_any cv_;
};

}  // namespace util
}  // namespace causumx

#endif  // CAUSUMX_UTIL_THREAD_ANNOTATIONS_H_
