// Roaring-style compressed bitsets and the representation-switching
// segment wrapper used by the EvalEngine's per-shard predicate cache.
//
// A CompressedBitset partitions its universe into 65536-bit chunks and
// stores each chunk in whichever container is smallest for its contents:
// a sorted uint16 array (sparse chunks), a plain 1024-word bitmap (dense
// chunks), or a run list (clustered chunks, e.g. predicates over sorted
// ingest keys). This is the classic Roaring layout (Chambi et al.),
// scoped to what the engine needs: build-once read-many segments with
// exact byte accounting — there is no incremental mutation.
//
// SegmentBits is the representation switch: given a materialized plain
// segment it either keeps it or compresses it, by density (kAuto) or by
// decree (kNever / kAlways, used by tests and the differential harness).
// Whatever the representation, reads are bit-identical — decompression
// reproduces the exact words the predicate kernels emitted.

#ifndef CAUSUMX_UTIL_COMPRESSED_BITSET_H_
#define CAUSUMX_UTIL_COMPRESSED_BITSET_H_

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "util/bitset.h"

namespace causumx {

/// Immutable Roaring-style compressed bitset: per-65536-bit-chunk
/// array / bitmap / run containers, chosen per chunk by encoded size.
class CompressedBitset {
 public:
  /// Rows per chunk (and the alignment of container boundaries).
  static constexpr size_t kChunkBits = 65536;

  /// The empty bitset over an empty universe.
  CompressedBitset() = default;

  /// Compresses `bits`. Deterministic: equal bitsets always produce the
  /// identical container layout.
  static CompressedBitset FromBitset(const Bitset& bits);

  /// Decompresses to a plain bitset equal to the FromBitset input.
  Bitset ToBitset() const;

  /// Writes the ceil(size()/64) words of the decompressed bitset to
  /// `words` (little-endian bit order, padding bits clear) — the
  /// scratch-buffer decompression primitive behind SegmentBits'
  /// AND/assign paths.
  void DecompressTo(uint64_t* words) const;

  /// Universe size in bits.
  size_t size() const { return size_; }

  /// Number of set bits (precomputed at build time; O(1)).
  size_t Count() const { return count_; }

  /// Membership test for bit `i` (false past the universe).
  bool Test(size_t i) const;

  /// Accounted resident bytes: the object itself plus every container's
  /// heap storage. This is what the engine's LRU charges per segment.
  size_t SizeBytes() const;

  /// Content equality (same universe, same bits). Representations are
  /// deterministic, so this is a cheap structural comparison.
  bool operator==(const CompressedBitset& other) const;

  /// Appends a portable little-endian byte encoding to `out`: the exact
  /// container layout, so Serialize → Deserialize → operator== holds.
  /// Consumed by the storage layer's warm-state snapshots.
  void Serialize(std::string* out) const;

  /// Parses an encoding produced by Serialize from `bytes` starting at
  /// `*pos` and advances `*pos` past it. Every container is validated
  /// (bounds, ordering, counts, padding) before the object is returned,
  /// so hostile bytes can never build a bitset whose readers index out
  /// of range. Throws std::runtime_error on malformed input.
  static CompressedBitset Deserialize(const std::string& bytes, size_t* pos);

 private:
  enum class ContainerType : uint8_t { kArray, kBitmap, kRun };

  /// One 65536-bit chunk. At most one of the two storage vectors is
  /// non-empty (a chunk with no set bits encodes as an empty run list).
  struct Container {
    ContainerType type = ContainerType::kArray;
    uint32_t count = 0;  // set bits in this chunk
    /// kArray: sorted bit offsets. kRun: flattened (start, length-1)
    /// pairs, sorted by start.
    std::vector<uint16_t> u16;
    /// kBitmap: the chunk's words verbatim (1024, fewer for a final
    /// partial chunk).
    std::vector<uint64_t> words;
  };

  size_t size_ = 0;
  size_t count_ = 0;
  std::vector<Container> chunks_;
};

/// How SegmentBits decides between plain and compressed storage.
enum class SegmentCompression {
  /// Compress when the compressed form is at most half the plain bytes
  /// (hysteresis: borderline chunks stay plain, so the cheap word-wise
  /// AND path keeps serving dense segments).
  kAuto,
  /// Always plain (the pre-compression engine behavior).
  kNever,
  /// Always compressed, even when larger (differential testing).
  kAlways,
};

/// One cached predicate segment: a plain Bitset or its compressed form,
/// chosen at build time. Immutable after Choose; safe to share across
/// threads by shared_ptr like the plain segments it replaces.
class SegmentBits {
 public:
  /// Wraps `bits` under `mode` (see SegmentCompression). The plain
  /// bitset is moved in, not copied, when it is kept.
  static SegmentBits Choose(Bitset bits, SegmentCompression mode);

  /// Universe size in bits.
  size_t size() const;

  /// Number of set bits.
  size_t Count() const;

  /// Accounted resident bytes of this segment (object + heap), the unit
  /// of the engine's LRU byte budget.
  size_t bytes() const;

  /// True when the segment is stored compressed.
  bool compressed() const { return comp_.has_value(); }

  /// The plain bitset when stored plain, nullptr when compressed (the
  /// zero-copy fast path of PredicateBits).
  const Bitset* plain() const { return plain_ ? &*plain_ : nullptr; }

  /// The segment as a plain bitset (copy or decompression).
  Bitset Materialize() const;

  /// ANDs this segment into dst rows [offset, offset + size()).
  /// `offset` must be word-aligned; rows of dst past the range keep
  /// their value. `scratch` is caller-owned reusable word storage for
  /// the compressed path (grown as needed, contents clobbered).
  void AndIntoRange(Bitset* dst, size_t offset,
                    std::vector<uint64_t>* scratch) const;

  /// Writes this segment over dst rows [offset, offset + size()),
  /// replacing them. Same alignment contract as AndIntoRange.
  void AssignIntoRange(Bitset* dst, size_t offset) const;

  /// Appends a portable byte encoding of this segment to `out` — a
  /// representation tag plus the plain words or compressed containers,
  /// so a restored segment is byte-for-byte the segment that was saved
  /// (same representation, same accounted bytes).
  void Serialize(std::string* out) const;

  /// Inverse of Serialize; reads from `bytes` at `*pos` and advances
  /// it. Throws std::runtime_error on malformed input.
  static SegmentBits Deserialize(const std::string& bytes, size_t* pos);

 private:
  SegmentBits() = default;

  std::optional<Bitset> plain_;
  std::optional<CompressedBitset> comp_;
};

}  // namespace causumx

#endif  // CAUSUMX_UTIL_COMPRESSED_BITSET_H_
