// Vectorized kernels for the per-core hot loops, behind runtime CPU
// dispatch (util/cpu_features.h).
//
// These are the innermost loops of the lattice walk: predicate
// evaluation against dictionary-coded and numeric columns, bitwise
// AND/ANDNOT/popcount over bitset words, and the blocked-Kahan
// reductions. Each kernel has a portable scalar implementation and, on
// x86-64 builds, an AVX2 implementation (src/util/kernels_avx2.cpp,
// compiled with its own -m flags); every call dispatches to the active
// tier (ActiveKernelTier()).
//
// Bit-identity contract: every tier of every kernel produces exactly the
// same output — predicate kernels emit the same words, popcounts the
// same counts, and BlockedKahanSum performs the identical per-block
// floating-point operation sequence merged in the identical block order.
// Dispatch is a pure throughput decision; tests/test_kernels.cpp holds
// all tiers to this contract differentially.
//
// Word conventions: predicate kernels emit ceil(n/64) little-endian
// words — bit i of the output is row i of the input range — and clear
// every padding bit past n, so outputs drop into Bitset storage
// canonically. Operand layering: this header depends on nothing but the
// standard library, so bitset/stats/pattern can all sit on top of it.

#ifndef CAUSUMX_UTIL_KERNELS_H_
#define CAUSUMX_UTIL_KERNELS_H_

#include <cstddef>
#include <cstdint>

namespace causumx {
namespace kernels {

/// Comparison operator of a predicate kernel. Mirrors the dataset
/// layer's CompareOp (this header cannot depend on it); pattern.cpp maps
/// between the two.
enum class CmpOp { kEq, kLt, kGt, kLe, kGe };

/// Dictionary-equality predicate evaluation: bit i of `out` is set iff
/// values[i] == target. Null codes (-1, or any value != target) clear
/// the bit, matching "null never matches". Writes ceil(n/64) words.
void CompareI32Eq(const int32_t* values, size_t n, int32_t target,
                  uint64_t* out);

/// Dictionary-lookup predicate evaluation for ordered operators on
/// categorical columns: bit i is set iff values[i] >= 0 &&
/// lut[values[i]] != 0. The caller resolves the (string) comparator
/// against each dictionary entry once into `lut`, turning a per-row
/// string comparison into a byte load. Scalar on every tier.
void CompareI32Lut(const int32_t* values, size_t n, const uint8_t* lut,
                   uint64_t* out);

/// Floating-point predicate evaluation with IEEE ordered-quiet
/// semantics: bit i is set iff `values[i] op rhs` holds numerically; any
/// comparison involving NaN is false, which implements "null cells never
/// match" (double-column nulls are NaN). The caller must handle a NaN
/// `rhs` itself (see EvaluatePredicateRange) — kernels assume rhs==rhs.
void CompareF64(const double* values, size_t n, CmpOp op, double rhs,
                uint64_t* out);

/// Integer-column predicate evaluation matching the row-at-a-time
/// reference: bit i is set iff values[i] != null_value and
/// `(double)values[i] op rhs` holds (the reference path compares int
/// cells in the double domain). Scalar on every tier. `rhs` must not be
/// NaN (same caller contract as CompareF64).
void CompareI64AsF64(const int64_t* values, size_t n, CmpOp op, double rhs,
                     int64_t null_value, uint64_t* out);

/// Total set bits over `n` words.
size_t PopcountWords(const uint64_t* words, size_t n);

/// Fused popcount(a & ~b) over `n` words — the greedy selector's
/// marginal-gain count, without materializing the intersection.
size_t AndNotPopcount(const uint64_t* a, const uint64_t* b, size_t n);

/// dst[i] &= src[i] over `n` words — the shard-segment AND-accumulation.
void AndWords(uint64_t* dst, const uint64_t* src, size_t n);

/// dst[i] |= src[i] over `n` words.
void OrWords(uint64_t* dst, const uint64_t* src, size_t n);

/// Blocked compensated summation of x[0..n): rows are summed
/// sequentially (Kahan) within each kSummationBlockRows(=64)-row block
/// and block partials merge in ascending block order — exactly the
/// operation sequence of streaming BlockedKahan::Add(i, x[i]) for
/// i = 0..n, so the result is bit-identical to it on every tier (the
/// AVX2 tier runs four blocks in four lanes; each block's internal
/// sequence and the merge order are unchanged).
double BlockedKahanSum(const double* x, size_t n);

}  // namespace kernels
}  // namespace causumx

#endif  // CAUSUMX_UTIL_KERNELS_H_
