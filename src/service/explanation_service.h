// Multi-query explanation service with cross-query cache reuse.
//
// RunCauSumX builds its EvalEngine and EstimatorContext from scratch per
// call, so the interned-predicate bitsets and memoized CATEs die with
// each query. ExplanationService owns a registry of loaded tables — each
// with one long-lived shared EvalEngine and one EstimatorContext per
// (DAG, estimator-options) pair — so repeated and overlapping queries
// against the same table are served warm: the second identical query
// costs memo lookups instead of OLS solves (see bench_service).
//
// Queries execute concurrently over an internal ThreadPool
// (ExplainAsync / many callers sharing one service); all caches are
// internally synchronized. A configurable memory budget bounds the
// evictable caches (predicate bitsets + CATE memos) across all tables:
// after every query the service evicts least-recently-used entries from
// the largest consumers until the accounted bytes fit. Eviction only
// discards cached work — results stay bit-identical.

#ifndef CAUSUMX_SERVICE_EXPLANATION_SERVICE_H_
#define CAUSUMX_SERVICE_EXPLANATION_SERVICE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "causal/estimator_context.h"
#include "core/causumx.h"
#include "core/exploration.h"
#include "dataset/csv.h"
#include "dataset/table.h"
#include "engine/eval_engine.h"
#include "util/thread_annotations.h"
#include "util/thread_pool.h"

namespace causumx {

/// Service-wide configuration.
struct ServiceOptions {
  /// Upper bound on the evictable cache bytes (predicate bitset segments
  /// + CATE memo entries) summed over every registered table.
  /// 0 = unlimited.
  size_t memory_budget_bytes = 0;
  /// Worker threads for ExplainAsync / batch execution (0 = hardware).
  size_t num_threads = 0;
  /// Row shards per registered table (the --shards knob): 0 = one shard
  /// per worker thread, N >= 1 = that many shards, clamped to one per
  /// 64-row block — so 1, huge values, and 0 are all valid and produce
  /// bit-identical results; only the parallelism granularity changes.
  /// The shard size is fixed at registration and survives appends.
  size_t num_shards = 0;
  /// When false, every table's engine runs in cache-bypass mode
  /// (debugging; results are bit-identical, just slower).
  bool cache_enabled = true;
  /// Storage policy for cached predicate segments in every table's
  /// engine (see SegmentCompression): kAuto trades AND-path decompression
  /// for resident bytes on sparse predicates, which stretches
  /// memory_budget_bytes before the LRU starts evicting. Bit-identical
  /// results under every policy.
  SegmentCompression segment_compression = SegmentCompression::kAuto;
  /// Directory for durable snapshots (columnar table + warm caches).
  /// Empty = persistence off (the pre-storage behavior). When set,
  /// RegisterTable/LoadCsv attempt a warm restore from the table's
  /// snapshot (accepted only when the snapshot key — table content
  /// hash, data version, engine configuration — matches exactly; stale
  /// or damaged snapshots are counted and ignored, never trusted), and
  /// RestoreTable/RestoreAll can cold-start tables from disk alone.
  std::string data_dir;
  /// When data_dir is set: automatically write a fresh snapshot after
  /// every append batch that lands. The previous snapshot stays durable
  /// until the new one is fully on disk (write-to-temp + fsync + atomic
  /// rename), so a crash mid-write never loses the old state.
  bool snapshot_on_append = true;
};

/// Cumulative service counters plus a point-in-time cache snapshot.
struct ServiceStats {
  uint64_t queries_executed = 0;     ///< Explain/ExplainAsync completions
  uint64_t tables_registered = 0;    ///< registrations incl. replacements
  uint64_t appends_executed = 0;     ///< Append/AppendCsv batches landed
  uint64_t rows_appended = 0;        ///< total rows across those batches
  uint64_t budget_enforcements = 0;  ///< enforcement passes that evicted
  size_t cache_bytes = 0;            ///< current accounted evictable bytes
  uint64_t snapshots_written = 0;    ///< durable snapshots written
  uint64_t snapshots_restored = 0;   ///< warm restores accepted
  uint64_t snapshots_rejected = 0;   ///< stale/corrupt snapshots ignored
  /// Wall-clock time (unix milliseconds) of the last snapshot written;
  /// 0 = none this process. The REST stats endpoint derives snapshot
  /// age from this.
  uint64_t last_snapshot_unix_ms = 0;
};

/// Point-in-time description of one registered table: identity, shape,
/// data version, and the cache counters of its long-lived engine. This
/// is the service-level view the REST layer serves — server code reads
/// these instead of reaching for EvalEngine itself (the server/ module
/// depends only on service/ and util/, see docs/ARCHITECTURE.md).
struct TableDescription {
  std::string name;       ///< registry key the table was registered under
  size_t rows = 0;        ///< row count at snapshot time
  size_t columns = 0;     ///< column count at snapshot time
  uint64_t version = 0;   ///< data version (bumped by every append)
  EvalEngineStats engine; ///< cache counters of the table's engine
};

/// A shared, thread-safe registry of tables with warm evaluation caches.
///
/// Thread-safe: registration, Explain/ExplainAsync, and budget
/// enforcement may be called concurrently from any thread.
class ExplanationService {
 public:
  /// Builds an empty registry; worker pool and budget come from
  /// `options`.
  explicit ExplanationService(ServiceOptions options = {});

  ExplanationService(const ExplanationService&) = delete;
  ExplanationService& operator=(const ExplanationService&) = delete;

  // ---- table registry ------------------------------------------------------

  /// Registers (or replaces) a table under `name`; returns the stored
  /// handle. Replacing drops the previous entry's caches.
  std::shared_ptr<const Table> RegisterTable(
      const std::string& name, std::shared_ptr<const Table> table);

  /// Convenience: takes ownership of a table by value.
  std::shared_ptr<const Table> RegisterTable(const std::string& name,
                                             Table table);

  /// Reads a CSV file and registers it under `name`.
  std::shared_ptr<const Table> LoadCsv(const std::string& name,
                                       const std::string& path,
                                       const CsvOptions& csv_options = {});

  /// As LoadCsv, but a no-op returning the existing table when `name` is
  /// already registered — including when a concurrent call registered it
  /// while this one was parsing (first registration wins; the parse is
  /// discarded). Batch requests use this so N requests naming the same
  /// CSV never clobber each other's warm caches.
  std::shared_ptr<const Table> EnsureCsv(const std::string& name,
                                         const std::string& path,
                                         const CsvOptions& csv_options = {});

  /// Whether `name` is currently registered.
  bool HasTable(const std::string& name) const;
  /// Removes the table and drops its caches; no-op when absent.
  void DropTable(const std::string& name);
  /// Names of every registered table (unordered snapshot).
  std::vector<std::string> TableNames() const;

  /// Descriptions of every registered table, captured from one registry
  /// snapshot — callers never race a concurrent DropTable the way a
  /// TableNames + per-name lookup loop would. Engine counters are read
  /// outside the registry lock.
  std::vector<TableDescription> DescribeTables() const
      CAUSUMX_EXCLUDES(mu_);

  /// Registered table by name; throws std::out_of_range on an unknown one.
  std::shared_ptr<const Table> GetTable(const std::string& name) const;

  /// The table's long-lived shared evaluation engine.
  std::shared_ptr<EvalEngine> Engine(const std::string& name) const;

  /// The table's estimator context for this (DAG, options) pair, created
  /// on first use and shared by every later query with the same pair.
  std::shared_ptr<EstimatorContext> Context(const std::string& name,
                                            const CausalDag& dag,
                                            const EstimatorOptions& options);

  // ---- streaming ingestion -------------------------------------------------

  /// Appends `rows` to a registered table under copy-on-write snapshot
  /// semantics: the current snapshot is cloned, the delta appended to the
  /// clone (bumping the table version), and a new registry entry
  /// installed whose EvalEngine extends every cached predicate bitset by
  /// evaluating only the delta rows and whose EstimatorContexts carry
  /// their CATE memos across (entries whose subpopulation gained delta
  /// rows re-intern and recompute; the rest stay warm hits). In-flight
  /// queries keep the snapshot they resolved — they see a consistent
  /// version while the append lands; queries starting afterwards see the
  /// new one. Appends serialize against each other; results are
  /// bit-identical to registering the fully rebuilt table from scratch.
  /// Returns the new snapshot. Throws std::out_of_range on an unknown
  /// table and std::runtime_error if the entry was concurrently replaced
  /// by RegisterTable/DropTable while the append was in progress.
  std::shared_ptr<const Table> Append(
      const std::string& name, const std::vector<std::vector<Value>>& rows)
      CAUSUMX_EXCLUDES(append_mu_, mu_);

  /// As Append, but lands only if the registered table is still the
  /// exact snapshot `expected_base` (else throws std::runtime_error).
  /// Callers that validated/coerced `rows` against a schema read earlier
  /// pass that snapshot here, so a concurrent RegisterTable swapping in
  /// a different schema cannot receive stale-typed rows. `nullptr`
  /// appends to whatever snapshot is current.
  std::shared_ptr<const Table> Append(
      const std::string& name, const std::vector<std::vector<Value>>& rows,
      const Table* expected_base) CAUSUMX_EXCLUDES(append_mu_, mu_);

  /// As Append, with the delta read from a CSV file whose header and
  /// cell types are checked against the registered table's schema. The
  /// snapshot is taken and the file parsed *inside* the append lock, so
  /// concurrent AppendCsv calls serialize like any other appends instead
  /// of one failing the pinned-snapshot check. `rows_appended` (optional)
  /// receives the delta row count.
  std::shared_ptr<const Table> AppendCsv(const std::string& name,
                                         const std::string& path,
                                         const CsvOptions& csv_options = {},
                                         size_t* rows_appended = nullptr)
      CAUSUMX_EXCLUDES(append_mu_, mu_);

  /// Monotone data version of the table's current snapshot.
  uint64_t TableVersion(const std::string& name) const;

  /// Callback invoked synchronously after an append batch lands: the
  /// table name, the delta rows exactly as appended, and the new
  /// snapshot. Observers run under the append lock in registration
  /// order, after the new entry is installed — so every observer sees
  /// the append batches of a table in exactly the order they landed and
  /// no two deliveries ever overlap (the stream layer's windowed
  /// monitors depend on both properties). An observer must not call
  /// Append/AppendCsv (self-deadlock on the append lock) and must treat
  /// the rows as read-only. Exceptions thrown by an observer are
  /// swallowed: a landed append is never unwound by observation.
  using AppendObserver = std::function<void(
      const std::string& name, const std::vector<std::vector<Value>>& rows,
      const std::shared_ptr<const Table>& snapshot)>;

  /// Registers `observer` for every future append. Observers cannot be
  /// removed, so whatever the callback captures must outlive the
  /// service's last append (stream/monitor.h's MonitorRegistry — the
  /// canonical user — documents the same requirement to its owner).
  void AddAppendObserver(AppendObserver observer)
      CAUSUMX_EXCLUDES(append_mu_);

  // ---- durable snapshots ---------------------------------------------------

  /// The snapshot file path for `name` under data_dir:
  /// `<data_dir>/<EncodeFileStem(name)>.snap`. Throws std::logic_error
  /// when no data_dir is configured.
  std::string SnapshotPath(const std::string& name) const;

  /// Writes a durable warm-state snapshot of the table: the columnar
  /// table itself, the engine's interned predicate segments, and every
  /// estimator context's CATE memo, all in one crash-safe file (the
  /// previous snapshot is superseded only after the new one is fully on
  /// disk). Returns the bytes written. Throws std::out_of_range on an
  /// unknown table, std::logic_error without a data_dir, and
  /// StorageError(kIo) on write failure.
  size_t SaveSnapshot(const std::string& name);

  /// SaveSnapshot for every registered table; returns how many were
  /// written. A failing write aborts with its StorageError (snapshots
  /// already written stay durable).
  size_t SaveAllSnapshots();

  /// Cold-starts `name` from its durable snapshot alone — no CSV: the
  /// embedded columnar table is decoded and self-verified against the
  /// snapshot's content-hash key, then the warm caches import on top.
  /// Returns false (counting a rejection where a file existed) when the
  /// snapshot is missing, damaged, or built under a different engine
  /// configuration — the caller falls back to a cold load; a snapshot
  /// is never partially trusted. Throws std::logic_error without a
  /// data_dir.
  bool RestoreTable(const std::string& name);

  /// RestoreTable for every `*.snap` under data_dir; returns how many
  /// tables restored. Unreadable entries are skipped (counted as
  /// rejected), never fatal.
  size_t RestoreAll();

  // ---- query execution -----------------------------------------------------

  /// Runs CauSumX over a registered table through the table's shared
  /// caches, then enforces the memory budget. Equivalent to RunCauSumX
  /// (bit-identical results), but repeat queries are served warm.
  CauSumXResult Explain(const std::string& table_name,
                        const GroupByAvgQuery& query, const CausalDag& dag,
                        const CauSumXConfig& config = {});

  /// As Explain, executed on the service pool.
  std::future<CauSumXResult> ExplainAsync(const std::string& table_name,
                                          GroupByAvgQuery query,
                                          CausalDag dag,
                                          CauSumXConfig config = {});

  /// An exploration session borrowing this service's warm engine and
  /// estimator context for the table (instead of constructing its own).
  ExplorationSession OpenSession(const std::string& table_name,
                                 GroupByAvgQuery query, CausalDag dag,
                                 CauSumXConfig config = {});

  // ---- memory budget -------------------------------------------------------

  /// Current accounted evictable cache bytes across all tables.
  size_t CacheBytes() const;

  /// Evicts LRU cache entries (largest consumer first) until the
  /// accounted bytes fit the budget; no-op when unlimited or already
  /// under. Returns the bytes freed. Called automatically after every
  /// Explain.
  size_t EnforceBudget();

  /// Cumulative counters plus a point-in-time cache-bytes snapshot.
  ServiceStats Stats() const;
  /// The options the service was constructed with.
  const ServiceOptions& options() const { return options_; }

  /// The service worker pool (ExplainAsync tasks; batch execution).
  ThreadPool& pool() { return *pool_; }

 private:
  struct TableEntry {
    std::shared_ptr<const Table> table;
    std::shared_ptr<EvalEngine> engine;
    /// Keyed by a canonical (DAG structure, estimator options) fingerprint.
    std::map<std::string, std::shared_ptr<EstimatorContext>> contexts;
  };

  /// A mutually consistent (table, engine, context) triple for one query,
  /// captured under one registry lock so a concurrent re-registration of
  /// the name cannot hand back a context bound to a different generation
  /// of the table than the one being mined.
  struct Resolved {
    std::shared_ptr<const Table> table;
    std::shared_ptr<EvalEngine> engine;
    std::shared_ptr<EstimatorContext> context;
  };
  Resolved Resolve(const std::string& name, const CausalDag& dag,
                   const EstimatorOptions& options) CAUSUMX_EXCLUDES(mu_);

  /// Resolves the entry or throws std::out_of_range. Caller holds no lock.
  TableEntry Snapshot(const std::string& name) const CAUSUMX_EXCLUDES(mu_);

  /// Engine configuration for a newly registered table (cache mode,
  /// shard count, the shared pool).
  EvalEngineOptions EngineOptions() const;

  /// Staleness fingerprint of a warm snapshot for `table` under this
  /// service's engine configuration (content hash, data version, shard /
  /// cache / compression knobs). A restore is accepted only on an exact
  /// match.
  std::string WarmSnapshotKey(const Table& table) const;

  /// Attempts to warm `entry`'s freshly built engine (and contexts) from
  /// the durable snapshot for `name`. On any mismatch or damage the
  /// entry is rebuilt cold (a partially imported engine is never kept)
  /// and false is returned. Requires a configured data_dir.
  bool TryRestoreWarmState(const std::string& name, TableEntry* entry);

  /// Imports the engine + context sections of a validated snapshot into
  /// `entry` (whose engine must be freshly built over the snapshot's
  /// table). Throws StorageError on damage; the entry is unusable then.
  void ImportWarmSections(const class SnapshotReader& snap,
                          TableEntry* entry);

  /// Append body; caller holds append_mu_ (but not mu_ — the body takes
  /// mu_ briefly to snapshot and to install, so holding it here would
  /// self-deadlock). See Append for the expected_base contract.
  std::shared_ptr<const Table> AppendLocked(
      const std::string& name, const std::vector<std::vector<Value>>& rows,
      const Table* expected_base)
      CAUSUMX_REQUIRES(append_mu_) CAUSUMX_EXCLUDES(mu_);

  ServiceOptions options_;
  mutable util::Mutex mu_;
  /// Serializes Append/AppendCsv calls (an append clones + extends
  /// outside mu_, so two concurrent appends to one table would otherwise
  /// both extend the same base and one delta would be lost). Queries
  /// never take this lock. Lock order: append_mu_ before mu_, never the
  /// reverse.
  util::Mutex append_mu_;
  /// Serializes durable snapshot writes (WriteFileDurable uses one
  /// `<path>.tmp` per target, so two concurrent saves of one table
  /// would interleave on it). Taken around the file write only, after
  /// all export work; never held together with mu_ or append_mu_ by
  /// this class's code taking another lock inside. Lock order:
  /// append_mu_ / mu_ released before snapshot_mu_ is needed — saves
  /// take it standalone.
  util::Mutex snapshot_mu_;
  std::map<std::string, TableEntry> tables_ CAUSUMX_GUARDED_BY(mu_);
  /// Append observers in registration order; delivered by AppendLocked
  /// (under append_mu_, hence the guard — registration synchronizes
  /// with delivery on the same lock).
  std::vector<AppendObserver> append_observers_
      CAUSUMX_GUARDED_BY(append_mu_);
  /// Shared with every table engine (shard-parallel builds run on it),
  /// so it outlives any engine handed out past the service's lifetime.
  std::shared_ptr<ThreadPool> pool_;
  std::atomic<uint64_t> n_queries_{0};
  std::atomic<uint64_t> n_tables_{0};
  std::atomic<uint64_t> n_appends_{0};
  std::atomic<uint64_t> n_rows_appended_{0};
  std::atomic<uint64_t> n_enforcements_{0};
  std::atomic<uint64_t> n_snapshots_written_{0};
  std::atomic<uint64_t> n_snapshots_restored_{0};
  std::atomic<uint64_t> n_snapshots_rejected_{0};
  std::atomic<uint64_t> last_snapshot_unix_ms_{0};
};

}  // namespace causumx

#endif  // CAUSUMX_SERVICE_EXPLANATION_SERVICE_H_
