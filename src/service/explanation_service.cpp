#include "service/explanation_service.h"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <utility>

#include "causal/dag_io.h"
#include "dataset/table_io.h"
#include "storage/bytes.h"
#include "storage/file_io.h"
#include "storage/snapshot.h"
#include "storage/storage_error.h"
#include "util/string_utils.h"

namespace causumx {

namespace {

// Canonical fingerprint of a context key: the DAG structure (sorted
// nodes and edges) plus every estimator knob. Structurally equal pairs
// share one EstimatorContext — and hence one CATE memo.
std::string ContextKey(const CausalDag& dag, const EstimatorOptions& opt) {
  std::vector<std::string> nodes = dag.nodes();
  std::sort(nodes.begin(), nodes.end());
  std::string key;
  for (const auto& n : nodes) {
    key += n;
    key.push_back('>');
    std::vector<std::string> children = dag.Children(n);
    std::sort(children.begin(), children.end());
    for (const auto& c : children) {
      key += c;
      key.push_back(',');
    }
    key.push_back(';');
  }
  key += StrFormat("|g%zu|s%zu|e%llu|h%zu|m%d|c%.17g", opt.min_group_size,
                   opt.sample_cap, (unsigned long long)opt.sample_seed,
                   opt.max_onehot_levels, static_cast<int>(opt.method),
                   opt.propensity_clip);
  return key;
}

// Warm-state snapshot container identity (storage/snapshot.h).
constexpr char kWarmSnapshotKind[] = "causumx-snapshot";
constexpr uint32_t kWarmSnapshotVersion = 1;

uint64_t NowUnixMs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

// The estimator knobs travel inside each context section so a restored
// context is constructed with exactly the options it was built under
// (ContextKey re-derivation then cross-checks them).
void PutEstimatorOptions(ByteWriter* w, const EstimatorOptions& opt) {
  w->PutVarint(opt.min_group_size);
  w->PutVarint(opt.sample_cap);
  w->PutU64(opt.sample_seed);
  w->PutVarint(opt.max_onehot_levels);
  w->PutU8(static_cast<uint8_t>(opt.method));
  w->PutDouble(opt.propensity_clip);
}

EstimatorOptions GetEstimatorOptions(ByteReader* r) {
  EstimatorOptions opt;
  opt.min_group_size = static_cast<size_t>(r->GetVarint());
  opt.sample_cap = static_cast<size_t>(r->GetVarint());
  opt.sample_seed = r->GetU64();
  opt.max_onehot_levels = static_cast<size_t>(r->GetVarint());
  const uint8_t method = r->GetU8();
  if (method > static_cast<uint8_t>(EstimationMethod::kIpw)) {
    throw StorageError(StorageErrorKind::kCorrupt,
                       "snapshot: unknown estimation method tag");
  }
  opt.method = static_cast<EstimationMethod>(method);
  opt.propensity_clip = r->GetDouble();
  return opt;
}

}  // namespace

ExplanationService::ExplanationService(ServiceOptions options)
    : options_(options),
      pool_(std::make_shared<ThreadPool>(
          options.num_threads == 0 ? ThreadPool::DefaultThreads()
                                   : options.num_threads)) {}

EvalEngineOptions ExplanationService::EngineOptions() const {
  EvalEngineOptions options;
  options.cache_enabled = options_.cache_enabled;
  options.num_shards = options_.num_shards;
  options.pool = pool_;
  options.compression = options_.segment_compression;
  return options;
}

std::shared_ptr<const Table> ExplanationService::RegisterTable(
    const std::string& name, std::shared_ptr<const Table> table) {
  TableEntry entry;
  entry.table = std::move(table);
  entry.engine = std::make_shared<EvalEngine>(entry.table, EngineOptions());
  // With persistence on, seed the fresh caches from the table's durable
  // snapshot — accepted only when the snapshot key proves it was taken
  // over this exact table content and engine configuration.
  if (!options_.data_dir.empty()) TryRestoreWarmState(name, &entry);
  std::shared_ptr<const Table> handle = entry.table;
  {
    util::MutexLock lock(mu_);
    tables_[name] = std::move(entry);
  }
  n_tables_.fetch_add(1, std::memory_order_relaxed);
  return handle;
}

std::shared_ptr<const Table> ExplanationService::RegisterTable(
    const std::string& name, Table table) {
  return RegisterTable(name,
                       std::make_shared<const Table>(std::move(table)));
}

std::shared_ptr<const Table> ExplanationService::LoadCsv(
    const std::string& name, const std::string& path,
    const CsvOptions& csv_options) {
  return RegisterTable(name, ReadCsvFile(path, csv_options));
}

std::shared_ptr<const Table> ExplanationService::EnsureCsv(
    const std::string& name, const std::string& path,
    const CsvOptions& csv_options) {
  {
    util::MutexLock lock(mu_);
    auto it = tables_.find(name);
    if (it != tables_.end()) return it->second.table;
  }
  // Parse outside the lock; concurrent callers may each parse, but only
  // the first registration sticks (never replace a live entry here).
  TableEntry entry;
  entry.table =
      std::make_shared<const Table>(ReadCsvFile(path, csv_options));
  entry.engine = std::make_shared<EvalEngine>(entry.table, EngineOptions());
  if (!options_.data_dir.empty()) TryRestoreWarmState(name, &entry);
  {
    util::MutexLock lock(mu_);
    auto it = tables_.find(name);
    if (it != tables_.end()) return it->second.table;
    tables_[name] = entry;
  }
  n_tables_.fetch_add(1, std::memory_order_relaxed);
  return entry.table;
}

bool ExplanationService::HasTable(const std::string& name) const {
  util::MutexLock lock(mu_);
  return tables_.count(name) > 0;
}

void ExplanationService::DropTable(const std::string& name) {
  util::MutexLock lock(mu_);
  tables_.erase(name);
}

std::vector<std::string> ExplanationService::TableNames() const {
  util::MutexLock lock(mu_);
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, entry] : tables_) names.push_back(name);
  return names;
}

std::vector<TableDescription> ExplanationService::DescribeTables() const {
  // One registry lock for the whole snapshot; the engine counter reads
  // (atomics + the engine's own interner lock) happen after mu_ is
  // released, keeping the critical section to shared_ptr copies.
  std::vector<std::pair<std::string, TableEntry>> entries;
  {
    util::MutexLock lock(mu_);
    entries.reserve(tables_.size());
    for (const auto& [name, entry] : tables_) entries.emplace_back(name, entry);
  }
  std::vector<TableDescription> out;
  out.reserve(entries.size());
  for (const auto& [name, entry] : entries) {
    TableDescription d;
    d.name = name;
    d.rows = entry.table->NumRows();
    d.columns = entry.table->NumColumns();
    d.version = entry.table->version();
    d.engine = entry.engine->Stats();
    out.push_back(std::move(d));
  }
  return out;
}

ExplanationService::TableEntry ExplanationService::Snapshot(
    const std::string& name) const {
  util::MutexLock lock(mu_);
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    throw std::out_of_range("explanation service: unknown table '" + name +
                            "'");
  }
  return it->second;
}

std::shared_ptr<const Table> ExplanationService::GetTable(
    const std::string& name) const {
  return Snapshot(name).table;
}

std::shared_ptr<EvalEngine> ExplanationService::Engine(
    const std::string& name) const {
  return Snapshot(name).engine;
}

ExplanationService::Resolved ExplanationService::Resolve(
    const std::string& name, const CausalDag& dag,
    const EstimatorOptions& options) {
  const std::string key = ContextKey(dag, options);  // built outside the lock
  util::MutexLock lock(mu_);
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    throw std::out_of_range("explanation service: unknown table '" + name +
                            "'");
  }
  auto& ctx = it->second.contexts[key];
  if (ctx == nullptr) {
    ctx = std::make_shared<EstimatorContext>(it->second.engine, dag, options);
  }
  return Resolved{it->second.table, it->second.engine, ctx};
}

std::shared_ptr<EstimatorContext> ExplanationService::Context(
    const std::string& name, const CausalDag& dag,
    const EstimatorOptions& options) {
  return Resolve(name, dag, options).context;
}

std::shared_ptr<const Table> ExplanationService::Append(
    const std::string& name, const std::vector<std::vector<Value>>& rows) {
  return Append(name, rows, nullptr);
}

std::shared_ptr<const Table> ExplanationService::Append(
    const std::string& name, const std::vector<std::vector<Value>>& rows,
    const Table* expected_base) {
  util::MutexLock append_lock(append_mu_);
  return AppendLocked(name, rows, expected_base);
}

std::shared_ptr<const Table> ExplanationService::AppendLocked(
    const std::string& name, const std::vector<std::vector<Value>>& rows,
    const Table* expected_base) {
  const TableEntry base = Snapshot(name);
  if (expected_base != nullptr && base.table.get() != expected_base) {
    throw std::runtime_error("explanation service: table '" + name +
                             "' changed during append");
  }

  // Copy-on-write: clone the snapshot and append to the clone, so every
  // in-flight query keeps reading a consistent base. All the expensive
  // work — the clone, the delta evaluation extending each cached bitset,
  // the memo migration — happens outside mu_, concurrently with queries.
  auto grown = std::make_shared<Table>(base.table->Clone());
  grown->AppendRows(rows);
  std::shared_ptr<const Table> new_table = std::move(grown);

  TableEntry entry;
  entry.table = new_table;
  entry.engine = std::make_shared<EvalEngine>(new_table, *base.engine);
  for (const auto& [key, ctx] : base.contexts) {
    entry.contexts[key] =
        std::make_shared<EstimatorContext>(entry.engine, *ctx);
  }

  {
    util::MutexLock lock(mu_);
    auto it = tables_.find(name);
    if (it == tables_.end() || it->second.table != base.table) {
      // RegisterTable/DropTable replaced the entry mid-append. Installing
      // would silently clobber the newer registration, so refuse.
      throw std::runtime_error("explanation service: table '" + name +
                               "' changed during append");
    }
    it->second = std::move(entry);
  }
  n_appends_.fetch_add(1, std::memory_order_relaxed);
  n_rows_appended_.fetch_add(rows.size(), std::memory_order_relaxed);
  // Deliver the landed batch to the append observers, still under
  // append_mu_: deliveries are totally ordered and never concurrent, so
  // a windowed monitor replays the exact append sequence. A throwing
  // observer must not unwind an append that already landed.
  for (const AppendObserver& observer : append_observers_) {
    try {
      observer(name, rows, new_table);
    } catch (...) {
    }
  }
  EnforceBudget();
  if (!options_.data_dir.empty() && options_.snapshot_on_append) {
    // The append has landed in memory; a snapshot write failure must not
    // unwind it. The previous snapshot stays durable and self-consistent
    // (its version key no longer matches, so a restart rejects it and
    // rebuilds cold — correct, just not warm).
    try {
      SaveSnapshot(name);
    } catch (const StorageError&) {
    }
  }
  return new_table;
}

std::shared_ptr<const Table> ExplanationService::AppendCsv(
    const std::string& name, const std::string& path,
    const CsvOptions& csv_options, size_t* rows_appended) {
  // Snapshot and parse inside the append lock: the delta is validated
  // against this snapshot's schema and pinned to it, and a concurrent
  // append (which cannot change the schema) serializes behind us instead
  // of tripping the pinned-snapshot check.
  util::MutexLock append_lock(append_mu_);
  const std::shared_ptr<const Table> schema = Snapshot(name).table;
  const auto rows = ReadCsvDeltaFile(*schema, path, csv_options);
  if (rows_appended != nullptr) *rows_appended = rows.size();
  return AppendLocked(name, rows, schema.get());
}

uint64_t ExplanationService::TableVersion(const std::string& name) const {
  return Snapshot(name).table->version();
}

void ExplanationService::AddAppendObserver(AppendObserver observer) {
  util::MutexLock lock(append_mu_);
  append_observers_.push_back(std::move(observer));
}

std::string ExplanationService::SnapshotPath(const std::string& name) const {
  if (options_.data_dir.empty()) {
    throw std::logic_error("explanation service: no data_dir configured");
  }
  return options_.data_dir + "/" + EncodeFileStem(name) + ".snap";
}

std::string ExplanationService::WarmSnapshotKey(const Table& table) const {
  return StrFormat("h%016llx|v%llu|s%zu|c%d|z%d",
                   (unsigned long long)TableContentHash(table),
                   (unsigned long long)table.version(), options_.num_shards,
                   options_.cache_enabled ? 1 : 0,
                   static_cast<int>(options_.segment_compression));
}

size_t ExplanationService::SaveSnapshot(const std::string& name) {
  const std::string path = SnapshotPath(name);
  const TableEntry entry = Snapshot(name);
  // All export work happens on the captured entry, outside every lock of
  // this class (the engine and contexts synchronize themselves).
  SnapshotWriter writer(kWarmSnapshotKind, kWarmSnapshotVersion,
                        WarmSnapshotKey(*entry.table));
  writer.AddSection("table", SerializeTable(*entry.table));
  writer.AddSection("engine", entry.engine->ExportCacheState());
  size_t ctx_index = 0;
  for (const auto& [key, ctx] : entry.contexts) {
    ByteWriter w;
    w.PutString(key);
    w.PutString(DagToText(ctx->dag()));
    PutEstimatorOptions(&w, ctx->options());
    w.PutString(ctx->ExportMemoState());
    writer.AddSection(StrFormat("ctx/%zu", ctx_index++), w.TakeBytes());
  }
  const std::string bytes = writer.Serialize();
  {
    util::MutexLock lock(snapshot_mu_);
    WriteFileDurable(path, bytes);
  }
  n_snapshots_written_.fetch_add(1, std::memory_order_relaxed);
  last_snapshot_unix_ms_.store(NowUnixMs(), std::memory_order_relaxed);
  return bytes.size();
}

size_t ExplanationService::SaveAllSnapshots() {
  size_t written = 0;
  for (const std::string& name : TableNames()) {
    try {
      SaveSnapshot(name);
      ++written;
    } catch (const std::out_of_range&) {
      // Dropped between the listing and the save; nothing to persist.
    }
  }
  return written;
}

bool ExplanationService::TryRestoreWarmState(const std::string& name,
                                             TableEntry* entry) {
  const std::string path = SnapshotPath(name);
  if (!FileExists(path)) return false;
  try {
    SnapshotReader snap = SnapshotReader::ReadFile(path, kWarmSnapshotKind,
                                                   kWarmSnapshotVersion);
    if (snap.key() != WarmSnapshotKey(*entry->table)) {
      // Valid snapshot of different data (content, version, or engine
      // configuration) — e.g. the CSV changed since it was written, or
      // appends happened after the source file was exported. Never
      // trusted; the caller keeps its cold caches.
      n_snapshots_rejected_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    ImportWarmSections(snap, entry);
    n_snapshots_restored_.fetch_add(1, std::memory_order_relaxed);
    return true;
  } catch (const std::runtime_error&) {
    // Damaged or stale snapshot, possibly detected mid-import. A
    // partially imported engine is unusable by contract, so rebuild the
    // entry cold — the restore is all-or-nothing.
    entry->engine = std::make_shared<EvalEngine>(entry->table, EngineOptions());
    entry->contexts.clear();
    n_snapshots_rejected_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
}

void ExplanationService::ImportWarmSections(const SnapshotReader& snap,
                                            TableEntry* entry) {
  entry->engine->ImportCacheState(snap.Section("engine"));
  for (const std::string& section : snap.SectionNames()) {
    if (section.rfind("ctx/", 0) != 0) continue;
    ByteReader r(snap.Section(section));
    const std::string key = r.GetString();
    const std::string dag_text = r.GetString();
    const EstimatorOptions opt = GetEstimatorOptions(&r);
    const std::string memo = r.GetString();
    if (!r.AtEnd()) {
      throw StorageError(StorageErrorKind::kCorrupt,
                         "snapshot: trailing bytes in context section");
    }
    const CausalDag dag = ParseDagText(dag_text);
    if (ContextKey(dag, opt) != key) {
      throw StorageError(StorageErrorKind::kCorrupt,
                         "snapshot: context fingerprint does not match its "
                         "DAG and options");
    }
    auto ctx = std::make_shared<EstimatorContext>(entry->engine, dag, opt);
    ctx->ImportMemoState(memo);
    if (!entry->contexts.emplace(key, std::move(ctx)).second) {
      throw StorageError(StorageErrorKind::kCorrupt,
                         "snapshot: duplicate context section");
    }
  }
}

bool ExplanationService::RestoreTable(const std::string& name) {
  const std::string path = SnapshotPath(name);
  if (!FileExists(path)) return false;
  try {
    SnapshotReader snap = SnapshotReader::ReadFile(path, kWarmSnapshotKind,
                                                   kWarmSnapshotVersion);
    TableEntry entry;
    entry.table =
        std::make_shared<const Table>(DeserializeTable(snap.Section("table")));
    // The embedded table self-verified against its own container key;
    // cross-check the warm key's hash component so an engine section
    // spliced onto a different table section cannot pass. The version
    // component is not compared — the decoded table restarts at version
    // 0 like any cold load. The engine-configuration suffix must match
    // this service's options (the engine import would reject it anyway;
    // checking here avoids decoding cache state we cannot use).
    const std::string hash_part = StrFormat(
        "h%016llx", (unsigned long long)TableContentHash(*entry.table));
    const std::string config_part =
        StrFormat("|s%zu|c%d|z%d", options_.num_shards,
                  options_.cache_enabled ? 1 : 0,
                  static_cast<int>(options_.segment_compression));
    if (snap.key().compare(0, hash_part.size(), hash_part) != 0) {
      throw StorageError(StorageErrorKind::kCorrupt,
                         "snapshot: key does not match embedded table");
    }
    if (snap.key().size() < config_part.size() ||
        snap.key().compare(snap.key().size() - config_part.size(),
                           config_part.size(), config_part) != 0) {
      throw StorageError(StorageErrorKind::kStale,
                         "snapshot: engine configuration changed");
    }
    entry.engine = std::make_shared<EvalEngine>(entry.table, EngineOptions());
    ImportWarmSections(snap, &entry);
    {
      util::MutexLock lock(mu_);
      tables_[name] = std::move(entry);
    }
    n_tables_.fetch_add(1, std::memory_order_relaxed);
    n_snapshots_restored_.fetch_add(1, std::memory_order_relaxed);
    return true;
  } catch (const std::runtime_error&) {
    n_snapshots_rejected_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
}

size_t ExplanationService::RestoreAll() {
  if (options_.data_dir.empty()) {
    throw std::logic_error("explanation service: no data_dir configured");
  }
  size_t restored = 0;
  for (const std::string& file : ListDirFiles(options_.data_dir)) {
    constexpr char kSuffix[] = ".snap";
    constexpr size_t kSuffixLen = sizeof(kSuffix) - 1;
    if (file.size() <= kSuffixLen ||
        file.compare(file.size() - kSuffixLen, kSuffixLen, kSuffix) != 0) {
      continue;  // stray .tmp from a killed writer, or foreign files
    }
    std::string name;
    try {
      name = DecodeFileStem(file.substr(0, file.size() - kSuffixLen));
    } catch (const StorageError&) {
      n_snapshots_rejected_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    if (RestoreTable(name)) ++restored;
  }
  return restored;
}

CauSumXResult ExplanationService::Explain(const std::string& table_name,
                                          const GroupByAvgQuery& query,
                                          const CausalDag& dag,
                                          const CauSumXConfig& config) {
  Resolved entry = Resolve(table_name, dag, config.estimator);
  // A bypass request cannot run through the shared cached engine; give it
  // a private bypass engine instead (same results, no cache reuse).
  std::shared_ptr<EvalEngine> engine = entry.engine;
  std::shared_ptr<EstimatorContext> ctx = entry.context;
  if (config.disable_eval_cache && engine->cache_enabled()) {
    engine = std::make_shared<EvalEngine>(entry.table, false);
    ctx = std::make_shared<EstimatorContext>(engine, dag, config.estimator);
  }

  CauSumXResult result;
  // With the default thread count the query mines on the service pool
  // (no per-query thread spawning; nested ParallelFor is deadlock-safe
  // because callers participate). An explicit num_threads still gets a
  // private pool of that size.
  ThreadPool* mining_pool = config.num_threads == 0 ? pool_.get() : nullptr;
  CandidateMiningResult mined = MineExplanationCandidates(
      *entry.table, query, dag, config, engine, ctx, mining_pool);
  result.view = std::move(mined.view);
  result.partition = std::move(mined.partition);
  result.num_grouping_candidates = mined.num_grouping_candidates;
  result.num_candidates_with_treatment = mined.candidates.size();
  result.treatment_patterns_evaluated = mined.treatment_patterns_evaluated;
  result.timings = mined.timings;
  result.cache_stats = mined.cache_stats;
  if (result.view.NumGroups() > 0) {
    result.summary =
        SelectExplanations(mined.candidates, result.view.NumGroups(), config,
                           &result.timings, pool_.get());
  }
  n_queries_.fetch_add(1, std::memory_order_relaxed);
  EnforceBudget();
  return result;
}

std::future<CauSumXResult> ExplanationService::ExplainAsync(
    const std::string& table_name, GroupByAvgQuery query, CausalDag dag,
    CauSumXConfig config) {
  auto task = std::make_shared<std::packaged_task<CauSumXResult()>>(
      [this, table_name, query = std::move(query), dag = std::move(dag),
       config = std::move(config)] {
        return Explain(table_name, query, dag, config);
      });
  std::future<CauSumXResult> future = task->get_future();
  pool_->Submit([task] { (*task)(); });
  return future;
}

ExplorationSession ExplanationService::OpenSession(
    const std::string& table_name, GroupByAvgQuery query, CausalDag dag,
    CauSumXConfig config) {
  Resolved entry = Resolve(table_name, dag, config.estimator);
  return ExplorationSession(std::move(entry.table), std::move(query),
                            std::move(dag), std::move(config),
                            std::move(entry.engine),
                            std::move(entry.context));
}

size_t ExplanationService::CacheBytes() const {
  std::vector<TableEntry> entries;
  {
    util::MutexLock lock(mu_);
    entries.reserve(tables_.size());
    for (const auto& [name, entry] : tables_) entries.push_back(entry);
  }
  size_t total = 0;
  for (const auto& entry : entries) {
    total += entry.engine->CacheBytes();
    for (const auto& [key, ctx] : entry.contexts) {
      total += ctx->CacheBytes();
    }
  }
  return total;
}

size_t ExplanationService::EnforceBudget() {
  if (options_.memory_budget_bytes == 0) return 0;
  // Work on a snapshot: eviction never needs the registry lock, so it can
  // run while other threads query. Races just mean a cache refills after
  // eviction; the next enforcement pass catches it.
  std::vector<std::shared_ptr<EvalEngine>> engines;
  std::vector<std::shared_ptr<EstimatorContext>> contexts;
  {
    util::MutexLock lock(mu_);
    for (const auto& [name, entry] : tables_) {
      engines.push_back(entry.engine);
      for (const auto& [key, ctx] : entry.contexts) {
        contexts.push_back(ctx);
      }
    }
  }
  auto total = [&] {
    size_t t = 0;
    for (const auto& e : engines) t += e->CacheBytes();
    for (const auto& c : contexts) t += c->CacheBytes();
    return t;
  };
  size_t freed_total = 0;
  size_t current = total();
  while (current > options_.memory_budget_bytes) {
    // Evict from the single largest consumer; repeat until under budget
    // or nothing is left to evict.
    size_t largest_bytes = 0;
    std::shared_ptr<EvalEngine> largest_engine;
    std::shared_ptr<EstimatorContext> largest_ctx;
    for (const auto& e : engines) {
      const size_t b = e->CacheBytes();
      if (b > largest_bytes) {
        largest_bytes = b;
        largest_engine = e;
        largest_ctx = nullptr;
      }
    }
    for (const auto& c : contexts) {
      const size_t b = c->CacheBytes();
      if (b > largest_bytes) {
        largest_bytes = b;
        largest_ctx = c;
        largest_engine = nullptr;
      }
    }
    if (largest_bytes == 0) break;
    const size_t need = current - options_.memory_budget_bytes;
    const size_t freed =
        largest_engine != nullptr
            ? largest_engine->EvictLru(std::min(need, largest_bytes))
            : largest_ctx->EvictLru(std::min(need, largest_bytes));
    if (freed == 0) break;
    freed_total += freed;
    current = total();
  }
  if (freed_total > 0) {
    n_enforcements_.fetch_add(1, std::memory_order_relaxed);
  }
  return freed_total;
}

ServiceStats ExplanationService::Stats() const {
  ServiceStats s;
  s.queries_executed = n_queries_.load(std::memory_order_relaxed);
  s.tables_registered = n_tables_.load(std::memory_order_relaxed);
  s.appends_executed = n_appends_.load(std::memory_order_relaxed);
  s.rows_appended = n_rows_appended_.load(std::memory_order_relaxed);
  s.budget_enforcements = n_enforcements_.load(std::memory_order_relaxed);
  s.cache_bytes = CacheBytes();
  s.snapshots_written = n_snapshots_written_.load(std::memory_order_relaxed);
  s.snapshots_restored = n_snapshots_restored_.load(std::memory_order_relaxed);
  s.snapshots_rejected = n_snapshots_rejected_.load(std::memory_order_relaxed);
  s.last_snapshot_unix_ms =
      last_snapshot_unix_ms_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace causumx
