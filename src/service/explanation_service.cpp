#include "service/explanation_service.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "util/string_utils.h"

namespace causumx {

namespace {

// Canonical fingerprint of a context key: the DAG structure (sorted
// nodes and edges) plus every estimator knob. Structurally equal pairs
// share one EstimatorContext — and hence one CATE memo.
std::string ContextKey(const CausalDag& dag, const EstimatorOptions& opt) {
  std::vector<std::string> nodes = dag.nodes();
  std::sort(nodes.begin(), nodes.end());
  std::string key;
  for (const auto& n : nodes) {
    key += n;
    key.push_back('>');
    std::vector<std::string> children = dag.Children(n);
    std::sort(children.begin(), children.end());
    for (const auto& c : children) {
      key += c;
      key.push_back(',');
    }
    key.push_back(';');
  }
  key += StrFormat("|g%zu|s%zu|e%llu|h%zu|m%d|c%.17g", opt.min_group_size,
                   opt.sample_cap, (unsigned long long)opt.sample_seed,
                   opt.max_onehot_levels, static_cast<int>(opt.method),
                   opt.propensity_clip);
  return key;
}

}  // namespace

ExplanationService::ExplanationService(ServiceOptions options)
    : options_(options),
      pool_(std::make_shared<ThreadPool>(
          options.num_threads == 0 ? ThreadPool::DefaultThreads()
                                   : options.num_threads)) {}

EvalEngineOptions ExplanationService::EngineOptions() const {
  EvalEngineOptions options;
  options.cache_enabled = options_.cache_enabled;
  options.num_shards = options_.num_shards;
  options.pool = pool_;
  options.compression = options_.segment_compression;
  return options;
}

std::shared_ptr<const Table> ExplanationService::RegisterTable(
    const std::string& name, std::shared_ptr<const Table> table) {
  TableEntry entry;
  entry.table = std::move(table);
  entry.engine = std::make_shared<EvalEngine>(entry.table, EngineOptions());
  std::shared_ptr<const Table> handle = entry.table;
  {
    util::MutexLock lock(mu_);
    tables_[name] = std::move(entry);
  }
  n_tables_.fetch_add(1, std::memory_order_relaxed);
  return handle;
}

std::shared_ptr<const Table> ExplanationService::RegisterTable(
    const std::string& name, Table table) {
  return RegisterTable(name,
                       std::make_shared<const Table>(std::move(table)));
}

std::shared_ptr<const Table> ExplanationService::LoadCsv(
    const std::string& name, const std::string& path,
    const CsvOptions& csv_options) {
  return RegisterTable(name, ReadCsvFile(path, csv_options));
}

std::shared_ptr<const Table> ExplanationService::EnsureCsv(
    const std::string& name, const std::string& path,
    const CsvOptions& csv_options) {
  {
    util::MutexLock lock(mu_);
    auto it = tables_.find(name);
    if (it != tables_.end()) return it->second.table;
  }
  // Parse outside the lock; concurrent callers may each parse, but only
  // the first registration sticks (never replace a live entry here).
  TableEntry entry;
  entry.table =
      std::make_shared<const Table>(ReadCsvFile(path, csv_options));
  entry.engine = std::make_shared<EvalEngine>(entry.table, EngineOptions());
  {
    util::MutexLock lock(mu_);
    auto it = tables_.find(name);
    if (it != tables_.end()) return it->second.table;
    tables_[name] = entry;
  }
  n_tables_.fetch_add(1, std::memory_order_relaxed);
  return entry.table;
}

bool ExplanationService::HasTable(const std::string& name) const {
  util::MutexLock lock(mu_);
  return tables_.count(name) > 0;
}

void ExplanationService::DropTable(const std::string& name) {
  util::MutexLock lock(mu_);
  tables_.erase(name);
}

std::vector<std::string> ExplanationService::TableNames() const {
  util::MutexLock lock(mu_);
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, entry] : tables_) names.push_back(name);
  return names;
}

std::vector<TableDescription> ExplanationService::DescribeTables() const {
  // One registry lock for the whole snapshot; the engine counter reads
  // (atomics + the engine's own interner lock) happen after mu_ is
  // released, keeping the critical section to shared_ptr copies.
  std::vector<std::pair<std::string, TableEntry>> entries;
  {
    util::MutexLock lock(mu_);
    entries.reserve(tables_.size());
    for (const auto& [name, entry] : tables_) entries.emplace_back(name, entry);
  }
  std::vector<TableDescription> out;
  out.reserve(entries.size());
  for (const auto& [name, entry] : entries) {
    TableDescription d;
    d.name = name;
    d.rows = entry.table->NumRows();
    d.columns = entry.table->NumColumns();
    d.version = entry.table->version();
    d.engine = entry.engine->Stats();
    out.push_back(std::move(d));
  }
  return out;
}

ExplanationService::TableEntry ExplanationService::Snapshot(
    const std::string& name) const {
  util::MutexLock lock(mu_);
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    throw std::out_of_range("explanation service: unknown table '" + name +
                            "'");
  }
  return it->second;
}

std::shared_ptr<const Table> ExplanationService::GetTable(
    const std::string& name) const {
  return Snapshot(name).table;
}

std::shared_ptr<EvalEngine> ExplanationService::Engine(
    const std::string& name) const {
  return Snapshot(name).engine;
}

ExplanationService::Resolved ExplanationService::Resolve(
    const std::string& name, const CausalDag& dag,
    const EstimatorOptions& options) {
  const std::string key = ContextKey(dag, options);  // built outside the lock
  util::MutexLock lock(mu_);
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    throw std::out_of_range("explanation service: unknown table '" + name +
                            "'");
  }
  auto& ctx = it->second.contexts[key];
  if (ctx == nullptr) {
    ctx = std::make_shared<EstimatorContext>(it->second.engine, dag, options);
  }
  return Resolved{it->second.table, it->second.engine, ctx};
}

std::shared_ptr<EstimatorContext> ExplanationService::Context(
    const std::string& name, const CausalDag& dag,
    const EstimatorOptions& options) {
  return Resolve(name, dag, options).context;
}

std::shared_ptr<const Table> ExplanationService::Append(
    const std::string& name, const std::vector<std::vector<Value>>& rows) {
  return Append(name, rows, nullptr);
}

std::shared_ptr<const Table> ExplanationService::Append(
    const std::string& name, const std::vector<std::vector<Value>>& rows,
    const Table* expected_base) {
  util::MutexLock append_lock(append_mu_);
  return AppendLocked(name, rows, expected_base);
}

std::shared_ptr<const Table> ExplanationService::AppendLocked(
    const std::string& name, const std::vector<std::vector<Value>>& rows,
    const Table* expected_base) {
  const TableEntry base = Snapshot(name);
  if (expected_base != nullptr && base.table.get() != expected_base) {
    throw std::runtime_error("explanation service: table '" + name +
                             "' changed during append");
  }

  // Copy-on-write: clone the snapshot and append to the clone, so every
  // in-flight query keeps reading a consistent base. All the expensive
  // work — the clone, the delta evaluation extending each cached bitset,
  // the memo migration — happens outside mu_, concurrently with queries.
  auto grown = std::make_shared<Table>(base.table->Clone());
  grown->AppendRows(rows);
  std::shared_ptr<const Table> new_table = std::move(grown);

  TableEntry entry;
  entry.table = new_table;
  entry.engine = std::make_shared<EvalEngine>(new_table, *base.engine);
  for (const auto& [key, ctx] : base.contexts) {
    entry.contexts[key] =
        std::make_shared<EstimatorContext>(entry.engine, *ctx);
  }

  {
    util::MutexLock lock(mu_);
    auto it = tables_.find(name);
    if (it == tables_.end() || it->second.table != base.table) {
      // RegisterTable/DropTable replaced the entry mid-append. Installing
      // would silently clobber the newer registration, so refuse.
      throw std::runtime_error("explanation service: table '" + name +
                               "' changed during append");
    }
    it->second = std::move(entry);
  }
  n_appends_.fetch_add(1, std::memory_order_relaxed);
  n_rows_appended_.fetch_add(rows.size(), std::memory_order_relaxed);
  EnforceBudget();
  return new_table;
}

std::shared_ptr<const Table> ExplanationService::AppendCsv(
    const std::string& name, const std::string& path,
    const CsvOptions& csv_options, size_t* rows_appended) {
  // Snapshot and parse inside the append lock: the delta is validated
  // against this snapshot's schema and pinned to it, and a concurrent
  // append (which cannot change the schema) serializes behind us instead
  // of tripping the pinned-snapshot check.
  util::MutexLock append_lock(append_mu_);
  const std::shared_ptr<const Table> schema = Snapshot(name).table;
  const auto rows = ReadCsvDeltaFile(*schema, path, csv_options);
  if (rows_appended != nullptr) *rows_appended = rows.size();
  return AppendLocked(name, rows, schema.get());
}

uint64_t ExplanationService::TableVersion(const std::string& name) const {
  return Snapshot(name).table->version();
}

CauSumXResult ExplanationService::Explain(const std::string& table_name,
                                          const GroupByAvgQuery& query,
                                          const CausalDag& dag,
                                          const CauSumXConfig& config) {
  Resolved entry = Resolve(table_name, dag, config.estimator);
  // A bypass request cannot run through the shared cached engine; give it
  // a private bypass engine instead (same results, no cache reuse).
  std::shared_ptr<EvalEngine> engine = entry.engine;
  std::shared_ptr<EstimatorContext> ctx = entry.context;
  if (config.disable_eval_cache && engine->cache_enabled()) {
    engine = std::make_shared<EvalEngine>(entry.table, false);
    ctx = std::make_shared<EstimatorContext>(engine, dag, config.estimator);
  }

  CauSumXResult result;
  // With the default thread count the query mines on the service pool
  // (no per-query thread spawning; nested ParallelFor is deadlock-safe
  // because callers participate). An explicit num_threads still gets a
  // private pool of that size.
  ThreadPool* mining_pool = config.num_threads == 0 ? pool_.get() : nullptr;
  CandidateMiningResult mined = MineExplanationCandidates(
      *entry.table, query, dag, config, engine, ctx, mining_pool);
  result.view = std::move(mined.view);
  result.partition = std::move(mined.partition);
  result.num_grouping_candidates = mined.num_grouping_candidates;
  result.num_candidates_with_treatment = mined.candidates.size();
  result.treatment_patterns_evaluated = mined.treatment_patterns_evaluated;
  result.timings = mined.timings;
  result.cache_stats = mined.cache_stats;
  if (result.view.NumGroups() > 0) {
    result.summary =
        SelectExplanations(mined.candidates, result.view.NumGroups(), config,
                           &result.timings, pool_.get());
  }
  n_queries_.fetch_add(1, std::memory_order_relaxed);
  EnforceBudget();
  return result;
}

std::future<CauSumXResult> ExplanationService::ExplainAsync(
    const std::string& table_name, GroupByAvgQuery query, CausalDag dag,
    CauSumXConfig config) {
  auto task = std::make_shared<std::packaged_task<CauSumXResult()>>(
      [this, table_name, query = std::move(query), dag = std::move(dag),
       config = std::move(config)] {
        return Explain(table_name, query, dag, config);
      });
  std::future<CauSumXResult> future = task->get_future();
  pool_->Submit([task] { (*task)(); });
  return future;
}

ExplorationSession ExplanationService::OpenSession(
    const std::string& table_name, GroupByAvgQuery query, CausalDag dag,
    CauSumXConfig config) {
  Resolved entry = Resolve(table_name, dag, config.estimator);
  return ExplorationSession(std::move(entry.table), std::move(query),
                            std::move(dag), std::move(config),
                            std::move(entry.engine),
                            std::move(entry.context));
}

size_t ExplanationService::CacheBytes() const {
  std::vector<TableEntry> entries;
  {
    util::MutexLock lock(mu_);
    entries.reserve(tables_.size());
    for (const auto& [name, entry] : tables_) entries.push_back(entry);
  }
  size_t total = 0;
  for (const auto& entry : entries) {
    total += entry.engine->CacheBytes();
    for (const auto& [key, ctx] : entry.contexts) {
      total += ctx->CacheBytes();
    }
  }
  return total;
}

size_t ExplanationService::EnforceBudget() {
  if (options_.memory_budget_bytes == 0) return 0;
  // Work on a snapshot: eviction never needs the registry lock, so it can
  // run while other threads query. Races just mean a cache refills after
  // eviction; the next enforcement pass catches it.
  std::vector<std::shared_ptr<EvalEngine>> engines;
  std::vector<std::shared_ptr<EstimatorContext>> contexts;
  {
    util::MutexLock lock(mu_);
    for (const auto& [name, entry] : tables_) {
      engines.push_back(entry.engine);
      for (const auto& [key, ctx] : entry.contexts) {
        contexts.push_back(ctx);
      }
    }
  }
  auto total = [&] {
    size_t t = 0;
    for (const auto& e : engines) t += e->CacheBytes();
    for (const auto& c : contexts) t += c->CacheBytes();
    return t;
  };
  size_t freed_total = 0;
  size_t current = total();
  while (current > options_.memory_budget_bytes) {
    // Evict from the single largest consumer; repeat until under budget
    // or nothing is left to evict.
    size_t largest_bytes = 0;
    std::shared_ptr<EvalEngine> largest_engine;
    std::shared_ptr<EstimatorContext> largest_ctx;
    for (const auto& e : engines) {
      const size_t b = e->CacheBytes();
      if (b > largest_bytes) {
        largest_bytes = b;
        largest_engine = e;
        largest_ctx = nullptr;
      }
    }
    for (const auto& c : contexts) {
      const size_t b = c->CacheBytes();
      if (b > largest_bytes) {
        largest_bytes = b;
        largest_ctx = c;
        largest_engine = nullptr;
      }
    }
    if (largest_bytes == 0) break;
    const size_t need = current - options_.memory_budget_bytes;
    const size_t freed =
        largest_engine != nullptr
            ? largest_engine->EvictLru(std::min(need, largest_bytes))
            : largest_ctx->EvictLru(std::min(need, largest_bytes));
    if (freed == 0) break;
    freed_total += freed;
    current = total();
  }
  if (freed_total > 0) {
    n_enforcements_.fetch_add(1, std::memory_order_relaxed);
  }
  return freed_total;
}

ServiceStats ExplanationService::Stats() const {
  ServiceStats s;
  s.queries_executed = n_queries_.load(std::memory_order_relaxed);
  s.tables_registered = n_tables_.load(std::memory_order_relaxed);
  s.appends_executed = n_appends_.load(std::memory_order_relaxed);
  s.rows_appended = n_rows_appended_.load(std::memory_order_relaxed);
  s.budget_enforcements = n_enforcements_.load(std::memory_order_relaxed);
  s.cache_bytes = CacheBytes();
  return s;
}

}  // namespace causumx
