#include "service/batch.h"

#include <cmath>
#include <cstring>
#include <fstream>
#include <future>
#include <iostream>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "causal/dag_io.h"
#include "causal/discovery.h"
#include "core/json_export.h"
#include "storage/storage_error.h"
#include "util/json.h"
#include "util/string_utils.h"
#include "util/timer.h"

namespace causumx {

SimplePredicate ParseWherePredicate(const std::string& expr,
                                    const Table& table) {
  static const std::pair<const char*, CompareOp> kOps[] = {
      {">=", CompareOp::kGe}, {"<=", CompareOp::kLe}, {"=", CompareOp::kEq},
      {"<", CompareOp::kLt},  {">", CompareOp::kGt},
  };
  for (const auto& [symbol, op] : kOps) {
    const size_t pos = expr.find(symbol);
    if (pos == std::string::npos) continue;
    const std::string attr = Trim(expr.substr(0, pos));
    const std::string value = Trim(expr.substr(pos + std::strlen(symbol)));
    auto idx = table.ColumnIndex(attr);
    if (!idx) throw std::runtime_error("where: unknown attribute " + attr);
    if (table.column(*idx).type() == ColumnType::kCategorical) {
      return SimplePredicate(attr, op, Value(value));
    }
    return SimplePredicate(attr, op, Value(std::stod(value)));
  }
  throw std::runtime_error("where: no operator found in '" + expr + "'");
}

namespace {

std::vector<std::string> ParseGroupBy(const JsonValue& request) {
  const JsonValue* gb = request.Find("group_by");
  if (gb == nullptr) {
    throw std::runtime_error("request is missing \"group_by\"");
  }
  std::vector<std::string> out;
  if (gb->kind() == JsonValue::Kind::kArray) {
    for (const auto& v : gb->AsArray()) out.push_back(v.AsString());
  } else {
    for (auto& part : Split(gb->AsString(), ',')) {
      out.push_back(Trim(part));
    }
  }
  if (out.empty()) throw std::runtime_error("\"group_by\" is empty");
  return out;
}

CausalDag ResolveDag(const JsonValue& request, const Table& table,
                     const std::string& outcome) {
  const std::string dag_path = request.GetString("dag");
  if (!dag_path.empty()) return ReadDagFile(dag_path);
  const std::string discover = ToLower(request.GetString("discover"));
  if (discover.empty() || discover == "nodag") {
    return MakeNoDag(table, outcome);
  }
  if (discover == "pc") {
    return DiscoverDag(table, DiscoveryAlgorithm::kPc, outcome);
  }
  if (discover == "fci") {
    return DiscoverDag(table, DiscoveryAlgorithm::kFci, outcome);
  }
  if (discover == "lingam") {
    return DiscoverDag(table, DiscoveryAlgorithm::kLingam, outcome);
  }
  throw std::runtime_error("unknown \"discover\" algorithm: " + discover);
}

// Coerces a JSON array-of-arrays into schema-ordered append rows:
// numbers into numeric columns, strings into categorical ones, null
// anywhere. Type mismatches throw (Table::AppendRows re-validates).
std::vector<std::vector<Value>> ParseJsonRows(const JsonValue& rows_json,
                                              const Table& schema) {
  std::vector<std::vector<Value>> rows;
  rows.reserve(rows_json.AsArray().size());
  for (const JsonValue& row_json : rows_json.AsArray()) {
    const std::vector<JsonValue>& cells = row_json.AsArray();
    if (cells.size() != schema.NumColumns()) {
      throw std::runtime_error(StrFormat(
          "append row %zu has %zu cells, table has %zu columns",
          rows.size() + 1, cells.size(), schema.NumColumns()));
    }
    std::vector<Value> row(cells.size());
    for (size_t c = 0; c < cells.size(); ++c) {
      const JsonValue& cell = cells[c];
      if (cell.is_null()) continue;
      switch (schema.column(c).type()) {
        case ColumnType::kInt64: {
          // Match the CSV delta path's strictness: reject fractional
          // values instead of truncating, and bound to the +-2^53 range
          // where doubles hold integers exactly (JSON numbers arrive as
          // double, so anything larger has already lost digits; the cast
          // is also UB past int64 range).
          const double d = cell.AsNumber();
          if (d != std::floor(d) || d < -9007199254740992.0 ||
              d > 9007199254740992.0) {
            throw std::runtime_error(StrFormat(
                "append row %zu column '%s': %g is not an exactly "
                "representable integer",
                rows.size() + 1, schema.column(c).name().c_str(), d));
          }
          row[c] = Value(static_cast<int64_t>(d));
          break;
        }
        case ColumnType::kDouble:
          row[c] = Value(cell.AsNumber());
          break;
        case ColumnType::kCategorical:
          row[c] = Value(cell.AsString());
          break;
      }
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

// Optional list-of-strings field: a JSON array or an "A,B" comma string.
std::vector<std::string> ParseAttrList(const JsonValue& request,
                                       const std::string& key) {
  const JsonValue* v = request.Find(key);
  if (v == nullptr) return {};
  std::vector<std::string> out;
  if (v->kind() == JsonValue::Kind::kArray) {
    for (const auto& item : v->AsArray()) out.push_back(item.AsString());
  } else {
    for (auto& part : Split(v->AsString(), ',')) out.push_back(Trim(part));
  }
  return out;
}

RequestResult ErrorLine(const std::string& id, const std::string& what) {
  RequestResult result;
  result.json_line =
      StrFormat("{\"id\":\"%s\",\"ok\":false,\"error\":\"%s\"}",
                JsonEscape(id).c_str(), JsonEscape(what).c_str());
  return result;
}

// `parsed` carries the line's pre-parsed JSON when RunBatch already has
// it (it peeks at every line for the append barrier); null re-parses —
// and surfaces the parse error — here.
RequestResult ExecuteRequest(ExplanationService& service,
                             const std::string& line,
                             std::shared_ptr<const JsonValue> parsed,
                             size_t line_number,
                             const BatchOptions& options) {
  std::string id = StrFormat("%zu", line_number);
  try {
    if (parsed == nullptr) {
      parsed = std::make_shared<const JsonValue>(JsonValue::Parse(line));
    }
    const JsonValue& request = *parsed;
    id = request.GetString("id", id);

    const std::string op = request.GetString("op", "query");
    if (op == "append") {
      return ExecuteAppendRequest(service, request, "", id, options);
    }
    if (op != "query") throw std::runtime_error("unknown op \"" + op + "\"");
    return ExecuteQueryRequest(service, request, id, options);
  } catch (const std::exception& e) {
    return ErrorLine(id, e.what());
  }
}

}  // namespace

RequestResult ExecuteQueryRequest(ExplanationService& service,
                                  const JsonValue& request,
                                  const std::string& default_id,
                                  const BatchOptions& options) {
  RequestResult result;
  std::string id = default_id;
  try {
    id = request.GetString("id", id);

    std::string table_name = request.GetString("table");
    const std::string csv_path = request.GetString("csv");
    if (table_name.empty()) {
      table_name = csv_path.empty() ? options.default_table : csv_path;
    }
    std::shared_ptr<const Table> table;
    if (!csv_path.empty()) {
      // Race-free: concurrent requests naming the same CSV share the
      // first registration instead of clobbering each other's caches.
      table = service.EnsureCsv(table_name, csv_path);
    } else if (service.HasTable(table_name)) {
      table = service.GetTable(table_name);
    } else {
      throw std::runtime_error("unknown table '" + table_name +
                               "' and no \"csv\" to load");
    }

    GroupByAvgQuery query;
    query.group_by = ParseGroupBy(request);
    query.avg_attribute = request.GetString("avg");
    if (query.avg_attribute.empty()) {
      throw std::runtime_error("request is missing \"avg\"");
    }
    const std::string where = request.GetString("where");
    if (!where.empty()) {
      query.where = Pattern({ParseWherePredicate(where, *table)});
    }

    const CausalDag dag = ResolveDag(request, *table, query.avg_attribute);

    CauSumXConfig config;
    config.k = static_cast<size_t>(request.GetNumber("k", 5));
    config.theta = request.GetNumber("theta", 0.75);
    config.apriori_support = request.GetNumber("support", 0.1);
    config.treatment.alpha = request.GetNumber("alpha", 0.05);
    config.grouping_attribute_allowlist =
        ParseAttrList(request, "grouping_attrs");
    config.treatment_attribute_allowlist =
        ParseAttrList(request, "treatment_attrs");
    config.grouping.include_per_group_patterns = request.GetBool(
        "per_group_patterns", config.grouping.include_per_group_patterns);
    config.num_threads = static_cast<size_t>(request.GetNumber(
        "num_threads",
        static_cast<double>(options.default_query_threads)));

    Timer timer;
    const CauSumXResult run = service.Explain(table_name, query, dag, config);
    const double elapsed_ms = timer.Seconds() * 1000.0;

    std::ostringstream oss;
    oss << "{\"id\":\"" << JsonEscape(id) << "\",\"table\":\""
        << JsonEscape(table_name) << "\",\"ok\":true,\"elapsed_ms\":"
        << FormatDouble(elapsed_ms, 3)
        << ",\"summary\":" << SummaryToJson(run.summary, &query);
    if (options.emit_cache_stats) {
      const EvalEngineStats& e = run.cache_stats.eval;
      const EstimatorCacheStats& m = run.cache_stats.estimator;
      oss << ",\"cache\":{\"bitset_hits\":" << e.bitset_hits
          << ",\"bitsets_materialized\":" << e.bitsets_materialized
          << ",\"bitset_bytes\":" << e.bitset_bytes
          << ",\"memo_hits\":" << m.memo_hits
          << ",\"memo_misses\":" << m.memo_misses
          << ",\"memo_bytes\":" << m.memo_bytes << "}";
    }
    oss << "}";
    result.ok = true;
    result.json_line = oss.str();
  } catch (const std::exception& e) {
    return ErrorLine(id, e.what());
  }
  return result;
}

RequestResult ExecuteAppendRequest(ExplanationService& service,
                                   const JsonValue& request,
                                   const std::string& table_name,
                                   const std::string& default_id,
                                   const BatchOptions& options) {
  RequestResult result;
  std::string id = default_id;
  try {
    id = request.GetString("id", id);

    std::string table = table_name;
    if (table.empty()) table = request.GetString("table");
    if (table.empty()) table = options.default_table;

    const std::string csv_path = request.GetString("csv");
    const JsonValue* rows_json = request.Find("rows");

    Timer timer;
    std::shared_ptr<const Table> grown;
    size_t rows_appended = 0;
    if (!csv_path.empty()) {
      grown = service.AppendCsv(table, csv_path, {}, &rows_appended);
    } else if (rows_json != nullptr) {
      const std::shared_ptr<const Table> schema = service.GetTable(table);
      const auto rows = ParseJsonRows(*rows_json, *schema);
      rows_appended = rows.size();
      // Pin to the schema the cells were coerced against (same race as
      // the CSV path: a concurrent re-registration must not get
      // stale-typed rows).
      grown = service.Append(table, rows, schema.get());
    } else {
      throw std::runtime_error("append needs \"csv\" or \"rows\"");
    }
    result.ok = true;
    result.json_line = StrFormat(
        "{\"id\":\"%s\",\"table\":\"%s\",\"ok\":true,\"op\":\"append\","
        "\"rows_appended\":%zu,\"rows_total\":%zu,\"version\":%llu,"
        "\"elapsed_ms\":%s}",
        JsonEscape(id).c_str(), JsonEscape(table).c_str(), rows_appended,
        grown->NumRows(), (unsigned long long)grown->version(),
        FormatDouble(timer.Seconds() * 1000.0, 3).c_str());
  } catch (const std::exception& e) {
    return ErrorLine(id, e.what());
  }
  return result;
}

BatchSummary RunBatch(ExplanationService& service, std::istream& in,
                      std::ostream& out, const BatchOptions& options) {
  // Collect the lines first, then fan out: requests run concurrently on
  // callers of the service pool via std::async-free futures, and results
  // stream back in input order. Append ops are barriers: all earlier
  // requests drain before the append lands (they query the pre-append
  // snapshot), and later requests see the grown table — the file reads
  // top-to-bottom like a stream of events.
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) {
    if (Trim(line).empty()) continue;
    lines.push_back(line);
  }
  // EOF and a failed read both end the getline loop; only EOF means the
  // whole file was seen. A mid-stream failure must not silently run a
  // truncated batch.
  if (in.bad()) {
    throw StorageError(StorageErrorKind::kIo,
                       "batch: stream read failed mid-file (badbit set after "
                       "reading " +
                           std::to_string(lines.size()) + " lines)");
  }

  BatchSummary summary;
  summary.requests = lines.size();

  std::vector<std::future<RequestResult>> pending;
  auto emit = [&](RequestResult r) {
    out << r.json_line << "\n";
    out.flush();
    if (r.ok) {
      ++summary.succeeded;
    } else {
      ++summary.failed;
    }
  };
  auto drain = [&] {
    for (auto& f : pending) emit(f.get());
    pending.clear();
  };

  for (size_t i = 0; i < lines.size(); ++i) {
    // Parse once, up front: the barrier check needs the op field, and the
    // executor reuses the parsed value. A malformed line is not a
    // barrier; it fails inside ExecuteRequest like any other bad request.
    std::shared_ptr<const JsonValue> parsed;
    bool is_append = false;
    try {
      parsed = std::make_shared<const JsonValue>(JsonValue::Parse(lines[i]));
      is_append = parsed->GetString("op") == "append";
    } catch (...) {
      // Unparsable line or non-string "op": ExecuteRequest reports it.
    }
    if (is_append) {
      drain();
      emit(ExecuteRequest(service, lines[i], parsed, i + 1, options));
      continue;
    }
    auto task = std::make_shared<std::packaged_task<RequestResult()>>(
        [&service, &options, text = lines[i], parsed, i] {
          return ExecuteRequest(service, text, parsed, i + 1, options);
        });
    pending.push_back(task->get_future());
    service.pool().Submit([task] { (*task)(); });
  }
  drain();
  return summary;
}

BatchSummary RunBatchFile(ExplanationService& service,
                          const std::string& path, std::ostream& out,
                          const BatchOptions& options) {
  if (path == "-") return RunBatch(service, std::cin, out, options);
  std::ifstream f(path);
  if (!f) throw std::runtime_error("batch: cannot open " + path);
  return RunBatch(service, f, out, options);
}

}  // namespace causumx
