#include "service/batch.h"

#include <cstring>
#include <fstream>
#include <future>
#include <iostream>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "causal/dag_io.h"
#include "causal/discovery.h"
#include "core/json_export.h"
#include "util/json.h"
#include "util/string_utils.h"
#include "util/timer.h"

namespace causumx {

SimplePredicate ParseWherePredicate(const std::string& expr,
                                    const Table& table) {
  static const std::pair<const char*, CompareOp> kOps[] = {
      {">=", CompareOp::kGe}, {"<=", CompareOp::kLe}, {"=", CompareOp::kEq},
      {"<", CompareOp::kLt},  {">", CompareOp::kGt},
  };
  for (const auto& [symbol, op] : kOps) {
    const size_t pos = expr.find(symbol);
    if (pos == std::string::npos) continue;
    const std::string attr = Trim(expr.substr(0, pos));
    const std::string value = Trim(expr.substr(pos + std::strlen(symbol)));
    auto idx = table.ColumnIndex(attr);
    if (!idx) throw std::runtime_error("where: unknown attribute " + attr);
    if (table.column(*idx).type() == ColumnType::kCategorical) {
      return SimplePredicate(attr, op, Value(value));
    }
    return SimplePredicate(attr, op, Value(std::stod(value)));
  }
  throw std::runtime_error("where: no operator found in '" + expr + "'");
}

namespace {

struct BatchResult {
  bool ok = false;
  std::string json_line;
};

std::vector<std::string> ParseGroupBy(const JsonValue& request) {
  const JsonValue* gb = request.Find("group_by");
  if (gb == nullptr) {
    throw std::runtime_error("request is missing \"group_by\"");
  }
  std::vector<std::string> out;
  if (gb->kind() == JsonValue::Kind::kArray) {
    for (const auto& v : gb->AsArray()) out.push_back(v.AsString());
  } else {
    for (auto& part : Split(gb->AsString(), ',')) {
      out.push_back(Trim(part));
    }
  }
  if (out.empty()) throw std::runtime_error("\"group_by\" is empty");
  return out;
}

CausalDag ResolveDag(const JsonValue& request, const Table& table,
                     const std::string& outcome) {
  const std::string dag_path = request.GetString("dag");
  if (!dag_path.empty()) return ReadDagFile(dag_path);
  const std::string discover = ToLower(request.GetString("discover"));
  if (discover.empty() || discover == "nodag") {
    return MakeNoDag(table, outcome);
  }
  if (discover == "pc") {
    return DiscoverDag(table, DiscoveryAlgorithm::kPc, outcome);
  }
  if (discover == "fci") {
    return DiscoverDag(table, DiscoveryAlgorithm::kFci, outcome);
  }
  if (discover == "lingam") {
    return DiscoverDag(table, DiscoveryAlgorithm::kLingam, outcome);
  }
  throw std::runtime_error("unknown \"discover\" algorithm: " + discover);
}

BatchResult ExecuteRequest(ExplanationService& service,
                           const std::string& line, size_t line_number,
                           const BatchOptions& options) {
  BatchResult result;
  std::string id = StrFormat("%zu", line_number);
  try {
    const JsonValue request = JsonValue::Parse(line);
    id = request.GetString("id", id);

    std::string table_name = request.GetString("table");
    const std::string csv_path = request.GetString("csv");
    if (table_name.empty()) {
      table_name = csv_path.empty() ? options.default_table : csv_path;
    }
    std::shared_ptr<const Table> table;
    if (!csv_path.empty()) {
      // Race-free: concurrent requests naming the same CSV share the
      // first registration instead of clobbering each other's caches.
      table = service.EnsureCsv(table_name, csv_path);
    } else if (service.HasTable(table_name)) {
      table = service.GetTable(table_name);
    } else {
      throw std::runtime_error("unknown table '" + table_name +
                               "' and no \"csv\" to load");
    }

    GroupByAvgQuery query;
    query.group_by = ParseGroupBy(request);
    query.avg_attribute = request.GetString("avg");
    if (query.avg_attribute.empty()) {
      throw std::runtime_error("request is missing \"avg\"");
    }
    const std::string where = request.GetString("where");
    if (!where.empty()) {
      query.where = Pattern({ParseWherePredicate(where, *table)});
    }

    const CausalDag dag = ResolveDag(request, *table, query.avg_attribute);

    CauSumXConfig config;
    config.k = static_cast<size_t>(request.GetNumber("k", 5));
    config.theta = request.GetNumber("theta", 0.75);
    config.apriori_support = request.GetNumber("support", 0.1);
    config.treatment.alpha = request.GetNumber("alpha", 0.05);
    config.num_threads = static_cast<size_t>(request.GetNumber(
        "num_threads",
        static_cast<double>(options.default_query_threads)));

    Timer timer;
    const CauSumXResult run = service.Explain(table_name, query, dag, config);
    const double elapsed_ms = timer.Seconds() * 1000.0;

    std::ostringstream oss;
    oss << "{\"id\":\"" << JsonEscape(id) << "\",\"table\":\""
        << JsonEscape(table_name) << "\",\"ok\":true,\"elapsed_ms\":"
        << FormatDouble(elapsed_ms, 3)
        << ",\"summary\":" << SummaryToJson(run.summary, &query);
    if (options.emit_cache_stats) {
      const EvalEngineStats& e = run.cache_stats.eval;
      const EstimatorCacheStats& m = run.cache_stats.estimator;
      oss << ",\"cache\":{\"bitset_hits\":" << e.bitset_hits
          << ",\"bitsets_materialized\":" << e.bitsets_materialized
          << ",\"bitset_bytes\":" << e.bitset_bytes
          << ",\"memo_hits\":" << m.memo_hits
          << ",\"memo_misses\":" << m.memo_misses
          << ",\"memo_bytes\":" << m.memo_bytes << "}";
    }
    oss << "}";
    result.ok = true;
    result.json_line = oss.str();
  } catch (const std::exception& e) {
    result.json_line = StrFormat("{\"id\":\"%s\",\"ok\":false,\"error\":\"%s\"}",
                                 JsonEscape(id).c_str(),
                                 JsonEscape(e.what()).c_str());
  }
  return result;
}

}  // namespace

BatchSummary RunBatch(ExplanationService& service, std::istream& in,
                      std::ostream& out, const BatchOptions& options) {
  // Collect the lines first, then fan out: requests run concurrently on
  // callers of the service pool via std::async-free futures, and results
  // stream back in input order.
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) {
    if (Trim(line).empty()) continue;
    lines.push_back(line);
  }

  std::vector<std::future<BatchResult>> futures;
  futures.reserve(lines.size());
  for (size_t i = 0; i < lines.size(); ++i) {
    auto task = std::make_shared<std::packaged_task<BatchResult()>>(
        [&service, &options, text = lines[i], i] {
          return ExecuteRequest(service, text, i + 1, options);
        });
    futures.push_back(task->get_future());
    service.pool().Submit([task] { (*task)(); });
  }

  BatchSummary summary;
  summary.requests = lines.size();
  for (auto& f : futures) {
    BatchResult r = f.get();
    out << r.json_line << "\n";
    out.flush();
    if (r.ok) {
      ++summary.succeeded;
    } else {
      ++summary.failed;
    }
  }
  return summary;
}

BatchSummary RunBatchFile(ExplanationService& service,
                          const std::string& path, std::ostream& out,
                          const BatchOptions& options) {
  if (path == "-") return RunBatch(service, std::cin, out, options);
  std::ifstream f(path);
  if (!f) throw std::runtime_error("batch: cannot open " + path);
  return RunBatch(service, f, out, options);
}

}  // namespace causumx
