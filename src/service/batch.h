// JSONL batch execution over an ExplanationService.
//
// Each input line is one JSON request object; each output line is one
// JSON result object (input order preserved; requests execute
// concurrently on the service pool). Request fields:
//
//   {"id": "q1",                     // echoed back (default: line number)
//    "table": "sales",               // registry name (default: options)
//    "csv": "path/to.csv",           // load + register if table absent
//    "group_by": ["Country"],        // or a "A,B" comma string
//    "avg": "Salary",
//    "where": "Role=Engineer",       // optional filter predicate
//    "dag": "graph.txt",             // or "discover": "pc|fci|lingam|nodag"
//    "k": 5, "theta": 0.75, "support": 0.1, "alpha": 0.05,
//    "grouping_attrs": ["Country"],  // optional attribute allowlists
//    "treatment_attrs": ["Role"],
//    "per_group_patterns": true,     // mine per-group grouping patterns
//    "num_threads": 1}               // per-query mining threads
//
// The same request shape is served over HTTP by POST /v1/explain
// (server/rest_api.h), which funnels into the same executor — a query
// answered over the network is bit-identical to the same line in a
// batch file and to the CLI's --json output.
//
// Row sharding is a property of the registered table, not of one
// request: the service-level --shards (ServiceOptions::num_shards)
// fixes each table's shard plan at registration, and every batch query
// executes through it.
//
// Streaming ingestion rides the same file via an "op" field:
//
//   {"op": "append", "table": "sales", "csv": "delta.csv"}
//   {"op": "append", "table": "sales",
//    "rows": [["US", 12, 3.5], [null, 7, 1.0]]}   // schema order
//
// appends delta rows to a registered table (cells coerce to the column
// types; null is null). An append line is a barrier: every earlier
// request finishes before it lands, and every later request sees the
// grown table — so "query, append, re-query" reads top-to-bottom.
//
// Result lines: {"id", "table", "ok", "elapsed_ms", "summary"} on
// success ({"rows_appended", "rows_total", "version"} for appends),
// {"id", "ok": false, "error"} on failure. A malformed line fails that
// request only; the batch keeps going.

#ifndef CAUSUMX_SERVICE_BATCH_H_
#define CAUSUMX_SERVICE_BATCH_H_

#include <iosfwd>
#include <string>

#include "dataset/predicate.h"
#include "dataset/table.h"
#include "service/explanation_service.h"
#include "util/json.h"

namespace causumx {

/// Parses "Attr=value" / "Attr<value" / "Attr>=value" into a predicate
/// against the table's schema (categorical columns compare as strings,
/// numeric ones as doubles). Throws std::runtime_error on an unknown
/// attribute or missing operator.
SimplePredicate ParseWherePredicate(const std::string& expr,
                                    const Table& table);

/// Execution knobs shared by RunBatch and the REST endpoints that
/// funnel into the same executor.
struct BatchOptions {
  /// Table used by requests that name neither "table" nor "csv".
  std::string default_table = "default";
  /// Per-query mining threads when a request doesn't say (1 keeps the
  /// pool-level concurrency as the parallelism source).
  size_t default_query_threads = 1;
  /// Echo engine/estimator cache counters into each result line.
  bool emit_cache_stats = false;
};

/// Aggregate outcome of one batch run.
struct BatchSummary {
  size_t requests = 0;   ///< non-empty input lines executed
  size_t succeeded = 0;  ///< result lines with "ok": true
  size_t failed = 0;     ///< result lines with "ok": false
};

/// Outcome of one executed request: `json_line` is the complete JSON
/// result document (one batch output line / one HTTP response body) and
/// `ok` mirrors its "ok" field.
struct RequestResult {
  bool ok = false;         ///< mirrors the result's "ok" field
  std::string json_line;   ///< the complete JSON result document
};

/// Executes one parsed query request (the JSONL line shape above, op
/// "query") against the service. Never throws: every failure — unknown
/// table, bad parameters, a mining error — is reported as
/// {"id", "ok": false, "error"}. `default_id` is echoed when the request
/// carries no "id". Shared by RunBatch and POST /v1/explain, which is
/// what keeps network answers bit-identical to batch/CLI output.
RequestResult ExecuteQueryRequest(ExplanationService& service,
                                  const JsonValue& request,
                                  const std::string& default_id,
                                  const BatchOptions& options = {});

/// Executes one append request ({"csv": path} or {"rows": [[...]]})
/// against table `table_name` (empty = the request's "table" field,
/// falling back to options.default_table). Same never-throws error
/// contract as ExecuteQueryRequest. Shared by the batch "op": "append"
/// lines and POST /v1/tables/{name}/append.
RequestResult ExecuteAppendRequest(ExplanationService& service,
                                   const JsonValue& request,
                                   const std::string& table_name,
                                   const std::string& default_id,
                                   const BatchOptions& options = {});

/// Executes every JSONL request from `in` against the service, streaming
/// one JSON result line per request to `out` in input order.
BatchSummary RunBatch(ExplanationService& service, std::istream& in,
                      std::ostream& out, const BatchOptions& options = {});

/// As RunBatch over a file path ("-" = stdin).
BatchSummary RunBatchFile(ExplanationService& service,
                          const std::string& path, std::ostream& out,
                          const BatchOptions& options = {});

}  // namespace causumx

#endif  // CAUSUMX_SERVICE_BATCH_H_
