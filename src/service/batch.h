// JSONL batch execution over an ExplanationService.
//
// Each input line is one JSON request object; each output line is one
// JSON result object (input order preserved; requests execute
// concurrently on the service pool). Request fields:
//
//   {"id": "q1",                     // echoed back (default: line number)
//    "table": "sales",               // registry name (default: options)
//    "csv": "path/to.csv",           // load + register if table absent
//    "group_by": ["Country"],        // or a "A,B" comma string
//    "avg": "Salary",
//    "where": "Role=Engineer",       // optional filter predicate
//    "dag": "graph.txt",             // or "discover": "pc|fci|lingam|nodag"
//    "k": 5, "theta": 0.75, "support": 0.1, "alpha": 0.05,
//    "num_threads": 1}               // per-query mining threads
//
// Row sharding is a property of the registered table, not of one
// request: the service-level --shards (ServiceOptions::num_shards)
// fixes each table's shard plan at registration, and every batch query
// executes through it.
//
// Streaming ingestion rides the same file via an "op" field:
//
//   {"op": "append", "table": "sales", "csv": "delta.csv"}
//   {"op": "append", "table": "sales",
//    "rows": [["US", 12, 3.5], [null, 7, 1.0]]}   // schema order
//
// appends delta rows to a registered table (cells coerce to the column
// types; null is null). An append line is a barrier: every earlier
// request finishes before it lands, and every later request sees the
// grown table — so "query, append, re-query" reads top-to-bottom.
//
// Result lines: {"id", "table", "ok", "elapsed_ms", "summary"} on
// success ({"rows_appended", "rows_total", "version"} for appends),
// {"id", "ok": false, "error"} on failure. A malformed line fails that
// request only; the batch keeps going.

#ifndef CAUSUMX_SERVICE_BATCH_H_
#define CAUSUMX_SERVICE_BATCH_H_

#include <iosfwd>
#include <string>

#include "dataset/predicate.h"
#include "dataset/table.h"
#include "service/explanation_service.h"

namespace causumx {

/// Parses "Attr=value" / "Attr<value" / "Attr>=value" into a predicate
/// against the table's schema (categorical columns compare as strings,
/// numeric ones as doubles). Throws std::runtime_error on an unknown
/// attribute or missing operator.
SimplePredicate ParseWherePredicate(const std::string& expr,
                                    const Table& table);

struct BatchOptions {
  /// Table used by requests that name neither "table" nor "csv".
  std::string default_table = "default";
  /// Per-query mining threads when a request doesn't say (1 keeps the
  /// pool-level concurrency as the parallelism source).
  size_t default_query_threads = 1;
  /// Echo engine/estimator cache counters into each result line.
  bool emit_cache_stats = false;
};

struct BatchSummary {
  size_t requests = 0;
  size_t succeeded = 0;
  size_t failed = 0;
};

/// Executes every JSONL request from `in` against the service, streaming
/// one JSON result line per request to `out` in input order.
BatchSummary RunBatch(ExplanationService& service, std::istream& in,
                      std::ostream& out, const BatchOptions& options = {});

/// As RunBatch over a file path ("-" = stdin).
BatchSummary RunBatchFile(ExplanationService& service,
                          const std::string& path, std::ostream& out,
                          const BatchOptions& options = {});

}  // namespace causumx

#endif  // CAUSUMX_SERVICE_BATCH_H_
