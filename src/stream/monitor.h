// Continuous explanation monitoring over windowed streams.
//
// A StreamMonitor watches one registered table of an ExplanationService
// and maintains a CauSumX explanation summary over a row-count window of
// the table's append stream — tumbling (disjoint windows of W rows) or
// sliding (a W-row window advancing S rows at a time). The monitor owns
// its own window Table / EvalEngine / EstimatorContext triple and walks
// it incrementally:
//
//   * Appends extend the triple through the engine's delta-extension
//     constructor and the context's append-migration constructor (PR 3's
//     grow-only path): cached predicate segments evaluate only the delta
//     rows and carried CATE memo entries stay warm.
//   * At each window boundary the expired prefix is retracted:
//     Table::Tail rebuilds the surviving rows, and the new retraction
//     constructors (EvalEngine / EstimatorContext with a
//     dropped_prefix_rows argument) carry over exactly the cache and
//     memo state that is still valid — a subpopulation that lost rows is
//     invalidated precisely, everything else shifts down and stays a
//     memo hit. Expiry also *shrinks* the accounted resident bytes: the
//     retraction constructors restart byte accounting from the carried
//     (strictly smaller) state.
//   * The summary is then re-mined over the window through the warm
//     caches. Only dirty groups — grouping patterns whose subpopulation
//     actually gained or lost rows — recompute their CATEs; the rest are
//     memo hits. The result is bit-identical to running CauSumX from
//     scratch over exactly the surviving window rows (the differential
//     property harness in tests/test_property_windows.cpp enforces
//     this).
//
// After each evaluated window the monitor diffs the new summary against
// the previous window's and emits drift events: a per-grouping-pattern
// CATE change at least `cate_delta`, or a top-k membership churn of at
// least `topk_churn`. Events carry a monotone per-monitor sequence
// number and the window's stream-row range — no wall-clock fields, so
// event streams replay deterministically.
//
// MonitorRegistry owns the monitors, feeds them synchronously from the
// service's append observer hook (deliveries are ordered and never
// concurrent — see ExplanationService::AddAppendObserver), serves the
// long-poll event subscription the REST layer exposes, and persists all
// monitor state into the service data_dir for warm restarts.

#ifndef CAUSUMX_STREAM_MONITOR_H_
#define CAUSUMX_STREAM_MONITOR_H_

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "causal/dag.h"
#include "causal/estimator_context.h"
#include "core/causumx.h"
#include "dataset/table.h"
#include "engine/eval_engine.h"
#include "service/explanation_service.h"
#include "util/json.h"
#include "util/thread_annotations.h"

namespace causumx {

/// Window retention policy of one monitor, in row counts.
struct WindowSpec {
  /// kTumbling evaluates disjoint windows [0,W), [W,2W), ...; kSliding
  /// evaluates a W-row window every S appended rows: [0,W), [S,W+S), ...
  enum class Kind { kTumbling, kSliding };
  /// Which retention policy the window follows.
  Kind kind = Kind::kTumbling;
  /// W: rows per evaluated window. Must be >= 1.
  size_t size_rows = 0;
  /// S: rows between window boundaries; 1 <= S <= W. Forced to W for
  /// tumbling windows.
  size_t slide_rows = 0;
};

/// Drift thresholds of one monitor; 0 disables the respective detector.
struct MonitorThresholds {
  /// Emit a `cate_drift` event when a grouping pattern present in two
  /// consecutive summaries changes its (positive or negative) treatment
  /// CATE by at least this absolute amount.
  double cate_delta = 0.0;
  /// Emit a `topk_churn` event when at least this fraction of the new
  /// summary's grouping patterns were absent from the previous one.
  double topk_churn = 0.0;
};

/// One emitted monitor event: the monotone per-monitor sequence number
/// and the rendered JSON object (which embeds the same `seq`).
struct MonitorEvent {
  /// Monotone per-monitor sequence number, starting at 1.
  uint64_t seq = 0;
  /// The rendered event object, exactly as served over the REST API.
  std::string json;
};

/// Point-in-time description of one monitor.
struct MonitorStatus {
  std::string id;                  ///< registry-assigned identifier
  std::string table;               ///< watched table name
  uint64_t rows_observed = 0;      ///< stream rows seen since creation
  uint64_t windows_evaluated = 0;  ///< boundaries processed so far
  uint64_t last_seq = 0;           ///< newest event seq (0 = none yet)
  size_t window_rows = 0;          ///< rows currently held in the window
  size_t events_buffered = 0;      ///< events currently in the buffer
  size_t cache_bytes = 0;          ///< resident window cache bytes
};

/// A single windowed monitor. Thread-safe: OnAppend (serialized by the
/// service's append lock), status/event reads, and the long-poll wait
/// may run concurrently.
class StreamMonitor {
 public:
  /// Parses and validates `spec_json` (see docs/API.md for the schema:
  /// table/group_by/avg/where, dag_text|dag|discover, CauSumX knobs,
  /// window {kind,size_rows,slide_rows}, thresholds
  /// {cate_delta,topk_churn}, emit_summaries, max_events).
  /// `bound_table` is the watched table at creation time — it supplies
  /// the window schema, WHERE-predicate typing, and the data a
  /// "discover" DAG is learned from; the window itself starts empty and
  /// fills from appends observed after creation. `mining_pool`
  /// (optional) runs window evaluation when the spec leaves num_threads
  /// at 0. Throws std::runtime_error on an invalid spec.
  StreamMonitor(std::string id, std::string spec_json,
                const Table& bound_table, ThreadPool* mining_pool);

  StreamMonitor(const StreamMonitor&) = delete;
  StreamMonitor& operator=(const StreamMonitor&) = delete;

  /// Registry-assigned identifier ("m1", "m2", ...).
  const std::string& id() const { return id_; }
  /// Name of the watched table.
  const std::string& table() const { return table_name_; }
  /// The creation spec, verbatim.
  const std::string& spec_json() const { return spec_json_; }

  /// Feeds one landed append batch. Appends rows to the window in
  /// boundary-sized pieces; each time the stream position reaches a
  /// window boundary, expires rows that left the window, re-mines the
  /// summary through the warm caches, diffs it against the previous
  /// window, and emits events. The caller (MonitorRegistry via the
  /// service append observer) guarantees calls are ordered and never
  /// concurrent with each other.
  void OnAppend(const std::vector<std::vector<Value>>& rows)
      CAUSUMX_EXCLUDES(mu_);

  /// Current status snapshot.
  MonitorStatus Status() const CAUSUMX_EXCLUDES(mu_);

  /// Buffered events with seq > `since`, in seq order. The buffer keeps
  /// the newest `max_events` events (spec knob, default 4096): when a
  /// reader falls further behind, the oldest events are dropped and the
  /// first returned seq exceeds `since + 1` — the gap is detectable
  /// from the seq numbers alone.
  std::vector<MonitorEvent> EventsSince(uint64_t since) const
      CAUSUMX_EXCLUDES(mu_);

  /// Long-poll variant: blocks until an event with seq > `since` exists
  /// or `timeout_ms` elapses, then returns like EventsSince (possibly
  /// empty on timeout).
  std::vector<MonitorEvent> WaitEventsSince(uint64_t since,
                                            int64_t timeout_ms)
      CAUSUMX_EXCLUDES(mu_);

  /// Serializes the full monitor state — id, spec, stream counters,
  /// window table, warm engine/memo caches, diff baseline, and the
  /// event buffer — for MonitorRegistry::SaveSnapshot.
  std::string ExportState() const CAUSUMX_EXCLUDES(mu_);

  /// Restores state exported by ExportState into a freshly constructed
  /// monitor (same id and spec; nothing observed yet). The warm caches
  /// are re-imported when they still match the rebuilt engine
  /// configuration and silently rebuilt cold otherwise — restored
  /// monitors produce bit-identical summaries either way. Throws
  /// StorageError(kCorrupt/kStale) on damage or an id/spec mismatch;
  /// the monitor must be discarded after a throw.
  void ImportState(const std::string& bytes) CAUSUMX_EXCLUDES(mu_);

 private:
  /// Per-grouping-pattern CATEs of one summary (the drift baseline).
  struct SideEffects {
    bool has_positive = false;
    double positive = 0.0;
    bool has_negative = false;
    double negative = 0.0;
  };

  /// Fresh (cold) engine options over the current window.
  EvalEngineOptions EngineOptions() const;

  /// Appends `rows[begin, end)` to the window table, migrating the
  /// engine and context through the grow-only delta constructors (or
  /// building them fresh on the first non-empty window).
  void AppendToWindowLocked(const std::vector<std::vector<Value>>& rows,
                            size_t begin, size_t end) CAUSUMX_REQUIRES(mu_);

  /// Expires the first `drop` window rows through Table::Tail and the
  /// retraction constructors.
  void CompactLocked(size_t drop) CAUSUMX_REQUIRES(mu_);

  /// Mines the current window, diffs against the previous summary, and
  /// emits events for window index `window_index` spanning stream rows
  /// [window_begin, window_end).
  void EvaluateWindowLocked(uint64_t window_index, uint64_t window_begin,
                            uint64_t window_end) CAUSUMX_REQUIRES(mu_);

  /// Opens an event object in `w` (seq, monitor, type, window fields),
  /// consuming the next seq; the caller adds type-specific members and
  /// finishes with PushEventLocked.
  uint64_t BeginEventLocked(JsonWriter& w, const char* type,
                            uint64_t window_index, uint64_t window_begin,
                            uint64_t window_end) CAUSUMX_REQUIRES(mu_);

  /// Closes the event object, appends it to the buffer (trimming to
  /// max_events), and wakes long-poll waiters.
  void PushEventLocked(uint64_t seq, JsonWriter& w) CAUSUMX_REQUIRES(mu_);

  /// EventsSince body; the caller holds mu_.
  std::vector<MonitorEvent> EventsSinceLocked(uint64_t since) const
      CAUSUMX_REQUIRES(mu_);

  const std::string id_;
  const std::string spec_json_;

  // Parsed spec (immutable after construction).
  std::string table_name_;
  GroupByAvgQuery query_;
  CausalDag dag_;
  CauSumXConfig config_;
  WindowSpec window_;
  MonitorThresholds thresholds_;
  bool emit_summaries_ = false;
  size_t max_events_ = 4096;
  SegmentCompression compression_ = SegmentCompression::kAuto;
  std::vector<std::pair<std::string, ColumnType>> schema_;
  ThreadPool* mining_pool_ = nullptr;

  mutable util::Mutex mu_;
  mutable util::CondVar events_cv_;
  std::shared_ptr<const Table> window_table_ CAUSUMX_GUARDED_BY(mu_);
  std::shared_ptr<EvalEngine> engine_ CAUSUMX_GUARDED_BY(mu_);
  std::shared_ptr<EstimatorContext> context_ CAUSUMX_GUARDED_BY(mu_);
  /// Stream rows observed since creation (== the stream position).
  uint64_t rows_observed_ CAUSUMX_GUARDED_BY(mu_) = 0;
  /// Stream index of window row 0.
  uint64_t window_begin_ CAUSUMX_GUARDED_BY(mu_) = 0;
  /// Next stream position at which a window evaluates (W, W+S, ...).
  uint64_t next_boundary_ CAUSUMX_GUARDED_BY(mu_) = 0;
  uint64_t windows_evaluated_ CAUSUMX_GUARDED_BY(mu_) = 0;
  /// Previous window's per-grouping-pattern CATEs, keyed by the
  /// pattern's canonical rendering (value-based, so keys survive window
  /// compaction's dictionary re-coding). std::map: diff iteration order
  /// is deterministic.
  std::map<std::string, SideEffects> prev_effects_ CAUSUMX_GUARDED_BY(mu_);
  /// Previous window's grouping patterns in summary order.
  std::vector<std::string> prev_topk_ CAUSUMX_GUARDED_BY(mu_);
  bool have_prev_ CAUSUMX_GUARDED_BY(mu_) = false;
  std::deque<MonitorEvent> events_ CAUSUMX_GUARDED_BY(mu_);
  /// Seq the next event receives; seqs start at 1.
  uint64_t next_seq_ CAUSUMX_GUARDED_BY(mu_) = 1;
};

/// Options of the monitor registry.
struct MonitorRegistryOptions {
  /// Persist all monitor state (SaveSnapshot) after every processed
  /// append batch. Requires the service to have a data_dir; write
  /// failures are swallowed like the service's own snapshot-on-append.
  bool snapshot_on_append = false;
};

/// Owns the monitors of one ExplanationService and feeds them from its
/// append stream.
///
/// Thread-safe. The registry registers an append observer on the
/// service at construction; since observers cannot be removed, the
/// registry must outlive the service's last append (in practice: create
/// it right after the service and destroy it after all appends stop).
class MonitorRegistry {
 public:
  /// Binds to `service` and registers the append observer that drives
  /// every monitor.
  explicit MonitorRegistry(ExplanationService& service,
                           MonitorRegistryOptions options = {});

  MonitorRegistry(const MonitorRegistry&) = delete;
  MonitorRegistry& operator=(const MonitorRegistry&) = delete;

  /// Creates a monitor from `spec_json` (the REST POST /v1/monitors
  /// body, verbatim — the CLI and tests compose the same document) and
  /// assigns it the next id. The watched table must be registered.
  /// Throws std::runtime_error on an invalid spec and
  /// std::out_of_range on an unknown table.
  std::shared_ptr<StreamMonitor> Create(const std::string& spec_json);

  /// The monitor with this id, or null when absent.
  std::shared_ptr<StreamMonitor> Get(const std::string& id) const;

  /// Removes the monitor; returns false when absent. A removed monitor
  /// stops receiving appends; outstanding shared_ptr holders (e.g. a
  /// long-poll in flight) keep it alive until they drop it.
  bool Remove(const std::string& id);

  /// All monitors, ordered by id.
  std::vector<std::shared_ptr<StreamMonitor>> List() const;

  /// Persists every monitor's full state into one durable file under
  /// the service data_dir (`causumx-monitors.monsnap`; crash-safe
  /// write-to-temp + rename like every snapshot). Returns the bytes
  /// written. Throws std::logic_error without a data_dir and
  /// StorageError(kIo) on write failure.
  size_t SaveSnapshot();

  /// Restores monitors from the registry snapshot file; returns how
  /// many were restored. Monitors whose table is no longer registered
  /// or whose payload is damaged are skipped — a snapshot is never
  /// partially trusted for a monitor. A missing or unreadable file
  /// restores nothing. Throws std::logic_error without a data_dir.
  size_t RestoreMonitors();

 private:
  /// The append-observer body: routes the batch to every monitor of the
  /// table, then optionally persists.
  void OnAppend(const std::string& name,
                const std::vector<std::vector<Value>>& rows);

  /// The registry snapshot path under the service data_dir.
  std::string SnapshotFilePath() const;

  ExplanationService& service_;
  const MonitorRegistryOptions options_;
  mutable util::Mutex mu_;
  std::map<std::string, std::shared_ptr<StreamMonitor>> monitors_
      CAUSUMX_GUARDED_BY(mu_);
  uint64_t next_id_ CAUSUMX_GUARDED_BY(mu_) = 1;
  /// Serializes snapshot file writes (one shared .tmp per target).
  util::Mutex snapshot_mu_;
};

}  // namespace causumx

#endif  // CAUSUMX_STREAM_MONITOR_H_
