#include "stream/monitor.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <set>
#include <stdexcept>
#include <utility>

#include "causal/dag_io.h"
#include "causal/discovery.h"
#include "core/json_export.h"
#include "dataset/table_io.h"
#include "service/batch.h"
#include "storage/bytes.h"
#include "storage/file_io.h"
#include "storage/snapshot.h"
#include "storage/storage_error.h"
#include "util/string_utils.h"

namespace causumx {

namespace {

// Registry snapshot container identity (storage/snapshot.h). The file
// extension deliberately differs from the service's per-table `.snap`
// files so ExplanationService::RestoreAll never tries to parse it as a
// table snapshot.
constexpr char kMonitorSnapshotKind[] = "causumx-monitors";
constexpr uint32_t kMonitorSnapshotVersion = 1;
constexpr char kMonitorSnapshotFile[] = "causumx-monitors.monsnap";

// "group_by": JSON array of attribute names or an "A,B" comma string
// (the same shapes the batch executor accepts).
std::vector<std::string> ParseGroupBy(const JsonValue& spec) {
  const JsonValue* gb = spec.Find("group_by");
  if (gb == nullptr) {
    throw std::runtime_error("monitor spec is missing \"group_by\"");
  }
  std::vector<std::string> out;
  if (gb->kind() == JsonValue::Kind::kArray) {
    for (const auto& v : gb->AsArray()) out.push_back(v.AsString());
  } else {
    for (auto& part : Split(gb->AsString(), ',')) out.push_back(Trim(part));
  }
  if (out.empty()) throw std::runtime_error("monitor \"group_by\" is empty");
  return out;
}

// Optional list-of-strings field, array or comma-string shaped.
std::vector<std::string> ParseAttrList(const JsonValue& spec,
                                       const std::string& key) {
  const JsonValue* v = spec.Find(key);
  if (v == nullptr) return {};
  std::vector<std::string> out;
  if (v->kind() == JsonValue::Kind::kArray) {
    for (const auto& item : v->AsArray()) out.push_back(item.AsString());
  } else {
    for (auto& part : Split(v->AsString(), ',')) out.push_back(Trim(part));
  }
  return out;
}

// The monitor's DAG sources, in priority order: inline "dag_text", a
// "dag" file path, a "discover" algorithm run over the creation-time
// table (the window is empty at creation, so discovery needs the bound
// table's data), or the no-DAG default.
CausalDag ResolveMonitorDag(const JsonValue& spec, const Table& table,
                            const std::string& outcome) {
  const std::string dag_text = spec.GetString("dag_text");
  if (!dag_text.empty()) return ParseDagText(dag_text);
  const std::string dag_path = spec.GetString("dag");
  if (!dag_path.empty()) return ReadDagFile(dag_path);
  const std::string discover = ToLower(spec.GetString("discover"));
  if (discover.empty() || discover == "nodag") {
    return MakeNoDag(table, outcome);
  }
  if (discover == "pc") {
    return DiscoverDag(table, DiscoveryAlgorithm::kPc, outcome);
  }
  if (discover == "fci") {
    return DiscoverDag(table, DiscoveryAlgorithm::kFci, outcome);
  }
  if (discover == "lingam") {
    return DiscoverDag(table, DiscoveryAlgorithm::kLingam, outcome);
  }
  throw std::runtime_error("monitor: unknown \"discover\" algorithm: " +
                           discover);
}

// A spec integer >= `min`; throws naming the field on anything else.
size_t ParseSpecCount(const JsonValue& holder, const std::string& key,
                      double fallback, double min) {
  const double v = holder.GetNumber(key, fallback);
  if (v < min || v != std::floor(v)) {
    throw std::runtime_error("monitor: \"" + key + "\" must be an integer >= " +
                             std::to_string(static_cast<long long>(min)));
  }
  return static_cast<size_t>(v);
}

}  // namespace

StreamMonitor::StreamMonitor(std::string id, std::string spec_json,
                             const Table& bound_table,
                             ThreadPool* mining_pool)
    : id_(std::move(id)), spec_json_(std::move(spec_json)) {
  const JsonValue spec = JsonValue::Parse(spec_json_);

  table_name_ = spec.GetString("table");
  if (table_name_.empty()) {
    throw std::runtime_error("monitor spec is missing \"table\"");
  }

  query_.group_by = ParseGroupBy(spec);
  query_.avg_attribute = spec.GetString("avg");
  if (query_.avg_attribute.empty()) {
    throw std::runtime_error("monitor spec is missing \"avg\"");
  }
  const std::string where = spec.GetString("where");
  if (!where.empty()) {
    query_.where = Pattern({ParseWherePredicate(where, bound_table)});
  }

  dag_ = ResolveMonitorDag(spec, bound_table, query_.avg_attribute);

  config_.k = ParseSpecCount(spec, "k", 5, 1);
  config_.theta = spec.GetNumber("theta", 0.75);
  config_.apriori_support = spec.GetNumber("support", 0.1);
  config_.treatment.alpha = spec.GetNumber("alpha", 0.05);
  config_.grouping_attribute_allowlist = ParseAttrList(spec, "grouping_attrs");
  config_.treatment_attribute_allowlist =
      ParseAttrList(spec, "treatment_attrs");
  config_.grouping.include_per_group_patterns = spec.GetBool(
      "per_group_patterns", config_.grouping.include_per_group_patterns);
  config_.num_threads = ParseSpecCount(spec, "num_threads", 0, 0);
  config_.num_shards = ParseSpecCount(spec, "num_shards", 0, 0);
  config_.estimator.min_group_size = ParseSpecCount(
      spec, "min_group_size",
      static_cast<double>(config_.estimator.min_group_size), 1);

  const JsonValue* win = spec.Find("window");
  if (win == nullptr) {
    throw std::runtime_error("monitor spec is missing \"window\"");
  }
  const std::string kind = ToLower(win->GetString("kind", "tumbling"));
  if (kind == "tumbling") {
    window_.kind = WindowSpec::Kind::kTumbling;
  } else if (kind == "sliding") {
    window_.kind = WindowSpec::Kind::kSliding;
  } else {
    throw std::runtime_error("monitor window: unknown kind \"" + kind + "\"");
  }
  window_.size_rows = ParseSpecCount(*win, "size_rows", 0, 1);
  if (window_.kind == WindowSpec::Kind::kTumbling) {
    window_.slide_rows = window_.size_rows;
  } else {
    window_.slide_rows = ParseSpecCount(*win, "slide_rows", 0, 1);
    if (window_.slide_rows > window_.size_rows) {
      throw std::runtime_error(
          "monitor window: \"slide_rows\" must not exceed \"size_rows\" "
          "(rows would never expire cleanly)");
    }
  }

  if (const JsonValue* th = spec.Find("thresholds")) {
    thresholds_.cate_delta = th->GetNumber("cate_delta", 0.0);
    thresholds_.topk_churn = th->GetNumber("topk_churn", 0.0);
    if (thresholds_.cate_delta < 0.0 || thresholds_.topk_churn < 0.0 ||
        thresholds_.topk_churn > 1.0) {
      throw std::runtime_error(
          "monitor thresholds: \"cate_delta\" must be >= 0 and "
          "\"topk_churn\" in [0, 1]");
    }
  }
  emit_summaries_ = spec.GetBool("emit_summaries", false);
  max_events_ = ParseSpecCount(spec, "max_events", 4096, 1);

  const std::string compression = ToLower(spec.GetString("compression"));
  if (compression.empty() || compression == "auto") {
    compression_ = SegmentCompression::kAuto;
  } else if (compression == "never") {
    compression_ = SegmentCompression::kNever;
  } else if (compression == "always") {
    compression_ = SegmentCompression::kAlways;
  } else {
    throw std::runtime_error("monitor: unknown \"compression\" policy \"" +
                             compression + "\"");
  }

  schema_.reserve(bound_table.NumColumns());
  for (size_t c = 0; c < bound_table.NumColumns(); ++c) {
    schema_.emplace_back(bound_table.column(c).name(),
                         bound_table.column(c).type());
  }
  mining_pool_ = config_.num_threads == 0 ? mining_pool : nullptr;

  Table empty;
  for (const auto& [name, type] : schema_) empty.AddColumn(name, type);
  window_table_ = std::make_shared<const Table>(std::move(empty));
  next_boundary_ = window_.size_rows;
}

EvalEngineOptions StreamMonitor::EngineOptions() const {
  EvalEngineOptions options;
  options.cache_enabled = !config_.disable_eval_cache;
  options.num_shards = config_.num_shards;
  options.pool = nullptr;  // window shard work runs serial (windows are small)
  options.compression = compression_;
  return options;
}

void StreamMonitor::OnAppend(const std::vector<std::vector<Value>>& rows) {
  util::MutexLock lock(mu_);
  // Piecewise: append up to the next boundary, evaluate, repeat — so one
  // large batch crossing several boundaries emits exactly the same
  // windows (and events) as the same rows arriving one at a time.
  size_t i = 0;
  while (i < rows.size()) {
    const uint64_t until = next_boundary_ - rows_observed_;
    const size_t take = static_cast<size_t>(
        std::min<uint64_t>(rows.size() - i, until));
    if (take > 0) AppendToWindowLocked(rows, i, i + take);
    rows_observed_ += take;
    i += take;
    if (rows_observed_ == next_boundary_) {
      const uint64_t begin = next_boundary_ - window_.size_rows;
      const size_t drop = static_cast<size_t>(begin - window_begin_);
      if (drop > 0) CompactLocked(drop);
      // causumx-analyzer: allow(lock-blocking) intentional: mu_ IS the
      // monitor's serialization of window evaluation — appends, status
      // reads, and snapshot exports must observe whole windows, never a
      // half-evaluated boundary, so the mining run stays under the lock.
      EvaluateWindowLocked(windows_evaluated_, begin, next_boundary_);
      ++windows_evaluated_;
      next_boundary_ += window_.slide_rows;
    }
  }
}

void StreamMonitor::AppendToWindowLocked(
    const std::vector<std::vector<Value>>& rows, size_t begin, size_t end) {
  Table grown = window_table_->Clone();
  if (begin == 0 && end == rows.size()) {
    grown.AppendRows(rows);
  } else {
    grown.AppendRows(std::vector<std::vector<Value>>(
        rows.begin() + static_cast<ptrdiff_t>(begin),
        rows.begin() + static_cast<ptrdiff_t>(end)));
  }
  auto table = std::make_shared<const Table>(std::move(grown));
  if (engine_ == nullptr) {
    // First rows of the stream: build the triple cold.
    engine_ = std::make_shared<EvalEngine>(table, EngineOptions());
    context_ =
        std::make_shared<EstimatorContext>(engine_, dag_, config_.estimator);
  } else {
    // Grow-only migration: cached segments evaluate only the delta rows
    // and memo entries over untouched subpopulations stay warm.
    engine_ = std::make_shared<EvalEngine>(table, *engine_);
    context_ = std::make_shared<EstimatorContext>(engine_, *context_);
  }
  window_table_ = std::move(table);
}

void StreamMonitor::CompactLocked(size_t drop) {
  // Table::Tail rebuilds the surviving rows exactly as a from-scratch
  // load would (fresh dictionaries in first-appearance order), and the
  // retraction constructors carry over precisely the cache/memo state
  // that is still valid — the grow-only delta logic in reverse.
  auto tail = std::make_shared<const Table>(window_table_->Tail(drop));
  engine_ = std::make_shared<EvalEngine>(tail, *engine_, drop);
  context_ = std::make_shared<EstimatorContext>(engine_, *context_, drop);
  window_table_ = std::move(tail);
  window_begin_ += drop;
}

void StreamMonitor::EvaluateWindowLocked(uint64_t window_index,
                                         uint64_t window_begin,
                                         uint64_t window_end) {
  CandidateMiningResult mined = MineExplanationCandidates(
      *window_table_, query_, dag_, config_, engine_, context_, mining_pool_);
  ExplanationSummary summary;
  if (mined.view.NumGroups() > 0) {
    summary = SelectExplanations(mined.candidates, mined.view.NumGroups(),
                                 config_, &mined.timings, mining_pool_);
  }

  // New diff baseline, keyed by the grouping pattern's canonical
  // rendering (value-based — survives the dictionary re-coding of
  // window compaction).
  std::map<std::string, SideEffects> effects;
  std::vector<std::string> topk;
  for (const Explanation& e : summary.explanations) {
    const std::string key = e.grouping_pattern.ToString();
    topk.push_back(key);
    SideEffects& side = effects[key];
    if (e.positive.has_value()) {
      side.has_positive = true;
      side.positive = e.positive->effect.cate;
    }
    if (e.negative.has_value()) {
      side.has_negative = true;
      side.negative = e.negative->effect.cate;
    }
  }

  if (emit_summaries_) {
    JsonWriter w;
    const uint64_t seq =
        BeginEventLocked(w, "summary", window_index, window_begin, window_end);
    w.Key("summary").Raw(SummaryToJson(summary, &query_));
    PushEventLocked(seq, w);
  }

  // Drift detection needs a previous window to compare against; the
  // first evaluated window only installs the baseline.
  if (have_prev_) {
    if (thresholds_.cate_delta > 0.0) {
      for (const auto& [key, side] : effects) {
        auto it = prev_effects_.find(key);
        if (it == prev_effects_.end()) continue;
        const SideEffects& prev = it->second;
        const struct {
          const char* name;
          bool both;
          double before;
          double after;
        } sides[] = {
            {"positive", side.has_positive && prev.has_positive,
             prev.positive, side.positive},
            {"negative", side.has_negative && prev.has_negative,
             prev.negative, side.negative},
        };
        for (const auto& s : sides) {
          if (!s.both) continue;
          const double delta = std::fabs(s.after - s.before);
          if (delta < thresholds_.cate_delta) continue;
          JsonWriter w;
          const uint64_t seq = BeginEventLocked(w, "cate_drift", window_index,
                                                window_begin, window_end);
          w.Key("grouping").String(key);
          w.Key("side").String(s.name);
          w.Key("cate_before").Double(s.before);
          w.Key("cate_after").Double(s.after);
          w.Key("delta").Double(delta);
          PushEventLocked(seq, w);
        }
      }
    }
    if (thresholds_.topk_churn > 0.0 && !topk.empty()) {
      const std::set<std::string> prev_set(prev_topk_.begin(),
                                           prev_topk_.end());
      std::vector<std::string> entered;
      for (const std::string& key : topk) {
        if (prev_set.count(key) == 0) entered.push_back(key);
      }
      const double churn =
          static_cast<double>(entered.size()) / static_cast<double>(topk.size());
      if (churn >= thresholds_.topk_churn) {
        std::vector<std::string> left;
        for (const std::string& key : prev_topk_) {
          if (effects.find(key) == effects.end()) left.push_back(key);
        }
        JsonWriter w;
        const uint64_t seq = BeginEventLocked(w, "topk_churn", window_index,
                                              window_begin, window_end);
        w.Key("churn").Double(churn);
        w.Key("entered").BeginArray();
        for (const std::string& key : entered) w.String(key);
        w.EndArray();
        w.Key("left").BeginArray();
        for (const std::string& key : left) w.String(key);
        w.EndArray();
        PushEventLocked(seq, w);
      }
    }
  }

  prev_effects_ = std::move(effects);
  prev_topk_ = std::move(topk);
  have_prev_ = true;
}

uint64_t StreamMonitor::BeginEventLocked(JsonWriter& w, const char* type,
                                         uint64_t window_index,
                                         uint64_t window_begin,
                                         uint64_t window_end) {
  const uint64_t seq = next_seq_++;
  w.BeginObject()
      .Key("seq").Uint(seq)
      .Key("monitor").String(id_)
      .Key("type").String(type)
      .Key("window_index").Uint(window_index)
      .Key("window_begin").Uint(window_begin)
      .Key("window_end").Uint(window_end);
  return seq;
}

void StreamMonitor::PushEventLocked(uint64_t seq, JsonWriter& w) {
  w.EndObject();
  events_.push_back(MonitorEvent{seq, w.str()});
  while (events_.size() > max_events_) events_.pop_front();
  events_cv_.NotifyAll();
}

MonitorStatus StreamMonitor::Status() const {
  util::MutexLock lock(mu_);
  MonitorStatus s;
  s.id = id_;
  s.table = table_name_;
  s.rows_observed = rows_observed_;
  s.windows_evaluated = windows_evaluated_;
  s.last_seq = next_seq_ - 1;
  s.window_rows = window_table_->NumRows();
  s.events_buffered = events_.size();
  s.cache_bytes = (engine_ != nullptr ? engine_->CacheBytes() : 0) +
                  (context_ != nullptr ? context_->CacheBytes() : 0);
  return s;
}

std::vector<MonitorEvent> StreamMonitor::EventsSinceLocked(
    uint64_t since) const {
  auto it = std::lower_bound(
      events_.begin(), events_.end(), since,
      [](const MonitorEvent& e, uint64_t s) { return e.seq <= s; });
  return std::vector<MonitorEvent>(it, events_.end());
}

std::vector<MonitorEvent> StreamMonitor::EventsSince(uint64_t since) const {
  util::MutexLock lock(mu_);
  return EventsSinceLocked(since);
}

std::vector<MonitorEvent> StreamMonitor::WaitEventsSince(uint64_t since,
                                                         int64_t timeout_ms) {
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::milliseconds(std::max<int64_t>(0, timeout_ms));
  util::MutexLock lock(mu_);
  // next_seq_ - 1 is the newest assigned seq; wait while nothing newer
  // than `since` exists (re-checking after every wakeup — WaitFor may
  // wake spuriously).
  while (next_seq_ - 1 <= since) {
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) break;
    events_cv_.WaitFor(mu_, deadline - now);
  }
  return EventsSinceLocked(since);
}

std::string StreamMonitor::ExportState() const {
  util::MutexLock lock(mu_);
  ByteWriter w;
  w.PutString(id_);
  w.PutString(spec_json_);
  w.PutU64(rows_observed_);
  w.PutU64(window_begin_);
  w.PutU64(next_boundary_);
  w.PutU64(windows_evaluated_);
  w.PutU64(next_seq_);
  w.PutU8(have_prev_ ? 1 : 0);
  w.PutVarint(prev_effects_.size());
  for (const auto& [key, side] : prev_effects_) {
    w.PutString(key);
    w.PutU8(static_cast<uint8_t>((side.has_positive ? 1 : 0) |
                                 (side.has_negative ? 2 : 0)));
    if (side.has_positive) w.PutDouble(side.positive);
    if (side.has_negative) w.PutDouble(side.negative);
  }
  w.PutVarint(prev_topk_.size());
  for (const std::string& key : prev_topk_) w.PutString(key);
  w.PutString(SerializeTable(*window_table_));
  w.PutString(engine_ != nullptr ? engine_->ExportCacheState()
                                 : std::string());
  w.PutString(context_ != nullptr ? context_->ExportMemoState()
                                  : std::string());
  w.PutVarint(events_.size());
  for (const MonitorEvent& e : events_) {
    w.PutU64(e.seq);
    w.PutString(e.json);
  }
  return w.TakeBytes();
}

void StreamMonitor::ImportState(const std::string& bytes) {
  // Parse and validate everything into locals first: a damaged payload
  // must throw before any member mutates, leaving the fresh monitor
  // untouched (the registry then discards it).
  ByteReader r(bytes);
  if (r.GetString() != id_ || r.GetString() != spec_json_) {
    throw StorageError(StorageErrorKind::kStale,
                       "monitor snapshot: id or spec does not match");
  }
  const uint64_t rows_observed = r.GetU64();
  const uint64_t window_begin = r.GetU64();
  const uint64_t next_boundary = r.GetU64();
  const uint64_t windows_evaluated = r.GetU64();
  const uint64_t next_seq = r.GetU64();
  if (next_seq == 0) {
    throw StorageError(StorageErrorKind::kCorrupt,
                       "monitor snapshot: zero next_seq");
  }
  const bool have_prev = r.GetU8() != 0;
  std::map<std::string, SideEffects> prev_effects;
  const uint64_t n_effects = r.GetVarint();
  for (uint64_t i = 0; i < n_effects; ++i) {
    std::string key = r.GetString();
    const uint8_t mask = r.GetU8();
    SideEffects side;
    side.has_positive = (mask & 1) != 0;
    if (side.has_positive) side.positive = r.GetDouble();
    side.has_negative = (mask & 2) != 0;
    if (side.has_negative) side.negative = r.GetDouble();
    prev_effects.emplace(std::move(key), side);
  }
  std::vector<std::string> prev_topk;
  const uint64_t n_topk = r.GetVarint();
  for (uint64_t i = 0; i < n_topk; ++i) prev_topk.push_back(r.GetString());
  Table restored = DeserializeTable(r.GetString());
  if (restored.NumColumns() != schema_.size()) {
    throw StorageError(StorageErrorKind::kStale,
                       "monitor snapshot: window schema mismatch");
  }
  if (rows_observed - window_begin != restored.NumRows()) {
    throw StorageError(StorageErrorKind::kCorrupt,
                       "monitor snapshot: window row count inconsistent "
                       "with stream counters");
  }
  const std::string engine_state = r.GetString();
  const std::string memo_state = r.GetString();
  std::deque<MonitorEvent> events;
  const uint64_t n_events = r.GetVarint();
  uint64_t last = 0;
  for (uint64_t i = 0; i < n_events; ++i) {
    MonitorEvent e;
    e.seq = r.GetU64();
    e.json = r.GetString();
    if (e.seq <= last || e.seq >= next_seq) {
      throw StorageError(StorageErrorKind::kCorrupt,
                         "monitor snapshot: event seqs not monotone");
    }
    last = e.seq;
    events.push_back(std::move(e));
  }
  if (!r.AtEnd()) {
    throw StorageError(StorageErrorKind::kCorrupt,
                       "monitor snapshot: trailing bytes");
  }

  util::MutexLock lock(mu_);
  window_table_ = std::make_shared<const Table>(std::move(restored));
  engine_ = nullptr;
  context_ = nullptr;
  if (window_table_->NumRows() > 0) {
    engine_ = std::make_shared<EvalEngine>(window_table_, EngineOptions());
    context_ =
        std::make_shared<EstimatorContext>(engine_, dag_, config_.estimator);
    if (!engine_state.empty()) {
      try {
        engine_->ImportCacheState(engine_state);
        if (!memo_state.empty()) context_->ImportMemoState(memo_state);
      } catch (const StorageError&) {
        // Configuration skew (e.g. the cache was exported under a
        // different shard plan): rebuild cold. Summaries stay
        // bit-identical either way — only warmth is lost.
        engine_ = std::make_shared<EvalEngine>(window_table_, EngineOptions());
        context_ = std::make_shared<EstimatorContext>(engine_, dag_,
                                                      config_.estimator);
      }
    }
  }
  rows_observed_ = rows_observed;
  window_begin_ = window_begin;
  next_boundary_ = next_boundary;
  windows_evaluated_ = windows_evaluated;
  next_seq_ = next_seq;
  have_prev_ = have_prev;
  prev_effects_ = std::move(prev_effects);
  prev_topk_ = std::move(prev_topk);
  events_ = std::move(events);
  events_cv_.NotifyAll();
}

MonitorRegistry::MonitorRegistry(ExplanationService& service,
                                 MonitorRegistryOptions options)
    : service_(service), options_(options) {
  service_.AddAppendObserver(
      [this](const std::string& name,
             const std::vector<std::vector<Value>>& rows,
             const std::shared_ptr<const Table>&) { OnAppend(name, rows); });
}

std::shared_ptr<StreamMonitor> MonitorRegistry::Create(
    const std::string& spec_json) {
  // Resolve the watched table first so an unknown table throws before an
  // id is consumed.
  const std::string table_name =
      JsonValue::Parse(spec_json).GetString("table");
  if (table_name.empty()) {
    throw std::runtime_error("monitor spec is missing \"table\"");
  }
  const std::shared_ptr<const Table> bound = service_.GetTable(table_name);
  std::string id;
  {
    util::MutexLock lock(mu_);
    id = "m" + std::to_string(next_id_++);
  }
  auto monitor = std::make_shared<StreamMonitor>(id, spec_json, *bound,
                                                 &service_.pool());
  {
    util::MutexLock lock(mu_);
    monitors_[id] = monitor;
  }
  return monitor;
}

std::shared_ptr<StreamMonitor> MonitorRegistry::Get(
    const std::string& id) const {
  util::MutexLock lock(mu_);
  auto it = monitors_.find(id);
  return it == monitors_.end() ? nullptr : it->second;
}

bool MonitorRegistry::Remove(const std::string& id) {
  util::MutexLock lock(mu_);
  return monitors_.erase(id) > 0;
}

std::vector<std::shared_ptr<StreamMonitor>> MonitorRegistry::List() const {
  util::MutexLock lock(mu_);
  std::vector<std::shared_ptr<StreamMonitor>> out;
  out.reserve(monitors_.size());
  for (const auto& [id, monitor] : monitors_) out.push_back(monitor);
  return out;
}

void MonitorRegistry::OnAppend(const std::string& name,
                               const std::vector<std::vector<Value>>& rows) {
  // Snapshot the matching monitors under the lock, deliver outside it
  // (monitor processing mines summaries — far too heavy for mu_).
  std::vector<std::shared_ptr<StreamMonitor>> targets;
  {
    util::MutexLock lock(mu_);
    for (const auto& [id, monitor] : monitors_) {
      if (monitor->table() == name) targets.push_back(monitor);
    }
  }
  for (const auto& monitor : targets) monitor->OnAppend(rows);
  if (options_.snapshot_on_append && !targets.empty() &&
      !service_.options().data_dir.empty()) {
    // Same policy as the service's snapshot-on-append: a persistence
    // failure never unwinds processing that already happened.
    try {
      SaveSnapshot();
    } catch (const StorageError&) {
    }
  }
}

std::string MonitorRegistry::SnapshotFilePath() const {
  if (service_.options().data_dir.empty()) {
    throw std::logic_error("monitor registry: no data_dir configured");
  }
  return service_.options().data_dir + "/" + kMonitorSnapshotFile;
}

size_t MonitorRegistry::SaveSnapshot() {
  const std::string path = SnapshotFilePath();
  const std::vector<std::shared_ptr<StreamMonitor>> monitors = List();
  uint64_t next_id = 1;
  {
    util::MutexLock lock(mu_);
    next_id = next_id_;
  }
  SnapshotWriter writer(kMonitorSnapshotKind, kMonitorSnapshotVersion, "");
  {
    ByteWriter w;
    w.PutU64(next_id);
    writer.AddSection("registry", w.TakeBytes());
  }
  size_t index = 0;
  for (const auto& monitor : monitors) {
    writer.AddSection(StrFormat("monitor/%zu", index++),
                      monitor->ExportState());
  }
  const std::string bytes = writer.Serialize();
  {
    util::MutexLock lock(snapshot_mu_);
    WriteFileDurable(path, bytes);
  }
  return bytes.size();
}

size_t MonitorRegistry::RestoreMonitors() {
  const std::string path = SnapshotFilePath();
  if (!FileExists(path)) return 0;
  SnapshotReader snap = [&] {
    try {
      return SnapshotReader::ReadFile(path, kMonitorSnapshotKind,
                                      kMonitorSnapshotVersion);
    } catch (const StorageError&) {
      // Damaged or foreign file: restore nothing, never partially trust.
      return SnapshotReader::Parse(
          SnapshotWriter(kMonitorSnapshotKind, kMonitorSnapshotVersion, "")
              .Serialize(),
          kMonitorSnapshotKind, kMonitorSnapshotVersion);
    }
  }();
  uint64_t next_id = 1;
  if (snap.HasSection("registry")) {
    ByteReader r(snap.Section("registry"));
    next_id = r.GetU64();
  }
  size_t restored = 0;
  for (const std::string& name : snap.SectionNames()) {
    if (name.rfind("monitor/", 0) != 0) continue;
    const std::string& state = snap.Section(name);
    try {
      ByteReader r(state);
      const std::string id = r.GetString();
      const std::string spec = r.GetString();
      const std::string table_name =
          JsonValue::Parse(spec).GetString("table");
      // Throws when the watched table is no longer registered — the
      // monitor is skipped rather than restored against nothing.
      const std::shared_ptr<const Table> bound =
          service_.GetTable(table_name);
      auto monitor = std::make_shared<StreamMonitor>(id, spec, *bound,
                                                     &service_.pool());
      monitor->ImportState(state);
      {
        util::MutexLock lock(mu_);
        monitors_[id] = monitor;
      }
      ++restored;
    } catch (const std::exception&) {
      // Damaged payload, stale spec, or unknown table: skip this monitor.
    }
  }
  {
    util::MutexLock lock(mu_);
    if (next_id > next_id_) next_id_ = next_id;
  }
  return restored;
}

}  // namespace causumx
