#include "baselines/rule_mining.h"

#include <algorithm>
#include <cmath>

#include "mining/apriori.h"

namespace causumx {

BinnedOutcome BinOutcomeAtMean(const Table& table,
                               const std::string& outcome) {
  BinnedOutcome binned;
  const Column& col = table.column(outcome);
  binned.label.assign(table.NumRows(), 0);
  binned.valid = Bitset(table.NumRows());
  double sum = 0.0;
  size_t count = 0;
  for (size_t r = 0; r < table.NumRows(); ++r) {
    if (col.IsNull(r)) continue;
    sum += col.GetNumeric(r);  // causumx-lint: allow(fp-accumulation) serial fixed row order)
    ++count;
  }
  binned.threshold = count ? sum / static_cast<double>(count) : 0.0;
  for (size_t r = 0; r < table.NumRows(); ++r) {
    if (col.IsNull(r)) continue;
    binned.valid.Set(r);
    if (col.GetNumeric(r) >= binned.threshold) {
      binned.label[r] = 1;
      ++binned.positives;
    }
  }
  return binned;
}

std::vector<CandidateRule> MineCandidateRules(
    const Table& table, const BinnedOutcome& outcome,
    const std::vector<std::string>& attributes,
    const RuleMiningOptions& opt, EvalEngine* engine) {
  std::vector<std::string> attrs = attributes;
  if (attrs.empty()) attrs = table.ColumnNames();

  AprioriOptions ap;
  ap.min_support = opt.min_support;
  ap.max_length = opt.max_length;
  ap.max_values_per_attribute = opt.max_values_per_attribute;
  const std::vector<FrequentPattern> frequent =
      MineFrequentPatterns(table, attrs, ap, engine);

  const double base_rate =
      outcome.valid.Count() == 0
          ? 0.0
          : static_cast<double>(outcome.positives) /
                static_cast<double>(outcome.valid.Count());

  std::vector<CandidateRule> rules;
  rules.reserve(frequent.size());
  for (const auto& fp : frequent) {
    CandidateRule rule;
    rule.pattern = fp.pattern;
    rule.rows = fp.rows & outcome.valid;
    rule.support = rule.rows.Count();
    if (rule.support == 0) continue;
    for (size_t r : rule.rows.ToIndices()) {
      rule.positives += outcome.label[r];
    }
    rules.push_back(std::move(rule));
  }

  // Keep the most discriminative rules by |lift - 1|.
  if (rules.size() > opt.max_rules) {
    std::sort(rules.begin(), rules.end(),
              [base_rate](const CandidateRule& a, const CandidateRule& b) {
                const double la =
                    std::fabs(a.PositiveRate() - base_rate);
                const double lb =
                    std::fabs(b.PositiveRate() - base_rate);
                return la > lb;
              });
    rules.resize(opt.max_rules);
  }
  return rules;
}

}  // namespace causumx
