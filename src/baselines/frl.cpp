#include "baselines/frl.h"

#include <algorithm>

namespace causumx {

FrlResult RunFrl(const Table& table, const std::string& outcome,
                 const FrlConfig& config) {
  FrlResult result;
  const BinnedOutcome binned = BinOutcomeAtMean(table, outcome);
  const size_t n = binned.valid.Count();
  if (n == 0) return result;

  std::vector<std::string> attrs;
  for (const auto& name : table.ColumnNames()) {
    if (name != outcome) attrs.push_back(name);
  }
  std::vector<CandidateRule> candidates =
      MineCandidateRules(table, binned, attrs, config.mining);

  Bitset remaining = binned.valid;
  std::vector<char> taken(candidates.size(), 0);
  double last_probability = 1.0;

  while (result.rules.size() < config.max_rules && remaining.Any()) {
    size_t best_idx = candidates.size();
    double best_rate = -1.0;
    size_t best_support = 0;
    for (size_t i = 0; i < candidates.size(); ++i) {
      if (taken[i]) continue;
      const Bitset active = candidates[i].rows & remaining;
      const size_t support = active.Count();
      if (support < config.min_rule_support) continue;
      size_t pos = 0;
      for (size_t r : active.ToIndices()) pos += binned.label[r];
      const double rate =
          static_cast<double>(pos) / static_cast<double>(support);
      // Falling property: the next rule may not exceed the previous one.
      if (rate > last_probability + 1e-12) continue;
      if (rate > best_rate ||
          (rate == best_rate && support > best_support)) {
        best_rate = rate;
        best_idx = i;
        best_support = support;
      }
    }
    if (best_idx == candidates.size()) break;
    taken[best_idx] = 1;
    const Bitset active = candidates[best_idx].rows & remaining;
    FrlRule rule;
    rule.pattern = candidates[best_idx].pattern;
    rule.probability = best_rate;
    rule.support = active.Count();
    result.rules.push_back(std::move(rule));
    last_probability = best_rate;
    // Remove decided tuples.
    for (size_t r : active.ToIndices()) remaining.Clear(r);
  }

  // Default stratum.
  size_t rem_pos = 0;
  for (size_t r : remaining.ToIndices()) rem_pos += binned.label[r];
  result.default_probability =
      remaining.Any() ? static_cast<double>(rem_pos) /
                            static_cast<double>(remaining.Count())
                      : 0.0;

  // Training accuracy at the 0.5 threshold.
  size_t correct = 0;
  for (size_t r : binned.valid.ToIndices()) {
    double p = result.default_probability;
    for (const auto& rule : result.rules) {
      if (rule.pattern.Matches(table, r)) {
        p = rule.probability;
        break;
      }
    }
    const int prediction = p >= 0.5 ? 1 : 0;
    if (prediction == binned.label[r]) ++correct;
  }
  result.accuracy = static_cast<double>(correct) / static_cast<double>(n);
  return result;
}

}  // namespace causumx
