// Explanation-Table baseline (El Gebaly et al., VLDB 2014) and its
// query-aware variant Explanation-Table-G (Section 6.1 of the paper).
//
// An explanation table is a small list of patterns that best summarize
// the distribution of a binary outcome: patterns are added greedily by
// information gain — the reduction in KL divergence between the data and
// a maximum-entropy estimate constrained by the selected patterns'
// positive rates. We implement the standard greedy with the common
// single-pass "richer pattern beats subsumed pattern" refinement and
// sample-based gain estimation, matching the original's sampling design.

#ifndef CAUSUMX_BASELINES_EXPLANATION_TABLE_H_
#define CAUSUMX_BASELINES_EXPLANATION_TABLE_H_

#include <string>
#include <vector>

#include "baselines/rule_mining.h"
#include "dataset/group_query.h"
#include "dataset/table.h"

namespace causumx {

struct ExplanationTableConfig {
  size_t max_patterns = 5;
  RuleMiningOptions mining;
  /// Rows sampled for gain estimation (0 = all).
  size_t sample_rows = 20'000;
  uint64_t seed = 97;
};

struct ExplanationTableEntry {
  Pattern pattern;
  size_t support = 0;
  double positive_rate = 0.0;
  double gain = 0.0;  ///< KL-divergence reduction when added.
};

struct ExplanationTableResult {
  std::vector<ExplanationTableEntry> entries;
  double final_kl = 0.0;  ///< residual divergence after all entries.
};

/// Runs Explanation-Table on the whole relation (ignores the query, as
/// the original does).
ExplanationTableResult RunExplanationTable(
    const Table& table, const std::string& outcome,
    const ExplanationTableConfig& config = {});

/// Explanation-Table-G: runs the above separately within each group
/// subset of the view (the paper's query-aware variant).
std::vector<std::pair<std::string, ExplanationTableResult>>
RunExplanationTableG(const Table& table, const AggregateView& view,
                     const std::string& outcome,
                     const ExplanationTableConfig& config = {});

}  // namespace causumx

#endif  // CAUSUMX_BASELINES_EXPLANATION_TABLE_H_
