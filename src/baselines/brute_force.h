// The Brute-Force and Brute-Force-LP baselines (Section 6.1).
//
// Brute-Force enumerates *all* grouping patterns (every conjunction of
// equality predicates over the FD attributes up to a depth cap, plus the
// per-group patterns) and *all* treatment patterns up to a depth cap,
// evaluates every CATE, and solves the selection exactly (branch and
// bound over the Fig. 5 ILP). Brute-Force-LP replaces the exact last step
// with LP rounding. Exponential — usable only on small inputs, exactly as
// the paper reports (only German finished within the cutoff).

#ifndef CAUSUMX_BASELINES_BRUTE_FORCE_H_
#define CAUSUMX_BASELINES_BRUTE_FORCE_H_

#include "core/causumx.h"

namespace causumx {

struct BruteForceConfig {
  size_t k = 5;
  double theta = 0.75;
  size_t max_grouping_depth = 2;
  size_t max_treatment_depth = 2;
  EstimatorOptions estimator;
  TreatmentMinerOptions treatment;  ///< atom generation settings reused.
  /// Use LP rounding (Brute-Force-LP) instead of the exact ILP.
  bool use_lp_rounding = false;
  uint64_t seed = 1234;
  size_t num_threads = 0;
  /// Safety valve: abort enumeration after this many CATE evaluations
  /// (0 = unlimited). The paper's 3h cutoff analog.
  size_t max_cate_evaluations = 0;
};

struct BruteForceResult {
  ExplanationSummary summary;
  size_t grouping_patterns_enumerated = 0;
  size_t treatment_patterns_enumerated = 0;
  size_t cate_evaluations = 0;
  bool hit_evaluation_cap = false;
  EngineCacheStats cache_stats;
};

/// Runs the exhaustive baseline.
///
/// When `engine` is non-null (must be bound to `table`), predicate
/// bitsets are shared with whatever else uses the engine — e.g. a
/// CauSumX run on the same table. Pass that run's `estimator_ctx`
/// (which must be bound to the same engine; its options then supersede
/// config.estimator) to also share its CATE memo, so head-to-head
/// comparisons measure the algorithms, not redundant evaluation.
BruteForceResult RunBruteForce(
    const Table& table, const GroupByAvgQuery& query, const CausalDag& dag,
    const BruteForceConfig& config = {},
    std::shared_ptr<EvalEngine> engine = nullptr,
    std::shared_ptr<EstimatorContext> estimator_ctx = nullptr);

}  // namespace causumx

#endif  // CAUSUMX_BASELINES_BRUTE_FORCE_H_
