// FRL-style Falling Rule List baseline (Chen & Rudin 2018), as used in
// the paper's quality comparison.
//
// A falling rule list is an ordered sequence of if-then rules whose
// positive-outcome probabilities are monotonically non-increasing: the
// first rule captures the highest-risk stratum, and so on. We build the
// list greedily — repeatedly appending the unused candidate rule with the
// highest positive rate on the *remaining* (uncovered) tuples, subject to
// a minimum support — which directly enforces the falling property.

#ifndef CAUSUMX_BASELINES_FRL_H_
#define CAUSUMX_BASELINES_FRL_H_

#include <string>
#include <vector>

#include "baselines/rule_mining.h"
#include "dataset/table.h"

namespace causumx {

struct FrlConfig {
  size_t max_rules = 5;
  size_t min_rule_support = 50;  ///< on remaining tuples.
  RuleMiningOptions mining;
};

struct FrlRule {
  Pattern pattern;
  double probability = 0.0;  ///< P(outcome = 1 | reached & matched).
  size_t support = 0;        ///< tuples this rule decided.
};

struct FrlResult {
  std::vector<FrlRule> rules;  ///< probabilities non-increasing.
  double default_probability = 0.0;  ///< P(1) among undecided tuples.
  double accuracy = 0.0;       ///< training accuracy at the 0.5 cut.
};

FrlResult RunFrl(const Table& table, const std::string& outcome,
                 const FrlConfig& config = {});

}  // namespace causumx

#endif  // CAUSUMX_BASELINES_FRL_H_
