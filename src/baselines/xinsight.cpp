#include "baselines/xinsight.h"

#include <algorithm>
#include <cmath>

namespace causumx {

XInsightResult RunXInsight(const Table& table, const AggregateView& view,
                           const CausalDag& dag,
                           const std::vector<std::string>& treatment_attrs,
                           const XInsightConfig& config) {
  XInsightResult result;
  const size_t m = view.NumGroups();
  result.pairs_total = m * (m - 1) / 2;

  EffectEstimator estimator(table, dag, config.estimator);
  const std::string& outcome = view.query().avg_attribute;

  // Shared atom set; per-pair we compare each atom's CATE in both groups.
  const std::vector<SimplePredicate> atoms =
      GenerateAtomicTreatments(table, treatment_attrs, config.treatment);

  // Row masks per group.
  std::vector<Bitset> group_rows(m, Bitset(table.NumRows()));
  for (size_t g = 0; g < m; ++g) {
    for (size_t r : view.group(g).rows) group_rows[g].Set(r);
  }

  // Cache per-group CATE of each atom (computed lazily).
  std::vector<std::vector<double>> cate(m);
  std::vector<std::vector<char>> cate_valid(m);
  auto group_cates = [&](size_t g) {
    if (!cate[g].empty()) return;
    cate[g].assign(atoms.size(), 0.0);
    cate_valid[g].assign(atoms.size(), 0);
    for (size_t a = 0; a < atoms.size(); ++a) {
      const EffectEstimate est = estimator.EstimateCate(
          Pattern({atoms[a]}), outcome, group_rows[g]);
      if (est.Significant(config.treatment.alpha)) {
        cate[g][a] = est.cate;
        cate_valid[g][a] = 1;
      }
    }
  };

  for (size_t a = 0; a < m; ++a) {
    for (size_t b = a + 1; b < m; ++b) {
      if (config.max_pairs != 0 &&
          result.pairs_processed >= config.max_pairs) {
        result.truncated = true;
        break;
      }
      ++result.pairs_processed;
      group_cates(a);
      group_cates(b);

      // Rank atoms by effect gap between the two groups.
      std::vector<std::pair<double, size_t>> gaps;
      for (size_t t = 0; t < atoms.size(); ++t) {
        if (!cate_valid[a][t] && !cate_valid[b][t]) continue;
        gaps.emplace_back(std::fabs(cate[a][t] - cate[b][t]), t);
      }
      std::sort(gaps.begin(), gaps.end(),
                [](const auto& x, const auto& y) { return x.first > y.first; });
      for (size_t t = 0; t < std::min(config.top_per_pair, gaps.size());
           ++t) {
        PairwiseExplanation exp;
        exp.group_a = view.group(a).KeyString();
        exp.group_b = view.group(b).KeyString();
        exp.treatment = Pattern({atoms[gaps[t].second]});
        exp.cate_a = cate[a][gaps[t].second];
        exp.cate_b = cate[b][gaps[t].second];
        exp.gap = gaps[t].first;
        result.output_bytes += exp.group_a.size() + exp.group_b.size() +
                               exp.treatment.ToString().size() + 64;
        result.explanations.push_back(std::move(exp));
      }
    }
    if (result.truncated) break;
  }
  return result;
}

}  // namespace causumx
