// XInsight-style baseline (Ma et al., SIGMOD 2023), reproducing the
// paper's comparison protocol (Section 6.2): XInsight explains the
// *difference between two groups* in a query result, so for an m-group
// view the paper runs it over all (m choose 2) pairs and reports the
// resulting explanation's size and character.
//
// For each pair (s_a, s_b), we find the treatment patterns whose CATE
// within s_a differs most from its CATE within s_b (the causal drivers of
// the gap), following the paper's note that on two-group queries the
// treatments XInsight and CauSumX surface coincide.

#ifndef CAUSUMX_BASELINES_XINSIGHT_H_
#define CAUSUMX_BASELINES_XINSIGHT_H_

#include <string>
#include <vector>

#include "causal/estimator_types.h"
#include "dataset/group_query.h"
#include "mining/treatment_miner.h"

namespace causumx {

struct XInsightConfig {
  /// Explanations reported per group pair.
  size_t top_per_pair = 2;
  /// Cap on pairs processed (0 = all); the paper notes the all-pairs run
  /// on Accidents exceeded its time cutoff — this is the analogous guard.
  size_t max_pairs = 0;
  TreatmentMinerOptions treatment;
  EstimatorOptions estimator;
};

/// One pairwise explanation: the treatment whose effect gap between the
/// two groups is largest.
struct PairwiseExplanation {
  std::string group_a;
  std::string group_b;
  Pattern treatment;
  double cate_a = 0.0;
  double cate_b = 0.0;
  double gap = 0.0;  ///< |cate_a - cate_b|.
};

struct XInsightResult {
  std::vector<PairwiseExplanation> explanations;
  size_t pairs_processed = 0;
  size_t pairs_total = 0;
  bool truncated = false;  ///< hit max_pairs.
  /// Rendered size of the full explanation in bytes (the paper reports
  /// XInsight's SO output exceeding 500KB).
  size_t output_bytes = 0;
};

XInsightResult RunXInsight(const Table& table, const AggregateView& view,
                           const CausalDag& dag,
                           const std::vector<std::string>& treatment_attrs,
                           const XInsightConfig& config = {});

}  // namespace causumx

#endif  // CAUSUMX_BASELINES_XINSIGHT_H_
