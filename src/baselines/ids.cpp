#include "baselines/ids.h"

#include <algorithm>
#include <cmath>

namespace causumx {

IdsResult RunIds(const Table& table, const std::string& outcome,
                 const IdsConfig& config) {
  IdsResult result;
  const BinnedOutcome binned = BinOutcomeAtMean(table, outcome);
  const size_t n = binned.valid.Count();
  if (n == 0) return result;

  std::vector<std::string> attrs;
  for (const auto& name : table.ColumnNames()) {
    if (name != outcome) attrs.push_back(name);
  }
  std::vector<CandidateRule> candidates =
      MineCandidateRules(table, binned, attrs, config.mining);

  // Greedy maximization of the IDS-style objective: at each step add the
  // (rule, class) whose marginal gain in
  //   w_acc * correct-coverage + w_cov * new-coverage
  //   - w_overlap * overlap - w_len * length
  // is largest and positive.
  Bitset covered(table.NumRows());
  std::vector<char> taken(candidates.size(), 0);
  const double nd = static_cast<double>(n);

  while (result.rules.size() < config.max_rules) {
    double best_gain = 0.0;
    size_t best_idx = candidates.size();
    int best_class = 1;
    for (size_t i = 0; i < candidates.size(); ++i) {
      if (taken[i]) continue;
      const CandidateRule& rule = candidates[i];
      const double rate = rule.PositiveRate();
      const int cls = rate >= 0.5 ? 1 : 0;
      const size_t correct =
          cls == 1 ? rule.positives : rule.support - rule.positives;
      const Bitset overlap_bits = rule.rows & covered;
      const double overlap = static_cast<double>(overlap_bits.Count());
      const double new_cov =
          static_cast<double>(rule.support) - overlap;
      const double gain =
          config.w_accuracy * static_cast<double>(correct) / nd +
          config.w_coverage * new_cov / nd -
          config.w_overlap * overlap / nd -
          config.w_length * static_cast<double>(rule.pattern.Size()) /
              10.0;
      if (gain > best_gain) {
        best_gain = gain;
        best_idx = i;
        best_class = cls;
      }
    }
    if (best_idx == candidates.size()) break;
    taken[best_idx] = 1;
    const CandidateRule& rule = candidates[best_idx];
    IdsRule selected;
    selected.pattern = rule.pattern;
    selected.predicted_class = best_class;
    selected.confidence =
        best_class == 1 ? rule.PositiveRate() : 1.0 - rule.PositiveRate();
    selected.support = rule.support;
    result.rules.push_back(std::move(selected));
    covered |= rule.rows;
    if (static_cast<double>(covered.Count()) / nd >= config.min_coverage &&
        result.rules.size() >= 2) {
      break;
    }
  }

  result.covered_fraction = static_cast<double>(covered.Count()) / nd;

  // Training accuracy: first matching rule decides; default = majority.
  const int default_class =
      binned.positives * 2 >= n ? 1 : 0;
  size_t correct = 0;
  for (size_t r : binned.valid.ToIndices()) {
    int prediction = default_class;
    for (const auto& rule : result.rules) {
      if (rule.pattern.Matches(table, r)) {
        prediction = rule.predicted_class;
        break;
      }
    }
    if (prediction == binned.label[r]) ++correct;
  }
  result.accuracy = static_cast<double>(correct) / nd;
  return result;
}

}  // namespace causumx
