#include "baselines/explanation_table.h"

#include <algorithm>
#include <cmath>

#include "util/rng.h"

namespace causumx {

namespace {

// KL divergence contribution of one stratum: n * KL(p || q) with the
// usual 0 log 0 = 0 conventions.
double KlTerm(double n, double p, double q) {
  if (n <= 0) return 0.0;
  q = std::min(1.0 - 1e-9, std::max(1e-9, q));
  double kl = 0.0;
  if (p > 0) kl += p * std::log(p / q);
  if (p < 1) kl += (1 - p) * std::log((1 - p) / (1 - q));
  return n * kl;
}

// Residual divergence of the max-ent style estimate induced by a set of
// selected patterns: tuples are stratified by their pattern-match
// signature; the estimate assigns each stratum its empirical rate under
// the *selected* patterns only (iterative scaling approximated by
// signature-stratification — exact when patterns are nested or disjoint,
// the common case for greedy selections).
double ResidualKl(const Table& table, const std::vector<uint8_t>& label,
                  const std::vector<size_t>& rows,
                  const std::vector<Pattern>& selected) {
  // Signature per row.
  std::vector<uint32_t> sig(rows.size(), 0);
  for (size_t p = 0; p < selected.size(); ++p) {
    for (size_t i = 0; i < rows.size(); ++i) {
      if (selected[p].Matches(table, rows[i])) {
        sig[i] |= (1u << p);
      }
    }
  }
  // Stratum stats.
  struct Stat {
    double n = 0, pos = 0;
  };
  std::vector<std::pair<uint32_t, Stat>> strata;
  auto find = [&strata](uint32_t s) -> Stat& {
    for (auto& [key, st] : strata) {
      if (key == s) return st;
    }
    strata.emplace_back(s, Stat{});
    return strata.back().second;
  };
  for (size_t i = 0; i < rows.size(); ++i) {
    Stat& st = find(sig[i]);
    st.n += 1;
    st.pos += label[rows[i]];
  }
  // Within each stratum the estimate equals the stratum rate -> KL of the
  // stratum against itself is 0; the divergence that remains is the
  // per-tuple label uncertainty, measured against the stratum estimate.
  double kl = 0.0;
  for (const auto& [_, st] : strata) {
    const double q = st.n > 0 ? st.pos / st.n : 0.0;
    // Each tuple is 0/1; sum of KL(label_i || q).
    // causumx-lint: allow(fp-accumulation) serial loop, insertion-ordered strata)
    kl += KlTerm(st.pos, 1.0, q) + KlTerm(st.n - st.pos, 0.0, q);
  }
  return kl;
}

}  // namespace

ExplanationTableResult RunExplanationTable(
    const Table& table, const std::string& outcome,
    const ExplanationTableConfig& config) {
  ExplanationTableResult result;
  const BinnedOutcome binned = BinOutcomeAtMean(table, outcome);
  if (binned.valid.None()) return result;

  std::vector<std::string> attrs;
  for (const auto& name : table.ColumnNames()) {
    if (name != outcome) attrs.push_back(name);
  }
  std::vector<CandidateRule> candidates =
      MineCandidateRules(table, binned, attrs, config.mining);

  // Gain-estimation sample.
  std::vector<size_t> all_rows = binned.valid.ToIndices();
  std::vector<size_t> rows;
  if (config.sample_rows > 0 && all_rows.size() > config.sample_rows) {
    Rng rng(config.seed);
    for (size_t idx : rng.SampleIndices(all_rows.size(),
                                        config.sample_rows)) {
      rows.push_back(all_rows[idx]);
    }
    std::sort(rows.begin(), rows.end());
  } else {
    rows = std::move(all_rows);
  }

  std::vector<Pattern> selected;
  std::vector<char> taken(candidates.size(), 0);
  double current_kl =
      ResidualKl(table, binned.label, rows, selected);

  while (result.entries.size() < config.max_patterns) {
    double best_gain = 1e-9;
    size_t best_idx = candidates.size();
    double best_kl = current_kl;
    // Signature-space doubles per added pattern; cap enumeration width.
    if (selected.size() >= 16) break;
    for (size_t i = 0; i < candidates.size(); ++i) {
      if (taken[i]) continue;
      std::vector<Pattern> trial = selected;
      trial.push_back(candidates[i].pattern);
      const double kl = ResidualKl(table, binned.label, rows, trial);
      const double gain = current_kl - kl;
      if (gain > best_gain) {
        best_gain = gain;
        best_idx = i;
        best_kl = kl;
      }
    }
    if (best_idx == candidates.size()) break;
    taken[best_idx] = 1;
    selected.push_back(candidates[best_idx].pattern);
    current_kl = best_kl;

    ExplanationTableEntry entry;
    entry.pattern = candidates[best_idx].pattern;
    entry.support = candidates[best_idx].support;
    entry.positive_rate = candidates[best_idx].PositiveRate();
    entry.gain = best_gain;
    result.entries.push_back(std::move(entry));
  }
  result.final_kl = current_kl;
  return result;
}

std::vector<std::pair<std::string, ExplanationTableResult>>
RunExplanationTableG(const Table& table, const AggregateView& view,
                     const std::string& outcome,
                     const ExplanationTableConfig& config) {
  std::vector<std::pair<std::string, ExplanationTableResult>> out;
  for (size_t g = 0; g < view.NumGroups(); ++g) {
    const Table sub = table.SelectRows(view.group(g).rows);
    ExplanationTableConfig per_group = config;
    per_group.max_patterns = std::max<size_t>(1, config.max_patterns / 2);
    out.emplace_back(view.group(g).KeyString(),
                     RunExplanationTable(sub, outcome, per_group));
  }
  return out;
}

}  // namespace causumx
