// Shared rule-candidate machinery for the interpretable-prediction
// baselines (IDS, FRL) and Explanation-Table.
//
// These baselines assume a *binary* outcome; per the paper's protocol the
// outcome is binned at its mean ("we binned the outcome variable in each
// examined scenario using the average outcome values"). Candidate rules
// are frequent conjunctive equality patterns mined by the same Apriori
// core the main algorithm uses.

#ifndef CAUSUMX_BASELINES_RULE_MINING_H_
#define CAUSUMX_BASELINES_RULE_MINING_H_

#include <string>
#include <vector>

#include "dataset/pattern.h"
#include "dataset/table.h"
#include "engine/eval_engine.h"
#include "util/bitset.h"

namespace causumx {

/// A candidate rule with cached statistics against the binary outcome.
struct CandidateRule {
  Pattern pattern;
  Bitset rows;            ///< rows covered.
  size_t support = 0;
  size_t positives = 0;   ///< covered rows with outcome = 1.

  double PositiveRate() const {
    return support == 0 ? 0.0
                        : static_cast<double>(positives) /
                              static_cast<double>(support);
  }
};

/// Bins a numeric outcome at its mean: 1 if >= mean else 0.
/// Returns one flag per row (nulls -> 0 and excluded mask bit unset).
struct BinnedOutcome {
  std::vector<uint8_t> label;  ///< 0/1 per row.
  Bitset valid;                ///< rows with a non-null outcome.
  double threshold = 0.0;      ///< the mean used for binning.
  size_t positives = 0;
};

BinnedOutcome BinOutcomeAtMean(const Table& table,
                               const std::string& outcome);

struct RuleMiningOptions {
  double min_support = 0.02;
  size_t max_length = 2;
  size_t max_values_per_attribute = 40;
  size_t max_rules = 2000;  ///< keep the strongest by lift.
};

/// Mines candidate rules over `attributes` (all except the outcome when
/// empty) and annotates them with outcome statistics. When `engine` is
/// non-null, the Apriori item bitsets come from its shared predicate
/// cache (so IDS/FRL/Explanation-Table comparisons against CauSumX on
/// the same table don't re-evaluate the same equality predicates).
std::vector<CandidateRule> MineCandidateRules(
    const Table& table, const BinnedOutcome& outcome,
    const std::vector<std::string>& attributes,
    const RuleMiningOptions& options = {}, EvalEngine* engine = nullptr);

}  // namespace causumx

#endif  // CAUSUMX_BASELINES_RULE_MINING_H_
