#include "baselines/brute_force.h"

#include <algorithm>
#include <atomic>
#include <unordered_map>

#include "lp/rounding.h"
#include "mining/treatment_miner.h"
#include "util/thread_pool.h"

namespace causumx {

namespace {

// Enumerates every conjunction of equality predicates over `attributes`
// up to `max_depth`, without a support floor (that is the point of the
// brute force).
std::vector<Pattern> EnumerateEqualityPatterns(
    const Table& table, const std::vector<std::string>& attributes,
    size_t max_depth, size_t max_values_per_attribute) {
  // Per-attribute atom lists.
  std::vector<std::vector<SimplePredicate>> atoms_by_attr;
  for (const auto& name : attributes) {
    auto idx = table.ColumnIndex(name);
    if (!idx) continue;
    const Column& col = table.column(*idx);
    if (col.NumDistinct() > max_values_per_attribute) continue;
    std::vector<SimplePredicate> atoms;
    for (const Value& v : col.DistinctValues()) {
      atoms.emplace_back(name, CompareOp::kEq, v);
    }
    atoms_by_attr.push_back(std::move(atoms));
  }

  std::vector<Pattern> out;
  // Depth-first over attribute combinations (each attribute used at most
  // once — two equalities on one attribute are contradictory).
  std::vector<SimplePredicate> current;
  std::function<void(size_t)> rec = [&](size_t attr_start) {
    if (!current.empty()) out.emplace_back(current);
    if (current.size() >= max_depth) return;
    for (size_t a = attr_start; a < atoms_by_attr.size(); ++a) {
      for (const auto& atom : atoms_by_attr[a]) {
        current.push_back(atom);
        rec(a + 1);
        current.pop_back();
      }
    }
  };
  rec(0);
  return out;
}

}  // namespace

BruteForceResult RunBruteForce(const Table& table,
                               const GroupByAvgQuery& query,
                               const CausalDag& dag,
                               const BruteForceConfig& config,
                               std::shared_ptr<EvalEngine> engine,
                               std::shared_ptr<EstimatorContext> estimator_ctx) {
  if (engine == nullptr) engine = std::make_shared<EvalEngine>(table);
  if (estimator_ctx == nullptr) {
    estimator_ctx =
        std::make_shared<EstimatorContext>(engine, dag, config.estimator);
  }
  BruteForceResult result;
  const AggregateView view = AggregateView::Evaluate(table, query);
  const size_t m = view.NumGroups();
  result.summary.num_groups = m;
  if (m == 0) return result;

  const AttributePartition partition =
      PartitionAttributes(table, query.group_by, query.avg_attribute);

  // --- All grouping patterns + coverage, deduped by coverage set. ---------
  std::vector<Pattern> gpatterns = EnumerateEqualityPatterns(
      table, partition.grouping_attributes, config.max_grouping_depth, 64);
  // Per-group fallbacks (single group-by attribute only).
  if (query.group_by.size() == 1) {
    for (size_t g = 0; g < m; ++g) {
      gpatterns.push_back(Pattern({SimplePredicate(
          query.group_by[0], CompareOp::kEq, view.group(g).key[0])}));
    }
  }
  struct GroupingCandidate {
    Pattern pattern;
    Bitset rows;
    Bitset coverage;
  };
  std::vector<GroupingCandidate> grouping;
  std::unordered_map<uint64_t, size_t> by_coverage;
  for (auto& p : gpatterns) {
    ++result.grouping_patterns_enumerated;
    Bitset rows = engine->Evaluate(p);
    Bitset coverage(m);
    for (size_t g = 0; g < m; ++g) {
      const auto& grp = view.group(g);
      bool all = !grp.rows.empty();
      for (size_t r : grp.rows) {
        if (!rows.Test(r)) {
          all = false;
          break;
        }
      }
      if (all) coverage.Set(g);
    }
    if (coverage.None()) continue;
    const uint64_t h = coverage.Hash();
    auto it = by_coverage.find(h);
    if (it == by_coverage.end()) {
      by_coverage.emplace(h, grouping.size());
      grouping.push_back(
          GroupingCandidate{std::move(p), std::move(rows), std::move(coverage)});
    } else if (p.Size() < grouping[it->second].pattern.Size()) {
      grouping[it->second] =
          GroupingCandidate{std::move(p), std::move(rows), std::move(coverage)};
    }
  }

  // --- All treatment patterns (atoms from the shared generator, expanded
  // exhaustively to the depth cap). ----------------------------------------
  const std::vector<SimplePredicate> atoms = GenerateAtomicTreatments(
      table, partition.treatment_attributes, config.treatment);
  std::vector<Pattern> tpatterns;
  {
    std::vector<SimplePredicate> current;
    std::function<void(size_t)> rec = [&](size_t start) {
      if (!current.empty()) tpatterns.emplace_back(current);
      if (current.size() >= config.max_treatment_depth) return;
      for (size_t a = start; a < atoms.size(); ++a) {
        // Skip conjunctions repeating an attribute with = (contradiction).
        bool conflict = false;
        for (const auto& c : current) {
          if (c.attribute == atoms[a].attribute &&
              (c.op == CompareOp::kEq || atoms[a].op == CompareOp::kEq ||
               c.op == atoms[a].op)) {
            conflict = true;
            break;
          }
        }
        if (conflict) continue;
        current.push_back(atoms[a]);
        rec(a + 1);
        current.pop_back();
      }
    };
    rec(0);
  }
  result.treatment_patterns_enumerated = tpatterns.size();

  // --- Evaluate every (grouping, treatment) CATE. --------------------------
  EffectEstimator estimator(estimator_ctx);
  std::vector<Explanation> candidates(grouping.size());
  std::atomic<size_t> evals{0};
  std::atomic<bool> capped{false};
  ThreadPool pool(config.num_threads == 0 ? ThreadPool::DefaultThreads()
                                          : config.num_threads);
  pool.ParallelFor(grouping.size(), [&](size_t gi) {
    const GroupingCandidate& gc = grouping[gi];
    Explanation exp;
    exp.grouping_pattern = gc.pattern;
    exp.group_coverage = gc.coverage;
    std::optional<TreatmentSide> best_pos, best_neg;
    for (const auto& tp : tpatterns) {
      if (config.max_cate_evaluations != 0 &&
          evals.load() >= config.max_cate_evaluations) {
        capped.store(true);
        break;
      }
      evals.fetch_add(1);
      const EffectEstimate est =
          estimator.EstimateCate(tp, query.avg_attribute, gc.rows);
      if (!est.Significant(config.treatment.alpha)) continue;
      if (est.cate > 0 &&
          (!best_pos || est.cate > best_pos->effect.cate)) {
        best_pos = TreatmentSide{tp, est};
      }
      if (est.cate < 0 &&
          (!best_neg || est.cate < best_neg->effect.cate)) {
        best_neg = TreatmentSide{tp, est};
      }
    }
    exp.positive = best_pos;
    exp.negative = best_neg;
    candidates[gi] = std::move(exp);
  });
  result.cate_evaluations = evals.load();
  result.hit_evaluation_cap = capped.load();

  std::vector<Explanation> viable;
  for (auto& c : candidates) {
    if (c.Weight() > 0) viable.push_back(std::move(c));
  }

  // --- Exact (or LP-rounded) selection. ------------------------------------
  SelectionProblem problem;
  problem.num_groups = m;
  problem.k = config.k;
  problem.theta = config.theta;
  for (const auto& c : viable) {
    problem.candidates.push_back(
        SelectionCandidate{c.Weight(), c.group_coverage});
  }
  const SelectionResult sel =
      config.use_lp_rounding
          ? SolveByLpRounding(problem, 64, config.seed)
          : SolveExact(problem);

  Bitset covered(m);
  for (size_t j : sel.selected) {
    result.summary.explanations.push_back(viable[j]);
    result.summary.total_explainability += viable[j].Weight();
    covered |= viable[j].group_coverage;
  }
  std::sort(result.summary.explanations.begin(),
            result.summary.explanations.end(),
            [](const Explanation& a, const Explanation& b) {
              return a.Weight() > b.Weight();
            });
  result.summary.covered_groups = covered.Count();
  result.summary.coverage_satisfied =
      result.summary.covered_groups >= problem.RequiredCoverage();
  result.cache_stats.eval = engine->Stats();
  result.cache_stats.estimator = estimator.cache_stats();
  return result;
}

}  // namespace causumx
