// IDS-style Interpretable Decision Sets baseline (Lakkaraju et al. 2016),
// as used in the paper's quality comparison (Section 6.1-6.2).
//
// IDS selects a small, low-overlap set of if-then rules that jointly
// describe a binary outcome. The original optimizes a 7-term
// non-monotone submodular objective via smooth local search; consistent
// with the paper's use of IDS purely as a comparison point, we implement
// the same objective family with a deterministic greedy maximizer
// (standard practice for these objectives and orders of magnitude
// faster). Parameters mirror the paper: rule budget = k, coverage floor
// = theta.

#ifndef CAUSUMX_BASELINES_IDS_H_
#define CAUSUMX_BASELINES_IDS_H_

#include <string>
#include <vector>

#include "baselines/rule_mining.h"
#include "dataset/table.h"

namespace causumx {

struct IdsConfig {
  size_t max_rules = 5;        ///< the paper passes CauSumX's k.
  double min_coverage = 0.75;  ///< fraction of tuples to cover (theta).
  RuleMiningOptions mining;
  /// Objective weights: accuracy, coverage, overlap penalty, length
  /// penalty (normalized internally).
  double w_accuracy = 1.0;
  double w_coverage = 1.0;
  double w_overlap = 0.5;
  double w_length = 0.1;
};

/// One selected rule: pattern -> predicted class.
struct IdsRule {
  Pattern pattern;
  int predicted_class = 1;   ///< 1 = high outcome, 0 = low.
  double confidence = 0.0;   ///< empirical P(class | pattern).
  size_t support = 0;
};

struct IdsResult {
  std::vector<IdsRule> rules;
  double covered_fraction = 0.0;
  /// Training accuracy of the decision set (default class = majority).
  double accuracy = 0.0;
};

/// Runs the IDS-style baseline on the table with outcome binned at mean.
IdsResult RunIds(const Table& table, const std::string& outcome,
                 const IdsConfig& config = {});

}  // namespace causumx

#endif  // CAUSUMX_BASELINES_IDS_H_
