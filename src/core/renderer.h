// Natural-language rendering of explanation summaries.
//
// The paper's prototype pre-generated text templates (via ChatGPT) that
// turn predicates into readable sentences (Fig. 2/6/7/18/19). We ship the
// equivalent as deterministic template tables: per-dataset phrase hooks
// plus a generic fallback that verbalizes any predicate.

#ifndef CAUSUMX_CORE_RENDERER_H_
#define CAUSUMX_CORE_RENDERER_H_

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "core/explanation.h"
#include "mining/treatment_miner.h"

namespace causumx {

/// Phrase customization for a dataset/domain.
struct RenderStyle {
  /// Noun for the population, e.g. "individuals", "accidents", "loans".
  std::string subject_noun = "individuals";
  /// Noun phrase for the outcome, e.g. "annual income", "severity".
  std::string outcome_noun = "the outcome";
  /// Noun for groups, e.g. "countries", "cities", "occupations".
  std::string group_noun = "groups";
  /// Optional phrase overrides for specific predicates. Key is the
  /// predicate's ToString() (e.g. "Age < 35"); value the phrase to use
  /// (e.g. "being under 35").
  std::map<std::string, std::string> predicate_phrases;
};

/// Verbalizes one predicate using the style's overrides or the generic
/// fallback ("Age < 35" -> "Age below 35").
std::string RenderPredicate(const SimplePredicate& pred,
                            const RenderStyle& style);

/// Verbalizes a conjunctive pattern ("X and Y").
std::string RenderPattern(const Pattern& pattern, const RenderStyle& style);

/// Renders one explanation as the paper's bullet style:
///   "For <grouping>, the most substantial effect on high <outcome>
///    (effect size of E, p < P) is observed for <positive>. Conversely,
///    <negative> has the greatest adverse impact (effect size: -E,
///    p < P)."
std::string RenderExplanation(const Explanation& exp,
                              const RenderStyle& style);

/// Renders the entire summary as a bulleted block (Fig. 2 style).
std::string RenderSummary(const ExplanationSummary& summary,
                          const RenderStyle& style);

/// "p < 1e-3"-style formatting used in the paper's figures.
std::string RenderPValue(double p);

/// Renders one effect with its 95% confidence interval:
/// "36K [31K, 41K], p < 1e-3".
std::string RenderEffectWithCi(const EffectEstimate& effect);

/// Renders a ranked treatment list (the top-k drill-down of
/// ExplorationSession::TopTreatments) as numbered lines.
std::string RenderTreatmentList(const std::vector<ScoredTreatment>& list,
                                const RenderStyle& style);

}  // namespace causumx

#endif  // CAUSUMX_CORE_RENDERER_H_
