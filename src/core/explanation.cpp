#include "core/explanation.h"

#include <cmath>

namespace causumx {

double Explanation::Weight() const {
  double w = 0.0;
  if (positive && positive->effect.valid) {
    w += std::fabs(positive->effect.cate);
  }
  if (negative && negative->effect.valid) {
    w += std::fabs(negative->effect.cate);
  }
  return w;
}

}  // namespace causumx
