#include "core/json_export.h"

#include <sstream>

#include "util/json.h"

namespace causumx {

std::string JsonEscape(const std::string& s) { return JsonEscapeString(s); }

std::string PredicateToJson(const SimplePredicate& pred) {
  std::ostringstream oss;
  oss << "{\"attribute\":\"" << JsonEscape(pred.attribute) << "\",\"op\":\""
      << CompareOpSymbol(pred.op) << "\",\"value\":";
  if (pred.value.is_null()) {
    oss << "null";
  } else if (pred.value.is_string()) {
    oss << "\"" << JsonEscape(pred.value.AsString()) << "\"";
  } else if (pred.value.is_double()) {
    // Routed through the shared token helper: a non-finite constant
    // would otherwise print as bare nan/inf, which no JSON parser takes.
    oss << JsonNumberToken(pred.value.AsDouble(), 6);
  } else {
    oss << pred.value.ToString();
  }
  oss << "}";
  return oss.str();
}

std::string PatternToJson(const Pattern& pattern) {
  std::ostringstream oss;
  oss << "[";
  const auto& preds = pattern.predicates();
  for (size_t i = 0; i < preds.size(); ++i) {
    if (i) oss << ",";
    oss << PredicateToJson(preds[i]);
  }
  oss << "]";
  return oss.str();
}

std::string EffectToJson(const EffectEstimate& effect) {
  const auto [lo, hi] = effect.ConfidenceInterval();
  std::ostringstream oss;
  // An invalid estimate carries NaN in every double field; JsonNumberToken
  // turns those into null instead of bare nan tokens (invalid JSON).
  oss << "{\"valid\":" << (effect.valid ? "true" : "false")
      << ",\"cate\":" << JsonNumberToken(effect.cate, 8)
      << ",\"std_error\":" << JsonNumberToken(effect.std_error, 8)
      << ",\"p_value\":" << JsonNumberToken(effect.p_value, 8)
      << ",\"ci95\":[" << JsonNumberToken(lo, 8) << ","
      << JsonNumberToken(hi, 8)
      << "],\"n_treated\":" << effect.n_treated
      << ",\"n_control\":" << effect.n_control << "}";
  return oss.str();
}

std::string ExplanationToJson(const Explanation& exp) {
  std::ostringstream oss;
  oss << "{\"grouping_pattern\":" << PatternToJson(exp.grouping_pattern)
      << ",\"groups_covered\":[";
  const auto groups = exp.group_coverage.ToIndices();
  for (size_t i = 0; i < groups.size(); ++i) {
    if (i) oss << ",";
    oss << groups[i];
  }
  oss << "],\"weight\":" << JsonNumberToken(exp.Weight(), 8);
  if (exp.positive) {
    oss << ",\"positive\":{\"pattern\":"
        << PatternToJson(exp.positive->pattern)
        << ",\"effect\":" << EffectToJson(exp.positive->effect) << "}";
  }
  if (exp.negative) {
    oss << ",\"negative\":{\"pattern\":"
        << PatternToJson(exp.negative->pattern)
        << ",\"effect\":" << EffectToJson(exp.negative->effect) << "}";
  }
  oss << "}";
  return oss.str();
}

std::string SummaryToJson(const ExplanationSummary& summary,
                          const GroupByAvgQuery* query) {
  std::ostringstream oss;
  oss << "{";
  if (query != nullptr) {
    oss << "\"query\":\"" << JsonEscape(query->ToSql()) << "\",";
  }
  oss << "\"num_groups\":" << summary.num_groups
      << ",\"covered_groups\":" << summary.covered_groups
      << ",\"coverage_satisfied\":"
      << (summary.coverage_satisfied ? "true" : "false")
      << ",\"total_explainability\":"
      << JsonNumberToken(summary.total_explainability, 8)
      << ",\"explanations\":[";
  for (size_t i = 0; i < summary.explanations.size(); ++i) {
    if (i) oss << ",";
    oss << ExplanationToJson(summary.explanations[i]);
  }
  oss << "]}";
  return oss.str();
}

}  // namespace causumx
