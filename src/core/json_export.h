// Machine-readable JSON export of explanation summaries, for UIs and
// downstream tooling (the paper's prototype exposes its summaries through
// a UI; this is the API such a UI would consume).

#ifndef CAUSUMX_CORE_JSON_EXPORT_H_
#define CAUSUMX_CORE_JSON_EXPORT_H_

#include <string>

#include "core/explanation.h"
#include "dataset/group_query.h"

namespace causumx {

/// JSON-escapes a string (quotes, backslashes, control characters).
std::string JsonEscape(const std::string& s);

/// Serializes one predicate as
///   {"attribute": "...", "op": "<", "value": "..."}.
std::string PredicateToJson(const SimplePredicate& pred);

/// Serializes a pattern as a JSON array of predicates.
std::string PatternToJson(const Pattern& pattern);

/// Serializes an effect estimate with point value, CI, and p-value.
std::string EffectToJson(const EffectEstimate& effect);

/// Serializes one explanation (grouping pattern, coverage, both
/// treatment sides when present).
std::string ExplanationToJson(const Explanation& exp);

/// Serializes a full summary, optionally embedding the originating query.
std::string SummaryToJson(const ExplanationSummary& summary,
                          const GroupByAvgQuery* query = nullptr);

}  // namespace causumx

#endif  // CAUSUMX_CORE_JSON_EXPORT_H_
