// The CauSumX algorithm (Algorithm 1 of the paper): end-to-end generation
// of a summarized causal explanation for an aggregate view.
//
//   1. Mine candidate grouping patterns (Apriori + coverage dedup).
//   2. For each grouping pattern, mine the top positive and negative
//      treatment patterns (lattice traversal, Algorithm 2) — in parallel
//      across grouping patterns (optimization (c)).
//   3. Select <= k explanation patterns covering >= theta * m groups by
//      LP relaxation + randomized rounding of the Fig. 5 ILP.

#ifndef CAUSUMX_CORE_CAUSUMX_H_
#define CAUSUMX_CORE_CAUSUMX_H_

#include <memory>
#include <string>
#include <vector>

#include "causal/dag.h"
#include "causal/estimator_context.h"
#include "core/explanation.h"
#include "dataset/fd.h"
#include "dataset/group_query.h"
#include "dataset/table.h"
#include "engine/eval_engine.h"
#include "mining/grouping_miner.h"
#include "mining/treatment_miner.h"
#include "util/timer.h"

namespace causumx {

class ThreadPool;

/// Which solver phase 3 uses (the ablation of Section 6.4).
enum class FinalStepSolver { kLpRounding, kGreedy, kExact };

/// Full configuration of a CauSumX run.
struct CauSumXConfig {
  size_t k = 5;          ///< max explanation patterns (size constraint).
  double theta = 0.75;   ///< min fraction of groups covered.
  double apriori_support = 0.1;  ///< tau for grouping-pattern mining.
  GroupingMinerOptions grouping;
  TreatmentMinerOptions treatment;
  EstimatorOptions estimator;
  FinalStepSolver solver = FinalStepSolver::kLpRounding;
  size_t rounding_rounds = 64;
  uint64_t seed = 1234;
  size_t num_threads = 0;  ///< 0 = hardware concurrency.
  /// Row shards for the parallel execution engine: 0 = one shard per
  /// worker thread, N >= 1 = that many shards (clamped to one per 64-row
  /// block). Results are bit-identical for every value — sharding only
  /// changes how the work is scheduled (see util/shard_plan.h).
  size_t num_shards = 0;
  /// Mine both signs (paper default) or positive-only.
  bool mine_negative = true;
  /// Restrict treatment mining to these attributes (empty = all non-FD
  /// attributes). Used by the sensitive-attributes case study (Fig. 6).
  std::vector<std::string> treatment_attribute_allowlist;
  /// Restrict grouping patterns to these attributes (empty = all
  /// attributes with A_gb -> W). The paper pre-selects these per dataset;
  /// mandatory when the group-by key is unique per tuple, where the FD
  /// test is vacuous.
  std::vector<std::string> grouping_attribute_allowlist;
  /// Bypass the evaluation engine's predicate-bitset cache and the
  /// estimator's CATE memo (verification/benchmark mode). Results are
  /// bit-identical either way; only the work done differs.
  bool disable_eval_cache = false;

  CauSumXConfig() { grouping.apriori.min_support = apriori_support; }
};

/// Cache counters of one run's shared evaluation engine + estimator
/// context (cumulative when an engine is reused across runs, as in
/// ExplorationSession).
struct EngineCacheStats {
  EvalEngineStats eval;
  EstimatorCacheStats estimator;
};

/// Instrumented result (phase timings feed Fig. 14/20).
struct CauSumXResult {
  ExplanationSummary summary;
  AggregateView view;
  AttributePartition partition;
  size_t num_grouping_candidates = 0;
  size_t num_candidates_with_treatment = 0;
  size_t treatment_patterns_evaluated = 0;
  PhaseTimer timings;  ///< phases: "grouping", "treatment", "selection".
  EngineCacheStats cache_stats;
};

/// Output of phases 1 + 2 (mining), reusable across phase-3 parameter
/// changes — see ExplorationSession in core/exploration.h.
struct CandidateMiningResult {
  AggregateView view;
  AttributePartition partition;
  /// One candidate per surviving grouping pattern, with its top positive
  /// and/or negative treatment already attached.
  std::vector<Explanation> candidates;
  size_t num_grouping_candidates = 0;
  size_t treatment_patterns_evaluated = 0;
  PhaseTimer timings;  ///< phases "grouping" and "treatment".
  EngineCacheStats cache_stats;
};

/// Phases 1 + 2 of Algorithm 1: mine grouping patterns and their top
/// treatments. Phase-3 parameters (k, theta, solver) are ignored here.
/// Creates a run-private EvalEngine (honoring config.disable_eval_cache).
CandidateMiningResult MineExplanationCandidates(const Table& table,
                                                const GroupByAvgQuery& query,
                                                const CausalDag& dag,
                                                const CauSumXConfig& config);

/// As above but over a caller-provided engine (must be bound to `table`),
/// so repeated runs — exploration sessions, baseline comparisons — share
/// one predicate-bitset cache. Pass nullptr to create a private engine.
/// `estimator_ctx` (optional, must be bound to the same engine) likewise
/// shares a CATE memo with the caller. `pool` (optional) runs phase 2 on
/// a caller-owned thread pool — the ExplanationService lends its worker
/// pool so per-query thread spawning disappears from the warm path;
/// when null, a private pool of config.num_threads is created.
CandidateMiningResult MineExplanationCandidates(
    const Table& table, const GroupByAvgQuery& query, const CausalDag& dag,
    const CauSumXConfig& config, std::shared_ptr<EvalEngine> engine,
    std::shared_ptr<EstimatorContext> estimator_ctx = nullptr,
    ThreadPool* pool = nullptr);

/// Phase 3 of Algorithm 1: select <= k candidates covering >= theta * m
/// groups, maximizing total explainability. `timings` (optional) gains a
/// "selection" phase entry. `pool` (optional) parallelizes the greedy
/// solver's marginal-gain scans (identical selection either way).
ExplanationSummary SelectExplanations(
    const std::vector<Explanation>& candidates, size_t num_groups,
    const CauSumXConfig& config, PhaseTimer* timings = nullptr,
    ThreadPool* pool = nullptr);

/// Runs CauSumX over the table for the given query and causal DAG.
CauSumXResult RunCauSumX(const Table& table, const GroupByAvgQuery& query,
                         const CausalDag& dag,
                         const CauSumXConfig& config = {});

/// Convenience wrapper returning just the summary.
ExplanationSummary ExplainView(const Table& table,
                               const GroupByAvgQuery& query,
                               const CausalDag& dag,
                               const CauSumXConfig& config = {});

}  // namespace causumx

#endif  // CAUSUMX_CORE_CAUSUMX_H_
