#include "core/renderer.h"

#include <cmath>
#include <sstream>

#include "util/string_utils.h"

namespace causumx {

std::string RenderPValue(double p) {
  if (p <= 0) return "p < 1e-16";
  // Round up to the next power of ten for the "p < 1e-k" style.
  const double exp10 = std::ceil(std::log10(p));
  if (exp10 >= -1) return StrFormat("p = %.2g", p);
  return StrFormat("p < 1e%d", static_cast<int>(exp10));
}

std::string RenderPredicate(const SimplePredicate& pred,
                            const RenderStyle& style) {
  auto it = style.predicate_phrases.find(pred.ToString());
  if (it != style.predicate_phrases.end()) return it->second;
  const std::string value = pred.value.ToString();
  switch (pred.op) {
    case CompareOp::kEq:
      return pred.attribute + " = " + value;
    case CompareOp::kLt:
      return pred.attribute + " below " + value;
    case CompareOp::kLe:
      return pred.attribute + " at most " + value;
    case CompareOp::kGt:
      return pred.attribute + " above " + value;
    case CompareOp::kGe:
      return pred.attribute + " at least " + value;
  }
  return pred.ToString();
}

std::string RenderPattern(const Pattern& pattern, const RenderStyle& style) {
  if (pattern.IsEmpty()) return "all " + style.subject_noun;
  std::string out;
  const auto& preds = pattern.predicates();
  for (size_t i = 0; i < preds.size(); ++i) {
    if (i > 0) out += (i + 1 == preds.size()) ? " and " : ", ";
    out += RenderPredicate(preds[i], style);
  }
  return out;
}

std::string RenderExplanation(const Explanation& exp,
                              const RenderStyle& style) {
  std::ostringstream oss;
  oss << "For " << style.group_noun << " with "
      << RenderPattern(exp.grouping_pattern, style) << " ("
      << exp.NumGroupsCovered() << " " << style.group_noun << ")";
  bool first_clause = true;
  if (exp.positive && exp.positive->effect.valid) {
    oss << ", the most substantial positive effect on " << style.outcome_noun
        << " (effect size of " << HumanMagnitude(exp.positive->effect.cate)
        << ", " << RenderPValue(exp.positive->effect.p_value)
        << ") is observed for " << style.subject_noun << " with "
        << RenderPattern(exp.positive->pattern, style);
    first_clause = false;
  }
  if (exp.negative && exp.negative->effect.valid) {
    oss << (first_clause ? ", " : ". Conversely, ")
        << RenderPattern(exp.negative->pattern, style)
        << " has the greatest adverse impact on " << style.outcome_noun
        << " (effect size: " << HumanMagnitude(exp.negative->effect.cate)
        << ", " << RenderPValue(exp.negative->effect.p_value) << ")";
  }
  oss << ".";
  return oss.str();
}

std::string RenderEffectWithCi(const EffectEstimate& effect) {
  const auto [lo, hi] = effect.ConfidenceInterval();
  return StrFormat("%s [%s, %s], %s", HumanMagnitude(effect.cate).c_str(),
                   HumanMagnitude(lo).c_str(), HumanMagnitude(hi).c_str(),
                   RenderPValue(effect.p_value).c_str());
}

std::string RenderTreatmentList(const std::vector<ScoredTreatment>& list,
                                const RenderStyle& style) {
  std::ostringstream oss;
  for (size_t i = 0; i < list.size(); ++i) {
    oss << StrFormat("%2zu. ", i + 1) << RenderPattern(list[i].pattern, style)
        << " — effect " << RenderEffectWithCi(list[i].effect) << "\n";
  }
  return oss.str();
}

std::string RenderSummary(const ExplanationSummary& summary,
                          const RenderStyle& style) {
  std::ostringstream oss;
  if (summary.explanations.empty()) {
    oss << "No statistically significant causal explanations were found.\n";
    return oss.str();
  }
  for (const auto& exp : summary.explanations) {
    oss << "* " << RenderExplanation(exp, style) << "\n";
  }
  oss << StrFormat(
      "[covers %zu/%zu %s; total explainability %s]\n",
      summary.covered_groups, summary.num_groups, style.group_noun.c_str(),
      HumanMagnitude(summary.total_explainability).c_str());
  return oss.str();
}

}  // namespace causumx
