// Interactive exploration sessions.
//
// The paper's closing note — "The user can continue the exploration by
// varying parameters in CauSumX" — needs the expensive phases (grouping
// and treatment mining, >95% of the runtime per Fig. 14) to be cached
// while k / theta / the solver vary. ExplorationSession mines once and
// re-runs only the selection LP per query; it also exposes the paper's
// UI drill-down of top-k positive/negative treatments per grouping
// pattern.

#ifndef CAUSUMX_CORE_EXPLORATION_H_
#define CAUSUMX_CORE_EXPLORATION_H_

#include <memory>
#include <optional>
#include <vector>

#include "core/causumx.h"
#include "engine/eval_engine.h"
#include "mining/treatment_miner.h"

namespace causumx {

/// A mined-once, query-many session over one (table, query, DAG) triple.
///
/// The session shares ownership of the table, so it stays valid no matter
/// what the caller does with their handle. Not thread-safe for concurrent
/// Solve calls with interleaved mining (mining happens once, lazily, on
/// first use).
class ExplorationSession {
 public:
  /// `config` supplies the mining parameters (support threshold,
  /// treatment options, estimator options, attribute allowlists); its
  /// k / theta / solver act only as defaults for Solve().
  ///
  /// `engine` / `context` (optional) let the session borrow warm caches —
  /// typically from an ExplanationService table entry — instead of
  /// constructing its own; both must be bound to `table` (and `context`
  /// to `engine`).
  ExplorationSession(std::shared_ptr<const Table> table,
                     GroupByAvgQuery query, CausalDag dag,
                     CauSumXConfig config = {},
                     std::shared_ptr<EvalEngine> engine = nullptr,
                     std::shared_ptr<EstimatorContext> context = nullptr);

  /// Convenience binding to a caller-owned table (non-owning; the caller
  /// guarantees the table outlives the session).
  ExplorationSession(const Table& table, GroupByAvgQuery query,
                     CausalDag dag, CauSumXConfig config = {});

  /// Deleted: a temporary table would be destroyed before the first
  /// Solve. Move the table into a shared_ptr and use that overload.
  ExplorationSession(Table&& table, GroupByAvgQuery query, CausalDag dag,
                     CauSumXConfig config = {}) = delete;

  /// Re-solves the selection problem for new size / coverage parameters.
  /// Mining runs on the first call and is reused afterwards.
  ExplanationSummary Solve(size_t k, double theta,
                           FinalStepSolver solver =
                               FinalStepSolver::kLpRounding);

  /// Solve with the session's default configuration.
  ExplanationSummary Solve();

  /// Drill-down: the top-k treatments of a sign for the subpopulation
  /// selected by `grouping_pattern` (need not be a mined candidate).
  std::vector<ScoredTreatment> TopTreatments(const Pattern& grouping_pattern,
                                             TreatmentSign sign, size_t k);

  /// The evaluated view (mines on first use).
  const AggregateView& View();

  /// All mined candidate explanations (mines on first use).
  const std::vector<Explanation>& Candidates();

  /// Mining statistics; valid after the first Solve/View/Candidates call.
  const CandidateMiningResult& MiningResult();

  /// The session's shared evaluation engine: one predicate-bitset cache
  /// and one CATE memo serve mining, every re-Solve, and every
  /// TopTreatments drill-down.
  const std::shared_ptr<EvalEngine>& engine() const { return engine_; }

  /// Cumulative cache counters of the session (mining + drill-downs).
  EngineCacheStats CacheStats() const;

 private:
  void EnsureMined();

  std::shared_ptr<const Table> table_;
  GroupByAvgQuery query_;
  CausalDag dag_;
  CauSumXConfig config_;
  std::shared_ptr<EvalEngine> engine_;
  EffectEstimator estimator_;  // bound to engine_; shared memo.
  std::optional<CandidateMiningResult> mined_;
};

}  // namespace causumx

#endif  // CAUSUMX_CORE_EXPLORATION_H_
