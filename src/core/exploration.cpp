#include "core/exploration.h"

#include "util/thread_pool.h"

namespace causumx {

namespace {

// Session-private sharded engine: the pool is owned by the engine (and
// so lives exactly as long as the session's caches), and the shard plan
// follows the config's --shards knob.
std::shared_ptr<EvalEngine> MakeSessionEngine(
    const std::shared_ptr<const Table>& table, const CauSumXConfig& config) {
  EvalEngineOptions options;
  options.cache_enabled = !config.disable_eval_cache;
  options.num_shards = config.num_shards;
  const size_t threads = config.num_threads == 0
                             ? ThreadPool::DefaultThreads()
                             : config.num_threads;
  if (threads > 1) options.pool = std::make_shared<ThreadPool>(threads);
  return std::make_shared<EvalEngine>(table, std::move(options));
}

}  // namespace

ExplorationSession::ExplorationSession(
    std::shared_ptr<const Table> table, GroupByAvgQuery query, CausalDag dag,
    CauSumXConfig config, std::shared_ptr<EvalEngine> engine,
    std::shared_ptr<EstimatorContext> context)
    : table_(std::move(table)),
      query_(std::move(query)),
      dag_(std::move(dag)),
      config_(std::move(config)),
      engine_(engine != nullptr ? std::move(engine)
                                : MakeSessionEngine(table_, config_)),
      estimator_(context != nullptr
                     ? EffectEstimator(std::move(context))
                     : EffectEstimator(engine_, dag_, config_.estimator)) {}

ExplorationSession::ExplorationSession(const Table& table,
                                       GroupByAvgQuery query, CausalDag dag,
                                       CauSumXConfig config)
    : ExplorationSession(
          std::shared_ptr<const Table>(std::shared_ptr<const Table>(),
                                       &table),
          std::move(query), std::move(dag), std::move(config)) {}

void ExplorationSession::EnsureMined() {
  if (!mined_) {
    mined_ = MineExplanationCandidates(*table_, query_, dag_, config_,
                                       engine_, estimator_.context());
  }
}

ExplanationSummary ExplorationSession::Solve(size_t k, double theta,
                                             FinalStepSolver solver) {
  EnsureMined();
  CauSumXConfig config = config_;
  config.k = k;
  config.theta = theta;
  config.solver = solver;
  return SelectExplanations(mined_->candidates, mined_->view.NumGroups(),
                            config);
}

ExplanationSummary ExplorationSession::Solve() {
  return Solve(config_.k, config_.theta, config_.solver);
}

std::vector<ScoredTreatment> ExplorationSession::TopTreatments(
    const Pattern& grouping_pattern, TreatmentSign sign, size_t k) {
  EnsureMined();
  Bitset rows;
  if (grouping_pattern.IsEmpty()) {
    rows = Bitset(table_->NumRows());
    rows.SetAll();
  } else {
    rows = engine_->Evaluate(grouping_pattern);
  }

  const std::vector<std::string>& treatment_attrs =
      config_.treatment_attribute_allowlist.empty()
          ? mined_->partition.treatment_attributes
          : config_.treatment_attribute_allowlist;
  return MineTopKTreatments(estimator_, rows, query_.avg_attribute,
                            treatment_attrs, sign, k, config_.treatment);
}

const AggregateView& ExplorationSession::View() {
  EnsureMined();
  return mined_->view;
}

const std::vector<Explanation>& ExplorationSession::Candidates() {
  EnsureMined();
  return mined_->candidates;
}

const CandidateMiningResult& ExplorationSession::MiningResult() {
  EnsureMined();
  return *mined_;
}

EngineCacheStats ExplorationSession::CacheStats() const {
  EngineCacheStats stats;
  stats.eval = engine_->Stats();
  stats.estimator = estimator_.cache_stats();
  return stats;
}

}  // namespace causumx
