#include "core/exploration.h"

namespace causumx {

ExplorationSession::ExplorationSession(const Table& table,
                                       GroupByAvgQuery query, CausalDag dag,
                                       CauSumXConfig config)
    : table_(table),
      query_(std::move(query)),
      dag_(std::move(dag)),
      config_(std::move(config)) {}

void ExplorationSession::EnsureMined() {
  if (!mined_) {
    mined_ = MineExplanationCandidates(table_, query_, dag_, config_);
  }
}

ExplanationSummary ExplorationSession::Solve(size_t k, double theta,
                                             FinalStepSolver solver) {
  EnsureMined();
  CauSumXConfig config = config_;
  config.k = k;
  config.theta = theta;
  config.solver = solver;
  return SelectExplanations(mined_->candidates, mined_->view.NumGroups(),
                            config);
}

ExplanationSummary ExplorationSession::Solve() {
  return Solve(config_.k, config_.theta, config_.solver);
}

std::vector<ScoredTreatment> ExplorationSession::TopTreatments(
    const Pattern& grouping_pattern, TreatmentSign sign, size_t k) {
  EnsureMined();
  Bitset rows = grouping_pattern.IsEmpty() ? Bitset(table_.NumRows())
                                           : grouping_pattern.Evaluate(table_);
  if (grouping_pattern.IsEmpty()) rows.SetAll();

  EffectEstimator estimator(table_, dag_, config_.estimator);
  const std::vector<std::string>& treatment_attrs =
      config_.treatment_attribute_allowlist.empty()
          ? mined_->partition.treatment_attributes
          : config_.treatment_attribute_allowlist;
  return MineTopKTreatments(estimator, rows, query_.avg_attribute,
                            treatment_attrs, sign, k, config_.treatment);
}

const AggregateView& ExplorationSession::View() {
  EnsureMined();
  return mined_->view;
}

const std::vector<Explanation>& ExplorationSession::Candidates() {
  EnsureMined();
  return mined_->candidates;
}

const CandidateMiningResult& ExplorationSession::MiningResult() {
  EnsureMined();
  return *mined_;
}

}  // namespace causumx
