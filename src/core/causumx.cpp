#include "core/causumx.h"

#include <algorithm>
#include <atomic>

#include "lp/rounding.h"
#include "util/thread_pool.h"

namespace causumx {

CandidateMiningResult MineExplanationCandidates(const Table& table,
                                                const GroupByAvgQuery& query,
                                                const CausalDag& dag,
                                                const CauSumXConfig& config) {
  return MineExplanationCandidates(table, query, dag, config, nullptr);
}

CandidateMiningResult MineExplanationCandidates(
    const Table& table, const GroupByAvgQuery& query, const CausalDag& dag,
    const CauSumXConfig& config, std::shared_ptr<EvalEngine> engine,
    std::shared_ptr<EstimatorContext> estimator_ctx, ThreadPool* pool) {
  // Resolve the worker pool before the engine: a run-private engine
  // shares it for shard-parallel segment builds, and the view below
  // evaluates on it. Precedence: explicit pool > the engine's own pool
  // (only when the caller left num_threads at the default — an explicit
  // count is a per-query concurrency bound and must not silently widen
  // to a shared engine's pool) > a private pool of config.num_threads.
  const size_t num_threads = config.num_threads == 0
                                 ? ThreadPool::DefaultThreads()
                                 : config.num_threads;
  std::shared_ptr<ThreadPool> private_pool;
  if (pool == nullptr && config.num_threads == 0 && engine != nullptr) {
    pool = engine->pool();
  }
  if (pool == nullptr && num_threads > 1) {
    private_pool = std::make_shared<ThreadPool>(num_threads);
    pool = private_pool.get();
  }
  if (engine == nullptr) {
    EvalEngineOptions eopt;
    eopt.cache_enabled = !config.disable_eval_cache;
    eopt.num_shards = config.num_shards;
    eopt.pool = private_pool;
    engine = std::make_shared<EvalEngine>(table, std::move(eopt));
  }
  if (estimator_ctx == nullptr) {
    estimator_ctx = std::make_shared<EstimatorContext>(engine, dag,
                                                       config.estimator);
  }
  CandidateMiningResult result;
  Timer timer;

  // Evaluate the aggregate view Q(D), shard-parallel over the engine's
  // plan (bit-identical to the serial path for every plan).
  result.view =
      AggregateView::Evaluate(table, query, engine->plan(), pool);
  const AggregateView& view = result.view;
  const size_t m = view.NumGroups();
  if (m == 0) return result;

  // Attribute partition around the query (Section 4.1). An explicit
  // allowlist (the paper's protocol — it pre-selects grouping attributes
  // per dataset) overrides FD detection.
  if (!config.grouping_attribute_allowlist.empty()) {
    result.partition.grouping_attributes =
        config.grouping_attribute_allowlist;
    for (const auto& name : table.ColumnNames()) {
      if (name == query.avg_attribute) continue;
      bool is_gb = false;
      for (const auto& gb : query.group_by) {
        if (name == gb) is_gb = true;
      }
      bool is_grouping = false;
      for (const auto& ga : config.grouping_attribute_allowlist) {
        if (name == ga) is_grouping = true;
      }
      if (!is_gb && !is_grouping) {
        result.partition.treatment_attributes.push_back(name);
      }
    }
  } else {
    result.partition =
        PartitionAttributes(table, query.group_by, query.avg_attribute);
  }

  // ---- Phase 1: grouping patterns (Section 5.1). --------------------------
  timer.Reset();
  // config.apriori_support is the master support knob: propagate it here
  // so mutating it after construction cannot silently diverge from
  // grouping.apriori.min_support (set once in the ctor).
  GroupingMinerOptions gopt = config.grouping;
  gopt.apriori.min_support = config.apriori_support;
  std::vector<GroupingPattern> grouping = MineGroupingPatterns(
      table, view, result.partition.grouping_attributes, gopt, engine.get());
  result.num_grouping_candidates = grouping.size();
  result.timings.Add("grouping", timer.Seconds());

  // ---- Phase 2: treatment patterns (Section 5.2, Algorithm 2). ------------
  timer.Reset();
  EffectEstimator estimator(estimator_ctx);
  const std::vector<std::string>& treatment_attrs =
      config.treatment_attribute_allowlist.empty()
          ? result.partition.treatment_attributes
          : config.treatment_attribute_allowlist;

  std::vector<Explanation> candidates(grouping.size());
  std::atomic<size_t> evaluated{0};
  const auto mine_one = [&](size_t gi) {
    const GroupingPattern& gp = grouping[gi];
    Explanation exp;
    exp.grouping_pattern = gp.pattern;
    exp.group_coverage = gp.group_coverage;

    TreatmentMiningStats stats;
    auto pos = MineTopTreatmentWithStats(
        estimator, gp.rows, query.avg_attribute, treatment_attrs,
        TreatmentSign::kPositive, config.treatment, &stats);
    if (pos) exp.positive = TreatmentSide{pos->pattern, pos->effect};
    if (config.mine_negative) {
      auto neg = MineTopTreatmentWithStats(
          estimator, gp.rows, query.avg_attribute, treatment_attrs,
          TreatmentSign::kNegative, config.treatment, &stats);
      if (neg) exp.negative = TreatmentSide{neg->pattern, neg->effect};
    }
    evaluated.fetch_add(stats.patterns_evaluated);
    candidates[gi] = std::move(exp);
  };
  if (pool != nullptr) {
    pool->ParallelFor(grouping.size(), mine_one);
  } else {
    // Serial (num_threads <= 1): no pool was created above.
    for (size_t gi = 0; gi < grouping.size(); ++gi) mine_one(gi);
  }
  result.treatment_patterns_evaluated = evaluated.load();

  // Drop grouping patterns for which no treatment was found (no causal
  // story to tell for those groups).
  result.candidates.reserve(candidates.size());
  for (auto& c : candidates) {
    if (c.Weight() > 0.0) result.candidates.push_back(std::move(c));
  }
  result.timings.Add("treatment", timer.Seconds());
  result.cache_stats.eval = engine->Stats();
  result.cache_stats.estimator = estimator.cache_stats();
  return result;
}

ExplanationSummary SelectExplanations(
    const std::vector<Explanation>& candidates, size_t num_groups,
    const CauSumXConfig& config, PhaseTimer* timings, ThreadPool* pool) {
  Timer timer;
  ExplanationSummary summary;
  summary.num_groups = num_groups;

  SelectionProblem problem;
  problem.num_groups = num_groups;
  problem.k = config.k;
  problem.theta = config.theta;
  problem.candidates.reserve(candidates.size());
  for (const auto& c : candidates) {
    problem.candidates.push_back(
        SelectionCandidate{c.Weight(), c.group_coverage});
  }
  SelectionResult sel;
  switch (config.solver) {
    case FinalStepSolver::kLpRounding:
      sel = SolveByLpRounding(problem, config.rounding_rounds, config.seed);
      break;
    case FinalStepSolver::kGreedy:
      sel = SolveGreedy(problem, /*gain_bonus=*/0.0, pool);
      break;
    case FinalStepSolver::kExact:
      sel = SolveExact(problem);
      break;
  }
  // The paper's rounding returns "no solution" when the ILP is infeasible
  // (e.g. k patterns cannot reach theta coverage, as on German with
  // one-group patterns). A library should still hand back its best
  // effort, so fall back to coverage-greedy selection and let
  // coverage_satisfied report the violation.
  if (sel.selected.empty() && !candidates.empty()) {
    sel = SolveGreedy(problem, /*gain_bonus=*/1.0, pool);
  }

  Bitset covered(num_groups);
  for (size_t j : sel.selected) {
    summary.explanations.push_back(candidates[j]);
    summary.total_explainability += candidates[j].Weight();
    covered |= candidates[j].group_coverage;
  }
  // Deterministic presentation order: strongest first.
  std::sort(summary.explanations.begin(), summary.explanations.end(),
            [](const Explanation& a, const Explanation& b) {
              return a.Weight() > b.Weight();
            });
  summary.covered_groups = covered.Count();
  summary.coverage_satisfied =
      summary.covered_groups >= problem.RequiredCoverage();
  if (timings != nullptr) timings->Add("selection", timer.Seconds());
  return summary;
}

CauSumXResult RunCauSumX(const Table& table, const GroupByAvgQuery& query,
                         const CausalDag& dag, const CauSumXConfig& config) {
  CauSumXResult result;
  CandidateMiningResult mined =
      MineExplanationCandidates(table, query, dag, config);
  result.view = std::move(mined.view);
  result.partition = std::move(mined.partition);
  result.num_grouping_candidates = mined.num_grouping_candidates;
  result.num_candidates_with_treatment = mined.candidates.size();
  result.treatment_patterns_evaluated = mined.treatment_patterns_evaluated;
  result.timings = mined.timings;
  result.cache_stats = mined.cache_stats;
  if (result.view.NumGroups() == 0) return result;

  result.summary = SelectExplanations(mined.candidates,
                                      result.view.NumGroups(), config,
                                      &result.timings);
  return result;
}

ExplanationSummary ExplainView(const Table& table,
                               const GroupByAvgQuery& query,
                               const CausalDag& dag,
                               const CauSumXConfig& config) {
  return RunCauSumX(table, query, dag, config).summary;
}

}  // namespace causumx
