// Explanation patterns and summaries — the framework's output types
// (Definitions 4.2-4.5 of the paper).

#ifndef CAUSUMX_CORE_EXPLANATION_H_
#define CAUSUMX_CORE_EXPLANATION_H_

#include <optional>
#include <string>
#include <vector>

#include "causal/estimator_types.h"
#include "dataset/pattern.h"
#include "util/bitset.h"

namespace causumx {

/// A treatment pattern together with its estimated effect.
struct TreatmentSide {
  Pattern pattern;
  EffectEstimate effect;
};

/// One explanation: a grouping pattern with its positive and/or negative
/// treatment patterns (the paper's (P_g, P_t^+, P_t^-) combination whose
/// weight is |CATE+| + |CATE-|).
struct Explanation {
  Pattern grouping_pattern;
  Bitset group_coverage;  ///< groups of Q(D) covered (Cov(P_g)).
  std::optional<TreatmentSide> positive;
  std::optional<TreatmentSide> negative;

  /// Explanation-pattern weight: sum of absolute explainabilities.
  double Weight() const;

  size_t NumGroupsCovered() const { return group_coverage.Count(); }
};

/// The summarized causal explanation Phi returned to the user.
struct ExplanationSummary {
  std::vector<Explanation> explanations;
  size_t num_groups = 0;        ///< m = |Q(D)|.
  size_t covered_groups = 0;    ///< |union Cov|.
  double total_explainability = 0.0;
  bool coverage_satisfied = false;  ///< covered >= ceil(theta * m).

  /// Coverage fraction in [0, 1].
  double CoverageFraction() const {
    return num_groups == 0
               ? 0.0
               : static_cast<double>(covered_groups) /
                     static_cast<double>(num_groups);
  }
};

}  // namespace causumx

#endif  // CAUSUMX_CORE_EXPLANATION_H_
