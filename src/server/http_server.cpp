#include "server/http_server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

#include "util/string_utils.h"

namespace causumx {

namespace {

void SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

void SetIoTimeouts(int fd, int timeout_ms) {
  timeval tv{};
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = (timeout_ms % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

}  // namespace

HttpServer::HttpServer(Handler handler, HttpServerOptions options)
    : handler_(std::move(handler)), options_(std::move(options)) {
  if (options_.num_threads == 0) {
    options_.num_threads = ThreadPool::DefaultThreads();
  }
  if (options_.max_queue == 0) {
    options_.max_queue = options_.num_threads * 4;
  }
}

HttpServer::~HttpServer() { Stop(); }

void HttpServer::Start() {
  if (running_.exchange(true)) return;
  stopping_.store(false);

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    running_.store(false);
    throw std::runtime_error("server: socket() failed");
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    running_.store(false);
    throw std::runtime_error("server: bad bind address " +
                             options_.bind_address);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
          0 ||
      ::listen(listen_fd_, 128) != 0) {
    const std::string what = StrFormat(
        "server: cannot listen on %s:%u (%s)", options_.bind_address.c_str(),
        unsigned{options_.port}, std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    running_.store(false);
    throw std::runtime_error(what);
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
  SetNonBlocking(listen_fd_);

  if (::pipe(wake_fds_) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    running_.store(false);
    throw std::runtime_error("server: pipe() failed");
  }
  SetNonBlocking(wake_fds_[0]);
  SetNonBlocking(wake_fds_[1]);

  pool_ = std::make_unique<ThreadPool>(options_.num_threads);
  acceptor_ = std::thread([this] { AcceptLoop(); });
}

void HttpServer::Stop() {
  if (!running_.load()) return;
  stopping_.store(true);
  Wake();
  if (acceptor_.joinable()) acceptor_.join();
  {
    // Wait for every admitted request to finish writing its response.
    util::MutexLock lock(drain_mu_);
    while (inflight_.load() != 0) drained_.Wait(drain_mu_);
  }
  pool_.reset();  // joins workers after the queue drains
  // Close keep-alive fds workers handed back after the acceptor exited.
  util::MutexLock lock(mu_);
  for (int fd : returned_) ::close(fd);
  returned_.clear();
  ::close(wake_fds_[0]);
  ::close(wake_fds_[1]);
  wake_fds_[0] = wake_fds_[1] = -1;
  running_.store(false);
}

void HttpServer::Wake() {
  if (wake_fds_[1] >= 0) {
    const char byte = 'w';
    [[maybe_unused]] ssize_t n = ::write(wake_fds_[1], &byte, 1);
  }
}

HttpServerCounters HttpServer::counters() const {
  HttpServerCounters c;
  c.connections_accepted = n_accepted_.load();
  c.requests_handled = n_handled_.load();
  c.requests_rejected = n_rejected_.load();
  c.parse_errors = n_parse_errors_.load();
  c.idle_closed = n_idle_closed_.load();
  return c;
}

bool HttpServer::SendAll(int fd, const std::string& data) {
  size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) return false;
    sent += static_cast<size_t>(n);
  }
  return true;
}

namespace {

// Closes after an early error response without losing it to a TCP
// reset: close() with unread request bytes pending sends RST, which can
// destroy the just-written response before the client reads it. Discard
// what already arrived, signal EOF, and — when the caller may block
// (worker threads; never the acceptor) — keep discarding until the
// client closes its end, so no in-flight bytes hit a closed socket.
// Bounded by `max_drain` and the fd's SO_RCVTIMEO either way.
void DrainAndClose(int fd, size_t max_drain, bool may_block) {
  ::shutdown(fd, SHUT_WR);
  char buf[4096];
  size_t drained = 0;
  while (drained < max_drain) {
    const ssize_t n =
        ::recv(fd, buf, sizeof(buf), may_block ? 0 : MSG_DONTWAIT);
    if (n <= 0) break;
    drained += static_cast<size_t>(n);
  }
  ::close(fd);
}

}  // namespace

void HttpServer::RejectWith503(int fd) {
  n_rejected_.fetch_add(1);
  // The request itself is never processed: HTTP allows an early
  // response, and handling it would occupy exactly the resources the
  // gate protects. The body is small enough for the socket buffer, so
  // this cannot block the acceptor (already-arrived request bytes are
  // discarded non-blockingly by DrainAndClose).
  static const std::string kBusy =
      HttpResponse::Error(503,
                          "server is at capacity (admission queue full); "
                          "retry later")
          .Serialize(false);
  SendAll(fd, kBusy);
  DrainAndClose(fd, 1 << 20, /*may_block=*/false);
}

void HttpServer::ReturnConnection(int fd) {
  {
    util::MutexLock lock(mu_);
    if (stopping_.load()) {
      ::close(fd);
      return;
    }
    returned_.push_back(fd);
  }
  Wake();
}

void HttpServer::AcceptLoop() {
  std::vector<IdleConn> idle;
  const auto idle_timeout = std::chrono::milliseconds(options_.idle_timeout_ms);

  while (true) {
    // Drain connections workers handed back.
    {
      util::MutexLock lock(mu_);
      for (int fd : returned_) {
        idle.push_back({fd, std::chrono::steady_clock::now() + idle_timeout});
      }
      returned_.clear();
    }
    if (stopping_.load()) break;

    std::vector<pollfd> fds;
    fds.push_back({wake_fds_[0], POLLIN, 0});
    fds.push_back({listen_fd_, POLLIN, 0});
    for (const IdleConn& c : idle) fds.push_back({c.fd, POLLIN, 0});

    const int n_ready = ::poll(fds.data(), fds.size(), 250);
    if (stopping_.load()) break;
    if (n_ready < 0) {
      if (errno == EINTR) continue;
      break;
    }

    if (fds[0].revents & POLLIN) {
      char buf[64];
      while (::read(wake_fds_[0], buf, sizeof(buf)) > 0) {
      }
    }

    // Accept into a separate list: `fds` indexes the idle snapshot the
    // poll saw, so fresh connections must not shift it.
    std::vector<IdleConn> fresh;
    if (fds[1].revents & POLLIN) {
      while (true) {
        const int conn = ::accept(listen_fd_, nullptr, nullptr);
        if (conn < 0) break;  // EAGAIN — accepted everything pending
        n_accepted_.fetch_add(1);
        const int one = 1;
        ::setsockopt(conn, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
        SetIoTimeouts(conn, options_.io_timeout_ms);
        fresh.push_back(
            {conn, std::chrono::steady_clock::now() + idle_timeout});
      }
    }

    // Admit readable parked connections; expire idle ones.
    const auto now = std::chrono::steady_clock::now();
    std::vector<IdleConn> still_idle;
    still_idle.reserve(idle.size() + fresh.size());
    for (size_t i = 0; i < idle.size(); ++i) {
      const short revents = fds[2 + i].revents;
      const int fd = idle[i].fd;
      if (revents & (POLLERR | POLLNVAL)) {
        ::close(fd);
        continue;
      }
      if (revents & (POLLIN | POLLHUP)) {
        // Bytes (or EOF) pending. The admission gate: bound admitted-but-
        // unfinished requests; the acceptor is the only incrementer, so
        // check-then-add cannot race another admit.
        if (inflight_.load(std::memory_order_acquire) >=
            options_.max_queue) {
          RejectWith503(fd);
          continue;
        }
        inflight_.fetch_add(1, std::memory_order_acq_rel);
        pool_->Submit([this, fd] { HandleConnection(fd); });
        continue;
      }
      if (idle[i].deadline <= now) {
        n_idle_closed_.fetch_add(1);
        ::close(fd);
        continue;
      }
      still_idle.push_back(idle[i]);
    }
    still_idle.insert(still_idle.end(), fresh.begin(), fresh.end());
    idle.swap(still_idle);
  }

  for (const IdleConn& c : idle) ::close(c.fd);
  ::close(listen_fd_);
  listen_fd_ = -1;
}

void HttpServer::HandleConnection(int fd) {
  bool keep = false;
  HttpRequestParser parser(options_.max_body_bytes);
  char buf[16384];

  // Handle the admitted request — and, should the client have pipelined,
  // any further complete requests already buffered — under this single
  // admission.
  while (true) {
    while (parser.state() == HttpRequestParser::State::kNeedMore) {
      // A client waiting on `Expect: 100-continue` withholds its body
      // until the interim response arrives.
      if (parser.TakeExpectContinue()) {
        SendAll(fd, "HTTP/1.1 100 Continue\r\n\r\n");
      }
      const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
      if (n <= 0) {
        // Peer closed (a keep-alive race: client gave up) or timed out.
        ::close(fd);
        fd = -1;
        break;
      }
      parser.Consume(buf, static_cast<size_t>(n));
    }
    if (fd < 0) break;

    if (parser.state() == HttpRequestParser::State::kError) {
      n_parse_errors_.fetch_add(1);
      SendAll(fd, HttpResponse::Error(parser.error_status(), parser.error())
                      .Serialize(false));
      // An unread body (e.g. a 413 rejected from its Content-Length
      // alone) may still be in flight; see DrainAndClose.
      DrainAndClose(fd, options_.max_body_bytes + (1 << 16),
                    /*may_block=*/true);
      fd = -1;
      break;
    }

    const HttpRequest& request = parser.request();
    HttpResponse response;
    try {
      response = handler_(request);
    } catch (const std::exception& e) {
      response = HttpResponse::Error(500, e.what());
    } catch (...) {
      response = HttpResponse::Error(500, "unknown handler error");
    }
    keep = request.keep_alive && !stopping_.load();
    // Count before writing: a client that has read its response must
    // observe the increment in counters() (counting after SendAll races
    // with the client's next counters() call).
    n_handled_.fetch_add(1);
    const bool sent = SendAll(fd, response.Serialize(keep));
    if (!sent || !keep) {
      ::close(fd);
      fd = -1;
      break;
    }
    parser.Reset();
    if (parser.state() == HttpRequestParser::State::kNeedMore &&
        !parser.HasBufferedData()) {
      break;  // connection is idle again — park it
    }
  }

  if (fd >= 0) ReturnConnection(fd);
  {
    util::MutexLock lock(drain_mu_);
    inflight_.fetch_sub(1, std::memory_order_acq_rel);
  }
  drained_.NotifyAll();
}

}  // namespace causumx
