// Embedded HTTP/1.1 server: a non-blocking accept/poll loop feeding a
// util::ThreadPool of connection workers through a bounded admission
// gate. Dependency-free (POSIX sockets only), keep-alive aware, and
// generic over the request handler — the REST surface over the
// ExplanationService is composed in server/rest_api.h; tests also mount
// synthetic handlers to exercise transport behavior (backpressure,
// framing errors, keep-alive reuse) in isolation.
//
// Life of a connection:
//   1. The acceptor thread accepts it and parks it in the poll set.
//   2. When request bytes arrive, the connection is *admitted*: if
//      admitted-but-unfinished requests have reached `max_queue`, the
//      acceptor immediately answers `503 {"error": ...}` and closes —
//      load sheds with a fast typed response instead of an unbounded
//      backlog — otherwise the connection is handed to the worker pool.
//   3. A worker reads the full request (bounded by `max_body_bytes`,
//      enforced from the Content-Length header before the body is
//      read), invokes the handler, and writes the response.
//   4. A keep-alive connection goes back to the poll set and counts
//      against nothing while idle; `Connection: close`, parse errors,
//      and idle timeouts end it.
//
// Requests on distinct connections execute concurrently (one worker
// each); requests on one connection are sequential, per HTTP/1.1.

#ifndef CAUSUMX_SERVER_HTTP_SERVER_H_
#define CAUSUMX_SERVER_HTTP_SERVER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "server/http.h"
#include "util/thread_annotations.h"
#include "util/thread_pool.h"

namespace causumx {

/// Transport configuration for an HttpServer.
struct HttpServerOptions {
  /// TCP port to listen on; 0 picks an ephemeral port (tests/bench read
  /// it back from port()).
  uint16_t port = 8080;
  /// Bind address. The default only accepts local connections; bind
  /// "0.0.0.0" to serve externally.
  std::string bind_address = "127.0.0.1";
  /// Connection-worker threads (0 = hardware concurrency). Each admitted
  /// request occupies one worker until its response is written.
  size_t num_threads = 0;
  /// Bounded admission queue: the maximum number of admitted-but-
  /// unfinished requests (running + waiting for a worker). Connections
  /// becoming readable past it receive 503 immediately. 0 = 4x threads,
  /// resolved at construction (options() reports the effective value).
  size_t max_queue = 0;
  /// Largest accepted request body; a larger declared Content-Length is
  /// answered with 413 before the body is read.
  size_t max_body_bytes = 8 * 1024 * 1024;
  /// Idle keep-alive connections are closed after this long.
  int idle_timeout_ms = 30000;
  /// Per-recv/send socket timeout while a worker owns the connection.
  int io_timeout_ms = 10000;
};

/// Monotone transport counters (snapshot via HttpServer::counters()).
struct HttpServerCounters {
  uint64_t connections_accepted = 0;  ///< TCP connections accepted
  uint64_t requests_handled = 0;   ///< responses written by the handler path
  uint64_t requests_rejected = 0;  ///< 503s shed by the admission gate
  uint64_t parse_errors = 0;       ///< malformed/oversized requests answered
  uint64_t idle_closed = 0;        ///< keep-alive connections timed out
};

/// The embedded server. Construct with a handler, Start(), Stop().
///
/// Thread-safe: Start/Stop may be called from any thread (Stop blocks
/// until in-flight requests drain); the handler runs concurrently on
/// worker threads and must be thread-safe itself.
class HttpServer {
 public:
  /// Computes the response for one parsed request. Runs on a worker
  /// thread; a thrown std::exception becomes a 500 JSON error response.
  using Handler = std::function<HttpResponse(const HttpRequest&)>;

  /// Stores the handler and options; no socket is opened until Start.
  explicit HttpServer(Handler handler, HttpServerOptions options = {});
  /// Runs Stop (drains in-flight requests, joins every thread).
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Binds, listens, and starts the acceptor + worker pool; returns once
  /// the socket is accepting. Throws std::runtime_error when the address
  /// cannot be bound.
  void Start();

  /// Stops accepting, answers nothing new, drains in-flight requests,
  /// and joins every thread. Idempotent; also run by the destructor.
  void Stop();

  /// The bound TCP port (resolves an ephemeral request once Start'ed).
  uint16_t port() const { return port_; }

  /// Whether Start has run and Stop has not yet completed.
  bool running() const { return running_.load(std::memory_order_acquire); }

  /// Snapshot of the monotone transport counters.
  HttpServerCounters counters() const;

  /// The transport options, with num_threads and max_queue resolved to
  /// their effective values.
  const HttpServerOptions& options() const { return options_; }

 private:
  /// One parked keep-alive (or not-yet-admitted) connection.
  struct IdleConn {
    int fd;
    std::chrono::steady_clock::time_point deadline;
  };

  void AcceptLoop();
  void HandleConnection(int fd);
  /// Hands a keep-alive connection back to the poll set (closes it when
  /// the server is stopping).
  void ReturnConnection(int fd);
  void RejectWith503(int fd);
  /// Writes `data` fully; false on error/timeout.
  bool SendAll(int fd, const std::string& data);
  void Wake();

  Handler handler_;
  HttpServerOptions options_;

  int listen_fd_ = -1;
  int wake_fds_[2] = {-1, -1};  // self-pipe: [0] read end polled, [1] write
  uint16_t port_ = 0;

  std::unique_ptr<ThreadPool> pool_;
  std::thread acceptor_;

  util::Mutex mu_;
  /// Keep-alive fds workers handed back, headed for the poll set.
  std::vector<int> returned_ CAUSUMX_GUARDED_BY(mu_);
  util::Mutex drain_mu_;
  util::CondVar drained_;  // signaled under drain_mu_ when inflight_ hits 0

  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  std::atomic<size_t> inflight_{0};

  std::atomic<uint64_t> n_accepted_{0};
  std::atomic<uint64_t> n_handled_{0};
  std::atomic<uint64_t> n_rejected_{0};
  std::atomic<uint64_t> n_parse_errors_{0};
  std::atomic<uint64_t> n_idle_closed_{0};
};

}  // namespace causumx

#endif  // CAUSUMX_SERVER_HTTP_SERVER_H_
