// HTTP/1.1 message framing, dependency-free: an incremental request
// parser, a response serializer, and a minimal blocking client used by
// the tests and bench_server. Transport (sockets, accept loop, worker
// dispatch) lives in server/http_server.h; this file knows nothing
// about file descriptors except for the client helper.
//
// Supported subset: request line + headers + Content-Length bodies.
// Transfer-Encoding (chunked uploads) is rejected with 501, header
// blocks over the cap with 431, bodies over the configured cap with 413
// — each as a typed parse error the server turns into a JSON error
// response. Keep-alive follows HTTP/1.1 defaults (persistent unless
// "Connection: close"; HTTP/1.0 requires an explicit keep-alive).

#ifndef CAUSUMX_SERVER_HTTP_H_
#define CAUSUMX_SERVER_HTTP_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>

namespace causumx {

/// One parsed HTTP request. Header names are lower-cased; the target is
/// split into a percent-decoded `path` and decoded `query` parameters.
struct HttpRequest {
  std::string method;   ///< "GET", "POST", ... (upper-case as sent)
  std::string target;   ///< raw request target, e.g. "/v1/stats?pretty=1"
  std::string path;     ///< decoded path component, e.g. "/v1/stats"
  std::map<std::string, std::string> query;    ///< decoded query params
  std::map<std::string, std::string> headers;  ///< names lower-cased
  std::string body;        ///< exactly Content-Length bytes
  bool keep_alive = true;  ///< connection persistence after the response

  /// Header value by lower-case name ("" when absent).
  std::string Header(const std::string& name) const;
};

/// One response to serialize. Content-Length and Connection headers are
/// emitted by Serialize; everything else comes from `headers`.
struct HttpResponse {
  int status = 200;        ///< HTTP status code
  std::string content_type = "application/json";  ///< "" omits the header
  std::map<std::string, std::string> headers;  ///< extra headers, verbatim
  std::string body;        ///< response payload

  /// A JSON response with the given status.
  static HttpResponse Json(int status, std::string body);

  /// A uniform JSON error body:
  ///   {"ok":false,"status":<status>,"error":"<message>"}
  static HttpResponse Error(int status, const std::string& message);

  /// Serializes status line + headers + body; `keep_alive` picks the
  /// Connection header.
  std::string Serialize(bool keep_alive) const;
};

/// Canonical reason phrase for a status code ("Unknown" for others).
const char* HttpStatusReason(int status);

/// Incremental HTTP/1.1 request parser. Feed raw bytes as they arrive;
/// the parser buffers across Consume calls, so a request split at any
/// byte boundary parses identically (tested byte-by-byte).
class HttpRequestParser {
 public:
  /// `max_body_bytes` caps the declared Content-Length (413 past it);
  /// `max_header_bytes` caps the request line + header block (431).
  explicit HttpRequestParser(size_t max_body_bytes,
                             size_t max_header_bytes = 64 * 1024);

  /// Parse progress after the last Consume call.
  enum class State {
    kNeedMore,  ///< incomplete; feed more bytes
    kDone,      ///< request() is complete
    kError      ///< malformed; error_status()/error() describe it
  };

  /// Consumes `n` bytes; returns the parser state afterwards. Bytes past
  /// the end of the current request are retained for the next one
  /// (pipelining) — call Reset() after handling a kDone request.
  State Consume(const char* data, size_t n);

  /// Current state without consuming anything.
  State state() const { return state_; }

  /// The parsed request; valid when state() == kDone.
  const HttpRequest& request() const { return request_; }

  /// Suggested response status for a kError state (400/413/431/501/505).
  int error_status() const { return error_status_; }
  /// Human-readable parse error for the JSON error body.
  const std::string& error() const { return error_; }

  /// True exactly once when the headers carried `Expect: 100-continue`
  /// and the body is still outstanding: the caller should write an
  /// interim `100 Continue` response so the client sends the body.
  bool TakeExpectContinue();

  /// Discards the completed request and starts parsing the next one from
  /// any bytes already buffered past it (keep-alive / pipelining).
  void Reset();

  /// Whether buffered bytes from a pipelined next request are pending.
  bool HasBufferedData() const { return !buffer_.empty(); }

 private:
  State Fail(int status, const std::string& what);
  State TryParse();
  bool ParseHeaderBlock(size_t header_end);

  size_t max_body_bytes_;
  size_t max_header_bytes_;
  std::string buffer_;
  HttpRequest request_;
  State state_ = State::kNeedMore;
  bool headers_done_ = false;
  bool expect_continue_ = false;
  size_t body_expected_ = 0;
  int error_status_ = 0;
  std::string error_;
};

/// Percent-decodes a URL component ('+' becomes a space in `query_mode`);
/// malformed escapes are kept verbatim.
std::string UrlDecode(const std::string& s, bool query_mode = false);

/// A minimal blocking HTTP/1.1 client over one TCP connection, for the
/// server tests and bench_server. Connections persist across Request
/// calls (keep-alive) until the server closes or Close() is called.
class HttpClient {
 public:
  /// Connects lazily on the first Request.
  HttpClient(std::string host, uint16_t port);
  /// Closes the connection if still open.
  ~HttpClient();

  HttpClient(const HttpClient&) = delete;
  HttpClient& operator=(const HttpClient&) = delete;

  /// A parsed response (headers lower-cased).
  struct Response {
    int status = 0;  ///< HTTP status code from the status line
    std::map<std::string, std::string> headers;  ///< names lower-cased
    std::string body;  ///< exactly Content-Length bytes
  };

  /// Sends one request and blocks for the response; throws
  /// std::runtime_error on connect/transport failure. An empty
  /// `content_type` omits the header.
  Response Request(const std::string& method, const std::string& target,
                   const std::string& body = "",
                   const std::string& content_type = "application/json");

  /// Sends raw bytes verbatim and reads one response — for tests that
  /// need malformed or hand-rolled framing.
  Response Raw(const std::string& bytes);

  /// Whether the underlying connection is currently open (reused by the
  /// next Request). The keep-alive test asserts reuse through this.
  bool connected() const { return fd_ >= 0; }

  /// Closes the connection; the next Request reconnects.
  void Close();

 private:
  void EnsureConnected();
  Response ReadResponse();

  std::string host_;
  uint16_t port_;
  int fd_ = -1;
};

}  // namespace causumx

#endif  // CAUSUMX_SERVER_HTTP_H_
