#include "server/rest_api.h"

#include <chrono>
#include <memory>
#include <sstream>
#include <stdexcept>

#include "service/batch.h"
#include "stream/monitor.h"
#include "util/json.h"
#include "util/string_utils.h"

namespace causumx {

namespace {

HttpResponse HandleHealthz() {
  return HttpResponse::Json(200, "{\"status\":\"ok\"}");
}

void WriteEngineStats(JsonWriter& w, const EvalEngineStats& e) {
  w.BeginObject()
      .Key("predicates_interned").Uint(e.predicates_interned)
      .Key("bitsets_materialized").Uint(e.bitsets_materialized)
      .Key("bitset_hits").Uint(e.bitset_hits)
      .Key("bitsets_evicted").Uint(e.bitsets_evicted)
      .Key("bitsets_extended").Uint(e.bitsets_extended)
      .Key("pattern_evals").Uint(e.pattern_evals)
      .Key("bypass_evals").Uint(e.bypass_evals)
      .Key("bitsets_retracted").Uint(e.bitsets_retracted)
      .Key("column_views_built").Uint(e.column_views_built)
      .Key("column_views_extended").Uint(e.column_views_extended)
      .Key("column_views_retracted").Uint(e.column_views_retracted)
      .Key("bitset_bytes").Uint(e.bitset_bytes)
      .Key("view_bytes").Uint(e.view_bytes)
      .Key("num_shards").Uint(e.num_shards)
      .EndObject();
}

HttpResponse HandleStats(ExplanationService& service) {
  const ServiceStats s = service.Stats();
  JsonWriter w;
  w.BeginObject();
  w.Key("service").BeginObject()
      .Key("queries_executed").Uint(s.queries_executed)
      .Key("tables_registered").Uint(s.tables_registered)
      .Key("appends_executed").Uint(s.appends_executed)
      .Key("rows_appended").Uint(s.rows_appended)
      .Key("budget_enforcements").Uint(s.budget_enforcements)
      .Key("cache_bytes").Uint(s.cache_bytes)
      .EndObject();
  w.Key("snapshots").BeginObject()
      .Key("enabled").Bool(!service.options().data_dir.empty())
      .Key("written").Uint(s.snapshots_written)
      .Key("restored").Uint(s.snapshots_restored)
      .Key("rejected").Uint(s.snapshots_rejected);
  // Age of the newest snapshot written by this process; null before the
  // first write (or with persistence off).
  if (s.last_snapshot_unix_ms > 0) {
    const uint64_t now_ms = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::system_clock::now().time_since_epoch())
            .count());
    const uint64_t age_ms =
        now_ms > s.last_snapshot_unix_ms ? now_ms - s.last_snapshot_unix_ms
                                         : 0;
    w.Key("last_written_age_seconds").Double(age_ms / 1000.0);
  } else {
    w.Key("last_written_age_seconds").Null();
  }
  w.EndObject();
  w.Key("options").BeginObject()
      .Key("num_threads").Uint(service.pool().NumThreads())
      .Key("num_shards").Uint(service.options().num_shards)
      .Key("memory_budget_bytes").Uint(service.options().memory_budget_bytes)
      .Key("cache_enabled").Bool(service.options().cache_enabled)
      .EndObject();
  w.Key("tables").BeginArray();
  for (const TableDescription& d : service.DescribeTables()) {
    w.BeginObject()
        .Key("name").String(d.name)
        .Key("rows").Uint(d.rows)
        .Key("columns").Uint(d.columns)
        .Key("version").Uint(d.version);
    w.Key("engine");
    WriteEngineStats(w, d.engine);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  return HttpResponse::Json(200, w.str());
}

HttpResponse HandleTables(ExplanationService& service) {
  JsonWriter w;
  w.BeginArray();
  for (const TableDescription& d : service.DescribeTables()) {
    w.BeginObject()
        .Key("name").String(d.name)
        .Key("rows").Uint(d.rows)
        .Key("columns").Uint(d.columns)
        .Key("version").Uint(d.version)
        .EndObject();
  }
  w.EndArray();
  return HttpResponse::Json(200, w.str());
}

HttpResponse HandleExplain(ExplanationService& service,
                           const HttpRequest& http_request,
                           const BatchOptions& batch_options) {
  std::shared_ptr<const JsonValue> request;
  try {
    request = std::make_shared<const JsonValue>(
        JsonValue::Parse(http_request.body));
  } catch (const std::exception& e) {
    return HttpResponse::Error(400, e.what());
  }
  const std::string op = request->GetString("op", "query");
  if (op != "query") {
    return HttpResponse::Error(
        400, "POST /v1/explain only runs queries; use "
             "/v1/tables/{name}/append or /v1/batch for op \"" + op + "\"");
  }

  // Typed 404 before execution: a query naming an unregistered table
  // (with no "csv" to load it from) can never succeed.
  std::string table = request->GetString("table");
  const std::string csv = request->GetString("csv");
  if (table.empty() && csv.empty()) table = batch_options.default_table;
  if (csv.empty() && !service.HasTable(table)) {
    return HttpResponse::Error(404, "unknown table '" + table + "'");
  }

  const RequestResult result =
      ExecuteQueryRequest(service, *request, "1", batch_options);
  return HttpResponse::Json(result.ok ? 200 : 400, result.json_line);
}

HttpResponse HandleAppend(ExplanationService& service,
                          const std::string& table,
                          const HttpRequest& http_request,
                          const BatchOptions& batch_options) {
  if (!service.HasTable(table)) {
    return HttpResponse::Error(404, "unknown table '" + table + "'");
  }
  std::shared_ptr<const JsonValue> request;
  try {
    request = std::make_shared<const JsonValue>(
        JsonValue::Parse(http_request.body));
  } catch (const std::exception& e) {
    return HttpResponse::Error(400, e.what());
  }
  const std::string body_table = request->GetString("table");
  if (!body_table.empty() && body_table != table) {
    return HttpResponse::Error(
        400, "body names table '" + body_table + "' but the URL names '" +
                 table + "'");
  }
  const RequestResult result =
      ExecuteAppendRequest(service, *request, table, "1", batch_options);
  return HttpResponse::Json(result.ok ? 200 : 400, result.json_line);
}

HttpResponse HandleBatch(ExplanationService& service,
                         const HttpRequest& http_request,
                         const BatchOptions& batch_options) {
  if (Trim(http_request.body).empty()) {
    return HttpResponse::Error(400, "empty batch body; send JSONL requests");
  }
  std::istringstream in(http_request.body);
  std::ostringstream out;
  RunBatch(service, in, out, batch_options);
  HttpResponse response = HttpResponse::Json(200, out.str());
  response.content_type = "application/x-ndjson";
  return response;
}

void WriteMonitorStatus(JsonWriter& w, const MonitorStatus& s) {
  w.BeginObject()
      .Key("id").String(s.id)
      .Key("table").String(s.table)
      .Key("rows_observed").Uint(s.rows_observed)
      .Key("windows_evaluated").Uint(s.windows_evaluated)
      .Key("last_seq").Uint(s.last_seq)
      .Key("window_rows").Uint(s.window_rows)
      .Key("events_buffered").Uint(s.events_buffered)
      .Key("cache_bytes").Uint(s.cache_bytes)
      .EndObject();
}

HttpResponse HandleMonitorCreate(MonitorRegistry& monitors,
                                 const HttpRequest& request) {
  std::shared_ptr<StreamMonitor> monitor;
  try {
    monitor = monitors.Create(request.body);
  } catch (const std::out_of_range&) {
    return HttpResponse::Error(404, "spec names an unregistered table");
  } catch (const std::exception& e) {
    return HttpResponse::Error(400, e.what());
  }
  JsonWriter w;
  w.BeginObject().Key("id").String(monitor->id()).Key("status");
  WriteMonitorStatus(w, monitor->Status());
  w.EndObject();
  return HttpResponse::Json(201, w.str());
}

HttpResponse HandleMonitorsList(MonitorRegistry& monitors) {
  JsonWriter w;
  w.BeginArray();
  for (const auto& monitor : monitors.List()) {
    WriteMonitorStatus(w, monitor->Status());
  }
  w.EndArray();
  return HttpResponse::Json(200, w.str());
}

HttpResponse HandleMonitorGet(MonitorRegistry& monitors,
                              const std::string& id) {
  const std::shared_ptr<StreamMonitor> monitor = monitors.Get(id);
  if (monitor == nullptr) {
    return HttpResponse::Error(404, "unknown monitor '" + id + "'");
  }
  JsonWriter w;
  w.BeginObject().Key("status");
  WriteMonitorStatus(w, monitor->Status());
  w.Key("spec").Raw(monitor->spec_json());
  w.EndObject();
  return HttpResponse::Json(200, w.str());
}

HttpResponse HandleMonitorDelete(MonitorRegistry& monitors,
                                 const std::string& id) {
  if (!monitors.Remove(id)) {
    return HttpResponse::Error(404, "unknown monitor '" + id + "'");
  }
  return HttpResponse::Json(200, "{\"ok\":true}");
}

// Query parameter as a non-negative integer; `fallback` when absent,
// -1 when present but malformed.
int64_t QueryUint(const HttpRequest& request, const std::string& name,
                  int64_t fallback) {
  auto it = request.query.find(name);
  if (it == request.query.end()) return fallback;
  try {
    size_t pos = 0;
    const long long v = std::stoll(it->second, &pos);
    if (pos != it->second.size() || v < 0) return -1;
    return v;
  } catch (const std::exception&) {
    return -1;
  }
}

HttpResponse HandleMonitorEvents(MonitorRegistry& monitors,
                                 const std::string& id,
                                 const HttpRequest& request,
                                 int64_t max_poll_ms) {
  const std::shared_ptr<StreamMonitor> monitor = monitors.Get(id);
  if (monitor == nullptr) {
    return HttpResponse::Error(404, "unknown monitor '" + id + "'");
  }
  const int64_t since = QueryUint(request, "since", 0);
  const int64_t timeout_ms = QueryUint(request, "timeout_ms", 0);
  if (since < 0 || timeout_ms < 0) {
    return HttpResponse::Error(
        400, "\"since\" and \"timeout_ms\" must be non-negative integers");
  }
  const std::vector<MonitorEvent> events =
      timeout_ms == 0
          ? monitor->EventsSince(static_cast<uint64_t>(since))
          : monitor->WaitEventsSince(static_cast<uint64_t>(since),
                                     std::min<int64_t>(timeout_ms,
                                                       max_poll_ms));
  uint64_t next_since = static_cast<uint64_t>(since);
  JsonWriter w;
  w.BeginObject().Key("monitor").String(id).Key("events").BeginArray();
  for (const MonitorEvent& e : events) {
    w.Raw(e.json);
    next_since = e.seq;
  }
  w.EndArray().Key("next_since").Uint(next_since).EndObject();
  return HttpResponse::Json(200, w.str());
}

// The shared routing core; `monitors` is null when the monitor surface
// is not mounted (the single-argument MakeRestHandler overload).
HttpServer::Handler MakeHandler(ExplanationService& service,
                                MonitorRegistry* monitors,
                                RestApiOptions options) {
  BatchOptions batch_options;
  batch_options.default_table = options.default_table;
  batch_options.emit_cache_stats = options.emit_cache_stats;
  batch_options.default_query_threads = options.default_query_threads;
  const int64_t max_poll_ms = options.max_event_poll_ms;

  return [&service, monitors, batch_options,
          max_poll_ms](const HttpRequest& request) {
    const std::string& path = request.path;
    const bool get = request.method == "GET";
    const bool post = request.method == "POST";

    if (path == "/healthz") {
      if (!get) return HttpResponse::Error(405, "use GET " + path);
      return HandleHealthz();
    }
    if (path == "/v1/stats") {
      if (!get) return HttpResponse::Error(405, "use GET " + path);
      return HandleStats(service);
    }
    if (path == "/v1/tables") {
      if (!get) return HttpResponse::Error(405, "use GET " + path);
      return HandleTables(service);
    }
    if (path == "/v1/explain") {
      if (!post) return HttpResponse::Error(405, "use POST " + path);
      return HandleExplain(service, request, batch_options);
    }
    if (path == "/v1/batch") {
      if (!post) return HttpResponse::Error(405, "use POST " + path);
      return HandleBatch(service, request, batch_options);
    }
    if (monitors != nullptr && path == "/v1/monitors") {
      if (post) return HandleMonitorCreate(*monitors, request);
      if (get) return HandleMonitorsList(*monitors);
      return HttpResponse::Error(405, "use GET or POST " + path);
    }
    // /v1/monitors/{id} and /v1/monitors/{id}/events
    static const std::string kMonitorsPrefix = "/v1/monitors/";
    if (monitors != nullptr && path.size() > kMonitorsPrefix.size() &&
        path.compare(0, kMonitorsPrefix.size(), kMonitorsPrefix) == 0) {
      std::string id = path.substr(kMonitorsPrefix.size());
      const size_t slash = id.find('/');
      const bool events = slash != std::string::npos &&
                          id.substr(slash + 1) == "events";
      if (slash == std::string::npos || events) {
        if (events) id = id.substr(0, slash);
        if (id.empty()) {
          return HttpResponse::Error(404, "missing monitor id in " + path);
        }
        if (events) {
          if (!get) return HttpResponse::Error(405, "use GET " + path);
          return HandleMonitorEvents(*monitors, id, request, max_poll_ms);
        }
        if (get) return HandleMonitorGet(*monitors, id);
        if (request.method == "DELETE") {
          return HandleMonitorDelete(*monitors, id);
        }
        return HttpResponse::Error(405, "use GET or DELETE " + path);
      }
    }
    // /v1/tables/{name}/append
    static const std::string kTablesPrefix = "/v1/tables/";
    if (path.size() > kTablesPrefix.size() &&
        path.compare(0, kTablesPrefix.size(), kTablesPrefix) == 0) {
      const std::string rest = path.substr(kTablesPrefix.size());
      const size_t slash = rest.rfind('/');
      if (slash != std::string::npos && rest.substr(slash + 1) == "append") {
        const std::string table = rest.substr(0, slash);
        if (table.empty()) {
          return HttpResponse::Error(404, "missing table name in " + path);
        }
        if (!post) return HttpResponse::Error(405, "use POST " + path);
        return HandleAppend(service, table, request, batch_options);
      }
    }
    return HttpResponse::Error(
        404, "no route for " + request.method + " " + path);
  };
}

}  // namespace

HttpServer::Handler MakeRestHandler(ExplanationService& service,
                                    RestApiOptions options) {
  return MakeHandler(service, nullptr, std::move(options));
}

HttpServer::Handler MakeRestHandler(ExplanationService& service,
                                    MonitorRegistry& monitors,
                                    RestApiOptions options) {
  return MakeHandler(service, &monitors, std::move(options));
}

}  // namespace causumx
