#include "server/http.h"

#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cctype>
#include <cstring>
#include <stdexcept>

#include "util/json.h"
#include "util/string_utils.h"

namespace causumx {

namespace {

std::string LowerAscii(const std::string& s) { return ToLower(s); }

int HexDigit(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

}  // namespace

std::string UrlDecode(const std::string& s, bool query_mode) {
  std::string out;
  out.reserve(s.size());
  for (size_t i = 0; i < s.size(); ++i) {
    const char c = s[i];
    if (c == '%' && i + 2 < s.size()) {
      const int hi = HexDigit(s[i + 1]), lo = HexDigit(s[i + 2]);
      if (hi >= 0 && lo >= 0) {
        out.push_back(static_cast<char>((hi << 4) | lo));
        i += 2;
        continue;
      }
    }
    if (query_mode && c == '+') {
      out.push_back(' ');
    } else {
      out.push_back(c);
    }
  }
  return out;
}

std::string HttpRequest::Header(const std::string& name) const {
  auto it = headers.find(LowerAscii(name));
  return it == headers.end() ? "" : it->second;
}

const char* HttpStatusReason(int status) {
  switch (status) {
    case 200: return "OK";
    case 201: return "Created";
    case 204: return "No Content";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 408: return "Request Timeout";
    case 411: return "Length Required";
    case 413: return "Payload Too Large";
    case 431: return "Request Header Fields Too Large";
    case 500: return "Internal Server Error";
    case 501: return "Not Implemented";
    case 503: return "Service Unavailable";
    case 505: return "HTTP Version Not Supported";
    default: return "Unknown";
  }
}

HttpResponse HttpResponse::Json(int status, std::string body) {
  HttpResponse r;
  r.status = status;
  r.body = std::move(body);
  return r;
}

HttpResponse HttpResponse::Error(int status, const std::string& message) {
  return Json(status, StrFormat("{\"ok\":false,\"status\":%d,\"error\":\"%s\"}",
                                status, JsonEscapeString(message).c_str()));
}

std::string HttpResponse::Serialize(bool keep_alive) const {
  std::string out = StrFormat("HTTP/1.1 %d %s\r\n", status,
                              HttpStatusReason(status));
  if (!content_type.empty()) {
    out += "Content-Type: " + content_type + "\r\n";
  }
  out += StrFormat("Content-Length: %zu\r\n", body.size());
  out += keep_alive ? "Connection: keep-alive\r\n" : "Connection: close\r\n";
  for (const auto& [name, value] : headers) {
    out += name + ": " + value + "\r\n";
  }
  out += "\r\n";
  out += body;
  return out;
}

// ---- request parser --------------------------------------------------------

HttpRequestParser::HttpRequestParser(size_t max_body_bytes,
                                     size_t max_header_bytes)
    : max_body_bytes_(max_body_bytes), max_header_bytes_(max_header_bytes) {}

HttpRequestParser::State HttpRequestParser::Fail(int status,
                                                 const std::string& what) {
  state_ = State::kError;
  error_status_ = status;
  error_ = what;
  return state_;
}

bool HttpRequestParser::TakeExpectContinue() {
  if (!expect_continue_ || !headers_done_ || state_ != State::kNeedMore) {
    return false;
  }
  expect_continue_ = false;
  return true;
}

void HttpRequestParser::Reset() {
  request_ = HttpRequest();
  state_ = State::kNeedMore;
  headers_done_ = false;
  expect_continue_ = false;
  body_expected_ = 0;
  error_status_ = 0;
  error_.clear();
  if (!buffer_.empty()) TryParse();
}

HttpRequestParser::State HttpRequestParser::Consume(const char* data,
                                                    size_t n) {
  if (state_ == State::kDone || state_ == State::kError) return state_;
  buffer_.append(data, n);
  return TryParse();
}

bool HttpRequestParser::ParseHeaderBlock(size_t header_end) {
  // Request line: METHOD SP target SP HTTP/x.y
  const size_t line_end = buffer_.find("\r\n");
  const std::string line = buffer_.substr(0, line_end);
  const size_t sp1 = line.find(' ');
  const size_t sp2 = line.rfind(' ');
  if (sp1 == std::string::npos || sp2 == sp1) {
    Fail(400, "malformed request line");
    return false;
  }
  request_.method = line.substr(0, sp1);
  request_.target = Trim(line.substr(sp1 + 1, sp2 - sp1 - 1));
  const std::string version = line.substr(sp2 + 1);
  if (request_.method.empty() || request_.target.empty() ||
      request_.target[0] != '/') {
    Fail(400, "malformed request line");
    return false;
  }
  if (version != "HTTP/1.1" && version != "HTTP/1.0") {
    Fail(505, "unsupported HTTP version '" + version + "'");
    return false;
  }
  request_.keep_alive = (version == "HTTP/1.1");

  // Split the target into a decoded path and query parameters.
  const size_t qpos = request_.target.find('?');
  request_.path = UrlDecode(request_.target.substr(0, qpos));
  if (qpos != std::string::npos) {
    for (const std::string& pair :
         Split(request_.target.substr(qpos + 1), '&')) {
      if (pair.empty()) continue;
      const size_t eq = pair.find('=');
      const std::string key = UrlDecode(pair.substr(0, eq), true);
      const std::string value =
          eq == std::string::npos ? "" : UrlDecode(pair.substr(eq + 1), true);
      request_.query[key] = value;
    }
  }

  // Header lines.
  size_t pos = line_end + 2;
  while (pos < header_end) {
    const size_t eol = buffer_.find("\r\n", pos);
    const std::string header = buffer_.substr(pos, eol - pos);
    pos = eol + 2;
    const size_t colon = header.find(':');
    if (colon == std::string::npos) {
      Fail(400, "malformed header line");
      return false;
    }
    const std::string name = LowerAscii(Trim(header.substr(0, colon)));
    const std::string value = Trim(header.substr(colon + 1));
    if (name.empty()) {
      Fail(400, "empty header name");
      return false;
    }
    request_.headers[name] = value;
  }

  const std::string connection = LowerAscii(request_.Header("connection"));
  if (connection == "close") request_.keep_alive = false;
  if (connection == "keep-alive") request_.keep_alive = true;

  if (!request_.Header("transfer-encoding").empty()) {
    Fail(501, "Transfer-Encoding is not supported; send Content-Length");
    return false;
  }
  const std::string length = request_.Header("content-length");
  if (!length.empty()) {
    size_t parsed = 0;
    for (char c : length) {
      if (!std::isdigit(static_cast<unsigned char>(c))) {
        Fail(400, "malformed Content-Length");
        return false;
      }
      parsed = parsed * 10 + static_cast<size_t>(c - '0');
      if (parsed > (size_t{1} << 40)) break;  // absurd; cap the loop
    }
    if (parsed > max_body_bytes_) {
      Fail(413, StrFormat("body of %zu bytes exceeds the %zu-byte limit",
                          parsed, max_body_bytes_));
      return false;
    }
    body_expected_ = parsed;
  }
  if (ToLower(request_.Header("expect")) == "100-continue" &&
      body_expected_ > 0) {
    expect_continue_ = true;
  }
  return true;
}

HttpRequestParser::State HttpRequestParser::TryParse() {
  if (!headers_done_) {
    const size_t header_end = buffer_.find("\r\n\r\n");
    if (header_end == std::string::npos) {
      if (buffer_.size() > max_header_bytes_) {
        return Fail(431, "request header block too large");
      }
      return state_;
    }
    if (header_end + 4 > max_header_bytes_) {
      return Fail(431, "request header block too large");
    }
    if (!ParseHeaderBlock(header_end)) return state_;
    headers_done_ = true;
    buffer_.erase(0, header_end + 4);
  }
  if (buffer_.size() < body_expected_) return state_;
  request_.body = buffer_.substr(0, body_expected_);
  buffer_.erase(0, body_expected_);
  state_ = State::kDone;
  return state_;
}

// ---- client ----------------------------------------------------------------

HttpClient::HttpClient(std::string host, uint16_t port)
    : host_(std::move(host)), port_(port) {}

HttpClient::~HttpClient() { Close(); }

void HttpClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void HttpClient::EnsureConnected() {
  if (fd_ >= 0) return;
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* res = nullptr;
  const std::string port_str = StrFormat("%u", unsigned{port_});
  if (::getaddrinfo(host_.c_str(), port_str.c_str(), &hints, &res) != 0 ||
      res == nullptr) {
    throw std::runtime_error("http client: cannot resolve " + host_);
  }
  fd_ = ::socket(res->ai_family, res->ai_socktype, res->ai_protocol);
  if (fd_ < 0 || ::connect(fd_, res->ai_addr, res->ai_addrlen) != 0) {
    ::freeaddrinfo(res);
    Close();
    throw std::runtime_error(
        StrFormat("http client: cannot connect to %s:%u", host_.c_str(),
                  unsigned{port_}));
  }
  ::freeaddrinfo(res);
  const int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

HttpClient::Response HttpClient::ReadResponse() {
  std::string data;
  char buf[8192];
  // Read headers.
  size_t header_end = std::string::npos;
  while (header_end == std::string::npos) {
    const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n <= 0) {
      const bool before_any_byte = data.empty();
      Close();
      // The distinction matters for Request's retry: a connection that
      // died before ANY response byte was a keep-alive socket the
      // server idle-closed (request never processed — safe to resend);
      // one that died mid-response had its request processed already.
      throw std::runtime_error(
          before_any_byte
              ? "http client: stale keep-alive connection"
              : "http client: connection closed mid-response");
    }
    data.append(buf, static_cast<size_t>(n));
    header_end = data.find("\r\n\r\n");
  }

  Response response;
  const size_t line_end = data.find("\r\n");
  const std::string status_line = data.substr(0, line_end);
  const size_t sp = status_line.find(' ');
  if (sp == std::string::npos) {
    Close();
    throw std::runtime_error("http client: malformed status line");
  }
  response.status = std::atoi(status_line.c_str() + sp + 1);

  size_t pos = line_end + 2;
  while (pos < header_end) {
    const size_t eol = data.find("\r\n", pos);
    const std::string header = data.substr(pos, eol - pos);
    pos = eol + 2;
    const size_t colon = header.find(':');
    if (colon == std::string::npos) continue;
    response.headers[LowerAscii(Trim(header.substr(0, colon)))] =
        Trim(header.substr(colon + 1));
  }

  size_t body_expected = 0;
  auto it = response.headers.find("content-length");
  if (it != response.headers.end()) {
    body_expected = static_cast<size_t>(std::atoll(it->second.c_str()));
  }
  response.body = data.substr(header_end + 4);
  while (response.body.size() < body_expected) {
    const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n <= 0) {
      Close();
      throw std::runtime_error("http client: connection closed mid-body");
    }
    response.body.append(buf, static_cast<size_t>(n));
  }

  auto conn = response.headers.find("connection");
  if (conn != response.headers.end() && LowerAscii(conn->second) == "close") {
    Close();
  }
  return response;
}

HttpClient::Response HttpClient::Raw(const std::string& bytes) {
  EnsureConnected();
  size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n =
        ::send(fd_, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) {
      Close();
      throw std::runtime_error("http client: send failed");
    }
    sent += static_cast<size_t>(n);
  }
  return ReadResponse();
}

HttpClient::Response HttpClient::Request(const std::string& method,
                                         const std::string& target,
                                         const std::string& body,
                                         const std::string& content_type) {
  std::string msg = method + " " + target + " HTTP/1.1\r\n";
  msg += StrFormat("Host: %s:%u\r\n", host_.c_str(), unsigned{port_});
  if (!content_type.empty()) msg += "Content-Type: " + content_type + "\r\n";
  if (!body.empty() || method == "POST" || method == "PUT") {
    msg += StrFormat("Content-Length: %zu\r\n", body.size());
  }
  msg += "\r\n";
  msg += body;

  // One transparent retry on a fresh connection — but ONLY when the
  // failure proves the server never processed the request (an
  // idle-closed keep-alive socket: the send failed with the request
  // incomplete, or the connection died before any response byte).
  // A connection lost mid-response means the request WAS executed;
  // resending a non-idempotent POST there would double-execute it, so
  // those propagate to the caller.
  const bool was_connected = fd_ >= 0;
  try {
    return Raw(msg);
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    const bool unprocessed =
        what.find("stale keep-alive") != std::string::npos ||
        what.find("send failed") != std::string::npos;
    if (!was_connected || !unprocessed) throw;
    Close();
    return Raw(msg);
  }
}

}  // namespace causumx
