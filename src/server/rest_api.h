// The REST surface of the ExplanationService: a routing Handler for
// server/http_server.h that exposes explanation queries, streaming
// appends, batch execution, and engine statistics over HTTP. See
// docs/API.md for the endpoint reference with curl examples.
//
// Endpoints:
//   GET  /healthz                    liveness probe, {"status":"ok"}
//   GET  /v1/stats                   service/cache/shard counters + tables
//   GET  /v1/tables                  registered tables (name/rows/version)
//   POST /v1/explain                 one query; body = a batch request
//                                    object (service/batch.h), response =
//                                    the same JSON line batch mode emits
//   POST /v1/tables/{name}/append    delta rows ({"rows": [[...]]} or
//                                    {"csv": "path"}) with the service's
//                                    copy-on-write snapshot semantics
//   POST /v1/batch                   JSONL body executed exactly like
//                                    `causumx --batch` (appends are
//                                    barriers); responds JSONL
//
// Error contract: every non-2xx response is JSON — 400 for malformed
// bodies/parameters, 404 for unknown routes and unregistered tables,
// 405 for wrong methods, 413/431/503 from the transport layer. Explain
// and append responses funnel through the shared batch executor, so a
// query answered here is bit-identical to the same request in a batch
// file (and to the CLI's --json output for that query).

#ifndef CAUSUMX_SERVER_REST_API_H_
#define CAUSUMX_SERVER_REST_API_H_

#include <string>

#include "server/http_server.h"
#include "service/explanation_service.h"

namespace causumx {

/// Behavior knobs of the REST surface.
struct RestApiOptions {
  /// Table used by explain/batch requests that name none.
  std::string default_table = "default";
  /// Echo engine/estimator cache counters into each explain result.
  bool emit_cache_stats = false;
  /// Per-query mining threads when a request doesn't say (1 leaves
  /// request-level concurrency as the parallelism source).
  size_t default_query_threads = 1;
};

/// Builds the routing handler over `service`. The service must outlive
/// the returned handler (and the HttpServer it is mounted on); the
/// handler is thread-safe because the service is.
HttpServer::Handler MakeRestHandler(ExplanationService& service,
                                    RestApiOptions options = {});

}  // namespace causumx

#endif  // CAUSUMX_SERVER_REST_API_H_
