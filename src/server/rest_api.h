// The REST surface of the ExplanationService: a routing Handler for
// server/http_server.h that exposes explanation queries, streaming
// appends, batch execution, and engine statistics over HTTP. See
// docs/API.md for the endpoint reference with curl examples.
//
// Endpoints:
//   GET  /healthz                    liveness probe, {"status":"ok"}
//   GET  /v1/stats                   service/cache/shard counters + tables
//   GET  /v1/tables                  registered tables (name/rows/version)
//   POST /v1/explain                 one query; body = a batch request
//                                    object (service/batch.h), response =
//                                    the same JSON line batch mode emits
//   POST /v1/tables/{name}/append    delta rows ({"rows": [[...]]} or
//                                    {"csv": "path"}) with the service's
//                                    copy-on-write snapshot semantics
//   POST /v1/batch                   JSONL body executed exactly like
//                                    `causumx --batch` (appends are
//                                    barriers); responds JSONL
//
// With a MonitorRegistry attached (the second overload), the windowed
// continuous-monitoring surface of src/stream/ is also mounted:
//   POST   /v1/monitors              create a monitor from a spec body;
//                                    201 with {"id", "status"}
//   GET    /v1/monitors              statuses of all monitors
//   GET    /v1/monitors/{id}         one monitor's status + spec
//   DELETE /v1/monitors/{id}         unregister (the window state drops)
//   GET    /v1/monitors/{id}/events  drift/summary events with seq >
//                                    ?since=N; ?timeout_ms=M long-polls
//                                    until an event arrives (capped)
//
// Error contract: every non-2xx response is JSON — 400 for malformed
// bodies/parameters, 404 for unknown routes and unregistered tables,
// 405 for wrong methods, 413/431/503 from the transport layer. Explain
// and append responses funnel through the shared batch executor, so a
// query answered here is bit-identical to the same request in a batch
// file (and to the CLI's --json output for that query).

#ifndef CAUSUMX_SERVER_REST_API_H_
#define CAUSUMX_SERVER_REST_API_H_

#include <string>

#include "server/http_server.h"
#include "service/explanation_service.h"

namespace causumx {

/// Forward declaration (src/stream/monitor.h): the windowed-monitor
/// registry the two-argument MakeRestHandler overload mounts.
class MonitorRegistry;

/// Behavior knobs of the REST surface.
struct RestApiOptions {
  /// Table used by explain/batch requests that name none.
  std::string default_table = "default";
  /// Echo engine/estimator cache counters into each explain result.
  bool emit_cache_stats = false;
  /// Per-query mining threads when a request doesn't say (1 leaves
  /// request-level concurrency as the parallelism source).
  size_t default_query_threads = 1;
  /// Hard cap on ?timeout_ms= for the events long-poll; larger requests
  /// are clamped (a worker thread is parked for the duration).
  int64_t max_event_poll_ms = 30000;
};

/// Builds the routing handler over `service`. The service must outlive
/// the returned handler (and the HttpServer it is mounted on); the
/// handler is thread-safe because the service is.
HttpServer::Handler MakeRestHandler(ExplanationService& service,
                                    RestApiOptions options = {});

/// Same handler with the /v1/monitors surface mounted over `monitors`
/// (which must be bound to `service` and outlive the handler).
HttpServer::Handler MakeRestHandler(ExplanationService& service,
                                    MonitorRegistry& monitors,
                                    RestApiOptions options = {});

}  // namespace causumx

#endif  // CAUSUMX_SERVER_REST_API_H_
