#include "lp/simplex.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace causumx {

void LinearProgram::AddRow(std::vector<double> row, ConstraintSense sense,
                           double b) {
  if (row.size() != NumVars()) {
    throw std::invalid_argument("LP row arity mismatch");
  }
  rows.push_back(std::move(row));
  senses.push_back(sense);
  rhs.push_back(b);
}

const char* LpStatusName(LpStatus s) {
  switch (s) {
    case LpStatus::kOptimal:
      return "optimal";
    case LpStatus::kInfeasible:
      return "infeasible";
    case LpStatus::kUnbounded:
      return "unbounded";
    case LpStatus::kIterLimit:
      return "iteration-limit";
  }
  return "?";
}

namespace {

constexpr double kEps = 1e-9;

// Internal standard-form tableau solver:
//   max c^T x  s.t.  A x = b,  x >= 0,  b >= 0,
// starting from the given basis (one basic variable per row).
// Returns kOptimal/kUnbounded/kIterLimit; the tableau and basis are
// updated in place.
LpStatus RunSimplex(std::vector<std::vector<double>>& a,  // m x n
                    std::vector<double>& b,               // m
                    std::vector<double>& c,               // n (reduced costs)
                    double& objective,                    // running objective
                    std::vector<size_t>& basis,           // m
                    size_t max_iterations) {
  const size_t m = a.size();
  const size_t n = c.size();
  for (size_t iter = 0; iter < max_iterations; ++iter) {
    // Bland's rule: entering variable = smallest index with positive
    // reduced cost (maximization).
    size_t enter = n;
    for (size_t j = 0; j < n; ++j) {
      if (c[j] > kEps) {
        enter = j;
        break;
      }
    }
    if (enter == n) return LpStatus::kOptimal;

    // Ratio test: leaving row = min b_i / a_ie over a_ie > 0, Bland tiebreak
    // on basic variable index.
    size_t leave = m;
    double best_ratio = 0.0;
    for (size_t i = 0; i < m; ++i) {
      if (a[i][enter] > kEps) {
        const double ratio = b[i] / a[i][enter];
        if (leave == m || ratio < best_ratio - kEps ||
            (std::fabs(ratio - best_ratio) <= kEps &&
             basis[i] < basis[leave])) {
          leave = i;
          best_ratio = ratio;
        }
      }
    }
    if (leave == m) return LpStatus::kUnbounded;

    // Pivot on (leave, enter).
    const double piv = a[leave][enter];
    for (size_t j = 0; j < n; ++j) a[leave][j] /= piv;
    b[leave] /= piv;
    for (size_t i = 0; i < m; ++i) {
      if (i == leave) continue;
      const double f = a[i][enter];
      if (std::fabs(f) <= kEps) continue;
      for (size_t j = 0; j < n; ++j) a[i][j] -= f * a[leave][j];
      b[i] -= f * b[leave];
      if (b[i] < 0 && b[i] > -kEps) b[i] = 0;
    }
    const double fc = c[enter];
    if (std::fabs(fc) > kEps) {
      for (size_t j = 0; j < n; ++j) c[j] -= fc * a[leave][j];
      objective += fc * b[leave];
    }
    basis[leave] = enter;
  }
  return LpStatus::kIterLimit;
}

}  // namespace

LpSolution SolveLp(const LinearProgram& lp, size_t max_iterations) {
  LpSolution sol;
  const size_t n0 = lp.NumVars();

  // Convert to standard form:
  //  * finite upper bounds become extra <= rows,
  //  * <= rows gain a slack, >= rows a surplus (negated slack),
  //  * all rows normalized to b >= 0,
  //  * phase-1 artificials for rows lacking an identity column.
  std::vector<std::vector<double>> rows = lp.rows;
  std::vector<ConstraintSense> senses = lp.senses;
  std::vector<double> rhs = lp.rhs;
  for (size_t j = 0; j < n0 && j < lp.upper_bounds.size(); ++j) {
    const double ub = lp.upper_bounds[j];
    if (std::isfinite(ub)) {
      std::vector<double> row(n0, 0.0);
      row[j] = 1.0;
      rows.push_back(std::move(row));
      senses.push_back(ConstraintSense::kLe);
      rhs.push_back(ub);
    }
  }
  const size_t m = rows.size();

  // Count slack columns.
  size_t num_slacks = 0;
  for (auto s : senses) {
    if (s != ConstraintSense::kEq) ++num_slacks;
  }
  const size_t n1 = n0 + num_slacks;        // structural + slack
  const size_t n_total = n1 + m;            // + one artificial per row

  std::vector<std::vector<double>> a(m, std::vector<double>(n_total, 0.0));
  std::vector<double> b(m, 0.0);
  std::vector<size_t> basis(m, 0);

  size_t slack_col = n0;
  for (size_t i = 0; i < m; ++i) {
    double sign = 1.0;
    if (rhs[i] < 0) sign = -1.0;  // normalize to b >= 0
    for (size_t j = 0; j < n0; ++j) a[i][j] = sign * rows[i][j];
    b[i] = sign * rhs[i];
    if (senses[i] != ConstraintSense::kEq) {
      const double slack_sign =
          (senses[i] == ConstraintSense::kLe) ? 1.0 : -1.0;
      a[i][slack_col] = sign * slack_sign;
      ++slack_col;
    }
    // Artificial column for every row; phase 1 drives them out. (For rows
    // whose slack already forms an identity column this is redundant but
    // harmless — the artificial simply never enters.)
    a[i][n1 + i] = 1.0;
    basis[i] = n1 + i;
  }

  // Phase 1: minimize sum of artificials == max -sum(artificials).
  std::vector<double> c1(n_total, 0.0);
  for (size_t i = 0; i < m; ++i) c1[n1 + i] = -1.0;
  // Price out the initial basis (reduced costs must be zero on basics).
  double obj1 = 0.0;
  for (size_t i = 0; i < m; ++i) {
    for (size_t j = 0; j < n_total; ++j) c1[j] += a[i][j];
    obj1 -= b[i];  // causumx-lint: allow(fp-accumulation) serial fixed row order)
  }
  // (c1 := c1 - sum over basic rows of (coef of artificial = -1)*row.)
  LpStatus st = RunSimplex(a, b, c1, obj1, basis, max_iterations);
  if (st == LpStatus::kIterLimit) {
    sol.status = st;
    return sol;
  }
  if (obj1 < -1e-6) {
    sol.status = LpStatus::kInfeasible;
    return sol;
  }
  // Drive any artificial still in the basis to zero by pivoting it out on
  // a nonzero structural column, or drop the (redundant) row.
  for (size_t i = 0; i < m; ++i) {
    if (basis[i] < n1) continue;
    size_t pivot_col = n_total;
    for (size_t j = 0; j < n1; ++j) {
      if (std::fabs(a[i][j]) > kEps) {
        pivot_col = j;
        break;
      }
    }
    if (pivot_col == n_total) continue;  // all-zero row; harmless.
    const double piv = a[i][pivot_col];
    for (size_t j = 0; j < n_total; ++j) a[i][j] /= piv;
    b[i] /= piv;
    for (size_t r = 0; r < m; ++r) {
      if (r == i) continue;
      const double f = a[r][pivot_col];
      if (std::fabs(f) <= kEps) continue;
      for (size_t j = 0; j < n_total; ++j) a[r][j] -= f * a[i][j];
      b[r] -= f * b[i];
    }
    basis[i] = pivot_col;
  }

  // Phase 2: original objective over structural + slack columns;
  // artificials pinned at zero by excluding them (zero cost, and we forbid
  // them from entering by making their reduced cost very negative).
  std::vector<double> c2(n_total, 0.0);
  for (size_t j = 0; j < n0; ++j) c2[j] = lp.objective[j];
  // Price out the current basis.
  double obj2 = 0.0;
  for (size_t i = 0; i < m; ++i) {
    const size_t bj = basis[i];
    const double cb = bj < n0 ? lp.objective[bj] : 0.0;
    if (cb == 0.0) continue;
    for (size_t j = 0; j < n_total; ++j) c2[j] -= cb * a[i][j];
    obj2 += cb * b[i];  // causumx-lint: allow(fp-accumulation) serial fixed row order)
  }
  for (size_t i = 0; i < m; ++i) c2[n1 + i] = -1e30;  // block artificials
  st = RunSimplex(a, b, c2, obj2, basis, max_iterations);
  if (st != LpStatus::kOptimal) {
    sol.status = st;
    return sol;
  }

  sol.status = LpStatus::kOptimal;
  sol.values.assign(n0, 0.0);
  for (size_t i = 0; i < m; ++i) {
    if (basis[i] < n0) sol.values[basis[i]] = b[i];
  }
  sol.objective_value = 0.0;
  for (size_t j = 0; j < n0; ++j) {
    sol.objective_value += lp.objective[j] * sol.values[j];
  }
  return sol;
}

}  // namespace causumx
