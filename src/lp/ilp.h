// Exact 0/1 ILP by LP-based branch and bound.
//
// Used by the Brute-Force baseline (which needs the true optimum of the
// selection problem in Definition 4.5) and by tests that validate the
// randomized-rounding approximation against exact solutions.

#ifndef CAUSUMX_LP_ILP_H_
#define CAUSUMX_LP_ILP_H_

#include <vector>

#include "lp/simplex.h"

namespace causumx {

struct IlpSolution {
  LpStatus status = LpStatus::kInfeasible;
  double objective_value = 0.0;
  std::vector<double> values;  ///< integral (0/1) per variable.
};

/// Solves the LP with the first `num_binary_vars` variables restricted to
/// {0, 1} (0 or > NumVars() = all of them); remaining variables stay
/// continuous within their bounds. `max_nodes` bounds the branch-and-bound
/// tree; on exhaustion the best incumbent (if any) is returned with status
/// kIterLimit.
IlpSolution SolveBinaryIlp(const LinearProgram& lp, size_t max_nodes = 100'000,
                           size_t num_binary_vars = 0);

}  // namespace causumx

#endif  // CAUSUMX_LP_ILP_H_
