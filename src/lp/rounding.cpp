#include "lp/rounding.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

#include "lp/ilp.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace causumx {

size_t SelectionProblem::RequiredCoverage() const {
  return static_cast<size_t>(
      std::ceil(theta * static_cast<double>(num_groups) - 1e-9));
}

LinearProgram SelectionProblem::BuildLp() const {
  const size_t l = candidates.size();
  const size_t m = num_groups;
  LinearProgram lp;
  lp.objective.assign(l + m, 0.0);
  for (size_t j = 0; j < l; ++j) lp.objective[j] = candidates[j].weight;
  lp.upper_bounds.assign(l + m, 1.0);

  // (1) sum_j g_j <= k.
  {
    std::vector<double> row(l + m, 0.0);
    for (size_t j = 0; j < l; ++j) row[j] = 1.0;
    lp.AddRow(std::move(row), ConstraintSense::kLe,
              static_cast<double>(k));
  }
  // (2) t_i - sum_{j covers i} g_j <= 0.
  for (size_t i = 0; i < m; ++i) {
    std::vector<double> row(l + m, 0.0);
    row[l + i] = 1.0;
    for (size_t j = 0; j < l; ++j) {
      if (candidates[j].coverage.Test(i)) row[j] = -1.0;
    }
    lp.AddRow(std::move(row), ConstraintSense::kLe, 0.0);
  }
  // (3) sum_i t_i >= theta * m.
  {
    std::vector<double> row(l + m, 0.0);
    for (size_t i = 0; i < m; ++i) row[l + i] = 1.0;
    lp.AddRow(std::move(row), ConstraintSense::kGe,
              static_cast<double>(RequiredCoverage()));
  }
  return lp;
}

LinearProgram SelectionProblem::BuildReducedLp(
    std::vector<size_t>* signature_counts) const {
  const size_t l = candidates.size();
  // Signature of group i = the set of candidates covering it. Groups
  // covered by no candidate contribute nothing and are dropped (their
  // t_i is forced to 0 anyway).
  std::map<std::vector<uint32_t>, size_t> sig_count;
  for (size_t i = 0; i < num_groups; ++i) {
    std::vector<uint32_t> sig;
    for (size_t j = 0; j < l; ++j) {
      if (candidates[j].coverage.Test(i)) {
        sig.push_back(static_cast<uint32_t>(j));
      }
    }
    if (!sig.empty()) ++sig_count[sig];
  }
  std::vector<std::vector<uint32_t>> sigs;
  signature_counts->clear();
  for (const auto& [sig, count] : sig_count) {
    sigs.push_back(sig);
    signature_counts->push_back(count);
  }
  const size_t s = sigs.size();

  LinearProgram lp;
  lp.objective.assign(l + s, 0.0);
  for (size_t j = 0; j < l; ++j) lp.objective[j] = candidates[j].weight;
  lp.upper_bounds.assign(l + s, 1.0);
  for (size_t c = 0; c < s; ++c) {
    lp.upper_bounds[l + c] = static_cast<double>((*signature_counts)[c]);
  }
  {
    std::vector<double> row(l + s, 0.0);
    for (size_t j = 0; j < l; ++j) row[j] = 1.0;
    lp.AddRow(std::move(row), ConstraintSense::kLe, static_cast<double>(k));
  }
  // t_c <= count_c * sum_{j in sig} g_j  (all count_c groups of the
  // signature become coverable once any covering candidate is selected).
  for (size_t c = 0; c < s; ++c) {
    std::vector<double> row(l + s, 0.0);
    row[l + c] = 1.0;
    for (uint32_t j : sigs[c]) {
      row[j] = -static_cast<double>((*signature_counts)[c]);
    }
    lp.AddRow(std::move(row), ConstraintSense::kLe, 0.0);
  }
  {
    std::vector<double> row(l + s, 0.0);
    for (size_t c = 0; c < s; ++c) row[l + c] = 1.0;
    lp.AddRow(std::move(row), ConstraintSense::kGe,
              static_cast<double>(RequiredCoverage()));
  }
  return lp;
}

namespace {

// Evaluates a chosen index set against the problem constraints.
SelectionResult Evaluate(const SelectionProblem& p,
                         const std::vector<size_t>& selected) {
  SelectionResult r;
  r.selected = selected;
  std::sort(r.selected.begin(), r.selected.end());
  r.selected.erase(std::unique(r.selected.begin(), r.selected.end()),
                   r.selected.end());
  Bitset covered(p.num_groups);
  for (size_t j : r.selected) {
    r.total_weight += p.candidates[j].weight;
    covered |= p.candidates[j].coverage;
  }
  r.covered_groups = covered.Count();
  r.feasible = r.selected.size() <= p.k &&
               r.covered_groups >= p.RequiredCoverage();
  return r;
}

bool Better(const SelectionResult& a, const SelectionResult& b) {
  // Feasible beats infeasible; then weight; then coverage.
  if (a.feasible != b.feasible) return a.feasible;
  if (a.feasible) return a.total_weight > b.total_weight;
  if (a.covered_groups != b.covered_groups) {
    return a.covered_groups > b.covered_groups;
  }
  return a.total_weight > b.total_weight;
}

}  // namespace

SelectionResult SolveByLpRounding(const SelectionProblem& p, size_t rounds,
                                  uint64_t seed) {
  SelectionResult best;
  if (p.candidates.empty()) {
    best.feasible = p.RequiredCoverage() == 0;
    return best;
  }
  std::vector<size_t> sig_counts;
  const LpSolution lp = SolveLp(p.BuildReducedLp(&sig_counts));
  if (lp.status != LpStatus::kOptimal) {
    // LP infeasible => ILP infeasible (Prop. A.1(1)); report best effort 0.
    return best;
  }
  best.lp_feasible = true;
  const size_t l = p.candidates.size();

  // Sampling weights g_j / k (clip tiny negatives from the solver).
  std::vector<double> weights(l, 0.0);
  for (size_t j = 0; j < l; ++j) {
    weights[j] = std::max(0.0, lp.values[j]);
  }

  Rng rng(seed);
  for (size_t round = 0; round < rounds; ++round) {
    std::vector<size_t> pick;
    pick.reserve(p.k);
    for (size_t draw = 0; draw < p.k; ++draw) {
      pick.push_back(rng.NextWeighted(weights));
    }
    SelectionResult cand = Evaluate(p, pick);
    cand.lp_feasible = true;
    cand.lp_objective = lp.objective_value;
    if (round == 0 || Better(cand, best)) best = std::move(cand);
  }
  best.lp_objective = lp.objective_value;
  return best;
}

SelectionResult SolveExact(const SelectionProblem& p) {
  SelectionResult best;
  if (p.candidates.empty()) {
    best.feasible = p.RequiredCoverage() == 0;
    return best;
  }
  std::vector<size_t> sig_counts;
  const IlpSolution ilp =
      SolveBinaryIlp(p.BuildReducedLp(&sig_counts), 100'000,
                     /*num_binary_vars=*/p.candidates.size());
  if (ilp.status != LpStatus::kOptimal &&
      ilp.status != LpStatus::kIterLimit) {
    return best;
  }
  std::vector<size_t> selected;
  for (size_t j = 0; j < p.candidates.size(); ++j) {
    if (ilp.values[j] > 0.5) selected.push_back(j);
  }
  best = Evaluate(p, selected);
  best.lp_feasible = true;
  best.lp_objective = ilp.objective_value;
  return best;
}

SelectionResult SolveGreedy(const SelectionProblem& p, double gain_bonus,
                            ThreadPool* pool) {
  SelectionResult result;
  Bitset covered(p.num_groups);
  const size_t l = p.candidates.size();
  std::set<size_t> chosen;
  // Incomparability constraint: never take two candidates with the same
  // coverage. The dedup compares bit content on a hash-bucket hit — a
  // hash-only check would let a 64-bit collision silently skip a distinct
  // candidate and degrade the selection.
  BitsetDedup used_coverages;

  std::vector<double> scores(l);
  constexpr double kExcluded = -1e301;  // below any real score
  for (size_t step = 0; step < p.k; ++step) {
    // Marginal-gain scan: each candidate's score is an independent
    // popcount (|coverage \ covered|), computed pool-parallel; the
    // argmax below runs serially in index order, so the chosen index —
    // the first candidate achieving the maximum — matches the serial
    // scan exactly.
    ThreadPool::RunOn(pool, l, [&](size_t j) {
      if (chosen.count(j) ||
          used_coverages.Contains(p.candidates[j].coverage)) {
        scores[j] = kExcluded;
        return;
      }
      // Ranged marginal-gain count: candidate coverages are sized to
      // the problem's group universe, so scanning exactly [0,
      // num_groups) keeps the score correct even if a caller hands in
      // coverages over a grown (appended) universe.
      const double gain =
          gain_bonus == 0.0
              ? 0.0
              : static_cast<double>(p.candidates[j].coverage.CountAndNotRange(
                    covered, 0, p.num_groups));
      scores[j] = p.candidates[j].weight + gain_bonus * gain;
    });
    size_t best_j = l;
    double best_score = -1e300;
    for (size_t j = 0; j < l; ++j) {
      if (scores[j] == kExcluded) continue;
      if (scores[j] > best_score) {
        best_score = scores[j];
        best_j = j;
      }
    }
    if (best_j == l) break;
    chosen.insert(best_j);
    used_coverages.Insert(p.candidates[best_j].coverage);
    covered |= p.candidates[best_j].coverage;
  }
  result = Evaluate(p, {chosen.begin(), chosen.end()});
  return result;
}

}  // namespace causumx
