// The explanation-selection program of Fig. 5 and its randomized-rounding
// solver (Section 5.3 / Appendix A of the paper).
//
// Variables: g_j (pick pattern j, weight w_j), t_i (group i covered).
//   max  sum_j g_j w_j
//   s.t. sum_j g_j <= k
//        t_i <= sum_{j : pattern j covers group i} g_j      (for each i)
//        sum_i t_i >= theta * m
//        g_j, t_i in {0,1}
// The LP relaxation is solved exactly (simplex) and rounded by sampling k
// patterns with probabilities g_j / k (Raghavan–Thompson), repeated a few
// times keeping the best feasible draw.

#ifndef CAUSUMX_LP_ROUNDING_H_
#define CAUSUMX_LP_ROUNDING_H_

#include <cstdint>
#include <vector>

#include "lp/simplex.h"
#include "util/bitset.h"

namespace causumx {

class ThreadPool;

/// Input: one candidate per explanation pattern.
struct SelectionCandidate {
  double weight = 0.0;  ///< explainability weight (|CATE+| + |CATE-|).
  Bitset coverage;      ///< bit per group in Q(D).
};

struct SelectionProblem {
  std::vector<SelectionCandidate> candidates;
  size_t num_groups = 0;
  size_t k = 5;
  double theta = 0.75;

  /// Minimum number of groups that must be covered: ceil(theta * m).
  size_t RequiredCoverage() const;

  /// Builds the Fig. 5 LP relaxation (variables: candidates then groups).
  LinearProgram BuildLp() const;

  /// Equivalent reduced LP: groups with identical coverage signatures
  /// (covered by exactly the same candidates) are aggregated into one
  /// variable t_c in [0, count_c]. Exact for both the LP optimum and the
  /// rounding probabilities while shrinking thousands of per-group
  /// variables to a handful (crucial when m is large, e.g. the synthetic
  /// dataset's one-group-per-tuple views). `signature_counts` receives the
  /// group count per aggregated variable.
  LinearProgram BuildReducedLp(std::vector<size_t>* signature_counts) const;
};

struct SelectionResult {
  bool feasible = false;          ///< a constraint-satisfying set was found.
  bool lp_feasible = false;       ///< the LP relaxation had a solution.
  std::vector<size_t> selected;   ///< indices into candidates.
  double total_weight = 0.0;      ///< sum of selected weights.
  size_t covered_groups = 0;      ///< |union of coverages|.
  double lp_objective = 0.0;      ///< optimal fractional objective (bound).
};

/// Solves by LP + randomized rounding. `rounds` independent rounding draws
/// are taken; the best feasible one wins (ties by weight). If no draw is
/// feasible, returns the best-coverage draw with feasible=false.
SelectionResult SolveByLpRounding(const SelectionProblem& problem,
                                  size_t rounds = 64, uint64_t seed = 1234);

/// Exact solver via branch and bound over the same ILP; used by the
/// Brute-Force baseline and tests.
SelectionResult SolveExact(const SelectionProblem& problem);

/// Greedy selection (the Greedy-Last-Step variant, Section 6): repeatedly
/// takes the candidate maximizing weight + (coverage gain) * gain_bonus
/// until k are chosen. `pool` (optional) parallelizes each step's
/// marginal-gain scan across candidates; every candidate's score is an
/// independent popcount, and the argmax is taken in a serial index-order
/// pass, so the selection is identical at any thread count.
SelectionResult SolveGreedy(const SelectionProblem& problem,
                            double gain_bonus = 0.0,
                            ThreadPool* pool = nullptr);

}  // namespace causumx

#endif  // CAUSUMX_LP_ROUNDING_H_
