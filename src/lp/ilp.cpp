#include "lp/ilp.h"

#include <cmath>
#include <optional>
#include <stack>

namespace causumx {

namespace {

constexpr double kIntTol = 1e-6;

struct Node {
  // Variable fixings: -1 = free, 0/1 = fixed.
  std::vector<int8_t> fixed;
};

// Applies fixings to a copy of the base LP via bound rows.
LinearProgram WithFixings(const LinearProgram& base,
                          const std::vector<int8_t>& fixed) {
  LinearProgram lp = base;
  for (size_t j = 0; j < fixed.size(); ++j) {
    if (fixed[j] < 0) continue;
    std::vector<double> row(base.NumVars(), 0.0);
    row[j] = 1.0;
    lp.AddRow(std::move(row), ConstraintSense::kEq,
              static_cast<double>(fixed[j]));
  }
  return lp;
}

// Index of the most fractional free binary variable, or nullopt if all
// binaries are integral.
std::optional<size_t> MostFractional(const std::vector<double>& x,
                                     const std::vector<int8_t>& fixed,
                                     size_t num_binary) {
  std::optional<size_t> best;
  double best_dist = kIntTol;
  for (size_t j = 0; j < x.size() && j < num_binary; ++j) {
    if (fixed[j] >= 0) continue;
    const double frac = x[j] - std::floor(x[j]);
    const double dist = std::min(frac, 1.0 - frac);
    if (dist > best_dist) {
      best_dist = dist;
      best = j;
    }
  }
  return best;
}

}  // namespace

IlpSolution SolveBinaryIlp(const LinearProgram& base, size_t max_nodes,
                           size_t num_binary_vars) {
  IlpSolution incumbent;

  LinearProgram lp = base;
  if (num_binary_vars == 0 || num_binary_vars > lp.NumVars()) {
    num_binary_vars = lp.NumVars();
  }
  // Ensure binary upper bounds on the binary prefix; continuous suffix
  // variables keep their declared bounds (default 1.0 if unset).
  if (lp.upper_bounds.size() < lp.NumVars()) {
    lp.upper_bounds.resize(lp.NumVars(), 1.0);
  }
  for (size_t j = 0; j < num_binary_vars; ++j) lp.upper_bounds[j] = 1.0;

  std::stack<Node> stack;
  stack.push(Node{std::vector<int8_t>(lp.NumVars(), -1)});
  size_t nodes = 0;
  bool exhausted = false;

  while (!stack.empty()) {
    if (++nodes > max_nodes) {
      exhausted = true;
      break;
    }
    Node node = std::move(stack.top());
    stack.pop();

    const LpSolution relax = SolveLp(WithFixings(lp, node.fixed));
    if (relax.status != LpStatus::kOptimal) continue;  // prune infeasible
    if (incumbent.status == LpStatus::kOptimal &&
        relax.objective_value <= incumbent.objective_value + 1e-9) {
      continue;  // bound
    }

    const auto branch_var =
        MostFractional(relax.values, node.fixed, num_binary_vars);
    if (!branch_var) {
      // Binary prefix integral (within tolerance) — round it and accept;
      // continuous suffix values pass through.
      IlpSolution cand;
      cand.status = LpStatus::kOptimal;
      cand.values.resize(relax.values.size());
      for (size_t j = 0; j < relax.values.size(); ++j) {
        cand.values[j] = j < num_binary_vars ? std::round(relax.values[j])
                                             : relax.values[j];
      }
      cand.objective_value = 0.0;
      for (size_t j = 0; j < lp.NumVars(); ++j) {
        cand.objective_value += lp.objective[j] * cand.values[j];
      }
      if (incumbent.status != LpStatus::kOptimal ||
          cand.objective_value > incumbent.objective_value) {
        incumbent = std::move(cand);
      }
      continue;
    }

    // Branch: try the rounded-up child first (depth-first on 1 tends to
    // find good incumbents early for cover-style problems).
    Node zero = node, one = node;
    zero.fixed[*branch_var] = 0;
    one.fixed[*branch_var] = 1;
    stack.push(std::move(zero));
    stack.push(std::move(one));
  }

  if (incumbent.status != LpStatus::kOptimal) {
    incumbent.status = exhausted ? LpStatus::kIterLimit : LpStatus::kInfeasible;
  } else if (exhausted) {
    incumbent.status = LpStatus::kIterLimit;  // best-effort incumbent
  }
  return incumbent;
}

}  // namespace causumx
