// Dense two-phase primal simplex LP solver.
//
// Solves  max c^T x  s.t.  A x {<=,>=,=} b,  0 <= x <= ub.
// This replaces the paper prototype's use of z3 for the LP relaxation of
// the explanation-selection ILP (Fig. 5). Problem sizes here are small
// (variables = #explanation patterns + #groups), so a dense tableau with
// Bland's anti-cycling rule is entirely adequate and dependency-free.

#ifndef CAUSUMX_LP_SIMPLEX_H_
#define CAUSUMX_LP_SIMPLEX_H_

#include <limits>
#include <string>
#include <vector>

namespace causumx {

/// Row sense for a linear constraint.
enum class ConstraintSense { kLe, kGe, kEq };

/// A linear program in the standard "rows + bounds" form.
struct LinearProgram {
  /// Objective coefficients (maximization).
  std::vector<double> objective;
  /// Constraint matrix rows (dense), senses, and right-hand sides.
  std::vector<std::vector<double>> rows;
  std::vector<ConstraintSense> senses;
  std::vector<double> rhs;
  /// Per-variable upper bounds (lower bounds are 0). Use kInf for free-up.
  std::vector<double> upper_bounds;

  static constexpr double kInf = std::numeric_limits<double>::infinity();

  size_t NumVars() const { return objective.size(); }
  size_t NumRows() const { return rows.size(); }

  /// Appends a constraint; `row` must have NumVars entries.
  void AddRow(std::vector<double> row, ConstraintSense sense, double b);
};

/// Solver outcome.
enum class LpStatus { kOptimal, kInfeasible, kUnbounded, kIterLimit };

const char* LpStatusName(LpStatus s);

struct LpSolution {
  LpStatus status = LpStatus::kInfeasible;
  double objective_value = 0.0;
  std::vector<double> values;  ///< primal values, one per variable.
};

/// Solves the LP. `max_iterations` guards against pathological cycling
/// (Bland's rule makes this a formality).
LpSolution SolveLp(const LinearProgram& lp, size_t max_iterations = 100'000);

}  // namespace causumx

#endif  // CAUSUMX_LP_SIMPLEX_H_
