// Shared evaluation engine: interned atomic predicates with lazily
// materialized, cached row bitsets, plus cached numeric column views —
// executed shard-parallel over a row-partitioned table.
//
// One EvalEngine instance is bound to one Table and shared by every
// component that evaluates patterns against it — the grouping/treatment
// miners, the effect estimator, the baselines, and interactive
// exploration sessions. Each atomic SimplePredicate is interned into a
// dense id; its matching rows are materialized once per table as
// per-shard bitset *segments* (one per ShardPlan shard, built
// ThreadPool-parallel) and conjunctive Patterns evaluate as shard-wise
// AND-accumulations of cached segments instead of row-at-a-time Value
// comparisons. The lattice structure of treatment mining makes this pay
// off: every level-(d+1) pattern reuses the d+1 atom segments its
// ancestors already materialized.
//
// Sharding is a pure execution strategy: shard boundaries are aligned to
// summation blocks (ShardPlan), all bit-level work decomposes exactly,
// and results are bit-identical for every shard count and thread count
// (the property suite in tests/test_property_sharded.cpp enforces this
// against the row-at-a-time reference path).
//
// Cached segments are byte-accounted and individually evictable
// (EvictLru), so a long-lived engine — e.g. one owned by an
// ExplanationService table entry serving many queries — can be kept
// under a memory budget. Eviction only discards cached work: an evicted
// segment is rematerialized on next use, bit-identically, and eviction
// granularity is one (predicate, shard) segment, so a tight budget
// sheds cold shards before cold predicates.
//
// A cache-bypass mode (cache_enabled = false) routes Evaluate through
// the reference Pattern::Evaluate path so tests can verify the cached
// path bit-for-bit and benchmarks can quantify the caches.

#ifndef CAUSUMX_ENGINE_EVAL_ENGINE_H_
#define CAUSUMX_ENGINE_EVAL_ENGINE_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "dataset/pattern.h"
#include "dataset/predicate.h"
#include "dataset/table.h"
#include "util/shard_plan.h"
#include "util/bitset.h"
#include "util/compressed_bitset.h"
#include "util/thread_annotations.h"

namespace causumx {

class ThreadPool;

/// Dense id of an interned atomic predicate (valid for one engine).
using PredicateId = uint32_t;

/// Cumulative cache counters. `bitset_hits` counts atom segment lookups
/// served from an already-materialized segment and
/// `segments_materialized` counts segment builds; `pattern_evals` /
/// `bypass_evals` split Evaluate/EvaluateOn calls by path.
/// `bitset_bytes` / `view_bytes` are current (not cumulative) accounted
/// sizes. With a single-shard plan a segment is the whole bitset, so the
/// segment counters coincide with the historical per-bitset ones.
struct EvalEngineStats {
  uint64_t predicates_interned = 0;
  uint64_t bitsets_materialized = 0;  ///< segments built (alias, see above)
  uint64_t bitset_hits = 0;
  uint64_t bitsets_evicted = 0;  ///< segments evicted
  uint64_t bitsets_extended = 0;  ///< predicates inherited via delta extension
  uint64_t bitsets_retracted = 0;  ///< predicates carried through retraction
  uint64_t pattern_evals = 0;
  uint64_t bypass_evals = 0;
  uint64_t column_views_built = 0;
  uint64_t column_views_extended = 0;  ///< inherited via delta extension
  uint64_t column_views_retracted = 0;  ///< carried through retraction
  size_t bitset_bytes = 0;
  size_t view_bytes = 0;
  size_t num_shards = 1;  ///< shards in the engine's plan
  /// Currently resident segments stored in compressed (Roaring-style)
  /// form; the remainder of the resident segments are plain bitsets.
  uint64_t segments_compressed = 0;
};

/// Cached numeric view of one column: GetNumeric for every row (NaN on
/// null) plus the non-null mask, as flat arrays for hot loops.
struct NumericColumnView {
  std::vector<double> values;
  Bitset valid;
};

/// Execution configuration of an engine.
struct EvalEngineOptions {
  /// When false, Evaluate routes through the reference
  /// Pattern::Evaluate path and nothing is cached.
  bool cache_enabled = true;
  /// Row shards for the table partition: 0 = one shard per pool worker
  /// (or 1 without a pool), otherwise the requested count clamped to
  /// [1, one shard per 64-row block]. Results are bit-identical for
  /// every value; only the parallelism granularity changes.
  size_t num_shards = 1;
  /// Worker pool for shard-parallel builds and evaluations. May be
  /// null (serial execution over the same shard plan). The engine keeps
  /// the pool alive.
  std::shared_ptr<ThreadPool> pool;
  /// Storage policy for cached predicate segments: kAuto compresses a
  /// segment when that at least halves its resident bytes, kNever keeps
  /// every segment as a plain bitset, kAlways compresses all of them
  /// (differential testing). Query results are bit-identical under
  /// every policy; only resident bytes and AND-path cost change.
  SegmentCompression compression = SegmentCompression::kAuto;
};

/// Pattern-evaluation engine bound to one table.
///
/// Thread-safe: Intern/PredicateBits/Evaluate/EvaluateOn/Numeric/EvictLru
/// may be called concurrently; each predicate segment and column view is
/// materialized at most once between evictions. The table must outlive
/// the engine (use the shared_ptr constructor to guarantee it).
class EvalEngine {
 public:
  explicit EvalEngine(const Table& table, bool cache_enabled = true);
  EvalEngine(const Table& table, EvalEngineOptions options);

  /// Shared-ownership binding: the engine keeps the table alive, so
  /// registry-style owners (ExplanationService, ExplorationSession) can
  /// hand out the engine without lifetime coupling to the table holder.
  explicit EvalEngine(std::shared_ptr<const Table> table,
                      bool cache_enabled = true);
  EvalEngine(std::shared_ptr<const Table> table, EvalEngineOptions options);

  /// Delta-aware rebinding for the streaming append path: a new engine
  /// over `table`, which must be `base`'s table extended by appended rows
  /// (same schema; rows [0, base rows) bit-identical). Every interned
  /// predicate keeps its id, and each cached segment is carried over:
  /// shards fully below the old row count share the base's segment
  /// objects outright (zero copy — their rows are untouched), the shard
  /// containing the append point extends by evaluating only the delta
  /// rows, and brand-new tail shards materialize for predicates that
  /// were cached. Only the dirty shards are re-evaluated — O(delta) per
  /// cache entry instead of a full-table rebuild. Evicted segments stay
  /// evicted (they rematerialize on next use). The shard size and pool
  /// are inherited, so shard boundaries stay stable across appends.
  /// Safe while `base` is serving concurrent queries; `base` itself is
  /// never modified. Throws std::invalid_argument when `table` does not
  /// extend the base table.
  EvalEngine(std::shared_ptr<const Table> table, const EvalEngine& base);

  /// Retract-aware rebinding for the windowed-retention path: a new
  /// engine over `table`, which must be `base`'s table with its first
  /// `dropped_prefix_rows` rows removed — row r of `table` holds the
  /// values of base row `dropped_prefix_rows + r` (Table::Tail builds
  /// exactly this; its dictionaries may be re-coded, which is fine
  /// because predicates match by value, not code). Every interned
  /// predicate keeps its dense id, so EstimatorContext memo keys stay
  /// valid across the retraction. A predicate whose surviving-row
  /// segments are all resident carries its bits over, shifted down by
  /// the dropped prefix and re-sliced at the new shard boundaries; a
  /// predicate with any needed segment evicted carries nothing and
  /// rematerializes on demand. Numeric column views of int/double
  /// columns shift down likewise; categorical views (whose numeric
  /// values are dictionary codes) and distinct-value caches rebuild on
  /// demand. Byte accounting restarts from the carried state — the
  /// expiry path is exactly how resident bytes shrink. The shard size
  /// and pool are inherited. Safe while `base` serves concurrent
  /// queries; `base` is never modified. Throws std::invalid_argument on
  /// a row-count/schema mismatch.
  EvalEngine(std::shared_ptr<const Table> table, const EvalEngine& base,
             size_t dropped_prefix_rows);

  EvalEngine(const EvalEngine&) = delete;
  EvalEngine& operator=(const EvalEngine&) = delete;

  const Table& table() const { return table_; }
  bool cache_enabled() const { return cache_enabled_; }

  /// The engine's row partition. Single-shard for the bool constructors.
  const ShardPlan& plan() const { return plan_; }

  /// The engine's worker pool (null = serial execution).
  ThreadPool* pool() const { return pool_.get(); }

  /// Interns an atomic predicate, returning its dense id. Idempotent:
  /// structurally equal predicates intern to the same id.
  PredicateId Intern(const SimplePredicate& pred);

  /// The matching-row bitset of an interned predicate, materialized on
  /// first use (agrees bit-for-bit with Pattern::Evaluate / Matches).
  /// Returned by shared_ptr so a concurrent EvictLru can never pull the
  /// bits out from under a reader; an evicted entry rebuilds on next
  /// use. With a multi-shard plan the cached segments are assembled
  /// into a fresh whole-table bitset per call; Evaluate works on the
  /// segments directly and is the hot path.
  std::shared_ptr<const Bitset> PredicateBits(PredicateId id);

  /// Batched pattern evaluation. Cached path: shard-wise AND-accumulate
  /// of cached atom segments (pool-parallel across shards). Bypass
  /// path: Pattern::Evaluate. Bit-identical either way.
  Bitset Evaluate(const Pattern& pattern);

  /// Evaluate restricted to rows where `mask` is set.
  Bitset EvaluateOn(const Pattern& pattern, const Bitset& mask);

  /// Cached numeric view of column `col` (by index), built on first use
  /// (pool-parallel across shards).
  const NumericColumnView& Numeric(size_t col);

  /// Cached distinct non-null values of column `col`, ascending (the
  /// atom generator calls this once per lattice walk; uncached it is an
  /// O(rows) set-build each time). Built on first use; in bypass mode it
  /// recomputes per call (identical values, uncached work profile).
  /// Callers gate on Column::NumDistinct first, so cached vectors stay
  /// small in practice.
  std::shared_ptr<const std::vector<Value>> DistinctValues(size_t col);

  /// Number of distinct predicates interned so far.
  size_t NumInterned() const;

  /// Accounted bytes of currently materialized predicate segments (the
  /// evictable portion of the cache; numeric views are bounded by the
  /// table footprint and not evicted).
  size_t CacheBytes() const;

  /// Evicts least-recently-used (predicate, shard) segments until at
  /// least `bytes_to_free` accounted bytes are released (or nothing is
  /// left to evict). Returns the bytes actually freed. Safe to call
  /// concurrently with evaluation; evicted segments rebuild on demand.
  size_t EvictLru(size_t bytes_to_free);

  /// Snapshot of the cache counters.
  EvalEngineStats Stats() const;

  /// Serializes the warm predicate cache — every interned predicate in
  /// id order and each resident segment in its exact representation —
  /// for the storage layer's warm-state snapshots. Evicted segments are
  /// skipped (they rematerialize on demand). Column views are cheap to
  /// rebuild and not exported. Safe to call concurrently with queries.
  std::string ExportCacheState() const;

  /// Seeds a freshly constructed engine (nothing interned yet) with
  /// state exported from an engine over identical table content and an
  /// identical (rows, shard plan, compression, cache mode)
  /// configuration. Predicates intern in export order, so the dense ids
  /// — and every CATE memo keyed on them — are preserved. Returns the
  /// number of segments restored. Throws StorageError: kStale when the
  /// configuration does not match, kCorrupt when the payload is
  /// malformed; the engine is unusable after a throw mid-import and
  /// must be discarded (the caller rebuilds cold).
  size_t ImportCacheState(const std::string& bytes);

 private:
  struct PredicateSlot {
    SimplePredicate pred;
    mutable util::Mutex mu;  // guards `segs` / `seg_used` build/evict
    /// One entry per shard; null until materialized (or after evict).
    /// Each segment is plain or compressed per the engine's policy.
    std::vector<std::shared_ptr<const SegmentBits>> segs
        CAUSUMX_GUARDED_BY(mu);
    /// LRU stamp per segment.
    std::vector<uint64_t> seg_used CAUSUMX_GUARDED_BY(mu);
  };
  /// Double-checked build: `ready` (acquire/release) publishes `view`
  /// after it is built under `mu` — or seeded by the delta-extension
  /// constructor. (A once_flag cannot express "already built": the
  /// extension ctor pre-fills inherited views.) `view` / `distinct` are
  /// deliberately NOT GUARDED_BY: after publication they are immutable
  /// and read lock-free; the mutex only serializes the one-time build.
  struct ColumnSlot {
    util::Mutex mu;
    std::atomic<bool> ready{false};
    NumericColumnView view;
    util::Mutex distinct_mu;
    std::atomic<bool> distinct_ready{false};
    std::shared_ptr<const std::vector<Value>> distinct;
  };

  static size_t BitsetBytes(const Bitset& bits);

  /// Runs fn(shard) for every shard, pool-parallel when a pool is set.
  void RunSharded(size_t n, const std::function<void(size_t)>& fn) const;

  /// Returns every segment of the predicate, materializing (and
  /// byte-accounting) the missing ones pool-parallel, and stamping all
  /// of them as used. The returned pointers are safe against concurrent
  /// eviction.
  std::vector<std::shared_ptr<const SegmentBits>> SegmentsOf(PredicateId id);

  const std::shared_ptr<const Table> keepalive_;  // may be null (ref ctor)
  const Table& table_;  // not owned; must outlive the engine.
  const bool cache_enabled_;
  const SegmentCompression compression_;
  const ShardPlan plan_;
  const std::shared_ptr<ThreadPool> pool_;  // may be null (serial)

  mutable util::SharedMutex intern_mu_;
  std::unordered_map<std::string, PredicateId> ids_
      CAUSUMX_GUARDED_BY(intern_mu_);
  /// Deque: stable refs while growing. The container (growth, indexing)
  /// is guarded; a PredicateSlot* obtained under the lock stays valid
  /// after release and synchronizes on its own slot mutex.
  std::deque<PredicateSlot> slots_ CAUSUMX_GUARDED_BY(intern_mu_);
  std::deque<ColumnSlot> column_slots_;

  std::atomic<uint64_t> clock_{0};  // LRU stamp source
  std::atomic<uint64_t> n_interned_{0};
  std::atomic<uint64_t> n_materialized_{0};
  std::atomic<uint64_t> n_bitset_hits_{0};
  std::atomic<uint64_t> n_evicted_{0};
  std::atomic<uint64_t> n_compressed_{0};  // currently resident compressed
  std::atomic<uint64_t> n_extended_{0};
  std::atomic<uint64_t> n_retracted_{0};
  std::atomic<uint64_t> n_views_retracted_{0};
  std::atomic<uint64_t> n_pattern_evals_{0};
  std::atomic<uint64_t> n_bypass_evals_{0};
  std::atomic<uint64_t> n_views_built_{0};
  std::atomic<uint64_t> n_views_extended_{0};
  std::atomic<size_t> bitset_bytes_{0};
  std::atomic<size_t> view_bytes_{0};
};

}  // namespace causumx

#endif  // CAUSUMX_ENGINE_EVAL_ENGINE_H_
