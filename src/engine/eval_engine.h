// Shared evaluation engine: interned atomic predicates with lazily
// materialized, cached row bitsets, plus cached numeric column views.
//
// One EvalEngine instance is bound to one Table and shared by every
// component that evaluates patterns against it — the grouping/treatment
// miners, the effect estimator, the baselines, and interactive
// exploration sessions. Each atomic SimplePredicate is interned into a
// dense id; its matching-row Bitset is computed once per table
// (thread-safe — the phase-2 thread pool hits the cache concurrently)
// and conjunctive Patterns evaluate as ANDs of cached bitsets instead of
// row-at-a-time Value comparisons. The lattice structure of treatment
// mining makes this pay off: every level-(d+1) pattern reuses the d+1
// atom bitsets its ancestors already materialized.
//
// A cache-bypass mode (cache_enabled = false) routes Evaluate through
// the reference Pattern::Evaluate path so tests can verify the cached
// path bit-for-bit and benchmarks can quantify the caches.

#ifndef CAUSUMX_ENGINE_EVAL_ENGINE_H_
#define CAUSUMX_ENGINE_EVAL_ENGINE_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "dataset/pattern.h"
#include "dataset/predicate.h"
#include "dataset/table.h"
#include "util/bitset.h"

namespace causumx {

/// Dense id of an interned atomic predicate (valid for one engine).
using PredicateId = uint32_t;

/// Cumulative cache counters. `bitset_hits` counts atom lookups served
/// from an already-materialized bitset; `pattern_evals` / `bypass_evals`
/// split Evaluate/EvaluateOn calls by path.
struct EvalEngineStats {
  uint64_t predicates_interned = 0;
  uint64_t bitsets_materialized = 0;
  uint64_t bitset_hits = 0;
  uint64_t pattern_evals = 0;
  uint64_t bypass_evals = 0;
  uint64_t column_views_built = 0;
};

/// Cached numeric view of one column: GetNumeric for every row (NaN on
/// null) plus the non-null mask, as flat arrays for hot loops.
struct NumericColumnView {
  std::vector<double> values;
  Bitset valid;
};

/// Pattern-evaluation engine bound to one table.
///
/// Thread-safe: Intern/PredicateBits/Evaluate/EvaluateOn/Numeric may be
/// called concurrently; each predicate bitset and column view is
/// materialized exactly once. The table must outlive the engine.
class EvalEngine {
 public:
  explicit EvalEngine(const Table& table, bool cache_enabled = true);

  EvalEngine(const EvalEngine&) = delete;
  EvalEngine& operator=(const EvalEngine&) = delete;

  const Table& table() const { return table_; }
  bool cache_enabled() const { return cache_enabled_; }

  /// Interns an atomic predicate, returning its dense id. Idempotent:
  /// structurally equal predicates intern to the same id.
  PredicateId Intern(const SimplePredicate& pred);

  /// The matching-row bitset of an interned predicate, materialized on
  /// first use (agrees bit-for-bit with Pattern::Evaluate / Matches).
  const Bitset& PredicateBits(PredicateId id);

  /// Batched pattern evaluation. Cached path: AND of cached atom
  /// bitsets. Bypass path: Pattern::Evaluate. Bit-identical either way.
  Bitset Evaluate(const Pattern& pattern);

  /// Evaluate restricted to rows where `mask` is set.
  Bitset EvaluateOn(const Pattern& pattern, const Bitset& mask);

  /// Cached numeric view of column `col` (by index), built on first use.
  const NumericColumnView& Numeric(size_t col);

  /// Number of distinct predicates interned so far.
  size_t NumInterned() const;

  /// Snapshot of the cache counters.
  EvalEngineStats Stats() const;

 private:
  struct PredicateSlot {
    SimplePredicate pred;
    std::once_flag once;
    Bitset bits;
  };
  struct ColumnSlot {
    std::once_flag once;
    NumericColumnView view;
  };

  const Table& table_;  // not owned; must outlive the engine.
  const bool cache_enabled_;

  mutable std::shared_mutex intern_mu_;
  std::unordered_map<std::string, PredicateId> ids_;
  std::deque<PredicateSlot> slots_;  // deque: stable refs while growing.
  std::deque<ColumnSlot> column_slots_;

  std::atomic<uint64_t> n_interned_{0};
  std::atomic<uint64_t> n_materialized_{0};
  std::atomic<uint64_t> n_bitset_hits_{0};
  std::atomic<uint64_t> n_pattern_evals_{0};
  std::atomic<uint64_t> n_bypass_evals_{0};
  std::atomic<uint64_t> n_views_built_{0};
};

}  // namespace causumx

#endif  // CAUSUMX_ENGINE_EVAL_ENGINE_H_
