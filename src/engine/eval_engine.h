// Shared evaluation engine: interned atomic predicates with lazily
// materialized, cached row bitsets, plus cached numeric column views.
//
// One EvalEngine instance is bound to one Table and shared by every
// component that evaluates patterns against it — the grouping/treatment
// miners, the effect estimator, the baselines, and interactive
// exploration sessions. Each atomic SimplePredicate is interned into a
// dense id; its matching-row Bitset is computed once per table
// (thread-safe — the phase-2 thread pool hits the cache concurrently)
// and conjunctive Patterns evaluate as ANDs of cached bitsets instead of
// row-at-a-time Value comparisons. The lattice structure of treatment
// mining makes this pay off: every level-(d+1) pattern reuses the d+1
// atom bitsets its ancestors already materialized.
//
// Cached bitsets are byte-accounted and individually evictable
// (EvictLru), so a long-lived engine — e.g. one owned by an
// ExplanationService table entry serving many queries — can be kept
// under a memory budget. Eviction only discards cached work: an evicted
// bitset is rematerialized on next use, bit-identically.
//
// A cache-bypass mode (cache_enabled = false) routes Evaluate through
// the reference Pattern::Evaluate path so tests can verify the cached
// path bit-for-bit and benchmarks can quantify the caches.

#ifndef CAUSUMX_ENGINE_EVAL_ENGINE_H_
#define CAUSUMX_ENGINE_EVAL_ENGINE_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "dataset/pattern.h"
#include "dataset/predicate.h"
#include "dataset/table.h"
#include "util/bitset.h"

namespace causumx {

/// Dense id of an interned atomic predicate (valid for one engine).
using PredicateId = uint32_t;

/// Cumulative cache counters. `bitset_hits` counts atom lookups served
/// from an already-materialized bitset; `pattern_evals` / `bypass_evals`
/// split Evaluate/EvaluateOn calls by path. `bitset_bytes` / `view_bytes`
/// are current (not cumulative) accounted sizes.
struct EvalEngineStats {
  uint64_t predicates_interned = 0;
  uint64_t bitsets_materialized = 0;
  uint64_t bitset_hits = 0;
  uint64_t bitsets_evicted = 0;
  uint64_t bitsets_extended = 0;  ///< inherited via delta extension
  uint64_t pattern_evals = 0;
  uint64_t bypass_evals = 0;
  uint64_t column_views_built = 0;
  uint64_t column_views_extended = 0;  ///< inherited via delta extension
  size_t bitset_bytes = 0;
  size_t view_bytes = 0;
};

/// Cached numeric view of one column: GetNumeric for every row (NaN on
/// null) plus the non-null mask, as flat arrays for hot loops.
struct NumericColumnView {
  std::vector<double> values;
  Bitset valid;
};

/// Pattern-evaluation engine bound to one table.
///
/// Thread-safe: Intern/PredicateBits/Evaluate/EvaluateOn/Numeric/EvictLru
/// may be called concurrently; each predicate bitset and column view is
/// materialized at most once between evictions. The table must outlive
/// the engine (use the shared_ptr constructor to guarantee it).
class EvalEngine {
 public:
  explicit EvalEngine(const Table& table, bool cache_enabled = true);

  /// Shared-ownership binding: the engine keeps the table alive, so
  /// registry-style owners (ExplanationService, ExplorationSession) can
  /// hand out the engine without lifetime coupling to the table holder.
  explicit EvalEngine(std::shared_ptr<const Table> table,
                      bool cache_enabled = true);

  /// Delta-aware rebinding for the streaming append path: a new engine
  /// over `table`, which must be `base`'s table extended by appended rows
  /// (same schema; rows [0, base rows) bit-identical). Every interned
  /// predicate keeps its id, and each cached bitset / numeric column view
  /// is carried over and extended by evaluating only the delta rows —
  /// O(delta) per cache entry instead of a full-table rebuild. Evicted
  /// entries stay evicted (they rematerialize over the full table on next
  /// use). Safe while `base` is serving concurrent queries; `base` itself
  /// is never modified. Throws std::invalid_argument when `table` does
  /// not extend the base table.
  EvalEngine(std::shared_ptr<const Table> table, const EvalEngine& base);

  EvalEngine(const EvalEngine&) = delete;
  EvalEngine& operator=(const EvalEngine&) = delete;

  const Table& table() const { return table_; }
  bool cache_enabled() const { return cache_enabled_; }

  /// Interns an atomic predicate, returning its dense id. Idempotent:
  /// structurally equal predicates intern to the same id.
  PredicateId Intern(const SimplePredicate& pred);

  /// The matching-row bitset of an interned predicate, materialized on
  /// first use (agrees bit-for-bit with Pattern::Evaluate / Matches).
  /// Returned by shared_ptr so a concurrent EvictLru can never pull the
  /// bits out from under a reader; an evicted entry rebuilds on next use.
  std::shared_ptr<const Bitset> PredicateBits(PredicateId id);

  /// Batched pattern evaluation. Cached path: AND of cached atom
  /// bitsets. Bypass path: Pattern::Evaluate. Bit-identical either way.
  Bitset Evaluate(const Pattern& pattern);

  /// Evaluate restricted to rows where `mask` is set.
  Bitset EvaluateOn(const Pattern& pattern, const Bitset& mask);

  /// Cached numeric view of column `col` (by index), built on first use.
  const NumericColumnView& Numeric(size_t col);

  /// Cached distinct non-null values of column `col`, ascending (the
  /// atom generator calls this once per lattice walk; uncached it is an
  /// O(rows) set-build each time). Built on first use; in bypass mode it
  /// recomputes per call (identical values, uncached work profile).
  /// Callers gate on Column::NumDistinct first, so cached vectors stay
  /// small in practice.
  std::shared_ptr<const std::vector<Value>> DistinctValues(size_t col);

  /// Number of distinct predicates interned so far.
  size_t NumInterned() const;

  /// Accounted bytes of currently materialized predicate bitsets (the
  /// evictable portion of the cache; numeric views are bounded by the
  /// table footprint and not evicted).
  size_t CacheBytes() const;

  /// Evicts least-recently-used predicate bitsets until at least
  /// `bytes_to_free` accounted bytes are released (or nothing is left to
  /// evict). Returns the bytes actually freed. Safe to call concurrently
  /// with evaluation; evicted bitsets rebuild on demand.
  size_t EvictLru(size_t bytes_to_free);

  /// Snapshot of the cache counters.
  EvalEngineStats Stats() const;

 private:
  struct PredicateSlot {
    SimplePredicate pred;
    mutable std::mutex mu;               // guards `bits` build/evict
    std::shared_ptr<const Bitset> bits;  // null until materialized/evicted
    std::atomic<uint64_t> last_used{0};
  };
  /// Double-checked build: `ready` (acquire/release) publishes `view`
  /// after it is built under `mu` — or seeded by the delta-extension
  /// constructor. (A once_flag cannot express "already built": the
  /// extension ctor pre-fills inherited views.)
  struct ColumnSlot {
    std::mutex mu;
    std::atomic<bool> ready{false};
    NumericColumnView view;
    std::mutex distinct_mu;
    std::atomic<bool> distinct_ready{false};
    std::shared_ptr<const std::vector<Value>> distinct;
  };

  static size_t BitsetBytes(const Bitset& bits);

  const std::shared_ptr<const Table> keepalive_;  // may be null (ref ctor)
  const Table& table_;  // not owned; must outlive the engine.
  const bool cache_enabled_;

  mutable std::shared_mutex intern_mu_;
  std::unordered_map<std::string, PredicateId> ids_;
  std::deque<PredicateSlot> slots_;  // deque: stable refs while growing.
  std::deque<ColumnSlot> column_slots_;

  std::atomic<uint64_t> clock_{0};  // LRU stamp source
  std::atomic<uint64_t> n_interned_{0};
  std::atomic<uint64_t> n_materialized_{0};
  std::atomic<uint64_t> n_bitset_hits_{0};
  std::atomic<uint64_t> n_evicted_{0};
  std::atomic<uint64_t> n_extended_{0};
  std::atomic<uint64_t> n_pattern_evals_{0};
  std::atomic<uint64_t> n_bypass_evals_{0};
  std::atomic<uint64_t> n_views_built_{0};
  std::atomic<uint64_t> n_views_extended_{0};
  std::atomic<size_t> bitset_bytes_{0};
  std::atomic<size_t> view_bytes_{0};
};

}  // namespace causumx

#endif  // CAUSUMX_ENGINE_EVAL_ENGINE_H_
