#include "engine/eval_engine.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>
#include <stdexcept>
#include <tuple>
#include <utility>

#include "storage/bytes.h"
#include "storage/storage_error.h"
#include "util/thread_pool.h"

namespace causumx {

namespace {

// Structural key of an atomic predicate. '\0' separators keep
// ("AB", "=", "c") and ("A", "=", "Bc") distinct. Numeric constants are
// encoded exactly (doubles by bit pattern) — Value::ToString rounds to 6
// significant digits, which would conflate distinct thresholds and make
// the cached path serve the wrong bitset.
std::string PredicateKey(const SimplePredicate& p) {
  std::string key = p.attribute;
  key.push_back('\0');
  key.push_back(static_cast<char>('0' + static_cast<int>(p.op)));
  key.push_back('\0');
  const Value& v = p.value;
  if (v.is_double()) {
    char buf[24];
    std::snprintf(buf, sizeof(buf), "d%016llx",
                  (unsigned long long)std::bit_cast<uint64_t>(v.AsDouble()));
    key += buf;
  } else if (v.is_int()) {
    key.push_back('i');
    key += std::to_string(v.AsInt());
  } else if (v.is_string()) {
    key.push_back('s');
    key += v.AsString();
  } else {
    key.push_back('n');
  }
  return key;
}

ShardPlan PlanFor(const Table& table, const EvalEngineOptions& options) {
  const size_t auto_shards =
      options.pool != nullptr ? options.pool->NumThreads() : 1;
  return ShardPlan::ForShardCount(table.NumRows(), options.num_shards,
                                  auto_shards);
}

}  // namespace

EvalEngine::EvalEngine(const Table& table, bool cache_enabled)
    : EvalEngine(table, EvalEngineOptions{cache_enabled, 1, nullptr}) {}

EvalEngine::EvalEngine(const Table& table, EvalEngineOptions options)
    : keepalive_(nullptr),
      table_(table),
      cache_enabled_(options.cache_enabled),
      compression_(options.compression),
      plan_(PlanFor(table, options)),
      pool_(std::move(options.pool)) {
  for (size_t c = 0; c < table_.NumColumns(); ++c) {
    column_slots_.emplace_back();
  }
}

EvalEngine::EvalEngine(std::shared_ptr<const Table> table, bool cache_enabled)
    : EvalEngine(std::move(table),
                 EvalEngineOptions{cache_enabled, 1, nullptr}) {}

EvalEngine::EvalEngine(std::shared_ptr<const Table> table,
                       EvalEngineOptions options)
    : keepalive_(std::move(table)),
      table_(*keepalive_),
      cache_enabled_(options.cache_enabled),
      compression_(options.compression),
      plan_(PlanFor(*keepalive_, options)),
      pool_(std::move(options.pool)) {
  for (size_t c = 0; c < table_.NumColumns(); ++c) {
    column_slots_.emplace_back();
  }
}

EvalEngine::EvalEngine(std::shared_ptr<const Table> table,
                       const EvalEngine& base)
    : keepalive_(std::move(table)),
      table_(*keepalive_),
      cache_enabled_(base.cache_enabled_),
      compression_(base.compression_),
      plan_(base.plan_.Extended(keepalive_->NumRows())),
      pool_(base.pool_) {
  const size_t old_rows = base.table_.NumRows();
  const size_t new_rows = table_.NumRows();
  if (new_rows < old_rows ||
      table_.NumColumns() != base.table_.NumColumns()) {
    throw std::invalid_argument(
        "EvalEngine delta extension: table does not extend the base table");
  }

  // Inherit the intern table (ids must survive so EstimatorContext memo
  // keys stay valid across the append) and carry over every materialized
  // segment. The base may be serving queries concurrently, so the
  // snapshot phase under its shared intern lock only copies pointers —
  // the O(predicates x delta) re-evaluation of the dirty shards happens
  // after the lock is released, so a query that needs to intern a new
  // predicate into the base never waits on the append. This engine is
  // still private to the constructor, so its own members need no locks.
  struct SlotSnapshot {
    SimplePredicate pred;
    std::vector<std::shared_ptr<const SegmentBits>> segs;
    std::vector<uint64_t> seg_used;
  };
  std::vector<SlotSnapshot> snapshot;
  {
    util::ReaderMutexLock base_lock(base.intern_mu_);
    ids_ = base.ids_;
    clock_.store(base.clock_.load(std::memory_order_relaxed),
                 std::memory_order_relaxed);
    snapshot.reserve(base.slots_.size());
    for (size_t id = 0; id < base.slots_.size(); ++id) {
      const PredicateSlot& src = base.slots_[id];
      SlotSnapshot snap;
      snap.pred = src.pred;
      {
        util::MutexLock lk(src.mu);
        snap.segs = src.segs;
        snap.seg_used = src.seg_used;
      }
      snapshot.push_back(std::move(snap));
    }
  }
  const size_t num_shards = plan_.NumShards();
  for (SlotSnapshot& snap : snapshot) {
    slots_.emplace_back();
    PredicateSlot& dst = slots_.back();
    dst.pred = std::move(snap.pred);
    dst.segs.resize(num_shards);
    dst.seg_used.assign(num_shards, 0);
    bool carried_any = false;
    for (size_t s = 0; s < num_shards; ++s) {
      const size_t begin = plan_.ShardBegin(s);
      const size_t end = plan_.ShardEnd(s);
      const bool existed = s < snap.segs.size();
      const std::shared_ptr<const SegmentBits> old_seg =
          existed ? snap.segs[s] : nullptr;
      if (existed && old_seg == nullptr) continue;  // evicted: stays evicted
      if (!existed && !carried_any) continue;  // predicate was never cached
      if (old_seg != nullptr && old_seg->size() == end - begin) {
        // Clean shard, untouched by the append: share the base's segment.
        dst.segs[s] = old_seg;
        dst.seg_used[s] = snap.seg_used[s];
        carried_any = true;
        continue;
      }
      // Dirty shard (spans the append point) or brand-new tail shard:
      // evaluate only the rows the base segment did not cover.
      // Row-at-a-time Matches agrees bit-for-bit with Pattern::Evaluate
      // (see the engine property tests), including the absent-dictionary-
      // constant case: old rows keep their old codes, so a constant that
      // only entered the dictionary with the delta still matches no old
      // row. The extended bits re-enter Choose, so the representation
      // tracks the shard's post-append density.
      const size_t covered =
          old_seg != nullptr ? begin + old_seg->size() : begin;
      Bitset ext = old_seg != nullptr ? old_seg->Materialize() : Bitset();
      ext.Resize(end - begin);
      for (size_t r = covered; r < end; ++r) {
        if (dst.pred.Matches(table_, r)) ext.Set(r - begin);
      }
      dst.segs[s] = std::make_shared<const SegmentBits>(
          SegmentBits::Choose(std::move(ext), compression_));
      dst.seg_used[s] = existed ? snap.seg_used[s] : 0;
      carried_any = true;
    }
    for (const auto& seg : dst.segs) {
      if (seg != nullptr) {
        bitset_bytes_.fetch_add(seg->bytes(), std::memory_order_relaxed);
        if (seg->compressed()) {
          n_compressed_.fetch_add(1, std::memory_order_relaxed);
        }
      }
    }
    if (carried_any) n_extended_.fetch_add(1, std::memory_order_relaxed);
  }
  n_interned_.store(slots_.size(), std::memory_order_relaxed);

  for (size_t c = 0; c < table_.NumColumns(); ++c) {
    column_slots_.emplace_back();
    ColumnSlot& dst = column_slots_.back();
    const ColumnSlot& src = base.column_slots_[c];
    if (!src.ready.load(std::memory_order_acquire)) continue;
    const Column& col = table_.column(c);
    dst.view.values = src.view.values;
    dst.view.valid = src.view.valid;
    dst.view.values.resize(new_rows);
    dst.view.valid.Resize(new_rows);
    for (size_t r = old_rows; r < new_rows; ++r) {
      if (col.IsNull(r)) {
        dst.view.values[r] = std::nan("");
      } else {
        dst.view.values[r] = col.GetNumeric(r);
        dst.view.valid.Set(r);
      }
    }
    view_bytes_.fetch_add(
        new_rows * sizeof(double) + BitsetBytes(dst.view.valid),
        std::memory_order_relaxed);
    n_views_extended_.fetch_add(1, std::memory_order_relaxed);
    dst.ready.store(true, std::memory_order_release);
  }
}

EvalEngine::EvalEngine(std::shared_ptr<const Table> table,
                       const EvalEngine& base, size_t dropped_prefix_rows)
    : keepalive_(std::move(table)),
      table_(*keepalive_),
      cache_enabled_(base.cache_enabled_),
      compression_(base.compression_),
      plan_(keepalive_->NumRows(), base.plan_.shard_rows()),
      pool_(base.pool_) {
  const size_t old_rows = base.table_.NumRows();
  const size_t new_rows = table_.NumRows();
  const size_t dropped = dropped_prefix_rows;
  if (dropped > old_rows || new_rows != old_rows - dropped ||
      table_.NumColumns() != base.table_.NumColumns()) {
    throw std::invalid_argument(
        "EvalEngine retraction: table is not the base table minus its "
        "dropped prefix");
  }

  // Same two-phase structure as the delta-extension constructor: the
  // snapshot under the base's shared intern lock copies only pointers,
  // and all bit work happens after release, so the base keeps serving
  // queries. Every predicate keeps its id; its bits shift down by the
  // dropped prefix and re-slice at the new shard boundaries.
  struct SlotSnapshot {
    SimplePredicate pred;
    std::vector<std::shared_ptr<const SegmentBits>> segs;
    std::vector<uint64_t> seg_used;
  };
  std::vector<SlotSnapshot> snapshot;
  {
    util::ReaderMutexLock base_lock(base.intern_mu_);
    ids_ = base.ids_;
    clock_.store(base.clock_.load(std::memory_order_relaxed),
                 std::memory_order_relaxed);
    snapshot.reserve(base.slots_.size());
    for (size_t id = 0; id < base.slots_.size(); ++id) {
      const PredicateSlot& src = base.slots_[id];
      SlotSnapshot snap;
      snap.pred = src.pred;
      {
        util::MutexLock lk(src.mu);
        snap.segs = src.segs;
        snap.seg_used = src.seg_used;
      }
      snapshot.push_back(std::move(snap));
    }
  }
  const size_t num_shards = plan_.NumShards();
  for (SlotSnapshot& snap : snapshot) {
    slots_.emplace_back();
    PredicateSlot& dst = slots_.back();
    dst.pred = std::move(snap.pred);
    dst.segs.resize(num_shards);
    dst.seg_used.assign(num_shards, 0);
    // All-or-nothing carry: the shifted bits must equal a from-scratch
    // evaluation over the survivors, so every base segment overlapping a
    // surviving row must be resident (survivor values — though not
    // dictionary codes — are unchanged, and predicates match by value).
    // Shards ending inside the dropped prefix contribute no surviving
    // bits and may be missing or evicted. A predicate with a hole
    // carries nothing and rematerializes on demand, like an evictee.
    bool all_resident = true;
    bool any_surviving = false;
    for (size_t s = 0; s < base.plan_.NumShards(); ++s) {
      if (base.plan_.ShardEnd(s) <= dropped) continue;
      if (s < snap.segs.size() && snap.segs[s] != nullptr) {
        any_surviving = true;
      } else {
        all_resident = false;
      }
    }
    if (!all_resident || !any_surviving) continue;
    Bitset whole(old_rows);
    uint64_t carried_stamp = 0;
    for (size_t s = 0; s < base.plan_.NumShards(); ++s) {
      if (base.plan_.ShardEnd(s) <= dropped) continue;
      snap.segs[s]->AssignIntoRange(&whole, base.plan_.ShardBegin(s));
      carried_stamp = std::max(carried_stamp, snap.seg_used[s]);
    }
    whole.DropPrefix(dropped);
    for (size_t s = 0; s < num_shards; ++s) {
      Bitset seg_bits =
          whole.ExtractRange(plan_.ShardBegin(s), plan_.ShardEnd(s));
      dst.segs[s] = std::make_shared<const SegmentBits>(
          SegmentBits::Choose(std::move(seg_bits), compression_));
      dst.seg_used[s] = carried_stamp;
      bitset_bytes_.fetch_add(dst.segs[s]->bytes(),
                              std::memory_order_relaxed);
      if (dst.segs[s]->compressed()) {
        n_compressed_.fetch_add(1, std::memory_order_relaxed);
      }
    }
    n_retracted_.fetch_add(1, std::memory_order_relaxed);
  }
  n_interned_.store(slots_.size(), std::memory_order_relaxed);

  for (size_t c = 0; c < table_.NumColumns(); ++c) {
    column_slots_.emplace_back();
    ColumnSlot& dst = column_slots_.back();
    const ColumnSlot& src = base.column_slots_[c];
    if (!src.ready.load(std::memory_order_acquire)) continue;
    // A categorical column's numeric view holds dictionary codes, and
    // the compacted table re-codes its dictionaries in survivor
    // first-appearance order — those views rebuild on demand.
    if (table_.column(c).type() == ColumnType::kCategorical) continue;
    dst.view.values.assign(
        src.view.values.begin() + static_cast<ptrdiff_t>(dropped),
        src.view.values.end());
    dst.view.valid = src.view.valid;
    dst.view.valid.DropPrefix(dropped);
    view_bytes_.fetch_add(
        new_rows * sizeof(double) + BitsetBytes(dst.view.valid),
        std::memory_order_relaxed);
    n_views_retracted_.fetch_add(1, std::memory_order_relaxed);
    dst.ready.store(true, std::memory_order_release);
  }
}

size_t EvalEngine::BitsetBytes(const Bitset& bits) {
  return sizeof(Bitset) + ((bits.size() + 63) / 64) * sizeof(uint64_t);
}

void EvalEngine::RunSharded(size_t n,
                            const std::function<void(size_t)>& fn) const {
  ThreadPool::RunOn(pool_.get(), n, fn);
}

PredicateId EvalEngine::Intern(const SimplePredicate& pred) {
  const std::string key = PredicateKey(pred);
  {
    util::ReaderMutexLock lock(intern_mu_);
    auto it = ids_.find(key);
    if (it != ids_.end()) return it->second;
  }
  util::WriterMutexLock lock(intern_mu_);
  auto [it, inserted] =
      ids_.emplace(key, static_cast<PredicateId>(slots_.size()));
  if (inserted) {
    slots_.emplace_back();
    slots_.back().pred = pred;
    slots_.back().segs.resize(plan_.NumShards());
    slots_.back().seg_used.assign(plan_.NumShards(), 0);
    n_interned_.fetch_add(1, std::memory_order_relaxed);
  }
  return it->second;
}

std::vector<std::shared_ptr<const SegmentBits>> EvalEngine::SegmentsOf(
    PredicateId id) {
  PredicateSlot* slot;
  {
    util::ReaderMutexLock lock(intern_mu_);
    slot = &slots_[id];
  }
  const uint64_t stamp = clock_.fetch_add(1, std::memory_order_relaxed) + 1;
  util::MutexLock lk(slot->mu);
  std::vector<size_t> missing;
  for (size_t s = 0; s < slot->segs.size(); ++s) {
    slot->seg_used[s] = stamp;
    if (slot->segs[s] == nullptr) missing.push_back(s);
  }
  if (!missing.empty()) {
    // Build the missing segments pool-parallel into a scratch array;
    // workers never touch the slot (the lock is ours), and the
    // ParallelFor join orders their writes before the publication below.
    // Each worker runs the kernel-backed single-predicate evaluator and
    // then the representation switch, so compression cost parallelizes
    // with the evaluation itself.
    std::vector<std::shared_ptr<const SegmentBits>> built(missing.size());
    const SimplePredicate& pred = slot->pred;
    // causumx-analyzer: allow(lock-blocking) intentional: the sharded
    // build fans out while holding this slot's mutex so concurrent
    // readers of the same predicate block instead of duplicating the
    // build; workers take no locks, so no cycle is possible.
    RunSharded(missing.size(), [&](size_t i) {
      const size_t s = missing[i];
      built[i] = std::make_shared<const SegmentBits>(SegmentBits::Choose(
          EvaluatePredicateRange(table_, pred, plan_.ShardBegin(s),
                                 plan_.ShardEnd(s)),
          compression_));
    });
    for (size_t i = 0; i < missing.size(); ++i) {
      slot->segs[missing[i]] = built[i];
      bitset_bytes_.fetch_add(built[i]->bytes(), std::memory_order_relaxed);
      if (built[i]->compressed()) {
        n_compressed_.fetch_add(1, std::memory_order_relaxed);
      }
    }
    n_materialized_.fetch_add(missing.size(), std::memory_order_relaxed);
  }
  n_bitset_hits_.fetch_add(slot->segs.size() - missing.size(),
                           std::memory_order_relaxed);
  return slot->segs;
}

std::shared_ptr<const Bitset> EvalEngine::PredicateBits(PredicateId id) {
  std::vector<std::shared_ptr<const SegmentBits>> segs = SegmentsOf(id);
  if (segs.size() == 1) {
    if (const Bitset* plain = segs[0]->plain()) {
      // Single plain segment: alias the cached bits, zero copy.
      return std::shared_ptr<const Bitset>(segs[0], plain);
    }
    return std::make_shared<const Bitset>(segs[0]->Materialize());
  }
  Bitset whole(table_.NumRows());
  for (size_t s = 0; s < segs.size(); ++s) {
    segs[s]->AssignIntoRange(&whole, plan_.ShardBegin(s));
  }
  return std::make_shared<const Bitset>(std::move(whole));
}

Bitset EvalEngine::Evaluate(const Pattern& pattern) {
  if (!cache_enabled_) {
    n_bypass_evals_.fetch_add(1, std::memory_order_relaxed);
    return pattern.Evaluate(table_);
  }
  n_pattern_evals_.fetch_add(1, std::memory_order_relaxed);
  Bitset out(table_.NumRows());
  out.SetAll();
  std::vector<std::vector<std::shared_ptr<const SegmentBits>>> atoms;
  atoms.reserve(pattern.predicates().size());
  for (const auto& p : pattern.predicates()) {
    atoms.push_back(SegmentsOf(Intern(p)));
  }
  // Shard-wise AND-accumulate into the (word-aligned, disjoint) output
  // ranges. Deliberately serial: the expensive O(rows) work — segment
  // materialization — already ran pool-parallel inside SegmentsOf, and
  // the AND itself is a word-wise pass cheaper than a task dispatch.
  // Compressed segments decompress into one reused scratch buffer.
  std::vector<uint64_t> scratch;
  for (size_t s = 0; s < plan_.NumShards(); ++s) {
    const size_t begin = plan_.ShardBegin(s);
    for (const auto& segs : atoms) {
      segs[s]->AndIntoRange(&out, begin, &scratch);
    }
  }
  return out;
}

Bitset EvalEngine::EvaluateOn(const Pattern& pattern, const Bitset& mask) {
  Bitset out = Evaluate(pattern);
  out &= mask;
  return out;
}

const NumericColumnView& EvalEngine::Numeric(size_t col) {
  ColumnSlot& slot = column_slots_[col];
  if (slot.ready.load(std::memory_order_acquire)) return slot.view;
  util::MutexLock lk(slot.mu);
  if (slot.ready.load(std::memory_order_relaxed)) return slot.view;
  const Column& c = table_.column(col);
  const size_t n = table_.NumRows();
  slot.view.values.resize(n);
  slot.view.valid = Bitset(n);
  // Shards write disjoint index ranges of `values` and disjoint
  // (word-aligned) ranges of `valid`; the ParallelFor join publishes
  // their writes before `ready` is released below.
  // causumx-analyzer: allow(lock-blocking) intentional: the sharded view
  // build runs under this column's mutex so concurrent callers block on
  // one build instead of duplicating it; workers take no locks.
  RunSharded(plan_.NumShards(), [&](size_t s) {
    const size_t end = plan_.ShardEnd(s);
    for (size_t r = plan_.ShardBegin(s); r < end; ++r) {
      if (c.IsNull(r)) {
        slot.view.values[r] = std::nan("");
      } else {
        slot.view.values[r] = c.GetNumeric(r);
        slot.view.valid.Set(r);
      }
    }
  });
  n_views_built_.fetch_add(1, std::memory_order_relaxed);
  view_bytes_.fetch_add(n * sizeof(double) + BitsetBytes(slot.view.valid),
                        std::memory_order_relaxed);
  slot.ready.store(true, std::memory_order_release);
  return slot.view;
}

std::shared_ptr<const std::vector<Value>> EvalEngine::DistinctValues(
    size_t col) {
  if (!cache_enabled_) {
    return std::make_shared<const std::vector<Value>>(
        table_.column(col).DistinctValues());
  }
  ColumnSlot& slot = column_slots_[col];
  if (slot.distinct_ready.load(std::memory_order_acquire)) {
    return slot.distinct;
  }
  util::MutexLock lk(slot.distinct_mu);
  if (!slot.distinct_ready.load(std::memory_order_relaxed)) {
    slot.distinct = std::make_shared<const std::vector<Value>>(
        table_.column(col).DistinctValues());
    slot.distinct_ready.store(true, std::memory_order_release);
  }
  return slot.distinct;
}

size_t EvalEngine::NumInterned() const {
  util::ReaderMutexLock lock(intern_mu_);
  return slots_.size();
}

size_t EvalEngine::CacheBytes() const {
  return bitset_bytes_.load(std::memory_order_relaxed);
}

size_t EvalEngine::EvictLru(size_t bytes_to_free) {
  if (bytes_to_free == 0) return 0;
  // Snapshot (stamp, id, shard) triples oldest-first. A reader racing
  // with the scan may re-stamp or rebuild a segment; that only makes
  // eviction slightly less than perfectly LRU, never incorrect — readers
  // hold the bits by shared_ptr and evicted segments rebuild on demand.
  std::vector<std::tuple<uint64_t, PredicateId, uint32_t>> order;
  {
    util::ReaderMutexLock lock(intern_mu_);
    for (PredicateId id = 0; id < slots_.size(); ++id) {
      const PredicateSlot& slot = slots_[id];
      util::MutexLock lk(slot.mu);
      for (size_t s = 0; s < slot.segs.size(); ++s) {
        if (slot.segs[s] != nullptr) {
          order.emplace_back(slot.seg_used[s], id,
                             static_cast<uint32_t>(s));
        }
      }
    }
  }
  std::sort(order.begin(), order.end());
  size_t freed = 0;
  for (const auto& [stamp, id, shard] : order) {
    if (freed >= bytes_to_free) break;
    PredicateSlot* slot;
    {
      util::ReaderMutexLock lock(intern_mu_);
      slot = &slots_[id];
    }
    util::MutexLock lk(slot->mu);
    if (slot->segs[shard] != nullptr) {
      freed += slot->segs[shard]->bytes();
      if (slot->segs[shard]->compressed()) {
        n_compressed_.fetch_sub(1, std::memory_order_relaxed);
      }
      slot->segs[shard].reset();
      n_evicted_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  bitset_bytes_.fetch_sub(freed, std::memory_order_relaxed);
  return freed;
}

EvalEngineStats EvalEngine::Stats() const {
  EvalEngineStats s;
  s.predicates_interned = n_interned_.load(std::memory_order_relaxed);
  s.bitsets_materialized = n_materialized_.load(std::memory_order_relaxed);
  s.bitset_hits = n_bitset_hits_.load(std::memory_order_relaxed);
  s.bitsets_evicted = n_evicted_.load(std::memory_order_relaxed);
  s.segments_compressed = n_compressed_.load(std::memory_order_relaxed);
  s.bitsets_extended = n_extended_.load(std::memory_order_relaxed);
  s.bitsets_retracted = n_retracted_.load(std::memory_order_relaxed);
  s.pattern_evals = n_pattern_evals_.load(std::memory_order_relaxed);
  s.bypass_evals = n_bypass_evals_.load(std::memory_order_relaxed);
  s.column_views_built = n_views_built_.load(std::memory_order_relaxed);
  s.column_views_extended =
      n_views_extended_.load(std::memory_order_relaxed);
  s.column_views_retracted =
      n_views_retracted_.load(std::memory_order_relaxed);
  s.bitset_bytes = bitset_bytes_.load(std::memory_order_relaxed);
  s.view_bytes = view_bytes_.load(std::memory_order_relaxed);
  s.num_shards = plan_.NumShards();
  return s;
}

namespace {

// Typed Value codec for predicate constants (tags: 0 null, 1 int,
// 2 double by bit pattern, 3 string).
void PutValue(ByteWriter* w, const Value& v) {
  if (v.is_int()) {
    w->PutU8(1);
    w->PutVarintSigned(v.AsInt());
  } else if (v.is_double()) {
    w->PutU8(2);
    w->PutDouble(v.AsDouble());
  } else if (v.is_string()) {
    w->PutU8(3);
    w->PutString(v.AsString());
  } else {
    w->PutU8(0);
  }
}

Value GetValue(ByteReader* r) {
  switch (r->GetU8()) {
    case 0:
      return Value();
    case 1:
      return Value(r->GetVarintSigned());
    case 2:
      return Value(r->GetDouble());
    case 3:
      return Value(r->GetString());
    default:
      throw StorageError(StorageErrorKind::kCorrupt,
                         "engine cache: unknown value tag");
  }
}

}  // namespace

std::string EvalEngine::ExportCacheState() const {
  // Snapshot phase mirrors the delta-extension constructor: copy the
  // predicates and segment pointers under the locks, serialize after
  // releasing them so concurrent queries are never blocked on encoding.
  struct SlotSnapshot {
    SimplePredicate pred;
    std::vector<std::shared_ptr<const SegmentBits>> segs;
  };
  std::vector<SlotSnapshot> snapshot;
  {
    util::ReaderMutexLock lock(intern_mu_);
    snapshot.reserve(slots_.size());
    for (size_t id = 0; id < slots_.size(); ++id) {
      const PredicateSlot& src = slots_[id];
      SlotSnapshot snap;
      snap.pred = src.pred;
      {
        util::MutexLock lk(src.mu);
        snap.segs = src.segs;
      }
      snapshot.push_back(std::move(snap));
    }
  }

  ByteWriter w;
  w.PutU64(table_.NumRows());
  w.PutVarint(plan_.NumShards());
  w.PutVarint(plan_.shard_rows());
  w.PutU8(static_cast<uint8_t>(compression_));
  w.PutU8(cache_enabled_ ? 1 : 0);
  w.PutVarint(snapshot.size());
  for (const SlotSnapshot& snap : snapshot) {
    w.PutString(snap.pred.attribute);
    w.PutU8(static_cast<uint8_t>(snap.pred.op));
    PutValue(&w, snap.pred.value);
    w.PutVarint(snap.segs.size());
    for (const auto& seg : snap.segs) {
      if (seg == nullptr) {
        w.PutU8(0);
      } else {
        w.PutU8(1);
        std::string bytes;
        seg->Serialize(&bytes);
        w.PutString(bytes);
      }
    }
  }
  return w.TakeBytes();
}

size_t EvalEngine::ImportCacheState(const std::string& bytes) {
  ByteReader r(bytes);
  if (r.GetU64() != table_.NumRows()) {
    throw StorageError(StorageErrorKind::kStale,
                       "engine cache: row count mismatch");
  }
  if (r.GetVarint() != plan_.NumShards() ||
      r.GetVarint() != plan_.shard_rows()) {
    throw StorageError(StorageErrorKind::kStale,
                       "engine cache: shard plan mismatch");
  }
  if (r.GetU8() != static_cast<uint8_t>(compression_) ||
      (r.GetU8() != 0) != cache_enabled_) {
    throw StorageError(StorageErrorKind::kStale,
                       "engine cache: options mismatch");
  }
  const uint64_t n_preds = r.GetVarint();
  if (n_preds > bytes.size()) {
    throw StorageError(StorageErrorKind::kCorrupt,
                       "engine cache: implausible predicate count");
  }

  util::WriterMutexLock lock(intern_mu_);
  if (!slots_.empty()) {
    throw std::logic_error(
        "EvalEngine::ImportCacheState requires a fresh engine");
  }
  size_t restored = 0;
  const size_t num_shards = plan_.NumShards();
  for (uint64_t id = 0; id < n_preds; ++id) {
    SimplePredicate pred;
    pred.attribute = r.GetString();
    const uint8_t op = r.GetU8();
    if (op > static_cast<uint8_t>(CompareOp::kGe)) {
      throw StorageError(StorageErrorKind::kCorrupt,
                         "engine cache: unknown compare op");
    }
    pred.op = static_cast<CompareOp>(op);
    pred.value = GetValue(&r);

    const std::string key = PredicateKey(pred);
    if (!ids_.emplace(key, static_cast<PredicateId>(slots_.size())).second) {
      throw StorageError(StorageErrorKind::kCorrupt,
                         "engine cache: duplicate predicate");
    }
    slots_.emplace_back();
    PredicateSlot& dst = slots_.back();
    dst.pred = std::move(pred);
    util::MutexLock slot_lock(dst.mu);
    dst.segs.resize(num_shards);
    dst.seg_used.assign(num_shards, 0);

    const uint64_t n_segs = r.GetVarint();
    if (n_segs != num_shards) {
      throw StorageError(StorageErrorKind::kCorrupt,
                         "engine cache: segment count mismatch");
    }
    bool carried_any = false;
    for (size_t s = 0; s < num_shards; ++s) {
      if (r.GetU8() == 0) continue;
      const std::string seg_bytes = r.GetString();
      size_t pos = 0;
      SegmentBits seg = [&] {
        try {
          return SegmentBits::Deserialize(seg_bytes, &pos);
        } catch (const StorageError&) {
          throw;
        } catch (const std::runtime_error& e) {
          throw StorageError(StorageErrorKind::kCorrupt, e.what());
        }
      }();
      if (pos != seg_bytes.size()) {
        throw StorageError(StorageErrorKind::kCorrupt,
                           "engine cache: trailing segment bytes");
      }
      if (seg.size() != plan_.ShardEnd(s) - plan_.ShardBegin(s)) {
        throw StorageError(StorageErrorKind::kCorrupt,
                           "engine cache: segment size does not match shard");
      }
      auto shared = std::make_shared<const SegmentBits>(std::move(seg));
      bitset_bytes_.fetch_add(shared->bytes(), std::memory_order_relaxed);
      if (shared->compressed()) {
        n_compressed_.fetch_add(1, std::memory_order_relaxed);
      }
      dst.segs[s] = std::move(shared);
      carried_any = true;
      ++restored;
    }
    // Restored predicates count as inherited, like delta extension —
    // they were carried into this engine, not materialized by it.
    if (carried_any) n_extended_.fetch_add(1, std::memory_order_relaxed);
  }
  if (!r.AtEnd()) {
    throw StorageError(StorageErrorKind::kCorrupt,
                       "engine cache: trailing bytes");
  }
  n_interned_.store(slots_.size(), std::memory_order_relaxed);
  return restored;
}

}  // namespace causumx
