#include "engine/eval_engine.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>
#include <stdexcept>
#include <utility>

namespace causumx {

namespace {

// Structural key of an atomic predicate. '\0' separators keep
// ("AB", "=", "c") and ("A", "=", "Bc") distinct. Numeric constants are
// encoded exactly (doubles by bit pattern) — Value::ToString rounds to 6
// significant digits, which would conflate distinct thresholds and make
// the cached path serve the wrong bitset.
std::string PredicateKey(const SimplePredicate& p) {
  std::string key = p.attribute;
  key.push_back('\0');
  key.push_back(static_cast<char>('0' + static_cast<int>(p.op)));
  key.push_back('\0');
  const Value& v = p.value;
  if (v.is_double()) {
    char buf[24];
    std::snprintf(buf, sizeof(buf), "d%016llx",
                  (unsigned long long)std::bit_cast<uint64_t>(v.AsDouble()));
    key += buf;
  } else if (v.is_int()) {
    key.push_back('i');
    key += std::to_string(v.AsInt());
  } else if (v.is_string()) {
    key.push_back('s');
    key += v.AsString();
  } else {
    key.push_back('n');
  }
  return key;
}

}  // namespace

EvalEngine::EvalEngine(const Table& table, bool cache_enabled)
    : keepalive_(nullptr), table_(table), cache_enabled_(cache_enabled) {
  for (size_t c = 0; c < table_.NumColumns(); ++c) {
    column_slots_.emplace_back();
  }
}

EvalEngine::EvalEngine(std::shared_ptr<const Table> table, bool cache_enabled)
    : keepalive_(std::move(table)),
      table_(*keepalive_),
      cache_enabled_(cache_enabled) {
  for (size_t c = 0; c < table_.NumColumns(); ++c) {
    column_slots_.emplace_back();
  }
}

EvalEngine::EvalEngine(std::shared_ptr<const Table> table,
                       const EvalEngine& base)
    : keepalive_(std::move(table)),
      table_(*keepalive_),
      cache_enabled_(base.cache_enabled_) {
  const size_t old_rows = base.table_.NumRows();
  const size_t new_rows = table_.NumRows();
  if (new_rows < old_rows ||
      table_.NumColumns() != base.table_.NumColumns()) {
    throw std::invalid_argument(
        "EvalEngine delta extension: table does not extend the base table");
  }

  // Inherit the intern table (ids must survive so EstimatorContext memo
  // keys stay valid across the append) and carry over every materialized
  // bitset, extended by evaluating only the delta rows. The base may be
  // serving queries concurrently, so the snapshot phase under its shared
  // intern lock only copies pointers — the O(predicates x delta) bitset
  // re-evaluation happens after the lock is released, so a query that
  // needs to intern a new predicate into the base never waits on the
  // append. This engine is still private to the constructor, so its own
  // members need no locks.
  struct SlotSnapshot {
    SimplePredicate pred;
    std::shared_ptr<const Bitset> bits;  // null when evicted/unbuilt
    uint64_t last_used;
  };
  std::vector<SlotSnapshot> snapshot;
  {
    std::shared_lock base_lock(base.intern_mu_);
    ids_ = base.ids_;
    clock_.store(base.clock_.load(std::memory_order_relaxed),
                 std::memory_order_relaxed);
    snapshot.reserve(base.slots_.size());
    for (size_t id = 0; id < base.slots_.size(); ++id) {
      const PredicateSlot& src = base.slots_[id];
      SlotSnapshot snap;
      snap.pred = src.pred;
      snap.last_used = src.last_used.load(std::memory_order_relaxed);
      {
        std::lock_guard<std::mutex> lk(src.mu);
        snap.bits = src.bits;
      }
      snapshot.push_back(std::move(snap));
    }
  }
  for (SlotSnapshot& snap : snapshot) {
    slots_.emplace_back();
    PredicateSlot& dst = slots_.back();
    dst.pred = std::move(snap.pred);
    dst.last_used.store(snap.last_used, std::memory_order_relaxed);
    if (snap.bits == nullptr) continue;  // evicted: rebuilds on demand
    Bitset ext = *snap.bits;
    ext.Resize(new_rows);
    // Row-at-a-time Matches agrees bit-for-bit with Pattern::Evaluate
    // (see the engine property tests), including the absent-dictionary-
    // constant case: old rows keep their old codes, so a constant that
    // only entered the dictionary with the delta still matches no old row.
    for (size_t r = old_rows; r < new_rows; ++r) {
      if (dst.pred.Matches(table_, r)) ext.Set(r);
    }
    bitset_bytes_.fetch_add(BitsetBytes(ext), std::memory_order_relaxed);
    dst.bits = std::make_shared<const Bitset>(std::move(ext));
    n_extended_.fetch_add(1, std::memory_order_relaxed);
  }
  n_interned_.store(slots_.size(), std::memory_order_relaxed);

  for (size_t c = 0; c < table_.NumColumns(); ++c) {
    column_slots_.emplace_back();
    ColumnSlot& dst = column_slots_.back();
    const ColumnSlot& src = base.column_slots_[c];
    if (!src.ready.load(std::memory_order_acquire)) continue;
    const Column& col = table_.column(c);
    dst.view.values = src.view.values;
    dst.view.valid = src.view.valid;
    dst.view.values.resize(new_rows);
    dst.view.valid.Resize(new_rows);
    for (size_t r = old_rows; r < new_rows; ++r) {
      if (col.IsNull(r)) {
        dst.view.values[r] = std::nan("");
      } else {
        dst.view.values[r] = col.GetNumeric(r);
        dst.view.valid.Set(r);
      }
    }
    view_bytes_.fetch_add(
        new_rows * sizeof(double) + BitsetBytes(dst.view.valid),
        std::memory_order_relaxed);
    n_views_extended_.fetch_add(1, std::memory_order_relaxed);
    dst.ready.store(true, std::memory_order_release);
  }
}

size_t EvalEngine::BitsetBytes(const Bitset& bits) {
  return sizeof(Bitset) + ((bits.size() + 63) / 64) * sizeof(uint64_t);
}

PredicateId EvalEngine::Intern(const SimplePredicate& pred) {
  const std::string key = PredicateKey(pred);
  {
    std::shared_lock lock(intern_mu_);
    auto it = ids_.find(key);
    if (it != ids_.end()) return it->second;
  }
  std::unique_lock lock(intern_mu_);
  auto [it, inserted] =
      ids_.emplace(key, static_cast<PredicateId>(slots_.size()));
  if (inserted) {
    slots_.emplace_back();
    slots_.back().pred = pred;
    n_interned_.fetch_add(1, std::memory_order_relaxed);
  }
  return it->second;
}

std::shared_ptr<const Bitset> EvalEngine::PredicateBits(PredicateId id) {
  PredicateSlot* slot;
  {
    std::shared_lock lock(intern_mu_);
    slot = &slots_[id];
  }
  slot->last_used.store(clock_.fetch_add(1, std::memory_order_relaxed) + 1,
                        std::memory_order_relaxed);
  std::lock_guard<std::mutex> lk(slot->mu);
  if (slot->bits == nullptr) {
    // The single-atom reference evaluation guarantees agreement with
    // Pattern::Evaluate (and, via the property tests, with Matches).
    slot->bits =
        std::make_shared<const Bitset>(Pattern({slot->pred}).Evaluate(table_));
    n_materialized_.fetch_add(1, std::memory_order_relaxed);
    bitset_bytes_.fetch_add(BitsetBytes(*slot->bits),
                            std::memory_order_relaxed);
  } else {
    n_bitset_hits_.fetch_add(1, std::memory_order_relaxed);
  }
  return slot->bits;
}

Bitset EvalEngine::Evaluate(const Pattern& pattern) {
  if (!cache_enabled_) {
    n_bypass_evals_.fetch_add(1, std::memory_order_relaxed);
    return pattern.Evaluate(table_);
  }
  n_pattern_evals_.fetch_add(1, std::memory_order_relaxed);
  Bitset out(table_.NumRows());
  out.SetAll();
  for (const auto& p : pattern.predicates()) {
    out &= *PredicateBits(Intern(p));
  }
  return out;
}

Bitset EvalEngine::EvaluateOn(const Pattern& pattern, const Bitset& mask) {
  Bitset out = Evaluate(pattern);
  out &= mask;
  return out;
}

const NumericColumnView& EvalEngine::Numeric(size_t col) {
  ColumnSlot& slot = column_slots_[col];
  if (slot.ready.load(std::memory_order_acquire)) return slot.view;
  std::lock_guard<std::mutex> lk(slot.mu);
  if (slot.ready.load(std::memory_order_relaxed)) return slot.view;
  const Column& c = table_.column(col);
  const size_t n = table_.NumRows();
  slot.view.values.resize(n);
  slot.view.valid = Bitset(n);
  for (size_t r = 0; r < n; ++r) {
    if (c.IsNull(r)) {
      slot.view.values[r] = std::nan("");
    } else {
      slot.view.values[r] = c.GetNumeric(r);
      slot.view.valid.Set(r);
    }
  }
  n_views_built_.fetch_add(1, std::memory_order_relaxed);
  view_bytes_.fetch_add(n * sizeof(double) + BitsetBytes(slot.view.valid),
                        std::memory_order_relaxed);
  slot.ready.store(true, std::memory_order_release);
  return slot.view;
}

std::shared_ptr<const std::vector<Value>> EvalEngine::DistinctValues(
    size_t col) {
  if (!cache_enabled_) {
    return std::make_shared<const std::vector<Value>>(
        table_.column(col).DistinctValues());
  }
  ColumnSlot& slot = column_slots_[col];
  if (slot.distinct_ready.load(std::memory_order_acquire)) {
    return slot.distinct;
  }
  std::lock_guard<std::mutex> lk(slot.distinct_mu);
  if (!slot.distinct_ready.load(std::memory_order_relaxed)) {
    slot.distinct = std::make_shared<const std::vector<Value>>(
        table_.column(col).DistinctValues());
    slot.distinct_ready.store(true, std::memory_order_release);
  }
  return slot.distinct;
}

size_t EvalEngine::NumInterned() const {
  std::shared_lock lock(intern_mu_);
  return slots_.size();
}

size_t EvalEngine::CacheBytes() const {
  return bitset_bytes_.load(std::memory_order_relaxed);
}

size_t EvalEngine::EvictLru(size_t bytes_to_free) {
  if (bytes_to_free == 0) return 0;
  // Snapshot (stamp, id) pairs oldest-first. A reader racing with the
  // scan may re-stamp or rebuild a slot; that only makes eviction
  // slightly less than perfectly LRU, never incorrect — readers hold the
  // bits by shared_ptr and evicted entries rebuild on demand.
  std::vector<std::pair<uint64_t, PredicateId>> order;
  {
    std::shared_lock lock(intern_mu_);
    order.reserve(slots_.size());
    for (PredicateId id = 0; id < slots_.size(); ++id) {
      order.emplace_back(slots_[id].last_used.load(std::memory_order_relaxed),
                         id);
    }
  }
  std::sort(order.begin(), order.end());
  size_t freed = 0;
  for (const auto& [stamp, id] : order) {
    if (freed >= bytes_to_free) break;
    PredicateSlot* slot;
    {
      std::shared_lock lock(intern_mu_);
      slot = &slots_[id];
    }
    std::lock_guard<std::mutex> lk(slot->mu);
    if (slot->bits != nullptr) {
      freed += BitsetBytes(*slot->bits);
      slot->bits.reset();
      n_evicted_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  bitset_bytes_.fetch_sub(freed, std::memory_order_relaxed);
  return freed;
}

EvalEngineStats EvalEngine::Stats() const {
  EvalEngineStats s;
  s.predicates_interned = n_interned_.load(std::memory_order_relaxed);
  s.bitsets_materialized = n_materialized_.load(std::memory_order_relaxed);
  s.bitset_hits = n_bitset_hits_.load(std::memory_order_relaxed);
  s.bitsets_evicted = n_evicted_.load(std::memory_order_relaxed);
  s.bitsets_extended = n_extended_.load(std::memory_order_relaxed);
  s.pattern_evals = n_pattern_evals_.load(std::memory_order_relaxed);
  s.bypass_evals = n_bypass_evals_.load(std::memory_order_relaxed);
  s.column_views_built = n_views_built_.load(std::memory_order_relaxed);
  s.column_views_extended =
      n_views_extended_.load(std::memory_order_relaxed);
  s.bitset_bytes = bitset_bytes_.load(std::memory_order_relaxed);
  s.view_bytes = view_bytes_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace causumx
