// The PC algorithm (Spirtes et al.): constraint-based causal discovery.
//
// Phases: (1) skeleton search — start complete, remove edges whose
// endpoints are independent given some subset of neighbors, growing the
// conditioning size; (2) v-structure orientation from separating sets;
// (3) Meek rules to propagate orientations; (4) any remaining undirected
// edges are oriented by a deterministic fallback so the output is a DAG.

#ifndef CAUSUMX_CAUSAL_PC_H_
#define CAUSUMX_CAUSAL_PC_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "causal/dag.h"
#include "dataset/table.h"

namespace causumx {

/// Intermediate mixed graph used by PC/FCI: undirected skeleton plus
/// accumulated orientations.
class PdagBuilder {
 public:
  explicit PdagBuilder(std::vector<std::string> nodes);

  void AddUndirected(const std::string& a, const std::string& b);
  void RemoveUndirected(const std::string& a, const std::string& b);
  bool Adjacent(const std::string& a, const std::string& b) const;

  /// Orients a - b as a -> b (keeps adjacency).
  void Orient(const std::string& a, const std::string& b);
  bool IsOriented(const std::string& a, const std::string& b) const;
  bool IsUndirected(const std::string& a, const std::string& b) const;

  std::vector<std::string> Neighbors(const std::string& node) const;
  const std::vector<std::string>& nodes() const { return nodes_; }

  /// Applies Meek rules 1-3 until fixpoint.
  void ApplyMeekRules();

  /// Converts to a DAG: directed edges kept; undirected edges oriented by
  /// the node order in `priority` (earlier -> later), skipping any
  /// orientation that would close a cycle.
  CausalDag ToDag(const std::vector<std::string>& priority) const;

 private:
  std::vector<std::string> nodes_;
  std::set<std::pair<std::string, std::string>> undirected_;  // canonical a<b
  std::set<std::pair<std::string, std::string>> directed_;    // a -> b

  std::pair<std::string, std::string> Canon(const std::string& a,
                                            const std::string& b) const {
    return a < b ? std::make_pair(a, b) : std::make_pair(b, a);
  }
};

struct PcResult {
  CausalDag dag;
  /// Separating sets found during skeleton search: sepset[{a,b}] is the
  /// conditioning set that rendered a ⟂ b.
  std::map<std::pair<std::string, std::string>, std::set<std::string>> sepsets;
  size_t ci_tests_run = 0;
};

/// Runs PC over the table. `alpha` is the CI-test level; `max_cond_size`
/// bounds conditioning-set size; `max_rows` caps rows for statistics.
PcResult RunPc(const Table& table, double alpha = 0.05,
               size_t max_cond_size = 3, size_t max_rows = 100'000);

}  // namespace causumx

#endif  // CAUSUMX_CAUSAL_PC_H_
