#include "causal/dag_io.h"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "util/string_utils.h"

namespace causumx {

namespace {

std::string StripComment(const std::string& line) {
  const size_t pos = line.find('#');
  return pos == std::string::npos ? line : line.substr(0, pos);
}

}  // namespace

CausalDag ParseDagText(const std::string& text) {
  CausalDag dag;
  std::istringstream in(text);
  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const std::string body = Trim(StripComment(line));
    if (body.empty()) continue;

    const size_t arrow = body.find("->");
    if (arrow == std::string::npos) {
      // Isolated node declaration.
      dag.AddNode(body);
      continue;
    }
    const std::string from = Trim(body.substr(0, arrow));
    const std::string targets = body.substr(arrow + 2);
    if (from.empty()) {
      throw std::runtime_error(
          StrFormat("dag: line %zu: missing source node", line_no));
    }
    bool any_target = false;
    for (const std::string& raw : Split(targets, ',')) {
      const std::string to = Trim(raw);
      if (to.empty()) continue;
      any_target = true;
      try {
        dag.AddEdge(from, to);
      } catch (const std::invalid_argument& e) {
        throw std::runtime_error(
            StrFormat("dag: line %zu: %s", line_no, e.what()));
      }
    }
    if (!any_target) {
      throw std::runtime_error(
          StrFormat("dag: line %zu: '->' without a target", line_no));
    }
  }
  return dag;
}

CausalDag ParseDotText(const std::string& text) {
  CausalDag dag;
  std::istringstream in(text);
  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    std::string body = Trim(StripComment(line));
    if (body.empty() || body.starts_with("digraph") || body == "}" ||
        body == "{") {
      continue;
    }
    if (body.back() == ';') body.pop_back();
    body = Trim(body);
    // Extract quoted identifiers.
    std::vector<std::string> names;
    std::string cur;
    bool in_quotes = false;
    for (char c : body) {
      if (c == '"') {
        if (in_quotes) names.push_back(cur);
        cur.clear();
        in_quotes = !in_quotes;
      } else if (in_quotes) {
        cur.push_back(c);
      }
    }
    if (names.size() == 1) {
      dag.AddNode(names[0]);
    } else if (names.size() == 2 &&
               body.find("->") != std::string::npos) {
      try {
        dag.AddEdge(names[0], names[1]);
      } catch (const std::invalid_argument& e) {
        throw std::runtime_error(
            StrFormat("dot: line %zu: %s", line_no, e.what()));
      }
    } else if (!names.empty()) {
      throw std::runtime_error(
          StrFormat("dot: line %zu: unrecognized statement", line_no));
    }
  }
  return dag;
}

CausalDag ReadDagFile(const std::string& path) {
  std::ifstream f(path);
  if (!f) throw std::runtime_error("dag: cannot open " + path);
  std::stringstream buf;
  buf << f.rdbuf();
  const std::string text = buf.str();
  // Sniff DOT by its header.
  std::istringstream sniff(text);
  std::string line;
  while (std::getline(sniff, line)) {
    const std::string body = Trim(StripComment(line));
    if (body.empty()) continue;
    if (body.starts_with("digraph")) return ParseDotText(text);
    break;
  }
  return ParseDagText(text);
}

std::string DagToText(const CausalDag& dag) {
  std::ostringstream oss;
  oss << "# causal DAG: " << dag.NumNodes() << " nodes, " << dag.NumEdges()
      << " edges\n";
  for (const auto& node : dag.nodes()) {
    const auto children = dag.Children(node);
    if (children.empty()) {
      if (dag.Parents(node).empty()) oss << node << "\n";
      continue;
    }
    oss << node << " -> " << Join(children, ", ") << "\n";
  }
  return oss.str();
}

}  // namespace causumx
