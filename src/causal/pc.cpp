#include "causal/pc.h"

#include "causal/independence.h"

#include <algorithm>
#include <functional>

namespace causumx {

PdagBuilder::PdagBuilder(std::vector<std::string> nodes)
    : nodes_(std::move(nodes)) {}

void PdagBuilder::AddUndirected(const std::string& a, const std::string& b) {
  undirected_.insert(Canon(a, b));
}

void PdagBuilder::RemoveUndirected(const std::string& a,
                                   const std::string& b) {
  undirected_.erase(Canon(a, b));
  directed_.erase({a, b});
  directed_.erase({b, a});
}

bool PdagBuilder::Adjacent(const std::string& a, const std::string& b) const {
  return undirected_.count(Canon(a, b)) || directed_.count({a, b}) ||
         directed_.count({b, a});
}

void PdagBuilder::Orient(const std::string& a, const std::string& b) {
  if (directed_.count({b, a})) return;  // already oriented the other way
  undirected_.erase(Canon(a, b));
  directed_.insert({a, b});
}

bool PdagBuilder::IsOriented(const std::string& a,
                             const std::string& b) const {
  return directed_.count({a, b}) > 0;
}

bool PdagBuilder::IsUndirected(const std::string& a,
                               const std::string& b) const {
  return undirected_.count(Canon(a, b)) > 0;
}

std::vector<std::string> PdagBuilder::Neighbors(
    const std::string& node) const {
  std::vector<std::string> out;
  for (const auto& other : nodes_) {
    if (other != node && Adjacent(node, other)) out.push_back(other);
  }
  return out;
}

void PdagBuilder::ApplyMeekRules() {
  bool changed = true;
  while (changed) {
    changed = false;
    for (const auto& a : nodes_) {
      for (const auto& b : nodes_) {
        if (a == b || !IsUndirected(a, b)) continue;
        // Meek rule 1: c -> a and c not adjacent to b  =>  a -> b.
        for (const auto& c : nodes_) {
          if (c == a || c == b) continue;
          if (IsOriented(c, a) && !Adjacent(c, b)) {
            Orient(a, b);
            changed = true;
            break;
          }
        }
        if (!IsUndirected(a, b)) continue;
        // Meek rule 2: a -> c -> b  =>  a -> b (avoid cycle).
        for (const auto& c : nodes_) {
          if (c == a || c == b) continue;
          if (IsOriented(a, c) && IsOriented(c, b)) {
            Orient(a, b);
            changed = true;
            break;
          }
        }
        if (!IsUndirected(a, b)) continue;
        // Meek rule 3: a - c -> b and a - d -> b with c,d non-adjacent
        // =>  a -> b.
        bool done3 = false;
        for (const auto& c : nodes_) {
          if (done3 || c == a || c == b) continue;
          if (!IsUndirected(a, c) || !IsOriented(c, b)) continue;
          for (const auto& d : nodes_) {
            if (d == a || d == b || d == c) continue;
            if (IsUndirected(a, d) && IsOriented(d, b) && !Adjacent(c, d)) {
              Orient(a, b);
              changed = true;
              done3 = true;
              break;
            }
          }
        }
      }
    }
  }
}

CausalDag PdagBuilder::ToDag(const std::vector<std::string>& priority) const {
  CausalDag dag;
  for (const auto& n : nodes_) dag.AddNode(n);
  // Directed edges first (skip any that would cycle — can happen if the CI
  // tests produced an inconsistent orientation set on finite data).
  for (const auto& [a, b] : directed_) {
    try {
      dag.AddEdge(a, b);
    } catch (...) {
      // Drop the conflicting orientation.
    }
  }
  // Orient the remaining undirected edges along `priority` order.
  auto rank = [&priority](const std::string& n) {
    auto it = std::find(priority.begin(), priority.end(), n);
    return static_cast<size_t>(it - priority.begin());
  };
  for (const auto& [a, b] : undirected_) {
    if (directed_.count({a, b}) || directed_.count({b, a})) continue;
    const std::string& from = rank(a) <= rank(b) ? a : b;
    const std::string& to = rank(a) <= rank(b) ? b : a;
    try {
      dag.AddEdge(from, to);
    } catch (...) {
      try {
        dag.AddEdge(to, from);
      } catch (...) {
        // Truly cyclic both ways: drop the edge.
      }
    }
  }
  return dag;
}

namespace {

// Enumerates size-`k` subsets of `pool`, invoking fn(subset); stops early
// if fn returns true. Returns whether fn succeeded for some subset.
bool ForEachSubset(const std::vector<std::string>& pool, size_t k,
                   const std::function<bool(const std::vector<std::string>&)>&
                       fn) {
  if (k > pool.size()) return false;
  std::vector<size_t> idx(k);
  for (size_t i = 0; i < k; ++i) idx[i] = i;
  std::vector<std::string> subset(k);
  for (;;) {
    for (size_t i = 0; i < k; ++i) subset[i] = pool[idx[i]];
    if (fn(subset)) return true;
    // Next combination.
    size_t i = k;
    while (i-- > 0) {
      if (idx[i] != i + pool.size() - k) {
        ++idx[i];
        for (size_t j = i + 1; j < k; ++j) idx[j] = idx[j - 1] + 1;
        break;
      }
      if (i == 0) return false;
    }
    if (k == 0) return false;
  }
}

}  // namespace

PcResult RunPc(const Table& table, double alpha, size_t max_cond_size,
               size_t max_rows) {
  PcResult result;
  FisherZTest test(table, max_rows);
  const std::vector<std::string> nodes = table.ColumnNames();
  PdagBuilder pdag(nodes);

  // Phase 1: skeleton. Start complete.
  for (size_t i = 0; i < nodes.size(); ++i) {
    for (size_t j = i + 1; j < nodes.size(); ++j) {
      pdag.AddUndirected(nodes[i], nodes[j]);
    }
  }
  for (size_t cond_size = 0; cond_size <= max_cond_size; ++cond_size) {
    bool any_edge_testable = false;
    for (size_t i = 0; i < nodes.size(); ++i) {
      for (size_t j = i + 1; j < nodes.size(); ++j) {
        const std::string& x = nodes[i];
        const std::string& y = nodes[j];
        if (!pdag.Adjacent(x, y)) continue;
        // Candidate conditioning sets: neighbors of x (minus y).
        std::vector<std::string> pool = pdag.Neighbors(x);
        pool.erase(std::remove(pool.begin(), pool.end(), y), pool.end());
        if (pool.size() < cond_size) continue;
        any_edge_testable = true;
        const bool removed = ForEachSubset(
            pool, cond_size, [&](const std::vector<std::string>& s) {
              ++result.ci_tests_run;
              if (test.Independent(x, y, s, alpha)) {
                pdag.RemoveUndirected(x, y);
                result.sepsets[{std::min(x, y), std::max(x, y)}] =
                    std::set<std::string>(s.begin(), s.end());
                return true;
              }
              return false;
            });
        (void)removed;
      }
    }
    if (!any_edge_testable) break;
  }

  // Phase 2: v-structures. For each unshielded triple x - z - y with x,y
  // non-adjacent and z not in sepset(x, y): orient x -> z <- y.
  for (const auto& z : nodes) {
    const auto nbrs = pdag.Neighbors(z);
    for (size_t i = 0; i < nbrs.size(); ++i) {
      for (size_t j = i + 1; j < nbrs.size(); ++j) {
        const std::string& x = nbrs[i];
        const std::string& y = nbrs[j];
        if (pdag.Adjacent(x, y)) continue;
        auto it = result.sepsets.find({std::min(x, y), std::max(x, y)});
        const bool z_in_sepset =
            it != result.sepsets.end() && it->second.count(z) > 0;
        if (!z_in_sepset) {
          pdag.Orient(x, z);
          pdag.Orient(y, z);
        }
      }
    }
  }

  // Phase 3: Meek rules, then DAG-ify with schema order as tiebreak.
  pdag.ApplyMeekRules();
  result.dag = pdag.ToDag(nodes);
  return result;
}

}  // namespace causumx
