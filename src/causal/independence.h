// Conditional-independence tests for constraint-based causal discovery
// (PC / FCI). Uses the Fisher-z test on partial correlations, computed
// from the (cached) correlation matrix of the numerically encoded table.

#ifndef CAUSUMX_CAUSAL_INDEPENDENCE_H_
#define CAUSUMX_CAUSAL_INDEPENDENCE_H_

#include <string>
#include <vector>

#include "dataset/table.h"

namespace causumx {

/// Fisher-z conditional-independence tester over a table.
///
/// Columns are viewed numerically (categoricals by dictionary code — the
/// standard pragmatic choice when running PC on mixed data). The full
/// correlation matrix is computed once; partial correlations for a
/// conditioning set S are obtained by inverting the submatrix over
/// {x, y} ∪ S.
class FisherZTest {
 public:
  /// `max_rows` caps the rows used to estimate correlations (0 = all).
  explicit FisherZTest(const Table& table, size_t max_rows = 200'000);

  /// Two-sided p-value for the hypothesis x ⟂ y | cond.
  double PValue(const std::string& x, const std::string& y,
                const std::vector<std::string>& cond) const;

  /// Convenience: true when the p-value exceeds alpha (fail to reject
  /// independence).
  bool Independent(const std::string& x, const std::string& y,
                   const std::vector<std::string>& cond,
                   double alpha = 0.05) const;

  /// Partial correlation of x and y given cond.
  double PartialCorrelation(const std::string& x, const std::string& y,
                            const std::vector<std::string>& cond) const;

  size_t sample_size() const { return n_; }
  const std::vector<std::string>& variables() const { return names_; }

 private:
  size_t IndexOf(const std::string& name) const;

  std::vector<std::string> names_;
  std::vector<std::vector<double>> corr_;
  size_t n_ = 0;
};

}  // namespace causumx

#endif  // CAUSUMX_CAUSAL_INDEPENDENCE_H_
