#include "causal/dag.h"

#include <deque>
#include <functional>
#include <sstream>
#include <stdexcept>

namespace causumx {

void CausalDag::AddNode(const std::string& name) {
  if (node_index_.count(name)) return;
  node_index_.emplace(name, nodes_.size());
  nodes_.push_back(name);
  children_[name];
  parents_[name];
}

void CausalDag::AddEdge(const std::string& from, const std::string& to) {
  AddNode(from);
  AddNode(to);
  if (from == to || WouldCreateCycle(from, to)) {
    throw std::invalid_argument("edge " + from + " -> " + to +
                                " would create a cycle");
  }
  children_[from].insert(to);
  parents_[to].insert(from);
}

void CausalDag::RemoveEdge(const std::string& from, const std::string& to) {
  auto cit = children_.find(from);
  if (cit != children_.end()) cit->second.erase(to);
  auto pit = parents_.find(to);
  if (pit != parents_.end()) pit->second.erase(from);
}

bool CausalDag::HasNode(const std::string& name) const {
  return node_index_.count(name) > 0;
}

bool CausalDag::HasEdge(const std::string& from, const std::string& to) const {
  auto it = children_.find(from);
  return it != children_.end() && it->second.count(to) > 0;
}

size_t CausalDag::NumEdges() const {
  size_t n = 0;
  for (const auto& [_, kids] : children_) n += kids.size();
  return n;
}

double CausalDag::Density() const {
  const size_t v = NumNodes();
  if (v < 2) return 0.0;
  return static_cast<double>(NumEdges()) /
         (static_cast<double>(v) * static_cast<double>(v - 1));
}

std::vector<std::string> CausalDag::Parents(const std::string& node) const {
  auto it = parents_.find(node);
  if (it == parents_.end()) return {};
  return {it->second.begin(), it->second.end()};
}

std::vector<std::string> CausalDag::Children(const std::string& node) const {
  auto it = children_.find(node);
  if (it == children_.end()) return {};
  return {it->second.begin(), it->second.end()};
}

std::set<std::string> CausalDag::Ancestors(const std::string& node) const {
  std::set<std::string> out;
  std::deque<std::string> queue{node};
  while (!queue.empty()) {
    const std::string cur = queue.front();
    queue.pop_front();
    auto it = parents_.find(cur);
    if (it == parents_.end()) continue;
    for (const auto& p : it->second) {
      if (out.insert(p).second) queue.push_back(p);
    }
  }
  out.erase(node);
  return out;
}

std::set<std::string> CausalDag::Descendants(const std::string& node) const {
  std::set<std::string> out;
  std::deque<std::string> queue{node};
  while (!queue.empty()) {
    const std::string cur = queue.front();
    queue.pop_front();
    auto it = children_.find(cur);
    if (it == children_.end()) continue;
    for (const auto& c : it->second) {
      if (out.insert(c).second) queue.push_back(c);
    }
  }
  out.erase(node);
  return out;
}

bool CausalDag::IsAncestor(const std::string& a, const std::string& b) const {
  return Descendants(a).count(b) > 0;
}

bool CausalDag::WouldCreateCycle(const std::string& from,
                                 const std::string& to) const {
  // Adding from->to creates a cycle iff `from` is reachable from `to`.
  if (!HasNode(from) || !HasNode(to)) return false;
  return Descendants(to).count(from) > 0;
}

std::vector<std::string> CausalDag::TopologicalOrder() const {
  std::unordered_map<std::string, size_t> indegree;
  for (const auto& n : nodes_) indegree[n] = parents_.at(n).size();
  std::deque<std::string> ready;
  for (const auto& n : nodes_) {
    if (indegree[n] == 0) ready.push_back(n);
  }
  std::vector<std::string> order;
  order.reserve(nodes_.size());
  while (!ready.empty()) {
    const std::string n = ready.front();
    ready.pop_front();
    order.push_back(n);
    for (const auto& c : children_.at(n)) {
      if (--indegree[c] == 0) ready.push_back(c);
    }
  }
  if (order.size() != nodes_.size()) {
    throw std::logic_error("graph contains a cycle");
  }
  return order;
}

bool CausalDag::DSeparated(const std::string& x, const std::string& y,
                           const std::set<std::string>& z) const {
  if (x == y) return false;
  // Reachability over the moralized trail space: track (node, direction)
  // where direction indicates whether we arrived via an incoming or
  // outgoing edge ("Bayes ball").
  std::set<std::string> ancestors_of_z;
  for (const auto& n : z) {
    ancestors_of_z.insert(n);
    for (const auto& a : Ancestors(n)) ancestors_of_z.insert(a);
  }

  // State: (node, came_from_child). came_from_child=true means we arrived
  // moving "up" (against an edge), i.e. from one of its children.
  std::set<std::pair<std::string, bool>> visited;
  std::deque<std::pair<std::string, bool>> queue;
  queue.emplace_back(x, true);   // pretend we came from a virtual child
  queue.emplace_back(x, false);  // and a virtual parent
  while (!queue.empty()) {
    auto [node, from_child] = queue.front();
    queue.pop_front();
    if (!visited.insert({node, from_child}).second) continue;
    const bool in_z = z.count(node) > 0;
    if (node == y && !in_z) return false;  // active trail reaches y

    if (from_child) {
      // Arrived from a child (moving up). If node not in Z we may continue
      // up to parents and down to children.
      if (!in_z) {
        for (const auto& p : parents_.at(node)) queue.emplace_back(p, true);
        for (const auto& c : children_.at(node)) queue.emplace_back(c, false);
      }
    } else {
      // Arrived from a parent (moving down).
      if (!in_z) {
        // Chain/fork continues to children.
        for (const auto& c : children_.at(node)) queue.emplace_back(c, false);
      }
      // Collider: path through node only active if node or a descendant
      // is in Z; then we can bounce back up to parents.
      if (ancestors_of_z.count(node)) {
        for (const auto& p : parents_.at(node)) queue.emplace_back(p, true);
      }
    }
  }
  return true;
}

std::set<std::string> CausalDag::BackdoorAdjustmentSet(
    const std::vector<std::string>& treatments,
    const std::string& outcome) const {
  std::set<std::string> z;
  for (const auto& t : treatments) {
    if (!HasNode(t)) continue;
    for (const auto& p : parents_.at(t)) z.insert(p);
  }
  for (const auto& t : treatments) z.erase(t);
  z.erase(outcome);
  return z;
}

std::set<std::string> CausalDag::CausalAncestorsOf(
    const std::string& outcome) const {
  if (!HasNode(outcome)) return {};
  return Ancestors(outcome);
}

std::string CausalDag::ToDot(const std::string& graph_name) const {
  std::ostringstream oss;
  oss << "digraph " << graph_name << " {\n";
  for (const auto& n : nodes_) oss << "  \"" << n << "\";\n";
  for (const auto& n : nodes_) {
    for (const auto& c : children_.at(n)) {
      oss << "  \"" << n << "\" -> \"" << c << "\";\n";
    }
  }
  oss << "}\n";
  return oss.str();
}

size_t CausalDag::EdgeDifference(const CausalDag& other,
                                 bool ignore_direction) const {
  auto edge_set = [ignore_direction](const CausalDag& g) {
    std::set<std::pair<std::string, std::string>> edges;
    for (const auto& n : g.nodes_) {
      for (const auto& c : g.children_.at(n)) {
        if (ignore_direction && c < n) {
          edges.emplace(c, n);
        } else if (ignore_direction) {
          edges.emplace(n, c);
        } else {
          edges.emplace(n, c);
        }
      }
    }
    return edges;
  };
  const auto a = edge_set(*this);
  const auto b = edge_set(other);
  size_t diff = 0;
  for (const auto& e : a) {
    if (!b.count(e)) ++diff;
  }
  for (const auto& e : b) {
    if (!a.count(e)) ++diff;
  }
  return diff;
}

}  // namespace causumx
