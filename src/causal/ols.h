// Ordinary least squares with standard errors.
//
// This is the regression backbone of the effect estimator: the paper
// computes CATE values "using the DoWhy library, utilizing their linear
// regression approach" (Section 6); we implement the same estimand
// natively. Solved via normal equations with ridge-of-last-resort
// regularization for rank-deficient designs.

#ifndef CAUSUMX_CAUSAL_OLS_H_
#define CAUSUMX_CAUSAL_OLS_H_

#include <cstddef>
#include <vector>

namespace causumx {

class ThreadPool;

/// Result of an OLS fit y ~ X (X includes any intercept column).
struct OlsResult {
  bool ok = false;                   ///< false if the solve failed.
  std::vector<double> coefficients;  ///< beta, one per design column.
  std::vector<double> std_errors;    ///< standard error per coefficient.
  double residual_variance = 0.0;    ///< s^2 = RSS / (n - p).
  size_t n = 0;                      ///< rows used.
  size_t p = 0;                      ///< design columns.

  /// t-statistic for coefficient j (0 when its SE is 0).
  double TStat(size_t j) const;
  /// Two-sided p-value for coefficient j under t(n - p).
  double PValue(size_t j) const;
};

/// Dense row-major design matrix.
class DesignMatrix {
 public:
  DesignMatrix(size_t rows, size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

  double& At(size_t r, size_t c) { return data_[r * cols_ + c]; }
  double At(size_t r, size_t c) const { return data_[r * cols_ + c]; }
  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }

 private:
  size_t rows_, cols_;
  std::vector<double> data_;
};

/// Row-chunk size of the deterministic normal-equation accumulation: the
/// X^T X / X^T y / RSS sums are computed as per-chunk partials merged in
/// ascending chunk order, so the fit is a function of the design alone —
/// identical with or without a pool, at any thread count. Designs of up
/// to one chunk reproduce the historical fully-serial accumulation
/// exactly.
inline constexpr size_t kOlsChunkRows = 16384;

/// Fits y ~ X by OLS. Returns ok=false when n <= p or the normal equations
/// are singular beyond repair. `pool` (optional) computes the per-chunk
/// partial sums in parallel; the result is bit-identical to pool = null.
OlsResult FitOls(const DesignMatrix& x, const std::vector<double>& y,
                 ThreadPool* pool = nullptr);

/// Solves the symmetric positive (semi)definite system A b = c in-place via
/// Cholesky with diagonal jitter fallback. Returns false when singular.
/// Exposed for tests and the LiNGAM residual computations.
bool SolveSpd(std::vector<std::vector<double>>* a, std::vector<double>* b);

}  // namespace causumx

#endif  // CAUSUMX_CAUSAL_OLS_H_
