// Common interface for causal discovery (used by the DAG-sensitivity
// experiment, Fig. 16/23 and Table 4 of the paper).

#ifndef CAUSUMX_CAUSAL_DISCOVERY_H_
#define CAUSUMX_CAUSAL_DISCOVERY_H_

#include <string>

#include "causal/dag.h"
#include "dataset/table.h"

namespace causumx {

/// Options shared by the discovery algorithms.
struct DiscoveryOptions {
  double alpha = 0.05;        ///< CI-test significance level (PC / FCI).
  size_t max_cond_size = 3;   ///< max conditioning-set size (PC / FCI).
  size_t max_rows = 100'000;  ///< row cap for CI statistics (0 = all).
  /// LiNGAM: prune edges whose standardized regression coefficient
  /// magnitude falls below this.
  double lingam_prune_threshold = 0.05;
};

/// The discovery algorithms the paper evaluates (Section 6.6).
enum class DiscoveryAlgorithm { kPc, kFci, kLingam, kNoDag };

const char* DiscoveryAlgorithmName(DiscoveryAlgorithm a);

/// Runs the selected discovery algorithm over the table's attributes.
/// `outcome` is used by kNoDag (all attributes point at the outcome) and to
/// orient otherwise-undirected edges toward the outcome when needed.
CausalDag DiscoverDag(const Table& table, DiscoveryAlgorithm algorithm,
                      const std::string& outcome,
                      const DiscoveryOptions& options = {});

/// The "No-DAG" strawman (Section 6.6): every attribute has a single edge
/// into the outcome, no other structure.
CausalDag MakeNoDag(const Table& table, const std::string& outcome);

}  // namespace causumx

#endif  // CAUSUMX_CAUSAL_DISCOVERY_H_
