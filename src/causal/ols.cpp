#include "causal/ols.h"

#include <algorithm>
#include <cmath>

#include "util/stats.h"
#include "util/thread_pool.h"

namespace causumx {

double OlsResult::TStat(size_t j) const {
  if (j >= coefficients.size() || std_errors[j] <= 0.0) return 0.0;
  return coefficients[j] / std_errors[j];
}

double OlsResult::PValue(size_t j) const {
  if (n <= p) return 1.0;
  return TwoSidedPValueT(TStat(j), static_cast<double>(n - p));
}

bool SolveSpd(std::vector<std::vector<double>>* a_ptr,
              std::vector<double>* b_ptr) {
  auto& a = *a_ptr;
  auto& b = *b_ptr;
  const size_t n = a.size();
  // Cholesky: A = L L^T. On a near-singular pivot, add jitter and retry
  // once; OLS designs with collinear one-hot blocks hit this routinely.
  for (int attempt = 0; attempt < 2; ++attempt) {
    std::vector<std::vector<double>> l(n, std::vector<double>(n, 0.0));
    bool failed = false;
    for (size_t i = 0; i < n && !failed; ++i) {
      for (size_t j = 0; j <= i; ++j) {
        double sum = a[i][j];
        for (size_t k = 0; k < j; ++k) sum -= l[i][k] * l[j][k];
        if (i == j) {
          if (sum <= 1e-12) {
            failed = true;
            break;
          }
          l[i][i] = std::sqrt(sum);
        } else {
          l[i][j] = sum / l[j][j];
        }
      }
    }
    if (failed) {
      if (attempt == 1) return false;
      double max_diag = 0.0;
      for (size_t i = 0; i < n; ++i) max_diag = std::max(max_diag, a[i][i]);
      const double jitter = std::max(1e-8, 1e-10 * max_diag);
      for (size_t i = 0; i < n; ++i) a[i][i] += jitter;
      continue;
    }
    // Forward solve L z = b, then back-substitute L^T x = z.
    std::vector<double> z(n, 0.0);
    for (size_t i = 0; i < n; ++i) {
      double sum = b[i];
      for (size_t k = 0; k < i; ++k) sum -= l[i][k] * z[k];
      z[i] = sum / l[i][i];
    }
    for (size_t ii = n; ii-- > 0;) {
      double sum = z[ii];
      for (size_t k = ii + 1; k < n; ++k) sum -= l[k][ii] * b[k];
      b[ii] = sum / l[ii][ii];
    }
    // Also stash L in `a` rows for the caller's covariance computation:
    // overwrite a with the inverse of A (A^-1 = (L L^T)^-1), solved
    // column-by-column.
    std::vector<std::vector<double>> inv(n, std::vector<double>(n, 0.0));
    for (size_t col = 0; col < n; ++col) {
      std::vector<double> e(n, 0.0);
      e[col] = 1.0;
      std::vector<double> zz(n, 0.0);
      for (size_t i = 0; i < n; ++i) {
        double sum = e[i];
        for (size_t k = 0; k < i; ++k) sum -= l[i][k] * zz[k];
        zz[i] = sum / l[i][i];
      }
      for (size_t iii = n; iii-- > 0;) {
        double sum = zz[iii];
        for (size_t k = iii + 1; k < n; ++k) sum -= l[k][iii] * inv[k][col];
        inv[iii][col] = sum / l[iii][iii];
      }
    }
    a = std::move(inv);
    return true;
  }
  return false;
}

OlsResult FitOls(const DesignMatrix& x, const std::vector<double>& y,
                 ThreadPool* pool) {
  OlsResult res;
  const size_t n = x.rows();
  const size_t p = x.cols();
  res.n = n;
  res.p = p;
  if (n <= p || p == 0) return res;

  // Normal equations: (X^T X) beta = X^T y, accumulated as fixed-size
  // row-chunk partials (upper triangle only) merged in chunk order —
  // the sharded execution path's determinism recipe: the chunk
  // decomposition depends only on kOlsChunkRows, so any thread count
  // (including none) produces the same floating-point result.
  const size_t num_chunks = (n + kOlsChunkRows - 1) / kOlsChunkRows;
  const size_t tri = p * (p + 1) / 2;  // packed upper triangle
  std::vector<std::vector<double>> part_xtx(num_chunks);
  std::vector<std::vector<double>> part_xty(num_chunks);
  ThreadPool::RunOn(pool, num_chunks, [&](size_t c) {
    std::vector<double>& cx = part_xtx[c];
    std::vector<double>& cy = part_xty[c];
    cx.assign(tri, 0.0);
    cy.assign(p, 0.0);
    const size_t end = std::min(n, (c + 1) * kOlsChunkRows);
    for (size_t r = c * kOlsChunkRows; r < end; ++r) {
      size_t base = 0;
      for (size_t i = 0; i < p; ++i) {
        const double xi = x.At(r, i);
        if (xi == 0.0) {
          base += p - i;
          continue;
        }
        cy[i] += xi * y[r];
        for (size_t j = i; j < p; ++j) {
          cx[base + j - i] += xi * x.At(r, j);
        }
        base += p - i;
      }
    }
  });
  std::vector<std::vector<double>> xtx(p, std::vector<double>(p, 0.0));
  std::vector<double> xty(p, 0.0);
  for (size_t c = 0; c < num_chunks; ++c) {
    size_t base = 0;
    for (size_t i = 0; i < p; ++i) {
      xty[i] += part_xty[c][i];
      for (size_t j = i; j < p; ++j) {
        xtx[i][j] += part_xtx[c][base + j - i];
      }
      base += p - i;
    }
  }
  for (size_t i = 0; i < p; ++i) {
    for (size_t j = 0; j < i; ++j) xtx[i][j] = xtx[j][i];
  }

  std::vector<std::vector<double>> xtx_inv = xtx;
  std::vector<double> beta = xty;
  if (!SolveSpd(&xtx_inv, &beta)) return res;

  // Residual variance and coefficient standard errors; the RSS uses the
  // same chunked deterministic reduction.
  std::vector<double> part_rss(num_chunks, 0.0);
  ThreadPool::RunOn(pool, num_chunks, [&](size_t c) {
    double rss_c = 0.0;
    const size_t end = std::min(n, (c + 1) * kOlsChunkRows);
    for (size_t r = c * kOlsChunkRows; r < end; ++r) {
      double pred = 0.0;
      for (size_t j = 0; j < p; ++j) pred += x.At(r, j) * beta[j];
      const double e = y[r] - pred;
      rss_c += e * e;  // causumx-lint: allow(fp-accumulation) per-chunk serial partial; fixed chunk boundaries)
    }
    part_rss[c] = rss_c;
  });
  double rss = 0.0;
  // causumx-lint: allow(fp-accumulation) fixed chunk-index order, thread-count independent)
  for (size_t c = 0; c < num_chunks; ++c) rss += part_rss[c];
  const double dof = static_cast<double>(n - p);
  res.residual_variance = rss / dof;
  res.coefficients = std::move(beta);
  res.std_errors.resize(p);
  for (size_t j = 0; j < p; ++j) {
    const double var = res.residual_variance * xtx_inv[j][j];
    res.std_errors[j] = var > 0 ? std::sqrt(var) : 0.0;
  }
  res.ok = true;
  return res;
}

}  // namespace causumx
