#include "causal/estimator.h"

#include "util/stats.h"

namespace causumx {

std::pair<double, double> EffectEstimate::ConfidenceInterval(
    double level) const {
  if (!valid || std_error <= 0.0 || level <= 0.0 || level >= 1.0) {
    return {cate, cate};
  }
  const double z = NormalQuantile(0.5 + level / 2.0);
  return {cate - z * std_error, cate + z * std_error};
}

EffectEstimator::EffectEstimator(const Table& table, const CausalDag& dag,
                                 EstimatorOptions options)
    : ctx_(std::make_shared<EstimatorContext>(
          std::make_shared<EvalEngine>(table), dag, options)) {}

EffectEstimator::EffectEstimator(std::shared_ptr<EvalEngine> engine,
                                 const CausalDag& dag,
                                 EstimatorOptions options)
    : ctx_(std::make_shared<EstimatorContext>(std::move(engine), dag,
                                              options)) {}

std::set<std::string> EffectEstimator::AdjustmentSet(
    const Pattern& treatment, const std::string& outcome) const {
  return ctx_->AdjustmentSet(treatment, outcome);
}

EffectEstimate EffectEstimator::EstimateCate(
    const Pattern& treatment, const std::string& outcome,
    const Pattern& subpopulation) const {
  Bitset mask;
  if (subpopulation.IsEmpty()) {
    mask = Bitset(table().NumRows());
    mask.SetAll();
  } else {
    mask = ctx_->engine()->Evaluate(subpopulation);
  }
  return ctx_->EstimateCate(treatment, outcome, mask);
}

EffectEstimate EffectEstimator::EstimateAte(
    const Pattern& treatment, const std::string& outcome) const {
  Bitset all(table().NumRows());
  all.SetAll();
  return ctx_->EstimateCate(treatment, outcome, all);
}

EffectEstimate EffectEstimator::EstimateCate(
    const Pattern& treatment, const std::string& outcome,
    const Bitset& subpopulation) const {
  return ctx_->EstimateCate(treatment, outcome, subpopulation);
}

}  // namespace causumx
