#include "causal/estimator.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <unordered_map>

#include "util/stats.h"

namespace causumx {

std::pair<double, double> EffectEstimate::ConfidenceInterval(
    double level) const {
  if (!valid || std_error <= 0.0 || level <= 0.0 || level >= 1.0) {
    return {cate, cate};
  }
  const double z = NormalQuantile(0.5 + level / 2.0);
  return {cate - z * std_error, cate + z * std_error};
}

EffectEstimator::EffectEstimator(const Table& table, const CausalDag& dag,
                                 EstimatorOptions options)
    : table_(table), dag_(dag), options_(options) {}

std::set<std::string> EffectEstimator::AdjustmentSet(
    const Pattern& treatment, const std::string& outcome) const {
  return dag_.BackdoorAdjustmentSet(treatment.Attributes(), outcome);
}

EffectEstimate EffectEstimator::EstimateCate(
    const Pattern& treatment, const std::string& outcome,
    const Pattern& subpopulation) const {
  Bitset mask = subpopulation.IsEmpty() ? Bitset(table_.NumRows())
                                        : subpopulation.Evaluate(table_);
  if (subpopulation.IsEmpty()) mask.SetAll();
  return EstimateCate(treatment, outcome, mask);
}

EffectEstimate EffectEstimator::EstimateAte(const Pattern& treatment,
                                            const std::string& outcome) const {
  Bitset all(table_.NumRows());
  all.SetAll();
  return EstimateCate(treatment, outcome, all);
}

EffectEstimate EffectEstimator::EstimateCate(const Pattern& treatment,
                                             const std::string& outcome,
                                             const Bitset& subpopulation) const {
  EffectEstimate est;
  if (treatment.IsEmpty()) return est;

  const Column& y_col = table_.column(outcome);

  // Candidate rows: subpopulation with non-null outcome.
  std::vector<size_t> rows;
  rows.reserve(subpopulation.Count());
  for (size_t r : subpopulation.ToIndices()) {
    if (!y_col.IsNull(r)) rows.push_back(r);
  }

  // Optimization (d): sample large subpopulations for CATE estimation.
  if (options_.sample_cap > 0 && rows.size() > options_.sample_cap) {
    Rng rng(options_.sample_seed ^ treatment.Hash());
    std::vector<size_t> chosen = rng.SampleIndices(rows.size(),
                                                   options_.sample_cap);
    std::vector<size_t> sampled;
    sampled.reserve(chosen.size());
    for (size_t i : chosen) sampled.push_back(rows[i]);
    std::sort(sampled.begin(), sampled.end());
    rows = std::move(sampled);
  }
  if (rows.size() < 2 * options_.min_group_size) return est;

  // Treatment indicator.
  std::vector<uint8_t> treated(rows.size(), 0);
  size_t n_treated = 0;
  for (size_t i = 0; i < rows.size(); ++i) {
    treated[i] = treatment.Matches(table_, rows[i]) ? 1 : 0;
    n_treated += treated[i];
  }
  const size_t n_control = rows.size() - n_treated;
  est.n_treated = n_treated;
  est.n_control = n_control;
  // Overlap (Eq. 4): both groups must be represented.
  if (n_treated < options_.min_group_size ||
      n_control < options_.min_group_size) {
    return est;
  }

  // Backdoor adjustment set Z from the DAG: parents of treatment attrs.
  const std::set<std::string> adjustment =
      AdjustmentSet(treatment, outcome);

  // Assemble design matrix columns: intercept, T, then confounders.
  // Numeric confounders enter directly; categorical ones are one-hot
  // encoded with the most frequent level dropped as baseline.
  struct Encoded {
    const Column* col;
    bool categorical;
    std::vector<int32_t> kept_codes;  // categorical: levels with own column
  };
  std::vector<Encoded> confounders;
  size_t extra_cols = 0;
  for (const auto& name : adjustment) {
    auto idx = table_.ColumnIndex(name);
    if (!idx) continue;  // DAG node without a data column (latent): skip.
    const Column& c = table_.column(*idx);
    Encoded enc;
    enc.col = &c;
    enc.categorical = (c.type() == ColumnType::kCategorical);
    if (enc.categorical) {
      // Count level frequencies within the estimation rows.
      std::unordered_map<int32_t, size_t> freq;
      for (size_t r : rows) {
        if (!c.IsNull(r)) ++freq[c.GetCode(r)];
      }
      if (freq.size() < 2) continue;  // constant -> no information
      std::vector<std::pair<int32_t, size_t>> levels(freq.begin(), freq.end());
      std::sort(levels.begin(), levels.end(),
                [](const auto& a, const auto& b) { return a.second > b.second; });
      // Drop the most frequent level (baseline) and merge the long tail.
      const size_t keep = std::min(options_.max_onehot_levels,
                                   levels.size() - 1);
      for (size_t l = 1; l <= keep; ++l) {
        enc.kept_codes.push_back(levels[l].first);
      }
      extra_cols += enc.kept_codes.size();
    } else {
      ++extra_cols;
    }
    confounders.push_back(std::move(enc));
  }

  const size_t p = 2 + extra_cols;  // intercept + T + confounders
  if (rows.size() <= p + 1) return est;

  // Fills row i of a design whose first column is the intercept and whose
  // confounder block starts at `offset`.
  auto fill_confounders = [&](DesignMatrix* x, size_t i, size_t r,
                              size_t offset) {
    size_t col = offset;
    for (const auto& enc : confounders) {
      if (enc.categorical) {
        const int32_t code = enc.col->IsNull(r) ? Column::kNullCode
                                                : enc.col->GetCode(r);
        for (int32_t kept : enc.kept_codes) {
          x->At(i, col++) = (code == kept) ? 1.0 : 0.0;
        }
      } else {
        const double v = enc.col->GetNumeric(r);
        x->At(i, col++) = std::isnan(v) ? 0.0 : v;
      }
    }
  };

  std::vector<double> y(rows.size());
  for (size_t i = 0; i < rows.size(); ++i) y[i] = y_col.GetNumeric(rows[i]);

  if (options_.method == EstimationMethod::kRegressionAdjustment) {
    DesignMatrix x(rows.size(), p);
    for (size_t i = 0; i < rows.size(); ++i) {
      x.At(i, 0) = 1.0;
      x.At(i, 1) = treated[i];
      fill_confounders(&x, i, rows[i], 2);
    }
    const OlsResult fit = FitOls(x, y);
    if (!fit.ok) return est;
    est.valid = true;
    est.cate = fit.coefficients[1];
    est.std_error = fit.std_errors[1];
    est.p_value = fit.PValue(1);
    est.n_used = rows.size();
    return est;
  }

  // --- Inverse propensity weighting ---------------------------------------
  // Propensity model: logistic regression T ~ 1 + Z fit by a few IRLS
  // (Newton) steps; the Hajek estimator with clipped weights gives the
  // effect, and its influence function the standard error.
  const size_t q = 1 + extra_cols;  // intercept + confounders
  DesignMatrix z(rows.size(), q);
  for (size_t i = 0; i < rows.size(); ++i) {
    z.At(i, 0) = 1.0;
    fill_confounders(&z, i, rows[i], 1);
  }
  std::vector<double> beta(q, 0.0);
  for (int iter = 0; iter < 8; ++iter) {
    // Newton step: beta += (Z^T W Z)^-1 Z^T (T - mu), W = mu(1-mu).
    std::vector<std::vector<double>> ztwz(q, std::vector<double>(q, 0.0));
    std::vector<double> grad(q, 0.0);
    for (size_t i = 0; i < rows.size(); ++i) {
      double eta = 0.0;
      for (size_t j = 0; j < q; ++j) eta += z.At(i, j) * beta[j];
      const double mu = 1.0 / (1.0 + std::exp(-eta));
      const double w = std::max(1e-6, mu * (1.0 - mu));
      const double resid = static_cast<double>(treated[i]) - mu;
      for (size_t a = 0; a < q; ++a) {
        grad[a] += z.At(i, a) * resid;
        for (size_t b = a; b < q; ++b) {
          ztwz[a][b] += w * z.At(i, a) * z.At(i, b);
        }
      }
    }
    for (size_t a = 0; a < q; ++a) {
      for (size_t b = 0; b < a; ++b) ztwz[a][b] = ztwz[b][a];
    }
    std::vector<double> step = grad;
    if (!SolveSpd(&ztwz, &step)) break;
    double max_step = 0.0;
    for (size_t j = 0; j < q; ++j) {
      beta[j] += step[j];
      max_step = std::max(max_step, std::fabs(step[j]));
    }
    if (max_step < 1e-8) break;
  }

  const double clip = std::clamp(options_.propensity_clip, 1e-6, 0.49);
  double sw1 = 0, sw0 = 0, sy1 = 0, sy0 = 0;
  std::vector<double> prop(rows.size());
  for (size_t i = 0; i < rows.size(); ++i) {
    double eta = 0.0;
    for (size_t j = 0; j < q; ++j) eta += z.At(i, j) * beta[j];
    double e = 1.0 / (1.0 + std::exp(-eta));
    e = std::clamp(e, clip, 1.0 - clip);
    prop[i] = e;
    if (treated[i]) {
      const double w = 1.0 / e;
      sw1 += w;
      sy1 += w * y[i];
    } else {
      const double w = 1.0 / (1.0 - e);
      sw0 += w;
      sy0 += w * y[i];
    }
  }
  if (sw1 <= 0 || sw0 <= 0) return est;
  const double mu1 = sy1 / sw1;
  const double mu0 = sy0 / sw0;

  // Influence-function variance of the Hajek ATE.
  const double n = static_cast<double>(rows.size());
  double var_sum = 0.0;
  for (size_t i = 0; i < rows.size(); ++i) {
    const double e = prop[i];
    const double psi =
        treated[i] ? (y[i] - mu1) / e : -(y[i] - mu0) / (1.0 - e);
    var_sum += psi * psi;
  }
  est.valid = true;
  est.cate = mu1 - mu0;
  est.std_error = std::sqrt(var_sum) / n;
  est.p_value = est.std_error > 0
                    ? TwoSidedPValueZ(est.cate / est.std_error)
                    : 1.0;
  est.n_used = rows.size();
  return est;
}

}  // namespace causumx
