// DirectLiNGAM causal discovery (Shimizu et al.).
//
// Assumes a linear non-Gaussian acyclic model. The algorithm repeatedly
// identifies the most "exogenous" remaining variable — the one whose
// regression residuals are most independent of it — prepends it to a
// causal ordering, replaces the other variables by their residuals, and
// finally prunes weak edges of the fully connected DAG implied by the
// ordering. Independence is scored with Hyvarinen's maximum-entropy
// approximation of differential entropy.

#ifndef CAUSUMX_CAUSAL_LINGAM_H_
#define CAUSUMX_CAUSAL_LINGAM_H_

#include <string>
#include <vector>

#include "causal/dag.h"
#include "dataset/table.h"

namespace causumx {

struct LingamResult {
  CausalDag dag;
  std::vector<std::string> causal_order;  ///< exogenous -> terminal.
};

/// Runs DirectLiNGAM. `prune_threshold` drops edges whose standardized
/// coefficient magnitude is below it; `max_rows` caps rows used (0 = all).
LingamResult RunLingam(const Table& table, double prune_threshold = 0.05,
                       size_t max_rows = 100'000);

/// Hyvarinen's entropy approximation for a standardized sample; exposed
/// for tests. Lower entropy = more non-Gaussian.
double ApproxNegentropy(const std::vector<double>& standardized);

}  // namespace causumx

#endif  // CAUSUMX_CAUSAL_LINGAM_H_
