#include "causal/lingam.h"

#include <algorithm>
#include <cmath>

#include "util/stats.h"

namespace causumx {

namespace {

// Standardizes v in place to zero mean, unit variance (no-op if constant).
void Standardize(std::vector<double>* v) {
  const double m = Mean(*v);
  const double sd = StdDev(*v);
  if (sd <= 0) {
    for (auto& x : *v) x -= m;
    return;
  }
  for (auto& x : *v) x = (x - m) / sd;
}

// Differential entropy of a standardized variable via Hyvarinen's
// approximation: H(u) ~= H(gauss) - k1*(E[log cosh u] - g1)^2
//                               - k2*(E[u exp(-u^2/2)])^2.
double ApproxEntropy(const std::vector<double>& u) {
  constexpr double k1 = 79.047;
  constexpr double k2 = 7.4129;
  constexpr double gamma = 0.37457;
  const double h_gauss = 0.5 * (1.0 + std::log(2.0 * M_PI));
  double e_logcosh = 0.0, e_uexp = 0.0;
  for (double x : u) {
    // causumx-lint: allow(fp-accumulation) serial fixed sample order)
    e_logcosh += std::log(std::cosh(x));
    e_uexp += x * std::exp(-0.5 * x * x);
  }
  const double n = static_cast<double>(u.size());
  e_logcosh /= n;
  e_uexp /= n;
  return h_gauss - k1 * (e_logcosh - gamma) * (e_logcosh - gamma) -
         k2 * e_uexp * e_uexp;
}

}  // namespace

double ApproxNegentropy(const std::vector<double>& standardized) {
  const double h_gauss = 0.5 * (1.0 + std::log(2.0 * M_PI));
  return h_gauss - ApproxEntropy(standardized);
}

LingamResult RunLingam(const Table& table, double prune_threshold,
                       size_t max_rows) {
  LingamResult result;
  const std::vector<std::string> names = table.ColumnNames();
  const size_t k = names.size();
  const size_t total = table.NumRows();
  const size_t stride =
      (max_rows > 0 && total > max_rows) ? (total + max_rows - 1) / max_rows
                                         : 1;

  // Numeric views, standardized.
  std::vector<std::vector<double>> data(k);
  for (size_t c = 0; c < k; ++c) {
    const Column& col = table.column(c);
    auto& v = data[c];
    v.reserve(total / stride + 1);
    for (size_t r = 0; r < total; r += stride) {
      const double x = col.GetNumeric(r);
      v.push_back(std::isnan(x) ? 0.0 : x);
    }
    Standardize(&v);
  }

  // DirectLiNGAM ordering: repeatedly pick the variable x_j minimizing the
  // pairwise independence measure
  //   sum_i min(0, M(x_j, x_i))^2
  // where M compares entropies of scaled mixtures of x_j, x_i and their
  // mutual regression residuals (Hyvarinen & Smith 2013 pairwise measure).
  std::vector<size_t> remaining(k);
  for (size_t i = 0; i < k; ++i) remaining[i] = i;
  std::vector<std::vector<double>> cur = data;

  while (!remaining.empty()) {
    size_t best_pos = 0;
    double best_score = std::numeric_limits<double>::infinity();
    for (size_t pi = 0; pi < remaining.size(); ++pi) {
      const size_t j = remaining[pi];
      double score = 0.0;
      for (size_t qi = 0; qi < remaining.size(); ++qi) {
        if (qi == pi) continue;
        const size_t i = remaining[qi];
        const auto& xj = cur[j];
        const auto& xi = cur[i];
        const double r_ji = PearsonCorrelation(xj, xi);
        // Residuals of each regressed on the other (standardized data:
        // coefficient = correlation).
        std::vector<double> res_i_on_j(xi.size()), res_j_on_i(xj.size());
        for (size_t t = 0; t < xi.size(); ++t) {
          res_i_on_j[t] = xi[t] - r_ji * xj[t];
          res_j_on_i[t] = xj[t] - r_ji * xi[t];
        }
        Standardize(&res_i_on_j);
        Standardize(&res_j_on_i);
        // The true factorization has the *smaller* entropy sum (the wrong
        // one pays +I(regressor; residual)), so M > 0 favors j -> i.
        const double m = (ApproxEntropy(xi) + ApproxEntropy(res_j_on_i)) -
                         (ApproxEntropy(xj) + ApproxEntropy(res_i_on_j));
        const double neg = std::min(0.0, m);
        score += neg * neg;  // causumx-lint: allow(fp-accumulation) serial fixed pair order)
      }
      if (score < best_score) {
        best_score = score;
        best_pos = pi;
      }
    }
    const size_t root = remaining[best_pos];
    result.causal_order.push_back(names[root]);
    remaining.erase(remaining.begin() + static_cast<long>(best_pos));
    // Replace remaining variables by residuals after regressing out root.
    for (size_t qi = 0; qi < remaining.size(); ++qi) {
      const size_t i = remaining[qi];
      const double r = PearsonCorrelation(cur[i], cur[root]);
      for (size_t t = 0; t < cur[i].size(); ++t) {
        cur[i][t] -= r * cur[root][t];
      }
      Standardize(&cur[i]);
    }
  }

  // Edge estimation: regress each variable on all its predecessors in the
  // causal order (on the original standardized data) and keep coefficients
  // above the prune threshold.
  std::vector<size_t> order_idx;
  for (const auto& n : result.causal_order) {
    for (size_t c = 0; c < k; ++c) {
      if (names[c] == n) order_idx.push_back(c);
    }
  }
  for (auto& n : names) result.dag.AddNode(n);
  for (size_t pos = 1; pos < order_idx.size(); ++pos) {
    const size_t target = order_idx[pos];
    // Sequential residualization gives partial coefficients cheaply and
    // stably (equivalent to Gram-Schmidt on the predecessors).
    std::vector<double> y = data[target];
    for (size_t q = 0; q < pos; ++q) {
      const size_t src = order_idx[q];
      // Partial out earlier predecessors from src's column as well.
      std::vector<double> x = data[src];
      for (size_t qq = 0; qq < q; ++qq) {
        const size_t earlier = order_idx[qq];
        const double r = PearsonCorrelation(x, data[earlier]);
        // causumx-lint: allow(fp-accumulation) elementwise update, distinct index per pass)
        for (size_t t = 0; t < x.size(); ++t) x[t] -= r * data[earlier][t];
      }
      const double sd = StdDev(x);
      if (sd <= 1e-12) continue;
      double coef = 0.0;
      {
        double num = 0.0, den = 0.0;
        const double mx = Mean(x), my = Mean(y);
        for (size_t t = 0; t < x.size(); ++t) {
          num += (x[t] - mx) * (y[t] - my);  // causumx-lint: allow(fp-accumulation) serial fixed sample order)
          den += (x[t] - mx) * (x[t] - mx);
        }
        coef = den > 0 ? num / den : 0.0;
      }
      if (std::fabs(coef) * sd >= prune_threshold) {
        result.dag.AddEdge(names[src], names[target]);
      }
      for (size_t t = 0; t < y.size(); ++t) y[t] -= coef * x[t];
    }
  }
  return result;
}

}  // namespace causumx
