// FCI-style causal discovery.
//
// FCI extends PC to tolerate latent confounders by running an extra
// skeleton-pruning pass over "possible d-separating" sets after the
// initial PC skeleton and v-structure orientation. The full FCI outputs a
// PAG; since CauSumX consumes a DAG, we follow the paper's experimental
// protocol (Section 6.6 compares DAGs by the CATE rankings they induce)
// and project the oriented graph onto a DAG the same way the PC path does.

#ifndef CAUSUMX_CAUSAL_FCI_H_
#define CAUSUMX_CAUSAL_FCI_H_

#include "causal/dag.h"
#include "dataset/table.h"

namespace causumx {

struct FciResult {
  CausalDag dag;
  size_t ci_tests_run = 0;
  size_t extra_edges_removed = 0;  ///< removals from the possible-d-sep pass.
};

/// Runs the FCI variant. Parameters mirror RunPc.
FciResult RunFci(const Table& table, double alpha = 0.05,
                 size_t max_cond_size = 3, size_t max_rows = 100'000);

}  // namespace causumx

#endif  // CAUSUMX_CAUSAL_FCI_H_
