#include "causal/estimator_context.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "causal/ols.h"
#include "storage/bytes.h"
#include "storage/storage_error.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/thread_pool.h"

namespace causumx {

EstimatorContext::EstimatorContext(std::shared_ptr<EvalEngine> engine,
                                   const CausalDag& dag,
                                   EstimatorOptions options)
    : engine_(std::move(engine)), dag_(dag), options_(options) {}

EstimatorContext::EstimatorContext(std::shared_ptr<EvalEngine> engine,
                                   const EstimatorContext& base)
    : engine_(std::move(engine)), dag_(base.dag_), options_(base.options_) {
  const size_t new_rows = engine_->table().NumRows();
  // Memo keys are only meaningful for predicate ids the new engine
  // inherited. The engine's intern table was snapshotted (in the
  // delta-extension ctor) before this memo is, so a query racing the
  // append may have interned further predicates into the base engine and
  // memoized under ids >= `known` — ids the new engine will hand out to
  // whatever predicates arrive first. Carrying such an entry could
  // silently serve one treatment's CATE for another; drop them instead.
  const size_t known = engine_->NumInterned();
  // Snapshot phase: base.memo_mu_ is held only to copy the raw state —
  // queries still running on the pre-append snapshot contend with the
  // copy, not with the O(subpops x rows) zero-extension below (the same
  // lock-minimizing split the EvalEngine delta ctor uses).
  std::vector<std::pair<Bitset, uint32_t>> subpops;
  std::vector<std::pair<MemoKey, MemoEntry>> entries;  // LRU, oldest first
  {
    util::MutexLock lock(base.memo_mu_);
    next_subpop_id_ = base.next_subpop_id_;
    for (const auto& [hash, bucket] : base.subpop_ids_) {
      for (const auto& [bits, id] : bucket) subpops.emplace_back(bits, id);
    }
    entries.reserve(base.memo_.size());
    for (auto it = base.lru_.rbegin(); it != base.lru_.rend(); ++it) {
      entries.emplace_back(*it, base.memo_.find(*it)->second);
    }
  }
  // Zero-extend each interned subpopulation to the new universe and
  // re-bucket it under its new hash (Hash() covers the appended zero
  // words and the size). Ids are preserved — the carried memo keys
  // reference them.
  for (auto& [bits, id] : subpops) {
    bits.Resize(new_rows);
    const uint64_t h = bits.Hash();
    subpop_bytes_ += SubpopEntryBytes(bits.size());
    subpop_ids_[h].emplace_back(std::move(bits), id);
  }
  // Carry the memo, preserving LRU order (`entries` runs least to most
  // recent; each push_front leaves the most recent at the front). Keys
  // are sorted, so the back is the maximum predicate id.
  for (auto& [key, src] : entries) {
    if (!key.treatment.empty() && key.treatment.back() >= known) continue;
    lru_.push_front(key);
    MemoEntry entry{std::move(src.est), lru_.begin(), src.bytes};
    memo_bytes_ += entry.bytes;
    memo_.emplace(std::move(key), std::move(entry));
  }
  n_migrated_.store(memo_.size(), std::memory_order_relaxed);
}

EstimatorContext::EstimatorContext(std::shared_ptr<EvalEngine> engine,
                                   const EstimatorContext& base,
                                   size_t dropped_prefix_rows)
    : engine_(std::move(engine)), dag_(base.dag_), options_(base.options_) {
  const size_t new_rows = engine_->table().NumRows();
  const size_t dropped = dropped_prefix_rows;
  // Same id-race guard as the append migration: entries memoized under
  // predicate ids the new engine did not inherit are dropped.
  const size_t known = engine_->NumInterned();
  std::vector<std::pair<Bitset, uint32_t>> subpops;
  std::vector<std::pair<MemoKey, MemoEntry>> entries;  // LRU, oldest first
  {
    util::MutexLock lock(base.memo_mu_);
    next_subpop_id_ = base.next_subpop_id_;
    for (const auto& [hash, bucket] : base.subpop_ids_) {
      for (const auto& [bits, id] : bucket) subpops.emplace_back(bits, id);
    }
    entries.reserve(base.memo_.size());
    for (auto it = base.lru_.rbegin(); it != base.lru_.rend(); ++it) {
      entries.emplace_back(*it, base.memo_.find(*it)->second);
    }
  }
  // Carry exactly the subpopulations that lost no row: their bits shift
  // down by the dropped prefix (preserving ids) and re-bucket under the
  // shifted hash. Two distinct carried subpopulations stay distinct —
  // both prefixes were empty, so they already differed in the surviving
  // range. Subpopulations with any expired member are invalidated.
  std::vector<bool> id_carried(static_cast<size_t>(next_subpop_id_), false);
  for (auto& [bits, id] : subpops) {
    if (bits.size() != new_rows + dropped) continue;  // stale universe
    if (bits.CountRange(0, dropped) != 0) continue;   // lost rows
    bits.DropPrefix(dropped);
    const uint64_t h = bits.Hash();
    subpop_bytes_ += SubpopEntryBytes(bits.size());
    if (id < id_carried.size()) id_carried[id] = true;
    subpop_ids_[h].emplace_back(std::move(bits), id);
  }
  for (auto& [key, src] : entries) {
    if (!key.treatment.empty() && key.treatment.back() >= known) continue;
    if (key.subpop_id >= id_carried.size() || !id_carried[key.subpop_id]) {
      continue;
    }
    lru_.push_front(key);
    MemoEntry entry{std::move(src.est), lru_.begin(), src.bytes};
    memo_bytes_ += entry.bytes;
    memo_.emplace(std::move(key), std::move(entry));
  }
  n_migrated_.store(memo_.size(), std::memory_order_relaxed);
}

std::set<std::string> EstimatorContext::AdjustmentSet(
    const Pattern& treatment, const std::string& outcome) const {
  return dag_.BackdoorAdjustmentSet(treatment.Attributes(), outcome);
}

EffectEstimate EstimatorContext::EstimateCate(const Pattern& treatment,
                                              const std::string& outcome,
                                              const Bitset& subpopulation) {
  if (treatment.IsEmpty()) return EffectEstimate{};
  if (!engine_->cache_enabled()) {
    n_misses_.fetch_add(1, std::memory_order_relaxed);
    return ComputeCate(treatment, outcome, subpopulation);
  }
  MemoKey key;
  key.treatment.reserve(treatment.predicates().size());
  for (const auto& p : treatment.predicates()) {
    key.treatment.push_back(engine_->Intern(p));
  }
  std::sort(key.treatment.begin(), key.treatment.end());
  key.outcome = outcome;
  const uint64_t subpop_hash = subpopulation.Hash();  // O(rows), unlocked
  {
    util::MutexLock lock(memo_mu_);
    key.subpop_id = InternSubpopLocked(subpop_hash, subpopulation);
    auto it = memo_.find(key);
    if (it != memo_.end()) {
      n_hits_.fetch_add(1, std::memory_order_relaxed);
      lru_.splice(lru_.begin(), lru_, it->second.lru_it);
      return it->second.est;
    }
  }
  // Computed outside the lock: concurrent misses on the same key may
  // duplicate work once, but never block each other on the OLS solve.
  const EffectEstimate est = ComputeCate(treatment, outcome, subpopulation);
  {
    util::MutexLock lock(memo_mu_);
    auto it = memo_.find(key);
    if (it == memo_.end()) {
      lru_.push_front(key);
      MemoEntry entry{est, lru_.begin(), EntryBytes(key)};
      memo_bytes_ += entry.bytes;
      memo_.emplace(std::move(key), std::move(entry));
    }
  }
  n_misses_.fetch_add(1, std::memory_order_relaxed);
  return est;
}

size_t EstimatorContext::EntryBytes(const MemoKey& key) {
  // Approximate footprint: key + estimate payload, the LRU list node, and
  // a flat allowance for the hash-map node/bucket overhead. The key is
  // stored twice (map node + LRU list node).
  return 2 * (sizeof(MemoKey) + key.outcome.size() +
              key.treatment.size() * sizeof(PredicateId)) +
         sizeof(MemoEntry) + 3 * sizeof(void*) + 64;
}

size_t EstimatorContext::SubpopEntryBytes(size_t bitset_size) {
  return sizeof(std::pair<Bitset, uint32_t>) +
         ((bitset_size + 63) / 64) * sizeof(uint64_t) + 32;
}

uint32_t EstimatorContext::InternSubpopLocked(uint64_t hash,
                                              const Bitset& subpopulation) {
  auto& bucket = subpop_ids_[hash];
  for (const auto& [bits, id] : bucket) {
    if (bits == subpopulation) return id;
  }
  const uint32_t id = next_subpop_id_++;
  bucket.emplace_back(subpopulation, id);
  subpop_bytes_ += SubpopEntryBytes(subpopulation.size());
  return id;
}

size_t EstimatorContext::CacheBytes() const {
  util::MutexLock lock(memo_mu_);
  return memo_bytes_ + subpop_bytes_;
}

size_t EstimatorContext::EvictLru(size_t bytes_to_free) {
  if (bytes_to_free == 0) return 0;
  util::MutexLock lock(memo_mu_);
  size_t freed = 0;
  while (freed < bytes_to_free && !lru_.empty()) {
    auto it = memo_.find(lru_.back());
    freed += it->second.bytes;
    memo_bytes_ -= it->second.bytes;
    memo_.erase(it);
    lru_.pop_back();
    n_evicted_.fetch_add(1, std::memory_order_relaxed);
  }
  // Once no memo entry references a subpopulation id, the intern table's
  // retained bitset copies are pure overhead — drop them too.
  if (memo_.empty() && subpop_bytes_ > 0) {
    freed += subpop_bytes_;
    subpop_bytes_ = 0;
    subpop_ids_.clear();
  }
  return freed;
}

EffectEstimate EstimatorContext::ComputeCate(const Pattern& treatment,
                                             const std::string& outcome,
                                             const Bitset& subpopulation) {
  EffectEstimate est;
  const Table& table = engine_->table();
  const auto y_idx = table.ColumnIndex(outcome);
  if (!y_idx) return est;
  const NumericColumnView& y_view = engine_->Numeric(*y_idx);

  // Candidate rows: subpopulation with non-null outcome. Collected as
  // per-shard sufficient statistics — each shard gathers its own index
  // range and the concatenation in shard order is exactly the ascending
  // serial scan, so the estimate is independent of the plan.
  const ShardPlan& plan = engine_->plan();
  // Dispatch gate: EstimateCate runs thousands of times per query, and
  // for small tables the per-call task round trip outweighs the scan it
  // splits. The serial branch executes the identical per-shard
  // computation, so results never depend on the gate.
  ThreadPool* pool =
      table.NumRows() >= kParallelEstimateRowThreshold ? engine_->pool()
                                                       : nullptr;
  const size_t num_shards = plan.NumShards();
  std::vector<std::vector<size_t>> shard_rows(num_shards);
  ThreadPool::RunOn(pool, num_shards, [&](size_t s) {
    std::vector<size_t> local;
    subpopulation.AppendIndicesInRange(plan.ShardBegin(s), plan.ShardEnd(s),
                                       &local);
    std::vector<size_t>& keep = shard_rows[s];
    keep.reserve(local.size());
    for (size_t r : local) {
      if (y_view.valid.Test(r)) keep.push_back(r);
    }
  });
  std::vector<size_t> rows;
  rows.reserve(subpopulation.Count());
  for (auto& part : shard_rows) {
    rows.insert(rows.end(), part.begin(), part.end());
  }

  // Optimization (d): sample large subpopulations for CATE estimation.
  if (options_.sample_cap > 0 && rows.size() > options_.sample_cap) {
    Rng rng(options_.sample_seed ^ treatment.Hash());
    std::vector<size_t> chosen =
        rng.SampleIndices(rows.size(), options_.sample_cap);
    std::vector<size_t> sampled;
    sampled.reserve(chosen.size());
    for (size_t i : chosen) sampled.push_back(rows[i]);
    std::sort(sampled.begin(), sampled.end());
    rows = std::move(sampled);
  }
  if (rows.size() < 2 * options_.min_group_size) return est;

  // Treatment indicator from the engine's cached bitsets (bit-identical
  // to row-at-a-time Matches; see the engine property tests). The fill
  // and the treated count are chunked per-shard statistics: element
  // writes are disjoint and the counts are integers, so any schedule
  // sums to the same value.
  const Bitset treated_bits = engine_->EvaluateOn(treatment, subpopulation);
  std::vector<uint8_t> treated(rows.size(), 0);
  const size_t num_chunks = (rows.size() + kOlsChunkRows - 1) / kOlsChunkRows;
  std::vector<size_t> chunk_treated(num_chunks, 0);
  ThreadPool::RunOn(pool, num_chunks, [&](size_t c) {
    size_t count = 0;
    const size_t end = std::min(rows.size(), (c + 1) * kOlsChunkRows);
    for (size_t i = c * kOlsChunkRows; i < end; ++i) {
      treated[i] = treated_bits.Test(rows[i]) ? 1 : 0;
      count += treated[i];
    }
    chunk_treated[c] = count;
  });
  size_t n_treated = 0;
  for (size_t count : chunk_treated) n_treated += count;
  const size_t n_control = rows.size() - n_treated;
  est.n_treated = n_treated;
  est.n_control = n_control;
  // Overlap (Eq. 4): both groups must be represented.
  if (n_treated < options_.min_group_size ||
      n_control < options_.min_group_size) {
    return est;
  }

  // Backdoor adjustment set Z from the DAG: parents of treatment attrs.
  const std::set<std::string> adjustment = AdjustmentSet(treatment, outcome);

  // Assemble design matrix columns: intercept, T, then confounders.
  // Numeric confounders enter via the cached column views; categorical
  // ones are one-hot encoded with the most frequent level dropped as
  // baseline (dense code counting; ties break by the level's dictionary
  // *string*, not its code — the string order is a function of the data
  // values alone, so the encoding survives the windowed-retention path's
  // dictionary re-coding and stays bit-identical to a from-scratch
  // rebuild over the same rows).
  struct Encoded {
    const Column* col;
    const NumericColumnView* view;
    bool categorical;
    std::vector<int32_t> kept_codes;  // categorical: levels with own column
  };
  std::vector<Encoded> confounders;
  size_t extra_cols = 0;
  for (const auto& name : adjustment) {
    auto idx = table.ColumnIndex(name);
    if (!idx) continue;  // DAG node without a data column (latent): skip.
    const Column& c = table.column(*idx);
    Encoded enc;
    enc.col = &c;
    enc.view = nullptr;
    enc.categorical = (c.type() == ColumnType::kCategorical);
    if (enc.categorical) {
      // Count level frequencies within the estimation rows (dense array
      // over the dictionary instead of a hash map).
      std::vector<size_t> freq(c.dictionary().size(), 0);
      size_t distinct = 0;
      for (size_t r : rows) {
        const int32_t code = c.GetCode(r);
        if (code == Column::kNullCode) continue;
        if (freq[code]++ == 0) ++distinct;
      }
      if (distinct < 2) continue;  // constant -> no information
      std::vector<std::pair<int32_t, size_t>> levels;
      levels.reserve(distinct);
      for (size_t code = 0; code < freq.size(); ++code) {
        if (freq[code] > 0) {
          levels.emplace_back(static_cast<int32_t>(code), freq[code]);
        }
      }
      std::sort(levels.begin(), levels.end(),
                [&c](const auto& a, const auto& b) {
                  if (a.second != b.second) return a.second > b.second;
                  return c.DictString(a.first) < c.DictString(b.first);
                });
      // Drop the most frequent level (baseline) and merge the long tail.
      const size_t keep =
          std::min(options_.max_onehot_levels, levels.size() - 1);
      for (size_t l = 1; l <= keep; ++l) {
        enc.kept_codes.push_back(levels[l].first);
      }
      extra_cols += enc.kept_codes.size();
    } else {
      enc.view = &engine_->Numeric(*idx);
      ++extra_cols;
    }
    confounders.push_back(std::move(enc));
  }

  const size_t p = 2 + extra_cols;  // intercept + T + confounders
  if (rows.size() <= p + 1) return est;

  // Fills row i of a design whose first column is the intercept and whose
  // confounder block starts at `offset`.
  auto fill_confounders = [&](DesignMatrix* x, size_t i, size_t r,
                              size_t offset) {
    size_t col = offset;
    for (const auto& enc : confounders) {
      if (enc.categorical) {
        const int32_t code = enc.col->GetCode(r);
        for (int32_t kept : enc.kept_codes) {
          x->At(i, col++) = (code == kept) ? 1.0 : 0.0;
        }
      } else {
        const double v = enc.view->values[r];
        x->At(i, col++) = std::isnan(v) ? 0.0 : v;
      }
    }
  };

  std::vector<double> y(rows.size());
  ThreadPool::RunOn(pool, num_chunks, [&](size_t c) {
    const size_t end = std::min(rows.size(), (c + 1) * kOlsChunkRows);
    for (size_t i = c * kOlsChunkRows; i < end; ++i) {
      y[i] = y_view.values[rows[i]];
    }
  });

  if (options_.method == EstimationMethod::kRegressionAdjustment) {
    DesignMatrix x(rows.size(), p);
    // Row-disjoint design assembly; the fit itself reduces per-chunk
    // partials in fixed order (see FitOls), so the estimate is
    // bit-identical at any thread count.
    ThreadPool::RunOn(pool, num_chunks, [&](size_t c) {
      const size_t end = std::min(rows.size(), (c + 1) * kOlsChunkRows);
      for (size_t i = c * kOlsChunkRows; i < end; ++i) {
        x.At(i, 0) = 1.0;
        x.At(i, 1) = treated[i];
        fill_confounders(&x, i, rows[i], 2);
      }
    });
    const OlsResult fit = FitOls(x, y, pool);
    if (!fit.ok) return est;
    est.valid = true;
    est.cate = fit.coefficients[1];
    est.std_error = fit.std_errors[1];
    est.p_value = fit.PValue(1);
    est.n_used = rows.size();
    return est;
  }

  // --- Inverse propensity weighting ---------------------------------------
  // Propensity model: logistic regression T ~ 1 + Z fit by a few IRLS
  // (Newton) steps; the Hajek estimator with clipped weights gives the
  // effect, and its influence function the standard error.
  const size_t q = 1 + extra_cols;  // intercept + confounders
  DesignMatrix z(rows.size(), q);
  ThreadPool::RunOn(pool, num_chunks, [&](size_t c) {
    const size_t end = std::min(rows.size(), (c + 1) * kOlsChunkRows);
    for (size_t i = c * kOlsChunkRows; i < end; ++i) {
      z.At(i, 0) = 1.0;
      fill_confounders(&z, i, rows[i], 1);
    }
  });
  std::vector<double> beta(q, 0.0);
  for (int iter = 0; iter < 8; ++iter) {
    // Newton step: beta += (Z^T W Z)^-1 Z^T (T - mu), W = mu(1-mu).
    std::vector<std::vector<double>> ztwz(q, std::vector<double>(q, 0.0));
    std::vector<double> grad(q, 0.0);
    for (size_t i = 0; i < rows.size(); ++i) {
      double eta = 0.0;
      for (size_t j = 0; j < q; ++j) eta += z.At(i, j) * beta[j];
      const double mu = 1.0 / (1.0 + std::exp(-eta));
      const double w = std::max(1e-6, mu * (1.0 - mu));
      const double resid = static_cast<double>(treated[i]) - mu;
      for (size_t a = 0; a < q; ++a) {
        grad[a] += z.At(i, a) * resid;
        for (size_t b = a; b < q; ++b) {
          ztwz[a][b] += w * z.At(i, a) * z.At(i, b);
        }
      }
    }
    for (size_t a = 0; a < q; ++a) {
      for (size_t b = 0; b < a; ++b) ztwz[a][b] = ztwz[b][a];
    }
    std::vector<double> step = grad;
    if (!SolveSpd(&ztwz, &step)) break;
    double max_step = 0.0;
    for (size_t j = 0; j < q; ++j) {
      beta[j] += step[j];
      max_step = std::max(max_step, std::fabs(step[j]));
    }
    if (max_step < 1e-8) break;
  }

  const double clip = std::clamp(options_.propensity_clip, 1e-6, 0.49);
  double sw1 = 0, sw0 = 0, sy1 = 0, sy0 = 0;
  std::vector<double> prop(rows.size());
  for (size_t i = 0; i < rows.size(); ++i) {
    double eta = 0.0;
    for (size_t j = 0; j < q; ++j) eta += z.At(i, j) * beta[j];
    double e = 1.0 / (1.0 + std::exp(-eta));
    e = std::clamp(e, clip, 1.0 - clip);
    prop[i] = e;
    if (treated[i]) {
      const double w = 1.0 / e;
      sw1 += w;  // causumx-lint: allow(fp-accumulation) serial fixed row order)
      sy1 += w * y[i];
    } else {
      const double w = 1.0 / (1.0 - e);
      sw0 += w;
      sy0 += w * y[i];
    }
  }
  if (sw1 <= 0 || sw0 <= 0) return est;
  const double mu1 = sy1 / sw1;
  const double mu0 = sy0 / sw0;

  // Influence-function variance of the Hajek ATE.
  const double n = static_cast<double>(rows.size());
  double var_sum = 0.0;
  for (size_t i = 0; i < rows.size(); ++i) {
    const double e = prop[i];
    const double psi =
        treated[i] ? (y[i] - mu1) / e : -(y[i] - mu0) / (1.0 - e);
    var_sum += psi * psi;  // causumx-lint: allow(fp-accumulation) serial fixed row order)
  }
  est.valid = true;
  est.cate = mu1 - mu0;
  est.std_error = std::sqrt(var_sum) / n;
  est.p_value = est.std_error > 0
                    ? TwoSidedPValueZ(est.cate / est.std_error)
                    : 1.0;
  est.n_used = rows.size();
  return est;
}

EstimatorCacheStats EstimatorContext::Stats() const {
  EstimatorCacheStats s;
  s.memo_hits = n_hits_.load(std::memory_order_relaxed);
  s.memo_misses = n_misses_.load(std::memory_order_relaxed);
  s.memo_evicted = n_evicted_.load(std::memory_order_relaxed);
  s.memo_migrated = n_migrated_.load(std::memory_order_relaxed);
  util::MutexLock lock(memo_mu_);
  s.memo_entries = memo_.size();
  s.memo_bytes = memo_bytes_;
  return s;
}

namespace {

void PutBitset(ByteWriter* w, const Bitset& bits) {
  w->PutVarint(bits.size());
  for (size_t i = 0; i < (bits.size() + 63) / 64; ++i) {
    w->PutU64(bits.data()[i]);
  }
}

Bitset GetBitset(ByteReader* r) {
  const uint64_t n = r->GetVarint();
  const uint64_t n_words = (n + 63) / 64;
  if (n_words > r->remaining() / 8) {
    throw StorageError(StorageErrorKind::kCorrupt,
                       "memo state: truncated bitset");
  }
  Bitset bits(static_cast<size_t>(n));
  for (uint64_t i = 0; i < n_words; ++i) bits.mutable_data()[i] = r->GetU64();
  if ((n & 63) != 0 && n_words > 0 &&
      (bits.data()[n_words - 1] & ~((uint64_t{1} << (n & 63)) - 1)) != 0) {
    throw StorageError(StorageErrorKind::kCorrupt,
                       "memo state: bitset padding bits set");
  }
  return bits;
}

}  // namespace

std::string EstimatorContext::ExportMemoState() const {
  // Copy under the lock, serialize outside it (the same lock-minimizing
  // split as the append-migration constructor).
  std::vector<std::pair<uint32_t, Bitset>> subpops;
  std::vector<std::pair<MemoKey, EffectEstimate>> entries;  // oldest first
  uint32_t next_id = 0;
  {
    util::MutexLock lock(memo_mu_);
    next_id = next_subpop_id_;
    for (const auto& [hash, bucket] : subpop_ids_) {
      for (const auto& [bits, id] : bucket) subpops.emplace_back(id, bits);
    }
    entries.reserve(memo_.size());
    for (auto it = lru_.rbegin(); it != lru_.rend(); ++it) {
      entries.emplace_back(*it, memo_.find(*it)->second.est);
    }
  }
  // The intern table iterates in unordered_map order; sort by id so the
  // exported bytes are deterministic for identical cache state.
  std::sort(subpops.begin(), subpops.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });

  ByteWriter w;
  w.PutU64(engine_->table().NumRows());
  w.PutVarint(engine_->NumInterned());
  w.PutVarint(next_id);
  w.PutVarint(subpops.size());
  for (const auto& [id, bits] : subpops) {
    w.PutVarint(id);
    PutBitset(&w, bits);
  }
  w.PutVarint(entries.size());
  for (const auto& [key, est] : entries) {
    w.PutVarint(key.treatment.size());
    for (PredicateId id : key.treatment) w.PutVarint(id);
    w.PutString(key.outcome);
    w.PutVarint(key.subpop_id);
    w.PutU8(est.valid ? 1 : 0);
    w.PutDouble(est.cate);
    w.PutDouble(est.std_error);
    w.PutDouble(est.p_value);
    w.PutVarint(est.n_treated);
    w.PutVarint(est.n_control);
    w.PutVarint(est.n_used);
  }
  return w.TakeBytes();
}

size_t EstimatorContext::ImportMemoState(const std::string& bytes) {
  ByteReader r(bytes);
  const size_t rows = engine_->table().NumRows();
  if (r.GetU64() != rows) {
    throw StorageError(StorageErrorKind::kStale,
                       "memo state: universe size mismatch");
  }
  // The memo keys reference the engine's dense predicate ids; every id
  // the exporting engine knew must already be interned here (restore
  // the engine cache first).
  const uint64_t known = r.GetVarint();
  if (known > engine_->NumInterned()) {
    throw StorageError(StorageErrorKind::kStale,
                       "memo state: predicate id space mismatch");
  }
  const uint64_t next_id = r.GetVarint();
  const uint64_t n_subpops = r.GetVarint();
  if (n_subpops > next_id || n_subpops > bytes.size()) {
    throw StorageError(StorageErrorKind::kCorrupt,
                       "memo state: implausible subpopulation count");
  }

  util::MutexLock lock(memo_mu_);
  if (!memo_.empty() || next_subpop_id_ != 0) {
    throw std::logic_error(
        "EstimatorContext::ImportMemoState requires a fresh context");
  }
  // Export writes subpopulations sorted by id, so strict ascending order
  // doubles as the uniqueness check and keeps membership tests a binary
  // search (no allocation sized from untrusted counts).
  std::vector<uint64_t> subpop_ids_seen;
  subpop_ids_seen.reserve(static_cast<size_t>(n_subpops));
  for (uint64_t i = 0; i < n_subpops; ++i) {
    const uint64_t id = r.GetVarint();
    if (id >= next_id ||
        (!subpop_ids_seen.empty() && id <= subpop_ids_seen.back())) {
      throw StorageError(StorageErrorKind::kCorrupt,
                         "memo state: bad subpopulation id");
    }
    subpop_ids_seen.push_back(id);
    Bitset bits = GetBitset(&r);
    if (bits.size() != rows) {
      throw StorageError(StorageErrorKind::kCorrupt,
                         "memo state: subpopulation universe mismatch");
    }
    const uint64_t h = bits.Hash();
    subpop_bytes_ += SubpopEntryBytes(bits.size());
    subpop_ids_[h].emplace_back(std::move(bits),
                                static_cast<uint32_t>(id));
  }
  next_subpop_id_ = static_cast<uint32_t>(next_id);

  const uint64_t n_entries = r.GetVarint();
  if (n_entries > bytes.size()) {
    throw StorageError(StorageErrorKind::kCorrupt,
                       "memo state: implausible entry count");
  }
  for (uint64_t i = 0; i < n_entries; ++i) {
    MemoKey key;
    const uint64_t n_ids = r.GetVarint();
    if (n_ids > known) {
      throw StorageError(StorageErrorKind::kCorrupt,
                         "memo state: implausible treatment arity");
    }
    key.treatment.reserve(n_ids);
    for (uint64_t j = 0; j < n_ids; ++j) {
      const uint64_t id = r.GetVarint();
      if (id >= known ||
          (!key.treatment.empty() && id <= key.treatment.back())) {
        throw StorageError(StorageErrorKind::kCorrupt,
                           "memo state: treatment ids not sorted in range");
      }
      key.treatment.push_back(static_cast<PredicateId>(id));
    }
    key.outcome = r.GetString();
    const uint64_t subpop = r.GetVarint();
    if (!std::binary_search(subpop_ids_seen.begin(), subpop_ids_seen.end(),
                            subpop)) {
      throw StorageError(StorageErrorKind::kCorrupt,
                         "memo state: entry references unknown subpopulation");
    }
    key.subpop_id = static_cast<uint32_t>(subpop);

    EffectEstimate est;
    est.valid = r.GetU8() != 0;
    est.cate = r.GetDouble();
    est.std_error = r.GetDouble();
    est.p_value = r.GetDouble();
    est.n_treated = static_cast<size_t>(r.GetVarint());
    est.n_control = static_cast<size_t>(r.GetVarint());
    est.n_used = static_cast<size_t>(r.GetVarint());

    // Entries arrive oldest first; push_front keeps the newest at the
    // front, reproducing the exported LRU order.
    lru_.push_front(key);
    MemoEntry entry{est, lru_.begin(), EntryBytes(key)};
    memo_bytes_ += entry.bytes;
    if (!memo_.emplace(std::move(key), std::move(entry)).second) {
      throw StorageError(StorageErrorKind::kCorrupt,
                         "memo state: duplicate entry");
    }
  }
  if (!r.AtEnd()) {
    throw StorageError(StorageErrorKind::kCorrupt,
                       "memo state: trailing bytes");
  }
  n_migrated_.store(memo_.size(), std::memory_order_relaxed);
  return memo_.size();
}

}  // namespace causumx
