// Option and result types of the effect estimator, split out so the
// engine-bound EstimatorContext and the EffectEstimator facade can share
// them without an include cycle.

#ifndef CAUSUMX_CAUSAL_ESTIMATOR_TYPES_H_
#define CAUSUMX_CAUSAL_ESTIMATOR_TYPES_H_

#include <cstddef>
#include <cstdint>
#include <utility>

namespace causumx {

/// How the confounder adjustment is performed.
///
/// kRegressionAdjustment is the paper's estimator (DoWhy linear
/// regression). kIpw is inverse-propensity weighting (Section 7 mentions
/// propensity methods for richer treatment handling): a logistic
/// propensity model over the backdoor set reweights the difference in
/// means; robust to outcome-model misspecification, noisier under weak
/// overlap.
enum class EstimationMethod { kRegressionAdjustment, kIpw };

/// Tuning knobs for effect estimation.
struct EstimatorOptions {
  /// Minimum treated and minimum control units required (overlap, Eq. 4).
  size_t min_group_size = 10;
  /// When the subpopulation exceeds this, estimate on a uniform random
  /// sample of this size (optimization (d), Section 5.2). 0 = never sample.
  size_t sample_cap = 1'000'000;
  /// Seed for the sampling RNG (deterministic across runs).
  uint64_t sample_seed = 17;
  /// Cap on one-hot levels per categorical confounder; rarest levels merge
  /// into the dropped baseline. Keeps designs tractable on wide domains.
  size_t max_onehot_levels = 24;
  /// Adjustment strategy (see EstimationMethod).
  EstimationMethod method = EstimationMethod::kRegressionAdjustment;
  /// IPW only: propensities are clipped into [clip, 1-clip] to bound the
  /// weights (standard practice).
  double propensity_clip = 0.02;
};

/// A CATE estimate.
struct EffectEstimate {
  bool valid = false;       ///< false when overlap/df checks failed.
  double cate = 0.0;        ///< estimated conditional average treatment effect.
  double std_error = 0.0;   ///< standard error of the CATE.
  double p_value = 1.0;     ///< two-sided t-test p-value.
  size_t n_treated = 0;     ///< treated units in the (sampled) population.
  size_t n_control = 0;     ///< control units in the (sampled) population.
  size_t n_used = 0;        ///< rows entering the regression.

  /// True when valid and p_value <= alpha.
  bool Significant(double alpha = 0.05) const {
    return valid && p_value <= alpha;
  }

  /// Two-sided confidence interval at the given level (default 95%):
  /// cate +- z * std_error. Returns {cate, cate} when invalid.
  std::pair<double, double> ConfidenceInterval(double level = 0.95) const;
};

}  // namespace causumx

#endif  // CAUSUMX_CAUSAL_ESTIMATOR_TYPES_H_
