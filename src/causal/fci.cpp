#include "causal/fci.h"

#include <algorithm>
#include <functional>
#include <deque>

#include "causal/independence.h"
#include "causal/pc.h"

namespace causumx {

namespace {

// Possible-D-SEP(x): nodes reachable from x in the skeleton — a superset
// approximation of FCI's pd-sep set that keeps the pass sound (we only
// *remove* edges when a separating subset is found).
std::vector<std::string> ReachableFrom(const PdagBuilder& pdag,
                                       const std::string& x) {
  std::vector<std::string> out;
  std::set<std::string> seen{x};
  std::deque<std::string> queue{x};
  while (!queue.empty()) {
    const std::string cur = queue.front();
    queue.pop_front();
    for (const auto& n : pdag.Neighbors(cur)) {
      if (seen.insert(n).second) {
        out.push_back(n);
        queue.push_back(n);
      }
    }
  }
  return out;
}

bool ForEachSubsetOfSize(
    const std::vector<std::string>& pool, size_t k,
    const std::function<bool(const std::vector<std::string>&)>& fn) {
  if (k > pool.size()) return false;
  std::vector<size_t> idx(k);
  for (size_t i = 0; i < k; ++i) idx[i] = i;
  std::vector<std::string> subset(k);
  for (;;) {
    for (size_t i = 0; i < k; ++i) subset[i] = pool[idx[i]];
    if (fn(subset)) return true;
    size_t i = k;
    bool advanced = false;
    while (i-- > 0) {
      if (idx[i] != i + pool.size() - k) {
        ++idx[i];
        for (size_t j = i + 1; j < k; ++j) idx[j] = idx[j - 1] + 1;
        advanced = true;
        break;
      }
    }
    if (!advanced || k == 0) return false;
  }
}

}  // namespace

FciResult RunFci(const Table& table, double alpha, size_t max_cond_size,
                 size_t max_rows) {
  FciResult result;

  // Stage 1: PC skeleton + v-structures (reuse RunPc up to its oriented
  // graph — we rebuild the PDAG from the PC DAG's adjacency so the extra
  // pass operates on the same structure).
  PcResult pc = RunPc(table, alpha, max_cond_size, max_rows);
  result.ci_tests_run = pc.ci_tests_run;

  const std::vector<std::string> nodes = table.ColumnNames();
  PdagBuilder pdag(nodes);
  for (const auto& a : nodes) {
    for (const auto& b : pc.dag.Children(a)) pdag.AddUndirected(a, b);
  }

  // Stage 2: possible-d-sep pruning — for every remaining edge, search for
  // a separating set among nodes reachable from either endpoint (capped at
  // max_cond_size for tractability, as in anytime FCI).
  FisherZTest test(table, max_rows);
  for (const auto& x : nodes) {
    for (const auto& y : nodes) {
      if (x >= y || !pdag.Adjacent(x, y)) continue;
      std::vector<std::string> pool = ReachableFrom(pdag, x);
      pool.erase(std::remove(pool.begin(), pool.end(), y), pool.end());
      bool removed = false;
      for (size_t k = 1; k <= max_cond_size && !removed; ++k) {
        removed = ForEachSubsetOfSize(
            pool, k, [&](const std::vector<std::string>& s) {
              ++result.ci_tests_run;
              if (test.Independent(x, y, s, alpha)) {
                pdag.RemoveUndirected(x, y);
                ++result.extra_edges_removed;
                return true;
              }
              return false;
            });
      }
    }
  }

  // Stage 3: re-orient on the pruned skeleton — keep PC's edge directions
  // where both endpoints survived, then DAG-ify.
  PdagBuilder oriented(nodes);
  for (const auto& a : nodes) {
    for (const auto& b : pc.dag.Children(a)) {
      if (pdag.Adjacent(a, b)) {
        oriented.AddUndirected(a, b);
        oriented.Orient(a, b);
      }
    }
  }
  oriented.ApplyMeekRules();
  result.dag = oriented.ToDag(nodes);
  return result;
}

}  // namespace causumx
