// ATE / CATE estimation by linear-regression adjustment (Section 3 and
// Definition 4.3 of the paper).
//
// Given a treatment pattern P_t (binary treatment indicator), an outcome
// attribute Y, an optional subpopulation (grouping pattern P_g), and a
// causal DAG, we regress
//     Y ~ 1 + T + Z
// inside the subpopulation, where Z is the backdoor adjustment set derived
// from the DAG (parents of the treatment attributes). The coefficient on T
// is the (C)ATE; its t-test provides the p-value the explanation reports.
//
// EffectEstimator is a thin facade over an engine-bound EstimatorContext
// (causal/estimator_context.h): treatment indicators come from the
// EvalEngine's cached predicate bitsets, outcome/confounder reads from
// its cached numeric column views, and finished estimates are memoized
// per (treatment, outcome, subpopulation). Copies of an estimator share
// one context, so every copy populates the same caches.

#ifndef CAUSUMX_CAUSAL_ESTIMATOR_H_
#define CAUSUMX_CAUSAL_ESTIMATOR_H_

#include <memory>
#include <set>
#include <string>

#include "causal/dag.h"
#include "causal/estimator_context.h"
#include "causal/estimator_types.h"
#include "dataset/pattern.h"
#include "dataset/table.h"
#include "engine/eval_engine.h"
#include "util/bitset.h"

namespace causumx {

/// Effect estimator bound to one table + DAG.
///
/// Thread-safe for concurrent EstimateCate calls (the underlying caches
/// are internally synchronized; each call's sampling RNG is seeded
/// deterministically from the option seed and the pattern hash).
class EffectEstimator {
 public:
  /// Creates a private engine over `table` (caches enabled). The table
  /// must outlive the estimator.
  EffectEstimator(const Table& table, const CausalDag& dag,
                  EstimatorOptions options = {});

  /// Binds to a shared engine so predicate bitsets (and the cache-bypass
  /// flag) are shared with the miners and baselines using it.
  EffectEstimator(std::shared_ptr<EvalEngine> engine, const CausalDag& dag,
                  EstimatorOptions options = {});

  /// Wraps an existing context: this estimator and every other holder of
  /// the context share one CATE memo.
  explicit EffectEstimator(std::shared_ptr<EstimatorContext> context)
      : ctx_(std::move(context)) {}

  /// CATE of the binary treatment defined by `treatment` on `outcome`
  /// within the subpopulation rows where `subpopulation` is set (pass a
  /// full mask for the ATE). Adjusts for the DAG's backdoor set.
  EffectEstimate EstimateCate(const Pattern& treatment,
                              const std::string& outcome,
                              const Bitset& subpopulation) const;

  /// Convenience: subpopulation given as a pattern over the table.
  EffectEstimate EstimateCate(const Pattern& treatment,
                              const std::string& outcome,
                              const Pattern& subpopulation) const;

  /// ATE over the whole table.
  EffectEstimate EstimateAte(const Pattern& treatment,
                             const std::string& outcome) const;

  /// The adjustment set the estimator would use for this treatment.
  std::set<std::string> AdjustmentSet(const Pattern& treatment,
                                      const std::string& outcome) const;

  const Table& table() const { return ctx_->table(); }
  const CausalDag& dag() const { return ctx_->dag(); }
  const EstimatorOptions& options() const { return ctx_->options(); }
  const std::shared_ptr<EvalEngine>& engine() const {
    return ctx_->engine();
  }
  const std::shared_ptr<EstimatorContext>& context() const { return ctx_; }

  /// Memoization counters of the shared context.
  EstimatorCacheStats cache_stats() const { return ctx_->Stats(); }

 private:
  std::shared_ptr<EstimatorContext> ctx_;
};

}  // namespace causumx

#endif  // CAUSUMX_CAUSAL_ESTIMATOR_H_
