// ATE / CATE estimation by linear-regression adjustment (Section 3 and
// Definition 4.3 of the paper).
//
// Given a treatment pattern P_t (binary treatment indicator), an outcome
// attribute Y, an optional subpopulation (grouping pattern P_g), and a
// causal DAG, we regress
//     Y ~ 1 + T + Z
// inside the subpopulation, where Z is the backdoor adjustment set derived
// from the DAG (parents of the treatment attributes). The coefficient on T
// is the (C)ATE; its t-test provides the p-value the explanation reports.

#ifndef CAUSUMX_CAUSAL_ESTIMATOR_H_
#define CAUSUMX_CAUSAL_ESTIMATOR_H_

#include <optional>
#include <utility>
#include <set>
#include <string>
#include <vector>

#include "causal/dag.h"
#include "causal/ols.h"
#include "dataset/pattern.h"
#include "dataset/table.h"
#include "util/bitset.h"
#include "util/rng.h"

namespace causumx {

/// How the confounder adjustment is performed.
///
/// kRegressionAdjustment is the paper's estimator (DoWhy linear
/// regression). kIpw is inverse-propensity weighting (Section 7 mentions
/// propensity methods for richer treatment handling): a logistic
/// propensity model over the backdoor set reweights the difference in
/// means; robust to outcome-model misspecification, noisier under weak
/// overlap.
enum class EstimationMethod { kRegressionAdjustment, kIpw };

/// Tuning knobs for effect estimation.
struct EstimatorOptions {
  /// Minimum treated and minimum control units required (overlap, Eq. 4).
  size_t min_group_size = 10;
  /// When the subpopulation exceeds this, estimate on a uniform random
  /// sample of this size (optimization (d), Section 5.2). 0 = never sample.
  size_t sample_cap = 1'000'000;
  /// Seed for the sampling RNG (deterministic across runs).
  uint64_t sample_seed = 17;
  /// Cap on one-hot levels per categorical confounder; rarest levels merge
  /// into the dropped baseline. Keeps designs tractable on wide domains.
  size_t max_onehot_levels = 24;
  /// Adjustment strategy (see EstimationMethod).
  EstimationMethod method = EstimationMethod::kRegressionAdjustment;
  /// IPW only: propensities are clipped into [clip, 1-clip] to bound the
  /// weights (standard practice).
  double propensity_clip = 0.02;
};

/// A CATE estimate.
struct EffectEstimate {
  bool valid = false;       ///< false when overlap/df checks failed.
  double cate = 0.0;        ///< estimated conditional average treatment effect.
  double std_error = 0.0;   ///< standard error of the CATE.
  double p_value = 1.0;     ///< two-sided t-test p-value.
  size_t n_treated = 0;     ///< treated units in the (sampled) population.
  size_t n_control = 0;     ///< control units in the (sampled) population.
  size_t n_used = 0;        ///< rows entering the regression.

  /// True when valid and p_value <= alpha.
  bool Significant(double alpha = 0.05) const {
    return valid && p_value <= alpha;
  }

  /// Two-sided confidence interval at the given level (default 95%):
  /// cate +- z * std_error. Returns {cate, cate} when invalid.
  std::pair<double, double> ConfidenceInterval(double level = 0.95) const;
};

/// Effect estimator bound to one table + DAG.
///
/// Thread-safe for concurrent EstimateCate calls (it holds no mutable
/// state besides option-derived constants; each call creates its own RNG
/// seeded deterministically from the option seed and the pattern hash).
class EffectEstimator {
 public:
  EffectEstimator(const Table& table, const CausalDag& dag,
                  EstimatorOptions options = {});

  /// CATE of the binary treatment defined by `treatment` on `outcome`
  /// within the subpopulation rows where `subpopulation` is set (pass a
  /// full mask for the ATE). Adjusts for the DAG's backdoor set.
  EffectEstimate EstimateCate(const Pattern& treatment,
                              const std::string& outcome,
                              const Bitset& subpopulation) const;

  /// Convenience: subpopulation given as a pattern over the table.
  EffectEstimate EstimateCate(const Pattern& treatment,
                              const std::string& outcome,
                              const Pattern& subpopulation) const;

  /// ATE over the whole table.
  EffectEstimate EstimateAte(const Pattern& treatment,
                             const std::string& outcome) const;

  /// The adjustment set the estimator would use for this treatment.
  std::set<std::string> AdjustmentSet(const Pattern& treatment,
                                      const std::string& outcome) const;

  const Table& table() const { return table_; }
  const CausalDag& dag() const { return dag_; }
  const EstimatorOptions& options() const { return options_; }

 private:
  const Table& table_;  // not owned; must outlive the estimator.
  CausalDag dag_;       // owned copy (DAGs are tiny; avoids lifetime traps).
  EstimatorOptions options_;
};

}  // namespace causumx

#endif  // CAUSUMX_CAUSAL_ESTIMATOR_H_
