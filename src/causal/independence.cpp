#include "causal/independence.h"

#include <cmath>
#include <stdexcept>

#include "util/stats.h"

namespace causumx {

FisherZTest::FisherZTest(const Table& table, size_t max_rows) {
  names_ = table.ColumnNames();
  const size_t k = names_.size();
  const size_t total = table.NumRows();
  const size_t stride =
      (max_rows > 0 && total > max_rows) ? (total + max_rows - 1) / max_rows
                                         : 1;

  // Gather numeric views (strided deterministic subsample for huge tables).
  std::vector<std::vector<double>> cols(k);
  for (size_t c = 0; c < k; ++c) {
    const Column& col = table.column(c);
    auto& v = cols[c];
    v.reserve(total / stride + 1);
    for (size_t r = 0; r < total; r += stride) {
      const double x = col.GetNumeric(r);
      v.push_back(std::isnan(x) ? 0.0 : x);
    }
  }
  n_ = cols.empty() ? 0 : cols[0].size();

  corr_.assign(k, std::vector<double>(k, 0.0));
  for (size_t i = 0; i < k; ++i) {
    corr_[i][i] = 1.0;
    for (size_t j = i + 1; j < k; ++j) {
      const double r = PearsonCorrelation(cols[i], cols[j]);
      corr_[i][j] = corr_[j][i] = r;
    }
  }
}

size_t FisherZTest::IndexOf(const std::string& name) const {
  for (size_t i = 0; i < names_.size(); ++i) {
    if (names_[i] == name) return i;
  }
  throw std::out_of_range("unknown variable: " + name);
}

double FisherZTest::PartialCorrelation(
    const std::string& x, const std::string& y,
    const std::vector<std::string>& cond) const {
  const size_t xi = IndexOf(x), yi = IndexOf(y);
  if (cond.empty()) return corr_[xi][yi];

  // Build the correlation submatrix over {x, y} ∪ cond and invert it; the
  // partial correlation is -P_xy / sqrt(P_xx P_yy) for precision matrix P.
  std::vector<size_t> idx{xi, yi};
  for (const auto& c : cond) idx.push_back(IndexOf(c));
  const size_t m = idx.size();
  std::vector<std::vector<double>> a(m, std::vector<double>(m));
  for (size_t i = 0; i < m; ++i) {
    for (size_t j = 0; j < m; ++j) a[i][j] = corr_[idx[i]][idx[j]];
  }
  // Gauss-Jordan inversion with partial pivoting and ridge fallback.
  std::vector<std::vector<double>> inv(m, std::vector<double>(m, 0.0));
  for (size_t i = 0; i < m; ++i) inv[i][i] = 1.0;
  for (size_t col = 0; col < m; ++col) {
    size_t piv = col;
    for (size_t r = col + 1; r < m; ++r) {
      if (std::fabs(a[r][col]) > std::fabs(a[piv][col])) piv = r;
    }
    if (std::fabs(a[piv][col]) < 1e-12) {
      a[col][col] += 1e-8;  // collinear conditioning set; regularize.
      piv = col;
    }
    std::swap(a[col], a[piv]);
    std::swap(inv[col], inv[piv]);
    const double d = a[col][col];
    for (size_t j = 0; j < m; ++j) {
      a[col][j] /= d;
      inv[col][j] /= d;
    }
    for (size_t r = 0; r < m; ++r) {
      if (r == col) continue;
      const double f = a[r][col];
      if (f == 0.0) continue;
      for (size_t j = 0; j < m; ++j) {
        a[r][j] -= f * a[col][j];
        inv[r][j] -= f * inv[col][j];
      }
    }
  }
  const double denom = std::sqrt(inv[0][0] * inv[1][1]);
  if (denom <= 0.0) return 0.0;
  double r = -inv[0][1] / denom;
  if (r > 0.999999) r = 0.999999;
  if (r < -0.999999) r = -0.999999;
  return r;
}

double FisherZTest::PValue(const std::string& x, const std::string& y,
                           const std::vector<std::string>& cond) const {
  const double r = PartialCorrelation(x, y, cond);
  const double df = static_cast<double>(n_) - cond.size() - 3.0;
  if (df <= 0) return 1.0;
  const double z = 0.5 * std::log((1.0 + r) / (1.0 - r)) * std::sqrt(df);
  return TwoSidedPValueZ(z);
}

bool FisherZTest::Independent(const std::string& x, const std::string& y,
                              const std::vector<std::string>& cond,
                              double alpha) const {
  return PValue(x, y, cond) > alpha;
}

}  // namespace causumx
