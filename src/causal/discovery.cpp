#include "causal/discovery.h"

#include "causal/fci.h"
#include "causal/lingam.h"
#include "causal/pc.h"

namespace causumx {

const char* DiscoveryAlgorithmName(DiscoveryAlgorithm a) {
  switch (a) {
    case DiscoveryAlgorithm::kPc:
      return "PC";
    case DiscoveryAlgorithm::kFci:
      return "FCI";
    case DiscoveryAlgorithm::kLingam:
      return "LiNGAM";
    case DiscoveryAlgorithm::kNoDag:
      return "No-DAG";
  }
  return "?";
}

CausalDag MakeNoDag(const Table& table, const std::string& outcome) {
  CausalDag dag;
  dag.AddNode(outcome);
  for (const auto& name : table.ColumnNames()) {
    if (name == outcome) continue;
    dag.AddEdge(name, outcome);
  }
  return dag;
}

CausalDag DiscoverDag(const Table& table, DiscoveryAlgorithm algorithm,
                      const std::string& outcome,
                      const DiscoveryOptions& options) {
  switch (algorithm) {
    case DiscoveryAlgorithm::kPc:
      return RunPc(table, options.alpha, options.max_cond_size,
                   options.max_rows)
          .dag;
    case DiscoveryAlgorithm::kFci:
      return RunFci(table, options.alpha, options.max_cond_size,
                    options.max_rows)
          .dag;
    case DiscoveryAlgorithm::kLingam:
      return RunLingam(table, options.lingam_prune_threshold,
                       options.max_rows)
          .dag;
    case DiscoveryAlgorithm::kNoDag:
      return MakeNoDag(table, outcome);
  }
  return MakeNoDag(table, outcome);
}

}  // namespace causumx
