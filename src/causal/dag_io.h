// Text serialization for causal DAGs.
//
// Domain experts hand the system their background knowledge as a graph
// (Section 3: "a causal DAG can be constructed by a domain expert");
// this module gives that a concrete interchange format:
//
//   # comments and blank lines ignored
//   Age -> Education
//   Education -> Salary, Role      # fan-out sugar
//   Hobby                          # isolated node
//
// plus import of the DOT subset our ToDot() emits.

#ifndef CAUSUMX_CAUSAL_DAG_IO_H_
#define CAUSUMX_CAUSAL_DAG_IO_H_

#include <iosfwd>
#include <string>

#include "causal/dag.h"

namespace causumx {

/// Parses the edge-list format above. Throws std::runtime_error with a
/// line number on malformed input or on edges that would create a cycle.
CausalDag ParseDagText(const std::string& text);

/// Reads a DAG file from disk (edge-list format; files whose first
/// non-blank line starts with "digraph" are parsed as DOT).
CausalDag ReadDagFile(const std::string& path);

/// Serializes to the edge-list format (round-trips through ParseDagText).
std::string DagToText(const CausalDag& dag);

/// Parses the DOT subset produced by CausalDag::ToDot (node declarations
/// `"A";` and edges `"A" -> "B";`).
CausalDag ParseDotText(const std::string& text);

}  // namespace causumx

#endif  // CAUSUMX_CAUSAL_DAG_IO_H_
