// Engine-bound effect-estimation context.
//
// Holds everything EstimateCate needs that is shareable across calls:
// the EvalEngine (interned predicate bitsets, cached numeric column
// views), the causal DAG, the estimator options, and a memo table
// mapping (treatment, outcome, subpopulation) to the finished
// EffectEstimate. The lattice walk of Algorithm 2 re-estimates the same
// triples many times — the incumbent's final re-estimate, every atom
// shared between the positive and negative walks, and duplicate
// children pruned across grouping patterns all become memo hits.
//
// Thread-safe for concurrent EstimateCate calls; contexts are shared by
// shared_ptr between EffectEstimator facades, exploration sessions, and
// baselines so they all populate one cache.

#ifndef CAUSUMX_CAUSAL_ESTIMATOR_CONTEXT_H_
#define CAUSUMX_CAUSAL_ESTIMATOR_CONTEXT_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <unordered_map>

#include "causal/dag.h"
#include "causal/estimator_types.h"
#include "dataset/pattern.h"
#include "engine/eval_engine.h"
#include "util/bitset.h"

namespace causumx {

/// Cumulative memoization counters of one context.
struct EstimatorCacheStats {
  uint64_t memo_hits = 0;
  uint64_t memo_misses = 0;
};

class EstimatorContext {
 public:
  /// Binds to a shared engine. The engine's cache_enabled flag also
  /// gates the CATE memo (bypass mode recomputes every estimate).
  EstimatorContext(std::shared_ptr<EvalEngine> engine, const CausalDag& dag,
                   EstimatorOptions options);

  EstimatorContext(const EstimatorContext&) = delete;
  EstimatorContext& operator=(const EstimatorContext&) = delete;

  /// Memoized CATE of `treatment` on `outcome` within `subpopulation`.
  EffectEstimate EstimateCate(const Pattern& treatment,
                              const std::string& outcome,
                              const Bitset& subpopulation);

  /// Backdoor adjustment set the estimator would use for this treatment.
  std::set<std::string> AdjustmentSet(const Pattern& treatment,
                                      const std::string& outcome) const;

  const Table& table() const { return engine_->table(); }
  const CausalDag& dag() const { return dag_; }
  const EstimatorOptions& options() const { return options_; }
  const std::shared_ptr<EvalEngine>& engine() const { return engine_; }

  EstimatorCacheStats Stats() const;

 private:
  struct MemoKey {
    uint64_t treatment_hash;
    uint64_t subpop_hash;
    uint64_t subpop_count;
    std::string outcome;

    bool operator==(const MemoKey& other) const {
      return treatment_hash == other.treatment_hash &&
             subpop_hash == other.subpop_hash &&
             subpop_count == other.subpop_count && outcome == other.outcome;
    }
  };
  struct MemoKeyHash {
    size_t operator()(const MemoKey& k) const {
      uint64_t h = k.treatment_hash * 0x9E3779B97F4A7C15ULL;
      h ^= k.subpop_hash + 0x9E3779B97F4A7C15ULL + (h << 6) + (h >> 2);
      h ^= k.subpop_count + (h << 6) + (h >> 2);
      h ^= std::hash<std::string>{}(k.outcome) + (h << 6) + (h >> 2);
      return static_cast<size_t>(h);
    }
  };

  /// The actual estimation (regression adjustment or IPW), uncached.
  EffectEstimate ComputeCate(const Pattern& treatment,
                             const std::string& outcome,
                             const Bitset& subpopulation);

  std::shared_ptr<EvalEngine> engine_;
  CausalDag dag_;  // owned copy (DAGs are tiny; avoids lifetime traps).
  EstimatorOptions options_;

  std::mutex memo_mu_;
  std::unordered_map<MemoKey, EffectEstimate, MemoKeyHash> memo_;
  std::atomic<uint64_t> n_hits_{0};
  std::atomic<uint64_t> n_misses_{0};
};

}  // namespace causumx

#endif  // CAUSUMX_CAUSAL_ESTIMATOR_CONTEXT_H_
