// Engine-bound effect-estimation context.
//
// Holds everything EstimateCate needs that is shareable across calls:
// the EvalEngine (interned predicate bitsets, cached numeric column
// views), the causal DAG, the estimator options, and a memo table
// mapping (treatment, outcome, subpopulation) to the finished
// EffectEstimate. The lattice walk of Algorithm 2 re-estimates the same
// triples many times — the incumbent's final re-estimate, every atom
// shared between the positive and negative walks, and duplicate
// children pruned across grouping patterns all become memo hits.
//
// Thread-safe for concurrent EstimateCate calls; contexts are shared by
// shared_ptr between EffectEstimator facades, exploration sessions, and
// baselines so they all populate one cache.

#ifndef CAUSUMX_CAUSAL_ESTIMATOR_CONTEXT_H_
#define CAUSUMX_CAUSAL_ESTIMATOR_CONTEXT_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <set>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "causal/dag.h"
#include "causal/estimator_types.h"
#include "dataset/pattern.h"
#include "engine/eval_engine.h"
#include "util/bitset.h"
#include "util/thread_annotations.h"

namespace causumx {

/// Cumulative memoization counters of one context. `memo_entries` /
/// `memo_bytes` are current (not cumulative) accounted sizes.
struct EstimatorCacheStats {
  uint64_t memo_hits = 0;
  uint64_t memo_misses = 0;
  uint64_t memo_evicted = 0;
  uint64_t memo_migrated = 0;  ///< entries carried across an append
  size_t memo_entries = 0;
  size_t memo_bytes = 0;
};

/// Minimum table rows before EstimateCate dispatches its per-shard /
/// per-chunk loops onto the engine pool; below it the same loops run
/// inline (identical results, no task round trips on the memo-miss hot
/// path of small tables).
inline constexpr size_t kParallelEstimateRowThreshold = 1u << 17;

class EstimatorContext {
 public:
  /// Binds to a shared engine. The engine's cache_enabled flag also
  /// gates the CATE memo (bypass mode recomputes every estimate).
  EstimatorContext(std::shared_ptr<EvalEngine> engine, const CausalDag& dag,
                   EstimatorOptions options);

  /// Streaming-append migration: binds to `engine` (which must be a
  /// delta-extension of `base`'s engine, so interned predicate ids are
  /// preserved) and carries the CATE memo over with `base`'s DAG and
  /// options. Each interned subpopulation bitset is zero-extended to the
  /// new row count; invalidation is thereby per-epoch and exact — a
  /// post-append query whose subpopulation gained no delta row produces
  /// the zero-extended bit pattern and hits the carried memo (the same
  /// rows yield the same estimate bit-for-bit), while a subpopulation
  /// that actually grew interns a fresh id and recomputes; its stale
  /// predecessor ages out through the LRU. Safe while `base` serves
  /// concurrent queries.
  EstimatorContext(std::shared_ptr<EvalEngine> engine,
                   const EstimatorContext& base);

  /// Windowed-retention migration: binds to `engine` (which must be a
  /// retraction of `base`'s engine by `dropped_prefix_rows`, so interned
  /// predicate ids are preserved) and carries over exactly the memo
  /// state that is still valid. A subpopulation with no set bit in the
  /// dropped prefix lost no rows: its bitset shifts down, keeps its
  /// dense id, and every memo entry over it stays bit-identical to a
  /// from-scratch estimate over the surviving rows (row values, gather
  /// order, and summation blocking are unchanged). A subpopulation that
  /// did lose rows is dropped together with its memo entries — exact
  /// invalidation, the grow-only delta logic in reverse. Byte accounting
  /// restarts from the carried (strictly smaller) state, so expiry
  /// shrinks resident bytes. Safe while `base` serves concurrent
  /// queries.
  EstimatorContext(std::shared_ptr<EvalEngine> engine,
                   const EstimatorContext& base, size_t dropped_prefix_rows);

  EstimatorContext(const EstimatorContext&) = delete;
  EstimatorContext& operator=(const EstimatorContext&) = delete;

  /// Memoized CATE of `treatment` on `outcome` within `subpopulation`.
  EffectEstimate EstimateCate(const Pattern& treatment,
                              const std::string& outcome,
                              const Bitset& subpopulation);

  /// Backdoor adjustment set the estimator would use for this treatment.
  std::set<std::string> AdjustmentSet(const Pattern& treatment,
                                      const std::string& outcome) const;

  const Table& table() const { return engine_->table(); }
  const CausalDag& dag() const { return dag_; }
  const EstimatorOptions& options() const { return options_; }
  const std::shared_ptr<EvalEngine>& engine() const { return engine_; }

  /// Accounted bytes of the CATE memo (the evictable cache).
  size_t CacheBytes() const;

  /// Evicts least-recently-used memo entries until at least
  /// `bytes_to_free` accounted bytes are released (or the memo is empty).
  /// Returns the bytes actually freed. Evicted estimates recompute on the
  /// next request, bit-identically.
  size_t EvictLru(size_t bytes_to_free);

  EstimatorCacheStats Stats() const;

  /// Serializes the CATE memo — the interned subpopulation bitsets and
  /// every memo entry in LRU order — for the storage layer's warm-state
  /// snapshots. Safe to call concurrently with EstimateCate.
  std::string ExportMemoState() const;

  /// Seeds a freshly constructed context (empty memo) with state
  /// exported from a context over an engine with identical table
  /// content and identical restored predicate ids (restore the engine
  /// cache first — memo keys reference its dense ids). Returns the
  /// number of entries restored. Throws StorageError: kStale when the
  /// universe or id space does not match, kCorrupt when the payload is
  /// malformed; the context must be discarded after a throw.
  size_t ImportMemoState(const std::string& bytes);

 private:
  // Exact memo key: the treatment as its sorted engine-interned predicate
  // ids (interning encodes numeric constants exactly, unlike
  // Value::ToString's 6-digit rounding) and the subpopulation as a dense
  // id assigned by exact bit-content comparison. Hash-only keys would let
  // a 64-bit collision silently return the wrong cached estimate — the
  // same bug class the top-k treated-set dedup guards against — and a
  // long-lived service memo sees enough entries to care.
  struct MemoKey {
    std::vector<PredicateId> treatment;  // sorted, interned: exact
    std::string outcome;
    uint32_t subpop_id;

    bool operator==(const MemoKey& other) const {
      return subpop_id == other.subpop_id && treatment == other.treatment &&
             outcome == other.outcome;
    }
  };
  struct MemoKeyHash {
    size_t operator()(const MemoKey& k) const {
      uint64_t h = 0xcbf29ce484222325ULL;
      for (PredicateId id : k.treatment) {
        h = (h ^ id) * 0x100000001B3ULL;
      }
      h = (h ^ k.subpop_id) * 0x100000001B3ULL;
      h ^= std::hash<std::string>{}(k.outcome) + (h << 6) + (h >> 2);
      return static_cast<size_t>(h);
    }
  };

  struct MemoEntry {
    EffectEstimate est;
    std::list<MemoKey>::iterator lru_it;  // position in lru_
    size_t bytes = 0;
  };

  static size_t EntryBytes(const MemoKey& key);

  /// Accounted bytes of one subpop intern entry over a `bitset_size`-bit
  /// universe (used by both InternSubpopLocked and the append-migration
  /// ctor; EvictLru credits subpop_bytes_ wholesale, so the two must
  /// agree).
  static size_t SubpopEntryBytes(size_t bitset_size);

  /// Dense id of a subpopulation by exact bit content (a copy of each
  /// distinct bitset is kept; distinct subpopulations are few — one per
  /// grouping pattern). `hash` is the bitset's precomputed Hash() so the
  /// O(rows) hashing happens outside the lock.
  uint32_t InternSubpopLocked(uint64_t hash, const Bitset& subpopulation)
      CAUSUMX_REQUIRES(memo_mu_);

  /// The actual estimation (regression adjustment or IPW), uncached.
  EffectEstimate ComputeCate(const Pattern& treatment,
                             const std::string& outcome,
                             const Bitset& subpopulation);

  std::shared_ptr<EvalEngine> engine_;
  CausalDag dag_;  // owned copy (DAGs are tiny; avoids lifetime traps).
  EstimatorOptions options_;

  mutable util::Mutex memo_mu_;
  std::unordered_map<MemoKey, MemoEntry, MemoKeyHash> memo_
      CAUSUMX_GUARDED_BY(memo_mu_);
  /// Front = most recently used.
  std::list<MemoKey> lru_ CAUSUMX_GUARDED_BY(memo_mu_);
  size_t memo_bytes_ CAUSUMX_GUARDED_BY(memo_mu_) = 0;
  /// Subpopulation intern table: Bitset::Hash bucket -> (bits, id), with
  /// exact comparison on bucket hits. Its retained bitset copies are
  /// byte-accounted (subpop_bytes_) so the memory budget sees them, and
  /// the table is dropped wholesale whenever eviction empties the memo
  /// (no memo entry references an id then).
  std::unordered_map<uint64_t, std::vector<std::pair<Bitset, uint32_t>>>
      subpop_ids_ CAUSUMX_GUARDED_BY(memo_mu_);
  uint32_t next_subpop_id_ CAUSUMX_GUARDED_BY(memo_mu_) = 0;
  size_t subpop_bytes_ CAUSUMX_GUARDED_BY(memo_mu_) = 0;
  std::atomic<uint64_t> n_hits_{0};
  std::atomic<uint64_t> n_misses_{0};
  std::atomic<uint64_t> n_evicted_{0};
  std::atomic<uint64_t> n_migrated_{0};
};

}  // namespace causumx

#endif  // CAUSUMX_CAUSAL_ESTIMATOR_CONTEXT_H_
