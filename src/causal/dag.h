// Causal DAG over attribute names (Pearl's graphical causal model,
// Section 3 of the paper). Nodes are the observed endogenous variables;
// exogenous noise is implicit.

#ifndef CAUSUMX_CAUSAL_DAG_H_
#define CAUSUMX_CAUSAL_DAG_H_

#include <set>
#include <string>
#include <unordered_map>
#include <vector>

namespace causumx {

/// Directed acyclic graph over named variables.
///
/// Supports the queries the framework needs: parents (backdoor adjustment
/// sets), ancestors/descendants (attribute pruning — optimization (a) in
/// Section 5.2), d-separation (PC tests and unit tests), and DOT export.
class CausalDag {
 public:
  CausalDag() = default;

  /// Adds a node; no-op if present.
  void AddNode(const std::string& name);

  /// Adds edge from -> to, creating missing nodes. Throws
  /// std::invalid_argument if the edge would create a cycle.
  void AddEdge(const std::string& from, const std::string& to);

  /// Removes an edge if present.
  void RemoveEdge(const std::string& from, const std::string& to);

  bool HasNode(const std::string& name) const;
  bool HasEdge(const std::string& from, const std::string& to) const;

  size_t NumNodes() const { return nodes_.size(); }
  size_t NumEdges() const;

  /// Edge density: |E| / (|V| * (|V|-1)) — the measure in Table 4.
  double Density() const;

  /// Node names in insertion order.
  const std::vector<std::string>& nodes() const { return nodes_; }

  std::vector<std::string> Parents(const std::string& node) const;
  std::vector<std::string> Children(const std::string& node) const;

  /// All ancestors (excluding the node itself).
  std::set<std::string> Ancestors(const std::string& node) const;

  /// All descendants (excluding the node itself).
  std::set<std::string> Descendants(const std::string& node) const;

  /// True iff `a` is an ancestor of `b` (possibly indirectly).
  bool IsAncestor(const std::string& a, const std::string& b) const;

  /// Topological order (throws if the graph was corrupted into a cycle).
  std::vector<std::string> TopologicalOrder() const;

  /// d-separation: are x and y d-separated given conditioning set z?
  /// Implemented via the reachability ("Bayes ball") algorithm.
  bool DSeparated(const std::string& x, const std::string& y,
                  const std::set<std::string>& z) const;

  /// Backdoor adjustment set for estimating the effect of the (possibly
  /// multi-attribute) treatment on `outcome`: the union of the treatment
  /// attributes' parents, minus treatments and outcome. Pa(T) always
  /// satisfies the backdoor criterion, matching DoWhy's default estimand.
  std::set<std::string> BackdoorAdjustmentSet(
      const std::vector<std::string>& treatments,
      const std::string& outcome) const;

  /// Nodes with a directed path to `outcome` (the causally relevant
  /// treatment attributes; everything else is pruned per optimization (a)).
  std::set<std::string> CausalAncestorsOf(const std::string& outcome) const;

  /// Graphviz DOT text.
  std::string ToDot(const std::string& graph_name = "G") const;

  /// Structural-difference count vs. another DAG over the same nodes:
  /// edges present in exactly one of the two (ignores orientation when
  /// `ignore_direction`).
  size_t EdgeDifference(const CausalDag& other,
                        bool ignore_direction = false) const;

 private:
  bool WouldCreateCycle(const std::string& from, const std::string& to) const;

  std::vector<std::string> nodes_;
  std::unordered_map<std::string, size_t> node_index_;
  // adjacency: children_[u] = set of v with edge u->v; parents_ mirrors it.
  std::unordered_map<std::string, std::set<std::string>> children_;
  std::unordered_map<std::string, std::set<std::string>> parents_;
};

}  // namespace causumx

#endif  // CAUSUMX_CAUSAL_DAG_H_
