// CRC32 (IEEE 802.3 polynomial, reflected) for page and segment
// headers in the on-disk formats. Table-driven software implementation:
// deterministic across platforms and fast enough for snapshot-sized
// payloads (~500 MB/s), which is far from the bottleneck next to fsync.

#ifndef CAUSUMX_STORAGE_CRC32_H_
#define CAUSUMX_STORAGE_CRC32_H_

#include <cstddef>
#include <cstdint>
#include <string>

namespace causumx {

/// CRC32 of `len` bytes at `data`, continuing from `seed` (pass the
/// previous return value to checksum a payload in chunks; 0 to start).
uint32_t Crc32(const void* data, size_t len, uint32_t seed = 0);

/// Convenience overload over a byte string.
inline uint32_t Crc32(const std::string& bytes, uint32_t seed = 0) {
  return Crc32(bytes.data(), bytes.size(), seed);
}

}  // namespace causumx

#endif  // CAUSUMX_STORAGE_CRC32_H_
