// Snapshot container: the common on-disk envelope for both the columnar
// table format and the warm-state snapshots.
//
// A file is a CRC-checked header followed by named sections. Section
// payloads are chunked into fixed-size pages, each with its own
// CRC32-checksummed page header, so truncation and bit-flips anywhere
// in the file are detected at read time — a damaged snapshot is
// reported as StorageError(kCorrupt), never returned as data.
//
// Layout (all integers little-endian):
//
//   u32  kFileMagic                u32  kSectionMagic        (per section)
//   u32  header_len                u32  header_len
//   u32  crc32(header block)       u32  crc32(header block)
//   header block:                  header block:
//     kind string                    name string
//     u32 format version             u64 payload length
//     key string                   pages (<= kPageSize bytes each):
//     section count                  u32 kPageMagic
//                                    u32 data_len
//                                    u32 crc32(data)
//                                    data
//
// The `kind` string separates table files from warm-state snapshots;
// the format version gates skew (kStale); the free-form `key` carries
// the (content hash, version, DAG hash, options) fingerprint the
// service uses to reject snapshots of different data.

#ifndef CAUSUMX_STORAGE_SNAPSHOT_H_
#define CAUSUMX_STORAGE_SNAPSHOT_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace causumx {

/// Payload bytes per page. Small enough that a bit-flip is localized to
/// one page's checksum, large enough that header overhead is ~0.02%.
inline constexpr size_t kStoragePageSize = 64 * 1024;

/// Builds a snapshot container in memory and writes it durably.
class SnapshotWriter {
 public:
  /// `kind` tags the file type (e.g. "causumx-table"), `version` the
  /// format revision, `key` the producer's staleness fingerprint.
  SnapshotWriter(std::string kind, uint32_t version, std::string key);

  /// Appends a named section. Names must be unique within a file;
  /// sections are written (and enumerated on read) in insertion order.
  void AddSection(const std::string& name, std::string payload);

  /// Serializes the whole container (header + paged sections).
  std::string Serialize() const;

  /// Serializes and writes via WriteFileDurable (write-to-temp + fsync
  /// + atomic rename). Throws StorageError(kIo) on failure.
  void WriteFile(const std::string& path) const;

 private:
  std::string kind_;
  uint32_t version_;
  std::string key_;
  std::vector<std::pair<std::string, std::string>> sections_;
};

/// Parses and validates a snapshot container. All CRCs, magics, and
/// lengths are verified up front; a reader that constructs successfully
/// holds fully-validated section payloads.
class SnapshotReader {
 public:
  /// Parses `bytes`. Throws StorageError(kCorrupt) for any structural
  /// damage (bad magic/CRC/length), StorageError(kStale) when the file
  /// is a valid container of the wrong kind or format version.
  static SnapshotReader Parse(const std::string& bytes,
                              const std::string& expected_kind,
                              uint32_t expected_version);

  /// ReadFileBytes + Parse. Throws StorageError(kIo) on read failure.
  static SnapshotReader ReadFile(const std::string& path,
                                 const std::string& expected_kind,
                                 uint32_t expected_version);

  /// The producer's staleness fingerprint, verbatim.
  const std::string& key() const { return key_; }

  /// True if a section with this name is present.
  bool HasSection(const std::string& name) const;

  /// The payload of section `name`; throws StorageError(kCorrupt) if
  /// absent (a missing section means a truncated or foreign file).
  const std::string& Section(const std::string& name) const;

  /// Section names in file order.
  const std::vector<std::string>& SectionNames() const { return order_; }

 private:
  SnapshotReader() = default;

  std::string key_;
  std::vector<std::string> order_;
  std::map<std::string, std::string> sections_;
};

}  // namespace causumx

#endif  // CAUSUMX_STORAGE_SNAPSHOT_H_
