#include "storage/crc32.h"

#include <array>

namespace causumx {
namespace {

// Reflected CRC32 (polynomial 0xEDB88320), the same parameterization as
// zlib's crc32() so checked-in corpus files can be cross-verified with
// standard tools.
std::array<uint32_t, 256> BuildTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

const std::array<uint32_t, 256>& Table() {
  static const std::array<uint32_t, 256> kTable = BuildTable();
  return kTable;
}

}  // namespace

uint32_t Crc32(const void* data, size_t len, uint32_t seed) {
  const auto& table = Table();
  const auto* p = static_cast<const unsigned char*>(data);
  uint32_t c = seed ^ 0xFFFFFFFFu;
  for (size_t i = 0; i < len; ++i) {
    c = table[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

}  // namespace causumx
