// Typed errors for the persistence layer and for stream-state failures
// in readers/writers repo-wide. Deriving from std::runtime_error keeps
// the existing catch sites (CSV fuzzers, batch error lines, REST 4xx
// mapping) working unchanged.

#ifndef CAUSUMX_STORAGE_STORAGE_ERROR_H_
#define CAUSUMX_STORAGE_STORAGE_ERROR_H_

#include <stdexcept>
#include <string>

namespace causumx {

/// What went wrong while reading or writing durable state.
enum class StorageErrorKind {
  /// The underlying stream or file failed (badbit, short read/write,
  /// failed flush/fsync/rename) — distinct from a clean EOF.
  kIo,
  /// The bytes were read back fine but do not decode: bad magic, CRC
  /// mismatch, truncated section, impossible length.
  kCorrupt,
  /// The file decodes but was produced for different content — format
  /// version skew or a snapshot key that does not match the live table.
  kStale,
};

/// Error thrown by the storage layer and by the CSV/batch readers when a
/// stream fails mid-read (as opposed to reaching EOF). `kind()` lets
/// callers distinguish I/O failures from corruption from staleness; the
/// service uses that to decide "retry" vs "discard snapshot, rebuild
/// cold".
class StorageError : public std::runtime_error {
 public:
  StorageError(StorageErrorKind kind, const std::string& message)
      : std::runtime_error(message), kind_(kind) {}

  /// The failure class (I/O vs corruption vs staleness).
  StorageErrorKind kind() const { return kind_; }

 private:
  StorageErrorKind kind_;
};

}  // namespace causumx

#endif  // CAUSUMX_STORAGE_STORAGE_ERROR_H_
