// Little-endian byte codec for the on-disk formats.
//
// ByteWriter appends fixed-width integers, varints, and length-prefixed
// blobs to a std::string. ByteReader is the checked inverse: every Get*
// validates the remaining length first and throws StorageError(kCorrupt)
// on truncation, so a parser built on it can never read past the end of
// a damaged file — the property fuzz_snapshot hammers on.
//
// All encodings are explicitly little-endian byte-at-a-time, so files
// are portable across hosts and independent of the compiler's layout.

#ifndef CAUSUMX_STORAGE_BYTES_H_
#define CAUSUMX_STORAGE_BYTES_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>

#include "storage/storage_error.h"

namespace causumx {

/// Appends little-endian scalars / varints / length-prefixed blobs to an
/// owned byte string. The buffer is taken with `TakeBytes()`.
class ByteWriter {
 public:
  /// Single byte.
  void PutU8(uint8_t v) { buf_.push_back(static_cast<char>(v)); }

  /// Fixed-width little-endian u32.
  void PutU32(uint32_t v) {
    for (int i = 0; i < 4; ++i) buf_.push_back(static_cast<char>((v >> (8 * i)) & 0xFFu));
  }

  /// Fixed-width little-endian u64.
  void PutU64(uint64_t v) {
    for (int i = 0; i < 8; ++i) buf_.push_back(static_cast<char>((v >> (8 * i)) & 0xFFu));
  }

  /// LEB128 varint (unsigned).
  void PutVarint(uint64_t v) {
    while (v >= 0x80u) {
      buf_.push_back(static_cast<char>((v & 0x7Fu) | 0x80u));
      v >>= 7;
    }
    buf_.push_back(static_cast<char>(v));
  }

  /// Zigzag-mapped signed varint (small magnitudes stay small).
  void PutVarintSigned(int64_t v) {
    PutVarint((static_cast<uint64_t>(v) << 1) ^
              static_cast<uint64_t>(v >> 63));
  }

  /// Double by IEEE-754 bit pattern — exact round trip, including NaN
  /// payloads, so restored caches stay bit-identical.
  void PutDouble(double v) {
    uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    PutU64(bits);
  }

  /// Varint length prefix + raw bytes.
  void PutString(const std::string& s) {
    PutVarint(s.size());
    buf_.append(s);
  }

  /// Raw bytes, no prefix (caller owns framing).
  void PutRaw(const void* data, size_t len) {
    buf_.append(static_cast<const char*>(data), len);
  }

  /// Bytes written so far.
  size_t size() const { return buf_.size(); }

  /// Moves the accumulated buffer out; the writer is empty afterwards.
  std::string TakeBytes() { return std::move(buf_); }

 private:
  std::string buf_;
};

/// Checked reader over a borrowed byte span. Throws
/// StorageError(kCorrupt) whenever a read would run past the end.
class ByteReader {
 public:
  ByteReader(const void* data, size_t len)
      : p_(static_cast<const unsigned char*>(data)), end_(p_ + len) {}
  explicit ByteReader(const std::string& bytes)
      : ByteReader(bytes.data(), bytes.size()) {}

  /// Single byte.
  uint8_t GetU8() {
    Need(1, "u8");
    return *p_++;
  }

  /// Fixed-width little-endian u32.
  uint32_t GetU32() {
    Need(4, "u32");
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(p_[i]) << (8 * i);
    p_ += 4;
    return v;
  }

  /// Fixed-width little-endian u64.
  uint64_t GetU64() {
    Need(8, "u64");
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(p_[i]) << (8 * i);
    p_ += 8;
    return v;
  }

  /// LEB128 varint; rejects encodings longer than 10 bytes.
  uint64_t GetVarint() {
    uint64_t v = 0;
    for (int shift = 0; shift < 64; shift += 7) {
      Need(1, "varint");
      unsigned char b = *p_++;
      v |= static_cast<uint64_t>(b & 0x7Fu) << shift;
      if ((b & 0x80u) == 0) return v;
    }
    throw StorageError(StorageErrorKind::kCorrupt,
                       "storage: varint longer than 10 bytes");
  }

  /// Inverse of ByteWriter::PutVarintSigned.
  int64_t GetVarintSigned() {
    uint64_t z = GetVarint();
    return static_cast<int64_t>((z >> 1) ^ (~(z & 1) + 1));
  }

  /// Inverse of ByteWriter::PutDouble (bit-exact).
  double GetDouble() {
    uint64_t bits = GetU64();
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }

  /// Varint length prefix + raw bytes.
  std::string GetString() {
    uint64_t n = GetVarint();
    Need(n, "string body");
    std::string s(reinterpret_cast<const char*>(p_), n);
    p_ += n;
    return s;
  }

  /// Returns a borrowed pointer to `len` raw bytes and advances.
  const unsigned char* GetRaw(size_t len, const char* what = "raw bytes") {
    Need(len, what);
    const unsigned char* r = p_;
    p_ += len;
    return r;
  }

  /// Bytes left unread.
  size_t remaining() const { return static_cast<size_t>(end_ - p_); }

  /// True when every byte has been consumed.
  bool AtEnd() const { return p_ == end_; }

 private:
  void Need(uint64_t n, const char* what) const {
    if (n > remaining()) {
      throw StorageError(StorageErrorKind::kCorrupt,
                         std::string("storage: truncated input reading ") +
                             what);
    }
  }

  const unsigned char* p_;
  const unsigned char* end_;
};

}  // namespace causumx

#endif  // CAUSUMX_STORAGE_BYTES_H_
