// Durable file primitives for the storage layer.
//
// WriteFileDurable implements the crash-safety protocol every snapshot
// relies on: write to `<path>.tmp`, fsync the file, atomically rename
// over `<path>`, then fsync the containing directory. A crash at any
// point leaves either the old durable file or the new one — never a
// torn mix — and a stray `.tmp` from a killed writer is ignored by
// readers and overwritten by the next write.
//
// ReadFileBytes is the checked inverse: it distinguishes end-of-file
// from a mid-read stream failure and throws StorageError(kIo) on the
// latter, so a failing disk can never masquerade as a short-but-valid
// file.

#ifndef CAUSUMX_STORAGE_FILE_IO_H_
#define CAUSUMX_STORAGE_FILE_IO_H_

#include <string>
#include <vector>

namespace causumx {

/// Atomically and durably replaces `path` with `bytes` (write-to-temp +
/// fsync + rename + directory fsync). Throws StorageError(kIo) on any
/// failure; on failure the previous `path` contents are untouched.
void WriteFileDurable(const std::string& path, const std::string& bytes);

/// Reads the whole file into a byte string. Throws StorageError(kIo) if
/// the file cannot be opened or the stream fails mid-read (bad(), short
/// read) — a clean EOF is the only way to return.
std::string ReadFileBytes(const std::string& path);

/// True if `path` exists and is a regular file.
bool FileExists(const std::string& path);

/// Escapes a table name into a filesystem-safe file stem: bytes outside
/// [A-Za-z0-9._-] become %XX. Injective, so distinct table names never
/// collide on disk.
std::string EncodeFileStem(const std::string& name);

/// Inverse of EncodeFileStem. A malformed escape (truncated or non-hex
/// %XX) throws StorageError(kCorrupt) — stems only come from our own
/// writer, so damage means the directory was tampered with.
std::string DecodeFileStem(const std::string& stem);

/// Names (not paths) of the regular files directly inside `dir`,
/// sorted. A missing or unreadable directory yields an empty list —
/// restore-time scanning treats both as "nothing saved yet".
std::vector<std::string> ListDirFiles(const std::string& dir);

}  // namespace causumx

#endif  // CAUSUMX_STORAGE_FILE_IO_H_
