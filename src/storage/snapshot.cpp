#include "storage/snapshot.h"

#include "storage/bytes.h"
#include "storage/crc32.h"
#include "storage/file_io.h"
#include "storage/storage_error.h"
#include "util/string_utils.h"

namespace causumx {
namespace {

constexpr uint32_t kFileMagic = 0x53585343u;     // "CSXS" little-endian
constexpr uint32_t kSectionMagic = 0x54434553u;  // "SECT"
constexpr uint32_t kPageMagic = 0x45474150u;     // "PAGE"

// Caps that bound allocation before any payload byte is trusted. A
// snapshot cannot legitimately carry more sections than a few per
// context times a few thousand contexts.
constexpr uint64_t kMaxSections = 1u << 20;
constexpr uint64_t kMaxHeaderLen = 1u << 20;

// Emits `block` framed as: magic, length, CRC, bytes.
void PutFramedBlock(uint32_t magic, const std::string& block,
                    std::string* out) {
  ByteWriter frame;
  frame.PutU32(magic);
  frame.PutU32(static_cast<uint32_t>(block.size()));
  frame.PutU32(Crc32(block));
  out->append(frame.TakeBytes());
  out->append(block);
}

// Reads a framed block written by PutFramedBlock, verifying magic,
// length bound, and CRC.
std::string GetFramedBlock(ByteReader* r, uint32_t magic, const char* what) {
  if (r->GetU32() != magic) {
    throw StorageError(StorageErrorKind::kCorrupt,
                       StrFormat("storage: bad %s magic", what));
  }
  uint32_t len = r->GetU32();
  if (len > kMaxHeaderLen) {
    throw StorageError(StorageErrorKind::kCorrupt,
                       StrFormat("storage: %s header too large", what));
  }
  uint32_t crc = r->GetU32();
  const unsigned char* p = r->GetRaw(len, what);
  if (Crc32(p, len) != crc) {
    throw StorageError(StorageErrorKind::kCorrupt,
                       StrFormat("storage: %s header checksum mismatch", what));
  }
  return std::string(reinterpret_cast<const char*>(p), len);
}

}  // namespace

SnapshotWriter::SnapshotWriter(std::string kind, uint32_t version,
                               std::string key)
    : kind_(std::move(kind)), version_(version), key_(std::move(key)) {}

void SnapshotWriter::AddSection(const std::string& name, std::string payload) {
  for (const auto& section : sections_) {
    if (section.first == name) {
      throw StorageError(StorageErrorKind::kCorrupt,
                         "storage: duplicate section '" + name + "'");
    }
  }
  sections_.emplace_back(name, std::move(payload));
}

std::string SnapshotWriter::Serialize() const {
  std::string out;

  ByteWriter header;
  header.PutString(kind_);
  header.PutU32(version_);
  header.PutString(key_);
  header.PutVarint(sections_.size());
  PutFramedBlock(kFileMagic, header.TakeBytes(), &out);

  for (const auto& [name, payload] : sections_) {
    ByteWriter sect;
    sect.PutString(name);
    sect.PutU64(payload.size());
    PutFramedBlock(kSectionMagic, sect.TakeBytes(), &out);

    size_t off = 0;
    // A zero-length payload still writes one empty page so the reader
    // sees uniform framing.
    do {
      size_t n = std::min(kStoragePageSize, payload.size() - off);
      ByteWriter page;
      page.PutU32(kPageMagic);
      page.PutU32(static_cast<uint32_t>(n));
      page.PutU32(Crc32(payload.data() + off, n));
      out.append(page.TakeBytes());
      out.append(payload, off, n);
      off += n;
    } while (off < payload.size());
  }
  return out;
}

void SnapshotWriter::WriteFile(const std::string& path) const {
  WriteFileDurable(path, Serialize());
}

SnapshotReader SnapshotReader::Parse(const std::string& bytes,
                                     const std::string& expected_kind,
                                     uint32_t expected_version) {
  ByteReader r(bytes);

  const std::string file_header = GetFramedBlock(&r, kFileMagic, "file");
  std::string kind;
  uint32_t version = 0;
  uint64_t num_sections = 0;
  SnapshotReader out;
  {
    ByteReader h(file_header);
    kind = h.GetString();
    version = h.GetU32();
    out.key_ = h.GetString();
    num_sections = h.GetVarint();
    if (!h.AtEnd()) {
      throw StorageError(StorageErrorKind::kCorrupt,
                         "storage: trailing bytes in file header");
    }
  }
  if (kind != expected_kind) {
    throw StorageError(StorageErrorKind::kStale,
                       StrFormat("storage: file kind '%s', expected '%s'",
                                 kind.c_str(), expected_kind.c_str()));
  }
  if (version != expected_version) {
    throw StorageError(
        StorageErrorKind::kStale,
        StrFormat("storage: format version %u, expected %u", version,
                  expected_version));
  }
  if (num_sections > kMaxSections) {
    throw StorageError(StorageErrorKind::kCorrupt,
                       "storage: implausible section count");
  }

  for (uint64_t i = 0; i < num_sections; ++i) {
    const std::string sect_header = GetFramedBlock(&r, kSectionMagic, "section");
    std::string name;
    uint64_t payload_len = 0;
    {
      ByteReader h(sect_header);
      name = h.GetString();
      payload_len = h.GetU64();
      if (!h.AtEnd()) {
        throw StorageError(StorageErrorKind::kCorrupt,
                           "storage: trailing bytes in section header");
      }
    }
    if (payload_len > bytes.size()) {
      throw StorageError(StorageErrorKind::kCorrupt,
                         "storage: section length exceeds file size");
    }

    std::string payload;
    payload.reserve(payload_len);
    // Mirror the writer: a zero-length payload still carries one page.
    do {
      if (r.GetU32() != kPageMagic) {
        throw StorageError(StorageErrorKind::kCorrupt,
                           "storage: bad page magic");
      }
      uint32_t data_len = r.GetU32();
      if (data_len > kStoragePageSize ||
          data_len > payload_len - payload.size()) {
        throw StorageError(StorageErrorKind::kCorrupt,
                           "storage: page length out of range");
      }
      uint32_t crc = r.GetU32();
      const unsigned char* data = r.GetRaw(data_len, "page data");
      if (Crc32(data, data_len) != crc) {
        throw StorageError(StorageErrorKind::kCorrupt,
                           "storage: page checksum mismatch");
      }
      payload.append(reinterpret_cast<const char*>(data), data_len);
      // Every non-final page must be full, or the lengths cannot add up
      // to the advertised payload size.
      if (data_len < kStoragePageSize && payload.size() < payload_len) {
        throw StorageError(StorageErrorKind::kCorrupt,
                           "storage: short page before end of section");
      }
    } while (payload.size() < payload_len);

    if (out.sections_.count(name) != 0) {
      throw StorageError(StorageErrorKind::kCorrupt,
                         "storage: duplicate section '" + name + "'");
    }
    out.order_.push_back(name);
    out.sections_.emplace(name, std::move(payload));
  }

  if (!r.AtEnd()) {
    throw StorageError(StorageErrorKind::kCorrupt,
                       "storage: trailing bytes after last section");
  }
  return out;
}

const std::string& SnapshotReader::Section(const std::string& name) const {
  auto it = sections_.find(name);
  if (it == sections_.end()) {
    throw StorageError(StorageErrorKind::kCorrupt,
                       "storage: missing section '" + name + "'");
  }
  return it->second;
}

bool SnapshotReader::HasSection(const std::string& name) const {
  return sections_.count(name) != 0;
}

SnapshotReader SnapshotReader::ReadFile(const std::string& path,
                                        const std::string& expected_kind,
                                        uint32_t expected_version) {
  return Parse(ReadFileBytes(path), expected_kind, expected_version);
}

}  // namespace causumx
