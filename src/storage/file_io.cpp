#include "storage/file_io.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <fstream>

#include "storage/storage_error.h"
#include "util/string_utils.h"

namespace causumx {
namespace {

[[noreturn]] void ThrowIo(const std::string& op, const std::string& path,
                          int err) {
  throw StorageError(StorageErrorKind::kIo,
                     StrFormat("storage: %s failed for '%s': %s", op.c_str(),
                               path.c_str(), std::strerror(err)));
}

// Directory part of `path` ("" -> ".").
std::string DirName(const std::string& path) {
  size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

void FsyncDir(const std::string& dir) {
  int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) ThrowIo("open directory", dir, errno);
  if (::fsync(fd) != 0) {
    int err = errno;
    ::close(fd);
    ThrowIo("fsync directory", dir, err);
  }
  ::close(fd);
}

}  // namespace

void WriteFileDurable(const std::string& path, const std::string& bytes) {
  const std::string tmp = path + ".tmp";
  int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) ThrowIo("open", tmp, errno);

  size_t off = 0;
  while (off < bytes.size()) {
    ssize_t n = ::write(fd, bytes.data() + off, bytes.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      int err = errno;
      ::close(fd);
      ::unlink(tmp.c_str());
      ThrowIo("write", tmp, err);
    }
    off += static_cast<size_t>(n);
  }

  if (::fsync(fd) != 0) {
    int err = errno;
    ::close(fd);
    ::unlink(tmp.c_str());
    ThrowIo("fsync", tmp, err);
  }
  if (::close(fd) != 0) {
    int err = errno;
    ::unlink(tmp.c_str());
    ThrowIo("close", tmp, err);
  }

  // The previous durable file is superseded only here, after the new
  // bytes are fully on disk.
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    int err = errno;
    ::unlink(tmp.c_str());
    ThrowIo("rename", tmp, err);
  }
  FsyncDir(DirName(path));
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) {
    throw StorageError(StorageErrorKind::kIo,
                       "storage: cannot open '" + path + "' for reading");
  }
  std::string bytes;
  char buf[1 << 16];
  while (in.read(buf, sizeof(buf)) || in.gcount() > 0) {
    bytes.append(buf, static_cast<size_t>(in.gcount()));
  }
  // eof() alone is the clean exit; bad() means the stream failed
  // mid-read and the bytes gathered so far cannot be trusted.
  if (in.bad()) {
    throw StorageError(StorageErrorKind::kIo,
                       "storage: stream failed mid-read on '" + path + "'");
  }
  return bytes;
}

bool FileExists(const std::string& path) {
  struct stat st{};
  return ::stat(path.c_str(), &st) == 0 && S_ISREG(st.st_mode);
}

std::string EncodeFileStem(const std::string& name) {
  static const char* kHex = "0123456789ABCDEF";
  std::string out;
  out.reserve(name.size());
  for (unsigned char c : name) {
    bool safe = (c >= 'A' && c <= 'Z') || (c >= 'a' && c <= 'z') ||
                (c >= '0' && c <= '9') || c == '.' || c == '_' || c == '-';
    if (safe) {
      out.push_back(static_cast<char>(c));
    } else {
      out.push_back('%');
      out.push_back(kHex[c >> 4]);
      out.push_back(kHex[c & 0xF]);
    }
  }
  return out;
}

std::string DecodeFileStem(const std::string& stem) {
  auto hex = [&](char c) -> int {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'A' && c <= 'F') return c - 'A' + 10;
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    return -1;
  };
  std::string out;
  out.reserve(stem.size());
  for (size_t i = 0; i < stem.size(); ++i) {
    if (stem[i] != '%') {
      out.push_back(stem[i]);
      continue;
    }
    if (i + 2 >= stem.size() || hex(stem[i + 1]) < 0 || hex(stem[i + 2]) < 0) {
      throw StorageError(StorageErrorKind::kCorrupt,
                         "storage: malformed %XX escape in file stem '" +
                             stem + "'");
    }
    out.push_back(
        static_cast<char>((hex(stem[i + 1]) << 4) | hex(stem[i + 2])));
    i += 2;
  }
  return out;
}

std::vector<std::string> ListDirFiles(const std::string& dir) {
  std::vector<std::string> names;
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return names;
  while (struct dirent* ent = ::readdir(d)) {
    const std::string name = ent->d_name;
    if (name == "." || name == "..") continue;
    if (FileExists(dir + "/" + name)) names.push_back(name);
  }
  ::closedir(d);
  std::sort(names.begin(), names.end());
  return names;
}

}  // namespace causumx
