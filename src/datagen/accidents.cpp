#include "datagen/accidents.h"

#include <array>

#include "util/string_utils.h"

namespace causumx {

namespace {

struct RegionInfo {
  const char* name;
  std::array<const char*, 3> states;
  double cold_bias;   // shifts temperature down
  double rain_bias;   // P(rain-ish weather)
  double snow_bias;   // P(snow | cold)
};

constexpr std::array<RegionInfo, 4> kRegions = {{
    {"Northeast", {"NY", "MA", "PA"}, 8.0, 0.30, 0.35},
    {"Midwest", {"IL", "MI", "OH"}, 12.0, 0.25, 0.55},
    {"South", {"TX", "FL", "GA"}, -8.0, 0.40, 0.03},
    {"West", {"CA", "AZ", "WA"}, -2.0, 0.20, 0.10},
}};

constexpr const char* kWeather[] = {"Clear", "Cloudy", "Overcast", "Rain",
                                    "Snow", "Fog"};

}  // namespace

GeneratedDataset MakeAccidentsDataset(const AccidentsOptions& opt) {
  GeneratedDataset ds;
  ds.name = "Accidents";
  Rng rng(opt.seed);

  // Cities are assigned to regions round-robin with region-dependent
  // sampling weights so group sizes vary like real city populations.
  struct City {
    std::string name;
    size_t region;
    const char* state;
    double weight;
  };
  std::vector<City> cities;
  cities.reserve(opt.num_cities);
  for (size_t c = 0; c < opt.num_cities; ++c) {
    const size_t region = c % kRegions.size();
    City city;
    city.name = StrFormat("City_%s_%03zu", kRegions[region].name, c);
    city.region = region;
    city.state = kRegions[region].states[(c / kRegions.size()) % 3];
    city.weight = 1.0 / (1.0 + static_cast<double>(c) * 0.05);  // Zipf-ish
    cities.push_back(std::move(city));
  }
  std::vector<double> city_weights;
  for (const auto& c : cities) city_weights.push_back(c.weight);

  Table& t = ds.table;
  t.AddColumn("City", ColumnType::kCategorical);
  t.AddColumn("Region", ColumnType::kCategorical);
  t.AddColumn("State", ColumnType::kCategorical);
  t.AddColumn("Weather", ColumnType::kCategorical);
  t.AddColumn("Temperature", ColumnType::kDouble);
  t.AddColumn("Visibility", ColumnType::kDouble);
  t.AddColumn("Precipitation", ColumnType::kDouble);
  t.AddColumn("Humidity", ColumnType::kDouble);
  t.AddColumn("WindSpeed", ColumnType::kDouble);
  t.AddColumn("TrafficSignal", ColumnType::kCategorical);
  t.AddColumn("TrafficCalming", ColumnType::kCategorical);
  t.AddColumn("CityRoad", ColumnType::kCategorical);
  t.AddColumn("Junction", ColumnType::kCategorical);
  t.AddColumn("Crossing", ColumnType::kCategorical);
  t.AddColumn("Roundabout", ColumnType::kCategorical);
  t.AddColumn("Stop", ColumnType::kCategorical);
  t.AddColumn("DayPeriod", ColumnType::kCategorical);
  t.AddColumn("RushHour", ColumnType::kCategorical);
  if (opt.full_schema) {
    // Environmental / POI flags filling out the paper's 40 attributes.
    for (const char* extra :
         {"Bump", "GiveWay", "NoExit", "Railway", "Station", "Amenity",
          "TrafficLoop", "TurningCircle", "Interstate", "Tunnel", "Bridge",
          "SchoolZone", "ConstructionZone", "OneWay", "SpeedLimitOver55",
          "WindDirection", "PressureBand", "UVIndexBand", "Season",
          "WeekendFlag", "HolidayFlag", "NightLighting"}) {
      t.AddColumn(extra, ColumnType::kCategorical);
    }
  }
  t.AddColumn("Severity", ColumnType::kDouble);
  t.ReserveRows(opt.num_rows);

  std::vector<Value> row(t.NumColumns());
  for (size_t r = 0; r < opt.num_rows; ++r) {
    const City& city = cities[SampleCategory(&rng, city_weights)];
    const RegionInfo& region = kRegions[city.region];
    const bool northeast = city.region == 0;
    const bool midwest = city.region == 1;
    const bool south = city.region == 2;
    const bool west = city.region == 3;

    // Weather generative process, region-conditioned.
    const double temperature =
        rng.NextGaussian(62.0 - region.cold_bias, 18.0);
    const bool cold = temperature < 36.0;
    const char* weather = "Clear";
    double roll = rng.NextDouble();
    if (cold && rng.NextBool(region.snow_bias)) {
      weather = "Snow";
    } else if (roll < region.rain_bias) {
      weather = "Rain";
    } else if (roll < region.rain_bias + 0.18) {
      weather = "Overcast";
    } else if (roll < region.rain_bias + 0.33) {
      weather = "Cloudy";
    } else if (roll < region.rain_bias + 0.37) {
      weather = "Fog";
    }
    const bool is_snow = std::string(weather) == "Snow";
    const bool is_rain = std::string(weather) == "Rain";
    const bool is_overcast = std::string(weather) == "Overcast";
    const bool is_fog = std::string(weather) == "Fog";
    const bool is_clear = std::string(weather) == "Clear";

    double visibility = rng.NextGaussian(9.0, 1.5);
    if (is_fog) visibility -= 6.0;
    if (is_snow || is_rain) visibility -= 3.0;
    if (is_overcast) visibility -= 1.5;
    visibility = Clamp(visibility, 0.1, 10.0);
    const bool low_visibility = visibility < 5.0;

    const double precipitation =
        (is_rain || is_snow) ? Clamp(rng.NextGaussian(0.25, 0.2), 0, 2) : 0.0;
    const double humidity = Clamp(
        rng.NextGaussian(is_rain || is_snow ? 85 : 60, 12), 10, 100);
    const double wind = Clamp(rng.NextGaussian(9, 5), 0, 50);

    // Road infrastructure: the West cities under-invest in signals and
    // calming (drives the Fig. 7 bullet 4 story).
    const bool signal = rng.NextBool(west ? 0.25 : 0.45);
    const bool calming = rng.NextBool(west ? 0.08 : 0.18);
    const bool city_road = rng.NextBool(0.6);
    const bool junction = rng.NextBool(0.25);
    const bool crossing = rng.NextBool(0.2);
    const bool roundabout = rng.NextBool(0.04);
    const bool stop = rng.NextBool(0.15);
    const char* day_period = rng.NextBool(0.7) ? "Day" : "Night";
    const bool rush = rng.NextBool(0.3);

    // Severity structural equation (1..4).
    double severity = 2.1;
    if (is_snow) severity += 0.35;
    if (is_rain) severity += 0.18;
    if (low_visibility) severity += 0.2;
    if (cold) severity += 0.15;
    if (signal) severity -= 0.3;
    if (calming) severity -= 0.25;
    if (city_road) severity -= 0.12;  // highways are worse
    if (std::string(day_period) == "Night") severity += 0.12;
    // Region-conditional interactions (Fig. 7):
    if (northeast && is_overcast && low_visibility) severity += 0.4;
    if (midwest && cold && is_snow) severity += 0.45;
    if (midwest && is_clear) severity -= 0.18;
    if (south && is_rain) severity += 0.22;
    if (south && calming) severity -= 0.3;
    if (west && !signal && !calming) severity += 0.4;
    severity += rng.NextGaussian(0, 0.45);
    severity = Clamp(severity, 1.0, 4.0);

    size_t i = 0;
    row[i++] = Value(city.name);
    row[i++] = Value(region.name);
    row[i++] = Value(city.state);
    row[i++] = Value(weather);
    row[i++] = Value(temperature);
    row[i++] = Value(visibility);
    row[i++] = Value(precipitation);
    row[i++] = Value(humidity);
    row[i++] = Value(wind);
    row[i++] = Value(signal ? "Yes" : "No");
    row[i++] = Value(calming ? "Yes" : "No");
    row[i++] = Value(city_road ? "Yes" : "No");
    row[i++] = Value(junction ? "Yes" : "No");
    row[i++] = Value(crossing ? "Yes" : "No");
    row[i++] = Value(roundabout ? "Yes" : "No");
    row[i++] = Value(stop ? "Yes" : "No");
    row[i++] = Value(day_period);
    row[i++] = Value(rush ? "Yes" : "No");
    if (opt.full_schema) {
      // Inert environmental flags (balanced coin flips; no causal role).
      for (int e = 0; e < 22; ++e) {
        row[i++] = Value(rng.NextBool(0.5) ? "Yes" : "No");
      }
    }
    row[i++] = Value(severity);
    t.AddRow(row);
  }

  // Ground-truth causal DAG.
  CausalDag& g = ds.dag;
  g.AddEdge("City", "Region");
  g.AddEdge("City", "State");
  g.AddEdge("City", "Severity");
  g.AddEdge("Weather", "Visibility");
  g.AddEdge("Weather", "Precipitation");
  g.AddEdge("Weather", "Humidity");
  g.AddEdge("Weather", "Severity");
  g.AddEdge("Temperature", "Weather");
  g.AddEdge("Temperature", "Severity");
  g.AddEdge("Visibility", "Severity");
  g.AddEdge("TrafficSignal", "Severity");
  g.AddEdge("TrafficCalming", "Severity");
  g.AddEdge("CityRoad", "Severity");
  g.AddEdge("DayPeriod", "Severity");
  g.AddEdge("DayPeriod", "Visibility");
  g.AddNode("WindSpeed");
  g.AddNode("Junction");
  g.AddNode("Crossing");
  g.AddNode("Roundabout");
  g.AddNode("Stop");
  g.AddNode("RushHour");
  if (opt.full_schema) {
    for (const char* extra :
         {"Bump", "GiveWay", "NoExit", "Railway", "Station", "Amenity",
          "TrafficLoop", "TurningCircle", "Interstate", "Tunnel", "Bridge",
          "SchoolZone", "ConstructionZone", "OneWay", "SpeedLimitOver55",
          "WindDirection", "PressureBand", "UVIndexBand", "Season",
          "WeekendFlag", "HolidayFlag", "NightLighting"}) {
      g.AddNode(extra);
    }
  }

  ds.default_query.group_by = {"City"};
  ds.default_query.avg_attribute = "Severity";

  ds.style.subject_noun = "accidents";
  ds.style.outcome_noun = "severity";
  ds.style.group_noun = "cities";
  ds.style.predicate_phrases = {
      {"Weather = Snow", "snow"},
      {"Weather = Rain", "rain"},
      {"Weather = Overcast", "overcast weather conditions"},
      {"Weather = Clear", "clear weather"},
      {"TrafficSignal = Yes", "the presence of traffic signals"},
      {"TrafficSignal = No", "the absence of traffic signals"},
      {"TrafficCalming = Yes", "the presence of traffic calming measures"},
      {"TrafficCalming = No", "the absence of traffic calming measures"},
      {"CityRoad = Yes", "city roads (as opposed to highways)"},
      {"Visibility < 5", "low visibility"},
      {"Temperature < 36", "cold temperatures"},
  };
  return ds;
}

}  // namespace causumx
