#include "datagen/adult.h"

#include <array>
#include <cmath>

namespace causumx {

namespace {

struct OccupationInfo {
  const char* name;
  const char* category;  // Blue-collar / White-collar / Service
  double base_logit;
  double weight;
};

constexpr std::array<OccupationInfo, 12> kOccupations = {{
    {"Exec-managerial", "White-collar", 0.9, 10},
    {"Prof-specialty", "White-collar", 0.8, 10},
    {"Adm-clerical", "White-collar", -0.3, 9},
    {"Tech-support", "White-collar", 0.2, 3},
    {"Craft-repair", "Blue-collar", -0.2, 10},
    {"Machine-op-inspct", "Blue-collar", -0.6, 5},
    {"Transport-moving", "Blue-collar", -0.4, 4},
    {"Handlers-cleaners", "Blue-collar", -1.0, 3},
    {"Farming-fishing", "Blue-collar", -1.1, 2},
    {"Sales", "Service", 0.1, 9},
    {"Other-service", "Service", -1.0, 8},
    {"Protective-serv", "Service", 0.0, 2},
}};

constexpr const char* kEducationLevels[] = {
    "HS-grad", "Some-college", "Bachelors", "Masters", "Doctorate",
};

constexpr const char* kMarital[] = {
    "Married", "Never-married", "Divorced", "Widowed",
};

constexpr const char* kRaces[] = {"White", "Black", "Asian-Pac", "Other"};

constexpr const char* kWorkclass[] = {"Private", "Self-emp", "Government"};

double Sigmoid(double x) { return 1.0 / (1.0 + std::exp(-x)); }

}  // namespace

GeneratedDataset MakeAdultDataset(const AdultOptions& opt) {
  GeneratedDataset ds;
  ds.name = "Adult";
  Rng rng(opt.seed);

  Table& t = ds.table;
  t.AddColumn("Occupation", ColumnType::kCategorical);
  t.AddColumn("OccupationCategory", ColumnType::kCategorical);
  t.AddColumn("Age", ColumnType::kInt64);
  t.AddColumn("Workclass", ColumnType::kCategorical);
  t.AddColumn("Education", ColumnType::kCategorical);
  t.AddColumn("EducationNum", ColumnType::kInt64);
  t.AddColumn("MaritalStatus", ColumnType::kCategorical);
  t.AddColumn("Relationship", ColumnType::kCategorical);
  t.AddColumn("Race", ColumnType::kCategorical);
  t.AddColumn("Sex", ColumnType::kCategorical);
  t.AddColumn("HoursPerWeek", ColumnType::kInt64);
  t.AddColumn("NativeCountry", ColumnType::kCategorical);
  t.AddColumn("Income", ColumnType::kDouble);
  t.ReserveRows(opt.num_rows);

  std::vector<double> occ_weights;
  for (const auto& o : kOccupations) occ_weights.push_back(o.weight);

  std::vector<Value> row(t.NumColumns());
  for (size_t r = 0; r < opt.num_rows; ++r) {
    const int64_t age =
        static_cast<int64_t>(Clamp(rng.NextGaussian(39, 12), 17, 85));
    const char* sex = rng.NextBool(0.67) ? "Male" : "Female";
    const char* race = kRaces[SampleCategory(&rng, {8.5, 1.0, 0.3, 0.2})];
    const char* country = rng.NextBool(0.9) ? "United-States" : "Other";

    // Education: caused by age cohort + noise.
    double edu_score = rng.NextGaussian(0, 1);
    if (age >= 25) edu_score += 0.3;
    const size_t edu_idx = edu_score < -0.4   ? 0
                           : edu_score < 0.45 ? 1
                           : edu_score < 1.3  ? 2
                           : edu_score < 2.0  ? 3
                                              : 4;
    const char* education = kEducationLevels[edu_idx];
    const int64_t edu_num = static_cast<int64_t>(9 + edu_idx * 2);

    // Marital status: caused by age.
    std::vector<double> marital_w = {5, 4, 1.5, 0.3};
    if (age < 28) {
      marital_w = {1.5, 8, 0.4, 0.05};
    } else if (age > 50) {
      marital_w = {6, 1, 2, 1.2};
    }
    const char* marital = kMarital[SampleCategory(&rng, marital_w)];
    const char* relationship =
        std::string(marital) == "Married"
            ? (std::string(sex) == "Male" ? "Husband" : "Wife")
            : "Not-in-family";

    // Occupation: education shifts the distribution toward white-collar.
    std::vector<double> w = occ_weights;
    if (edu_idx >= 2) {
      for (size_t i = 0; i < kOccupations.size(); ++i) {
        if (std::string(kOccupations[i].category) == "White-collar") {
          w[i] *= 3.0;
        }
      }
    }
    const OccupationInfo& occ = kOccupations[SampleCategory(&rng, w)];
    const char* workclass =
        kWorkclass[SampleCategory(&rng, {7.5, 1.2, 1.3})];

    const int64_t hours = static_cast<int64_t>(
        Clamp(rng.NextGaussian(41, 9), 10, 99));

    // Income structural equation (binary via logit). Marriage dominates —
    // the paper notes the dataset's filing-status artifact makes married
    // respondents report household income.
    const bool white_collar = std::string(occ.category) == "White-collar";
    const bool service = std::string(occ.category) == "Service";
    double logit = -1.4 + occ.base_logit;
    if (std::string(marital) == "Married") logit += 1.6;
    if (std::string(marital) == "Never-married") logit -= 1.1;
    logit += 0.25 * static_cast<double>(edu_idx);
    if (std::string(sex) == "Male") logit += 0.35;
    if (white_collar && std::string(sex) == "Male" && edu_idx >= 2) {
      logit += 1.2;  // Fig. 19 bullet 2 positive
    }
    if (service && std::string(marital) == "Married") {
      logit += 0.9;  // Fig. 19 bullet 3 positive
    }
    if (service && std::string(marital) == "Never-married" &&
        std::string(sex) == "Female") {
      logit -= 0.9;  // Fig. 19 bullet 3 negative
    }
    logit += 0.015 * (static_cast<double>(hours) - 40.0);
    logit += 0.012 * (static_cast<double>(age) - 39.0);
    if (std::string(race) == "White") logit += 0.15;
    const double income = rng.NextBool(Sigmoid(logit)) ? 1.0 : 0.0;

    size_t i = 0;
    row[i++] = Value(occ.name);
    row[i++] = Value(occ.category);
    row[i++] = Value(age);
    row[i++] = Value(workclass);
    row[i++] = Value(education);
    row[i++] = Value(edu_num);
    row[i++] = Value(marital);
    row[i++] = Value(relationship);
    row[i++] = Value(race);
    row[i++] = Value(sex);
    row[i++] = Value(hours);
    row[i++] = Value(country);
    row[i++] = Value(income);
    t.AddRow(row);
  }

  // Ground-truth DAG (adapted from the fairness literature DAGs the paper
  // cites for Adult).
  CausalDag& g = ds.dag;
  g.AddEdge("Age", "Education");
  g.AddEdge("Age", "MaritalStatus");
  g.AddEdge("Age", "Income");
  g.AddEdge("Education", "Occupation");
  g.AddEdge("Education", "Income");
  g.AddEdge("EducationNum", "Income");
  g.AddEdge("Education", "EducationNum");
  g.AddEdge("MaritalStatus", "Relationship");
  g.AddEdge("MaritalStatus", "Income");
  g.AddEdge("Sex", "Occupation");
  g.AddEdge("Sex", "Income");
  g.AddEdge("Race", "Income");
  g.AddEdge("Occupation", "Income");
  g.AddEdge("Occupation", "OccupationCategory");
  g.AddEdge("HoursPerWeek", "Income");
  g.AddEdge("Workclass", "Income");
  g.AddNode("NativeCountry");

  ds.default_query.group_by = {"Occupation"};
  ds.default_query.avg_attribute = "Income";

  ds.style.subject_noun = "individuals";
  ds.style.outcome_noun = "income";
  ds.style.group_noun = "occupations";
  ds.style.predicate_phrases = {
      {"MaritalStatus = Married", "being married"},
      {"MaritalStatus = Never-married", "being unmarried"},
      {"Sex = Male", "being male"},
      {"Sex = Female", "being female"},
      {"Education = Bachelors", "holding a bachelor's degree"},
      {"Education = Masters", "holding a master's degree"},
  };
  return ds;
}

}  // namespace causumx
