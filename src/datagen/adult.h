// Structural-equation replica of the UCI Adult census dataset as used in
// the paper (32.5K tuples, 13 attributes; query = AVG(Income) GROUP BY
// Occupation with the FD Occupation -> OccupationCategory providing the
// blue-collar / white-collar / service grouping patterns of Fig. 19).
//
// Planted ground truth per the published case study: marital status is
// the dominant positive factor (married up, never-married down) across
// occupations; in white-collar occupations, male + bachelor-or-higher
// adds a strong boost; unmarried women fare worst in service jobs.

#ifndef CAUSUMX_DATAGEN_ADULT_H_
#define CAUSUMX_DATAGEN_ADULT_H_

#include "datagen/common.h"

namespace causumx {

struct AdultOptions {
  size_t num_rows = 32500;
  uint64_t seed = 13;
};

/// Generates the Adult replica. Outcome `Income` is binary 0/1 (the paper
/// bins income at 50K), so AVG(Income) is the high-earner rate.
GeneratedDataset MakeAdultDataset(const AdultOptions& options = {});

}  // namespace causumx

#endif  // CAUSUMX_DATAGEN_ADULT_H_
