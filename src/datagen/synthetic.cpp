#include "datagen/synthetic.h"

#include <algorithm>
#include <cmath>

#include "util/stats.h"
#include "util/string_utils.h"

namespace causumx {

GeneratedDataset MakeSyntheticDataset(const SyntheticOptions& opt) {
  GeneratedDataset ds;
  ds.name = "Synthetic";
  Rng rng(opt.seed);

  Table& t = ds.table;
  t.AddColumn("G", ColumnType::kInt64);
  for (size_t x = 0; x < opt.num_grouping_attrs; ++x) {
    t.AddColumn(StrFormat("G%zu", x + 1), ColumnType::kCategorical);
  }
  for (size_t y = 0; y < opt.num_treatment_attrs; ++y) {
    t.AddColumn(StrFormat("T%zu", y + 1), ColumnType::kInt64);
  }
  t.AddColumn("O", ColumnType::kDouble);
  t.ReserveRows(opt.num_rows);

  std::vector<Value> row(1 + opt.num_grouping_attrs +
                         opt.num_treatment_attrs + 1);
  for (size_t r = 0; r < opt.num_rows; ++r) {
    const int64_t g = static_cast<int64_t>(r) + 1;
    row[0] = Value(g);
    for (size_t x = 0; x < opt.num_grouping_attrs; ++x) {
      const size_t buckets = opt.buckets_base * (x + 2);
      const size_t bucket =
          (r * buckets) / opt.num_rows;  // contiguous ranges of G
      row[1 + x] = Value(StrFormat("g%zu_b%zu", x + 1, bucket));
    }
    double o = 0.0;
    for (size_t y = 0; y < opt.num_treatment_attrs; ++y) {
      const int64_t ty = rng.NextInt(1, 5);
      row[1 + opt.num_grouping_attrs + y] = Value(ty);
      // causumx-lint: allow(fp-accumulation) fixed attribute order per row)
      o += (y % 2 == 0) ? static_cast<double>(ty)
                        : -static_cast<double>(ty);
    }
    if (opt.noise_std > 0) o += rng.NextGaussian(0, opt.noise_std);
    row.back() = Value(o);
    t.AddRow(row);
  }

  // Ground-truth DAG: each T_y -> O; G and G_x are causally inert.
  ds.dag.AddNode("G");
  for (size_t x = 0; x < opt.num_grouping_attrs; ++x) {
    ds.dag.AddNode(StrFormat("G%zu", x + 1));
  }
  for (size_t y = 0; y < opt.num_treatment_attrs; ++y) {
    ds.dag.AddEdge(StrFormat("T%zu", y + 1), "O");
  }

  ds.default_query.group_by = {"G"};
  ds.default_query.avg_attribute = "O";

  // G is unique per tuple, so the FD test is vacuous (G -> W for all W);
  // the intended partition must be given explicitly, as in the paper.
  for (size_t x = 0; x < opt.num_grouping_attrs; ++x) {
    ds.grouping_attribute_hint.push_back(StrFormat("G%zu", x + 1));
  }
  for (size_t y = 0; y < opt.num_treatment_attrs; ++y) {
    ds.treatment_attribute_hint.push_back(StrFormat("T%zu", y + 1));
  }

  ds.style.subject_noun = "tuples";
  ds.style.outcome_noun = "the outcome O";
  ds.style.group_noun = "groups";
  return ds;
}

GeneratedDataset MakeLinearScmDataset(const LinearScmOptions& opt) {
  GeneratedDataset ds;
  ds.name = "LinearSCM";
  Rng rng(opt.seed);

  Table& t = ds.table;
  t.AddColumn("G", ColumnType::kCategorical);
  t.AddColumn("C1", ColumnType::kDouble);
  t.AddColumn("C2", ColumnType::kDouble);
  t.AddColumn("T", ColumnType::kCategorical);
  t.AddColumn("O", ColumnType::kDouble);
  t.ReserveRows(opt.num_rows);

  std::vector<Value> row(5);
  for (size_t r = 0; r < opt.num_rows; ++r) {
    const double c1 = rng.NextGaussian(0, 1);
    const double c2 = rng.NextGaussian(0, 1);
    const double propensity =
        1.0 / (1.0 + std::exp(-opt.confounding * (c1 + c2)));
    const bool treated = rng.NextDouble() < propensity;
    const double o = opt.ate * (treated ? 1.0 : 0.0) + opt.b1 * c1 +
                     opt.b2 * c2 +
                     (opt.noise_std > 0
                          ? rng.NextGaussian(0, opt.noise_std)
                          : 0.0);
    // G buckets C1's range via the standard-normal CDF so buckets are
    // roughly equal-sized.
    const size_t bucket = std::min(
        opt.num_buckets - 1,
        static_cast<size_t>(NormalCdf(c1) * static_cast<double>(
                                                opt.num_buckets)));
    row[0] = Value(StrFormat("g%zu", bucket));
    row[1] = Value(c1);
    row[2] = Value(c2);
    row[3] = Value(treated ? "1" : "0");
    row[4] = Value(o);
    t.AddRow(row);
  }

  ds.dag.AddEdge("C1", "T");
  ds.dag.AddEdge("C2", "T");
  ds.dag.AddEdge("C1", "O");
  ds.dag.AddEdge("C2", "O");
  ds.dag.AddEdge("T", "O");
  ds.dag.AddEdge("C1", "G");

  ds.default_query.group_by = {"G"};
  ds.default_query.avg_attribute = "O";
  ds.grouping_attribute_hint = {"G"};
  ds.treatment_attribute_hint = {"T"};

  ds.style.subject_noun = "units";
  ds.style.outcome_noun = "the outcome O";
  ds.style.group_noun = "buckets";
  return ds;
}

}  // namespace causumx
