#include "datagen/german.h"

#include <array>
#include <cmath>

namespace causumx {

namespace {

constexpr std::array<const char*, 10> kPurposes = {
    "new car",     "used car",   "furniture",  "radio/TV", "appliances",
    "repairs",     "education",  "vacation",   "retraining", "business",
};

constexpr std::array<double, 10> kPurposeWeights = {
    2.3, 1.0, 1.8, 2.8, 0.5, 0.6, 0.5, 0.2, 0.3, 1.0,
};

constexpr const char* kChecking[] = {
    "none", "below 0 DM", "0-200 DM", "200+ DM",
};
constexpr const char* kSavings[] = {
    "below 100 DM", "100-500 DM", "500-1000 DM", "1000+ DM", "unknown",
};
constexpr const char* kHistory[] = {
    "critical", "delayed", "existing paid", "all paid duly",
};
constexpr const char* kEmployment[] = {
    "unemployed", "below 1 year", "1-4 years", "4-7 years", "7+ years",
};
constexpr const char* kHousing[] = {"rent", "own", "free"};
constexpr const char* kJob[] = {
    "unskilled", "skilled", "management",
};

double Sigmoid(double x) { return 1.0 / (1.0 + std::exp(-x)); }

}  // namespace

GeneratedDataset MakeGermanDataset(const GermanOptions& opt) {
  GeneratedDataset ds;
  ds.name = "German";
  Rng rng(opt.seed);

  Table& t = ds.table;
  t.AddColumn("Purpose", ColumnType::kCategorical);
  t.AddColumn("CheckingAccount", ColumnType::kCategorical);
  t.AddColumn("SavingsAccount", ColumnType::kCategorical);
  t.AddColumn("CreditHistory", ColumnType::kCategorical);
  t.AddColumn("Duration", ColumnType::kInt64);
  t.AddColumn("CreditAmount", ColumnType::kDouble);
  t.AddColumn("Employment", ColumnType::kCategorical);
  t.AddColumn("InstallmentRate", ColumnType::kInt64);
  t.AddColumn("PersonalStatus", ColumnType::kCategorical);
  t.AddColumn("OtherDebtors", ColumnType::kCategorical);
  t.AddColumn("ResidenceSince", ColumnType::kInt64);
  t.AddColumn("Property", ColumnType::kCategorical);
  t.AddColumn("Age", ColumnType::kInt64);
  t.AddColumn("OtherInstallments", ColumnType::kCategorical);
  t.AddColumn("Housing", ColumnType::kCategorical);
  t.AddColumn("ExistingCredits", ColumnType::kInt64);
  t.AddColumn("Job", ColumnType::kCategorical);
  t.AddColumn("Dependents", ColumnType::kInt64);
  t.AddColumn("Telephone", ColumnType::kCategorical);
  t.AddColumn("RiskScore", ColumnType::kDouble);
  t.ReserveRows(opt.num_rows);

  std::vector<double> purpose_w(kPurposeWeights.begin(),
                                kPurposeWeights.end());
  std::vector<Value> row(t.NumColumns());
  for (size_t r = 0; r < opt.num_rows; ++r) {
    const char* purpose = kPurposes[SampleCategory(&rng, purpose_w)];
    const int64_t age =
        static_cast<int64_t>(Clamp(rng.NextGaussian(36, 11), 19, 75));

    // Employment drives account balances and job level.
    const char* employment =
        kEmployment[SampleCategory(&rng, {0.6, 1.7, 3.4, 1.7, 2.5})];
    const bool stable_job = std::string(employment) == "4-7 years" ||
                            std::string(employment) == "7+ years";

    std::vector<double> checking_w = {4, 2.7, 2.7, 0.6};
    if (stable_job) checking_w = {2, 1.5, 3.5, 3};
    const char* checking = kChecking[SampleCategory(&rng, checking_w)];
    std::vector<double> savings_w = {6, 1, 0.6, 0.5, 1.8};
    if (stable_job) savings_w = {3, 1.5, 1.2, 1.8, 1.5};
    const char* savings = kSavings[SampleCategory(&rng, savings_w)];

    const char* history =
        kHistory[SampleCategory(&rng, {2.9, 0.9, 5.3, 1.0})];

    // Duration and amount depend on the purpose.
    double mean_duration = 21;
    double mean_amount = 3300;
    if (std::string(purpose) == "new car") {
      mean_duration = 24;
      mean_amount = 5500;
    } else if (std::string(purpose) == "business") {
      mean_duration = 27;
      mean_amount = 6500;
    } else if (std::string(purpose) == "repairs" ||
               std::string(purpose) == "appliances") {
      mean_duration = 14;
      mean_amount = 1800;
    }
    const int64_t duration = static_cast<int64_t>(
        Clamp(rng.NextGaussian(mean_duration, 12), 4, 72));
    const double amount =
        Clamp(rng.NextGaussian(mean_amount, 2200), 250, 20000);

    const char* housing = kHousing[SampleCategory(&rng, {1.8, 7.1, 1.1})];
    const char* job = kJob[SampleCategory(&rng, {2, 6.3, 1.7})];
    const int64_t installment_rate = rng.NextInt(1, 4);
    const char* personal_status =
        rng.NextBool(0.55) ? "male single" : "female/divorced/married";
    const char* other_debtors = rng.NextBool(0.9) ? "none" : "guarantor";
    const int64_t residence = rng.NextInt(1, 4);
    const char* property =
        rng.NextBool(0.28) ? "real estate"
                           : (rng.NextBool(0.5) ? "car/other" : "none");
    const char* other_installments = rng.NextBool(0.8) ? "none" : "bank";
    const int64_t existing_credits = rng.NextInt(1, 3);
    const int64_t dependents = rng.NextBool(0.85) ? 1 : 2;
    const char* telephone = rng.NextBool(0.4) ? "yes" : "none";

    // Risk structural equation (Fig. 18 story).
    double logit = 0.4;
    if (std::string(checking) == "200+ DM") logit += 1.5;
    if (std::string(checking) == "none") logit -= 0.3;
    if (std::string(checking) == "below 0 DM") logit -= 0.9;
    if (std::string(savings) == "1000+ DM") logit += 1.1;
    if (std::string(history) == "all paid duly") logit += 1.3;
    if (std::string(history) == "critical") logit -= 0.9;
    if (duration > 48) logit -= 1.8;
    else if (duration <= 12) logit += 0.8;
    logit -= 0.00008 * amount;
    if (std::string(housing) == "own") logit += 0.5;
    if (std::string(housing) == "rent" && std::string(checking) == "none") {
      logit -= 0.8;  // Fig. 18 "repairs" negative side
    }
    if (stable_job) logit += 0.4;
    logit += rng.NextGaussian(0, 0.6);
    const double risk = rng.NextBool(Sigmoid(logit)) ? 1.0 : 0.0;

    size_t i = 0;
    row[i++] = Value(purpose);
    row[i++] = Value(checking);
    row[i++] = Value(savings);
    row[i++] = Value(history);
    row[i++] = Value(duration);
    row[i++] = Value(amount);
    row[i++] = Value(employment);
    row[i++] = Value(installment_rate);
    row[i++] = Value(personal_status);
    row[i++] = Value(other_debtors);
    row[i++] = Value(residence);
    row[i++] = Value(property);
    row[i++] = Value(age);
    row[i++] = Value(other_installments);
    row[i++] = Value(housing);
    row[i++] = Value(existing_credits);
    row[i++] = Value(job);
    row[i++] = Value(dependents);
    row[i++] = Value(telephone);
    row[i++] = Value(risk);
    t.AddRow(row);
  }

  // Ground-truth DAG (following the fairness-literature German DAG).
  CausalDag& g = ds.dag;
  g.AddEdge("Employment", "CheckingAccount");
  g.AddEdge("Employment", "SavingsAccount");
  g.AddEdge("Employment", "RiskScore");
  g.AddEdge("CheckingAccount", "RiskScore");
  g.AddEdge("SavingsAccount", "RiskScore");
  g.AddEdge("CreditHistory", "RiskScore");
  g.AddEdge("Purpose", "Duration");
  g.AddEdge("Purpose", "CreditAmount");
  g.AddEdge("Duration", "RiskScore");
  g.AddEdge("CreditAmount", "RiskScore");
  g.AddEdge("Housing", "RiskScore");
  g.AddEdge("Age", "Employment");
  g.AddEdge("Age", "Housing");
  g.AddEdge("Job", "RiskScore");
  g.AddNode("InstallmentRate");
  g.AddNode("PersonalStatus");
  g.AddNode("OtherDebtors");
  g.AddNode("ResidenceSince");
  g.AddNode("Property");
  g.AddNode("OtherInstallments");
  g.AddNode("ExistingCredits");
  g.AddNode("Dependents");
  g.AddNode("Telephone");

  ds.default_query.group_by = {"Purpose"};
  ds.default_query.avg_attribute = "RiskScore";

  ds.style.subject_noun = "loan requests";
  ds.style.outcome_noun = "the credit risk score";
  ds.style.group_noun = "loan purposes";
  ds.style.predicate_phrases = {
      {"CheckingAccount = 200+ DM",
       "having a checking account with at least 200 DM"},
      {"CreditHistory = all paid duly",
       "paying back all credits at this bank duly"},
      {"Duration > 48", "requesting a duration exceeding 48 months"},
      {"Duration <= 12", "requesting a duration of at most 12 months"},
      {"SavingsAccount = 1000+ DM",
       "having a savings account with at least 1000 DM"},
      {"Housing = own", "owning a house"},
      {"Housing = rent", "renting a house"},
      {"CheckingAccount = none", "not having a checking account"},
  };
  return ds;
}

}  // namespace causumx
