// Structural-equation replica of the US-Accidents dataset as used in the
// paper (2.8M tuples, 40 attributes; query = AVG(Severity) GROUP BY City,
// with the FD City -> {Region, State} providing the region grouping
// patterns of Fig. 7).
//
// Planted ground truth per the published case study:
//  * Northeast: overcast + low visibility raises severity; traffic
//    signals lower it.
//  * Midwest: cold + snow raises severity; clear weather lowers it.
//  * South: rain raises severity; traffic calming lowers it.
//  * West: absent signals + absent calming raises severity; city roads
//    (vs highways) lower it.
//
// The row count and number of cities are configurable so scalability
// benchmarks can sweep them; defaults are sized for laptop benches and
// the full paper scale remains reachable via options.

#ifndef CAUSUMX_DATAGEN_ACCIDENTS_H_
#define CAUSUMX_DATAGEN_ACCIDENTS_H_

#include "datagen/common.h"

namespace causumx {

struct AccidentsOptions {
  size_t num_rows = 200'000;  ///< paper scale: 2.8M (set for full repro).
  size_t num_cities = 128;    ///< paper has >50K; benches default smaller.
  uint64_t seed = 23;
  /// Generate the full 40-attribute schema; when false a compact
  /// 18-attribute version is produced (faster unit tests).
  bool full_schema = true;
};

/// Generates the Accidents replica. Outcome `Severity` in [1, 4].
GeneratedDataset MakeAccidentsDataset(const AccidentsOptions& options = {});

}  // namespace causumx

#endif  // CAUSUMX_DATAGEN_ACCIDENTS_H_
