#include "datagen/stackoverflow.h"

#include <array>

namespace causumx {

namespace {

struct CountryInfo {
  const char* name;
  const char* continent;
  const char* hdi;   // High / Medium
  const char* gini;  // High / Low
  const char* gdp;   // High / Medium / Low
  double base_salary;  // country-level base, USD
  double weight;       // sampling prevalence
};

// 20 countries, 5 continents, with economic tiers shaping the grouping
// patterns {Continent, HDI, Gini, GDP} the paper's SO study uses.
constexpr std::array<CountryInfo, 20> kCountries = {{
    {"United States", "North America", "High", "High", "High", 95000, 18},
    {"Canada", "North America", "High", "Low", "High", 70000, 4},
    {"Mexico", "North America", "Medium", "High", "Medium", 22000, 2},
    {"United Kingdom", "Europe", "High", "Low", "High", 62000, 7},
    {"Germany", "Europe", "High", "Low", "High", 60000, 7},
    {"France", "Europe", "High", "Low", "High", 52000, 4},
    {"Spain", "Europe", "High", "Low", "Medium", 38000, 3},
    {"Italy", "Europe", "High", "Low", "Medium", 36000, 3},
    {"Poland", "Europe", "High", "Low", "Medium", 26000, 3},
    {"Sweden", "Europe", "High", "Low", "High", 55000, 2},
    {"Netherlands", "Europe", "High", "Low", "High", 58000, 2},
    {"Russia", "Europe", "High", "High", "Medium", 21000, 3},
    {"India", "Asia", "Medium", "High", "Low", 11000, 13},
    {"China", "Asia", "Medium", "High", "Medium", 24000, 4},
    {"Japan", "Asia", "High", "Low", "High", 49000, 2},
    {"Israel", "Asia", "High", "High", "High", 63000, 2},
    {"Turkey", "Asia", "Medium", "High", "Medium", 18000, 2},
    {"Brazil", "South America", "Medium", "High", "Medium", 17000, 4},
    {"Argentina", "South America", "Medium", "High", "Medium", 15000, 2},
    {"Australia", "Oceania", "High", "Low", "High", 66000, 3},
}};

constexpr const char* kRoles[] = {
    "Back-end developer", "Front-end developer", "Full-stack developer",
    "Data scientist",     "DevOps specialist",   "QA developer",
    "Mobile developer",   "C-suite executive",   "Engineering manager",
    "Student",
};

constexpr const char* kEducation[] = {
    "No formal degree", "Some college", "Bachelors degree",
    "Masters degree",   "PhD",
};

constexpr const char* kMajors[] = {
    "Computer science", "Other engineering", "Mathematics",
    "Natural science",  "Humanities",        "Business",
};

constexpr const char* kEthnicities[] = {
    "White", "South Asian", "East Asian", "Hispanic", "Black",
    "Middle Eastern",
};

}  // namespace

GeneratedDataset MakeStackOverflowDataset(const StackOverflowOptions& opt) {
  GeneratedDataset ds;
  ds.name = "SO";
  Rng rng(opt.seed);

  Table& t = ds.table;
  t.AddColumn("Country", ColumnType::kCategorical);
  t.AddColumn("Continent", ColumnType::kCategorical);
  t.AddColumn("HDI", ColumnType::kCategorical);
  t.AddColumn("Gini", ColumnType::kCategorical);
  t.AddColumn("GDP", ColumnType::kCategorical);
  t.AddColumn("Gender", ColumnType::kCategorical);
  t.AddColumn("Ethnicity", ColumnType::kCategorical);
  t.AddColumn("Age", ColumnType::kInt64);
  t.AddColumn("Education", ColumnType::kCategorical);
  t.AddColumn("EducationParents", ColumnType::kCategorical);
  t.AddColumn("Major", ColumnType::kCategorical);
  t.AddColumn("Role", ColumnType::kCategorical);
  t.AddColumn("YearsCoding", ColumnType::kInt64);
  t.AddColumn("Student", ColumnType::kCategorical);
  t.AddColumn("Dependents", ColumnType::kCategorical);
  t.AddColumn("Hobby", ColumnType::kCategorical);
  t.AddColumn("HoursComputer", ColumnType::kInt64);
  t.AddColumn("Exercise", ColumnType::kCategorical);
  t.AddColumn("SexualOrientation", ColumnType::kCategorical);
  t.AddColumn("Salary", ColumnType::kDouble);
  t.ReserveRows(opt.num_rows);

  std::vector<double> country_weights;
  for (const auto& c : kCountries) country_weights.push_back(c.weight);

  std::vector<Value> row(t.NumColumns());
  for (size_t r = 0; r < opt.num_rows; ++r) {
    const CountryInfo& c = kCountries[SampleCategory(&rng, country_weights)];
    const bool europe = std::string(c.continent) == "Europe";
    const bool high_gdp = std::string(c.gdp) == "High";
    const bool high_gini = std::string(c.gini) == "High";

    // --- Exogenous demographics -----------------------------------------
    const int64_t age = static_cast<int64_t>(
        Clamp(rng.NextGaussian(33, 9), 18, 70));
    const char* gender =
        rng.NextBool(0.80) ? "Male"
                           : (rng.NextBool(0.92) ? "Female" : "Non-binary");
    const char* ethnicity =
        kEthnicities[SampleCategory(&rng, {5, 2, 2, 1.2, 1, 0.8})];
    const char* parents_edu =
        kEducation[SampleCategory(&rng, {2.5, 2.5, 3, 1.5, 0.5})];

    // --- Education: caused by Age, Country (via HDI) and parents --------
    double edu_score = rng.NextGaussian(0, 1);
    if (age >= 28) edu_score += 0.6;
    if (std::string(c.hdi) == "High") edu_score += 0.5;
    if (std::string(parents_edu) == "Masters degree" ||
        std::string(parents_edu) == "PhD") {
      edu_score += 0.6;
    }
    const char* education = edu_score < -1.0   ? kEducation[0]
                            : edu_score < -0.2 ? kEducation[1]
                            : edu_score < 0.9  ? kEducation[2]
                            : edu_score < 1.8  ? kEducation[3]
                                               : kEducation[4];

    // --- Major: influenced by education ---------------------------------
    const char* major =
        kMajors[SampleCategory(&rng, {5, 2, 1.2, 1, 0.6, 0.8})];

    // --- Student status: young + low degree -----------------------------
    const bool is_student =
        age < 27 && rng.NextBool(std::string(education) == "No formal degree" ||
                                         std::string(education) == "Some college"
                                     ? 0.45
                                     : 0.12);

    // --- YearsCoding: caused by Age -------------------------------------
    const int64_t years_coding = static_cast<int64_t>(Clamp(
        rng.NextGaussian(static_cast<double>(age) - 22.0, 4.0), 0, 45));

    // --- Role: caused by Education, Age, Major, YearsCoding (Fig. 3) ----
    std::vector<double> role_w = {5, 4, 5, 1.5, 2, 2, 2.5, 0.4, 1, 0.1};
    if (std::string(education) == "Masters degree" ||
        std::string(education) == "PhD") {
      role_w[3] *= 3.5;  // data scientist
      role_w[7] *= 1.6;  // c-suite
      role_w[8] *= 1.8;  // manager
    }
    if (age > 40) {
      role_w[7] *= 4.0;
      role_w[8] *= 3.0;
    }
    if (years_coding > 15) role_w[8] *= 1.7;
    if (is_student) {
      role_w.assign(role_w.size(), 0.05);
      role_w[9] = 10;  // "Student" role
    }
    const char* role = kRoles[SampleCategory(&rng, role_w)];

    const bool dependents = age > 30 && rng.NextBool(0.45);
    const bool hobby = rng.NextBool(0.8);
    const int64_t hours_computer =
        static_cast<int64_t>(Clamp(rng.NextGaussian(9, 2), 2, 16));
    const char* exercise = rng.NextBool(0.4) ? "Weekly" : "Rarely";
    const char* orientation = rng.NextBool(0.92) ? "Straight" : "LGBTQ+";

    // --- Salary: the structural equation planting the paper's story -----
    double salary = c.base_salary;
    // Universal effects (Fig. 6 sensitive-attribute study).
    if (age < 35) salary += 9000;
    if (age > 55) salary -= 12000;
    if (std::string(gender) == "Male") salary += 5000;
    if (std::string(ethnicity) == "White") salary += 4000;
    // Education ladder.
    if (std::string(education) == "No formal degree") salary -= 9000;
    if (std::string(education) == "Masters degree") salary += 9000;
    if (std::string(education) == "PhD") salary += 12000;
    // Role ladder.
    if (std::string(role) == "C-suite executive") salary += 30000;
    if (std::string(role) == "Engineering manager") salary += 18000;
    if (std::string(role) == "Data scientist") salary += 12000;
    if (std::string(role) == "QA developer") salary -= 6000;
    // Experience.
    salary += 600.0 * static_cast<double>(years_coding);
    // Students earn drastically less everywhere; strongest in Europe
    // (Fig. 2 bullet 1's negative side).
    if (is_student) salary -= europe ? 30000 : 20000;
    // Group-conditional interactions that make the paper's insights the
    // winning treatments:
    if (europe && age < 35 && std::string(education) == "Masters degree") {
      salary += 24000;  // Fig. 2 bullet 1 positive
    }
    if (high_gdp && std::string(role) == "C-suite executive") {
      salary += 26000;  // Fig. 2 bullet 2 positive
    }
    if (high_gdp && age > 55 &&
        std::string(education) == "Bachelors degree") {
      salary -= 22000;  // Fig. 2 bullet 2 negative
    }
    if (high_gini && std::string(ethnicity) == "White" && age < 45) {
      salary += 18000;  // Fig. 2 bullet 3 positive
    }
    if (high_gini && std::string(education) == "No formal degree") {
      salary -= 15000;  // Fig. 2 bullet 3 negative
    }
    salary += rng.NextGaussian(0, 9000);
    salary = Clamp(salary, 1000, 450000);

    size_t i = 0;
    row[i++] = Value(c.name);
    row[i++] = Value(c.continent);
    row[i++] = Value(c.hdi);
    row[i++] = Value(c.gini);
    row[i++] = Value(c.gdp);
    row[i++] = Value(gender);
    row[i++] = Value(ethnicity);
    row[i++] = Value(age);
    row[i++] = Value(education);
    row[i++] = Value(parents_edu);
    row[i++] = Value(major);
    row[i++] = Value(role);
    row[i++] = Value(years_coding);
    row[i++] = Value(is_student ? "Yes" : "No");
    row[i++] = Value(dependents ? "Yes" : "No");
    row[i++] = Value(hobby ? "Yes" : "No");
    row[i++] = Value(hours_computer);
    row[i++] = Value(exercise);
    row[i++] = Value(orientation);
    row[i++] = Value(salary);
    t.AddRow(row);
  }

  // --- Ground-truth causal DAG (Fig. 3 extended to all attributes) -------
  CausalDag& g = ds.dag;
  g.AddEdge("Country", "Salary");
  g.AddEdge("Country", "Education");
  g.AddEdge("Gender", "Salary");
  g.AddEdge("Ethnicity", "Salary");
  g.AddEdge("Age", "Education");
  g.AddEdge("Age", "YearsCoding");
  g.AddEdge("Age", "Role");
  g.AddEdge("Age", "Salary");
  g.AddEdge("Age", "Student");
  g.AddEdge("EducationParents", "Education");
  g.AddEdge("Education", "Role");
  g.AddEdge("Education", "Salary");
  g.AddEdge("Education", "Student");
  g.AddEdge("Education", "Major");
  g.AddEdge("Major", "Role");
  g.AddEdge("YearsCoding", "Role");
  g.AddEdge("YearsCoding", "Salary");
  g.AddEdge("Role", "Salary");
  g.AddEdge("Student", "Salary");
  // FD-determined country descriptors (no causal role in Salary beyond
  // Country itself, but present in the DAG as children of Country).
  g.AddEdge("Country", "Continent");
  g.AddEdge("Country", "HDI");
  g.AddEdge("Country", "Gini");
  g.AddEdge("Country", "GDP");
  // Inert attributes.
  g.AddNode("Dependents");
  g.AddNode("Hobby");
  g.AddNode("HoursComputer");
  g.AddNode("Exercise");
  g.AddNode("SexualOrientation");

  ds.default_query.group_by = {"Country"};
  ds.default_query.avg_attribute = "Salary";

  ds.style.subject_noun = "individuals";
  ds.style.outcome_noun = "annual income";
  ds.style.group_noun = "countries";
  ds.style.predicate_phrases = {
      {"Age < 35", "being under 35"},
      {"Age >= 35", "being 35 or older"},
      {"Age < 45", "being under 45"},
      {"Age > 55", "being over 55"},
      {"Student = Yes", "being a student"},
      {"Education = Masters degree", "holding a Master's degree"},
      {"Education = No formal degree", "having no formal degree"},
      {"Role = C-suite executive", "holding a C-level executive position"},
      {"Ethnicity = White", "being white"},
      {"Gender = Male", "being male"},
  };
  return ds;
}

}  // namespace causumx
