// Name-based access to all dataset replicas — the benchmark harness and
// examples iterate the paper's Table 3 through this.

#ifndef CAUSUMX_DATAGEN_REGISTRY_H_
#define CAUSUMX_DATAGEN_REGISTRY_H_

#include <string>
#include <vector>

#include "datagen/common.h"

namespace causumx {

/// Dataset names in the paper's Table 3 order:
/// German, Adult, SO, IMPUS-CPS, Accidents (+ Synthetic).
std::vector<std::string> RegisteredDatasetNames();

/// Builds a dataset by name. `scale` in (0, 1] shrinks row counts
/// proportionally (used by scalability sweeps and fast unit tests).
/// Throws std::out_of_range for unknown names.
GeneratedDataset MakeDatasetByName(const std::string& name,
                                   double scale = 1.0);

}  // namespace causumx

#endif  // CAUSUMX_DATAGEN_REGISTRY_H_
