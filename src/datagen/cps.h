// Structural-equation replica of the IPUMS-CPS (Current Population
// Survey) extract the paper uses for scalability experiments (1.1M
// tuples, 10 attributes: demographics + education + occupation + annual
// income). Query = AVG(Income) GROUP BY State with the FD
// State -> Division providing grouping patterns.
//
// Row count is configurable so the time-vs-dataset-size sweep (Fig. 11)
// can subsample; default is bench-sized with the full 1.1M reachable.

#ifndef CAUSUMX_DATAGEN_CPS_H_
#define CAUSUMX_DATAGEN_CPS_H_

#include "datagen/common.h"

namespace causumx {

struct CpsOptions {
  size_t num_rows = 300'000;  ///< paper scale: 1.1M.
  uint64_t seed = 29;
};

/// Generates the IPUMS-CPS replica.
GeneratedDataset MakeCpsDataset(const CpsOptions& options = {});

}  // namespace causumx

#endif  // CAUSUMX_DATAGEN_CPS_H_
