// The paper's synthetic schema (Section 6.1):
//
//   G, G_1..G_i, T_1..T_j, O
//
// G takes a unique value per tuple (the grouping attribute). Each G_x
// buckets G's range into a different number of buckets, so the FD
// G -> G_x holds by construction. Each T_y is uniform in {1..5}. The
// outcome is O = T_1 - T_2 + T_3 - ... (+-) T_j, so for every grouping
// pattern the best positive treatment sets odd T's high / even T's low —
// a recoverable ground truth for the accuracy experiments (Fig. 10).

#ifndef CAUSUMX_DATAGEN_SYNTHETIC_H_
#define CAUSUMX_DATAGEN_SYNTHETIC_H_

#include "datagen/common.h"

namespace causumx {

struct SyntheticOptions {
  size_t num_rows = 1000;            ///< n (paper uses n = 1k for Fig. 10).
  size_t num_grouping_attrs = 3;     ///< i.
  size_t num_treatment_attrs = 4;    ///< j.
  /// Bucket count for G_x is buckets_base * (x + 1).
  size_t buckets_base = 2;
  /// Gaussian noise added to O (0 = the paper's exact deterministic O).
  double noise_std = 0.0;
  uint64_t seed = 7;
};

/// Generates the synthetic dataset. The ground-truth DAG is T_y -> O for
/// all y (G's influence O only through selection, not causally).
GeneratedDataset MakeSyntheticDataset(const SyntheticOptions& options = {});

}  // namespace causumx

#endif  // CAUSUMX_DATAGEN_SYNTHETIC_H_
