// The paper's synthetic schema (Section 6.1):
//
//   G, G_1..G_i, T_1..T_j, O
//
// G takes a unique value per tuple (the grouping attribute). Each G_x
// buckets G's range into a different number of buckets, so the FD
// G -> G_x holds by construction. Each T_y is uniform in {1..5}. The
// outcome is O = T_1 - T_2 + T_3 - ... (+-) T_j, so for every grouping
// pattern the best positive treatment sets odd T's high / even T's low —
// a recoverable ground truth for the accuracy experiments (Fig. 10).

#ifndef CAUSUMX_DATAGEN_SYNTHETIC_H_
#define CAUSUMX_DATAGEN_SYNTHETIC_H_

#include "datagen/common.h"

namespace causumx {

struct SyntheticOptions {
  size_t num_rows = 1000;            ///< n (paper uses n = 1k for Fig. 10).
  size_t num_grouping_attrs = 3;     ///< i.
  size_t num_treatment_attrs = 4;    ///< j.
  /// Bucket count for G_x is buckets_base * (x + 1).
  size_t buckets_base = 2;
  /// Gaussian noise added to O (0 = the paper's exact deterministic O).
  double noise_std = 0.0;
  uint64_t seed = 7;
};

/// Generates the synthetic dataset. The ground-truth DAG is T_y -> O for
/// all y (G's influence O only through selection, not causally).
GeneratedDataset MakeSyntheticDataset(const SyntheticOptions& options = {});

/// A linear structural causal model with a known, planted average
/// treatment effect — the ground truth for estimator-recovery tests:
///
///   C1 ~ N(0, 1),  C2 ~ N(0, 1)                       (confounders)
///   T  ~ Bernoulli(sigmoid(confounding * (C1 + C2)))  (treatment, "0"/"1")
///   O  = ate * 1[T=1] + b1 * C1 + b2 * C2 + N(0, noise_std)
///   G  = bucket(C1) categorical                       (a grouping attr)
///
/// Because T's propensity depends on C1/C2 and both also enter O, the
/// naive treated-minus-control difference is biased by roughly
/// confounding * (b1 + b2) * E[C|T] while adjusting for {C1, C2} (the
/// backdoor set of the bundled DAG) recovers `ate`.
struct LinearScmOptions {
  size_t num_rows = 4000;
  double ate = 2.0;          ///< planted effect of T=1 on O.
  double b1 = 1.5;           ///< C1 -> O coefficient.
  double b2 = -1.0;          ///< C2 -> O coefficient.
  double confounding = 1.0;  ///< strength of C1+C2 in T's propensity.
  double noise_std = 0.5;
  size_t num_buckets = 6;    ///< buckets of G.
  uint64_t seed = 29;
};

GeneratedDataset MakeLinearScmDataset(const LinearScmOptions& options = {});

}  // namespace causumx

#endif  // CAUSUMX_DATAGEN_SYNTHETIC_H_
