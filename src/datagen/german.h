// Structural-equation replica of the UCI German Credit dataset as used in
// the paper (1000 tuples, 20 attributes; query = AVG(RiskScore) GROUP BY
// Purpose). The dataset has no FDs from Purpose, so every group needs its
// own insight (Fig. 18): per-group grouping patterns carry the summary.
//
// Planted ground truth per the published case study: a well-funded
// checking account and a duly-paid credit history raise the risk score
// (creditworthiness); long loan durations (> 48 months) lower it.

#ifndef CAUSUMX_DATAGEN_GERMAN_H_
#define CAUSUMX_DATAGEN_GERMAN_H_

#include "datagen/common.h"

namespace causumx {

struct GermanOptions {
  size_t num_rows = 1000;
  uint64_t seed = 19;
};

/// Generates the German Credit replica. Outcome `RiskScore` in [0, 1]
/// (1 = good credit).
GeneratedDataset MakeGermanDataset(const GermanOptions& options = {});

}  // namespace causumx

#endif  // CAUSUMX_DATAGEN_GERMAN_H_
