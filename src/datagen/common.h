// Shared scaffolding for the structural-equation dataset generators.
//
// The paper evaluates on five real datasets (Stack Overflow 2018, UCI
// Adult, UCI German Credit, IPUMS-CPS, US-Accidents) that are not
// redistributable here. Each generator in this directory produces a
// synthetic replica at the paper's scale with the same FD structure and a
// ground-truth causal DAG whose structural equations plant the effects the
// paper's case studies report. See DESIGN.md §3 for the substitution
// rationale.

#ifndef CAUSUMX_DATAGEN_COMMON_H_
#define CAUSUMX_DATAGEN_COMMON_H_

#include <string>
#include <vector>

#include "causal/dag.h"
#include "core/renderer.h"
#include "dataset/group_query.h"
#include "dataset/table.h"
#include "util/rng.h"

namespace causumx {

/// A generated dataset bundle: the relation, its ground-truth causal DAG,
/// the representative query from the paper's case study, and NL styling.
struct GeneratedDataset {
  std::string name;
  Table table;
  CausalDag dag;
  GroupByAvgQuery default_query;
  RenderStyle style;
  /// Optional pre-selected grouping attributes (the paper pre-selects,
  /// e.g. {Continent, HDI, Gini, GDP} for SO). Empty = derive from FDs.
  std::vector<std::string> grouping_attribute_hint;
  /// Optional pre-selected treatment attributes. Empty = all non-grouping
  /// attributes. Needed when the group-by key is unique per tuple (the
  /// synthetic schema), where every FD holds trivially.
  std::vector<std::string> treatment_attribute_hint;
};

/// Weighted categorical sampler: returns an index into `weights`.
size_t SampleCategory(Rng* rng, const std::vector<double>& weights);

/// Clamps x into [lo, hi].
double Clamp(double x, double lo, double hi);

}  // namespace causumx

#endif  // CAUSUMX_DATAGEN_COMMON_H_
