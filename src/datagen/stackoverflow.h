// Structural-equation replica of the Stack Overflow 2018 developer-survey
// subset used throughout the paper (Example 1.1: 38090 tuples, 20
// countries across 5 continents, 20 attributes, country-level economic
// indicators HDI / Gini / GDP as FD-determined grouping attributes).
//
// Planted ground truth mirrors the published case study (Fig. 2/6):
//  * Europe: Age<35 + Master's degree strongly raises Salary; being a
//    student strongly lowers it.
//  * High-GDP countries: C-level executives earn far more; Age>55 with a
//    bachelor's earns less.
//  * High-Gini countries: White respondents under 45 earn more; no formal
//    degree earns much less.
//  * Demographics (Gender/Ethnicity/Age) carry effects in every country
//    (the sensitive-attributes study, Fig. 6).

#ifndef CAUSUMX_DATAGEN_STACKOVERFLOW_H_
#define CAUSUMX_DATAGEN_STACKOVERFLOW_H_

#include "datagen/common.h"

namespace causumx {

struct StackOverflowOptions {
  size_t num_rows = 38090;  ///< the paper's subset size.
  uint64_t seed = 11;
};

/// Generates the Stack Overflow replica with its Fig. 3-style causal DAG
/// and the running-example query (AVG(Salary) GROUP BY Country).
GeneratedDataset MakeStackOverflowDataset(
    const StackOverflowOptions& options = {});

}  // namespace causumx

#endif  // CAUSUMX_DATAGEN_STACKOVERFLOW_H_
