#include "datagen/cps.h"

#include <array>

namespace causumx {

namespace {

struct StateInfo {
  const char* name;
  const char* division;  // census division; FD State -> Division
  double wage_level;
  double weight;
};

constexpr std::array<StateInfo, 16> kStates = {{
    {"California", "Pacific", 1.25, 12},
    {"Washington", "Pacific", 1.2, 3},
    {"Oregon", "Pacific", 1.05, 2},
    {"New York", "Mid-Atlantic", 1.25, 8},
    {"New Jersey", "Mid-Atlantic", 1.2, 3},
    {"Pennsylvania", "Mid-Atlantic", 1.0, 4},
    {"Massachusetts", "New England", 1.3, 3},
    {"Connecticut", "New England", 1.25, 1.5},
    {"Texas", "West South Central", 0.95, 9},
    {"Louisiana", "West South Central", 0.8, 1.5},
    {"Florida", "South Atlantic", 0.9, 7},
    {"Georgia", "South Atlantic", 0.9, 3.5},
    {"Illinois", "East North Central", 1.05, 4},
    {"Ohio", "East North Central", 0.9, 4},
    {"Michigan", "East North Central", 0.92, 3},
    {"Mississippi", "East South Central", 0.7, 1},
}};

constexpr const char* kEducation[] = {
    "No diploma", "High school", "Some college", "Bachelors", "Advanced",
};

constexpr const char* kOccupations[] = {
    "Management", "Professional", "Service", "Sales", "Office-admin",
    "Construction", "Production", "Transportation",
};

}  // namespace

GeneratedDataset MakeCpsDataset(const CpsOptions& opt) {
  GeneratedDataset ds;
  ds.name = "IMPUS-CPS";
  Rng rng(opt.seed);

  Table& t = ds.table;
  t.AddColumn("State", ColumnType::kCategorical);
  t.AddColumn("Division", ColumnType::kCategorical);
  t.AddColumn("Age", ColumnType::kInt64);
  t.AddColumn("Sex", ColumnType::kCategorical);
  t.AddColumn("Race", ColumnType::kCategorical);
  t.AddColumn("MaritalStatus", ColumnType::kCategorical);
  t.AddColumn("Education", ColumnType::kCategorical);
  t.AddColumn("Occupation", ColumnType::kCategorical);
  t.AddColumn("HoursPerWeek", ColumnType::kInt64);
  t.AddColumn("Income", ColumnType::kDouble);
  t.ReserveRows(opt.num_rows);

  std::vector<double> state_w;
  for (const auto& s : kStates) state_w.push_back(s.weight);

  std::vector<Value> row(t.NumColumns());
  for (size_t r = 0; r < opt.num_rows; ++r) {
    const StateInfo& state = kStates[SampleCategory(&rng, state_w)];
    const int64_t age =
        static_cast<int64_t>(Clamp(rng.NextGaussian(42, 13), 18, 80));
    const char* sex = rng.NextBool(0.52) ? "Male" : "Female";
    const char* race = rng.NextBool(0.72) ? "White"
                       : rng.NextBool(0.5) ? "Black"
                                           : "Other";
    const char* marital = age < 27   ? (rng.NextBool(0.75) ? "Never-married"
                                                           : "Married")
                          : age > 60 ? (rng.NextBool(0.7) ? "Married"
                                                          : "Widowed")
                                     : (rng.NextBool(0.6) ? "Married"
                                                          : "Divorced");

    double edu_score = rng.NextGaussian(0, 1);
    if (age >= 26) edu_score += 0.25;
    const size_t edu_idx = edu_score < -1.1  ? 0
                           : edu_score < 0.0 ? 1
                           : edu_score < 0.8 ? 2
                           : edu_score < 1.6 ? 3
                                             : 4;
    const char* education = kEducation[edu_idx];

    std::vector<double> occ_w = {1.2, 1.6, 2.2, 1.4, 1.6, 1.2, 1.2, 1.0};
    if (edu_idx >= 3) {
      occ_w[0] *= 3.2;
      occ_w[1] *= 3.6;
      occ_w[5] *= 0.3;
      occ_w[6] *= 0.3;
    }
    const size_t occ_idx = SampleCategory(&rng, occ_w);
    const char* occupation = kOccupations[occ_idx];

    const int64_t hours =
        static_cast<int64_t>(Clamp(rng.NextGaussian(39, 9), 5, 90));

    // Income structural equation.
    double income = 28000.0 * state.wage_level;
    income += 7000.0 * static_cast<double>(edu_idx);
    static constexpr double kOccBoost[] = {26000, 24000, -6000, 4000,
                                           0,     6000,  2000,  1000};
    income += kOccBoost[occ_idx];
    if (std::string(sex) == "Male") income += 6000;
    if (std::string(marital) == "Married") income += 5000;
    income += 350.0 * (static_cast<double>(age) - 18.0);
    if (age > 62) income -= 9000;
    income += 420.0 * (static_cast<double>(hours) - 39.0);
    income += rng.NextGaussian(0, 9000);
    income = Clamp(income, 2000, 400000);

    size_t i = 0;
    row[i++] = Value(state.name);
    row[i++] = Value(state.division);
    row[i++] = Value(age);
    row[i++] = Value(sex);
    row[i++] = Value(race);
    row[i++] = Value(marital);
    row[i++] = Value(education);
    row[i++] = Value(occupation);
    row[i++] = Value(hours);
    row[i++] = Value(income);
    t.AddRow(row);
  }

  CausalDag& g = ds.dag;
  g.AddEdge("State", "Division");
  g.AddEdge("State", "Income");
  g.AddEdge("Age", "Education");
  g.AddEdge("Age", "MaritalStatus");
  g.AddEdge("Age", "Income");
  g.AddEdge("Sex", "Income");
  g.AddEdge("Race", "Income");
  g.AddEdge("MaritalStatus", "Income");
  g.AddEdge("Education", "Occupation");
  g.AddEdge("Education", "Income");
  g.AddEdge("Occupation", "Income");
  g.AddEdge("HoursPerWeek", "Income");

  ds.default_query.group_by = {"State"};
  ds.default_query.avg_attribute = "Income";

  ds.style.subject_noun = "workers";
  ds.style.outcome_noun = "annual income";
  ds.style.group_noun = "states";
  ds.style.predicate_phrases = {
      {"Education = Advanced", "holding an advanced degree"},
      {"MaritalStatus = Married", "being married"},
      {"Occupation = Management", "working in management"},
      {"Occupation = Professional", "working in a professional occupation"},
  };
  return ds;
}

}  // namespace causumx
