#include "datagen/common.h"

#include <algorithm>

namespace causumx {

size_t SampleCategory(Rng* rng, const std::vector<double>& weights) {
  return rng->NextWeighted(weights);
}

double Clamp(double x, double lo, double hi) {
  return std::min(hi, std::max(lo, x));
}

}  // namespace causumx
