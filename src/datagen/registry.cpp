#include "datagen/registry.h"

#include <algorithm>
#include <stdexcept>

#include "datagen/accidents.h"
#include "datagen/adult.h"
#include "datagen/cps.h"
#include "datagen/german.h"
#include "datagen/stackoverflow.h"
#include "datagen/synthetic.h"

namespace causumx {

std::vector<std::string> RegisteredDatasetNames() {
  return {"German", "Adult", "SO", "IMPUS-CPS", "Accidents", "Synthetic"};
}

GeneratedDataset MakeDatasetByName(const std::string& name, double scale) {
  auto scaled = [scale](size_t rows) {
    return std::max<size_t>(100, static_cast<size_t>(rows * scale));
  };
  if (name == "German") {
    GermanOptions opt;
    opt.num_rows = scaled(opt.num_rows);
    return MakeGermanDataset(opt);
  }
  if (name == "Adult") {
    AdultOptions opt;
    opt.num_rows = scaled(opt.num_rows);
    return MakeAdultDataset(opt);
  }
  if (name == "SO") {
    StackOverflowOptions opt;
    opt.num_rows = scaled(opt.num_rows);
    return MakeStackOverflowDataset(opt);
  }
  if (name == "IMPUS-CPS") {
    CpsOptions opt;
    opt.num_rows = scaled(opt.num_rows);
    return MakeCpsDataset(opt);
  }
  if (name == "Accidents") {
    AccidentsOptions opt;
    opt.num_rows = scaled(opt.num_rows);
    return MakeAccidentsDataset(opt);
  }
  if (name == "Synthetic") {
    SyntheticOptions opt;
    opt.num_rows = scaled(opt.num_rows);
    return MakeSyntheticDataset(opt);
  }
  throw std::out_of_range("unknown dataset: " + name);
}

}  // namespace causumx
