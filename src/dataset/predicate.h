// Simple predicates `A op v` (Definition 4.1 in the paper).

#ifndef CAUSUMX_DATASET_PREDICATE_H_
#define CAUSUMX_DATASET_PREDICATE_H_

#include <string>

#include "dataset/table.h"
#include "dataset/value.h"

namespace causumx {

/// Comparison operators allowed in simple predicates.
enum class CompareOp { kEq, kLt, kGt, kLe, kGe };

/// Symbol for an operator ("=", "<", ">", "<=", ">=").
const char* CompareOpSymbol(CompareOp op);

/// A simple predicate: `attribute op constant`.
///
/// Evaluation against categorical columns resolves the constant to a
/// dictionary code once per table (see PredicateEvaluator in pattern.h for
/// the batched path); Matches() here is the row-at-a-time reference path.
struct SimplePredicate {
  std::string attribute;
  CompareOp op = CompareOp::kEq;
  Value value;

  SimplePredicate() = default;
  SimplePredicate(std::string attr, CompareOp o, Value v)
      : attribute(std::move(attr)), op(o), value(std::move(v)) {}

  /// Row-at-a-time evaluation. Null cells never match.
  bool Matches(const Table& table, size_t row) const;

  /// "Age < 35" style rendering.
  std::string ToString() const;

  bool operator==(const SimplePredicate& other) const;

  /// Total order (by attribute, op, value) used to canonicalize patterns.
  bool Less(const SimplePredicate& other) const;
};

}  // namespace causumx

#endif  // CAUSUMX_DATASET_PREDICATE_H_
