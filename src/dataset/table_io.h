// On-disk columnar table format.
//
// A table file is a snapshot container (storage/snapshot.h) of kind
// "causumx-table": a schema section plus one section per column, each
// encoded in compressed segments aligned to the 64-row summation blocks
// the engine's ShardPlan uses —
//
//   int64        64-row frame-of-reference blocks: null mask, zigzag
//                varint minimum, bit width, bit-packed deltas
//   double       raw IEEE-754 bit patterns (NaN nulls in-band)
//   categorical  the dictionary verbatim, then 64-row blocks of
//                bit-packed (code + 1) with per-block bit width
//
// Decoding rebuilds the table through the normal append path, so a
// restored table is structurally identical to re-parsing the source
// rows (same dictionary order, same sentinels) and hashes equal under
// TableContentHash — which the reader verifies against the stored key
// before returning.

#ifndef CAUSUMX_DATASET_TABLE_IO_H_
#define CAUSUMX_DATASET_TABLE_IO_H_

#include <cstdint>
#include <string>

#include "dataset/table.h"

namespace causumx {

/// Order-sensitive FNV-1a content hash over schema and cells (names,
/// types, sentinels, dictionary order included). Two tables compare
/// equal under this hash iff they would behave identically everywhere
/// downstream; it is the first component of every snapshot key.
uint64_t TableContentHash(const Table& table);

/// Serializes `table` into columnar container bytes.
std::string SerializeTable(const Table& table);

/// Serializes and writes durably (write-to-temp + fsync + atomic
/// rename). Throws StorageError(kIo) on failure.
void WriteTableFile(const Table& table, const std::string& path);

/// Parses container bytes back into a table. Throws StorageError —
/// kCorrupt for structural damage (bad magic/CRC/encoding, or a content
/// hash that does not match the stored key), kStale for format-version
/// skew. The returned table has version 0, like a freshly parsed CSV.
Table DeserializeTable(const std::string& bytes);

/// ReadFileBytes + DeserializeTable.
Table ReadTableFile(const std::string& path);

}  // namespace causumx

#endif  // CAUSUMX_DATASET_TABLE_IO_H_
