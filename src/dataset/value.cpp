#include "dataset/value.h"

#include <cmath>
#include <stdexcept>

#include "util/string_utils.h"

namespace causumx {

const char* ColumnTypeName(ColumnType t) {
  switch (t) {
    case ColumnType::kInt64:
      return "int64";
    case ColumnType::kDouble:
      return "double";
    case ColumnType::kCategorical:
      return "categorical";
  }
  return "?";
}

double Value::AsDouble() const {
  if (is_double()) return std::get<double>(v_);
  if (is_int()) return static_cast<double>(std::get<int64_t>(v_));
  throw std::logic_error("Value::AsDouble on non-numeric value");
}

bool Value::Equals(const Value& other) const {
  if (is_null() || other.is_null()) return false;
  if (is_string() != other.is_string()) return false;
  if (is_string()) return AsString() == other.AsString();
  return AsDouble() == other.AsDouble();
}

int Value::Compare(const Value& other) const {
  if (is_string() && other.is_string()) {
    return AsString().compare(other.AsString());
  }
  const double a = AsDouble(), b = other.AsDouble();
  if (a < b) return -1;
  if (a > b) return 1;
  return 0;
}

std::string Value::ToString() const {
  if (is_null()) return "<null>";
  if (is_int()) return std::to_string(AsInt());
  if (is_double()) return FormatDouble(std::get<double>(v_), 6);
  return AsString();
}

}  // namespace causumx
