// Scalar value type for cells, predicate constants, and group keys.

#ifndef CAUSUMX_DATASET_VALUE_H_
#define CAUSUMX_DATASET_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

namespace causumx {

/// Logical column types.
///
/// kCategorical columns are dictionary-encoded strings; kInt64 and kDouble
/// are numeric. Grouping-pattern attributes must be categorical or integer
/// (they need exact equality); treatment attributes may be any type.
enum class ColumnType {
  kInt64,
  kDouble,
  kCategorical,
};

/// Returns a human-readable name ("int64", "double", "categorical").
const char* ColumnTypeName(ColumnType t);

/// A dynamically typed scalar: null, int64, double, or string.
class Value {
 public:
  Value() : v_(std::monostate{}) {}
  explicit Value(int64_t i) : v_(i) {}
  explicit Value(double d) : v_(d) {}
  explicit Value(std::string s) : v_(std::move(s)) {}
  explicit Value(const char* s) : v_(std::string(s)) {}

  bool is_null() const { return std::holds_alternative<std::monostate>(v_); }
  bool is_int() const { return std::holds_alternative<int64_t>(v_); }
  bool is_double() const { return std::holds_alternative<double>(v_); }
  bool is_string() const { return std::holds_alternative<std::string>(v_); }

  int64_t AsInt() const { return std::get<int64_t>(v_); }
  double AsDouble() const;
  const std::string& AsString() const { return std::get<std::string>(v_); }

  /// True when both are non-null and numerically / lexically equal.
  /// Ints and doubles compare numerically across types.
  bool Equals(const Value& other) const;

  /// Three-way compare for non-null values of compatible types; strings
  /// compare lexically, numerics numerically. Returns <0, 0, >0.
  int Compare(const Value& other) const;

  /// Display form ("<null>" for null).
  std::string ToString() const;

  bool operator==(const Value& other) const { return Equals(other); }

 private:
  std::variant<std::monostate, int64_t, double, std::string> v_;
};

}  // namespace causumx

#endif  // CAUSUMX_DATASET_VALUE_H_
