// CSV import/export for Table.
//
// The paper's datasets arrive as CSV; our generators can also round-trip
// through this reader so users can plug in their own data.

#ifndef CAUSUMX_DATASET_CSV_H_
#define CAUSUMX_DATASET_CSV_H_

#include <iosfwd>
#include <string>
#include <vector>

#include "dataset/table.h"

namespace causumx {

/// Options controlling CSV parsing.
struct CsvOptions {
  char delimiter = ',';
  /// When true (default), column types are inferred from the first
  /// `type_inference_rows` data rows: all-integer -> int64, all-numeric ->
  /// double, otherwise categorical.
  bool infer_types = true;
  size_t type_inference_rows = 1000;
  /// Strings treated as null cells.
  std::vector<std::string> null_tokens = {"", "NA", "null", "NULL"};
};

/// Parses CSV text (first line = header) into a Table.
/// Throws std::runtime_error on ragged rows.
Table ReadCsv(std::istream& in, const CsvOptions& options = {});

/// Reads a CSV file from disk. Throws on I/O failure.
Table ReadCsvFile(const std::string& path, const CsvOptions& options = {});

/// Parses delta rows against an existing table's schema (the streaming
/// append path). The header must name exactly the table's columns, in
/// any order; cells parse with the schema's declared types — no type
/// inference — and an unparsable numeric cell throws instead of being
/// silently nulled (the base schema is fixed, so the reader cannot
/// demote a column the way ReadCsv does). Returns rows in schema order,
/// ready for Table::AppendRows.
std::vector<std::vector<Value>> ReadCsvDelta(const Table& schema,
                                             std::istream& in,
                                             const CsvOptions& options = {});

/// As ReadCsvDelta over a file path. Throws on I/O failure.
std::vector<std::vector<Value>> ReadCsvDeltaFile(
    const Table& schema, const std::string& path,
    const CsvOptions& options = {});

/// Writes a table as CSV (header + rows).
void WriteCsv(const Table& table, std::ostream& out, char delimiter = ',');

/// Writes a table to a CSV file. Throws on I/O failure.
void WriteCsvFile(const Table& table, const std::string& path,
                  char delimiter = ',');

}  // namespace causumx

#endif  // CAUSUMX_DATASET_CSV_H_
