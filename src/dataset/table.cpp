#include "dataset/table.h"

#include <algorithm>
#include <stdexcept>

namespace causumx {

size_t Table::AddColumn(const std::string& name, ColumnType type) {
  if (num_rows_ > 0) {
    throw std::logic_error("AddColumn after rows were appended");
  }
  if (index_.count(name)) {
    throw std::logic_error("duplicate column name: " + name);
  }
  const size_t idx = columns_.size();
  columns_.push_back(std::make_unique<Column>(name, type));
  index_.emplace(name, idx);
  return idx;
}

void Table::AddRow(const std::vector<Value>& values) {
  if (values.size() != columns_.size()) {
    throw std::logic_error("row arity mismatch");
  }
  for (size_t i = 0; i < values.size(); ++i) {
    columns_[i]->AppendValue(values[i]);
  }
  ++num_rows_;
}

void Table::AppendRows(const std::vector<std::vector<Value>>& rows) {
  // Validate the whole batch before touching any column so a bad row
  // cannot leave the table half-appended.
  for (size_t i = 0; i < rows.size(); ++i) {
    if (rows[i].size() != columns_.size()) {
      throw std::invalid_argument(
          "AppendRows: row " + std::to_string(i) + " has " +
          std::to_string(rows[i].size()) + " values, expected " +
          std::to_string(columns_.size()));
    }
    for (size_t c = 0; c < rows[i].size(); ++c) {
      const Value& v = rows[i][c];
      if (v.is_null()) continue;
      if (columns_[c]->type() != ColumnType::kCategorical && v.is_string()) {
        throw std::invalid_argument(
            "AppendRows: row " + std::to_string(i) + " column '" +
            columns_[c]->name() + "': string value in a " +
            ColumnTypeName(columns_[c]->type()) + " column");
      }
    }
  }
  for (auto& c : columns_) c->Reserve(num_rows_ + rows.size());
  for (const auto& row : rows) {
    for (size_t c = 0; c < row.size(); ++c) {
      columns_[c]->AppendValue(row[c]);
    }
    ++num_rows_;
  }
  ++version_;
}

Table Table::Clone() const {
  Table out;
  out.columns_.reserve(columns_.size());
  for (const auto& c : columns_) {
    out.columns_.push_back(std::make_unique<Column>(*c));
  }
  out.index_ = index_;
  out.num_rows_ = num_rows_;
  out.version_ = version_;
  return out;
}

Table Table::Head(size_t n) const {
  std::vector<size_t> rows(std::min(n, num_rows_));
  for (size_t i = 0; i < rows.size(); ++i) rows[i] = i;
  return SelectRows(rows);
}

Table Table::Tail(size_t begin) const {
  begin = std::min(begin, num_rows_);
  std::vector<size_t> rows(num_rows_ - begin);
  for (size_t i = 0; i < rows.size(); ++i) rows[i] = begin + i;
  return SelectRows(rows);
}

std::vector<std::vector<Value>> Table::MaterializeRows(size_t begin,
                                                       size_t end) const {
  end = std::min(end, num_rows_);
  std::vector<std::vector<Value>> rows;
  rows.reserve(end > begin ? end - begin : 0);
  for (size_t r = begin; r < end; ++r) {
    std::vector<Value> row;
    row.reserve(columns_.size());
    for (const auto& c : columns_) row.push_back(c->GetValue(r));
    rows.push_back(std::move(row));
  }
  return rows;
}

std::optional<size_t> Table::ColumnIndex(const std::string& name) const {
  auto it = index_.find(name);
  if (it == index_.end()) return std::nullopt;
  return it->second;
}

const Column& Table::column(const std::string& name) const {
  auto idx = ColumnIndex(name);
  if (!idx) throw std::out_of_range("unknown column: " + name);
  return *columns_[*idx];
}

std::vector<std::string> Table::ColumnNames() const {
  std::vector<std::string> names;
  names.reserve(columns_.size());
  for (const auto& c : columns_) names.push_back(c->name());
  return names;
}

Table Table::SelectRows(const std::vector<size_t>& rows) const {
  Table out;
  for (const auto& c : columns_) out.AddColumn(c->name(), c->type());
  out.ReserveRows(rows.size());
  for (size_t r : rows) {
    for (size_t i = 0; i < columns_.size(); ++i) {
      const Column& src = *columns_[i];
      Column& dst = *out.columns_[i];
      if (src.IsNull(r)) {
        dst.AppendNull();
        continue;
      }
      switch (src.type()) {
        case ColumnType::kInt64:
          dst.AppendInt(src.GetInt(r));
          break;
        case ColumnType::kDouble:
          dst.AppendDouble(src.GetDouble(r));
          break;
        case ColumnType::kCategorical:
          dst.AppendCategorical(src.DictString(src.GetCode(r)));
          break;
      }
    }
    ++out.num_rows_;
  }
  return out;
}

Table Table::SelectColumns(const std::vector<std::string>& names) const {
  Table out;
  std::vector<size_t> src_idx;
  src_idx.reserve(names.size());
  for (const auto& n : names) {
    auto idx = ColumnIndex(n);
    if (!idx) throw std::out_of_range("unknown column: " + n);
    src_idx.push_back(*idx);
    out.AddColumn(n, columns_[*idx]->type());
  }
  out.ReserveRows(num_rows_);
  for (size_t r = 0; r < num_rows_; ++r) {
    for (size_t j = 0; j < src_idx.size(); ++j) {
      const Column& src = *columns_[src_idx[j]];
      Column& dst = *out.columns_[j];
      if (src.IsNull(r)) {
        dst.AppendNull();
        continue;
      }
      switch (src.type()) {
        case ColumnType::kInt64:
          dst.AppendInt(src.GetInt(r));
          break;
        case ColumnType::kDouble:
          dst.AppendDouble(src.GetDouble(r));
          break;
        case ColumnType::kCategorical:
          dst.AppendCategorical(src.DictString(src.GetCode(r)));
          break;
      }
    }
  }
  out.num_rows_ = num_rows_;
  return out;
}

void Table::ReserveRows(size_t n) {
  for (auto& c : columns_) c->Reserve(n);
}

}  // namespace causumx
