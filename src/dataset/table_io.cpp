#include "dataset/table_io.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include "storage/bytes.h"
#include "storage/file_io.h"
#include "storage/snapshot.h"
#include "storage/storage_error.h"
#include "util/string_utils.h"

namespace causumx {
namespace {

constexpr const char* kTableKind = "causumx-table";
constexpr uint32_t kTableFormatVersion = 1;

// Rows per encoded block — the same 64-row granularity as the engine's
// summation blocks, so segment boundaries line up across the stack.
constexpr size_t kBlockRows = 64;

[[noreturn]] void Corrupt(const char* what) {
  throw StorageError(StorageErrorKind::kCorrupt,
                     std::string("table file: ") + what);
}

int BitWidth(uint64_t max_value) {
  return max_value == 0 ? 0 : 64 - std::countl_zero(max_value);
}

// Packs 64 `width`-bit values into `width` little-endian words.
void PackBlock(const uint64_t* vals, int width, ByteWriter* w) {
  if (width == 0) return;
  uint64_t words[64] = {0};
  for (size_t i = 0; i < kBlockRows; ++i) {
    const size_t bitpos = i * static_cast<size_t>(width);
    const size_t wd = bitpos >> 6;
    const size_t off = bitpos & 63;
    words[wd] |= vals[i] << off;
    if (off + static_cast<size_t>(width) > 64) {
      words[wd + 1] |= vals[i] >> (64 - off);
    }
  }
  for (int j = 0; j < width; ++j) w->PutU64(words[j]);
}

// Inverse of PackBlock.
void UnpackBlock(ByteReader* r, int width, uint64_t* vals) {
  if (width == 0) {
    std::fill(vals, vals + kBlockRows, uint64_t{0});
    return;
  }
  uint64_t words[64];
  for (int j = 0; j < width; ++j) words[j] = r->GetU64();
  const uint64_t mask =
      width == 64 ? ~uint64_t{0} : (uint64_t{1} << width) - 1;
  for (size_t i = 0; i < kBlockRows; ++i) {
    const size_t bitpos = i * static_cast<size_t>(width);
    const size_t wd = bitpos >> 6;
    const size_t off = bitpos & 63;
    uint64_t v = words[wd] >> off;
    if (off + static_cast<size_t>(width) > 64) {
      v |= words[wd + 1] << (64 - off);
    }
    vals[i] = v & mask;
  }
}

// int64 columns: 64-row frame-of-reference blocks. Per block: null
// mask, zigzag-varint minimum over the non-null values, bit width, and
// bit-packed unsigned deltas from the minimum (null slots pack as 0).
std::string EncodeInt64Column(const int64_t* v, size_t n) {
  ByteWriter w;
  for (size_t b = 0; b < n; b += kBlockRows) {
    const size_t m = std::min(kBlockRows, n - b);
    uint64_t null_mask = 0;
    int64_t mn = 0;
    bool any = false;
    for (size_t i = 0; i < m; ++i) {
      if (v[b + i] == Column::kNullInt) {
        null_mask |= uint64_t{1} << i;
      } else if (!any || v[b + i] < mn) {
        mn = v[b + i];
        any = true;
      }
    }
    uint64_t deltas[kBlockRows] = {0};
    uint64_t max_delta = 0;
    for (size_t i = 0; i < m; ++i) {
      if ((null_mask >> i) & 1) continue;
      const uint64_t d =
          static_cast<uint64_t>(v[b + i]) - static_cast<uint64_t>(mn);
      deltas[i] = d;
      max_delta = std::max(max_delta, d);
    }
    const int width = BitWidth(max_delta);
    w.PutU64(null_mask);
    w.PutVarintSigned(any ? mn : 0);
    w.PutU8(static_cast<uint8_t>(width));
    PackBlock(deltas, width, &w);
  }
  return w.TakeBytes();
}

// double columns: raw IEEE-754 bit patterns (NaN nulls travel in-band,
// bit-exact).
std::string EncodeDoubleColumn(const double* v, size_t n) {
  ByteWriter w;
  for (size_t i = 0; i < n; ++i) w.PutDouble(v[i]);
  return w.TakeBytes();
}

// categorical columns: the dictionary verbatim, then 64-row blocks of
// bit-packed (code + 1) with a per-block width (null code -1 packs as 0).
std::string EncodeCategoricalColumn(const Column& col, size_t n) {
  ByteWriter w;
  const auto& dict = col.dictionary();
  w.PutVarint(dict.size());
  for (const std::string& s : dict) w.PutString(s);
  const int32_t* codes = col.codes_data();
  for (size_t b = 0; b < n; b += kBlockRows) {
    const size_t m = std::min(kBlockRows, n - b);
    uint64_t vals[kBlockRows] = {0};
    uint64_t max_val = 0;
    for (size_t i = 0; i < m; ++i) {
      vals[i] = static_cast<uint64_t>(static_cast<int64_t>(codes[b + i]) + 1);
      max_val = std::max(max_val, vals[i]);
    }
    const int width = BitWidth(max_val);
    w.PutU8(static_cast<uint8_t>(width));
    PackBlock(vals, width, &w);
  }
  return w.TakeBytes();
}

std::string TableKey(const Table& table, uint64_t hash) {
  return StrFormat("h%016llx|v%llu|r%llu",
                   static_cast<unsigned long long>(hash),
                   static_cast<unsigned long long>(table.version()),
                   static_cast<unsigned long long>(table.NumRows()));
}

}  // namespace

uint64_t TableContentHash(const Table& table) {
  uint64_t h = 1469598103934665603ull;  // FNV-1a offset basis
  auto mix = [&h](const void* data, size_t len) {
    const auto* p = static_cast<const unsigned char*>(data);
    for (size_t i = 0; i < len; ++i) {
      h ^= p[i];
      h *= 1099511628211ull;
    }
  };
  auto mix_u64 = [&](uint64_t v) { mix(&v, sizeof(v)); };
  auto mix_str = [&](const std::string& s) {
    mix_u64(s.size());
    mix(s.data(), s.size());
  };

  mix_u64(table.NumRows());
  mix_u64(table.NumColumns());
  for (size_t c = 0; c < table.NumColumns(); ++c) {
    const Column& col = table.column(c);
    mix_str(col.name());
    mix_u64(static_cast<uint64_t>(col.type()));
    const size_t n = table.NumRows();
    switch (col.type()) {
      case ColumnType::kInt64:
        mix(col.ints_data(), n * sizeof(int64_t));
        break;
      case ColumnType::kDouble:
        // Bit patterns, so NaN nulls hash stably.
        mix(col.doubles_data(), n * sizeof(double));
        break;
      case ColumnType::kCategorical:
        mix(col.codes_data(), n * sizeof(int32_t));
        mix_u64(col.dictionary().size());
        for (const std::string& s : col.dictionary()) mix_str(s);
        break;
    }
  }
  return h;
}

std::string SerializeTable(const Table& table) {
  const size_t n = table.NumRows();

  ByteWriter schema;
  schema.PutVarint(n);
  schema.PutVarint(table.NumColumns());
  for (size_t c = 0; c < table.NumColumns(); ++c) {
    schema.PutString(table.column(c).name());
    schema.PutU8(static_cast<uint8_t>(table.column(c).type()));
  }

  SnapshotWriter out(kTableKind, kTableFormatVersion,
                     TableKey(table, TableContentHash(table)));
  out.AddSection("schema", schema.TakeBytes());
  for (size_t c = 0; c < table.NumColumns(); ++c) {
    const Column& col = table.column(c);
    std::string payload;
    switch (col.type()) {
      case ColumnType::kInt64:
        payload = EncodeInt64Column(col.ints_data(), n);
        break;
      case ColumnType::kDouble:
        payload = EncodeDoubleColumn(col.doubles_data(), n);
        break;
      case ColumnType::kCategorical:
        payload = EncodeCategoricalColumn(col, n);
        break;
    }
    out.AddSection(StrFormat("col/%llu", static_cast<unsigned long long>(c)),
                   std::move(payload));
  }
  return out.Serialize();
}

void WriteTableFile(const Table& table, const std::string& path) {
  WriteFileDurable(path, SerializeTable(table));
}

Table DeserializeTable(const std::string& bytes) {
  const SnapshotReader snap =
      SnapshotReader::Parse(bytes, kTableKind, kTableFormatVersion);

  ByteReader schema(snap.Section("schema"));
  const uint64_t n = schema.GetVarint();
  const uint64_t n_cols = schema.GetVarint();
  // Plausibility bounds before any allocation is sized from the header:
  // a row costs at least a packed bit per column, a column at least a
  // couple of header bytes.
  if (n > bytes.size() * 64 || n_cols > bytes.size()) {
    Corrupt("implausible row/column count");
  }

  Table table;
  std::vector<ColumnType> types;
  types.reserve(n_cols);
  for (uint64_t c = 0; c < n_cols; ++c) {
    const std::string name = schema.GetString();
    const uint8_t t = schema.GetU8();
    if (t > static_cast<uint8_t>(ColumnType::kCategorical)) {
      Corrupt("unknown column type");
    }
    types.push_back(static_cast<ColumnType>(t));
    table.AddColumn(name, types.back());
  }
  if (!schema.AtEnd()) Corrupt("trailing bytes in schema");

  // Decode every column into value rows, then rebuild through the
  // normal append path so dictionaries intern in first-occurrence order
  // exactly as the original build did.
  std::vector<std::vector<Value>> cells(n_cols);
  for (uint64_t c = 0; c < n_cols; ++c) {
    ByteReader r(snap.Section(
        StrFormat("col/%llu", static_cast<unsigned long long>(c))));
    std::vector<Value>& out = cells[c];
    out.reserve(n);
    switch (types[c]) {
      case ColumnType::kInt64: {
        for (uint64_t b = 0; b < n; b += kBlockRows) {
          const size_t m = static_cast<size_t>(
              std::min<uint64_t>(kBlockRows, n - b));
          const uint64_t null_mask = r.GetU64();
          const int64_t mn = r.GetVarintSigned();
          const uint8_t width = r.GetU8();
          if (width > 64) Corrupt("int block width out of range");
          uint64_t deltas[kBlockRows];
          UnpackBlock(&r, width, deltas);
          for (size_t i = 0; i < m; ++i) {
            if ((null_mask >> i) & 1) {
              out.emplace_back();
            } else {
              const int64_t v = static_cast<int64_t>(
                  static_cast<uint64_t>(mn) + deltas[i]);
              if (v == Column::kNullInt) Corrupt("int value is the null sentinel");
              out.emplace_back(v);
            }
          }
        }
        break;
      }
      case ColumnType::kDouble: {
        for (uint64_t i = 0; i < n; ++i) {
          const double v = r.GetDouble();
          if (std::isnan(v)) {
            out.emplace_back();
          } else {
            out.emplace_back(v);
          }
        }
        break;
      }
      case ColumnType::kCategorical: {
        const uint64_t dict_size = r.GetVarint();
        if (dict_size > r.remaining() + 1) Corrupt("implausible dictionary");
        std::vector<std::string> dict;
        dict.reserve(dict_size);
        for (uint64_t i = 0; i < dict_size; ++i) dict.push_back(r.GetString());
        for (uint64_t b = 0; b < n; b += kBlockRows) {
          const size_t m = static_cast<size_t>(
              std::min<uint64_t>(kBlockRows, n - b));
          const uint8_t width = r.GetU8();
          if (width > 64) Corrupt("code block width out of range");
          uint64_t vals[kBlockRows];
          UnpackBlock(&r, width, vals);
          for (size_t i = 0; i < m; ++i) {
            if (vals[i] == 0) {
              out.emplace_back();
            } else if (vals[i] > dict_size) {
              Corrupt("code out of dictionary range");
            } else {
              out.emplace_back(dict[vals[i] - 1]);
            }
          }
        }
        break;
      }
    }
    if (!r.AtEnd()) Corrupt("trailing bytes in column section");
  }

  table.ReserveRows(n);
  std::vector<Value> row(n_cols);
  for (uint64_t i = 0; i < n; ++i) {
    for (uint64_t c = 0; c < n_cols; ++c) row[c] = std::move(cells[c][i]);
    table.AddRow(row);
  }

  // The stored key pins the content hash of the table that was written;
  // recomputing over what we decoded closes the loop on any damage the
  // per-page CRCs cannot see (e.g. a tampered dictionary with a fixed-up
  // checksum).
  if (TableKey(table, TableContentHash(table)).substr(0, 17) !=
      snap.key().substr(0, 17)) {
    Corrupt("content hash does not match stored key");
  }
  return table;
}

Table ReadTableFile(const std::string& path) {
  return DeserializeTable(ReadFileBytes(path));
}

}  // namespace causumx
