// Conjunctive patterns (Definition 4.1) and batched evaluation.

#ifndef CAUSUMX_DATASET_PATTERN_H_
#define CAUSUMX_DATASET_PATTERN_H_

#include <string>
#include <vector>

#include "dataset/predicate.h"
#include "util/bitset.h"

namespace causumx {

/// Batched evaluation of one atomic predicate over the row range
/// [begin, end): bit i of the returned (end - begin)-bit bitset is set
/// iff row (begin + i) matches `pred`. Agrees bit-for-bit with
/// SimplePredicate::Matches on every row, including the degenerate
/// cases (null cells, absent dictionary constants, NaN / non-numeric
/// comparison constants). The column pointer and the typed comparator
/// are resolved once per call — the row loop is a word-wise pass
/// through the kernel layer (util/kernels.h), not a per-row virtual
/// dispatch. This is the per-shard segment builder of the EvalEngine.
Bitset EvaluatePredicateRange(const Table& table, const SimplePredicate& pred,
                              size_t begin, size_t end);

/// A conjunction of simple predicates, kept in canonical (sorted) order so
/// that structurally equal patterns compare equal.
class Pattern {
 public:
  Pattern() = default;
  explicit Pattern(std::vector<SimplePredicate> preds);

  /// The always-true empty pattern.
  bool IsEmpty() const { return preds_.empty(); }
  size_t Size() const { return preds_.size(); }

  const std::vector<SimplePredicate>& predicates() const { return preds_; }

  /// Returns a new pattern with `p` added (canonicalized). If the pattern
  /// already constrains p.attribute, the result still contains both
  /// predicates (e.g. Age > 20 AND Age < 35 is a valid range).
  Pattern With(const SimplePredicate& p) const;

  /// True iff this pattern mentions `attribute`.
  bool UsesAttribute(const std::string& attribute) const;

  /// Attributes mentioned (deduplicated, sorted).
  std::vector<std::string> Attributes() const;

  /// Row-at-a-time evaluation: all predicates must match.
  /// The empty pattern matches every row.
  bool Matches(const Table& table, size_t row) const;

  /// Batched evaluation over an entire table; bit i set iff row i matches.
  Bitset Evaluate(const Table& table) const;

  /// Batched evaluation of the row range [begin, end): bit i of the
  /// returned (end - begin)-bit bitset is set iff row (begin + i)
  /// matches. The per-shard segment builder of the sharded EvalEngine;
  /// agrees bit-for-bit with Evaluate on the same rows.
  Bitset EvaluateRange(const Table& table, size_t begin, size_t end) const;

  /// Batched evaluation restricted to rows where `mask` is set.
  Bitset EvaluateOn(const Table& table, const Bitset& mask) const;

  /// "Age < 35 AND Education = Masters" rendering ("TRUE" when empty).
  std::string ToString() const;

  bool operator==(const Pattern& other) const { return preds_ == other.preds_; }

  /// Stable content hash.
  uint64_t Hash() const;

 private:
  std::vector<SimplePredicate> preds_;
};

}  // namespace causumx

#endif  // CAUSUMX_DATASET_PATTERN_H_
