// Functional-dependency detection.
//
// Grouping patterns may only use attributes W with A_gb -> W (Section 4.1);
// this module partitions the schema into grouping vs. treatment attributes.

#ifndef CAUSUMX_DATASET_FD_H_
#define CAUSUMX_DATASET_FD_H_

#include <string>
#include <vector>

#include "dataset/table.h"

namespace causumx {

/// Exact check of the FD  lhs -> rhs  on the table: every combination of
/// lhs values maps to at most one rhs value. Null lhs rows are skipped;
/// a null rhs under a non-null lhs key counts as a distinct value.
bool HoldsFd(const Table& table, const std::vector<std::string>& lhs,
             const std::string& rhs);

/// Result of partitioning the schema around a query.
struct AttributePartition {
  /// Attributes W (excluding A_gb itself and the outcome) with A_gb -> W:
  /// the candidates for grouping patterns.
  std::vector<std::string> grouping_attributes;
  /// Everything else (excluding A_gb and the outcome): candidates for
  /// treatment patterns.
  std::vector<std::string> treatment_attributes;
};

/// Splits table attributes into grouping/treatment candidates for the
/// given group-by attributes and outcome, per Section 4.1 of the paper.
AttributePartition PartitionAttributes(const Table& table,
                                       const std::vector<std::string>& group_by,
                                       const std::string& outcome);

}  // namespace causumx

#endif  // CAUSUMX_DATASET_FD_H_
