#include "dataset/group_query.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <map>
#include <sstream>
#include <unordered_map>

#include "util/shard_plan.h"
#include "util/stats.h"
#include "util/string_utils.h"
#include "util/thread_pool.h"

namespace causumx {

std::string GroupByAvgQuery::ToSql(const std::string& relation) const {
  std::ostringstream oss;
  oss << "SELECT " << Join(group_by, ", ") << ", AVG(" << avg_attribute
      << ") FROM " << relation;
  if (!where.IsEmpty()) oss << " WHERE " << where.ToString();
  oss << " GROUP BY " << Join(group_by, ", ");
  return oss.str();
}

std::string GroupResult::KeyString() const {
  std::string out;
  for (size_t i = 0; i < key.size(); ++i) {
    if (i) out += "|";
    // Group identity is exact (dictionary codes / numeric bit patterns),
    // so the label must be too: doubles render with round-trip precision
    // — Value::ToString's 6-significant-digit form would give two
    // distinct groups (e.g. 1.0000001 vs 1.0000002) the same label.
    if (key[i].is_double()) {
      out += FormatDouble(key[i].AsDouble(), 17);
    } else {
      out += key[i].ToString();
    }
  }
  return out;
}

namespace {

// Exact 64-bit encoding of one group-by cell (caller has excluded nulls):
// categorical cells key by dictionary code, integers by value, doubles by
// bit pattern (with -0.0 collapsed into +0.0 so the two zeros group
// together, as numeric equality says they should).
uint64_t CellCode(const Column& col, size_t r) {
  switch (col.type()) {
    case ColumnType::kCategorical:
      return static_cast<uint64_t>(static_cast<uint32_t>(col.GetCode(r)));
    case ColumnType::kInt64:
      return static_cast<uint64_t>(col.GetInt(r));
    case ColumnType::kDouble: {
      double d = col.GetDouble(r);
      if (d == 0.0) d = 0.0;
      return std::bit_cast<uint64_t>(d);
    }
  }
  return 0;
}

}  // namespace

AggregateView AggregateView::Evaluate(const Table& table,
                                      const GroupByAvgQuery& query) {
  return Evaluate(table, query, ShardPlan(table.NumRows()), nullptr);
}

namespace {

// Per-shard scan output: a local group table in first-appearance order
// with per-(group, 64-row-block) Kahan partial sums. Shards are merged
// in shard order, which concatenates each group's block partials in
// ascending block order — so the merged sum is a function of the data
// and block size alone, independent of the shard decomposition.
struct ShardScan {
  std::vector<uint64_t> group_keys;  // kc words per local group
  std::vector<uint64_t> hashes;      // FNV of the composite, per group
  std::vector<size_t> first_rows;    // first member row, per group
  std::vector<size_t> counts;
  std::vector<std::vector<size_t>> rows;
  std::vector<std::vector<std::pair<uint32_t, KahanSum>>> partials;
  std::unordered_map<uint64_t, std::vector<uint32_t>> buckets;
};

}  // namespace

AggregateView AggregateView::Evaluate(const Table& table,
                                      const GroupByAvgQuery& query,
                                      const ShardPlan& plan,
                                      ThreadPool* pool) {
  AggregateView view;
  view.query_ = query;
  view.row_group_.assign(table.NumRows(), -1);

  std::vector<const Column*> key_cols;
  key_cols.reserve(query.group_by.size());
  for (const auto& name : query.group_by) {
    key_cols.push_back(&table.column(name));
  }
  const Column& avg_col = table.column(query.avg_attribute);
  const size_t kc = key_cols.size();
  const size_t num_shards = plan.NumShards();

  // WHERE mask, evaluated shard-parallel into disjoint word-aligned
  // ranges (bit-exact, so identical for every plan).
  Bitset where_mask;
  if (!query.where.IsEmpty()) {
    where_mask = Bitset(table.NumRows());
    ThreadPool::RunOn(pool, num_shards, [&](size_t s) {
      const size_t begin = plan.ShardBegin(s);
      where_mask.AssignRange(
          begin, query.where.EvaluateRange(table, begin, plan.ShardEnd(s)));
    });
  }

  // Pass 1 (parallel): per-shard local group discovery. Rows key by
  // their exact composite cell codes: an FNV-1a hash picks the bucket
  // and a bucket hit compares the full composite against the group's
  // stored key, so a 64-bit hash collision can never merge two distinct
  // groups. Local ids follow first appearance within the shard; the
  // shard writes its local ids into row_group_ (disjoint ranges) and
  // pass 2 rewrites them as global ids.
  std::vector<ShardScan> scans(num_shards);
  const uint64_t* mask_words =
      query.where.IsEmpty() ? nullptr : where_mask.data();
  ThreadPool::RunOn(pool, num_shards, [&](size_t s) {
    ShardScan& scan = scans[s];
    std::vector<uint64_t> scratch(kc);
    const size_t end = plan.ShardEnd(s);
    for (size_t r = plan.ShardBegin(s); r < end; ++r) {
      if (mask_words != nullptr) {
        // Shard boundaries are word-aligned, so (r & 63) == 0 lands on
        // whole mask words: a zero word skips its 64 rows outright —
        // selective WHERE clauses touch only the matching words.
        if ((r & 63) == 0 && r + 64 <= end && mask_words[r >> 6] == 0) {
          r += 63;
          continue;
        }
        if (!where_mask.Test(r)) continue;
      }
      if (avg_col.IsNull(r)) continue;
      bool null_key = false;
      uint64_t h = 0xcbf29ce484222325ULL;
      for (size_t k = 0; k < kc; ++k) {
        if (key_cols[k]->IsNull(r)) {
          null_key = true;
          break;
        }
        scratch[k] = CellCode(*key_cols[k], r);
        h = (h ^ scratch[k]) * 0x100000001b3ULL;
      }
      if (null_key) continue;

      std::vector<uint32_t>& bucket = scan.buckets[h];
      size_t gid = scan.counts.size();
      for (uint32_t g : bucket) {
        if (std::equal(scratch.begin(), scratch.end(),
                       scan.group_keys.begin() +
                           static_cast<size_t>(g) * kc)) {
          gid = g;
          break;
        }
      }
      if (gid == scan.counts.size()) {
        bucket.push_back(static_cast<uint32_t>(gid));
        scan.group_keys.insert(scan.group_keys.end(), scratch.begin(),
                               scratch.end());
        scan.hashes.push_back(h);
        scan.first_rows.push_back(r);
        scan.counts.push_back(0);
        scan.rows.emplace_back();
        scan.partials.emplace_back();
      }
      scan.counts[gid] += 1;
      scan.rows[gid].push_back(r);
      auto& parts = scan.partials[gid];
      const uint32_t block =
          static_cast<uint32_t>(r / kSummationBlockRows);
      if (parts.empty() || parts.back().first != block) {
        parts.emplace_back(block, KahanSum());
      }
      parts.back().second.Add(avg_col.GetNumeric(r));
      view.row_group_[r] = static_cast<int32_t>(gid);
    }
  });

  // Pass 2 (serial, shard order): fold local groups into the global
  // table. Shard s covers strictly lower rows than shard s+1, so global
  // first-appearance order — and hence group ids, key values, and the
  // ascending per-group row lists — matches a serial full scan exactly.
  std::vector<uint64_t> group_keys;  // kc words per global group
  std::unordered_map<uint64_t, std::vector<uint32_t>> buckets;
  std::vector<KahanSum> sums;
  std::vector<std::vector<int32_t>> local_to_global(num_shards);
  for (size_t s = 0; s < num_shards; ++s) {
    ShardScan& scan = scans[s];
    const size_t num_local = scan.counts.size();
    local_to_global[s].resize(num_local);
    for (size_t lg = 0; lg < num_local; ++lg) {
      const uint64_t* key = scan.group_keys.data() + lg * kc;
      std::vector<uint32_t>& bucket = buckets[scan.hashes[lg]];
      size_t gid = view.groups_.size();
      for (uint32_t g : bucket) {
        if (std::equal(key, key + kc,
                       group_keys.begin() + static_cast<size_t>(g) * kc)) {
          gid = g;
          break;
        }
      }
      if (gid == view.groups_.size()) {
        bucket.push_back(static_cast<uint32_t>(gid));
        group_keys.insert(group_keys.end(), key, key + kc);
        GroupResult g;
        g.key.reserve(kc);
        for (const Column* c : key_cols) {
          g.key.push_back(c->GetValue(scan.first_rows[lg]));
        }
        view.groups_.push_back(std::move(g));
        sums.emplace_back();
      }
      local_to_global[s][lg] = static_cast<int32_t>(gid);
      GroupResult& g = view.groups_[gid];
      g.count += scan.counts[lg];
      if (g.rows.empty()) {
        g.rows = std::move(scan.rows[lg]);
      } else {
        g.rows.insert(g.rows.end(), scan.rows[lg].begin(),
                      scan.rows[lg].end());
      }
      for (const auto& [block, partial] : scan.partials[lg]) {
        sums[gid].Merge(partial);
      }
    }
  }

  // Rewrite shard-local ids as global ids (parallel, disjoint ranges).
  ThreadPool::RunOn(pool, num_shards, [&](size_t s) {
    const size_t end = plan.ShardEnd(s);
    for (size_t r = plan.ShardBegin(s); r < end; ++r) {
      const int32_t lg = view.row_group_[r];
      if (lg >= 0) view.row_group_[r] = local_to_global[s][lg];
    }
  });

  for (size_t i = 0; i < view.groups_.size(); ++i) {
    GroupResult& g = view.groups_[i];
    if (g.count > 0) g.average = sums[i].Sum() / static_cast<double>(g.count);
  }
  return view;
}

AggregateView AggregateView::EvaluateReference(const Table& table,
                                               const GroupByAvgQuery& query) {
  AggregateView view;
  view.query_ = query;
  view.row_group_.assign(table.NumRows(), -1);

  std::vector<const Column*> key_cols;
  key_cols.reserve(query.group_by.size());
  for (const auto& name : query.group_by) {
    key_cols.push_back(&table.column(name));
  }
  const Column& avg_col = table.column(query.avg_attribute);

  const Bitset where_mask =
      query.where.IsEmpty() ? Bitset() : query.where.Evaluate(table);

  // Key rows by the concatenation of group-by cell renderings; group order
  // follows first appearance, matching the production path. Sums stream
  // through the same 64-row blocked-Kahan structure the production path
  // merges shard partials with, so the averages agree bit for bit.
  std::map<std::string, size_t> key_to_group;
  std::vector<BlockedKahan> sums;
  for (size_t r = 0; r < table.NumRows(); ++r) {
    if (!query.where.IsEmpty() && !where_mask.Test(r)) continue;
    if (avg_col.IsNull(r)) continue;
    bool null_key = false;
    std::string key_str;
    for (size_t k = 0; k < key_cols.size(); ++k) {
      if (key_cols[k]->IsNull(r)) {
        null_key = true;
        break;
      }
      if (k) key_str += '\x1f';
      key_str += key_cols[k]->GetValue(r).ToString();
    }
    if (null_key) continue;

    auto [it, inserted] =
        key_to_group.try_emplace(key_str, view.groups_.size());
    if (inserted) {
      GroupResult g;
      g.key.reserve(key_cols.size());
      for (const Column* c : key_cols) g.key.push_back(c->GetValue(r));
      view.groups_.push_back(std::move(g));
      sums.emplace_back();
    }
    GroupResult& g = view.groups_[it->second];
    sums[it->second].Add(r, avg_col.GetNumeric(r));
    g.count += 1;
    g.rows.push_back(r);
    view.row_group_[r] = static_cast<int32_t>(it->second);
  }
  for (size_t i = 0; i < view.groups_.size(); ++i) {
    GroupResult& g = view.groups_[i];
    if (g.count > 0) g.average = sums[i].Sum() / static_cast<double>(g.count);
  }
  return view;
}

std::vector<size_t> AggregateView::ActiveRows() const {
  std::vector<size_t> rows;
  for (size_t r = 0; r < row_group_.size(); ++r) {
    if (row_group_[r] >= 0) rows.push_back(r);
  }
  return rows;
}

}  // namespace causumx
