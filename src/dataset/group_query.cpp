#include "dataset/group_query.h"

#include <cmath>
#include <map>
#include <sstream>

#include "util/string_utils.h"

namespace causumx {

std::string GroupByAvgQuery::ToSql(const std::string& relation) const {
  std::ostringstream oss;
  oss << "SELECT " << Join(group_by, ", ") << ", AVG(" << avg_attribute
      << ") FROM " << relation;
  if (!where.IsEmpty()) oss << " WHERE " << where.ToString();
  oss << " GROUP BY " << Join(group_by, ", ");
  return oss.str();
}

std::string GroupResult::KeyString() const {
  std::string out;
  for (size_t i = 0; i < key.size(); ++i) {
    if (i) out += "|";
    out += key[i].ToString();
  }
  return out;
}

AggregateView AggregateView::Evaluate(const Table& table,
                                      const GroupByAvgQuery& query) {
  AggregateView view;
  view.query_ = query;
  view.row_group_.assign(table.NumRows(), -1);

  std::vector<const Column*> key_cols;
  key_cols.reserve(query.group_by.size());
  for (const auto& name : query.group_by) {
    key_cols.push_back(&table.column(name));
  }
  const Column& avg_col = table.column(query.avg_attribute);

  const Bitset where_mask =
      query.where.IsEmpty() ? Bitset() : query.where.Evaluate(table);

  // Key rows by the concatenation of group-by cell renderings. Using a map
  // keyed on strings keeps composite keys simple; group order follows first
  // appearance for stable output.
  std::map<std::string, size_t> key_to_group;
  for (size_t r = 0; r < table.NumRows(); ++r) {
    if (!query.where.IsEmpty() && !where_mask.Test(r)) continue;
    if (avg_col.IsNull(r)) continue;
    bool null_key = false;
    std::string key_str;
    for (size_t k = 0; k < key_cols.size(); ++k) {
      if (key_cols[k]->IsNull(r)) {
        null_key = true;
        break;
      }
      if (k) key_str += '\x1f';
      key_str += key_cols[k]->GetValue(r).ToString();
    }
    if (null_key) continue;

    auto [it, inserted] =
        key_to_group.try_emplace(key_str, view.groups_.size());
    if (inserted) {
      GroupResult g;
      g.key.reserve(key_cols.size());
      for (const Column* c : key_cols) g.key.push_back(c->GetValue(r));
      view.groups_.push_back(std::move(g));
    }
    GroupResult& g = view.groups_[it->second];
    g.average += avg_col.GetNumeric(r);
    g.count += 1;
    g.rows.push_back(r);
    view.row_group_[r] = static_cast<int32_t>(it->second);
  }
  for (auto& g : view.groups_) {
    if (g.count > 0) g.average /= static_cast<double>(g.count);
  }
  return view;
}

std::vector<size_t> AggregateView::ActiveRows() const {
  std::vector<size_t> rows;
  for (size_t r = 0; r < row_group_.size(); ++r) {
    if (row_group_[r] >= 0) rows.push_back(r);
  }
  return rows;
}

}  // namespace causumx
