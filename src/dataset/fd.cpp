#include "dataset/fd.h"

#include <algorithm>
#include <unordered_map>

namespace causumx {

bool HoldsFd(const Table& table, const std::vector<std::string>& lhs,
             const std::string& rhs) {
  std::vector<const Column*> lhs_cols;
  lhs_cols.reserve(lhs.size());
  for (const auto& name : lhs) lhs_cols.push_back(&table.column(name));
  const Column& rhs_col = table.column(rhs);

  std::unordered_map<std::string, std::string> seen;
  seen.reserve(table.NumRows() / 4 + 16);
  for (size_t r = 0; r < table.NumRows(); ++r) {
    bool null_key = false;
    std::string key;
    for (size_t k = 0; k < lhs_cols.size(); ++k) {
      if (lhs_cols[k]->IsNull(r)) {
        null_key = true;
        break;
      }
      if (k) key += '\x1f';
      key += lhs_cols[k]->GetValue(r).ToString();
    }
    if (null_key) continue;
    const std::string val =
        rhs_col.IsNull(r) ? "\x01<null>" : rhs_col.GetValue(r).ToString();
    auto [it, inserted] = seen.try_emplace(key, val);
    if (!inserted && it->second != val) return false;
  }
  return true;
}

AttributePartition PartitionAttributes(
    const Table& table, const std::vector<std::string>& group_by,
    const std::string& outcome) {
  AttributePartition part;
  for (const auto& name : table.ColumnNames()) {
    if (name == outcome) continue;
    if (std::find(group_by.begin(), group_by.end(), name) != group_by.end()) {
      continue;
    }
    if (HoldsFd(table, group_by, name)) {
      part.grouping_attributes.push_back(name);
    } else {
      part.treatment_attributes.push_back(name);
    }
  }
  return part;
}

}  // namespace causumx
