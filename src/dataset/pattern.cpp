#include "dataset/pattern.h"

#include <algorithm>
#include <functional>

namespace causumx {

Pattern::Pattern(std::vector<SimplePredicate> preds) : preds_(std::move(preds)) {
  std::sort(preds_.begin(), preds_.end(),
            [](const SimplePredicate& a, const SimplePredicate& b) {
              return a.Less(b);
            });
  preds_.erase(std::unique(preds_.begin(), preds_.end()), preds_.end());
}

Pattern Pattern::With(const SimplePredicate& p) const {
  std::vector<SimplePredicate> next = preds_;
  next.push_back(p);
  return Pattern(std::move(next));
}

bool Pattern::UsesAttribute(const std::string& attribute) const {
  for (const auto& p : preds_) {
    if (p.attribute == attribute) return true;
  }
  return false;
}

std::vector<std::string> Pattern::Attributes() const {
  std::vector<std::string> attrs;
  for (const auto& p : preds_) attrs.push_back(p.attribute);
  std::sort(attrs.begin(), attrs.end());
  attrs.erase(std::unique(attrs.begin(), attrs.end()), attrs.end());
  return attrs;
}

bool Pattern::Matches(const Table& table, size_t row) const {
  for (const auto& p : preds_) {
    if (!p.Matches(table, row)) return false;
  }
  return true;
}

Bitset Pattern::Evaluate(const Table& table) const {
  return EvaluateRange(table, 0, table.NumRows());
}

Bitset Pattern::EvaluateRange(const Table& table, size_t begin,
                              size_t end) const {
  Bitset out(end - begin);
  out.SetAll();
  // Evaluate predicate-by-predicate so each pass is a tight loop over one
  // column; categorical equality resolves the dictionary code once.
  for (const auto& p : preds_) {
    const Column& col = table.column(p.attribute);
    if (col.type() == ColumnType::kCategorical && p.op == CompareOp::kEq) {
      const std::string rhs =
          p.value.is_string() ? p.value.AsString() : p.value.ToString();
      const int32_t code = col.CodeOf(rhs);
      if (code == Column::kNullCode) {
        // Constant absent from the dictionary: no row matches. (Without
        // this guard, null cells — whose code is also kNullCode — would
        // pass the inequality test below and diverge from Matches().)
        return Bitset(end - begin);
      }
      for (size_t r = begin; r < end; ++r) {
        if (out.Test(r - begin) && col.GetCode(r) != code) {
          out.Clear(r - begin);
        }
      }
    } else {
      for (size_t r = begin; r < end; ++r) {
        if (out.Test(r - begin) && !p.Matches(table, r)) out.Clear(r - begin);
      }
    }
  }
  return out;
}

Bitset Pattern::EvaluateOn(const Table& table, const Bitset& mask) const {
  Bitset out = Evaluate(table);
  out &= mask;
  return out;
}

std::string Pattern::ToString() const {
  if (preds_.empty()) return "TRUE";
  std::string out;
  for (size_t i = 0; i < preds_.size(); ++i) {
    if (i) out += " AND ";
    out += preds_[i].ToString();
  }
  return out;
}

uint64_t Pattern::Hash() const {
  uint64_t h = 0xcbf29ce484222325ULL;
  auto mix = [&h](const std::string& s) {
    for (char c : s) {
      h ^= static_cast<unsigned char>(c);
      h *= 0x100000001b3ULL;
    }
    h ^= 0xff;
    h *= 0x100000001b3ULL;
  };
  for (const auto& p : preds_) {
    mix(p.attribute);
    mix(CompareOpSymbol(p.op));
    mix(p.value.ToString());
  }
  return h;
}

}  // namespace causumx
