#include "dataset/pattern.h"

#include <algorithm>
#include <cmath>
#include <functional>

#include "util/kernels.h"

namespace causumx {

namespace {

kernels::CmpOp ToKernelOp(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return kernels::CmpOp::kEq;
    case CompareOp::kLt:
      return kernels::CmpOp::kLt;
    case CompareOp::kGt:
      return kernels::CmpOp::kGt;
    case CompareOp::kLe:
      return kernels::CmpOp::kLe;
    case CompareOp::kGe:
      return kernels::CmpOp::kGe;
  }
  return kernels::CmpOp::kEq;
}

bool ApplyOpToCmp(CompareOp op, int cmp) {
  switch (op) {
    case CompareOp::kEq:
      return cmp == 0;
    case CompareOp::kLt:
      return cmp < 0;
    case CompareOp::kGt:
      return cmp > 0;
    case CompareOp::kLe:
      return cmp <= 0;
    case CompareOp::kGe:
      return cmp >= 0;
  }
  return false;
}

// Row-at-a-time fallback writing the same tail-masked word layout the
// kernels emit. Reached only for degenerate constants (non-numeric or
// NaN rhs against a numeric column) where SimplePredicate::Matches'
// three-way-compare derivation disagrees with a direct IEEE compare.
void ReferenceWords(const Table& table, const SimplePredicate& pred,
                    size_t begin, size_t end, uint64_t* out) {
  const size_t n = end - begin;
  std::fill(out, out + (n + 63) / 64, uint64_t{0});
  for (size_t r = begin; r < end; ++r) {
    if (pred.Matches(table, r)) {
      const size_t i = r - begin;
      out[i >> 6] |= uint64_t{1} << (i & 63);
    }
  }
}

// Core of EvaluatePredicateRange: fills the ceil((end - begin) / 64)
// words of the match mask (bit i = row begin + i, padding clear).
// Dispatch happens here, once per predicate, not once per row.
void EvalPredicateWords(const Table& table, const SimplePredicate& pred,
                        size_t begin, size_t end, uint64_t* out) {
  const size_t n = end - begin;
  if (n == 0) return;
  // causumx-analyzer: allow(hot-path-throw) unknown-attribute throw is the
  // cold input-validation path; predicates are checked at intern time.
  const Column& col = table.column(pred.attribute);
  if (col.type() == ColumnType::kCategorical) {
    // causumx-analyzer: allow(hot-path-alloc) one constant decode per
    // predicate evaluation (O(1) per call, not per row).
    const std::string rhs =
        pred.value.is_string() ? pred.value.AsString() : pred.value.ToString();
    if (pred.op == CompareOp::kEq) {
      const int32_t code = col.CodeOf(rhs);
      if (code == Column::kNullCode) {
        // Constant absent from the dictionary: no row matches. (Without
        // this guard, null cells — whose code is also kNullCode — would
        // pass an equality test against the sentinel and diverge from
        // Matches().)
        std::fill(out, out + (n + 63) / 64, uint64_t{0});
        return;
      }
      kernels::CompareI32Eq(col.codes_data() + begin, n, code, out);
      return;
    }
    // Ordered ops compare decoded strings lexicographically. Hoist the
    // string compares into a per-dictionary-entry lookup table — one
    // compare per distinct value instead of one per row — then gather.
    const std::vector<std::string>& dict = col.dictionary();
    // causumx-analyzer: allow(hot-path-alloc) O(|dict|) setup buffer that
    // hoists per-row string compares out of the row loop.
    std::vector<uint8_t> lut(dict.size());
    for (size_t c = 0; c < dict.size(); ++c) {
      lut[c] = ApplyOpToCmp(pred.op, dict[c].compare(rhs)) ? 1 : 0;
    }
    kernels::CompareI32Lut(col.codes_data() + begin, n, lut.data(), out);
    return;
  }
  // Numeric columns. Matches() resolves the constant with AsDouble()
  // (throws for string constants) and derives a three-way compare, under
  // which a NaN constant compares "equal" to every non-null cell. Both
  // cases diverge from the kernels' direct IEEE semantics, so they take
  // the reference loop; everything else is a vector compare.
  if (!pred.value.is_double() && !pred.value.is_int()) {
    // causumx-analyzer: allow(hot-path-alloc, hot-path-throw) cold
    // fallback for non-numeric constants; the scalar reference loop is
    // exempt from kernel-tier constraints by design (see kernels.h).
    ReferenceWords(table, pred, begin, end, out);
    return;
  }
  const double rhs = pred.value.AsDouble();
  if (std::isnan(rhs)) {
    // causumx-analyzer: allow(hot-path-alloc, hot-path-throw) cold
    // fallback for NaN constants, as above.
    ReferenceWords(table, pred, begin, end, out);
    return;
  }
  const kernels::CmpOp op = ToKernelOp(pred.op);
  if (col.type() == ColumnType::kDouble) {
    // Null cells are NaN and compare false under every IEEE op — the
    // "null never matches" rule costs nothing here.
    kernels::CompareF64(col.doubles_data() + begin, n, op, rhs, out);
  } else {
    kernels::CompareI64AsF64(col.ints_data() + begin, n, op, rhs,
                             Column::kNullInt, out);
  }
}

}  // namespace

Bitset EvaluatePredicateRange(const Table& table, const SimplePredicate& pred,
                              size_t begin, size_t end) {
  Bitset out(end - begin);
  if (end > begin) {
    EvalPredicateWords(table, pred, begin, end, out.mutable_data());
  }
  return out;
}

Pattern::Pattern(std::vector<SimplePredicate> preds) : preds_(std::move(preds)) {
  std::sort(preds_.begin(), preds_.end(),
            [](const SimplePredicate& a, const SimplePredicate& b) {
              return a.Less(b);
            });
  preds_.erase(std::unique(preds_.begin(), preds_.end()), preds_.end());
}

Pattern Pattern::With(const SimplePredicate& p) const {
  std::vector<SimplePredicate> next = preds_;
  next.push_back(p);
  return Pattern(std::move(next));
}

bool Pattern::UsesAttribute(const std::string& attribute) const {
  for (const auto& p : preds_) {
    if (p.attribute == attribute) return true;
  }
  return false;
}

std::vector<std::string> Pattern::Attributes() const {
  std::vector<std::string> attrs;
  for (const auto& p : preds_) attrs.push_back(p.attribute);
  std::sort(attrs.begin(), attrs.end());
  attrs.erase(std::unique(attrs.begin(), attrs.end()), attrs.end());
  return attrs;
}

bool Pattern::Matches(const Table& table, size_t row) const {
  for (const auto& p : preds_) {
    if (!p.Matches(table, row)) return false;
  }
  return true;
}

Bitset Pattern::Evaluate(const Table& table) const {
  return EvaluateRange(table, 0, table.NumRows());
}

Bitset Pattern::EvaluateRange(const Table& table, size_t begin,
                              size_t end) const {
  Bitset out(end - begin);
  if (preds_.empty()) {
    out.SetAll();
    return out;
  }
  // First predicate writes the output words directly; the rest evaluate
  // into a reused scratch buffer and AND in word-wise. Every pass is a
  // kernel call over one column — per-row dispatch is hoisted into
  // EvalPredicateWords.
  EvalPredicateWords(table, preds_[0], begin, end, out.mutable_data());
  if (preds_.size() > 1) {
    // causumx-analyzer: allow(hot-path-alloc) one scratch buffer per
    // multi-predicate evaluation, reused across all predicate passes.
    std::vector<uint64_t> scratch(out.num_words());
    for (size_t i = 1; i < preds_.size(); ++i) {
      EvalPredicateWords(table, preds_[i], begin, end, scratch.data());
      // Both operands carry clear padding, so a full-width AND keeps the
      // canonical-padding invariant.
      kernels::AndWords(out.mutable_data(), scratch.data(), out.num_words());
    }
  }
  return out;
}

Bitset Pattern::EvaluateOn(const Table& table, const Bitset& mask) const {
  Bitset out = Evaluate(table);
  out &= mask;
  return out;
}

std::string Pattern::ToString() const {
  if (preds_.empty()) return "TRUE";
  std::string out;
  for (size_t i = 0; i < preds_.size(); ++i) {
    if (i) out += " AND ";
    out += preds_[i].ToString();
  }
  return out;
}

uint64_t Pattern::Hash() const {
  uint64_t h = 0xcbf29ce484222325ULL;
  auto mix = [&h](const std::string& s) {
    for (char c : s) {
      h ^= static_cast<unsigned char>(c);
      h *= 0x100000001b3ULL;
    }
    h ^= 0xff;
    h *= 0x100000001b3ULL;
  };
  for (const auto& p : preds_) {
    mix(p.attribute);
    mix(CompareOpSymbol(p.op));
    mix(p.value.ToString());
  }
  return h;
}

}  // namespace causumx
