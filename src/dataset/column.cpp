#include "dataset/column.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <stdexcept>

namespace causumx {

Column::Column(std::string name, ColumnType type)
    : name_(std::move(name)), type_(type) {}

Column::Column(const Column& other)
    : name_(other.name_),
      type_(other.type_),
      ints_(other.ints_),
      doubles_(other.doubles_),
      codes_(other.codes_),
      dict_(other.dict_),
      dict_index_(other.dict_index_),
      cached_distinct_(
          other.cached_distinct_.load(std::memory_order_relaxed)) {}

size_t Column::size() const {
  switch (type_) {
    case ColumnType::kInt64:
      return ints_.size();
    case ColumnType::kDouble:
      return doubles_.size();
    case ColumnType::kCategorical:
      return codes_.size();
  }
  return 0;
}

void Column::AppendInt(int64_t v) {
  if (type_ != ColumnType::kInt64) {
    throw std::logic_error("AppendInt on non-int column " + name_);
  }
  ints_.push_back(v);
  cached_distinct_.store(-1, std::memory_order_relaxed);
}

void Column::AppendDouble(double v) {
  if (type_ != ColumnType::kDouble) {
    throw std::logic_error("AppendDouble on non-double column " + name_);
  }
  doubles_.push_back(v);
  cached_distinct_.store(-1, std::memory_order_relaxed);
}

void Column::AppendCategorical(const std::string& v) {
  if (type_ != ColumnType::kCategorical) {
    throw std::logic_error("AppendCategorical on non-categorical column " +
                           name_);
  }
  auto it = dict_index_.find(v);
  int32_t code;
  if (it == dict_index_.end()) {
    code = static_cast<int32_t>(dict_.size());
    dict_.push_back(v);
    dict_index_.emplace(v, code);
  } else {
    code = it->second;
  }
  codes_.push_back(code);
  cached_distinct_.store(-1, std::memory_order_relaxed);
}

void Column::AppendNull() {
  switch (type_) {
    case ColumnType::kInt64:
      ints_.push_back(kNullInt);
      break;
    case ColumnType::kDouble:
      doubles_.push_back(std::nan(""));
      break;
    case ColumnType::kCategorical:
      codes_.push_back(kNullCode);
      break;
  }
  cached_distinct_.store(-1, std::memory_order_relaxed);
}

void Column::AppendValue(const Value& v) {
  if (v.is_null()) {
    AppendNull();
    return;
  }
  switch (type_) {
    case ColumnType::kInt64:
      AppendInt(v.is_int() ? v.AsInt() : static_cast<int64_t>(v.AsDouble()));
      break;
    case ColumnType::kDouble:
      AppendDouble(v.AsDouble());
      break;
    case ColumnType::kCategorical:
      AppendCategorical(v.is_string() ? v.AsString() : v.ToString());
      break;
  }
}

bool Column::IsNull(size_t row) const {
  switch (type_) {
    case ColumnType::kInt64:
      return ints_[row] == kNullInt;
    case ColumnType::kDouble:
      return std::isnan(doubles_[row]);
    case ColumnType::kCategorical:
      return codes_[row] == kNullCode;
  }
  return true;
}

double Column::GetNumeric(size_t row) const {
  if (IsNull(row)) return std::nan("");
  switch (type_) {
    case ColumnType::kInt64:
      return static_cast<double>(ints_[row]);
    case ColumnType::kDouble:
      return doubles_[row];
    case ColumnType::kCategorical:
      return static_cast<double>(codes_[row]);
  }
  return std::nan("");
}

Value Column::GetValue(size_t row) const {
  if (IsNull(row)) return Value();
  switch (type_) {
    case ColumnType::kInt64:
      return Value(ints_[row]);
    case ColumnType::kDouble:
      return Value(doubles_[row]);
    case ColumnType::kCategorical:
      return Value(dict_[codes_[row]]);
  }
  return Value();
}

int32_t Column::CodeOf(const std::string& s) const {
  auto it = dict_index_.find(s);
  return it == dict_index_.end() ? kNullCode : it->second;
}

size_t Column::NumDistinct() const {
  const int64_t cached = cached_distinct_.load(std::memory_order_relaxed);
  if (cached >= 0) return static_cast<size_t>(cached);
  // Concurrent first calls may each compute the (identical) count; the
  // last store wins. No data is published through the atomic, so
  // relaxed ordering suffices.
  size_t n = 0;
  switch (type_) {
    case ColumnType::kCategorical:
      n = dict_.size();
      break;
    case ColumnType::kInt64: {
      std::set<int64_t> s;
      for (int64_t v : ints_) {
        if (v != kNullInt) s.insert(v);
      }
      n = s.size();
      break;
    }
    case ColumnType::kDouble: {
      std::set<double> s;
      for (double v : doubles_) {
        if (!std::isnan(v)) s.insert(v);
      }
      n = s.size();
      break;
    }
  }
  cached_distinct_.store(static_cast<int64_t>(n), std::memory_order_relaxed);
  return n;
}

std::vector<Value> Column::DistinctValues() const {
  std::vector<Value> out;
  switch (type_) {
    case ColumnType::kCategorical: {
      std::vector<std::string> sorted = dict_;
      std::sort(sorted.begin(), sorted.end());
      out.reserve(sorted.size());
      for (auto& s : sorted) out.emplace_back(std::move(s));
      break;
    }
    case ColumnType::kInt64: {
      std::set<int64_t> s;
      for (int64_t v : ints_) {
        if (v != kNullInt) s.insert(v);
      }
      out.reserve(s.size());
      for (int64_t v : s) out.emplace_back(v);
      break;
    }
    case ColumnType::kDouble: {
      std::set<double> s;
      for (double v : doubles_) {
        if (!std::isnan(v)) s.insert(v);
      }
      out.reserve(s.size());
      for (double v : s) out.emplace_back(v);
      break;
    }
  }
  return out;
}

void Column::Reserve(size_t n) {
  switch (type_) {
    case ColumnType::kInt64:
      ints_.reserve(n);
      break;
    case ColumnType::kDouble:
      doubles_.reserve(n);
      break;
    case ColumnType::kCategorical:
      codes_.reserve(n);
      break;
  }
}

}  // namespace causumx
