// Single-relation in-memory table — the database substrate the paper's
// framework operates on (Section 4: "We consider a single-relation
// database over a schema A").

#ifndef CAUSUMX_DATASET_TABLE_H_
#define CAUSUMX_DATASET_TABLE_H_

#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "dataset/column.h"
#include "dataset/value.h"

namespace causumx {

/// Column-major table over a fixed schema.
///
/// Rows are appended via AddRow (values in schema order). Column lookup by
/// name is O(1). The table owns its columns.
class Table {
 public:
  Table() = default;

  /// Declares a column; must happen before any rows are appended.
  /// Returns the column index. Throws on duplicate names.
  size_t AddColumn(const std::string& name, ColumnType type);

  /// Appends one row; `values` must match the schema arity and order.
  void AddRow(const std::vector<Value>& values);

  /// Appends a batch of rows atomically: every row is validated first
  /// (arity, and no string value in a numeric column — numeric values
  /// cross-coerce and nulls are accepted anywhere, as in AddRow), so a
  /// bad row leaves the table untouched. Categorical cells grow the
  /// dictionary as needed. Bumps the table version once per batch.
  /// Throws std::invalid_argument naming the offending row/column.
  void AppendRows(const std::vector<std::vector<Value>>& rows);

  /// Monotone data version: 0 at construction, +1 per AppendRows batch.
  /// Snapshot consumers (EvalEngine delta extension, the service's
  /// copy-on-write registry) use it to tell table generations apart;
  /// row-at-a-time AddRow is the bulk-construction path and does not
  /// version.
  uint64_t version() const { return version_; }

  /// Deep copy (schema, rows, dictionaries, version). The copy-on-write
  /// append path clones the current snapshot, appends to the clone, and
  /// swaps it in so in-flight readers of the original are undisturbed.
  Table Clone() const;

  /// The first min(n, NumRows()) rows as a new table (fresh version 0).
  /// Streaming tests/benches use this to split a dataset into a base
  /// prefix plus append deltas.
  Table Head(size_t n) const;

  /// The rows [begin, NumRows()) as a new table (fresh version 0, fresh
  /// dictionaries in survivor first-appearance order — exactly what a
  /// from-scratch rebuild over the surviving rows would build). The
  /// windowed-retention path compacts expired prefixes with this.
  Table Tail(size_t begin) const;

  /// Materializes rows [begin, end) as AppendRows-ready value rows
  /// (categoricals decode to strings, nulls to null Values).
  std::vector<std::vector<Value>> MaterializeRows(size_t begin,
                                                  size_t end) const;

  size_t NumRows() const { return num_rows_; }
  size_t NumColumns() const { return columns_.size(); }

  /// Index of a column by name, or nullopt.
  std::optional<size_t> ColumnIndex(const std::string& name) const;

  /// Column by index / name; throws on a bad name.
  const Column& column(size_t i) const { return *columns_[i]; }
  Column& column(size_t i) { return *columns_[i]; }
  const Column& column(const std::string& name) const;

  std::vector<std::string> ColumnNames() const;

  /// Materializes a new table containing only the rows whose indices are
  /// listed (in the given order). Used for WHERE pushdown and sampling.
  Table SelectRows(const std::vector<size_t>& rows) const;

  /// Materializes a new table with only the named columns (schema order
  /// follows `names`). Throws if a name is unknown.
  Table SelectColumns(const std::vector<std::string>& names) const;

  void ReserveRows(size_t n);

 private:
  // Concurrency contract (checked at the owners, not here): a Table has
  // no internal locking. Mutation is single-writer-before-publication —
  // builders (CSV reader, datagen) fill a private instance, and the
  // streaming path mutates only a private Clone() under
  // ExplanationService::append_mu_, publishing the result as a new
  // shared_ptr<const Table> snapshot (copy-on-write). Once published
  // const, every member below is immutable; `version_` tells the
  // generations apart. Clang's -Wthread-safety leg enforces the
  // publication discipline in service/explanation_service.h.
  std::vector<std::unique_ptr<Column>> columns_;
  std::unordered_map<std::string, size_t> index_;
  size_t num_rows_ = 0;
  uint64_t version_ = 0;
};

}  // namespace causumx

#endif  // CAUSUMX_DATASET_TABLE_H_
