// Single-relation in-memory table — the database substrate the paper's
// framework operates on (Section 4: "We consider a single-relation
// database over a schema A").

#ifndef CAUSUMX_DATASET_TABLE_H_
#define CAUSUMX_DATASET_TABLE_H_

#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "dataset/column.h"
#include "dataset/value.h"

namespace causumx {

/// Column-major table over a fixed schema.
///
/// Rows are appended via AddRow (values in schema order). Column lookup by
/// name is O(1). The table owns its columns.
class Table {
 public:
  Table() = default;

  /// Declares a column; must happen before any rows are appended.
  /// Returns the column index. Throws on duplicate names.
  size_t AddColumn(const std::string& name, ColumnType type);

  /// Appends one row; `values` must match the schema arity and order.
  void AddRow(const std::vector<Value>& values);

  size_t NumRows() const { return num_rows_; }
  size_t NumColumns() const { return columns_.size(); }

  /// Index of a column by name, or nullopt.
  std::optional<size_t> ColumnIndex(const std::string& name) const;

  /// Column by index / name; throws on a bad name.
  const Column& column(size_t i) const { return *columns_[i]; }
  Column& column(size_t i) { return *columns_[i]; }
  const Column& column(const std::string& name) const;

  std::vector<std::string> ColumnNames() const;

  /// Materializes a new table containing only the rows whose indices are
  /// listed (in the given order). Used for WHERE pushdown and sampling.
  Table SelectRows(const std::vector<size_t>& rows) const;

  /// Materializes a new table with only the named columns (schema order
  /// follows `names`). Throws if a name is unknown.
  Table SelectColumns(const std::vector<std::string>& names) const;

  void ReserveRows(size_t n);

 private:
  std::vector<std::unique_ptr<Column>> columns_;
  std::unordered_map<std::string, size_t> index_;
  size_t num_rows_ = 0;
};

}  // namespace causumx

#endif  // CAUSUMX_DATASET_TABLE_H_
