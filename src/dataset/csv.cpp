#include "dataset/csv.h"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <fstream>
#include <set>
#include <sstream>
#include <stdexcept>

#include "storage/storage_error.h"
#include "util/string_utils.h"

namespace causumx {

namespace {

bool IsNullToken(const std::string& s, const CsvOptions& opt) {
  return std::find(opt.null_tokens.begin(), opt.null_tokens.end(), s) !=
         opt.null_tokens.end();
}

bool ParseInt(const std::string& s, int64_t* out) {
  const char* b = s.data();
  const char* e = s.data() + s.size();
  auto [ptr, ec] = std::from_chars(b, e, *out);
  return ec == std::errc() && ptr == e;
}

bool ParseDouble(const std::string& s, double* out) {
  try {
    size_t pos = 0;
    *out = std::stod(s, &pos);
    return pos == s.size();
  } catch (...) {
    return false;
  }
}

// Splits a CSV record honoring double-quote escaping. Per RFC 4180 a
// quote opens a quoted field only at the start of the field; a stray
// quote mid-field (`5" nails`) is literal content.
std::vector<std::string> SplitCsvLine(const std::string& line, char delim) {
  std::vector<std::string> fields;
  std::string cur;
  bool in_quotes = false;
  bool at_field_start = true;
  for (size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          cur.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        cur.push_back(c);
      }
    } else if (c == '"' && at_field_start) {
      in_quotes = true;
      at_field_start = false;
    } else if (c == delim) {
      fields.push_back(cur);
      cur.clear();
      at_field_start = true;
    } else if (c != '\r') {
      cur.push_back(c);
      at_field_start = false;
    }
  }
  fields.push_back(cur);
  return fields;
}

// Advances the RFC 4180 quote/field state across one physical line
// (mirroring SplitCsvLine's semantics): only a quote at the start of a
// field opens a quoted field — a stray quote mid-field (`5" nails,3`)
// is literal — and "" escape pairs keep the field open. A quote that
// ends the line inside a quoted field closes it, matching the joined
// record where the next character is the restored '\n'.
void AdvanceQuoteState(const std::string& line, char delim, bool* in_quotes,
                       bool* at_field_start) {
  for (size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (*in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          ++i;
        } else {
          *in_quotes = false;
        }
      }
    } else if (c == '"' && *at_field_start) {
      *in_quotes = true;
      *at_field_start = false;
    } else if (c == delim) {
      *at_field_start = true;
    } else {
      *at_field_start = false;
    }
  }
}

// A record may span physical lines: while it ends inside an open quoted
// field, the embedded newline getline consumed is restored and the next
// line appended. The state advances incrementally per appended line, so
// an L-line record costs O(L), not O(L^2).
bool ReadCsvRecord(std::istream& in, std::string* record, char delim) {
  if (!std::getline(in, *record)) return false;
  bool in_quotes = false;
  bool at_field_start = true;
  AdvanceQuoteState(*record, delim, &in_quotes, &at_field_start);
  while (in_quotes) {
    std::string next;
    if (!std::getline(in, next)) break;  // unterminated quote at EOF
    record->push_back('\n');
    *record += next;
    at_field_start = false;  // the joined newline was quoted content
    AdvanceQuoteState(next, delim, &in_quotes, &at_field_start);
  }
  return true;
}

}  // namespace

Table ReadCsv(std::istream& in, const CsvOptions& opt) {
  std::string line;
  if (!ReadCsvRecord(in, &line, opt.delimiter)) {
    throw std::runtime_error("csv: empty input");
  }
  const std::vector<std::string> header = SplitCsvLine(line, opt.delimiter);
  // Validate the header here with parse errors: Table::AddColumn treats a
  // duplicate name as a programming error (std::logic_error), but a CSV
  // header is untrusted input — fuzzing caught the logic_error escaping.
  {
    std::set<std::string> seen;
    for (const std::string& raw : header) {
      if (!seen.insert(Trim(raw)).second) {
        throw std::runtime_error("csv: duplicate column name: " + Trim(raw));
      }
    }
  }

  std::vector<std::vector<std::string>> rows;
  while (ReadCsvRecord(in, &line, opt.delimiter)) {
    // A blank line is noise for a multi-column schema (a real row would
    // be ragged) but a legitimate one-null-cell row for a single-column
    // one — WriteCsv emits exactly that for a null cell, and fuzzing
    // caught the round-trip dropping such rows.
    if (line.empty() && header.size() > 1) continue;
    auto fields = SplitCsvLine(line, opt.delimiter);
    if (fields.size() != header.size()) {
      throw std::runtime_error(StrFormat(
          "csv: row %zu has %zu fields, expected %zu", rows.size() + 2,
          fields.size(), header.size()));
    }
    rows.push_back(std::move(fields));
  }
  // getline returning false means either EOF (fine) or a stream-level
  // read failure (disk error, closed pipe). Silently treating the latter
  // as EOF would load a truncated table as if it were complete.
  if (in.bad()) {
    throw StorageError(StorageErrorKind::kIo,
                       "csv: stream read failed mid-file (badbit set after "
                       "reading " +
                           std::to_string(rows.size()) + " rows)");
  }

  // Infer a type per column from a prefix of the data.
  std::vector<ColumnType> types(header.size(), ColumnType::kCategorical);
  if (opt.infer_types) {
    const size_t probe = std::min(rows.size(), opt.type_inference_rows);
    for (size_t c = 0; c < header.size(); ++c) {
      bool all_int = true, all_num = true, any_value = false;
      for (size_t r = 0; r < probe; ++r) {
        const std::string& s = rows[r][c];
        if (IsNullToken(s, opt)) continue;
        any_value = true;
        int64_t iv;
        double dv;
        if (!ParseInt(s, &iv)) all_int = false;
        if (!ParseDouble(s, &dv)) {
          all_num = false;
          break;
        }
      }
      if (any_value && all_int) {
        types[c] = ColumnType::kInt64;
      } else if (any_value && all_num) {
        types[c] = ColumnType::kDouble;
      }
    }
    // The probe prefix can lie: a column typed numeric from the first
    // `type_inference_rows` rows may hold unparsable cells further down,
    // which would otherwise be silently nulled out. Validate the rest of
    // each numeric column and demote on mismatch (kInt64 -> kDouble when
    // still numeric, else kCategorical) so no value is dropped.
    for (size_t c = 0; c < header.size(); ++c) {
      if (types[c] == ColumnType::kCategorical) continue;
      for (size_t r = probe; r < rows.size(); ++r) {
        const std::string& s = rows[r][c];
        if (IsNullToken(s, opt)) continue;
        int64_t iv;
        double dv;
        if (types[c] == ColumnType::kInt64 && !ParseInt(s, &iv)) {
          types[c] = ColumnType::kDouble;
        }
        if (types[c] == ColumnType::kDouble && !ParseDouble(s, &dv)) {
          types[c] = ColumnType::kCategorical;
          break;
        }
      }
    }
  }

  Table table;
  for (size_t c = 0; c < header.size(); ++c) {
    table.AddColumn(Trim(header[c]), types[c]);
  }
  table.ReserveRows(rows.size());
  std::vector<Value> row_values(header.size());
  for (const auto& fields : rows) {
    for (size_t c = 0; c < fields.size(); ++c) {
      const std::string& s = fields[c];
      if (IsNullToken(s, opt)) {
        row_values[c] = Value();
        continue;
      }
      switch (types[c]) {
        case ColumnType::kInt64: {
          int64_t iv;
          if (ParseInt(s, &iv)) {
            row_values[c] = Value(iv);
          } else {
            row_values[c] = Value();  // unparsable -> null
          }
          break;
        }
        case ColumnType::kDouble: {
          double dv;
          if (ParseDouble(s, &dv)) {
            row_values[c] = Value(dv);
          } else {
            row_values[c] = Value();
          }
          break;
        }
        case ColumnType::kCategorical:
          row_values[c] = Value(s);
          break;
      }
    }
    table.AddRow(row_values);
  }
  return table;
}

Table ReadCsvFile(const std::string& path, const CsvOptions& opt) {
  std::ifstream f(path);
  if (!f) throw std::runtime_error("csv: cannot open " + path);
  return ReadCsv(f, opt);
}

std::vector<std::vector<Value>> ReadCsvDelta(const Table& schema,
                                             std::istream& in,
                                             const CsvOptions& opt) {
  std::string line;
  if (!ReadCsvRecord(in, &line, opt.delimiter)) {
    throw std::runtime_error("csv delta: empty input");
  }
  const std::vector<std::string> header = SplitCsvLine(line, opt.delimiter);
  if (header.size() != schema.NumColumns()) {
    throw std::runtime_error(StrFormat(
        "csv delta: header has %zu columns, table has %zu", header.size(),
        schema.NumColumns()));
  }
  // Map each header field to its schema column (any order, each exactly
  // once) so deltas exported by other tools line up by name.
  std::vector<size_t> target(header.size());
  std::vector<bool> seen(schema.NumColumns(), false);
  for (size_t c = 0; c < header.size(); ++c) {
    const std::string name = Trim(header[c]);
    const auto idx = schema.ColumnIndex(name);
    if (!idx) {
      throw std::runtime_error("csv delta: unknown column '" + name + "'");
    }
    if (seen[*idx]) {
      throw std::runtime_error("csv delta: duplicate column '" + name + "'");
    }
    seen[*idx] = true;
    target[c] = *idx;
  }

  std::vector<std::vector<Value>> rows;
  size_t line_number = 1;
  while (ReadCsvRecord(in, &line, opt.delimiter)) {
    ++line_number;
    // Same single-column blank-line rule as ReadCsv (see there).
    if (line.empty() && header.size() > 1) continue;
    const auto fields = SplitCsvLine(line, opt.delimiter);
    if (fields.size() != header.size()) {
      throw std::runtime_error(StrFormat(
          "csv delta: row %zu has %zu fields, expected %zu", line_number,
          fields.size(), header.size()));
    }
    std::vector<Value> row(schema.NumColumns());
    for (size_t c = 0; c < fields.size(); ++c) {
      const std::string& s = fields[c];
      const size_t t = target[c];
      if (IsNullToken(s, opt)) {
        row[t] = Value();
        continue;
      }
      switch (schema.column(t).type()) {
        case ColumnType::kInt64: {
          int64_t iv;
          if (!ParseInt(s, &iv)) {
            throw std::runtime_error(StrFormat(
                "csv delta: row %zu column '%s': '%s' is not an integer",
                line_number, schema.column(t).name().c_str(), s.c_str()));
          }
          row[t] = Value(iv);
          break;
        }
        case ColumnType::kDouble: {
          double dv;
          if (!ParseDouble(s, &dv)) {
            throw std::runtime_error(StrFormat(
                "csv delta: row %zu column '%s': '%s' is not numeric",
                line_number, schema.column(t).name().c_str(), s.c_str()));
          }
          row[t] = Value(dv);
          break;
        }
        case ColumnType::kCategorical:
          row[t] = Value(s);
          break;
      }
    }
    rows.push_back(std::move(row));
  }
  // Same EOF-vs-failure distinction as ReadCsv: a mid-stream I/O error
  // must not pass as a short-but-valid delta.
  if (in.bad()) {
    throw StorageError(StorageErrorKind::kIo,
                       "csv delta: stream read failed mid-file (badbit set "
                       "after reading " +
                           std::to_string(rows.size()) + " rows)");
  }
  return rows;
}

std::vector<std::vector<Value>> ReadCsvDeltaFile(const Table& schema,
                                                 const std::string& path,
                                                 const CsvOptions& opt) {
  std::ifstream f(path);
  if (!f) throw std::runtime_error("csv: cannot open " + path);
  return ReadCsvDelta(schema, f, opt);
}

namespace {

std::string EscapeCsv(const std::string& s, char delim) {
  if (s.find(delim) == std::string::npos &&
      s.find('"') == std::string::npos &&
      s.find('\n') == std::string::npos &&
      s.find('\r') == std::string::npos) {
    return s;
  }
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += "\"\"";
    else out.push_back(c);
  }
  out += "\"";
  return out;
}

}  // namespace

void WriteCsv(const Table& table, std::ostream& out, char delimiter) {
  const auto names = table.ColumnNames();
  for (size_t c = 0; c < names.size(); ++c) {
    if (c) out << delimiter;
    out << EscapeCsv(names[c], delimiter);
  }
  out << '\n';
  for (size_t r = 0; r < table.NumRows(); ++r) {
    for (size_t c = 0; c < table.NumColumns(); ++c) {
      if (c) out << delimiter;
      const Column& col = table.column(c);
      if (!col.IsNull(r)) {
        out << EscapeCsv(col.GetValue(r).ToString(), delimiter);
      }
    }
    out << '\n';
  }
  // operator<< on a failed stream is a silent no-op, so a full disk or
  // closed pipe would otherwise yield a truncated file and a clean
  // return. Flush and check once at the end — failbit/badbit are sticky,
  // so this catches any write failure above.
  out.flush();
  if (!out.good()) {
    throw StorageError(StorageErrorKind::kIo,
                       "csv: stream write failed (stream not good after "
                       "flush)");
  }
}

void WriteCsvFile(const Table& table, const std::string& path,
                  char delimiter) {
  std::ofstream f(path);
  if (!f) throw std::runtime_error("csv: cannot open for write " + path);
  WriteCsv(table, f, delimiter);
  f.close();
  if (!f.good()) {
    throw StorageError(StorageErrorKind::kIo,
                       "csv: write failed closing " + path);
  }
}

}  // namespace causumx
