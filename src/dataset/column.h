// Typed column storage.
//
// Categorical columns are dictionary-encoded: the column stores int32
// codes plus a dictionary of distinct strings. This keeps the hot paths
// (predicate evaluation, grouping, Apriori item extraction) integer-only.

#ifndef CAUSUMX_DATASET_COLUMN_H_
#define CAUSUMX_DATASET_COLUMN_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "dataset/value.h"

namespace causumx {

/// A single named, typed column. Null entries are represented by a
/// sentinel (kNullCode for categorical, NaN for double, kNullInt for int).
class Column {
 public:
  static constexpr int32_t kNullCode = -1;
  static constexpr int64_t kNullInt = INT64_MIN;

  Column(std::string name, ColumnType type);

  /// Deep copy (the atomic distinct-count cache carries its value over).
  /// Used by Table::Clone for copy-on-write append snapshots.
  Column(const Column& other);
  Column& operator=(const Column&) = delete;

  const std::string& name() const { return name_; }
  ColumnType type() const { return type_; }
  size_t size() const;

  // --- Appending ----------------------------------------------------------
  void AppendInt(int64_t v);
  void AppendDouble(double v);
  void AppendCategorical(const std::string& v);
  void AppendNull();
  void AppendValue(const Value& v);

  // --- Access -------------------------------------------------------------
  bool IsNull(size_t row) const;
  int64_t GetInt(size_t row) const { return ints_[row]; }
  double GetDouble(size_t row) const { return doubles_[row]; }
  int32_t GetCode(size_t row) const { return codes_[row]; }
  const std::string& DictString(int32_t code) const { return dict_[code]; }

  /// Numeric view of any row: ints/doubles as-is, categorical as its code.
  /// Null rows return NaN. Used by the regression encoder and CI tests.
  double GetNumeric(size_t row) const;

  /// Cell as a Value (categoricals decode to strings).
  Value GetValue(size_t row) const;

  /// Dictionary code for a string; kNullCode when absent. Categorical only.
  int32_t CodeOf(const std::string& s) const;

  /// Dictionary size (categorical) or count of distinct values (numeric;
  /// computed on demand, O(n log n) first call, cached until next append).
  size_t NumDistinct() const;

  /// Distinct non-null values in this column, ascending.
  std::vector<Value> DistinctValues() const;

  const std::vector<std::string>& dictionary() const { return dict_; }

  /// Raw typed storage for the kernel layer (util/kernels.h), size()
  /// elements each; nulls are in-band sentinels (kNullCode / kNullInt /
  /// NaN). Each accessor is only meaningful for the matching type() —
  /// the others return an empty array's data pointer.
  const int32_t* codes_data() const { return codes_.data(); }
  const int64_t* ints_data() const { return ints_.data(); }
  const double* doubles_data() const { return doubles_.data(); }

  void Reserve(size_t n);

 private:
  std::string name_;
  ColumnType type_;

  std::vector<int64_t> ints_;
  std::vector<double> doubles_;
  std::vector<int32_t> codes_;
  std::vector<std::string> dict_;
  std::unordered_map<std::string, int32_t> dict_index_;

  /// Lazily computed distinct count; -1 = stale. Atomic so concurrent
  /// readers (phase-2 mining workers, service queries) may race only
  /// into recomputing the same idempotent value.
  mutable std::atomic<int64_t> cached_distinct_{-1};
};

}  // namespace causumx

#endif  // CAUSUMX_DATASET_COLUMN_H_
