// The aggregate-view query engine: SELECT A_gb, AVG(A_avg) FROM D
// WHERE phi GROUP BY A_gb  (Section 4 of the paper).

#ifndef CAUSUMX_DATASET_GROUP_QUERY_H_
#define CAUSUMX_DATASET_GROUP_QUERY_H_

#include <string>
#include <vector>

#include "dataset/pattern.h"
#include "dataset/table.h"

namespace causumx {

// Forward declarations keep this dataset-layer header free of hard
// dependencies on the engine and util execution machinery; the sharded
// overload's implementation includes them. (ShardPlan itself depends
// only on src/util, so no include cycle is possible.)
class ShardPlan;
class ThreadPool;

/// A group-by-average query.
struct GroupByAvgQuery {
  std::vector<std::string> group_by;  ///< A_gb: categorical attributes.
  std::string avg_attribute;          ///< A_avg: numeric outcome.
  Pattern where;                      ///< phi (empty = no filter).

  /// "SELECT Country, AVG(Salary) FROM D GROUP BY Country" rendering.
  std::string ToSql(const std::string& relation = "D") const;
};

/// One output group: its key values, the AVG, and the member rows.
struct GroupResult {
  std::vector<Value> key;       ///< values of A_gb, in query order.
  double average = 0.0;         ///< AVG(A_avg) over the group's rows.
  size_t count = 0;             ///< number of contributing tuples.
  std::vector<size_t> rows;     ///< row indices in the (filtered) table.

  /// "US" or "US|Engineering" composite-key rendering.
  std::string KeyString() const;
};

/// The evaluated aggregate view Q(D).
class AggregateView {
 public:
  AggregateView() = default;

  /// Evaluates the query. Rows failing WHERE or with a null in any group-by
  /// or AVG attribute are excluded. Groups are ordered by first appearance.
  /// Averages use blocked compensated (Kahan) summation — per-64-row-block
  /// partials merged in block order — so large groups with large-offset
  /// values keep full precision and the result is bit-identical to the
  /// sharded overload below for every shard count. Group keys compare by
  /// exact dictionary code / numeric bit pattern (no per-row string
  /// rendering).
  static AggregateView Evaluate(const Table& table,
                                const GroupByAvgQuery& query);

  /// Shard-parallel evaluation: the WHERE mask, the per-row group
  /// assignment, and the per-group block partial sums are computed per
  /// shard on `pool` (null = serial), then merged deterministically in
  /// shard order. Because shard boundaries align to summation blocks,
  /// the result — group order, keys, counts, member rows, and averages,
  /// bit for bit — equals the single-shard overload above for any plan.
  static AggregateView Evaluate(const Table& table,
                                const GroupByAvgQuery& query,
                                const ShardPlan& plan, ThreadPool* pool);

  /// Reference evaluation keyed by rendered key strings (the
  /// pre-dictionary-code path), kept as the oracle the fast path is
  /// tested bit-identical against. Same blocked summation. Note the
  /// one intended divergence: string keys round doubles to 6 significant
  /// digits (conflating near-equal keys) and can alias across composite
  /// fields; the production path is exact.
  static AggregateView EvaluateReference(const Table& table,
                                         const GroupByAvgQuery& query);

  const GroupByAvgQuery& query() const { return query_; }
  size_t NumGroups() const { return groups_.size(); }
  const std::vector<GroupResult>& groups() const { return groups_; }
  const GroupResult& group(size_t i) const { return groups_[i]; }

  /// Group index that a table row belongs to, or -1 if filtered out.
  int32_t GroupOfRow(size_t row) const { return row_group_[row]; }

  /// All row indices that participate in some group.
  std::vector<size_t> ActiveRows() const;

 private:
  GroupByAvgQuery query_;
  std::vector<GroupResult> groups_;
  std::vector<int32_t> row_group_;
};

}  // namespace causumx

#endif  // CAUSUMX_DATASET_GROUP_QUERY_H_
