#include "dataset/predicate.h"

#include <stdexcept>

namespace causumx {

const char* CompareOpSymbol(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "=";
    case CompareOp::kLt:
      return "<";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGe:
      return ">=";
  }
  return "?";
}

namespace {

bool ApplyOp(CompareOp op, int cmp) {
  switch (op) {
    case CompareOp::kEq:
      return cmp == 0;
    case CompareOp::kLt:
      return cmp < 0;
    case CompareOp::kGt:
      return cmp > 0;
    case CompareOp::kLe:
      return cmp <= 0;
    case CompareOp::kGe:
      return cmp >= 0;
  }
  return false;
}

}  // namespace

bool SimplePredicate::Matches(const Table& table, size_t row) const {
  const Column& col = table.column(attribute);
  if (col.IsNull(row)) return false;
  if (col.type() == ColumnType::kCategorical) {
    // Categorical supports equality only against string constants; ordered
    // ops fall back to lexicographic comparison of the decoded string.
    const std::string& cell = col.DictString(col.GetCode(row));
    const std::string rhs =
        value.is_string() ? value.AsString() : value.ToString();
    return ApplyOp(op, cell.compare(rhs));
  }
  const double cell = col.GetNumeric(row);
  const double rhs = value.AsDouble();
  int cmp = 0;
  if (cell < rhs) {
    cmp = -1;
  } else if (cell > rhs) {
    cmp = 1;
  }
  return ApplyOp(op, cmp);
}

std::string SimplePredicate::ToString() const {
  return attribute + " " + CompareOpSymbol(op) + " " + value.ToString();
}

bool SimplePredicate::operator==(const SimplePredicate& other) const {
  return attribute == other.attribute && op == other.op &&
         value.ToString() == other.value.ToString();
}

bool SimplePredicate::Less(const SimplePredicate& other) const {
  if (attribute != other.attribute) return attribute < other.attribute;
  if (op != other.op) return static_cast<int>(op) < static_cast<int>(other.op);
  return value.ToString() < other.value.ToString();
}

}  // namespace causumx
