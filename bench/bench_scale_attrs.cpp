// Reproduces Fig. 12: CauSumX runtime vs the number of attributes
// (random attribute exclusion on SO and Accidents). Expected shape:
// roughly linear growth for CauSumX thanks to the Section 5.2 pruning —
// versus the exponential growth Brute-Force would exhibit.

#include <algorithm>

#include "bench/bench_util.h"
#include "util/rng.h"
#include "util/timer.h"

using namespace causumx;

namespace {

// Keeps the query's attributes plus a random subset of the rest.
Table WithAttributeBudget(const GeneratedDataset& ds, size_t num_attrs,
                          uint64_t seed) {
  std::vector<std::string> required = ds.default_query.group_by;
  required.push_back(ds.default_query.avg_attribute);
  std::vector<std::string> optional;
  for (const auto& name : ds.table.ColumnNames()) {
    if (std::find(required.begin(), required.end(), name) ==
        required.end()) {
      optional.push_back(name);
    }
  }
  Rng rng(seed);
  rng.Shuffle(&optional);
  std::vector<std::string> keep = required;
  for (size_t i = 0; i < optional.size() && keep.size() < num_attrs; ++i) {
    keep.push_back(optional[i]);
  }
  return ds.table.SelectColumns(keep);
}

}  // namespace

int main() {
  const double scale = bench::BenchScale();
  bench::Banner("Fig. 12", "runtime vs number of attributes");

  const char* datasets[] = {"SO", "Accidents"};
  for (const char* name : datasets) {
    const GeneratedDataset ds = MakeDatasetByName(name, scale);
    const CauSumXConfig config =
        bench::ConfigFor(ds, bench::PaperDefaultConfig());
    std::printf("\n%s (%zu rows)\n", name, ds.table.NumRows());
    std::printf("%10s %12s %14s\n", "attrs", "runtime", "CATEs-evaluated");
    for (size_t attrs :
         {size_t{6}, size_t{10}, size_t{14}, size_t{18},
          ds.table.NumColumns()}) {
      if (attrs > ds.table.NumColumns()) continue;
      const Table sub = WithAttributeBudget(ds, attrs, 11);
      Timer timer;
      const CauSumXResult r =
          RunCauSumX(sub, ds.default_query, ds.dag, config);
      std::printf("%10zu %11.2fs %14zu\n", sub.NumColumns(),
                  timer.Seconds(), r.treatment_patterns_evaluated);
    }
  }
  return 0;
}
