// Reproduces Fig. 10(a, b): precision and recall of the grouping- and
// treatment-pattern mining heuristics against the exhaustive Brute-Force
// reference, on the synthetic dataset with known ground truth.
//
// Protocol (Section 6.3): precision/recall are computed on *tuple sets* —
// for grouping patterns, the tuples covered by the heuristic's selected
// patterns vs those covered by Brute-Force's; for treatment patterns,
// the treated group per grouping pattern under the heuristic's top
// treatment vs under Brute-Force's.

#include <algorithm>

#include "baselines/brute_force.h"
#include "bench/bench_util.h"
#include "datagen/synthetic.h"
#include "mining/grouping_miner.h"
#include "mining/treatment_miner.h"

using namespace causumx;

namespace {

struct Pr {
  double precision = 0;
  double recall = 0;
};

Pr TupleSetPr(const Bitset& ours, const Bitset& reference) {
  Pr pr;
  const Bitset both = ours & reference;
  pr.precision = ours.Count() == 0
                     ? 1.0
                     : static_cast<double>(both.Count()) /
                           static_cast<double>(ours.Count());
  pr.recall = reference.Count() == 0
                  ? 1.0
                  : static_cast<double>(both.Count()) /
                        static_cast<double>(reference.Count());
  return pr;
}

}  // namespace

int main() {
  bench::Banner("Fig. 10(a)", "grouping-pattern mining precision/recall");
  std::printf("%20s %10s %10s\n", "#grouping-attrs", "precision", "recall");
  for (size_t attrs : {1, 2, 3, 4, 5}) {
    SyntheticOptions opt;
    opt.num_rows = 1000;  // the paper's n = 1k
    opt.num_grouping_attrs = attrs;
    opt.num_treatment_attrs = 3;
    const GeneratedDataset ds = MakeSyntheticDataset(opt);
    const AggregateView view =
        AggregateView::Evaluate(ds.table, ds.default_query);

    // Heuristic: Apriori-mined grouping patterns.
    GroupingMinerOptions gopt;
    gopt.apriori.min_support = 0.1;
    gopt.include_per_group_patterns = false;
    const auto mined = MineGroupingPatterns(
        ds.table, view, ds.grouping_attribute_hint, gopt);

    // Reference: all equality patterns (Apriori at support 0 over the
    // same attributes is the exhaustive set for this schema).
    GroupingMinerOptions exhaustive = gopt;
    exhaustive.apriori.min_support = 0.0;
    const auto all = MineGroupingPatterns(
        ds.table, view, ds.grouping_attribute_hint, exhaustive);

    Bitset ours(ds.table.NumRows()), reference(ds.table.NumRows());
    for (const auto& p : mined) ours |= p.rows;
    for (const auto& p : all) reference |= p.rows;
    const Pr pr = TupleSetPr(ours, reference);
    std::printf("%20zu %10.3f %10.3f\n", attrs, pr.precision, pr.recall);
  }

  bench::Banner("Fig. 10(b)", "treatment-pattern mining precision/recall");
  std::printf("%20s %10s %10s\n", "#treatment-attrs", "precision", "recall");
  for (size_t tattrs : {2, 3, 4, 5}) {
    SyntheticOptions opt;
    opt.num_rows = 1000;
    opt.num_grouping_attrs = 2;
    opt.num_treatment_attrs = tattrs;
    const GeneratedDataset ds = MakeSyntheticDataset(opt);
    const AggregateView view =
        AggregateView::Evaluate(ds.table, ds.default_query);
    GroupingMinerOptions gopt;
    gopt.apriori.min_support = 0.1;
    gopt.include_per_group_patterns = false;
    const auto grouping = MineGroupingPatterns(
        ds.table, view, ds.grouping_attribute_hint, gopt);

    EffectEstimator estimator(ds.table, ds.dag, {});
    const auto atoms = GenerateAtomicTreatments(
        ds.table, ds.treatment_attribute_hint, {});

    double precision_sum = 0, recall_sum = 0;
    size_t measured = 0;
    for (const auto& gp : grouping) {
      // Heuristic top treatment (lattice with pruning).
      const auto ours = MineTopTreatment(estimator, gp.rows, "O",
                                         ds.treatment_attribute_hint,
                                         TreatmentSign::kPositive);
      if (!ours) continue;
      // Brute-force best treatment: exhaustive pairs of atoms.
      Pattern best;
      double best_cate = 0;
      auto consider = [&](const Pattern& p) {
        const EffectEstimate est = estimator.EstimateCate(p, "O", gp.rows);
        if (est.Significant() && est.cate > best_cate) {
          best_cate = est.cate;
          best = p;
        }
      };
      for (size_t i = 0; i < atoms.size(); ++i) {
        consider(Pattern({atoms[i]}));
        for (size_t j = i + 1; j < atoms.size(); ++j) {
          if (atoms[i].attribute == atoms[j].attribute) continue;
          consider(Pattern({atoms[i], atoms[j]}));
        }
      }
      if (best.IsEmpty()) continue;
      const Bitset ours_rows = ours->pattern.EvaluateOn(ds.table, gp.rows);
      const Bitset ref_rows = best.EvaluateOn(ds.table, gp.rows);
      const Pr pr = TupleSetPr(ours_rows, ref_rows);
      precision_sum += pr.precision;
      recall_sum += pr.recall;
      ++measured;
    }
    if (measured == 0) {
      std::printf("%20zu %10s %10s\n", tattrs, "-", "-");
      continue;
    }
    std::printf("%20zu %10.3f %10.3f\n", tattrs,
                precision_sum / static_cast<double>(measured),
                recall_sum / static_cast<double>(measured));
  }
  std::printf(
      "\nExpected shape (paper): recall stays high throughout; precision\n"
      "dips as the pattern space grows but remains above ~0.75.\n");
  return 0;
}
