// Ablation study for the design choices DESIGN.md §6 calls out:
//  1. lattice pruning (sign filter + top-50% expansion) vs full lattice,
//  2. DAG-based attribute pruning on vs off (via a parents-only DAG),
//  3. CATE estimation method: regression adjustment vs IPW,
//  4. final step: LP rounding vs greedy vs exact.
// Reported: runtime, explainability, coverage — quantifying what each
// optimization buys and costs.

#include "bench/bench_util.h"
#include "util/timer.h"

using namespace causumx;

namespace {

void Report(const char* label, const GeneratedDataset& ds,
            const CauSumXConfig& config) {
  Timer timer;
  const CauSumXResult r =
      RunCauSumX(ds.table, ds.default_query, ds.dag, config);
  std::printf("%-34s %9.2fs %14.3f %9.1f%% %10zu\n", label, timer.Seconds(),
              r.summary.total_explainability,
              100 * r.summary.CoverageFraction(),
              r.treatment_patterns_evaluated);
}

}  // namespace

int main() {
  const double scale = bench::BenchScale();
  const GeneratedDataset ds = MakeDatasetByName("SO", scale);
  const CauSumXConfig base = bench::ConfigFor(ds, bench::PaperDefaultConfig());

  bench::Banner("Ablation", "design choices on the SO replica");
  std::printf("%-34s %10s %14s %10s %10s\n", "variant", "runtime",
              "explainability", "coverage", "CATEs");

  Report("baseline (all optimizations)", ds, base);

  {
    CauSumXConfig config = base;
    config.treatment.level_keep_fraction = 1.0;
    Report("no top-50% lattice pruning", ds, config);
  }
  {
    CauSumXConfig config = base;
    config.treatment.near_zero_fraction = 0.0;
    Report("no near-zero CATE pruning", ds, config);
  }
  {
    CauSumXConfig config = base;
    config.treatment.max_depth = 1;
    Report("atoms only (depth 1)", ds, config);
  }
  {
    CauSumXConfig config = base;
    config.estimator.method = EstimationMethod::kIpw;
    Report("IPW estimator (Sec. 7 ext.)", ds, config);
  }
  {
    CauSumXConfig config = base;
    config.estimator.sample_cap = 2000;
    Report("aggressive CATE sampling (2k)", ds, config);
  }
  {
    CauSumXConfig config = base;
    config.solver = FinalStepSolver::kGreedy;
    Report("greedy last step", ds, config);
  }
  {
    CauSumXConfig config = base;
    config.solver = FinalStepSolver::kExact;
    Report("exact ILP last step", ds, config);
  }
  {
    CauSumXConfig config = base;
    config.num_threads = 1;
    Report("single-threaded mining", ds, config);
  }

  std::printf(
      "\nReading guide: pruning trades a few percent of explainability\n"
      "for large runtime cuts; IPW corroborates the regression CATEs;\n"
      "the exact ILP matches LP rounding on this instance size.\n");
  return 0;
}
