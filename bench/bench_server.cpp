// bench_server — end-to-end throughput of the embedded HTTP serving
// layer: concurrent keep-alive clients against `causumx serve`'s REST
// surface (in-process), plus the warm-cache repeat property measured
// over the network instead of the library API.
//
// Acceptance (CI smoke-runs this):
//   1. every HTTP response carries a "summary" bit-identical to the
//      CLI's --json output for the same query (the reference is the
//      same RunCauSumX call the CLI makes);
//   2. a warm repeat served over HTTP beats a cold-cache query >= 2x
//      (median of paired rounds; the service's cross-query caches are
//      what the server exposes, so the speedup must survive the HTTP
//      hop);
//   3. N concurrent clients all receive that same bit-identical answer.
// Exits non-zero when any property fails.

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "causal/discovery.h"
#include "core/json_export.h"
#include "datagen/synthetic.h"
#include "server/http_server.h"
#include "server/rest_api.h"
#include "service/explanation_service.h"
#include "util/json.h"
#include "util/timer.h"

using namespace causumx;
using namespace causumx::bench;

namespace {

// The exact "summary" text from an explain response body (the final
// member when cache stats are off).
std::string ExtractSummary(const std::string& body) {
  const std::string marker = "\"summary\":";
  const size_t pos = body.find(marker);
  if (pos == std::string::npos || body.empty() || body.back() != '}') {
    return "";
  }
  return body.substr(pos + marker.size(),
                     body.size() - pos - marker.size() - 1);
}

std::string MakeExplainBody(const GeneratedDataset& ds) {
  JsonWriter w;
  w.BeginObject()
      .Key("table").String("bench")
      .Key("group_by").BeginArray();
  for (const auto& a : ds.default_query.group_by) w.String(a);
  w.EndArray()
      .Key("avg").String(ds.default_query.avg_attribute)
      .Key("discover").String("nodag")
      .Key("per_group_patterns").Bool(false)
      .Key("grouping_attrs").BeginArray();
  for (const auto& a : ds.grouping_attribute_hint) w.String(a);
  w.EndArray().Key("treatment_attrs").BeginArray();
  for (const auto& a : ds.treatment_attribute_hint) w.String(a);
  w.EndArray().EndObject();
  return w.str();
}

}  // namespace

int main() {
  Banner("server", "concurrent HTTP clients vs the CLI reference");

  SyntheticOptions gen;
  // Same floor as bench_service: below ~12k rows the warm repeat is a
  // few milliseconds and the ratio drowns in scheduler noise.
  gen.num_rows =
      std::max<size_t>(12000, static_cast<size_t>(20000 * BenchScale()));
  gen.num_treatment_attrs = 5;
  const GeneratedDataset ds = MakeSyntheticDataset(gen);
  std::printf("dataset: %s scaled to %zu rows\n", ds.name.c_str(),
              ds.table.NumRows());

  // The reference: what the CLI computes for this query (RunCauSumX with
  // the request's exact parameters — executor defaults + the allowlists
  // in the body). Results are thread-count invariant by the determinism
  // guarantee, so one reference covers every client.
  CauSumXConfig config;
  config.grouping_attribute_allowlist = ds.grouping_attribute_hint;
  config.treatment_attribute_allowlist = ds.treatment_attribute_hint;
  config.grouping.include_per_group_patterns = false;
  config.num_threads = 1;
  const CausalDag dag = MakeNoDag(ds.table, ds.default_query.avg_attribute);
  const CauSumXResult reference =
      RunCauSumX(ds.table, ds.default_query, dag, config);
  const std::string expected =
      SummaryToJson(reference.summary, &ds.default_query);

  ExplanationService service;
  service.RegisterTable("bench",
                        std::make_shared<const Table>(ds.table.Clone()));

  HttpServerOptions server_options;
  server_options.port = 0;  // ephemeral
  HttpServer server(MakeRestHandler(service), server_options);
  server.Start();
  std::printf("serving on 127.0.0.1:%u (%zu workers)\n",
              unsigned{server.port()}, server.options().num_threads);

  const std::string body = MakeExplainBody(ds);
  bool ok = true;

  // --- warm repeat over HTTP ------------------------------------------------
  // Paired rounds: re-registering the table drops its caches, so each
  // round times one cold HTTP query immediately followed by one warm
  // repeat under the same machine conditions; the median per-pair ratio
  // is the noise-robust statistic.
  constexpr int kPairs = 5;
  std::vector<double> ratios;
  double cold_best = 1e30, warm_best = 1e30;
  HttpClient pair_client("127.0.0.1", server.port());
  for (int i = 0; i < kPairs; ++i) {
    service.RegisterTable("bench",
                          std::make_shared<const Table>(ds.table.Clone()));
    Timer timer;
    const HttpClient::Response cold =
        pair_client.Request("POST", "/v1/explain", body);
    const double cold_s = timer.Seconds();
    timer.Reset();
    const HttpClient::Response warm =
        pair_client.Request("POST", "/v1/explain", body);
    const double warm_s = timer.Seconds();
    if (cold.status != 200 || warm.status != 200 ||
        ExtractSummary(cold.body) != expected ||
        ExtractSummary(warm.body) != expected) {
      std::printf("FAIL: pair %d response mismatch (status %d/%d)\n", i,
                  cold.status, warm.status);
      ok = false;
      break;
    }
    cold_best = std::min(cold_best, cold_s);
    warm_best = std::min(warm_best, warm_s);
    ratios.push_back(cold_s / warm_s);
  }
  double speedup = 0;
  if (!ratios.empty()) {
    std::sort(ratios.begin(), ratios.end());
    speedup = ratios[ratios.size() / 2];
  }
  std::printf("\n%-34s %10s\n", "mode", "seconds");
  std::printf("%-34s %10.4f\n", "HTTP explain (cold cache, best)", cold_best);
  std::printf("%-34s %10.4f\n", "HTTP explain (warm repeat, best)", warm_best);
  std::printf("warm repeat speedup over HTTP: %.1fx (median of %d pairs)\n",
              speedup, kPairs);
  if (speedup < 2.0) {
    std::printf("FAIL: warm repeat speedup %.2fx below the 2x bar\n", speedup);
    ok = false;
  }

  // --- concurrent clients ---------------------------------------------------
  constexpr int kClients = 4;
  constexpr int kRequestsEach = 4;
  std::atomic<int> mismatches{0};
  std::atomic<int> errors{0};
  Timer wall;
  {
    std::vector<std::thread> clients;
    clients.reserve(kClients);
    for (int c = 0; c < kClients; ++c) {
      clients.emplace_back([&] {
        HttpClient client("127.0.0.1", server.port());
        for (int i = 0; i < kRequestsEach; ++i) {
          try {
            const HttpClient::Response r =
                client.Request("POST", "/v1/explain", body);
            if (r.status != 200) {
              errors.fetch_add(1);
            } else if (ExtractSummary(r.body) != expected) {
              mismatches.fetch_add(1);
            }
          } catch (const std::exception&) {
            errors.fetch_add(1);
          }
        }
      });
    }
    for (auto& t : clients) t.join();
  }
  const double wall_s = wall.Seconds();
  const int total = kClients * kRequestsEach;
  std::printf("\n%d clients x %d warm requests: %.4fs total, %.1f req/s\n",
              kClients, kRequestsEach, wall_s, total / wall_s);
  if (errors.load() > 0 || mismatches.load() > 0) {
    std::printf("FAIL: %d transport errors, %d summary mismatches\n",
                errors.load(), mismatches.load());
    ok = false;
  }

  const HttpServerCounters counters = server.counters();
  std::printf("server counters: %llu connections, %llu requests, "
              "%llu rejected, %llu parse errors\n",
              (unsigned long long)counters.connections_accepted,
              (unsigned long long)counters.requests_handled,
              (unsigned long long)counters.requests_rejected,
              (unsigned long long)counters.parse_errors);
  server.Stop();

  std::printf("\n%s\n", ok ? "PASS" : "FAIL");
  return ok ? EXIT_SUCCESS : EXIT_FAILURE;
}
