// Reproduces Fig. 8(a-c): runtime, overall explainability, and coverage
// of CauSumX vs Greedy-Last-Step vs Brute-Force vs Brute-Force-LP across
// the datasets. As in the paper, the Brute-Force variants only finish on
// German (here: a CATE-evaluation budget plays the role of the paper's
// 3-hour cutoff) and are reported as "cutoff" elsewhere.

#include <string>
#include <vector>

#include "baselines/brute_force.h"
#include "bench/bench_util.h"
#include "util/timer.h"

using namespace causumx;

namespace {

struct Row {
  std::string dataset;
  std::string variant;
  double seconds = 0;
  double explainability = 0;
  double coverage = 0;
  bool finished = true;
};

void Print(const Row& row) {
  if (row.finished) {
    std::printf("%-12s %-18s %9.2fs %16.3f %10.2f%%\n", row.dataset.c_str(),
                row.variant.c_str(), row.seconds, row.explainability,
                100.0 * row.coverage);
  } else {
    std::printf("%-12s %-18s %9s %16s %11s\n", row.dataset.c_str(),
                row.variant.c_str(), "cutoff", "-", "-");
  }
}

}  // namespace

int main() {
  const double scale = bench::BenchScale();
  bench::Banner("Fig. 8(a-c)",
                "runtime / explainability / coverage by variant");
  std::printf("%-12s %-18s %10s %16s %11s\n", "dataset", "variant",
              "runtime", "explainability", "coverage");

  const std::vector<std::string> datasets = {"German", "Adult", "SO",
                                             "IMPUS-CPS", "Accidents"};
  for (const auto& name : datasets) {
    const GeneratedDataset ds =
        MakeDatasetByName(name, name == "German" ? 1.0 : scale);
    const CauSumXConfig base =
        bench::ConfigFor(ds, bench::PaperDefaultConfig());

    // CauSumX (LP rounding last step).
    {
      Timer timer;
      const CauSumXResult r =
          RunCauSumX(ds.table, ds.default_query, ds.dag, base);
      Print({name, "CauSumX", timer.Seconds(),
             r.summary.total_explainability, r.summary.CoverageFraction()});
    }
    // Greedy-Last-Step.
    {
      CauSumXConfig config = base;
      config.solver = FinalStepSolver::kGreedy;
      Timer timer;
      const CauSumXResult r =
          RunCauSumX(ds.table, ds.default_query, ds.dag, config);
      Print({name, "Greedy-Last-Step", timer.Seconds(),
             r.summary.total_explainability, r.summary.CoverageFraction()});
    }
    // Brute-Force variants: only feasible on German (paper's finding);
    // elsewhere the evaluation budget models the paper's time cutoff.
    const bool small = ds.table.NumRows() <= 2000;
    for (const bool lp : {false, true}) {
      BruteForceConfig bf;
      bf.k = base.k;
      bf.theta = base.theta;
      bf.estimator = base.estimator;
      bf.treatment = base.treatment;
      bf.use_lp_rounding = lp;
      bf.max_cate_evaluations = small ? 0 : 200;
      Timer timer;
      const BruteForceResult r =
          RunBruteForce(ds.table, ds.default_query, ds.dag, bf);
      Row row{name, lp ? "Brute-Force-LP" : "Brute-Force", timer.Seconds(),
              r.summary.total_explainability,
              r.summary.num_groups == 0
                  ? 0.0
                  : static_cast<double>(r.summary.covered_groups) /
                        static_cast<double>(r.summary.num_groups)};
      row.finished = !r.hit_evaluation_cap;
      Print(row);
    }
  }
  std::printf(
      "\nExpected shape (paper): CauSumX and Greedy-Last-Step run orders of\n"
      "magnitude faster than Brute-Force; Brute-Force finishes only on\n"
      "German with slightly higher explainability; CauSumX matches Greedy\n"
      "on explainability while satisfying coverage more reliably.\n");
  return 0;
}
