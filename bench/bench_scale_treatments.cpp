// Reproduces Fig. 13: CauSumX runtime vs the number of candidate
// treatment patterns, controlled by the numeric discretization bin count
// (more bins => more atomic predicates => larger lattice). Expected
// shape: roughly linear growth for all variants.

#include "bench/bench_util.h"
#include "mining/treatment_miner.h"
#include "util/timer.h"

using namespace causumx;

int main() {
  const double scale = bench::BenchScale();
  bench::Banner("Fig. 13", "runtime vs number of treatment patterns");

  const char* datasets[] = {"Adult", "IMPUS-CPS"};
  for (const char* name : datasets) {
    const GeneratedDataset ds = MakeDatasetByName(name, scale);
    std::printf("\n%s (%zu rows)\n", name, ds.table.NumRows());
    std::printf("%14s %14s %12s\n", "numeric-bins", "atomic-atoms",
                "runtime");
    for (size_t bins : {2, 4, 8, 12}) {
      CauSumXConfig config =
          bench::ConfigFor(ds, bench::PaperDefaultConfig());
      config.treatment.numeric_bins = bins;
      config.estimator.sample_cap = 50'000;

      // Count the atoms this setting induces (over all non-FD attrs).
      const AttributePartition part = PartitionAttributes(
          ds.table, ds.default_query.group_by,
          ds.default_query.avg_attribute);
      const auto atoms = GenerateAtomicTreatments(
          ds.table, part.treatment_attributes, config.treatment);

      Timer timer;
      RunCauSumX(ds.table, ds.default_query, ds.dag, config);
      std::printf("%14zu %14zu %11.2fs\n", bins, atoms.size(),
                  timer.Seconds());
    }
  }
  return 0;
}
