// bench_monitor — incremental windowed monitoring versus a cold
// from-scratch evaluation of every window.
//
// The monitoring workload: a sliding-window monitor watches an aggregate
// view while rows arrive. At each slide boundary the monitor pays only
// the delta — it extends cached bitsets by the newly appended rows,
// compacts expired rows through the exact retract path, and re-estimates
// only the subpopulations the boundary dirtied (appended rows land in
// the newest buckets of the synthetic grouping attributes and expired
// rows leave the oldest, so the middle buckets' CATE memos carry over).
// The cold baseline rebuilds a fresh table of exactly the surviving rows
// and runs the full pipeline from scratch, per window.
//
// Acceptance (CI smoke-runs this): every window summary the monitor
// emits is bit-identical to the cold rebuild of its surviving rows, and
// the per-boundary incremental evaluation is >= 3x faster than the cold
// window evaluation. Both statistics use the best round per side, so
// timing noise on a shared box only ever tightens the comparison. Exits
// non-zero on either failure.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_util.h"
#include "causal/dag_io.h"
#include "core/json_export.h"
#include "datagen/synthetic.h"
#include "stream/monitor.h"
#include "util/json.h"
#include "util/timer.h"

using namespace causumx;
using namespace causumx::bench;

namespace {

// Splices the raw SummaryToJson payload out of a "summary" event (the
// event's last member, so it runs to the closing brace).
std::string SummaryPayload(const std::string& event_json) {
  static const std::string kMarker = "\"summary\":";
  const size_t at = event_json.find(kMarker);
  if (at == std::string::npos) return "";
  return event_json.substr(at + kMarker.size(),
                           event_json.size() - at - kMarker.size() - 1);
}

}  // namespace

int main() {
  Banner("monitor", "incremental window evaluation vs cold rebuild");

  const size_t window_rows =
      std::max<size_t>(16000, static_cast<size_t>(32000 * BenchScale()));
  constexpr int kRounds = 5;
  const size_t slide_rows = window_rows / 32;

  SyntheticOptions gen;
  gen.num_rows = window_rows + kRounds * slide_rows;
  gen.num_treatment_attrs = 7;
  // Bucket ranges are contiguous in arrival order: each slide appends
  // into the top bucket of every G_x and expires the bottom, leaving the
  // middle buckets' cached estimates valid — the skew a live view sees.
  gen.buckets_base = 6;  // G1: 12 buckets, G2: 18, G3: 24
  const GeneratedDataset ds = MakeSyntheticDataset(gen);

  // Declare every grouping attribute a confounder (as bench_streaming
  // does): each CATE adjusts for G1/G2/G3, so the estimation work a
  // carried memo saves matches what a production service actually does.
  CausalDag dag = ds.dag;
  for (const std::string& g : ds.grouping_attribute_hint) {
    dag.AddNode(g);
    dag.AddEdge(g, "O");
    for (const std::string& t : ds.treatment_attribute_hint) {
      dag.AddEdge(g, t);
    }
  }

  // Reference configuration for the cold rebuild; the monitor spec below
  // encodes exactly the same knobs. Single-threaded on both sides so the
  // ratio measures cache work saved, not scheduler luck.
  CauSumXConfig config = ConfigFor(ds, PaperDefaultConfig());
  config.num_threads = 1;
  config.apriori_support = 0.05;  // G1 buckets sit at 8.3% support
  config.grouping_attribute_allowlist = {"G1"};

  JsonWriter spec;
  spec.BeginObject()
      .Key("table").String("live")
      .Key("group_by").BeginArray().String("G").EndArray()
      .Key("avg").String("O")
      .Key("dag_text").String(DagToText(dag))
      .Key("grouping_attrs").BeginArray().String("G1").EndArray();
  spec.Key("treatment_attrs").BeginArray();
  for (const std::string& t : ds.treatment_attribute_hint) spec.String(t);
  spec.EndArray()
      .Key("k").Uint(config.k)
      .Key("theta").Double(config.theta)
      .Key("support").Double(config.apriori_support)
      .Key("per_group_patterns").Bool(false)
      .Key("num_threads").Uint(1)
      .Key("emit_summaries").Bool(true);
  spec.Key("window").BeginObject()
      .Key("kind").String("sliding")
      .Key("size_rows").Uint(window_rows)
      .Key("slide_rows").Uint(slide_rows)
      .EndObject();
  spec.EndObject();

  std::printf("dataset: %zu rows; window %zu, slide %zu, %d boundaries\n",
              gen.num_rows, window_rows, slide_rows, kRounds + 1);

  StreamMonitor monitor("m-bench", spec.str(), ds.table,
                        /*mining_pool=*/nullptr);

  // Warm-up: the first window assembles and evaluates cold — the steady
  // state starts once its caches exist.
  monitor.OnAppend(ds.table.MaterializeRows(0, window_rows));

  std::printf("\n%-6s %12s %12s %9s\n", "round", "incremental", "cold window",
              "speedup");
  std::vector<double> inc_times, cold_times;
  bool ok = true;
  size_t at = window_rows;
  for (int round = 0; round < kRounds; ++round) {
    const size_t next = at + slide_rows;

    // Incremental: append one slide of rows — exactly one boundary
    // fires, paying delta extension + retract compaction + dirty-group
    // re-estimation inside the call.
    Timer inc_timer;
    monitor.OnAppend(ds.table.MaterializeRows(at, next));
    const double inc_s = inc_timer.Seconds();

    // Cold: rebuild a fresh table of exactly the surviving rows (fresh
    // dictionaries, as the monitor's compaction produces) and run the
    // full pipeline from scratch.
    Table rebuilt;
    for (size_t c = 0; c < ds.table.NumColumns(); ++c) {
      rebuilt.AddColumn(ds.table.column(c).name(), ds.table.column(c).type());
    }
    rebuilt.AppendRows(ds.table.MaterializeRows(next - window_rows, next));
    Timer cold_timer;
    const CauSumXResult cold =
        RunCauSumX(rebuilt, ds.default_query, dag, config);
    const double cold_s = cold_timer.Seconds();

    at = next;
    inc_times.push_back(inc_s);
    cold_times.push_back(cold_s);
    std::printf("%-6d %11.4fs %11.4fs %8.1fx\n", round + 1, inc_s, cold_s,
                cold_s / inc_s);

    const std::vector<MonitorEvent> events = monitor.EventsSince(0);
    const std::string payload = SummaryPayload(events.back().json);
    if (payload != SummaryToJson(cold.summary, &ds.default_query)) {
      std::printf("FAIL: round %d window summary differs from cold "
                  "rebuild\n", round + 1);
      ok = false;
    }
  }

  const double speedup = *std::min_element(cold_times.begin(),
                                           cold_times.end()) /
                         *std::min_element(inc_times.begin(),
                                           inc_times.end());
  const MonitorStatus status = monitor.Status();
  std::printf("\nincremental speedup: %.1fx (best-of-%d cold / best-of-%d "
              "incremental)\n", speedup, kRounds, kRounds);
  std::printf("monitor: %llu rows observed, %llu windows, %llu events, "
              "%llu cache bytes resident\n",
              (unsigned long long)status.rows_observed,
              (unsigned long long)status.windows_evaluated,
              (unsigned long long)status.last_seq,
              (unsigned long long)status.cache_bytes);
  if (status.windows_evaluated != static_cast<uint64_t>(kRounds) + 1) {
    std::printf("FAIL: expected %d windows, saw %llu\n", kRounds + 1,
                (unsigned long long)status.windows_evaluated);
    ok = false;
  }

  if (speedup < 3.0) {
    std::printf("FAIL: incremental speedup %.2fx below the 3x bar\n",
                speedup);
    ok = false;
  }
  std::printf("\n%s\n", ok ? "PASS" : "FAIL");
  return ok ? EXIT_SUCCESS : EXIT_FAILURE;
}
