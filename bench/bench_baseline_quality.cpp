// Reproduces the Section 6.2 quality comparison (Q1) in machine-readable
// form: CauSumX vs IDS, FRL, Explanation-Table(-G), and the
// XInsight-style pairwise protocol on the SO replica. The paper's claims
// to check: IDS/FRL/Explanation-Table surface correlational rules that
// ignore group structure; XInsight's all-pairs output explodes in size;
// CauSumX returns a small causal summary with per-group variation.

#include <iostream>

#include "baselines/explanation_table.h"
#include "baselines/frl.h"
#include "baselines/ids.h"
#include "baselines/xinsight.h"
#include "bench/bench_util.h"
#include "core/renderer.h"
#include "util/timer.h"

using namespace causumx;

int main() {
  const double scale = bench::BenchScale();
  const GeneratedDataset ds = MakeDatasetByName("SO", scale);
  const AggregateView view =
      AggregateView::Evaluate(ds.table, ds.default_query);

  bench::Banner("Sec. 6.2 (Q1)", "explanation quality vs baselines (SO)");

  {
    CauSumXConfig config = bench::ConfigFor(ds, bench::PaperDefaultConfig());
    config.k = 3;
    config.theta = 1.0;
    Timer timer;
    const CauSumXResult r =
        RunCauSumX(ds.table, ds.default_query, ds.dag, config);
    std::printf("\n[CauSumX]  %.2fs, %zu insights, covers %zu/%zu groups\n",
                timer.Seconds(), r.summary.explanations.size(),
                r.summary.covered_groups, r.summary.num_groups);
    std::cout << RenderSummary(r.summary, ds.style);
  }

  {
    Timer timer;
    IdsConfig config;
    config.max_rules = 5;
    const IdsResult r = RunIds(ds.table, "Salary", config);
    std::printf("\n[IDS]      %.2fs, %zu rules, accuracy %.2f — one global "
                "rule set, no group structure:\n",
                timer.Seconds(), r.rules.size(), r.accuracy);
    for (const auto& rule : r.rules) {
      std::printf("  IF %s THEN %s (conf %.2f, n=%zu)\n",
                  rule.pattern.ToString().c_str(),
                  rule.predicted_class ? "high salary" : "low salary",
                  rule.confidence, rule.support);
    }
  }

  {
    Timer timer;
    FrlConfig config;
    config.max_rules = 5;
    const FrlResult r = RunFrl(ds.table, "Salary", config);
    std::printf("\n[FRL]      %.2fs, %zu rules (falling probabilities):\n",
                timer.Seconds(), r.rules.size());
    for (const auto& rule : r.rules) {
      std::printf("  IF %s THEN P(high)=%.2f (n=%zu)\n",
                  rule.pattern.ToString().c_str(), rule.probability,
                  rule.support);
    }
    std::printf("  ELSE P(high)=%.2f\n", r.default_probability);
  }

  {
    Timer timer;
    ExplanationTableConfig config;
    config.max_patterns = 5;
    const ExplanationTableResult r =
        RunExplanationTable(ds.table, "Salary", config);
    std::printf("\n[Expl-Table] %.2fs, %zu patterns by information gain:\n",
                timer.Seconds(), r.entries.size());
    for (const auto& e : r.entries) {
      std::printf("  %-48.48s rate=%.2f gain=%.1f n=%zu\n",
                  e.pattern.ToString().c_str(), e.positive_rate, e.gain,
                  e.support);
    }
  }

  {
    Timer timer;
    ExplanationTableConfig config;
    config.max_patterns = 4;
    const auto per_group =
        RunExplanationTableG(ds.table, view, "Salary", config);
    size_t total_patterns = 0;
    for (const auto& [_, r] : per_group) total_patterns += r.entries.size();
    std::printf("\n[Expl-Table-G] %.2fs, %zu groups x ~%zu patterns = %zu "
                "rows — per-group but still correlational\n",
                timer.Seconds(), per_group.size(),
                per_group.empty() ? 0 : per_group[0].second.entries.size(),
                total_patterns);
  }

  {
    Timer timer;
    const AttributePartition part = PartitionAttributes(
        ds.table, ds.default_query.group_by,
        ds.default_query.avg_attribute);
    XInsightConfig config;
    config.max_pairs = 40;  // the full 190 pairs exceed any sane budget
    const XInsightResult r = RunXInsight(ds.table, view, ds.dag,
                                         part.treatment_attributes, config);
    std::printf("\n[XInsight-style] %.2fs, %zu/%zu pairs processed%s, "
                "%zu pairwise explanations, output ~%zu KB\n",
                timer.Seconds(), r.pairs_processed, r.pairs_total,
                r.truncated ? " (cutoff)" : "", r.explanations.size(),
                r.output_bytes / 1024);
    for (size_t i = 0; i < 3 && i < r.explanations.size(); ++i) {
      const auto& e = r.explanations[i];
      std::printf("  %s vs %s: %s (CATE %.0f vs %.0f)\n",
                  e.group_a.c_str(), e.group_b.c_str(),
                  e.treatment.ToString().c_str(), e.cate_a, e.cate_b);
    }
  }
  return 0;
}
