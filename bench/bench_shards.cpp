// bench_shards — end-to-end sharded parallel execution versus the serial
// single-shard reference on a synthetic table (1M rows at
// CAUSUMX_BENCH_SCALE=1.0).
//
// Three configurations run the identical cold query (fresh service and
// caches each round, table construction outside the timer):
//
//   serial    --shards 1 --threads 1   (the reference path)
//   pattern   --shards 1 --threads N   (pre-sharding parallelism only:
//                                       phase-2 mining across patterns)
//   sharded   --shards N --threads N   (row shards through the whole hot
//                                       path: segment builds, the view,
//                                       CATE sufficient statistics, the
//                                       greedy scan)
//
// Acceptance (CI smoke-runs this): summaries bit-identical across every
// configuration and round — the sharded engine's core guarantee — and a
// sharded-vs-serial speedup of >= 2.5x when 8 hardware threads are
// available, with the bar scaled down on smaller machines (parallel
// speedup is bounded by the core count; the bar can be pinned with
// CAUSUMX_BENCH_MIN_SPEEDUP). Best-of-rounds timing: noise only ever
// inflates a measurement, so the minimum converges on the true cost.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/json_export.h"
#include "datagen/synthetic.h"
#include "service/explanation_service.h"
#include "util/thread_pool.h"
#include "util/timer.h"

using namespace causumx;
using namespace causumx::bench;

namespace {

struct RunResult {
  std::string summary_json;
  double best_seconds = 0.0;
  EvalEngineStats engine_stats;
};

RunResult RunConfiguration(const GeneratedDataset& ds,
                           const GroupByAvgQuery& query,
                           const CausalDag& dag,
                           const CauSumXConfig& config, size_t shards,
                           size_t threads, int rounds) {
  RunResult result;
  std::vector<double> times;
  for (int round = 0; round < rounds; ++round) {
    Table copy = ds.table.Clone();  // outside the timer
    ServiceOptions options;
    options.num_threads = threads;
    options.num_shards = shards;
    ExplanationService service(options);
    Timer timer;
    service.RegisterTable("t", std::move(copy));
    const CauSumXResult r = service.Explain("t", query, dag, config);
    times.push_back(timer.Seconds());
    const std::string json = SummaryToJson(r.summary);
    if (round == 0) {
      result.summary_json = json;
      result.engine_stats = service.Engine("t")->Stats();
    } else if (json != result.summary_json) {
      std::printf("FAIL: round %d summary differs within one "
                  "configuration\n", round + 1);
      std::exit(EXIT_FAILURE);
    }
  }
  result.best_seconds = *std::min_element(times.begin(), times.end());
  return result;
}

}  // namespace

int main() {
  Banner("shards", "sharded parallel execution vs the serial reference");

  SyntheticOptions gen;
  // 1M rows at full scale; floor at 60k so the workload stays estimation-
  // bound (the per-row work sharding parallelizes) even in CI smoke runs.
  gen.num_rows =
      std::max<size_t>(60000, static_cast<size_t>(1000000 * BenchScale()));
  gen.num_treatment_attrs = 4;
  gen.buckets_base = 6;  // G1: 12 buckets
  const GeneratedDataset ds = MakeSyntheticDataset(gen);
  CauSumXConfig config = ConfigFor(ds, PaperDefaultConfig());
  config.num_threads = 0;  // mine on the service pool
  config.apriori_support = 0.05;  // G1 buckets sit at 8.3% support
  config.grouping_attribute_allowlist = {"G1"};
  // A realistic serving view: moderate group cardinality (G2's 18
  // buckets), explained by patterns over G1's 12 buckets. (The unique-
  // per-tuple G key would make the view itself the bottleneck and its
  // serial group merge the Amdahl ceiling.)
  GroupByAvgQuery query;
  query.group_by = {"G2"};
  query.avg_attribute = "O";

  // Declare the grouping attributes confounders (G_x -> T_y, G_x -> O),
  // as in bench_streaming: every CATE then adjusts over ~50 one-hot
  // design columns — the blocked normal-equation reduction this bench
  // shards is the work a production service actually does.
  CausalDag dag = ds.dag;
  for (const std::string& g : ds.grouping_attribute_hint) {
    dag.AddNode(g);
    dag.AddEdge(g, "O");
    for (const std::string& t : ds.treatment_attribute_hint) {
      dag.AddEdge(g, t);
    }
  }

  const size_t hw = ThreadPool::DefaultThreads();
  size_t threads = hw >= 8 ? 8 : hw;
  if (const char* env = std::getenv("CAUSUMX_BENCH_THREADS")) {
    const int v = std::atoi(env);
    if (v > 0) threads = static_cast<size_t>(v);
  }
  // The acceptance bar: 2.5x at 8 threads (the headline target), scaled
  // to the parallelism actually available on this machine — end-to-end
  // speedup is bounded by the core count, and 2-vCPU CI runners are
  // typically shared/throttled.
  double bar = threads >= 8 ? 2.5 : threads >= 4 ? 1.7 : threads >= 2 ? 1.2
                                                                      : 1.0;
  if (const char* env = std::getenv("CAUSUMX_BENCH_MIN_SPEEDUP")) {
    const double v = std::atof(env);
    if (v > 0) bar = v;
  }
  constexpr int kRounds = 3;
  std::printf("dataset: %zu rows; %zu hardware threads, benching %zu "
              "threads, bar %.2fx\n",
              ds.table.NumRows(), hw, threads, bar);

  const RunResult serial =
      RunConfiguration(ds, query, dag, config, /*shards=*/1, /*threads=*/1, kRounds);
  std::printf("%-28s best %8.3fs\n", "serial (shards=1,threads=1)",
              serial.best_seconds);
  const RunResult pattern =
      RunConfiguration(ds, query, dag, config, /*shards=*/1, threads, kRounds);
  std::printf("%-28s best %8.3fs (%.2fx)\n", "pattern-parallel (shards=1)",
              pattern.best_seconds,
              serial.best_seconds / pattern.best_seconds);
  const RunResult sharded =
      RunConfiguration(ds, query, dag, config, /*shards=*/0, threads, kRounds);
  std::printf("%-28s best %8.3fs (%.2fx)\n", "sharded (shards=auto)",
              sharded.best_seconds,
              serial.best_seconds / sharded.best_seconds);

  std::printf("\nsharded engine: %zu shards, %llu segments built, "
              "%llu segment hits\n",
              sharded.engine_stats.num_shards,
              (unsigned long long)sharded.engine_stats.bitsets_materialized,
              (unsigned long long)sharded.engine_stats.bitset_hits);

  bool ok = true;
  if (pattern.summary_json != serial.summary_json) {
    std::printf("FAIL: pattern-parallel summary differs from serial\n");
    ok = false;
  }
  if (sharded.summary_json != serial.summary_json) {
    std::printf("FAIL: sharded summary differs from serial\n");
    ok = false;
  }
  const double speedup = serial.best_seconds / sharded.best_seconds;
  std::printf("\nend-to-end sharded speedup: %.2fx (bar %.2fx at %zu "
              "threads)\n", speedup, bar, threads);
  if (speedup < bar) {
    std::printf("FAIL: speedup %.2fx below the %.2fx bar\n", speedup, bar);
    ok = false;
  }
  std::printf("\n%s\n", ok ? "PASS" : "FAIL");
  return ok ? EXIT_SUCCESS : EXIT_FAILURE;
}
