// Reproduces Table 1 (sample tuples), Table 3 (dataset statistics:
// tuples, attributes, max values per attribute, #grouping patterns), and
// Fig. 3 (the SO causal DAG, as DOT).

#include <algorithm>

#include "bench/bench_util.h"
#include "dataset/fd.h"
#include "mining/grouping_miner.h"

using namespace causumx;

int main() {
  const double scale = bench::BenchScale();

  bench::Banner("Table 1", "sample tuples of the SO replica");
  {
    const GeneratedDataset ds = MakeDatasetByName("SO", 0.01);
    const char* cols[] = {"Country", "Continent", "Gender",   "Age",
                          "Role",    "Education", "Major",    "Salary"};
    for (const char* c : cols) std::printf("%-18s", c);
    std::printf("\n");
    for (size_t r = 0; r < 5; ++r) {
      for (const char* c : cols) {
        std::printf("%-18.17s",
                    ds.table.column(c).GetValue(r).ToString().c_str());
      }
      std::printf("\n");
    }
  }

  bench::Banner("Table 3", "examined datasets (scaled replicas)");
  std::printf("%-12s %10s %6s %18s %20s\n", "dataset", "tuples", "atts",
              "max-values-per-att", "grouping-patterns");
  for (const std::string& name : RegisteredDatasetNames()) {
    if (name == "Synthetic") continue;  // not part of Table 3
    const GeneratedDataset ds = MakeDatasetByName(name, scale);
    size_t max_values = 0;
    for (size_t c = 0; c < ds.table.NumColumns(); ++c) {
      max_values = std::max(max_values, ds.table.column(c).NumDistinct());
    }
    const AggregateView view =
        AggregateView::Evaluate(ds.table, ds.default_query);
    const AttributePartition part =
        PartitionAttributes(ds.table, ds.default_query.group_by,
                            ds.default_query.avg_attribute);
    GroupingMinerOptions opt;
    opt.apriori.min_support = 0.1;
    const auto patterns = MineGroupingPatterns(
        ds.table, view, part.grouping_attributes, opt);
    std::printf("%-12s %10zu %6zu %18zu %20zu\n", name.c_str(),
                ds.table.NumRows(), ds.table.NumColumns(), max_values,
                patterns.size());
  }

  bench::Banner("Fig. 3", "SO ground-truth causal DAG (core subgraph, DOT)");
  {
    const GeneratedDataset ds = MakeDatasetByName("SO", 0.01);
    CausalDag core;
    for (const char* n : {"Country", "Salary", "Gender", "Ethnicity",
                          "Major", "Education", "Role", "YearsCoding",
                          "Age"}) {
      core.AddNode(n);
    }
    for (const auto& from : core.nodes()) {
      for (const auto& to : ds.dag.Children(from)) {
        if (core.HasNode(to)) core.AddEdge(from, to);
      }
    }
    std::printf("%s", core.ToDot("SO").c_str());
  }
  return 0;
}
