// Reproduces the qualitative case studies: Fig. 2 (SO summary, k=3,
// theta=1), Fig. 6 (SO with sensitive attributes only), Fig. 7
// (Accidents per-region summary), Fig. 18 (German per-purpose summary),
// Fig. 19 (Adult per-occupation-category summary).

#include <cstdio>
#include <iostream>

#include "bench/bench_util.h"
#include "core/renderer.h"

using namespace causumx;

namespace {

void RunCase(const char* figure, const char* description,
             const GeneratedDataset& ds, const CauSumXConfig& config) {
  bench::Banner(figure, description);
  std::printf("query: %s\n", ds.default_query.ToSql(ds.name).c_str());
  const CauSumXResult result =
      RunCauSumX(ds.table, ds.default_query, ds.dag, config);
  std::cout << RenderSummary(result.summary, ds.style);
  std::printf("(coverage %zu/%zu, constraint %s, %.2fs total)\n",
              result.summary.covered_groups, result.summary.num_groups,
              result.summary.coverage_satisfied ? "satisfied" : "violated",
              result.timings.Total());
}

}  // namespace

int main() {
  const double scale = bench::BenchScale();

  {
    const GeneratedDataset so = MakeDatasetByName("SO", scale);
    CauSumXConfig config = bench::ConfigFor(so, bench::PaperDefaultConfig());
    config.k = 3;
    config.theta = 1.0;
    RunCase("Fig. 2", "SO causal explanation summary (k=3, theta=1)", so,
            config);

    config.treatment_attribute_allowlist = {"Gender", "Ethnicity", "Age",
                                            "SexualOrientation"};
    RunCase("Fig. 6", "SO summary over sensitive attributes only", so,
            config);
  }

  {
    const GeneratedDataset acc = MakeDatasetByName("Accidents", scale);
    CauSumXConfig config = bench::ConfigFor(acc, bench::PaperDefaultConfig());
    config.k = 4;
    config.theta = 0.9;
    config.apriori_support = 0.05;
    RunCase("Fig. 7", "Accidents summary (one insight per region)", acc,
            config);
  }

  {
    const GeneratedDataset german = MakeDatasetByName("German", 1.0);
    const CauSumXConfig config =
        bench::ConfigFor(german, bench::PaperDefaultConfig());
    RunCase("Fig. 18", "German credit summary (per-purpose insights)",
            german, config);
  }

  {
    const GeneratedDataset adult = MakeDatasetByName("Adult", scale);
    CauSumXConfig config =
        bench::ConfigFor(adult, bench::PaperDefaultConfig());
    config.k = 3;
    config.theta = 0.9;
    RunCase("Fig. 19", "Adult summary (occupation categories)", adult,
            config);
  }
  return 0;
}
