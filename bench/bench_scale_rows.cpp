// Reproduces Fig. 11: CauSumX runtime vs dataset size (random tuple
// subsampling of Adult and IMPUS-CPS). Expected shape: near-linear growth
// on Adult (full-data CATE computation); flatter on CPS once the CATE
// sampling cap engages.

#include "bench/bench_util.h"
#include "util/rng.h"
#include "util/timer.h"

using namespace causumx;

namespace {

Table Subsample(const Table& table, size_t rows, uint64_t seed) {
  Rng rng(seed);
  std::vector<size_t> idx = rng.SampleIndices(table.NumRows(), rows);
  std::sort(idx.begin(), idx.end());
  return table.SelectRows(idx);
}

}  // namespace

int main() {
  const double scale = bench::BenchScale();
  bench::Banner("Fig. 11", "runtime vs dataset size (row subsampling)");

  struct Spec {
    const char* dataset;
    std::vector<double> fractions;
  };
  const Spec specs[] = {
      {"Adult", {0.25, 0.5, 0.75, 1.0}},
      {"IMPUS-CPS", {0.25, 0.5, 0.75, 1.0}},
  };

  for (const auto& spec : specs) {
    const GeneratedDataset ds = MakeDatasetByName(spec.dataset, scale);
    CauSumXConfig config = bench::ConfigFor(ds, bench::PaperDefaultConfig());
    // The paper caps CATE estimation samples on the large datasets.
    config.estimator.sample_cap = 50'000;
    std::printf("\n%s (base rows: %zu, CATE sample cap %zu)\n", spec.dataset,
                ds.table.NumRows(), config.estimator.sample_cap);
    std::printf("%10s %12s %10s\n", "rows", "runtime", "explain");
    for (double f : spec.fractions) {
      const size_t rows =
          static_cast<size_t>(f * static_cast<double>(ds.table.NumRows()));
      const Table sub = Subsample(ds.table, rows, 7);
      Timer timer;
      const CauSumXResult r =
          RunCauSumX(sub, ds.default_query, ds.dag, config);
      std::printf("%10zu %11.2fs %10.2f\n", rows, timer.Seconds(),
                  r.summary.total_explainability);
    }
  }
  return 0;
}
