// bench_persistence — warm restart from a durable snapshot versus a cold
// start that rebuilds every cache from the raw table.
//
// The restart workload: a service process dies (deploy, OOM, host move)
// and comes back. Without snapshots it re-registers the table and the
// first query pays full cache materialization — every predicate bitset
// and every CATE memo entry recomputed. With snapshots it reads one file,
// rebuilds the table from the columnar sections, imports the interned
// predicates, cached bitset segments, and memo entries, and the first
// query is served warm.
//
// Acceptance (CI smoke-runs this): the warm first query is bit-identical
// to the cold one, and warm restart (restore + query) is >= 3x faster
// than cold start (register + query). Both sides are timed best-of-N so
// timing noise — which only ever inflates a round — cannot fail the gate
// spuriously. Exits non-zero on either failure.

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/json_export.h"
#include "datagen/synthetic.h"
#include "service/explanation_service.h"
#include "storage/file_io.h"
#include "util/timer.h"

using namespace causumx;
using namespace causumx::bench;

int main() {
  Banner("persistence", "warm restart from snapshot vs cold cache rebuild");

  SyntheticOptions gen;
  // Floor at 24k rows: the work a snapshot saves (estimation + bitset
  // materialization) scales with rows, while the restore cost is one
  // sequential file read — smaller tables understate the restart win.
  gen.num_rows =
      std::max<size_t>(24000, static_cast<size_t>(40000 * BenchScale()));
  gen.num_treatment_attrs = 5;
  const GeneratedDataset ds = MakeSyntheticDataset(gen);
  CauSumXConfig config = ConfigFor(ds, PaperDefaultConfig());
  // Single-threaded mining on both sides: the ratio measures cache work
  // saved, not scheduler luck, and results are bit-identical either way.
  config.num_threads = 1;

  // Adjust for every grouping attribute as a confounder (G_x -> T_y,
  // G_x -> O): each CATE one-hot encodes the grouping columns, so the
  // estimation work a restored memo saves matches what a production
  // service pays. (Same rationale as bench_streaming.)
  CausalDag dag = ds.dag;
  for (const std::string& g : ds.grouping_attribute_hint) {
    dag.AddNode(g);
    dag.AddEdge(g, "O");
    for (const std::string& t : ds.treatment_attribute_hint) {
      dag.AddEdge(g, t);
    }
  }

  char dir_template[] = "/tmp/causumx_bench_persist_XXXXXX";
  const char* data_dir = ::mkdtemp(dir_template);
  if (data_dir == nullptr) {
    std::printf("FAIL: mkdtemp failed\n");
    return EXIT_FAILURE;
  }
  ServiceOptions persistent;
  persistent.data_dir = data_dir;

  // Write the snapshot a restart would find: register, warm the caches
  // with the query under test, snapshot.
  std::string reference_json;
  {
    ExplanationService writer(persistent);
    writer.RegisterTable("live", ds.table.Head(ds.table.NumRows()));
    const CauSumXResult warmed =
        writer.Explain("live", ds.default_query, dag, config);
    reference_json = SummaryToJson(warmed.summary);
    const size_t bytes = writer.SaveSnapshot("live");
    std::printf("dataset: %zu rows; snapshot %.2f MiB at %s\n",
                ds.table.NumRows(), bytes / (1024.0 * 1024.0), data_dir);
  }

  constexpr int kRounds = 4;
  std::printf("\n%-6s %12s %12s %9s\n", "round", "warm restart",
              "cold start", "speedup");
  std::vector<double> warm_times, cold_times;
  bool ok = true;
  for (int round = 0; round < kRounds; ++round) {
    // Warm restart: a fresh process restores the snapshot from disk and
    // serves the first query from the imported caches. The timer covers
    // the whole restart path: file read, table + cache import, query.
    Timer warm_timer;
    ExplanationService warm_service(persistent);
    if (warm_service.RestoreAll() != 1) {
      std::printf("FAIL: round %d restored != 1 table\n", round + 1);
      ok = false;
      break;
    }
    const CauSumXResult warm =
        warm_service.Explain("live", ds.default_query, dag, config);
    const double warm_s = warm_timer.Seconds();

    // Cold start: the same fresh process without a snapshot registers
    // the raw table and pays full materialization on the first query.
    // (The table copy itself is built outside the timer on both sides.)
    Table raw = ds.table.Head(ds.table.NumRows());
    Timer cold_timer;
    ExplanationService cold_service;
    cold_service.RegisterTable("live", std::move(raw));
    const CauSumXResult cold =
        cold_service.Explain("live", ds.default_query, dag, config);
    const double cold_s = cold_timer.Seconds();

    warm_times.push_back(warm_s);
    cold_times.push_back(cold_s);
    std::printf("%-6d %11.4fs %11.4fs %8.1fx\n", round + 1, warm_s, cold_s,
                cold_s / warm_s);
    const std::string warm_json = SummaryToJson(warm.summary);
    if (warm_json != SummaryToJson(cold.summary) ||
        warm_json != reference_json) {
      std::printf("FAIL: round %d warm summary differs from cold start\n",
                  round + 1);
      ok = false;
    }
    if (warm.cache_stats.estimator.memo_hits == 0) {
      std::printf("FAIL: round %d warm query had zero memo hits — the "
                  "restore did not actually carry the CATE cache\n",
                  round + 1);
      ok = false;
    }
  }

  if (ok) {
    const double speedup = *std::min_element(cold_times.begin(),
                                             cold_times.end()) /
                           *std::min_element(warm_times.begin(),
                                             warm_times.end());
    std::printf("\nwarm-restart speedup: %.1fx (best-of-%d cold / "
                "best-of-%d warm)\n", speedup, kRounds, kRounds);
    if (speedup < 3.0) {
      std::printf("FAIL: warm-restart speedup %.2fx below the 3x bar\n",
                  speedup);
      ok = false;
    }
  }

  for (const std::string& f : ListDirFiles(data_dir)) {
    ::unlink((std::string(data_dir) + "/" + f).c_str());
  }
  ::rmdir(data_dir);
  std::printf("\n%s\n", ok ? "PASS" : "FAIL");
  return ok ? EXIT_SUCCESS : EXIT_FAILURE;
}
