// Reproduces Table 4 (causal DAG statistics: edges, density per
// discovery algorithm) and Fig. 16/23 (overall explainability and
// Kendall tau of the top-20 treatment ranking under each discovered DAG
// vs the ground-truth DAG) on German, Adult and SO.

#include <vector>

#include "bench/bench_util.h"
#include "causal/discovery.h"
#include "mining/treatment_miner.h"
#include "util/stats.h"

using namespace causumx;

namespace {

// CATEs of the first 20 atomic treatments under a DAG.
std::vector<double> TreatmentCates(const GeneratedDataset& ds,
                                   const CausalDag& dag) {
  const AttributePartition part = PartitionAttributes(
      ds.table, ds.default_query.group_by, ds.default_query.avg_attribute);
  const auto atoms =
      GenerateAtomicTreatments(ds.table, part.treatment_attributes, {});
  Bitset all(ds.table.NumRows());
  all.SetAll();
  EstimatorOptions opt;
  opt.min_group_size = 5;
  EffectEstimator est(ds.table, dag, opt);
  std::vector<double> cates;
  for (size_t i = 0; i < atoms.size() && cates.size() < 20; ++i) {
    cates.push_back(
        est.EstimateCate(Pattern({atoms[i]}),
                         ds.default_query.avg_attribute, all)
            .cate);
  }
  return cates;
}

}  // namespace

int main() {
  const double scale = bench::BenchScale();
  const DiscoveryAlgorithm algos[] = {
      DiscoveryAlgorithm::kPc, DiscoveryAlgorithm::kFci,
      DiscoveryAlgorithm::kLingam, DiscoveryAlgorithm::kNoDag};

  bench::Banner("Table 4 + Fig. 16/23",
                "DAG statistics and sensitivity per discovery algorithm");
  std::printf("%-10s %-10s %8s %9s %14s %12s\n", "dataset", "dag", "edges",
              "density", "explainability", "kendall-tau");

  for (const char* name : {"German", "Adult", "SO"}) {
    const GeneratedDataset ds =
        MakeDatasetByName(name, std::string(name) == "German" ? 1.0 : scale);
    const CauSumXConfig config =
        bench::ConfigFor(ds, bench::PaperDefaultConfig());

    const std::vector<double> truth_cates = TreatmentCates(ds, ds.dag);
    const CauSumXResult truth_run =
        RunCauSumX(ds.table, ds.default_query, ds.dag, config);
    std::printf("%-10s %-10s %8zu %9.3f %14.3f %12s\n", name, "truth",
                ds.dag.NumEdges(), ds.dag.Density(),
                truth_run.summary.total_explainability, "1.000");

    for (DiscoveryAlgorithm algo : algos) {
      DiscoveryOptions dopt;
      dopt.max_cond_size = 2;
      const CausalDag dag = DiscoverDag(
          ds.table, algo, ds.default_query.avg_attribute, dopt);
      const std::vector<double> cates = TreatmentCates(ds, dag);
      const double tau = KendallTau(cates, truth_cates);
      const CauSumXResult run =
          RunCauSumX(ds.table, ds.default_query, dag, config);
      std::printf("%-10s %-10s %8zu %9.3f %14.3f %12.3f\n", name,
                  DiscoveryAlgorithmName(algo), dag.NumEdges(),
                  dag.Density(), run.summary.total_explainability, tau);
    }
  }
  std::printf(
      "\nExpected shape (paper): no discovery algorithm dominates, but all\n"
      "beat the No-DAG strawman in ranking agreement with the ground\n"
      "truth; discovered DAGs tend to be sparser than the truth.\n");
  return 0;
}
