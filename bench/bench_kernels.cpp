// bench_kernels — the vectorized kernel layer versus replicas of the
// pre-kernel scalar loops, plus the compressed-segment byte reduction.
//
// Three measurements (CI smoke-runs this):
//
//   dict-eq     single categorical equality predicate over N rows:
//               EvaluatePredicateRange (word-wise CompareI32Eq through
//               the active dispatch tier) vs the old per-row
//               SetAll + Test/GetCode/Clear loop.
//   and+popcnt  fused a & ~b popcount over the bitset word arrays:
//               kernels::AndNotPopcount vs the old per-word
//               std::popcount loop.
//   compress    resident bytes of a sparse predicate segment under
//               SegmentCompression::kAuto vs the plain bitset.
//
// Acceptance: kernel outputs bit-identical to the baselines on every
// available tier; with the AVX2 tier active, dict-eq >= 3x rows/sec and
// and+popcnt >= 2x words/sec against the scalar-loop baselines; the
// sparse segment holds >= 4x fewer accounted bytes than plain. On a
// scalar-only build (CAUSUMX_DISABLE_AVX2, or pre-AVX2 hardware) the
// dict-eq bar drops to 1.2x — hoisting the per-row dispatch already
// pays — and the and+popcnt bar is waived (the scalar kernel IS the
// baseline loop). Bars can be pinned with CAUSUMX_BENCH_MIN_EQ_SPEEDUP /
// CAUSUMX_BENCH_MIN_POPCNT_SPEEDUP / CAUSUMX_BENCH_MIN_BYTES_REDUCTION.
// Best-of-rounds timing: noise only ever inflates a measurement, so the
// max rate converges on the true throughput. All rates are per core —
// every timed loop here is single-threaded.

#include <bit>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"
#include "dataset/pattern.h"
#include "dataset/table.h"
#include "util/compressed_bitset.h"
#include "util/cpu_features.h"
#include "util/kernels.h"
#include "util/rng.h"
#include "util/timer.h"

using namespace causumx;
using namespace causumx::bench;

namespace {

// Replica of the pre-kernel Pattern::EvaluateRange inner loop for a
// categorical equality predicate (per-row bitset Test/Clear against the
// resolved dictionary code). Kept deliberately identical to the old
// code so the speedup measures the kernel layer, not workload drift.
Bitset BaselineDictEq(const Column& col, int32_t code, size_t n) {
  Bitset out(n);
  out.SetAll();
  for (size_t r = 0; r < n; ++r) {
    if (out.Test(r) && col.GetCode(r) != code) out.Clear(r);
  }
  return out;
}

// Replica of the pre-kernel Bitset::CountAndNot word loop.
size_t BaselineAndNotPopcount(const uint64_t* a, const uint64_t* b,
                              size_t n) {
  size_t c = 0;
  for (size_t i = 0; i < n; ++i) c += std::popcount(a[i] & ~b[i]);
  return c;
}

// Best-of-rounds throughput: repeats fn until each round is long enough
// to time reliably, returns items/second of the fastest round.
template <typename Fn>
double BestRate(size_t items, int rounds, Fn fn) {
  double best = 0.0;
  int reps = 1;
  for (int round = 0; round < rounds; ++round) {
    for (;;) {
      Timer t;
      for (int i = 0; i < reps; ++i) fn();
      const double s = t.Seconds();
      if (s >= 0.02 || reps > (1 << 22)) {
        const double rate = static_cast<double>(items) * reps / s;
        if (rate > best) best = rate;
        break;
      }
      reps *= 4;
    }
  }
  return best;
}

double EnvBar(const char* name, double fallback) {
  if (const char* env = std::getenv(name)) {
    const double v = std::atof(env);
    if (v > 0) return v;
  }
  return fallback;
}

}  // namespace

int main(int argc, char** argv) {
  Banner("kernels", "vectorized kernels vs the pre-kernel scalar loops");

  const char* json_path = nullptr;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) json_path = argv[i + 1];
  }

  const size_t rows = std::max<size_t>(
      1'000'000, static_cast<size_t>(8'000'000 * BenchScale()));
  const size_t words = std::max<size_t>(
      size_t{1} << 17, static_cast<size_t>((size_t{1} << 20) * BenchScale()));
  constexpr int kRounds = 5;

  // Dataset: one 12-bucket categorical column (the shape of a grouping
  // attribute) and the predicate C = b03.
  Table table;
  table.AddColumn("C", ColumnType::kCategorical);
  {
    Rng rng(42);
    char buf[8];
    for (size_t r = 0; r < rows; ++r) {
      std::snprintf(buf, sizeof(buf), "b%02d",
                    static_cast<int>(rng.NextU64() % 12));
      table.column(0).AppendCategorical(buf);
    }
  }
  const Column& col = table.column("C");
  const SimplePredicate pred("C", CompareOp::kEq, Value(std::string("b03")));
  const int32_t code = col.CodeOf("b03");

  // Word arrays for the fused AND-NOT popcount.
  std::vector<uint64_t> wa(words), wb(words);
  {
    Rng rng(7);
    for (size_t i = 0; i < words; ++i) {
      wa[i] = rng.NextU64();
      wb[i] = rng.NextU64();
    }
  }

  const Bitset ref_bits = BaselineDictEq(col, code, rows);
  const size_t ref_count = BaselineAndNotPopcount(wa.data(), wb.data(), words);

  std::printf("rows %zu, words %zu; detected tier: %s\n\n", rows, words,
              KernelTierName(ActiveKernelTier()));

  const double base_eq_rate = BestRate(rows, kRounds, [&] {
    volatile size_t sink = BaselineDictEq(col, code, rows).Count();
    (void)sink;
  });
  const double base_pc_rate = BestRate(words, kRounds, [&] {
    volatile size_t sink = BaselineAndNotPopcount(wa.data(), wb.data(), words);
    (void)sink;
  });
  std::printf("%-22s dict-eq %8.1f Mrows/s   and+popcnt %8.1f Mwords/s\n",
              "baseline (pre-kernel)", base_eq_rate / 1e6, base_pc_rate / 1e6);

  const KernelTier initial_tier = ActiveKernelTier();
  bool ok = true;
  struct TierRates {
    KernelTier tier;
    double eq_rate;
    double pc_rate;
  };
  std::vector<TierRates> tiers;
  for (KernelTier tier : {KernelTier::kScalar, KernelTier::kAvx2}) {
    if (!KernelTierSupported(tier)) continue;
    SetKernelTier(tier);
    // Bit-identity against the baseline replicas before timing.
    if (!(EvaluatePredicateRange(table, pred, 0, rows) == ref_bits)) {
      std::printf("FAIL: %s dict-eq bits differ from baseline\n",
                  KernelTierName(tier));
      ok = false;
    }
    if (kernels::AndNotPopcount(wa.data(), wb.data(), words) != ref_count) {
      std::printf("FAIL: %s and+popcnt differs from baseline\n",
                  KernelTierName(tier));
      ok = false;
    }
    TierRates r;
    r.tier = tier;
    r.eq_rate = BestRate(rows, kRounds, [&] {
      volatile size_t sink = EvaluatePredicateRange(table, pred, 0, rows).Count();
      (void)sink;
    });
    r.pc_rate = BestRate(words, kRounds, [&] {
      volatile size_t sink =
          kernels::AndNotPopcount(wa.data(), wb.data(), words);
      (void)sink;
    });
    tiers.push_back(r);
    std::printf("%-22s dict-eq %8.1f Mrows/s (%4.2fx)   and+popcnt %8.1f "
                "Mwords/s (%4.2fx)\n",
                KernelTierName(tier), r.eq_rate / 1e6,
                r.eq_rate / base_eq_rate, r.pc_rate / 1e6,
                r.pc_rate / base_pc_rate);
  }
  SetKernelTier(initial_tier);

  // Compressed segment bytes: a sparse predicate (one value of a
  // 512-bucket attribute, ~0.2% density) under kAuto vs plain storage.
  double bytes_reduction = 0.0;
  {
    Rng rng(11);
    Bitset sparse(rows);
    for (size_t r = 0; r < rows; ++r) {
      if (rng.NextU64() % 512 == 0) sparse.Set(r);
    }
    const size_t plain_bytes =
        sizeof(Bitset) + sparse.num_words() * sizeof(uint64_t);
    const SegmentBits seg =
        SegmentBits::Choose(sparse, SegmentCompression::kAuto);
    if (!(seg.Materialize() == sparse)) {
      std::printf("FAIL: compressed segment roundtrip differs\n");
      ok = false;
    }
    bytes_reduction = static_cast<double>(plain_bytes) /
                      static_cast<double>(seg.bytes());
    std::printf("\nsparse segment: plain %zu bytes, stored %zu bytes "
                "(%.1fx reduction, compressed=%s)\n",
                plain_bytes, seg.bytes(), bytes_reduction,
                seg.compressed() ? "yes" : "no");
  }

  // Acceptance bars, scaled to the best available tier like
  // bench_shards scales to the core count: the 3x/2x headline numbers
  // assume the AVX2 tier exists to run.
  const bool have_avx2 = KernelTierSupported(KernelTier::kAvx2);
  const double eq_bar =
      EnvBar("CAUSUMX_BENCH_MIN_EQ_SPEEDUP", have_avx2 ? 3.0 : 1.2);
  const double pc_bar =
      EnvBar("CAUSUMX_BENCH_MIN_POPCNT_SPEEDUP", have_avx2 ? 2.0 : 0.0);
  const double bytes_bar = EnvBar("CAUSUMX_BENCH_MIN_BYTES_REDUCTION", 4.0);

  double best_eq = 0.0, best_pc = 0.0;
  for (const TierRates& r : tiers) {
    if (r.eq_rate > best_eq) best_eq = r.eq_rate;
    if (r.pc_rate > best_pc) best_pc = r.pc_rate;
  }
  const double eq_speedup = best_eq / base_eq_rate;
  const double pc_speedup = best_pc / base_pc_rate;
  std::printf("\ndict-eq speedup %.2fx (bar %.2fx), and+popcnt speedup "
              "%.2fx (bar %.2fx), bytes reduction %.1fx (bar %.1fx)\n",
              eq_speedup, eq_bar, pc_speedup, pc_bar, bytes_reduction,
              bytes_bar);
  if (eq_speedup < eq_bar) {
    std::printf("FAIL: dict-eq speedup below the bar\n");
    ok = false;
  }
  if (pc_bar > 0.0 && pc_speedup < pc_bar) {
    std::printf("FAIL: and+popcnt speedup below the bar\n");
    ok = false;
  }
  if (bytes_reduction < bytes_bar) {
    std::printf("FAIL: bytes reduction below the bar\n");
    ok = false;
  }

  if (json_path != nullptr) {
    FILE* f = std::fopen(json_path, "w");
    if (f == nullptr) {
      std::printf("FAIL: cannot write %s\n", json_path);
      ok = false;
    } else {
      std::fprintf(f, "{\n  \"rows\": %zu,\n  \"words\": %zu,\n", rows,
                   words);
      std::fprintf(f,
                   "  \"baseline\": {\"dict_eq_rows_per_sec\": %.0f, "
                   "\"andnot_popcount_words_per_sec\": %.0f},\n",
                   base_eq_rate, base_pc_rate);
      std::fprintf(f, "  \"tiers\": [");
      for (size_t i = 0; i < tiers.size(); ++i) {
        std::fprintf(f,
                     "%s\n    {\"tier\": \"%s\", "
                     "\"dict_eq_rows_per_sec\": %.0f, "
                     "\"andnot_popcount_words_per_sec\": %.0f}",
                     i ? "," : "", KernelTierName(tiers[i].tier),
                     tiers[i].eq_rate, tiers[i].pc_rate);
      }
      std::fprintf(f, "\n  ],\n  \"sparse_bytes_reduction\": %.2f\n}\n",
                   bytes_reduction);
      std::fclose(f);
      std::printf("wrote %s\n", json_path);
    }
  }

  std::printf("\n%s\n", ok ? "PASS" : "FAIL");
  return ok ? EXIT_SUCCESS : EXIT_FAILURE;
}
