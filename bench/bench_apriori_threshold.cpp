// Reproduces Fig. 21 (the effect of the Apriori support threshold tau on
// overall explainability and coverage) and the Section 6.5 observation
// that CauSumX's runtime is largely insensitive to the grouping-pattern
// count while Brute-Force's grows linearly.

#include "bench/bench_util.h"
#include "dataset/fd.h"
#include "mining/grouping_miner.h"
#include "util/timer.h"

using namespace causumx;

int main() {
  const double scale = bench::BenchScale();
  bench::Banner("Fig. 21", "Apriori threshold tau sweep");

  for (const char* name : {"German", "Adult", "Accidents"}) {
    const GeneratedDataset ds =
        MakeDatasetByName(name, std::string(name) == "German" ? 1.0 : scale);
    std::printf("\n%s\n", name);
    std::printf("%8s %18s %16s %12s %12s\n", "tau", "grouping-patterns",
                "explainability", "coverage", "runtime");
    for (double tau : {0.0, 0.05, 0.1, 0.2, 0.3, 0.5}) {
      CauSumXConfig config =
          bench::ConfigFor(ds, bench::PaperDefaultConfig());
      config.apriori_support = tau;
      Timer timer;
      const CauSumXResult r =
          RunCauSumX(ds.table, ds.default_query, ds.dag, config);
      std::printf("%8.2f %18zu %16.3f %11.1f%% %11.2fs\n", tau,
                  r.num_grouping_candidates,
                  r.summary.total_explainability,
                  100 * r.summary.CoverageFraction(), timer.Seconds());
    }
  }
  std::printf(
      "\nExpected shape (paper): higher tau -> fewer grouping patterns ->\n"
      "lower explainability and coverage; tau = 0.1 is the recommended\n"
      "default; CauSumX runtime stays flat across the sweep.\n");
  return 0;
}
