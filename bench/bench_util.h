// Shared helpers for the reproduction harness binaries.
//
// Every bench prints the rows/series of one table or figure from the
// paper's evaluation (Section 6). Dataset sizes default to bench-friendly
// scales; set CAUSUMX_BENCH_SCALE=1.0 to run at full paper scale.

#ifndef CAUSUMX_BENCH_BENCH_UTIL_H_
#define CAUSUMX_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/causumx.h"
#include "datagen/registry.h"

namespace causumx {
namespace bench {

/// Global dataset scale for the harness (rows multiplied by this).
/// Default 0.2 keeps every bench within tens of seconds on a laptop.
inline double BenchScale() {
  const char* env = std::getenv("CAUSUMX_BENCH_SCALE");
  if (env == nullptr) return 0.2;
  const double v = std::atof(env);
  return v > 0 ? v : 0.2;
}

/// Prints the figure/table banner.
inline void Banner(const char* experiment_id, const char* description) {
  std::printf("\n==================================================\n");
  std::printf("%s — %s\n", experiment_id, description);
  std::printf("==================================================\n");
}

/// The paper's default configuration (Section 6.1): k=5, theta=0.75,
/// Apriori tau=0.1.
inline CauSumXConfig PaperDefaultConfig() {
  CauSumXConfig config;
  config.k = 5;
  config.theta = 0.75;
  config.apriori_support = 0.1;
  return config;
}

/// Applies per-dataset knobs that mirror the paper's setups (German needs
/// a looser alpha and smaller minimum group size at 1000 rows; the
/// synthetic dataset needs its explicit attribute partition).
inline CauSumXConfig ConfigFor(const GeneratedDataset& ds,
                               CauSumXConfig config) {
  if (ds.name == "German") {
    config.estimator.min_group_size = 5;
    config.treatment.alpha = 0.1;
    config.theta = 0.5;
  }
  if (!ds.grouping_attribute_hint.empty()) {
    config.grouping_attribute_allowlist = ds.grouping_attribute_hint;
    config.treatment_attribute_allowlist = ds.treatment_attribute_hint;
    config.grouping.include_per_group_patterns = false;
  }
  return config;
}

}  // namespace bench
}  // namespace causumx

#endif  // CAUSUMX_BENCH_BENCH_UTIL_H_
