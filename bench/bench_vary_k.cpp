// Reproduces Fig. 9(a, b): explainability and coverage of CauSumX vs
// Greedy-Last-Step as the solution size k grows (SO dataset), plus the
// Section 6.5 observation that runtime is insensitive to k.

#include "bench/bench_util.h"
#include "util/timer.h"

using namespace causumx;

int main() {
  const double scale = bench::BenchScale();
  const GeneratedDataset ds = MakeDatasetByName("SO", scale);
  const CauSumXConfig base =
      bench::ConfigFor(ds, bench::PaperDefaultConfig());

  bench::Banner("Fig. 9(a,b)",
                "explainability & coverage vs k (SO), CauSumX vs Greedy");
  std::printf("%4s %20s %18s %20s %18s\n", "k", "CauSumX-explain",
              "CauSumX-coverage", "Greedy-explain", "Greedy-coverage");
  const double required = base.theta;
  for (size_t k = 1; k <= 8; ++k) {
    CauSumXConfig lp = base;
    lp.k = k;
    CauSumXConfig greedy = base;
    greedy.k = k;
    greedy.solver = FinalStepSolver::kGreedy;

    const CauSumXResult rl = RunCauSumX(ds.table, ds.default_query, ds.dag, lp);
    const CauSumXResult rg =
        RunCauSumX(ds.table, ds.default_query, ds.dag, greedy);
    std::printf("%4zu %20.3f %17.1f%% %20.3f %17.1f%%\n", k,
                rl.summary.total_explainability,
                100 * rl.summary.CoverageFraction(),
                rg.summary.total_explainability,
                100 * rg.summary.CoverageFraction());
  }
  std::printf("(coverage constraint theta = %.0f%%, dashed line in paper)\n",
              100 * required);

  bench::Banner("Sec. 6.5 (solution size)", "runtime vs k is ~flat");
  std::printf("%4s %12s\n", "k", "runtime");
  for (size_t k : {1, 3, 5, 7}) {
    CauSumXConfig config = base;
    config.k = k;
    Timer timer;
    RunCauSumX(ds.table, ds.default_query, ds.dag, config);
    std::printf("%4zu %11.2fs\n", k, timer.Seconds());
  }
  return 0;
}
