// Reproduces Fig. 15/22: the effect of the CATE-estimation sample size
// (optimization (d), Section 5.2) on (a) estimated CATE values of random
// treatments and (b) Kendall's tau agreement between the top-20 treatment
// ranking under sampling vs the full-data ranking (Accidents dataset).

#include <algorithm>
#include <cmath>
#include <vector>

#include "bench/bench_util.h"
#include "mining/treatment_miner.h"
#include "util/stats.h"

using namespace causumx;

int main() {
  const double scale = bench::BenchScale();
  const GeneratedDataset ds = MakeDatasetByName("Accidents", scale);
  const AttributePartition part = PartitionAttributes(
      ds.table, ds.default_query.group_by, ds.default_query.avg_attribute);

  TreatmentMinerOptions topt;
  const auto atoms =
      GenerateAtomicTreatments(ds.table, part.treatment_attributes, topt);
  // 20 treatments for the ranking, 5 highlighted, as in the paper.
  std::vector<Pattern> treatments;
  for (size_t i = 0; i < atoms.size() && treatments.size() < 20; ++i) {
    treatments.push_back(Pattern({atoms[i]}));
  }

  Bitset all(ds.table.NumRows());
  all.SetAll();

  // Full-data reference CATEs.
  EstimatorOptions full_opt;
  full_opt.sample_cap = 0;
  EffectEstimator full(ds.table, ds.dag, full_opt);
  std::vector<double> reference;
  reference.reserve(treatments.size());
  for (const auto& tr : treatments) {
    reference.push_back(
        full.EstimateCate(tr, ds.default_query.avg_attribute, all).cate);
  }

  const std::vector<size_t> sample_sizes = {2'000, 5'000, 10'000, 25'000,
                                            50'000, 100'000};

  bench::Banner("Fig. 15/22(a)", "CATE estimates vs sample size");
  std::printf("%10s", "samples");
  for (size_t t = 0; t < 5 && t < treatments.size(); ++t) {
    std::printf("   T%zu(%-12.12s)", t + 1,
                treatments[t].ToString().c_str());
  }
  std::printf("   max-rel-error\n");
  for (size_t n : sample_sizes) {
    if (n > ds.table.NumRows()) continue;
    EstimatorOptions opt;
    opt.sample_cap = n;
    EffectEstimator sampled(ds.table, ds.dag, opt);
    std::printf("%10zu", n);
    double max_rel = 0;
    std::vector<double> estimates;
    for (size_t t = 0; t < treatments.size(); ++t) {
      const double est =
          sampled
              .EstimateCate(treatments[t], ds.default_query.avg_attribute,
                            all)
              .cate;
      estimates.push_back(est);
      // Relative error over treatments with a meaningful reference effect
      // (near-zero CATEs make the ratio degenerate; the paper's ~5% claim
      // concerns the reported, non-trivial effects).
      if (std::fabs(reference[t]) > 0.05) {
        max_rel = std::max(
            max_rel, std::fabs(est - reference[t]) /
                         std::fabs(reference[t]));
      }
      if (t < 5) std::printf(" %19.4f", est);
    }
    std::printf(" %14.1f%%\n", 100 * max_rel);
  }

  bench::Banner("Fig. 15/22(b)", "Kendall tau of top-20 ranking vs sample");
  std::printf("%10s %12s\n", "samples", "kendall-tau");
  for (size_t n : sample_sizes) {
    if (n > ds.table.NumRows()) continue;
    EstimatorOptions opt;
    opt.sample_cap = n;
    EffectEstimator sampled(ds.table, ds.dag, opt);
    std::vector<double> estimates;
    for (const auto& tr : treatments) {
      estimates.push_back(
          sampled.EstimateCate(tr, ds.default_query.avg_attribute, all)
              .cate);
    }
    std::printf("%10zu %12.3f\n", n, KendallTau(estimates, reference));
  }
  std::printf(
      "\nExpected shape (paper): error shrinks below ~5%% and tau\n"
      "stabilizes around 0.95 as the sample approaches ~1M tuples.\n");
  return 0;
}
