// bench_streaming — incremental append + re-query through the service's
// delta-aware caches versus a cold reload after every delta.
//
// The streaming workload: an aggregate view is being watched while rows
// arrive. Without Append, each refresh re-registers the grown table and
// pays full cache materialization (every predicate bitset, every CATE)
// again; with Append, cached bitsets extend by evaluating only the delta
// rows and CATE memos carry over wherever the touched subpopulation did
// not grow (appended rows land in the latest buckets of the synthetic
// grouping attributes, so most subpopulations are untouched — the
// realistic skew of live traffic).
//
// Acceptance (CI smoke-runs this): per-round summaries bit-identical to
// the cold reload, and incremental speedup >= 3x. Every round performs
// the same work by construction (equal chunks, all landing in the top
// bucket of each grouping attribute), so the speedup statistic compares
// the best incremental round against the best cold round — timing noise
// only ever inflates a measurement, and the minimum converges on the
// true cost on a shared/loaded box. Exits non-zero on either failure.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/json_export.h"
#include "datagen/synthetic.h"
#include "service/explanation_service.h"
#include "util/timer.h"

using namespace causumx;
using namespace causumx::bench;

int main() {
  Banner("streaming", "incremental append + re-query vs cold reload");

  SyntheticOptions gen;
  // Floor at 24k rows: estimation cost (what the carried memos save)
  // scales with rows, while the per-node walk bookkeeping both sides pay
  // does not — smaller tables understate the streaming win and drown the
  // ratio in scheduler noise.
  gen.num_rows =
      std::max<size_t>(24000, static_cast<size_t>(40000 * BenchScale()));
  gen.num_treatment_attrs = 5;
  // Bucket ranges are contiguous in arrival order, so appended rows land
  // in the top bucket of each G_x — the skew a live view sees when fresh
  // rows cluster in the newest segment. Mining below is restricted to
  // G1's 12 buckets, so one refresh invalidates exactly 1 of 12 mined
  // subpopulations.
  gen.buckets_base = 6;  // G1: 12 buckets, G2: 18, G3: 24
  const GeneratedDataset ds = MakeSyntheticDataset(gen);
  CauSumXConfig config = ConfigFor(ds, PaperDefaultConfig());
  // Single-threaded mining on both sides: the ratio measures cache work
  // saved, not scheduler luck, and results are bit-identical either way.
  config.num_threads = 1;
  // G1 buckets sit at 8.3% support; the default 0.1 would drop them all.
  config.apriori_support = 0.05;
  config.grouping_attribute_allowlist = {"G1"};

  // The synthetic ground-truth DAG has no confounders, which makes each
  // CATE a two-column regression — unrealistically cheap. Real views
  // adjust for a backdoor set, so declare every grouping attribute a
  // confounder (G_x -> T_y, G_x -> O): each estimate one-hot encodes
  // G1/G2/G3 (~50 design columns) and the estimation work a carried memo
  // saves is the work a production service actually does.
  CausalDag dag = ds.dag;
  for (const std::string& g : ds.grouping_attribute_hint) {
    dag.AddNode(g);
    dag.AddEdge(g, "O");
    for (const std::string& t : ds.treatment_attribute_hint) {
      dag.AddEdge(g, t);
    }
  }

  const size_t total = ds.table.NumRows();
  // 5% of the data arrives as deltas: small enough that each chunk stays
  // inside the top bucket of every grouping attribute (one invalidated
  // subpopulation per attribute), large enough to be a real refresh.
  const size_t base_rows = (total * 95) / 100;
  constexpr int kRounds = 5;
  const size_t chunk = (total - base_rows) / kRounds;
  std::printf("dataset: %zu rows; base %zu + %d deltas of ~%zu rows\n",
              total, base_rows, kRounds, chunk);

  ExplanationService streaming;
  streaming.RegisterTable("live", ds.table.Head(base_rows));
  // Warm the caches once — the steady state a live service runs in.
  streaming.Explain("live", ds.default_query, dag, config);

  std::printf("\n%-6s %12s %12s %9s\n", "round", "incremental", "cold reload",
              "speedup");
  std::vector<double> inc_times, cold_times;
  bool ok = true;
  size_t at = base_rows;
  for (int round = 0; round < kRounds; ++round) {
    const size_t next = (round == kRounds - 1) ? total : at + chunk;

    // Incremental: append the delta through the delta-aware caches and
    // re-query warm.
    Timer inc_timer;
    streaming.Append("live", ds.table.MaterializeRows(at, next));
    const CauSumXResult inc =
        streaming.Explain("live", ds.default_query, dag, config);
    const double inc_s = inc_timer.Seconds();

    // Cold reload: re-register the same grown table from scratch and pay
    // full cache materialization on the query. (The table object itself
    // is built outside the timer; reload cost is registration + query.)
    Table grown = ds.table.Head(next);
    Timer cold_timer;
    ExplanationService fresh;
    fresh.RegisterTable("live", std::move(grown));
    const CauSumXResult cold =
        fresh.Explain("live", ds.default_query, dag, config);
    const double cold_s = cold_timer.Seconds();

    at = next;
    inc_times.push_back(inc_s);
    cold_times.push_back(cold_s);
    std::printf("%-6d %11.4fs %11.4fs %8.1fx\n", round + 1, inc_s, cold_s,
                cold_s / inc_s);
    if (SummaryToJson(inc.summary) != SummaryToJson(cold.summary)) {
      std::printf("FAIL: round %d incremental summary differs from cold "
                  "reload\n", round + 1);
      ok = false;
    }
  }

  const double speedup = *std::min_element(cold_times.begin(),
                                           cold_times.end()) /
                         *std::min_element(inc_times.begin(),
                                           inc_times.end());
  const EvalEngineStats engine_stats = streaming.Engine("live")->Stats();
  std::printf("\nincremental speedup: %.1fx (best-of-%d cold / "
              "best-of-%d incremental)\n", speedup, kRounds, kRounds);
  std::printf("post-append engine: %llu bitsets extended, %llu rebuilt, "
              "%llu views extended\n",
              (unsigned long long)engine_stats.bitsets_extended,
              (unsigned long long)engine_stats.bitsets_materialized,
              (unsigned long long)engine_stats.column_views_extended);
  const ServiceStats stats = streaming.Stats();
  std::printf("service: %llu appends, %llu rows appended, table version "
              "%llu\n",
              (unsigned long long)stats.appends_executed,
              (unsigned long long)stats.rows_appended,
              (unsigned long long)streaming.TableVersion("live"));

  if (speedup < 3.0) {
    std::printf("FAIL: incremental speedup %.2fx below the 3x bar\n",
                speedup);
    ok = false;
  }
  std::printf("\n%s\n", ok ? "PASS" : "FAIL");
  return ok ? EXIT_SUCCESS : EXIT_FAILURE;
}
