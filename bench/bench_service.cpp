// bench_service — warm-cache repeat-query speedup of the
// ExplanationService versus back-to-back cold RunCauSumX loops, plus
// memory-budget enforcement.
//
// The service's point is cross-query cache reuse: the first query over a
// table pays to materialize predicate bitsets and CATE estimates; an
// identical repeat is served from the caches (bit-identical results).
// Acceptance: warm repeat >= 2x faster than a cold re-run, and with a
// tight budget the accounted cache bytes stay under the cap. Exits
// non-zero when either property fails, so CI can smoke-run it.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/json_export.h"
#include "datagen/synthetic.h"
#include "service/explanation_service.h"
#include "util/timer.h"

using namespace causumx;
using namespace causumx::bench;

int main() {
  Banner("service", "warm-cache repeat queries vs cold RunCauSumX");

  SyntheticOptions gen;
  // Floor at 12000 rows: below that the warm repeat is a few milliseconds
  // and the speedup measurement drowns in scheduler noise.
  gen.num_rows = std::max<size_t>(12000, static_cast<size_t>(20000 * BenchScale()));
  gen.num_treatment_attrs = 5;
  GeneratedDataset ds = MakeSyntheticDataset(gen);
  CauSumXConfig config = ConfigFor(ds, PaperDefaultConfig());
  std::printf("dataset: %s scaled to %zu rows\n", ds.name.c_str(),
              ds.table.NumRows());

  // Interleaved pairs: each round times one cold RunCauSumX (rebuilds
  // engine + context, as every call does today) immediately followed by
  // one warm service repeat, so both sides see the same machine
  // conditions; the median per-pair ratio is the noise-robust speedup
  // statistic on a shared/loaded box.
  constexpr int kPairs = 7;
  ExplanationService service;
  // A second generated copy (the generator is deterministic), so the
  // cold loop keeps ds.table while the service owns its own.
  service.RegisterTable("bench", std::move(MakeSyntheticDataset(gen).table));

  // Warm-up: populate the service caches and note both first-run costs.
  Timer first_timer;
  const CauSumXResult cold_run =
      RunCauSumX(ds.table, ds.default_query, ds.dag, config);
  const double cold_first = first_timer.Seconds();
  const std::string cold_json = SummaryToJson(cold_run.summary);
  first_timer.Reset();
  service.Explain("bench", ds.default_query, ds.dag, config);
  const double warm_first = first_timer.Seconds();

  std::vector<double> ratios;
  double cold_best = 1e30, warm_best = 1e30;
  std::string warm_json;
  for (int i = 0; i < kPairs; ++i) {
    Timer timer;
    RunCauSumX(ds.table, ds.default_query, ds.dag, config);
    const double cold_s = timer.Seconds();
    timer.Reset();
    const CauSumXResult w =
        service.Explain("bench", ds.default_query, ds.dag, config);
    const double warm_s = timer.Seconds();
    warm_json = SummaryToJson(w.summary);
    cold_best = std::min(cold_best, cold_s);
    warm_best = std::min(warm_best, warm_s);
    ratios.push_back(cold_s / warm_s);
  }
  std::sort(ratios.begin(), ratios.end());
  const double speedup = ratios[ratios.size() / 2];

  std::printf("\n%-34s %10s\n", "mode", "seconds");
  std::printf("%-34s %10.4f\n", "cold RunCauSumX (first)", cold_first);
  std::printf("%-34s %10.4f\n", "cold RunCauSumX (repeat best)", cold_best);
  std::printf("%-34s %10.4f\n", "service (first, cold caches)", warm_first);
  std::printf("%-34s %10.4f\n", "service (repeat best, warm)", warm_best);
  std::printf("warm repeat speedup: %.1fx (median of %d paired runs)\n",
              speedup, kPairs);

  const auto engine_stats = service.Engine("bench")->Stats();
  std::printf("cache: %llu bitsets (%zu bytes), %llu hits\n",
              (unsigned long long)engine_stats.bitsets_materialized,
              engine_stats.bitset_bytes,
              (unsigned long long)engine_stats.bitset_hits);

  bool ok = true;
  if (warm_json != cold_json) {
    std::printf("FAIL: warm summary differs from cold summary\n");
    ok = false;
  }
  if (speedup < 2.0) {
    std::printf("FAIL: warm repeat speedup %.2fx below the 2x bar\n",
                speedup);
    ok = false;
  }

  // --- budget enforcement ---------------------------------------------------
  Banner("service-budget", "LRU eviction under a tight memory budget");
  ServiceOptions tight;
  tight.memory_budget_bytes = 16 * 1024;
  ExplanationService bounded(tight);
  bounded.RegisterTable("bench", std::move(MakeSyntheticDataset(gen).table));
  for (int i = 0; i < 3; ++i) {
    Timer timer;
    const CauSumXResult r =
        bounded.Explain("bench", ds.default_query, ds.dag, config);
    const size_t bytes = bounded.CacheBytes();
    std::printf("query %d: %.4fs, cache %zu / %zu bytes%s\n", i + 1,
                timer.Seconds(), bytes, tight.memory_budget_bytes,
                SummaryToJson(r.summary) == cold_json ? "" :
                " (RESULT MISMATCH)");
    if (bytes > tight.memory_budget_bytes) {
      std::printf("FAIL: cache bytes exceed the budget\n");
      ok = false;
    }
    if (SummaryToJson(r.summary) != cold_json) ok = false;
  }
  const ServiceStats stats = bounded.Stats();
  std::printf("budget enforcements that evicted: %llu\n",
              (unsigned long long)stats.budget_enforcements);

  std::printf("\n%s\n", ok ? "PASS" : "FAIL");
  return ok ? EXIT_SUCCESS : EXIT_FAILURE;
}
