// Google-benchmark microbenchmarks for the performance-critical kernels:
// pattern evaluation, CATE estimation, Apriori mining, and the simplex
// solver. These back the engineering claims in DESIGN.md rather than a
// specific paper figure.
//
// Every benchmark calls SetItemsProcessed with its natural work unit
// (rows scanned, candidates considered), so the reported items_per_second
// is comparable across runs. All benchmarks here are single-threaded,
// which makes items_per_second a per-core throughput figure.

#include <benchmark/benchmark.h>

#include "causal/estimator.h"
#include "datagen/stackoverflow.h"
#include "engine/eval_engine.h"
#include "lp/rounding.h"
#include "mining/apriori.h"
#include "util/rng.h"

namespace causumx {
namespace {

const GeneratedDataset& SoDataset() {
  static const GeneratedDataset* ds = [] {
    StackOverflowOptions opt;
    opt.num_rows = 10000;
    return new GeneratedDataset(MakeStackOverflowDataset(opt));
  }();
  return *ds;
}

void BM_PatternEvaluate(benchmark::State& state) {
  const GeneratedDataset& ds = SoDataset();
  const Pattern p({SimplePredicate("Education", CompareOp::kEq,
                                   Value("Masters degree")),
                   SimplePredicate("Age", CompareOp::kLt,
                                   Value(int64_t{35}))});
  for (auto _ : state) {
    benchmark::DoNotOptimize(p.Evaluate(ds.table));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(ds.table.NumRows()));
}
BENCHMARK(BM_PatternEvaluate);

// Same pattern through the shared engine: after the first iteration the
// two atom bitsets are cached, so evaluation is a word-wise AND.
void BM_EnginePatternEvaluate(benchmark::State& state) {
  const GeneratedDataset& ds = SoDataset();
  EvalEngine engine(ds.table);
  const Pattern p({SimplePredicate("Education", CompareOp::kEq,
                                   Value("Masters degree")),
                   SimplePredicate("Age", CompareOp::kLt,
                                   Value(int64_t{35}))});
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.Evaluate(p));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(ds.table.NumRows()));
}
BENCHMARK(BM_EnginePatternEvaluate);

// Note: EffectEstimator now memoizes per (treatment, outcome,
// subpopulation), so steady state here measures a memo hit. Compare
// against BM_CateEstimationUncached for the full-regression cost.
void BM_CateEstimation(benchmark::State& state) {
  const GeneratedDataset& ds = SoDataset();
  EffectEstimator est(ds.table, ds.dag, {});
  const Pattern treatment({SimplePredicate("Education", CompareOp::kEq,
                                           Value("Masters degree"))});
  Bitset all(ds.table.NumRows());
  all.SetAll();
  for (auto _ : state) {
    benchmark::DoNotOptimize(est.EstimateCate(treatment, "Salary", all));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(ds.table.NumRows()));
}
BENCHMARK(BM_CateEstimation);

// The memo-free estimation cost: an engine with caches bypassed
// recomputes the regression on every call (what every EstimateCate used
// to cost before the engine existed).
void BM_CateEstimationUncached(benchmark::State& state) {
  const GeneratedDataset& ds = SoDataset();
  auto engine = std::make_shared<EvalEngine>(ds.table,
                                             /*cache_enabled=*/false);
  EffectEstimator est(engine, ds.dag, {});
  const Pattern treatment({SimplePredicate("Education", CompareOp::kEq,
                                           Value("Masters degree"))});
  Bitset all(ds.table.NumRows());
  all.SetAll();
  for (auto _ : state) {
    benchmark::DoNotOptimize(est.EstimateCate(treatment, "Salary", all));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(ds.table.NumRows()));
}
BENCHMARK(BM_CateEstimationUncached);

void BM_AprioriMining(benchmark::State& state) {
  const GeneratedDataset& ds = SoDataset();
  AprioriOptions opt;
  opt.min_support = 0.1;
  opt.max_length = static_cast<size_t>(state.range(0));
  const std::vector<std::string> attrs = {"Continent", "HDI", "Gini",
                                          "GDP"};
  for (auto _ : state) {
    benchmark::DoNotOptimize(MineFrequentPatterns(ds.table, attrs, opt));
  }
  // One row scan per mined level is the dominant cost.
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(ds.table.NumRows()) *
                          state.range(0));
}
BENCHMARK(BM_AprioriMining)->Arg(1)->Arg(2)->Arg(3);

void BM_SimplexSelection(benchmark::State& state) {
  // A selection LP with `range` candidates over 50 groups.
  const size_t l = static_cast<size_t>(state.range(0));
  SelectionProblem p;
  p.num_groups = 50;
  p.k = 5;
  p.theta = 0.75;
  Rng rng(3);
  for (size_t j = 0; j < l; ++j) {
    Bitset cov(50);
    for (size_t g = 0; g < 50; ++g) {
      if (rng.NextBool(0.2)) cov.Set(g);
    }
    p.candidates.push_back({1.0 + rng.NextDouble() * 10, std::move(cov)});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(SolveByLpRounding(p, 16, 7));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(l));
}
BENCHMARK(BM_SimplexSelection)->Arg(8)->Arg(32)->Arg(128);

}  // namespace
}  // namespace causumx

BENCHMARK_MAIN();
