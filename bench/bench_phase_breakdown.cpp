// Reproduces Fig. 14/20: runtime of each CauSumX phase (grouping-pattern
// mining, treatment-pattern mining, LP selection) per dataset. Expected
// shape: treatment mining dominates everywhere; phases 1 and 3 are
// comparatively negligible.

#include "bench/bench_util.h"

using namespace causumx;

int main() {
  const double scale = bench::BenchScale();
  bench::Banner("Fig. 14/20", "runtime by phase of Algorithm 1");
  std::printf("%-12s %12s %12s %12s %10s\n", "dataset", "grouping",
              "treatment", "selection", "total");

  for (const std::string& name : RegisteredDatasetNames()) {
    if (name == "Synthetic") continue;
    const GeneratedDataset ds =
        MakeDatasetByName(name, name == "German" ? 1.0 : scale);
    CauSumXConfig config = bench::ConfigFor(ds, bench::PaperDefaultConfig());
    config.estimator.sample_cap = 50'000;
    const CauSumXResult r =
        RunCauSumX(ds.table, ds.default_query, ds.dag, config);
    std::printf("%-12s %11.3fs %11.3fs %11.3fs %9.3fs\n", name.c_str(),
                r.timings.Get("grouping"), r.timings.Get("treatment"),
                r.timings.Get("selection"), r.timings.Total());
  }
  return 0;
}
