// Reproduces Fig. 14/20: runtime of each CauSumX phase (grouping-pattern
// mining, treatment-pattern mining, LP selection) per dataset. Expected
// shape: treatment mining dominates everywhere; phases 1 and 3 are
// comparatively negligible.
//
// Each dataset is run twice — once with the shared evaluation engine's
// caches enabled, once bypassed — so the table also reports the phase-2
// speedup the interned-predicate bitsets and the CATE memo buy, plus the
// cache counters behind it.
//
// Usage: bench_phase_breakdown [--json FILE]
//   --json writes the rows as a JSON array (see tools/run_bench.sh).

#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bench/bench_util.h"

using namespace causumx;

namespace {

struct Row {
  std::string dataset;
  double grouping = 0;
  double treatment = 0;
  double selection = 0;
  double total = 0;
  double treatment_uncached = 0;
  double speedup = 0;
  EngineCacheStats cache;
};

void WriteJson(const std::string& path, const std::vector<Row>& rows) {
  std::ofstream out(path);
  out << "[\n";
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    out << "  {\"dataset\": \"" << r.dataset << "\""
        << ", \"grouping_s\": " << r.grouping
        << ", \"treatment_s\": " << r.treatment
        << ", \"selection_s\": " << r.selection
        << ", \"total_s\": " << r.total
        << ", \"treatment_uncached_s\": " << r.treatment_uncached
        << ", \"treatment_speedup\": " << r.speedup
        << ", \"predicates_interned\": " << r.cache.eval.predicates_interned
        << ", \"bitsets_materialized\": " << r.cache.eval.bitsets_materialized
        << ", \"bitset_hits\": " << r.cache.eval.bitset_hits
        << ", \"memo_hits\": " << r.cache.estimator.memo_hits
        << ", \"memo_misses\": " << r.cache.estimator.memo_misses << "}"
        << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "]\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    }
  }

  const double scale = bench::BenchScale();
  bench::Banner("Fig. 14/20", "runtime by phase of Algorithm 1");
  std::printf("%-12s %11s %11s %11s %9s | %12s %8s\n", "dataset", "grouping",
              "treatment", "selection", "total", "treat(nocache)", "speedup");

  std::vector<Row> rows;
  for (const std::string& name : RegisteredDatasetNames()) {
    if (name == "Synthetic") continue;
    const GeneratedDataset ds =
        MakeDatasetByName(name, name == "German" ? 1.0 : scale);
    CauSumXConfig config = bench::ConfigFor(ds, bench::PaperDefaultConfig());
    config.estimator.sample_cap = 50'000;

    const CauSumXResult r =
        RunCauSumX(ds.table, ds.default_query, ds.dag, config);

    CauSumXConfig uncached_config = config;
    uncached_config.disable_eval_cache = true;
    const CauSumXResult u =
        RunCauSumX(ds.table, ds.default_query, ds.dag, uncached_config);

    Row row;
    row.dataset = name;
    row.grouping = r.timings.Get("grouping");
    row.treatment = r.timings.Get("treatment");
    row.selection = r.timings.Get("selection");
    row.total = r.timings.Total();
    row.treatment_uncached = u.timings.Get("treatment");
    row.speedup = row.treatment > 0 ? row.treatment_uncached / row.treatment
                                    : 0.0;
    row.cache = r.cache_stats;
    rows.push_back(row);

    std::printf("%-12s %10.3fs %10.3fs %10.3fs %8.3fs | %11.3fs %7.2fx\n",
                name.c_str(), row.grouping, row.treatment, row.selection,
                row.total, row.treatment_uncached, row.speedup);
  }

  std::printf("\ncache counters (cached runs): ");
  for (const Row& r : rows) {
    std::printf("%s: %llu bitsets, %llu memo hits / %llu misses;  ",
                r.dataset.c_str(),
                (unsigned long long)r.cache.eval.bitsets_materialized,
                (unsigned long long)r.cache.estimator.memo_hits,
                (unsigned long long)r.cache.estimator.memo_misses);
  }
  std::printf("\n");

  if (!json_path.empty()) {
    WriteJson(json_path, rows);
    std::printf("wrote %s\n", json_path.c_str());
  }
  return 0;
}
