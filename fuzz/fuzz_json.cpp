// Fuzz harness for the JSON parser/writer (src/util/json.*).
//
// Properties checked on every input:
//   1. JsonValue::Parse either returns a value or throws
//      std::runtime_error — never crashes, never throws anything else.
//   2. Round-trip: a parsed value re-serialized through JsonWriter
//      parses again, structurally equal to the original. (Non-finite
//      numbers are the one sanctioned exception: JSON has no NaN/Inf
//      literal, so the writer emits null for them.)
//
// Links against libFuzzer under clang (-DCAUSUMX_FUZZERS=ON); under GCC
// the same TU builds as a standalone corpus replayer (see
// standalone_main.h).

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>

#include "util/json.h"

#include "fuzz/standalone_main.h"

namespace {

using causumx::JsonValue;
using causumx::JsonWriter;

void Emit(const JsonValue& v, JsonWriter& w) {
  switch (v.kind()) {
    case JsonValue::Kind::kNull:
      w.Null();
      break;
    case JsonValue::Kind::kBool:
      w.Bool(v.AsBool());
      break;
    case JsonValue::Kind::kNumber:
      w.Double(v.AsNumber());
      break;
    case JsonValue::Kind::kString:
      w.String(v.AsString());
      break;
    case JsonValue::Kind::kArray:
      w.BeginArray();
      for (const JsonValue& e : v.AsArray()) Emit(e, w);
      w.EndArray();
      break;
    case JsonValue::Kind::kObject:
      w.BeginObject();
      for (const auto& [key, value] : v.AsObject()) {
        w.Key(key);
        Emit(value, w);
      }
      w.EndObject();
      break;
  }
}

std::string Serialize(const JsonValue& v) {
  JsonWriter w;
  Emit(v, w);
  return w.str();
}

bool Equal(const JsonValue& a, const JsonValue& b) {
  if (a.kind() == JsonValue::Kind::kNumber && !std::isfinite(a.AsNumber())) {
    // Writer emits null for non-finite numbers; accept the degradation.
    return b.kind() == JsonValue::Kind::kNull;
  }
  if (a.kind() != b.kind()) return false;
  switch (a.kind()) {
    case JsonValue::Kind::kNull:
      return true;
    case JsonValue::Kind::kBool:
      return a.AsBool() == b.AsBool();
    case JsonValue::Kind::kNumber:
      // JsonWriter::Double uses shortest-round-trip formatting, so the
      // reparse must reproduce the exact double.
      return a.AsNumber() == b.AsNumber();
    case JsonValue::Kind::kString:
      return a.AsString() == b.AsString();
    case JsonValue::Kind::kArray: {
      const auto& xs = a.AsArray();
      const auto& ys = b.AsArray();
      if (xs.size() != ys.size()) return false;
      for (size_t i = 0; i < xs.size(); ++i) {
        if (!Equal(xs[i], ys[i])) return false;
      }
      return true;
    }
    case JsonValue::Kind::kObject: {
      const auto& xs = a.AsObject();
      const auto& ys = b.AsObject();
      if (xs.size() != ys.size()) return false;
      auto it = ys.begin();
      for (const auto& [key, value] : xs) {
        if (it->first != key || !Equal(value, it->second)) return false;
        ++it;
      }
      return true;
    }
  }
  return false;
}

[[noreturn]] void Die(const char* what, const std::string& detail) {
  std::fprintf(stderr, "fuzz_json: %s: %s\n", what, detail.c_str());
  std::abort();
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  if (size > (1u << 20)) return 0;
  const std::string text(reinterpret_cast<const char*>(data), size);

  JsonValue parsed;
  try {
    parsed = JsonValue::Parse(text);
  } catch (const std::runtime_error&) {
    return 0;  // typed rejection of malformed input is correct
  }

  const std::string serialized = Serialize(parsed);
  try {
    const JsonValue again = JsonValue::Parse(serialized);
    if (!Equal(parsed, again)) {
      Die("round-trip structural mismatch", serialized);
    }
  } catch (const std::exception& e) {
    Die("re-parse rejected writer output",
        std::string(e.what()) + " in: " + serialized);
  }
  return 0;
}
