// Fuzz harness for the incremental HTTP/1.1 request parser
// (src/server/http.*).
//
// Differential property: feeding the same byte stream all at once and in
// small chunks (size derived from the input's first byte, down to
// byte-by-byte) must produce the identical outcome — the same sequence
// of completed requests, the same final state, and the same error
// status. This is exactly the invariant the incremental parser
// advertises ("a request split at any byte boundary parses
// identically"), now machine-checked over adversarial inputs instead of
// a handful of unit-test splits.
//
// Links against libFuzzer under clang (-DCAUSUMX_FUZZERS=ON); under GCC
// the same TU builds as a standalone corpus replayer (see
// standalone_main.h).

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "server/http.h"

#include "fuzz/standalone_main.h"

namespace {

using causumx::HttpRequest;
using causumx::HttpRequestParser;

constexpr size_t kMaxBody = 1u << 16;
constexpr size_t kMaxHeader = 4096;

/// Everything observable about one parse of a byte stream.
///
/// TakeExpectContinue is deliberately absent: it fires only while the
/// body is still outstanding, so a whole-buffer feed (request complete
/// in one Consume) legitimately sees it fire zero times where a chunked
/// feed sees one — Drive still calls it to exercise the path, but it is
/// not a split-invariant observable.
struct Outcome {
  std::vector<HttpRequest> requests;
  HttpRequestParser::State final_state = HttpRequestParser::State::kNeedMore;
  int error_status = 0;
};

Outcome Drive(const char* data, size_t size, size_t chunk) {
  HttpRequestParser parser(kMaxBody, kMaxHeader);
  Outcome out;
  size_t off = 0;
  while (true) {
    HttpRequestParser::State st = parser.state();
    if (st == HttpRequestParser::State::kNeedMore) {
      if (off == size) break;
      const size_t n = std::min(chunk, size - off);
      st = parser.Consume(data + off, n);
      off += n;
    }
    parser.TakeExpectContinue();  // exercised, but not a split invariant
    if (st == HttpRequestParser::State::kDone) {
      out.requests.push_back(parser.request());
      parser.Reset();  // re-parses any buffered pipelined bytes
    } else if (st == HttpRequestParser::State::kError) {
      out.final_state = st;
      out.error_status = parser.error_status();
      return out;
    }
  }
  out.final_state = parser.state();
  return out;
}

bool SameRequest(const HttpRequest& a, const HttpRequest& b) {
  return a.method == b.method && a.target == b.target && a.path == b.path &&
         a.query == b.query && a.headers == b.headers && a.body == b.body &&
         a.keep_alive == b.keep_alive;
}

[[noreturn]] void Die(const char* what) {
  std::fprintf(stderr, "fuzz_http_parser: chunked/whole divergence: %s\n",
               what);
  std::abort();
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  // Chunked replay rescans the buffered prefix per Consume, so keep
  // inputs small enough that byte-by-byte stays fast.
  if (size < 1 || size > (1u << 14)) return 0;

  // First byte picks the chunk size (1..8); the rest is the byte stream.
  const size_t chunk = 1 + (data[0] & 7);
  const char* stream = reinterpret_cast<const char*>(data) + 1;
  const size_t stream_size = size - 1;

  const Outcome whole = Drive(stream, stream_size, stream_size + 1);
  const Outcome split = Drive(stream, stream_size, chunk);

  if (whole.final_state != split.final_state) Die("final state");
  if (whole.error_status != split.error_status) Die("error status");
  if (whole.requests.size() != split.requests.size()) Die("request count");
  for (size_t i = 0; i < whole.requests.size(); ++i) {
    if (!SameRequest(whole.requests[i], split.requests[i])) {
      Die("request fields");
    }
  }
  return 0;
}
