// Fuzz harness for the storage layer's deserializers — the code that
// reads snapshot bytes a crashed, truncated, or hostile writer may have
// left on disk (src/storage/snapshot.*, src/dataset/table_io.*,
// src/util/compressed_bitset.*).
//
// Properties checked on every input:
//   1. SnapshotReader::Parse either returns a container or throws
//      StorageError (a std::runtime_error) — never crashes, never
//      throws anything else.
//   2. A container that parses re-serializes through SnapshotWriter to
//      bytes that parse again with the same key and sections (the
//      format is canonical: parse-then-write is the identity on
//      accepted inputs).
//   3. DeserializeTable on arbitrary bytes returns a Table whose
//      content hash matches the embedded key, or throws StorageError —
//      a forged key must never produce a silently-wrong table.
//   4. SegmentBits::Deserialize on arbitrary bytes round-trips through
//      Serialize, or throws — never crashes, never mis-sizes.
//
// Links against libFuzzer under clang (-DCAUSUMX_FUZZERS=ON); under GCC
// the same TU builds as a standalone corpus replayer (see
// standalone_main.h).

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>

#include "dataset/table.h"
#include "dataset/table_io.h"
#include "storage/snapshot.h"
#include "storage/storage_error.h"
#include "util/compressed_bitset.h"

#include "fuzz/standalone_main.h"

namespace {

[[noreturn]] void Die(const char* what, const std::string& detail) {
  std::fprintf(stderr, "fuzz_snapshot: %s: %s\n", what, detail.c_str());
  std::abort();
}

void CheckContainer(const std::string& bytes) {
  bool accepted = false;
  try {
    const causumx::SnapshotReader reader =
        causumx::SnapshotReader::Parse(bytes, "fuzz-kind", 1);
    accepted = true;
    // Accepted input: rebuilding the container must reproduce an
    // equivalent, parseable file.
    causumx::SnapshotWriter writer("fuzz-kind", 1, reader.key());
    for (const std::string& name : reader.SectionNames()) {
      writer.AddSection(name, reader.Section(name));
    }
    const std::string rebuilt = writer.Serialize();
    const causumx::SnapshotReader again =
        causumx::SnapshotReader::Parse(rebuilt, "fuzz-kind", 1);
    if (again.key() != reader.key()) {
      Die("round-trip changed key", again.key());
    }
    if (again.SectionNames() != reader.SectionNames()) {
      Die("round-trip changed section list", "");
    }
    for (const std::string& name : reader.SectionNames()) {
      if (again.Section(name) != reader.Section(name)) {
        Die("round-trip changed section payload", name);
      }
    }
  } catch (const causumx::StorageError& e) {
    // Typed rejection of hostile bytes is correct — but rejecting the
    // writer's own output is a canonicalization bug.
    if (accepted) Die("round-trip of accepted container rejected", e.what());
  }
}

void CheckTable(const std::string& bytes) {
  causumx::Table table;
  try {
    table = causumx::DeserializeTable(bytes);
  } catch (const causumx::StorageError&) {
    return;  // typed rejection is correct
  }
  // An accepted table must re-serialize and parse back identically —
  // in particular the embedded content hash must still verify.
  const std::string rebuilt = causumx::SerializeTable(table);
  const causumx::Table again = causumx::DeserializeTable(rebuilt);
  if (again.NumRows() != table.NumRows() ||
      again.NumColumns() != table.NumColumns()) {
    Die("table round-trip changed shape", "");
  }
  if (causumx::TableContentHash(again) != causumx::TableContentHash(table)) {
    Die("table round-trip changed content hash", "");
  }
}

void CheckSegment(const std::string& bytes) {
  bool accepted = false;
  try {
    size_t pos = 0;
    const causumx::SegmentBits seg =
        causumx::SegmentBits::Deserialize(bytes, &pos);
    accepted = true;
    if (pos > bytes.size()) {
      Die("segment consumed past the end", std::to_string(pos));
    }
    std::string rebuilt;
    seg.Serialize(&rebuilt);
    size_t pos2 = 0;
    const causumx::SegmentBits again =
        causumx::SegmentBits::Deserialize(rebuilt, &pos2);
    if (again.size() != seg.size() || again.Count() != seg.Count()) {
      Die("segment round-trip changed bits", "");
    }
    if (!(again.Materialize() == seg.Materialize())) {
      Die("segment round-trip changed contents", "");
    }
  } catch (const std::runtime_error& e) {
    // Typed rejection of hostile bytes is correct — but rejecting the
    // serializer's own output is a canonicalization bug.
    if (accepted) Die("round-trip of accepted segment rejected", e.what());
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  // Bound per-input cost: decoding is linear, but giant inputs just slow
  // the fuzzer down without reaching new states.
  if (size > (1u << 20)) return 0;
  if (size == 0) return 0;
  const std::string bytes(reinterpret_cast<const char*>(data + 1), size - 1);

  // The first byte routes to one deserializer, so one corpus exercises
  // all three entry points and the fuzzer can mutate across them.
  switch (data[0] % 3) {
    case 0: CheckContainer(bytes); break;
    case 1: CheckTable(bytes); break;
    case 2: CheckSegment(bytes); break;
  }
  return 0;
}
