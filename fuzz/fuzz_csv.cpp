// Fuzz harness for the CSV reader (src/dataset/csv.*).
//
// Properties checked on every input:
//   1. ReadCsv either returns a Table or throws std::runtime_error /
//      std::invalid_argument — never crashes, never throws anything else.
//   2. Round-trip: a parsed table written back out by WriteCsv parses
//      again with the same shape (row and column counts).
//   3. The round-tripped text is accepted by ReadCsvDelta against the
//      parsed table's own schema (the streaming append path), or is
//      rejected with a typed error — never a crash.
//
// Links against libFuzzer under clang (-DCAUSUMX_FUZZERS=ON); under GCC
// the same TU builds as a standalone corpus replayer (see
// standalone_main.h).

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <stdexcept>
#include <string>

#include "dataset/csv.h"
#include "dataset/table.h"

#include "fuzz/standalone_main.h"

namespace {

[[noreturn]] void Die(const char* what, const std::string& detail) {
  std::fprintf(stderr, "fuzz_csv: %s: %s\n", what, detail.c_str());
  std::abort();
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  // Bound per-input cost: parsing is linear, but giant inputs just slow
  // the fuzzer down without reaching new states.
  if (size > (1u << 20)) return 0;
  const std::string text(reinterpret_cast<const char*>(data), size);

  causumx::CsvOptions options;
  // Small inference window so the "later row demotes the column type"
  // paths are reachable from short fuzzer inputs.
  options.type_inference_rows = 16;

  causumx::Table table;
  try {
    std::istringstream in(text);
    table = causumx::ReadCsv(in, options);
  } catch (const std::runtime_error&) {
    return 0;  // typed rejection (ragged rows, bad stream) is correct
  } catch (const std::invalid_argument&) {
    return 0;  // typed rejection (duplicate/bad header) is correct
  }

  // Round-trip: our own writer's output must parse, with the same shape.
  std::ostringstream out;
  causumx::WriteCsv(table, out, options.delimiter);
  const std::string round = out.str();
  try {
    std::istringstream in2(round);
    const causumx::Table again = causumx::ReadCsv(in2, options);
    if (again.NumRows() != table.NumRows() ||
        again.NumColumns() != table.NumColumns()) {
      Die("round-trip shape mismatch",
          std::to_string(table.NumRows()) + "x" +
              std::to_string(table.NumColumns()) + " -> " +
              std::to_string(again.NumRows()) + "x" +
              std::to_string(again.NumColumns()));
    }
  } catch (const std::exception& e) {
    Die("round-trip re-parse rejected writer output", e.what());
  }

  // Delta path: the round-tripped text names exactly the table's columns,
  // so ReadCsvDelta must accept it or reject with a typed error (cells
  // that inference nulled can legitimately fail the stricter no-inference
  // parse; what it must never do is crash).
  try {
    std::istringstream in3(round);
    const auto rows = causumx::ReadCsvDelta(table, in3, options);
    if (rows.size() != table.NumRows()) {
      Die("delta row-count mismatch", std::to_string(rows.size()) + " vs " +
                                          std::to_string(table.NumRows()));
    }
  } catch (const std::runtime_error&) {
  } catch (const std::invalid_argument&) {
  }
  return 0;
}
