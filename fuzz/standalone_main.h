// Standalone driver for the fuzz harnesses when libFuzzer is not
// available (GCC builds, local smoke runs): replays every file named on
// the command line — or every file inside a named directory, i.e. a
// corpus — through LLVMFuzzerTestOneInput and exits non-zero only if a
// harness assertion aborts the process. Under clang the harnesses link
// -fsanitize=fuzzer instead and this translation is empty.

#ifndef CAUSUMX_FUZZ_STANDALONE_MAIN_H_
#define CAUSUMX_FUZZ_STANDALONE_MAIN_H_

#ifdef CAUSUMX_FUZZ_STANDALONE

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size);

namespace {

void RunFile(const std::string& path, size_t* count) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "fuzz: cannot read %s\n", path.c_str());
    return;
  }
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  LLVMFuzzerTestOneInput(reinterpret_cast<const uint8_t*>(bytes.data()),
                         bytes.size());
  ++*count;
}

}  // namespace

int main(int argc, char** argv) {
  size_t count = 0;
  for (int i = 1; i < argc; ++i) {
    const std::filesystem::path p(argv[i]);
    if (std::filesystem::is_directory(p)) {
      std::vector<std::string> files;
      for (const auto& entry : std::filesystem::directory_iterator(p)) {
        if (entry.is_regular_file()) files.push_back(entry.path().string());
      }
      // Sorted replay so runs are reproducible regardless of readdir order.
      std::sort(files.begin(), files.end());
      for (const auto& f : files) RunFile(f, &count);
    } else {
      RunFile(p.string(), &count);
    }
  }
  std::printf("fuzz standalone: %zu input(s) replayed, no crashes\n", count);
  return 0;
}

#endif  // CAUSUMX_FUZZ_STANDALONE

#endif  // CAUSUMX_FUZZ_STANDALONE_MAIN_H_
