// Tests for the inverse-propensity-weighting estimation path (the
// Section 7 extension) and confidence intervals.

#include <gtest/gtest.h>

#include <cmath>

#include "causal/estimator.h"
#include "util/rng.h"

namespace causumx {
namespace {

// Confounded world identical to test_estimator: Y = effect*T + 10*Z + e,
// with Z driving both treatment propensity and outcome.
Table MakeConfoundedTable(double effect, size_t n, uint64_t seed) {
  Table t;
  t.AddColumn("Z", ColumnType::kCategorical);
  t.AddColumn("T", ColumnType::kCategorical);
  t.AddColumn("Y", ColumnType::kDouble);
  Rng rng(seed);
  for (size_t i = 0; i < n; ++i) {
    const bool z = rng.NextBool(0.5);
    const bool treated = rng.NextBool(z ? 0.8 : 0.2);
    const double y = effect * (treated ? 1.0 : 0.0) + 10.0 * (z ? 1.0 : 0.0) +
                     rng.NextGaussian(0, 1.0);
    t.AddRow({Value(z ? "1" : "0"), Value(treated ? "yes" : "no"), Value(y)});
  }
  return t;
}

CausalDag MakeConfoundedDag() {
  CausalDag g;
  g.AddEdge("Z", "T");
  g.AddEdge("Z", "Y");
  g.AddEdge("T", "Y");
  return g;
}

Pattern TreatYes() {
  return Pattern({SimplePredicate("T", CompareOp::kEq, Value("yes"))});
}

TEST(IpwTest, RemovesConfoundingBias) {
  const Table t = MakeConfoundedTable(2.0, 8000, 3);
  EstimatorOptions opt;
  opt.method = EstimationMethod::kIpw;
  EffectEstimator est(t, MakeConfoundedDag(), opt);
  const EffectEstimate e = est.EstimateAte(TreatYes(), "Y");
  ASSERT_TRUE(e.valid);
  EXPECT_NEAR(e.cate, 2.0, 0.35);
  EXPECT_LT(e.p_value, 1e-4);
}

TEST(IpwTest, AgreesWithRegressionOnRandomizedData) {
  // No confounding: both estimators converge to the same effect.
  Table t;
  t.AddColumn("T", ColumnType::kCategorical);
  t.AddColumn("Y", ColumnType::kDouble);
  Rng rng(5);
  for (size_t i = 0; i < 6000; ++i) {
    const bool treated = rng.NextBool(0.5);
    t.AddRow({Value(treated ? "yes" : "no"),
              Value(4.0 * (treated ? 1.0 : 0.0) + rng.NextGaussian())});
  }
  CausalDag g;
  g.AddEdge("T", "Y");

  EstimatorOptions reg_opt;
  EstimatorOptions ipw_opt;
  ipw_opt.method = EstimationMethod::kIpw;
  const EffectEstimate reg =
      EffectEstimator(t, g, reg_opt).EstimateAte(TreatYes(), "Y");
  const EffectEstimate ipw =
      EffectEstimator(t, g, ipw_opt).EstimateAte(TreatYes(), "Y");
  ASSERT_TRUE(reg.valid && ipw.valid);
  EXPECT_NEAR(reg.cate, ipw.cate, 0.15);
  EXPECT_NEAR(ipw.cate, 4.0, 0.15);
}

TEST(IpwTest, RespectsOverlapGuards) {
  Table t;
  t.AddColumn("T", ColumnType::kCategorical);
  t.AddColumn("Y", ColumnType::kDouble);
  for (size_t i = 0; i < 200; ++i) {
    t.AddRow({Value("yes"), Value(1.0)});
  }
  CausalDag g;
  g.AddEdge("T", "Y");
  EstimatorOptions opt;
  opt.method = EstimationMethod::kIpw;
  EffectEstimator est(t, g, opt);
  EXPECT_FALSE(est.EstimateAte(TreatYes(), "Y").valid);
}

TEST(IpwTest, NullEffectNotSignificant) {
  Table t;
  t.AddColumn("T", ColumnType::kCategorical);
  t.AddColumn("Y", ColumnType::kDouble);
  Rng rng(7);
  for (size_t i = 0; i < 3000; ++i) {
    t.AddRow({Value(rng.NextBool(0.5) ? "yes" : "no"),
              Value(rng.NextGaussian())});
  }
  CausalDag g;
  g.AddEdge("T", "Y");
  EstimatorOptions opt;
  opt.method = EstimationMethod::kIpw;
  const EffectEstimate e =
      EffectEstimator(t, g, opt).EstimateAte(TreatYes(), "Y");
  ASSERT_TRUE(e.valid);
  EXPECT_GT(e.p_value, 0.01);
  EXPECT_NEAR(e.cate, 0.0, 0.15);
}

TEST(IpwTest, SubpopulationCate) {
  const Table t = MakeConfoundedTable(3.0, 8000, 9);
  EstimatorOptions opt;
  opt.method = EstimationMethod::kIpw;
  EffectEstimator est(t, MakeConfoundedDag(), opt);
  // Restrict to the Z=1 stratum: within it there is no confounding left,
  // so the IPW CATE is the plain stratum effect.
  const Pattern z1({SimplePredicate("Z", CompareOp::kEq, Value("1"))});
  const EffectEstimate e = est.EstimateCate(TreatYes(), "Y", z1);
  ASSERT_TRUE(e.valid);
  EXPECT_NEAR(e.cate, 3.0, 0.35);
}

TEST(ConfidenceIntervalTest, CoversPointEstimate) {
  const Table t = MakeConfoundedTable(2.0, 4000, 11);
  EffectEstimator est(t, MakeConfoundedDag());
  const EffectEstimate e = est.EstimateAte(TreatYes(), "Y");
  ASSERT_TRUE(e.valid);
  const auto [lo, hi] = e.ConfidenceInterval();
  EXPECT_LT(lo, e.cate);
  EXPECT_GT(hi, e.cate);
  EXPECT_NEAR(hi - lo, 2 * 1.959963984540054 * e.std_error, 1e-9);
  // A wider level gives a wider interval.
  const auto [lo99, hi99] = e.ConfidenceInterval(0.99);
  EXPECT_LT(lo99, lo);
  EXPECT_GT(hi99, hi);
}

TEST(ConfidenceIntervalTest, InvalidEstimateDegenerate) {
  EffectEstimate e;
  const auto [lo, hi] = e.ConfidenceInterval();
  EXPECT_DOUBLE_EQ(lo, 0.0);
  EXPECT_DOUBLE_EQ(hi, 0.0);
}

// Property sweep: the 95% CI of the regression estimator should cover
// the true effect for most seeds (it is an asymptotically exact CI).
class CiCoverageSweep : public ::testing::TestWithParam<int> {};

TEST_P(CiCoverageSweep, IntervalUsuallyCoversTruth) {
  const double truth = 1.5;
  const Table t = MakeConfoundedTable(truth, 3000,
                                      static_cast<uint64_t>(GetParam()));
  EffectEstimator est(t, MakeConfoundedDag());
  const EffectEstimate e = est.EstimateAte(TreatYes(), "Y");
  ASSERT_TRUE(e.valid);
  const auto [lo, hi] = e.ConfidenceInterval(0.999);  // generous level
  EXPECT_LE(lo, truth);
  EXPECT_GE(hi, truth);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CiCoverageSweep, ::testing::Range(100, 110));

}  // namespace
}  // namespace causumx
