// Unit tests for Value and Column (dictionary encoding, null handling).

#include <gtest/gtest.h>

#include <cmath>

#include "dataset/column.h"
#include "dataset/value.h"

namespace causumx {
namespace {

TEST(ValueTest, TypePredicates) {
  EXPECT_TRUE(Value().is_null());
  EXPECT_TRUE(Value(int64_t{5}).is_int());
  EXPECT_TRUE(Value(2.5).is_double());
  EXPECT_TRUE(Value("hi").is_string());
}

TEST(ValueTest, NumericCrossTypeEquality) {
  EXPECT_TRUE(Value(int64_t{3}).Equals(Value(3.0)));
  EXPECT_FALSE(Value(int64_t{3}).Equals(Value(3.5)));
  EXPECT_FALSE(Value("3").Equals(Value(int64_t{3})));
  EXPECT_FALSE(Value().Equals(Value()));  // nulls never equal
}

TEST(ValueTest, CompareOrdersNumericAndString) {
  EXPECT_LT(Value(int64_t{1}).Compare(Value(int64_t{2})), 0);
  EXPECT_GT(Value(5.5).Compare(Value(int64_t{5})), 0);
  EXPECT_EQ(Value("abc").Compare(Value("abc")), 0);
  EXPECT_LT(Value("abc").Compare(Value("abd")), 0);
}

TEST(ValueTest, ToStringForms) {
  EXPECT_EQ(Value().ToString(), "<null>");
  EXPECT_EQ(Value(int64_t{42}).ToString(), "42");
  EXPECT_EQ(Value("x").ToString(), "x");
}

TEST(ColumnTest, IntColumnBasics) {
  Column c("a", ColumnType::kInt64);
  c.AppendInt(1);
  c.AppendInt(2);
  c.AppendNull();
  EXPECT_EQ(c.size(), 3u);
  EXPECT_EQ(c.GetInt(0), 1);
  EXPECT_FALSE(c.IsNull(1));
  EXPECT_TRUE(c.IsNull(2));
  EXPECT_EQ(c.NumDistinct(), 2u);
}

TEST(ColumnTest, DictionaryEncodingReusesCodes) {
  Column c("cat", ColumnType::kCategorical);
  c.AppendCategorical("red");
  c.AppendCategorical("blue");
  c.AppendCategorical("red");
  EXPECT_EQ(c.size(), 3u);
  EXPECT_EQ(c.GetCode(0), c.GetCode(2));
  EXPECT_NE(c.GetCode(0), c.GetCode(1));
  EXPECT_EQ(c.dictionary().size(), 2u);
  EXPECT_EQ(c.CodeOf("red"), c.GetCode(0));
  EXPECT_EQ(c.CodeOf("missing"), Column::kNullCode);
}

TEST(ColumnTest, TypeMismatchThrows) {
  Column c("a", ColumnType::kInt64);
  EXPECT_THROW(c.AppendDouble(1.0), std::logic_error);
  EXPECT_THROW(c.AppendCategorical("x"), std::logic_error);
}

TEST(ColumnTest, GetNumericViews) {
  Column ci("i", ColumnType::kInt64);
  ci.AppendInt(7);
  EXPECT_DOUBLE_EQ(ci.GetNumeric(0), 7.0);

  Column cd("d", ColumnType::kDouble);
  cd.AppendDouble(1.25);
  EXPECT_DOUBLE_EQ(cd.GetNumeric(0), 1.25);

  Column cc("c", ColumnType::kCategorical);
  cc.AppendCategorical("a");
  cc.AppendCategorical("b");
  EXPECT_DOUBLE_EQ(cc.GetNumeric(1), 1.0);  // dictionary code

  cc.AppendNull();
  EXPECT_TRUE(std::isnan(cc.GetNumeric(2)));
}

TEST(ColumnTest, DistinctValuesSortedAndNullFree) {
  Column c("d", ColumnType::kDouble);
  c.AppendDouble(3.0);
  c.AppendDouble(1.0);
  c.AppendNull();
  c.AppendDouble(3.0);
  const auto vals = c.DistinctValues();
  ASSERT_EQ(vals.size(), 2u);
  EXPECT_DOUBLE_EQ(vals[0].AsDouble(), 1.0);
  EXPECT_DOUBLE_EQ(vals[1].AsDouble(), 3.0);
  EXPECT_EQ(c.NumDistinct(), 2u);
}

TEST(ColumnTest, AppendValueDispatch) {
  Column c("c", ColumnType::kCategorical);
  c.AppendValue(Value("x"));
  c.AppendValue(Value(int64_t{5}));  // coerced to string
  c.AppendValue(Value());
  EXPECT_EQ(c.size(), 3u);
  EXPECT_EQ(c.GetValue(1).AsString(), "5");
  EXPECT_TRUE(c.IsNull(2));
}

TEST(ColumnTest, GetValueDecodesDictionary) {
  Column c("c", ColumnType::kCategorical);
  c.AppendCategorical("hello");
  const Value v = c.GetValue(0);
  EXPECT_TRUE(v.is_string());
  EXPECT_EQ(v.AsString(), "hello");
}

TEST(ColumnTest, NumDistinctInvalidatedOnAppend) {
  Column c("i", ColumnType::kInt64);
  c.AppendInt(1);
  EXPECT_EQ(c.NumDistinct(), 1u);
  c.AppendInt(2);
  EXPECT_EQ(c.NumDistinct(), 2u);
}

}  // namespace
}  // namespace causumx
