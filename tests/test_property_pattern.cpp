// Property-based tests for the pattern algebra: on randomly generated
// tables and random conjunctive patterns, batched evaluation must agree
// with row-at-a-time semantics, masks must compose, and adding a
// predicate must only shrink the matching set.

#include <gtest/gtest.h>

#include "dataset/pattern.h"
#include "util/rng.h"

namespace causumx {
namespace {

struct RandomWorld {
  Table table;
  std::vector<SimplePredicate> atoms;
};

RandomWorld MakeWorld(uint64_t seed) {
  RandomWorld w;
  Rng rng(seed);
  w.table.AddColumn("c1", ColumnType::kCategorical);
  w.table.AddColumn("c2", ColumnType::kCategorical);
  w.table.AddColumn("i1", ColumnType::kInt64);
  w.table.AddColumn("d1", ColumnType::kDouble);
  const char* c1_vals[] = {"a", "b", "c"};
  const char* c2_vals[] = {"x", "y"};
  const size_t n = 200 + rng.NextBounded(200);
  for (size_t r = 0; r < n; ++r) {
    // ~5% nulls in each column.
    w.table.AddRow({
        rng.NextBool(0.05) ? Value() : Value(c1_vals[rng.NextBounded(3)]),
        rng.NextBool(0.05) ? Value() : Value(c2_vals[rng.NextBounded(2)]),
        rng.NextBool(0.05) ? Value() : Value(rng.NextInt(0, 9)),
        rng.NextBool(0.05) ? Value() : Value(rng.NextGaussian()),
    });
  }
  w.atoms = {
      SimplePredicate("c1", CompareOp::kEq, Value("a")),
      SimplePredicate("c1", CompareOp::kEq, Value("b")),
      SimplePredicate("c2", CompareOp::kEq, Value("x")),
      SimplePredicate("i1", CompareOp::kLt, Value(int64_t{5})),
      SimplePredicate("i1", CompareOp::kGe, Value(int64_t{3})),
      SimplePredicate("d1", CompareOp::kGt, Value(0.0)),
      SimplePredicate("d1", CompareOp::kLe, Value(1.0)),
  };
  return w;
}

Pattern RandomPattern(const RandomWorld& w, Rng* rng, size_t max_size) {
  std::vector<SimplePredicate> preds;
  const size_t size = 1 + rng->NextBounded(max_size);
  for (size_t i = 0; i < size; ++i) {
    preds.push_back(w.atoms[rng->NextBounded(w.atoms.size())]);
  }
  return Pattern(std::move(preds));
}

class PatternPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PatternPropertyTest, BatchedEvaluationMatchesRowWise) {
  const RandomWorld w = MakeWorld(GetParam());
  Rng rng(GetParam() * 31 + 1);
  for (int trial = 0; trial < 20; ++trial) {
    const Pattern p = RandomPattern(w, &rng, 3);
    const Bitset batched = p.Evaluate(w.table);
    for (size_t r = 0; r < w.table.NumRows(); ++r) {
      ASSERT_EQ(batched.Test(r), p.Matches(w.table, r))
          << p.ToString() << " row " << r;
    }
  }
}

TEST_P(PatternPropertyTest, AddingPredicateShrinksMatches) {
  const RandomWorld w = MakeWorld(GetParam());
  Rng rng(GetParam() * 37 + 2);
  for (int trial = 0; trial < 20; ++trial) {
    const Pattern base = RandomPattern(w, &rng, 2);
    const Pattern extended =
        base.With(w.atoms[rng.NextBounded(w.atoms.size())]);
    const Bitset base_rows = base.Evaluate(w.table);
    const Bitset ext_rows = extended.Evaluate(w.table);
    EXPECT_TRUE(ext_rows.IsSubsetOf(base_rows))
        << base.ToString() << " vs " << extended.ToString();
  }
}

TEST_P(PatternPropertyTest, MaskedEvaluationIsIntersection) {
  const RandomWorld w = MakeWorld(GetParam());
  Rng rng(GetParam() * 41 + 3);
  for (int trial = 0; trial < 10; ++trial) {
    const Pattern p = RandomPattern(w, &rng, 3);
    Bitset mask(w.table.NumRows());
    for (size_t r = 0; r < w.table.NumRows(); ++r) {
      if (rng.NextBool(0.5)) mask.Set(r);
    }
    const Bitset masked = p.EvaluateOn(w.table, mask);
    const Bitset expected = p.Evaluate(w.table) & mask;
    EXPECT_TRUE(masked == expected);
  }
}

TEST_P(PatternPropertyTest, HashEqualityConsistency) {
  const RandomWorld w = MakeWorld(GetParam());
  Rng rng(GetParam() * 43 + 4);
  for (int trial = 0; trial < 20; ++trial) {
    const Pattern a = RandomPattern(w, &rng, 3);
    const Pattern b = RandomPattern(w, &rng, 3);
    if (a == b) {
      EXPECT_EQ(a.Hash(), b.Hash());
      EXPECT_EQ(a.ToString(), b.ToString());
    }
    // Same predicates in a different order must hash identically.
    std::vector<SimplePredicate> reversed(a.predicates().rbegin(),
                                          a.predicates().rend());
    EXPECT_EQ(Pattern(reversed).Hash(), a.Hash());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PatternPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace causumx
