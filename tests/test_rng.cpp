// Unit tests for the deterministic PRNG.

#include "util/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace causumx {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextU64() == b.NextU64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, NextBoundedRespectsBound) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
}

TEST(RngTest, NextIntInclusiveRange) {
  Rng rng(11);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.NextInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all values hit
}

TEST(RngTest, GaussianMoments) {
  Rng rng(13);
  double sum = 0, sum2 = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.NextGaussian();
    // causumx-lint: allow(fp-accumulation) moments over a fixed stream
    sum += x;
    sum2 += x * x;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.02);
}

TEST(RngTest, GaussianWithParameters) {
  Rng rng(15);
  double sum = 0;
  const int n = 100000;
  // causumx-lint: allow(fp-accumulation) moment estimate, as above.
  for (int i = 0; i < n; ++i) sum += rng.NextGaussian(5.0, 2.0);
  EXPECT_NEAR(sum / n, 5.0, 0.05);
}

TEST(RngTest, NextBoolFrequency) {
  Rng rng(17);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (rng.NextBool(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, WeightedSamplingMatchesWeights) {
  Rng rng(19);
  std::vector<double> w = {1.0, 3.0, 6.0};
  std::vector<int> counts(3, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.NextWeighted(w)];
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.1, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.3, 0.01);
  EXPECT_NEAR(counts[2] / static_cast<double>(n), 0.6, 0.01);
}

TEST(RngTest, WeightedAllZeroFallsBack) {
  Rng rng(21);
  std::vector<double> w = {0.0, 0.0, 0.0};
  EXPECT_EQ(rng.NextWeighted(w), 2u);
}

TEST(RngTest, SampleIndicesWithoutReplacement) {
  Rng rng(23);
  const auto sample = rng.SampleIndices(1000, 100);
  EXPECT_EQ(sample.size(), 100u);
  std::set<size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 100u);
  for (size_t idx : sample) EXPECT_LT(idx, 1000u);
}

TEST(RngTest, SampleIndicesFullWhenCountExceedsN) {
  Rng rng(25);
  const auto sample = rng.SampleIndices(10, 50);
  EXPECT_EQ(sample.size(), 10u);
}

TEST(RngTest, SampleIndicesUniformity) {
  // Every index should appear with roughly equal frequency across trials.
  std::vector<int> counts(20, 0);
  for (uint64_t seed = 0; seed < 4000; ++seed) {
    Rng rng(seed);
    for (size_t idx : rng.SampleIndices(20, 5)) ++counts[idx];
  }
  for (int c : counts) {
    EXPECT_NEAR(c / 4000.0, 0.25, 0.05);
  }
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(27);
  std::vector<int> v(50);
  for (int i = 0; i < 50; ++i) v[i] = i;
  auto original = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

}  // namespace
}  // namespace causumx
